/**
 * @file
 * Unit tests for the decoded-cache frontend (paper section 2.2):
 * window indexing, fragmentation drops, and the frontend's
 * IC-like-bandwidth / decode-free behavior.
 */

#include <gtest/gtest.h>

#include "dc/dc_frontend.hh"
#include "dc/decoded_cache.hh"
#include "ic/ic_frontend.hh"
#include "test_helpers.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

StaticInst
inst(uint64_t ip, uint8_t len, uint8_t uops)
{
    StaticInst si;
    si.ip = ip;
    si.length = len;
    si.numUops = uops;
    return si;
}

struct DcFixture : public testing::Test
{
    DcFixture() : root("test"), dc(params(), &root) {}

    static DecodedCacheParams
    params()
    {
        DecodedCacheParams p;
        p.capacityUops = 1024;
        p.windowBytes = 16;
        p.lineUops = 8;
        p.ways = 2;
        return p;
    }

    StatGroup root;
    DecodedCache dc;
};

TEST_F(DcFixture, WindowAlignment)
{
    EXPECT_EQ(dc.windowOf(0x1000), 0x1000u);
    EXPECT_EQ(dc.windowOf(0x100f), 0x1000u);
    EXPECT_EQ(dc.windowOf(0x1010), 0x1010u);
}

TEST_F(DcFixture, FillThenHit)
{
    EXPECT_EQ(dc.lookup(0x1000, 5).first, nullptr);
    dc.fill(inst(0x1000, 4, 2), 5);
    auto [line, pos] = dc.lookup(0x1000, 5);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(pos, 0u);
    EXPECT_EQ(line->usedUops, 2u);
}

TEST_F(DcFixture, SameWindowSharesLine)
{
    dc.fill(inst(0x1000, 4, 2), 1);
    dc.fill(inst(0x1004, 4, 3), 2);
    auto [line, pos] = dc.lookup(0x1004, 2);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(pos, 1u);
    EXPECT_EQ(line->usedUops, 5u);
}

TEST_F(DcFixture, FragmentationDropsOverflow)
{
    // 3 + 3 + 3 uops exceed the 8-slot line: the third inst drops.
    dc.fill(inst(0x1000, 4, 3), 1);
    dc.fill(inst(0x1004, 4, 3), 2);
    dc.fill(inst(0x1008, 4, 3), 3);
    EXPECT_EQ(dc.fragDrops.value(), 1u);
    EXPECT_EQ(dc.lookup(0x1008, 3).first, nullptr);
    // Refilling the same instruction later still drops (hole).
    dc.fill(inst(0x1008, 4, 3), 3);
    EXPECT_EQ(dc.fragDrops.value(), 2u);
}

TEST_F(DcFixture, DuplicateFillIsIdempotent)
{
    dc.fill(inst(0x1000, 4, 2), 1);
    dc.fill(inst(0x1000, 4, 2), 1);
    auto [line, pos] = dc.lookup(0x1000, 1);
    (void)pos;
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->usedUops, 2u);
    EXPECT_EQ(line->insts.size(), 1u);
}

TEST_F(DcFixture, FillFactorReflectsWaste)
{
    dc.fill(inst(0x1000, 4, 2), 1);
    EXPECT_NEAR(dc.fillFactor(), 2.0 / 8.0, 1e-9);
}

TEST(DcFrontend, Conservation)
{
    Trace trace = makeCatalogTrace("li", 30000);
    FrontendParams fp;
    DcFrontend fe(fp, DecodedCacheParams{});
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
}

TEST(DcFrontend, BandwidthIsIcLike)
{
    // Section 2.2: the decoded cache removes decode latency but
    // keeps the IC's one-run-per-cycle bandwidth ceiling.
    Trace trace = makeCatalogTrace("word", 40000);
    FrontendParams fp;
    DcFrontend dcfe(fp, DecodedCacheParams{});
    IcFrontend icfe(fp);
    dcfe.run(trace);
    icfe.run(trace);
    EXPECT_LT(dcfe.metrics().bandwidth(), 6.0);
    EXPECT_NEAR(dcfe.metrics().bandwidth(),
                icfe.metrics().bandwidth(), 1.5);
}

TEST(DcFrontend, FragmentationCostsHitRate)
{
    Trace trace = makeCatalogTrace("gcc", 40000);
    FrontendParams fp;
    DecodedCacheParams small, roomy;
    small.lineUops = 6;
    roomy.lineUops = 16;
    DcFrontend fs(fp, small), fr(fp, roomy);
    fs.run(trace);
    fr.run(trace);
    // Tighter lines drop more instructions -> more build-mode uops.
    EXPECT_GT(fs.metrics().missRate(), fr.metrics().missRate());
}

} // anonymous namespace
} // namespace xbs
