/**
 * @file
 * Unit and property tests for the XBC data array: the three overlap
 * cases of the build algorithm, reverse-order extension, complex-XB
 * suffix sharing, eviction truncation (head-line rule), set search,
 * dynamic placement, and the redundancy bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/data_array.hh"
#include "test_helpers.hh"

namespace xbs
{
namespace
{

/**
 * Fixture with the paper's running example:
 *   A:  a1 a2 (jmp C)      - one prefix
 *   B:  b1 b2              - the other prefix, falls into C
 *   CD: c d (cond branch)  - the shared suffix
 * Each instruction expands to 2 uops, so prefixes are 4 uops and the
 * suffix is 4 uops, aligning exactly with 4-uop bank lines.
 */
struct ArrayFixture : public testing::Test
{
    ArrayFixture() : root("test")
    {
        a1 = cb.seq(2);
        a2 = cb.seq(2);
        b1 = cb.seq(2);
        b2 = cb.seq(2);
        c = cb.seq(2);
        d = cb.cond(0, 2);
        code = cb.finalize();
        endIp = code->inst(d).ip;
    }

    std::unique_ptr<XbcDataArray>
    makeArray(XbcParams p = XbcParams{})
    {
        auto arr = std::make_unique<XbcDataArray>(p, &root);
        arr->bindCode(code.get());
        return arr;
    }

    XbSeq
    seqOf(std::initializer_list<int32_t> insts)
    {
        XbSeq s;
        for (int32_t i : insts)
            appendInstUops(*code, i, s);
        return s;
    }

    CodeBuilder cb;
    StatGroup root;
    std::shared_ptr<const StaticCode> code;
    int32_t a1, a2, b1, b2, c, d;
    uint64_t endIp;
};

TEST_F(ArrayFixture, FreshAllocation)
{
    auto arr = makeArray();
    XbPointer ptr;
    auto oc = arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &ptr);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::Allocated);
    ASSERT_TRUE(ptr.valid);
    EXPECT_EQ(ptr.xbIp, endIp);
    EXPECT_EQ(ptr.entryIdx, b1);

    auto acc = arr->lookup(endIp, ptr.mask, b1);
    ASSERT_NE(acc.variant, nullptr);
    EXPECT_EQ(acc.entryPos, 0u);
    EXPECT_EQ(acc.variant->seq.size(), 8u);
    arr->checkInvariants();
    EXPECT_DOUBLE_EQ(arr->redundancy(), 1.0);
}

TEST_F(ArrayFixture, Case1ContainedNeedsNoStorage)
{
    auto arr = makeArray();
    XbPointer full;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &full);
    uint64_t unique_before = arr->uniqueUopsResident();

    XbPointer sub;
    auto oc = arr->insert(seqOf({c, d}), endIp, 0, &sub);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::AlreadyPresent);
    ASSERT_TRUE(sub.valid);
    EXPECT_EQ(sub.entryIdx, c);
    EXPECT_EQ(sub.mask, full.mask);
    EXPECT_EQ(arr->uniqueUopsResident(), unique_before);

    // The mid-XB entry point must be readable (multiple entries).
    auto acc = arr->lookup(endIp, sub.mask, c);
    ASSERT_NE(acc.variant, nullptr);
    EXPECT_EQ(acc.entryPos, 4u);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, Case2ExtensionGrowsAtHead)
{
    auto arr = makeArray();
    XbPointer small;
    arr->insert(seqOf({c, d}), endIp, 0, &small);

    XbPointer big;
    auto oc = arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &big);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::Extended);
    ASSERT_TRUE(big.valid);

    // No duplication: every uop resident exactly once.
    EXPECT_DOUBLE_EQ(arr->redundancy(), 1.0);
    EXPECT_EQ(arr->uniqueUopsResident(), 8u);

    // Both the old entry (C) and the new head (B1) must resolve.
    EXPECT_NE(arr->lookup(endIp, big.mask, b1).variant, nullptr);
    auto mid = arr->lookup(endIp, big.mask, c);
    ASSERT_NE(mid.variant, nullptr);
    EXPECT_EQ(mid.entryPos, 4u);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, Case2FillsHeadLineFreeSlots)
{
    auto arr = makeArray();
    // 6-uop XB: head line holds 2 uops, leaving 2 free slots.
    XbPointer p0;
    arr->insert(seqOf({b2, c, d}), endIp, 0, &p0);
    auto acc0 = arr->lookup(endIp, p0.mask, b2);
    ASSERT_NE(acc0.variant, nullptr);
    unsigned lines_before = (unsigned)acc0.variant->lines.size();

    // Extending by one 2-uop instruction must reuse the head line.
    XbPointer p1;
    auto oc = arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &p1);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::Extended);
    auto acc1 = arr->lookup(endIp, p1.mask, b1);
    ASSERT_NE(acc1.variant, nullptr);
    EXPECT_EQ(acc1.variant->lines.size(), lines_before);
    EXPECT_EQ(p1.mask, p0.mask);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, Case3ComplexSharesSuffix)
{
    auto arr = makeArray();
    XbPointer bcd, acd;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &bcd);
    auto oc = arr->insert(seqOf({a1, a2, c, d}), endIp, 0, &acd);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::ComplexAdded);
    ASSERT_TRUE(acd.valid);
    // The two prefixes may land in different ways of the same bank
    // (the paper's preferred placement), so the masks can coincide;
    // the entry point disambiguates the variants.

    // The suffix (c, d: 4 uops) is shared, so the array holds
    // 8 + 4 = 12 uops, all unique.
    EXPECT_EQ(arr->uniqueUopsResident(), 12u);
    EXPECT_DOUBLE_EQ(arr->redundancy(), 1.0);

    // Both prefixes readable through their own masks.
    EXPECT_NE(arr->lookup(endIp, bcd.mask, b1).variant, nullptr);
    EXPECT_NE(arr->lookup(endIp, acd.mask, a1).variant, nullptr);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, Case3PartialBoundarySharing)
{
    // Misaligned suffix: store b1 b2 c d (8 uops -> lines [4][4]),
    // then a2 c d (6 uops, common suffix c d = 4 uops, which spans
    // line 2 fully; prefix a2 = 2 uops in its own line). Then probe
    // a sequence whose common suffix cuts INTO a line: b2 c d shares
    // 6 uops (b2's 2 live mid-line) -> case 1 contained, no storage.
    auto arr = makeArray();
    XbPointer bcd;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &bcd);

    XbPointer probe;
    auto oc1 = arr->insert(seqOf({b2, c, d}), endIp, 0, &probe);
    EXPECT_EQ(oc1, XbcDataArray::InsertOutcome::AlreadyPresent);

    XbPointer acd;
    auto oc2 = arr->insert(seqOf({a2, c, d}), endIp, 0, &acd);
    EXPECT_EQ(oc2, XbcDataArray::InsertOutcome::ComplexAdded);
    EXPECT_DOUBLE_EQ(arr->redundancy(), 1.0);
    arr->checkInvariants();

    auto acc = arr->lookup(endIp, acd.mask, a2);
    ASSERT_NE(acc.variant, nullptr);
    ASSERT_EQ(acc.variant->seq.size(), 6u);
}

TEST_F(ArrayFixture, DuplicateModeReintroducesRedundancy)
{
    XbcParams p;
    p.complexMode = XbcParams::ComplexMode::Duplicate;
    auto arr = makeArray(p);
    XbPointer bcd, acd;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &bcd);
    auto oc = arr->insert(seqOf({a1, a2, c, d}), endIp, 0, &acd);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::IndependentAdded);
    // c and d stored twice now.
    EXPECT_GT(arr->redundancy(), 1.0);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, PrefixSplitModeReportsPrefixNeeded)
{
    XbcParams p;
    p.complexMode = XbcParams::ComplexMode::PrefixSplit;
    auto arr = makeArray(p);
    XbPointer bcd, acd;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &bcd);
    unsigned common = 0;
    auto oc = arr->insert(seqOf({a1, a2, c, d}), endIp, 0, &acd,
                          &common);
    EXPECT_EQ(oc, XbcDataArray::InsertOutcome::PrefixNeeded);
    EXPECT_EQ(common, 4u);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, SetSearchRepairsStaleMask)
{
    auto arr = makeArray();
    XbPointer ptr;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &ptr);

    // A pointer with a wrong mask misses but set search finds it.
    uint32_t bogus = ptr.mask ^ 0x1;
    EXPECT_EQ(arr->lookup(endIp, bogus, b1).variant, nullptr);
    auto acc = arr->setSearch(endIp, b1);
    ASSERT_NE(acc.variant, nullptr);
    EXPECT_EQ(acc.variant->mask, ptr.mask);
    EXPECT_EQ(arr->setSearchHits.value(), 1u);
}

TEST_F(ArrayFixture, SetSearchMissOnAbsentEntry)
{
    auto arr = makeArray();
    XbPointer ptr;
    arr->insert(seqOf({c, d}), endIp, 0, &ptr);
    EXPECT_EQ(arr->setSearch(endIp, b1).variant, nullptr);
    EXPECT_EQ(arr->setSearch(0xdead, c).variant, nullptr);
}

TEST_F(ArrayFixture, LookupRejectsMidInstructionEntry)
{
    auto arr = makeArray();
    XbPointer ptr;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &ptr);
    // Entry must be at an instruction boundary; a bogus static index
    // that never starts an instruction in this XB misses.
    EXPECT_EQ(arr->lookup(endIp, ptr.mask, a1).variant, nullptr);
}

TEST_F(ArrayFixture, HeadLineEvictedFirstAndSuffixSurvives)
{
    // Tiny geometry: one set, 2 banks x 1 way x 4 uops = 8 uops.
    XbcParams p;
    p.capacityUops = 8;
    p.numBanks = 2;
    p.bankUops = 4;
    p.ways = 1;
    p.xbQuotaUops = 8;
    auto arr = makeArray(p);
    ASSERT_EQ(arr->numSets(), 1u);

    XbPointer big;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &big);
    auto acc = arr->lookup(endIp, big.mask, b1);
    ASSERT_NE(acc.variant, nullptr);
    ASSERT_EQ(acc.variant->lines.size(), 2u);
    arr->touch(*acc.variant, 0);  // head gets the older timestamp

    // A new 4-uop XB (different tag) must evict the HEAD line.
    uint64_t tag2 = code->inst(a2).ip;
    XbPointer p2;
    arr->insert(seqOf({a1, a2}), tag2, 0, &p2);
    ASSERT_TRUE(p2.valid);

    // The big XB's head entry is gone, but entering at its middle
    // (instruction c, in the surviving primary line) still works.
    EXPECT_EQ(arr->setSearch(endIp, b1).variant, nullptr);
    auto mid = arr->setSearch(endIp, c);
    ASSERT_NE(mid.variant, nullptr);
    EXPECT_EQ(mid.variant->seq.size(), 4u);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, DemoteLruMakesVictim)
{
    XbcParams p;
    p.capacityUops = 8;
    p.numBanks = 2;
    p.bankUops = 4;
    p.ways = 1;
    p.xbQuotaUops = 8;
    auto arr = makeArray(p);

    uint64_t tag_cd = endIp;
    uint64_t tag_b = code->inst(b2).ip;
    XbPointer pcd, pb;
    arr->insert(seqOf({c, d}), tag_cd, 0, &pcd);    // bank 0
    arr->insert(seqOf({b1, b2}), tag_b, 0, &pb);    // bank 1
    // Demote the b XB; the next allocation must take its line even
    // though it is younger.
    arr->demoteLru(tag_b, pb.mask);
    uint64_t tag_a = code->inst(a2).ip;
    XbPointer pa;
    arr->insert(seqOf({a1, a2}), tag_a, 0, &pa);
    EXPECT_NE(arr->findQuiet(tag_cd, c).variant, nullptr);
    EXPECT_EQ(arr->findQuiet(tag_b, b1).variant, nullptr);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, DynamicPlacementRelocates)
{
    XbcParams p;
    p.dynamicPlacementThreshold = 3;
    auto arr = makeArray(p);
    XbPointer ptr;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &ptr);
    auto acc = arr->lookup(endIp, ptr.mask, b1);
    ASSERT_NE(acc.variant, nullptr);
    ASSERT_EQ(acc.variant->lines.size(), 2u);
    uint32_t old_mask = acc.variant->mask;

    // Report conflicts on the primary line with a free bank hint.
    uint32_t free_banks = ~old_mask & 0xf;
    bool moved = false;
    for (int i = 0; i < 3; ++i) {
        acc = arr->setSearch(endIp, b1);
        ASSERT_NE(acc.variant, nullptr);
        moved = arr->noteConflict(*acc.variant, 1, free_banks);
    }
    EXPECT_TRUE(moved);
    EXPECT_EQ(arr->relocations.value(), 1u);
    // Mask changed; set search still finds the XB.
    auto again = arr->setSearch(endIp, b1);
    ASSERT_NE(again.variant, nullptr);
    EXPECT_NE(again.variant->mask, old_mask);
    arr->checkInvariants();
}

TEST_F(ArrayFixture, ResetClearsEverything)
{
    auto arr = makeArray();
    XbPointer ptr;
    arr->insert(seqOf({b1, b2, c, d}), endIp, 0, &ptr);
    arr->reset();
    EXPECT_EQ(arr->findQuiet(endIp, b1).variant, nullptr);
    EXPECT_EQ(arr->uniqueUopsResident(), 0u);
    EXPECT_EQ(arr->inserts.value(), 0u);
    arr->checkInvariants();
}

/**
 * Property test: random subsequence inserts over a long instruction
 * chain must keep every internal invariant across geometries.
 */
struct FuzzParams
{
    unsigned banks;
    unsigned ways;
    unsigned capacity;
    XbcParams::ComplexMode mode;
};

class ArrayFuzz : public testing::TestWithParam<FuzzParams>
{
};

TEST_P(ArrayFuzz, RandomInsertsKeepInvariants)
{
    const auto fp = GetParam();

    CodeBuilder cb;
    std::vector<int32_t> chain;
    for (int i = 0; i < 39; ++i)
        chain.push_back(cb.seq(1 + i % 3));
    chain.push_back(cb.cond(0, 1));
    auto code = cb.finalize();

    XbcParams p;
    p.numBanks = fp.banks;
    p.bankUops = 4;
    p.ways = fp.ways;
    p.capacityUops = fp.capacity;
    p.xbQuotaUops = std::min(16u, fp.banks * 4);
    p.complexMode = fp.mode;

    StatGroup root("fuzz");
    XbcDataArray arr(p, &root);
    arr.bindCode(code.get());

    Rng rng(fp.banks * 1000 + fp.ways * 100 + fp.capacity);
    for (int iter = 0; iter < 400; ++iter) {
        // Random suffix of the chain, ending at the final branch.
        std::size_t start = rng.below(chain.size() - 1);
        XbSeq seq;
        for (std::size_t i = start; i < chain.size(); ++i) {
            const auto &si = code->inst(chain[i]);
            if (seq.size() + si.numUops > p.xbQuotaUops) {
                seq.clear();  // keep only what still fits the quota
            }
            appendInstUops(*code, chain[i], seq);
        }
        if (seq.empty() || seq.front().seq != 0)
            continue;
        uint64_t tag = code->inst(chain.back()).ip;
        XbPointer ptr;
        arr.insert(seq, tag, (uint32_t)rng.below(16), &ptr);

        if (iter % 25 == 0)
            arr.checkInvariants();
        if (ptr.valid) {
            auto acc = arr.lookup(tag, ptr.mask, ptr.entryIdx);
            if (acc.variant) {
                // Every stored image must be a contiguous tail of
                // the static chain, ending at the branch.
                const XbSeq &vs = acc.variant->seq;
                ASSERT_FALSE(vs.empty());
                EXPECT_EQ(vs.back().staticIdx, chain.back());
                std::size_t ci = chain.size();
                for (std::size_t k = vs.size(); k-- > 0;) {
                    if (k + 1 == vs.size() ||
                        vs[k].staticIdx != vs[k + 1].staticIdx) {
                        ASSERT_GT(ci, 0u);
                        --ci;
                    }
                    EXPECT_EQ(vs[k].staticIdx, chain[ci]);
                }
            }
        }
    }
    arr.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ArrayFuzz,
    testing::Values(
        FuzzParams{4, 2, 32768, XbcParams::ComplexMode::Complex},
        FuzzParams{4, 2, 1024, XbcParams::ComplexMode::Complex},
        FuzzParams{4, 1, 512, XbcParams::ComplexMode::Complex},
        FuzzParams{2, 2, 256, XbcParams::ComplexMode::Complex},
        FuzzParams{8, 2, 2048, XbcParams::ComplexMode::Complex},
        FuzzParams{4, 2, 1024, XbcParams::ComplexMode::Duplicate},
        FuzzParams{4, 4, 4096, XbcParams::ComplexMode::Complex}));

} // anonymous namespace
} // namespace xbs
