/**
 * @file
 * Cross-module integration tests: the paper's headline relationships
 * must hold end-to-end on catalog workloads for all three frontends,
 * across a parameterized sample of the catalog.
 */

#include <gtest/gtest.h>

#include "bbtc/bbtc_frontend.hh"
#include "core/xbc_frontend.hh"
#include "dc/dc_frontend.hh"
#include "ic/ic_frontend.hh"
#include "prof/perf_counters.hh"
#include "prof/phase_profiler.hh"
#include "sim/runner.hh"
#include "tc/tc_frontend.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

constexpr uint64_t kLen = 60000;

struct Fixture
{
    explicit Fixture(const std::string &name)
        : trace(makeCatalogTrace(name, kLen)), ic(fp), tc(fp, {}),
          xbc(fp, {})
    {
        ic.run(trace);
        tc.run(trace);
        xbc.run(trace);
    }

    FrontendParams fp;
    Trace trace;
    IcFrontend ic;
    TcFrontend tc;
    XbcFrontend xbc;
};

class CrossFrontend : public testing::TestWithParam<std::string>
{
};

TEST_P(CrossFrontend, AllFrontendsConserveUops)
{
    Fixture f(GetParam());
    uint64_t total = f.trace.totalUops();
    EXPECT_EQ(f.ic.metrics().deliveryUops.value(), total);
    EXPECT_EQ(f.tc.metrics().deliveryUops.value() +
                  f.tc.metrics().buildUops.value(),
              total);
    EXPECT_EQ(f.xbc.metrics().deliveryUops.value() +
                  f.xbc.metrics().buildUops.value(),
              total);
}

TEST_P(CrossFrontend, DecodedStructuresBeatIcBandwidth)
{
    Fixture f(GetParam());
    EXPECT_GT(f.tc.metrics().bandwidth(),
              f.ic.metrics().bandwidth());
    EXPECT_GT(f.xbc.metrics().bandwidth(),
              f.ic.metrics().bandwidth());
}

TEST_P(CrossFrontend, XbcRedundancyBelowTc)
{
    Fixture f(GetParam());
    EXPECT_LT(f.xbc.dataArray().redundancy(),
              f.tc.cache().redundancy());
}

TEST_P(CrossFrontend, BandwidthParityBetweenTcAndXbc)
{
    // Figure 8: "the difference between the XBC and TC bandwidth is
    // negligible". Allow a generous band per workload.
    Fixture f(GetParam());
    double tc_bw = f.tc.metrics().bandwidth();
    double xbc_bw = f.xbc.metrics().bandwidth();
    EXPECT_NEAR(tc_bw, xbc_bw, 0.30 * std::max(tc_bw, xbc_bw));
}

TEST_P(CrossFrontend, XbcInvariantsAfterFullRun)
{
    Fixture f(GetParam());
    f.xbc.dataArray().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    SampledWorkloads, CrossFrontend,
    testing::Values("gcc", "compress", "vortex", "word", "netscape",
                    "quake2", "falcon4"));

TEST(HeadlineResult, XbcMissRateBelowTcOnSuiteAverage)
{
    // Figure 9 at 32K uops: the XBC reduces misses versus the TC.
    // Evaluated on a 6-workload sample for test-time reasons; the
    // full 21-trace version lives in bench/fig9_missrate_size.
    SuiteRunner runner(kLen, {"gcc", "li", "word", "excel", "quake2",
                              "unreal"});
    auto results = runner.sweep({
        {"tc", SimConfig::tcBaseline(32768)},
        {"xbc", SimConfig::xbcBaseline(32768)},
    });
    double tc_mr = SuiteRunner::meanMissRate(results, "tc");
    double xbc_mr = SuiteRunner::meanMissRate(results, "xbc");
    EXPECT_LT(xbc_mr, tc_mr);
}

TEST(HeadlineResult, AssociativityReducesMisses)
{
    // Figure 10 shape: direct-mapped -> 2-way must cut misses.
    SuiteRunner runner(kLen, {"word", "gcc", "quake2"});
    auto results = runner.sweep({
        {"xbc1", SimConfig::xbcBaseline(32768, 1)},
        {"xbc2", SimConfig::xbcBaseline(32768, 2)},
    });
    EXPECT_GT(SuiteRunner::meanMissRate(results, "xbc1"),
              SuiteRunner::meanMissRate(results, "xbc2"));
}

TEST(HeadlineResult, MissRateFallsWithCapacity)
{
    SuiteRunner runner(kLen, {"word", "excel"});
    auto results = runner.sweep({
        {"s8", SimConfig::xbcBaseline(8192)},
        {"s64", SimConfig::xbcBaseline(65536)},
        {"t8", SimConfig::tcBaseline(8192)},
        {"t64", SimConfig::tcBaseline(65536)},
    });
    EXPECT_GT(SuiteRunner::meanMissRate(results, "s8"),
              SuiteRunner::meanMissRate(results, "s64"));
    EXPECT_GT(SuiteRunner::meanMissRate(results, "t8"),
              SuiteRunner::meanMissRate(results, "t64"));
}

/** All five structures, conservation and sane ranges. */
struct FiveWay
{
    std::string workload;
    FrontendKind kind;
};

class AllFrontends : public testing::TestWithParam<FiveWay>
{
};

TEST_P(AllFrontends, ConservesAndStaysInRange)
{
    const auto p = GetParam();
    SimConfig config;
    config.kind = p.kind;
    auto fe = makeFrontend(config);
    Trace trace = makeCatalogTrace(p.workload, 40000);
    fe->run(trace);
    const auto &m = fe->metrics();
    EXPECT_EQ(m.deliveryUops.value() + m.buildUops.value(),
              trace.totalUops())
        << frontendKindName(p.kind);
    EXPECT_LE(m.bandwidth(), 8.0 + 1e-9);
    EXPECT_GE(m.missRate(), 0.0);
    EXPECT_LE(m.missRate(), 1.0);
    EXPECT_GT(m.cycles.value(), trace.totalUops() / 8);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllFrontends,
    testing::Values(FiveWay{"gcc", FrontendKind::Ic},
                    FiveWay{"gcc", FrontendKind::Dc},
                    FiveWay{"gcc", FrontendKind::Tc},
                    FiveWay{"gcc", FrontendKind::Bbtc},
                    FiveWay{"gcc", FrontendKind::Xbc},
                    FiveWay{"word", FrontendKind::Dc},
                    FiveWay{"word", FrontendKind::Bbtc},
                    FiveWay{"word", FrontendKind::Xbc},
                    FiveWay{"quake2", FrontendKind::Tc},
                    FiveWay{"quake2", FrontendKind::Bbtc},
                    FiveWay{"quake2", FrontendKind::Xbc}),
    [](const testing::TestParamInfo<FiveWay> &info) {
        return info.param.workload +
               std::string(frontendKindName(info.param.kind));
    });

TEST(SurveyOrdering, DecodedStructuresBeatAddressIndexed)
{
    // Section 2 taxonomy on one mid-size workload: TC-family
    // bandwidth >> IC/DC bandwidth; DC misses most (fragmentation).
    Trace trace = makeCatalogTrace("excel", kLen);
    FrontendParams fp;
    DcFrontend dc(fp, DecodedCacheParams{});
    TcFrontend tc(fp, TcParams{});
    BbtcFrontend bbtc(fp, BbtcParams{});
    XbcFrontend xbc(fp, XbcParams{});
    dc.run(trace);
    tc.run(trace);
    bbtc.run(trace);
    xbc.run(trace);

    EXPECT_GT(tc.metrics().bandwidth(),
              dc.metrics().bandwidth() + 2.0);
    EXPECT_GT(bbtc.metrics().bandwidth(),
              dc.metrics().bandwidth() + 2.0);
    EXPECT_GT(dc.metrics().missRate(), tc.metrics().missRate());
    EXPECT_GT(dc.metrics().missRate(), xbc.metrics().missRate());
}

TEST(Determinism, HostProfilingNeverPerturbsPaperMetrics)
{
    // The --perf contract: host-side observation (phase timers plus
    // the perf counter group, available or not) must leave every
    // simulated metric bit-identical across all five frontends.
    Trace trace = makeCatalogTrace("gcc", 40000);
    for (FrontendKind kind :
         {FrontendKind::Ic, FrontendKind::Dc, FrontendKind::Tc,
          FrontendKind::Bbtc, FrontendKind::Xbc}) {
        SimConfig config;
        config.kind = kind;

        auto bare = makeFrontend(config);
        bare->run(trace);

        PhaseProfiler prof(0);  // worst case: sample every entry
        PerfCounterGroup grp;
        grp.open();  // may fail on this host; attach either way
        if (grp.available())
            prof.attachPerf(&grp, 0);
        auto profiled = makeFrontend(config);
        profiled->attachProfiler(&prof);
        profiled->run(trace);

        const auto &a = bare->metrics();
        const auto &b = profiled->metrics();
        EXPECT_EQ(a.deliveryUops.value(), b.deliveryUops.value())
            << frontendKindName(kind);
        EXPECT_EQ(a.buildUops.value(), b.buildUops.value())
            << frontendKindName(kind);
        EXPECT_EQ(a.cycles.value(), b.cycles.value())
            << frontendKindName(kind);
        EXPECT_EQ(a.bandwidth(), b.bandwidth())
            << frontendKindName(kind);
        EXPECT_EQ(a.missRate(), b.missRate())
            << frontendKindName(kind);
    }
}

TEST(Determinism, IdenticalTracesAcrossProcessRuns)
{
    // Catalog traces must be bit-identical between constructions.
    Trace a = makeCatalogTrace("descent3", 5000);
    Trace b = makeCatalogTrace("descent3", 5000);
    ASSERT_EQ(a.numRecords(), b.numRecords());
    for (std::size_t i = 0; i < a.numRecords(); ++i) {
        ASSERT_EQ(a.record(i).staticIdx, b.record(i).staticIdx);
        ASSERT_EQ(a.record(i).taken, b.record(i).taken);
    }
}

} // anonymous namespace
} // namespace xbs
