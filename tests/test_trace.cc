/**
 * @file
 * Unit tests for the trace layer: trace construction and validation,
 * block-length statistics (Figure 1 machinery), and binary I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "test_helpers.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

namespace xbs
{
namespace
{

TEST(Trace, BasicProperties)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t b = cb.seq(3);
    int32_t j = cb.jump(0);
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, false}, {b, false}, {j, false},
                                   {a, false}});
    EXPECT_EQ(t.numRecords(), 4u);
    EXPECT_EQ(t.totalUops(), 2u + 3 + 1 + 2);
    EXPECT_EQ(t.nextIp(0), code->inst(b).ip);
    EXPECT_EQ(t.nextIp(3), 0u);  // past the end
    t.validate();
}

TEST(Trace, ValidateCatchesBadSuccessor)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    (void)cb.seq();
    int32_t c = cb.seq();
    cb.jump(0);
    auto code = cb.finalize();

    // a is Seq but the next record skips an instruction.
    Trace t = makeTestTrace(code, {{a, false}, {c, false}});
    EXPECT_DEATH(t.validate(), "seq successor mismatch");
}

TEST(Trace, ValidateCondBranchPaths)
{
    CodeBuilder cb;
    int32_t br = cb.cond(2);     // taken -> idx 2
    int32_t ft = cb.seq();       // idx 1 fall-through
    int32_t tk = cb.seq();       // idx 2 taken target
    cb.jump(0);
    auto code = cb.finalize();

    makeTestTrace(code, {{br, true}, {tk, false}}).validate();
    makeTestTrace(code, {{br, false}, {ft, false}}).validate();

    Trace bad = makeTestTrace(code, {{br, true}, {ft, false}});
    EXPECT_DEATH(bad.validate(), "taken target mismatch");
}

TEST(BranchBias, CountsAndMonotonicity)
{
    BranchBiasTable t;
    for (int i = 0; i < 99; ++i)
        t.observe(5, true);
    t.observe(5, false);
    EXPECT_EQ(t.count(5), 100u);
    EXPECT_NEAR(t.bias(5), 0.99, 1e-9);
    EXPECT_TRUE(t.monotonic(5, 0.99));
    EXPECT_FALSE(t.monotonic(5, 0.992));
    EXPECT_EQ(t.count(6), 0u);
    EXPECT_DOUBLE_EQ(t.bias(6), 0.0);
}

TEST(BranchBias, NotTakenDirection)
{
    BranchBiasTable t;
    for (int i = 0; i < 10; ++i)
        t.observe(1, false);
    EXPECT_DOUBLE_EQ(t.bias(1), 1.0);
}

/** Straight-line code: one XB of the summed uops (capped). */
TEST(BlockStats, StraightLineEndsOnBranch)
{
    CodeBuilder cb;
    int32_t a = cb.seq(3);
    int32_t b = cb.seq(2);
    int32_t br = cb.cond(0, 1);
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, 0}, {b, 0}, {br, true},
                                   {a, 0}, {b, 0}, {br, true}});
    auto s = computeBlockLengthStats(t);
    // Two XBs of 3+2+1 = 6 uops each.
    EXPECT_EQ(s.xb.total(), 2u);
    EXPECT_DOUBLE_EQ(s.xb.mean(), 6.0);
    // Basic blocks identical here (no direct jumps).
    EXPECT_DOUBLE_EQ(s.basicBlock.mean(), 6.0);
    // Dual XB = two consecutive XBs fused: 12.
    EXPECT_EQ(s.dualXb.count(12), 1u);
}

/** Direct jumps end basic blocks but not extended blocks. */
TEST(BlockStats, JumpsAbsorbedByXbs)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t j = cb.jump(2);
    int32_t b = cb.seq(2);
    int32_t br = cb.cond(0, 1);
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, 0}, {j, 0}, {b, 0}, {br, 1}});
    auto s = computeBlockLengthStats(t);
    // Basic blocks: [a j] = 3 uops, [b br] = 3 uops.
    EXPECT_EQ(s.basicBlock.total(), 2u);
    EXPECT_DOUBLE_EQ(s.basicBlock.mean(), 3.0);
    // XB: the jump is absorbed -> one block of 6 uops.
    EXPECT_EQ(s.xb.total(), 1u);
    EXPECT_DOUBLE_EQ(s.xb.mean(), 6.0);
}

/** A >99.2%-biased branch is absorbed in the promotion view. */
TEST(BlockStats, PromotionAbsorbsMonotonicBranches)
{
    CodeBuilder cb;
    int32_t a = cb.seq(3);
    int32_t br1 = cb.cond(2, 1);  // always not-taken below
    int32_t b = cb.seq(3);
    int32_t br2 = cb.cond(0, 1);  // alternates
    auto code = cb.finalize();

    std::vector<std::pair<int32_t, bool>> path;
    for (int i = 0; i < 200; ++i) {
        path.push_back({a, false});
        path.push_back({br1, false});  // monotonic NT
        path.push_back({b, false});
        path.push_back({br2, i % 2 == 0});
    }
    Trace t = makeTestTrace(code, path);
    auto s = computeBlockLengthStats(t, 0.992);
    // Plain XB view: blocks of 4 (a,br1) and 4 (b,br2).
    EXPECT_DOUBLE_EQ(s.xb.mean(), 4.0);
    // Promotion view: br1 absorbed -> blocks of 8.
    EXPECT_DOUBLE_EQ(s.xbPromoted.mean(), 8.0);
}

/** The 16-uop quota splits long runs. */
TEST(BlockStats, QuotaSplitsLongBlocks)
{
    CodeBuilder cb;
    std::vector<int32_t> seqs;
    for (int i = 0; i < 10; ++i)
        seqs.push_back(cb.seq(4));
    int32_t br = cb.cond(0, 1);
    auto code = cb.finalize();

    std::vector<std::pair<int32_t, bool>> path;
    for (int32_t s : seqs)
        path.push_back({s, false});
    path.push_back({br, true});
    Trace t = makeTestTrace(code, path);
    auto s = computeBlockLengthStats(t);
    // 41 uops split into 16+16+9 under the quota.
    EXPECT_EQ(s.xb.total(), 3u);
    EXPECT_EQ(s.xb.count(16), 2u);
    EXPECT_EQ(s.xb.count(9), 1u);
}

TEST(BlockStats, DualXbCapped)
{
    CodeBuilder cb;
    int32_t a = cb.seq(9);
    int32_t br1 = cb.cond(0, 1);
    auto code = cb.finalize();

    std::vector<std::pair<int32_t, bool>> path;
    for (int i = 0; i < 4; ++i) {
        path.push_back({a, false});
        path.push_back({br1, true});
    }
    Trace t = makeTestTrace(code, path);
    auto s = computeBlockLengthStats(t);
    // XBs of 10; dual pairs 10+10 capped at 16.
    EXPECT_EQ(s.dualXb.count(16), 2u);
}

TEST(TraceIo, RoundTrip)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(0, 1);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, 0}, {br, 1}, {a, 0}, {br, 0}},
                            "roundtrip");

    std::string path = testing::TempDir() + "/xbs_roundtrip.xbt";
    writeTrace(t, path);
    Trace u = readTrace(path);
    std::remove(path.c_str());

    EXPECT_EQ(u.name(), "roundtrip");
    ASSERT_EQ(u.numRecords(), t.numRecords());
    EXPECT_EQ(u.code().size(), t.code().size());
    for (std::size_t i = 0; i < t.numRecords(); ++i) {
        EXPECT_EQ(u.record(i).staticIdx, t.record(i).staticIdx);
        EXPECT_EQ(u.record(i).taken, t.record(i).taken);
        EXPECT_EQ(u.inst(i).ip, t.inst(i).ip);
        EXPECT_EQ(u.inst(i).numUops, t.inst(i).numUops);
        EXPECT_EQ(u.inst(i).cls, t.inst(i).cls);
    }
    u.validate();
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace("/nonexistent/path.xbt"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, GarbageMagicIsFatal)
{
    std::string path = testing::TempDir() + "/xbs_garbage.xbt";
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("NOPE", f);
    fclose(f);
    EXPECT_EXIT(readTrace(path), testing::ExitedWithCode(1),
                "not an XBT1 trace");
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace xbs
