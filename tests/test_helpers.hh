/**
 * @file
 * Shared helpers for hand-building tiny programs and traces in unit
 * tests.
 */

#ifndef XBS_TESTS_TEST_HELPERS_HH
#define XBS_TESTS_TEST_HELPERS_HH

#include <memory>
#include <vector>

#include "isa/static_inst.hh"
#include "trace/trace.hh"

namespace xbs
{

/** Incremental builder for a hand-written StaticCode image. */
class CodeBuilder
{
  public:
    CodeBuilder() : code_(std::make_shared<StaticCode>()) {}

    /** Append an instruction at the current cursor IP. */
    int32_t
    add(InstClass cls, uint8_t len = 4, uint8_t uops = 1,
        int32_t taken_idx = kNoTarget, int32_t behavior_id = kNoBehavior)
    {
        StaticInst si;
        si.ip = cursor_;
        si.length = len;
        si.numUops = uops;
        si.cls = cls;
        si.takenIdx = taken_idx;
        si.behaviorId = behavior_id;
        cursor_ += len;
        return code_->append(si);
    }

    int32_t seq(uint8_t uops = 1, uint8_t len = 4)
    {
        return add(InstClass::Seq, len, uops);
    }

    int32_t cond(int32_t taken_idx, uint8_t uops = 1)
    {
        return add(InstClass::CondBranch, 2, uops, taken_idx, 0);
    }

    int32_t jump(int32_t target_idx)
    {
        return add(InstClass::DirectJump, 2, 1, target_idx);
    }

    int32_t call(int32_t target_idx)
    {
        return add(InstClass::DirectCall, 5, 2, target_idx);
    }

    int32_t ret() { return add(InstClass::Return, 1, 2); }

    /** Patch a forward branch target after the target exists. */
    void
    patchTarget(int32_t inst_idx, int32_t target_idx)
    {
        code_->mutableInst(inst_idx).takenIdx = target_idx;
    }

    std::shared_ptr<const StaticCode>
    finalize()
    {
        code_->finalize();
        return code_;
    }

    uint64_t ipOf(int32_t idx) const { return code_->inst(idx).ip; }

  private:
    std::shared_ptr<StaticCode> code_;
    uint64_t cursor_ = 0x1000;
};

/** Build a trace from (staticIdx, taken) pairs. */
inline Trace
makeTestTrace(std::shared_ptr<const StaticCode> code,
              const std::vector<std::pair<int32_t, bool>> &path,
              const std::string &name = "test")
{
    std::vector<TraceRecord> records;
    records.reserve(path.size());
    for (const auto &[idx, taken] : path) {
        TraceRecord r;
        r.staticIdx = idx;
        r.taken = taken ? 1 : 0;
        records.push_back(r);
    }
    return Trace(std::move(code), std::move(records), name);
}

} // namespace xbs

#endif // XBS_TESTS_TEST_HELPERS_HH
