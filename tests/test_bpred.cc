/**
 * @file
 * Unit tests for the branch prediction primitives: GSHARE, bimodal,
 * BTB, return stack, and the indirect target predictor.
 */

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "bpred/direction.hh"

namespace xbs
{
namespace
{

TEST(Counter2, Saturates)
{
    Counter2 c;
    for (int i = 0; i < 10; ++i)
        c.train(true);
    EXPECT_TRUE(c.taken());
    c.train(false);
    EXPECT_TRUE(c.taken());  // 3 -> 2, still predicts taken
    c.train(false);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.train(false);
    EXPECT_FALSE(c.taken());
}

TEST(Gshare, LearnsBias)
{
    GsharePredictor g(12);
    const uint64_t ip = 0x400100;
    for (int i = 0; i < 64; ++i)
        g.update(ip, true);
    EXPECT_TRUE(g.predict(ip));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor g(12);
    const uint64_t ip = 0x400200;
    // Warm up on a strict alternation; with history the pattern is
    // fully predictable.
    bool dir = false;
    for (int i = 0; i < 200; ++i) {
        g.update(ip, dir);
        dir = !dir;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (g.predict(ip) == dir)
            ++correct;
        g.update(ip, dir);
        dir = !dir;
    }
    EXPECT_GE(correct, 95);
}

TEST(Gshare, LearnsShortLoop)
{
    GsharePredictor g(14);
    const uint64_t ip = 0x400300;
    // Loop latch: taken 4 times, then not taken, repeating.
    auto outcome = [](int i) { return i % 5 != 4; };
    int n = 0;
    for (int i = 0; i < 500; ++i)
        g.update(ip, outcome(n++));
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        bool o = outcome(n++);
        if (g.predict(ip) == o)
            ++correct;
        g.update(ip, o);
    }
    EXPECT_GE(correct, 190);
}

TEST(Gshare, HistoryAdvances)
{
    GsharePredictor g(8);
    EXPECT_EQ(g.history(), 0u);
    g.update(0x10, true);
    EXPECT_EQ(g.history(), 1u);
    g.update(0x10, false);
    EXPECT_EQ(g.history(), 2u);
    g.reset();
    EXPECT_EQ(g.history(), 0u);
}

TEST(Bimodal, LearnsPerAddressBias)
{
    BimodalPredictor b(10);
    for (int i = 0; i < 10; ++i) {
        b.update(0x100, true);
        b.update(0x5100, false);
    }
    EXPECT_TRUE(b.predict(0x100));
    EXPECT_FALSE(b.predict(0x5100));
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(64, 2);
    EXPECT_FALSE(btb.lookup(0x100).has_value());
    btb.update(0x100, 0x999);
    auto t = btb.lookup(0x100);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x999u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_EQ(btb.misses(), 1u);
}

TEST(Btb, TargetOverwrite)
{
    Btb btb(64, 2);
    btb.update(0x100, 0x999);
    btb.update(0x100, 0x777);
    EXPECT_EQ(*btb.lookup(0x100), 0x777u);
}

TEST(Btb, LruEviction)
{
    Btb btb(1, 2);  // one set, two ways
    btb.update(0x10, 1);
    btb.update(0x20, 2);
    btb.lookup(0x10);        // make 0x10 most recent
    btb.update(0x30, 3);     // evicts 0x20
    EXPECT_TRUE(btb.lookup(0x10).has_value());
    EXPECT_FALSE(btb.lookup(0x20).has_value());
    EXPECT_TRUE(btb.lookup(0x30).has_value());
}

TEST(Btb, Invalidate)
{
    Btb btb(64, 2);
    btb.update(0x100, 1);
    btb.invalidate(0x100);
    EXPECT_FALSE(btb.lookup(0x100).has_value());
}

TEST(ReturnStack, LifoOrder)
{
    ReturnStack rs(8);
    rs.push(1);
    rs.push(2);
    rs.push(3);
    EXPECT_EQ(rs.top(), 3u);
    EXPECT_EQ(rs.pop(), 3u);
    EXPECT_EQ(rs.pop(), 2u);
    EXPECT_EQ(rs.pop(), 1u);
    EXPECT_EQ(rs.pop(), 0u);  // underflow
}

TEST(ReturnStack, WrapsOnOverflow)
{
    ReturnStack rs(2);
    rs.push(1);
    rs.push(2);
    rs.push(3);  // overwrites the oldest
    EXPECT_EQ(rs.pop(), 3u);
    EXPECT_EQ(rs.pop(), 2u);
    // 1 was lost to the wrap.
    EXPECT_EQ(rs.pop(), 0u);
}

TEST(Gshare, DistinctBranchesDoNotFullyAlias)
{
    // Two heavily-biased branches with opposite directions must both
    // be predictable: history spreads them over the table.
    GsharePredictor g(14);
    const uint64_t a = 0x400100, b = 0x400200;
    for (int i = 0; i < 300; ++i) {
        g.update(a, true);
        g.update(b, false);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += g.predict(a) == true;
        g.update(a, true);
        correct += g.predict(b) == false;
        g.update(b, false);
    }
    EXPECT_GE(correct, 190);
}

TEST(Bimodal, ResetClears)
{
    BimodalPredictor b(8);
    for (int i = 0; i < 8; ++i)
        b.update(0x40, false);
    EXPECT_FALSE(b.predict(0x40));
    b.reset();
    EXPECT_TRUE(b.predict(0x40));  // back to weakly taken
}

TEST(IndirectPredictor, LastTarget)
{
    IndirectPredictor ind(64, 2);
    EXPECT_FALSE(ind.predict(0x100).has_value());
    ind.update(0x100, 0xA);
    EXPECT_EQ(*ind.predict(0x100), 0xAu);
    ind.update(0x100, 0xB);
    EXPECT_EQ(*ind.predict(0x100), 0xBu);
}

} // anonymous namespace
} // namespace xbs
