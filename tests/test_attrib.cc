/**
 * @file
 * Tests for the miss-attribution layer (src/attrib).
 *
 * The load-bearing property is the pair of sum invariants: every
 * build uop and every fetch-silent cycle is charged to exactly one
 * cause, so the per-cause counters sum to frontend.buildUops and
 * frontend.stallCycles *exactly* — on every frontend, every
 * workload, and under fault injection (attribution is observational;
 * damage may shift categories but must never break the books).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attrib/array_acct.hh"
#include "attrib/recorder.hh"
#include "attrib/rollup.hh"
#include "bpred/btb.hh"
#include "common/json.hh"
#include "core/xbc_frontend.hh"
#include "sim/config.hh"
#include "test_helpers.hh"
#include "verify/inject.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

uint64_t
uopSum(const AttribRecorder &a)
{
    uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumCauses; ++i)
        sum += a.uopCount((Cause)i);
    return sum;
}

uint64_t
cycleSum(const AttribRecorder &a)
{
    uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumCauses; ++i)
        sum += a.cycleCount((Cause)i);
    return sum;
}

void
expectInvariants(const Frontend &fe, const std::string &label)
{
    const AttribRecorder &a = fe.attrib();
    const FrontendMetrics &m = fe.metrics();
    EXPECT_EQ(uopSum(a), m.buildUops.value()) << label;
    EXPECT_EQ(cycleSum(a), m.stallCycles.value()) << label;
    EXPECT_EQ(a.buildResidency.value(), m.buildCycles.value())
        << label;
}

// ---------------------------------------------------------------
// Invariants across every frontend and workload.

struct RunCase
{
    FrontendKind kind;
    const char *workload;
};

class SumInvariants : public testing::TestWithParam<RunCase>
{
};

TEST_P(SumInvariants, CategoriesSumToMetrics)
{
    const RunCase &c = GetParam();
    SimConfig config;
    config.kind = c.kind;
    auto fe = makeFrontend(config);
    Trace trace = makeCatalogTrace(c.workload, 50000);
    fe->run(trace);
    expectInvariants(*fe, std::string(frontendKindName(c.kind)) +
                              "/" + c.workload);
    // Everything that stalled or built must be *explained*: the only
    // category allowed to absorb slack is Unattributed, and a healthy
    // run should barely use it.
    const AttribRecorder &a = fe->attrib();
    if (fe->metrics().buildUops.value() > 0) {
        EXPECT_LT(a.uopCount(Cause::Unattributed),
                  fe->metrics().buildUops.value() / 10);
    }
}

INSTANTIATE_TEST_SUITE_P(
    FrontendsByWorkloads, SumInvariants,
    testing::Values(RunCase{FrontendKind::Ic, "gcc"},
                    RunCase{FrontendKind::Dc, "gcc"},
                    RunCase{FrontendKind::Tc, "gcc"},
                    RunCase{FrontendKind::Bbtc, "gcc"},
                    RunCase{FrontendKind::Xbc, "gcc"},
                    RunCase{FrontendKind::Xbc, "go"},
                    RunCase{FrontendKind::Xbc, "vortex"},
                    RunCase{FrontendKind::Tc, "li"},
                    RunCase{FrontendKind::Bbtc, "perl"}),
    [](const testing::TestParamInfo<RunCase> &info) {
        return std::string(frontendKindName(info.param.kind)) + "_" +
               info.param.workload;
    });

// Small capacities force heavy eviction/build churn — the invariants
// must hold under maximal mode switching, not just steady state.
TEST(SumInvariants, TinyCapacityChurn)
{
    for (uint64_t capacity : {512u, 2048u, 8192u}) {
        SimConfig config;
        config.kind = FrontendKind::Xbc;
        config.xbc.capacityUops = capacity;
        auto fe = makeFrontend(config);
        Trace trace = makeCatalogTrace("gcc", 50000);
        fe->run(trace);
        expectInvariants(*fe,
                         "capacity=" + std::to_string(capacity));
    }
}

// ---------------------------------------------------------------
// Fault injection: corruption shifts loss between categories but the
// accounting must stay exact (the recorder is charged at the metric
// increment sites, so any imbalance is a wiring bug).

struct InjectCase
{
    const char *spec;
    uint64_t seed;
};

class InjectedInvariants : public testing::TestWithParam<InjectCase>
{
};

TEST_P(InjectedInvariants, SumsSurviveCorruption)
{
    const InjectCase &c = GetParam();
    auto plan = parseInjectSpec(c.spec);
    ASSERT_TRUE(plan.ok()) << plan.status().toString();
    FaultInjector injector(plan.take(), c.seed);

    SimConfig config;
    config.kind = FrontendKind::Xbc;
    auto fe = makeFrontend(config);

    Trace base = makeCatalogTrace("gcc", 50000);
    Trace trace = injector.plan().hasTraceActions()
                      ? injector.prepareTrace(base)
                      : std::move(base);
    fe->attachCycleObserver(&injector);
    fe->run(trace);

    EXPECT_GT(injector.injections(), 0u) << injector.summary();
    expectInvariants(*fe, std::string("inject:") + c.spec + " seed " +
                              std::to_string(c.seed));
}

INSTANTIATE_TEST_SUITE_P(
    KindsBySeeds, InjectedInvariants,
    testing::Values(InjectCase{"xbtb-flip@997", 1},
                    InjectCase{"xbtb-flip@997", 5},
                    InjectCase{"xfu-drop@1499", 2},
                    InjectCase{"line-kill@1999", 3},
                    InjectCase{"line-kill@1999", 4},
                    InjectCase{"slot-corrupt@2503", 1},
                    InjectCase{"xbtb-flip@997,line-kill@1999,"
                               "slot-corrupt@2503",
                               7}),
    [](const testing::TestParamInfo<InjectCase> &info) {
        std::string n = info.param.spec;
        for (char &ch : n)
            if (ch == '-' || ch == '@' || ch == ',')
                ch = '_';
        return n + "_s" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------
// AttribRecorder unit semantics.

TEST(AttribRecorder, StickyDisruptionConsumedByEnterBuild)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);

    a.noteDisruption(Cause::XbcConflict);
    a.enterBuild(Cause::StructMiss);  // fresh disruption wins
    a.chargeBuildUops(10);
    EXPECT_EQ(a.uopCount(Cause::XbcConflict), 10u);
    EXPECT_EQ(a.uopCount(Cause::StructMiss), 0u);

    // Consumed: a second build entry without a new disruption falls
    // back to the structural cause.
    a.enterBuild(Cause::StructMiss);
    a.chargeBuildUops(5);
    EXPECT_EQ(a.uopCount(Cause::StructMiss), 5u);
}

TEST(AttribRecorder, ClearDisruptionCancelsPendingCause)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);

    a.noteDisruption(Cause::XbtbMiss);
    a.clearDisruption();  // a later hit resumed delivery
    a.enterBuild(Cause::PartialHit);
    a.chargeBuildUops(3);
    EXPECT_EQ(a.uopCount(Cause::XbtbMiss), 0u);
    EXPECT_EQ(a.uopCount(Cause::PartialHit), 3u);
}

TEST(AttribRecorder, LatestDisruptionWins)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);
    a.noteDisruption(Cause::XbcCapacity);
    a.noteDisruption(Cause::CondMispredict);
    a.enterBuild(Cause::StructMiss);
    a.chargeBuildUops(1);
    EXPECT_EQ(a.uopCount(Cause::CondMispredict), 1u);
}

TEST(AttribRecorder, StallFifoChargesInOrder)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);

    a.noteStall(Cause::SetSearch, 1);
    a.noteStall(Cause::CondMispredict, 2);
    a.chargeSilentCycle();  // -> SetSearch
    a.chargeSilentCycle();  // -> CondMispredict
    a.chargeSilentCycle();  // -> CondMispredict
    a.chargeSilentCycle();  // FIFO empty -> Unattributed
    EXPECT_EQ(a.cycleCount(Cause::SetSearch), 1u);
    EXPECT_EQ(a.cycleCount(Cause::CondMispredict), 2u);
    EXPECT_EQ(a.cycleCount(Cause::Unattributed), 1u);
    EXPECT_EQ(a.chargedCycles(), 4u);
}

TEST(AttribRecorder, BulkSilentChargeMatchesLoop)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);
    a.noteStall(Cause::IcMiss, 3);
    a.chargeSilentCycles(5);
    EXPECT_EQ(a.cycleCount(Cause::IcMiss), 3u);
    EXPECT_EQ(a.cycleCount(Cause::Unattributed), 2u);
}

// ---------------------------------------------------------------
// ArrayAccounting: shadow-directory 3C classification + lifetimes.

TEST(ArrayAccounting, ShadowClassifiesThreeCs)
{
    StatGroup root("attrib");
    ScalarStat cycles(&root, "cycles", "clock");
    // 1 bank x 1 set, 2-line shadow.
    ArrayAccounting acct(&root, &cycles, 1, 1, 2);

    EXPECT_EQ(acct.classifyMiss(0xA), Cause::XbcCompulsory);

    acct.onAlloc(0xA, 0, 0);  // built
    acct.onEvict(0xA, 0, 0, true, true);  // evicted -> shadow
    EXPECT_TRUE(acct.inShadow(0xA));
    EXPECT_EQ(acct.classifyMiss(0xA), Cause::XbcConflict);

    // Two younger evictions push 0xA out of the bounded shadow:
    // an old eviction reads as capacity, not conflict.
    acct.onAlloc(0xB, 0, 0);
    acct.onEvict(0xB, 0, 0, true, true);
    acct.onAlloc(0xC, 0, 0);
    acct.onEvict(0xC, 0, 0, true, true);
    EXPECT_FALSE(acct.inShadow(0xA));
    EXPECT_EQ(acct.shadowSize(), 2u);
    EXPECT_EQ(acct.classifyMiss(0xA), Cause::XbcCapacity);
    EXPECT_EQ(acct.classifyMiss(0xB), Cause::XbcConflict);

    // Rebuilding removes the tag from the shadow again.
    acct.onAlloc(0xB, 0, 0);
    EXPECT_FALSE(acct.inShadow(0xB));
}

TEST(ArrayAccounting, LifetimeHistogramsAndHeadSplit)
{
    StatGroup root("attrib");
    ScalarStat cycles(&root, "cycles", "clock");
    ArrayAccounting acct(&root, &cycles, 2, 4, 8);

    cycles.set(100);
    acct.onAlloc(0x1, 0, 2);
    cycles.set(140);
    acct.onHit(0x1);  // first hit: latency 40
    acct.onHit(0x1);
    cycles.set(200);
    acct.onEvict(0x1, 0, 2, /*head=*/true, /*last_gone=*/true);

    EXPECT_EQ(acct.buildToFirstHit().total(), 1u);
    EXPECT_EQ(acct.buildToFirstHit().count(40), 1u);
    EXPECT_EQ(acct.hitsBeforeEvict().count(2), 1u);
    EXPECT_EQ(acct.headEvictions.value(), 1u);
    EXPECT_EQ(acct.zeroHitEvictions.value(), 0u);

    // A never-hit XB evicted via a non-head line.
    acct.onAlloc(0x2, 1, 3);
    acct.onEvict(0x2, 1, 3, /*head=*/false, /*last_gone=*/true);
    EXPECT_EQ(acct.zeroHitEvictions.value(), 1u);
    EXPECT_EQ(acct.nonHeadEvictions.value(), 1u);
    EXPECT_EQ(acct.hitsBeforeEvict().count(0), 1u);
}

TEST(ArrayAccounting, RebuildKeepsOriginalBuildStamp)
{
    StatGroup root("attrib");
    ScalarStat cycles(&root, "cycles", "clock");
    ArrayAccounting acct(&root, &cycles, 1, 1, 4);

    cycles.set(10);
    acct.onAlloc(0x5, 0, 0);
    cycles.set(50);
    acct.onAlloc(0x5, 0, 0);  // extension of the live XB
    cycles.set(60);
    acct.onHit(0x5);
    // Latency measured from the *original* build, not the extension.
    EXPECT_EQ(acct.buildToFirstHit().count(50), 1u);
}

// ---------------------------------------------------------------
// The XBC frontend's live accounting reconciles with the data array.

TEST(ArrayAccounting, XbcRunReconciles)
{
    SimConfig config;
    config.kind = FrontendKind::Xbc;
    config.xbc.capacityUops = 4096;  // force evictions
    XbcFrontend fe(config.frontend, config.xbc);
    Trace trace = makeCatalogTrace("gcc", 50000);
    fe.run(trace);

    const ArrayAccounting *acct = fe.arrayAccounting();
    ASSERT_NE(acct, nullptr);
    const XbcDataArray &array = fe.dataArray();
    // Every eviction was split into head or non-head, one event per
    // evicted line.
    EXPECT_EQ(acct->headEvictions.value() +
                  acct->nonHeadEvictions.value(),
              array.evictions.value());
    EXPECT_GT(acct->headEvictions.value(), 0u);
    // The shadow never outgrows its capacity (the physical line
    // count) and lifetime samples were actually collected.
    EXPECT_LE(acct->shadowSize(),
              (std::size_t)array.lineCount());
    EXPECT_GT(acct->buildToFirstHit().total(), 0u);
    EXPECT_GT(acct->hitsBeforeEvict().total(), 0u);
}

// ---------------------------------------------------------------
// Return-stack underflow accounting (bpred satellite).

TEST(ReturnStack, CountsUnderflows)
{
    ReturnStack rsb(4);
    EXPECT_EQ(rsb.underflows(), 0u);
    rsb.push(0x100);
    EXPECT_NE(rsb.pop(), 0u);
    EXPECT_EQ(rsb.underflows(), 0u);
    EXPECT_EQ(rsb.pop(), 0u);  // empty
    EXPECT_EQ(rsb.pop(), 0u);
    EXPECT_EQ(rsb.underflows(), 2u);
    rsb.reset();
    EXPECT_EQ(rsb.underflows(), 0u);
}

// ---------------------------------------------------------------
// Rollup JSON round-trip (the batch pipeline's carrier type).

TEST(AttribRollup, JsonRoundTripAndSums)
{
    StatGroup root("fe");
    AttribRecorder a(&root, nullptr);
    a.enterBuild(Cause::ColdStart);
    a.chargeBuildUops(7);
    a.noteDisruption(Cause::XbcConflict);
    a.enterBuild(Cause::StructMiss);
    a.chargeBuildUops(13);
    a.noteStall(Cause::CondMispredict, 4);
    a.chargeSilentCycles(4);

    std::ostringstream os;
    {
        JsonWriter jw(os);
        jw.beginObject();
        a.writeJson(jw, /*build_uops=*/20, /*stall_cycles=*/4);
        jw.endObject();
    }
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    const JsonValue *attrib = doc.find("attrib");
    ASSERT_NE(attrib, nullptr);

    AttribRollup r = parseAttribRollup(*attrib);
    EXPECT_TRUE(r.has);
    EXPECT_EQ(r.buildUops, 20u);
    EXPECT_EQ(r.silentCycles, 4u);
    EXPECT_TRUE(r.sumsMatch());
    EXPECT_EQ(r.dominantUopCause(), "xbcConflict");

    // Round-trip through the rollup writer stays identical.
    std::ostringstream os2;
    {
        JsonWriter jw(os2);
        jw.beginObject();
        writeAttribRollup(jw, r);
        jw.endObject();
    }
    JsonValue doc2;
    ASSERT_TRUE(parseJson(os2.str(), &doc2, &err)) << err;
    AttribRollup r2 = parseAttribRollup(*doc2.find("attrib"));
    EXPECT_EQ(r2.buildUops, r.buildUops);
    EXPECT_EQ(r2.uops, r.uops);
    EXPECT_EQ(r2.cycles, r.cycles);

    // A perturbed category must be caught.
    r2.uops[0].second += 1;
    EXPECT_FALSE(r2.sumsMatch());
}

} // anonymous namespace
} // namespace xbs
