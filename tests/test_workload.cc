/**
 * @file
 * Unit tests for the synthetic workload layer: CFG linking, dynamic
 * behaviors, the executor, the structured program builder, and the
 * 21-entry catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/trace_stats.hh"
#include "workload/builder.hh"
#include "workload/catalog.hh"
#include "workload/cfg.hh"
#include "workload/executor.hh"

namespace xbs
{
namespace
{

/** A two-function program: main calls f1 in a loop of 3. */
std::shared_ptr<const Program>
makeCallLoopProgram(uint32_t trips = 3)
{
    CfgProgram cfg("callloop");
    int main_id = cfg.addFunction("main");
    int f1_id = cfg.addFunction("f1");

    auto &main_fn = cfg.function(main_id);
    int header = main_fn.addBlock();
    main_fn.blocks[header].body.push_back({4, 2});
    main_fn.blocks[header].term.kind = TermKind::Call;
    main_fn.blocks[header].term.calleeFunctions = {f1_id};
    main_fn.blocks[header].term.length = 5;
    main_fn.blocks[header].term.numUops = 2;

    int latch = main_fn.addBlock();
    main_fn.blocks[latch].body.push_back({3, 1});
    CondBehavior loop;
    loop.kind = CondBehavior::Kind::Loop;
    loop.tripCount = trips;
    loop.tripJitter = 0.0;
    main_fn.blocks[latch].term.kind = TermKind::CondBranch;
    main_fn.blocks[latch].term.targetBlock = header;
    main_fn.blocks[latch].term.cond = loop;
    main_fn.blocks[latch].term.length = 2;
    main_fn.blocks[latch].term.numUops = 1;

    int exit_blk = main_fn.addBlock();
    main_fn.blocks[exit_blk].term.kind = TermKind::Return;
    main_fn.blocks[exit_blk].term.length = 1;
    main_fn.blocks[exit_blk].term.numUops = 2;

    auto &f1 = cfg.function(f1_id);
    int body = f1.addBlock();
    f1.blocks[body].body.push_back({4, 3});
    f1.blocks[body].term.kind = TermKind::Return;
    f1.blocks[body].term.length = 1;
    f1.blocks[body].term.numUops = 2;

    return cfg.link(0x1000);
}

TEST(CfgLink, AssignsSequentialIps)
{
    auto prog = makeCallLoopProgram();
    const auto &code = prog->code();
    for (std::size_t i = 1; i < code.size(); ++i) {
        const auto &prev = code.inst((int32_t)i - 1);
        const auto &cur = code.inst((int32_t)i);
        EXPECT_GE(cur.ip, prev.ip + prev.length);
    }
    EXPECT_EQ(prog->functions().size(), 2u);
    EXPECT_EQ(prog->functions()[0].name, "main");
}

TEST(CfgLink, ResolvesCallTargets)
{
    auto prog = makeCallLoopProgram();
    const auto &code = prog->code();
    // Find the call and check it targets f1's entry instruction.
    const auto &f1 = prog->functions()[1];
    bool found = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const auto &si = code.inst((int32_t)i);
        if (si.cls == InstClass::DirectCall) {
            EXPECT_EQ(si.takenIdx, f1.firstIdx);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(CfgLink, RejectsDanglingFallThrough)
{
    CfgProgram cfg("bad");
    int f = cfg.addFunction("f");
    cfg.function(f).addBlock();  // no terminator, falls off the end
    EXPECT_EXIT(cfg.link(), testing::ExitedWithCode(1),
                "last block");
}

TEST(CfgLink, RejectsBadTarget)
{
    CfgProgram cfg("bad");
    int f = cfg.addFunction("f");
    auto &fn = cfg.function(f);
    int b = fn.addBlock();
    fn.blocks[b].term.kind = TermKind::Jump;
    fn.blocks[b].term.targetBlock = 99;
    EXPECT_EXIT(cfg.link(), testing::ExitedWithCode(1),
                "bad target block");
}

TEST(CfgLink, LinkExReportsStatusWithoutAborting)
{
    // The recoverable path: every structural violation comes back as
    // a Status naming the function, so a driver can exit 2 instead
    // of aborting deep inside workload construction.
    CfgProgram cfg("bad");
    int f = cfg.addFunction("broken");
    auto &fn = cfg.function(f);
    int b = fn.addBlock();
    fn.blocks[b].term.kind = TermKind::Jump;
    fn.blocks[b].term.targetBlock = 42;
    auto p = cfg.linkEx();
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.status().cause().find("'broken'"),
              std::string::npos);
    EXPECT_NE(p.status().cause().find("bad target block 42"),
              std::string::npos);
}

TEST(CfgLink, LinkExRejectsEmptyProgram)
{
    CfgProgram cfg("empty");
    auto p = cfg.linkEx();
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.status().cause().find("has no functions"),
              std::string::npos);
}

TEST(CfgLink, LinkExRejectsDanglingFallThrough)
{
    CfgProgram cfg("bad");
    int f = cfg.addFunction("f");
    cfg.function(f).addBlock();  // no terminator, falls off the end
    auto p = cfg.linkEx();
    ASSERT_FALSE(p.ok());
    EXPECT_NE(p.status().cause().find("last block"),
              std::string::npos);
}

TEST(CfgLink, LinkExSucceedsOnValidProgram)
{
    CfgProgram cfg("ok");
    int f = cfg.addFunction("f");
    auto &fn = cfg.function(f);
    int b = fn.addBlock();
    fn.blocks[b].body.push_back(CfgInst{});
    fn.blocks[b].term.kind = TermKind::Return;
    auto p = cfg.linkEx();
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_EQ(p.value()->name(), "ok");
}

TEST(Executor, LoopTripCountExact)
{
    auto prog = makeCallLoopProgram(3);
    Executor ex(prog, 1);
    // Walk enough instructions to cover one outer activation:
    // 3 iterations x (seq, call, f1 body, f1 ret, latch seq, latch).
    Trace t = ex.run(60);
    t.validate();

    // Count latch executions and taken directions.
    const auto &code = prog->code();
    int latch_taken = 0, latch_total = 0;
    for (std::size_t i = 0; i < t.numRecords(); ++i) {
        const auto &si = t.inst(i);
        if (si.cls == InstClass::CondBranch) {
            ++latch_total;
            latch_taken += t.record(i).taken;
        }
    }
    (void)code;
    ASSERT_GT(latch_total, 3);
    // A 3-trip loop takes its latch twice then exits once: the taken
    // fraction must be 2/3.
    EXPECT_NEAR((double)latch_taken / latch_total, 2.0 / 3.0, 0.05);
}

TEST(Executor, CallReturnMatches)
{
    auto prog = makeCallLoopProgram();
    Executor ex(prog, 1);
    Trace t = ex.run(100);
    t.validate();
    // Every return's successor must be the instruction after a call.
    for (std::size_t i = 0; i + 1 < t.numRecords(); ++i) {
        if (t.inst(i).cls == InstClass::Return) {
            uint64_t succ = t.inst(i + 1).ip;
            // Either the call-site continuation or the entry restart.
            bool ok = false;
            for (std::size_t j = 0; j < t.code().size(); ++j) {
                const auto &si = t.code().inst((int32_t)j);
                if (isCall(si.cls) && si.fallThroughIp() == succ)
                    ok = true;
            }
            ok = ok || succ == t.code()
                               .inst(prog->entryIdx()).ip;
            EXPECT_TRUE(ok) << "return at record " << i;
        }
    }
}

TEST(Executor, RestartsAfterMainReturns)
{
    auto prog = makeCallLoopProgram(2);
    Executor ex(prog, 1);
    Trace t = ex.run(400);
    // The entry instruction must appear more than once (restart).
    int entries = 0;
    for (std::size_t i = 0; i < t.numRecords(); ++i) {
        if (t.record(i).staticIdx == prog->entryIdx())
            ++entries;
    }
    EXPECT_GT(entries, 1);
}

TEST(Executor, DeterministicAcrossRuns)
{
    auto prog = makeCallLoopProgram();
    Trace a = Executor(prog, 7).run(200);
    Trace b = Executor(prog, 7).run(200);
    ASSERT_EQ(a.numRecords(), b.numRecords());
    for (std::size_t i = 0; i < a.numRecords(); ++i) {
        EXPECT_EQ(a.record(i).staticIdx, b.record(i).staticIdx);
        EXPECT_EQ(a.record(i).taken, b.record(i).taken);
    }
}

TEST(Executor, PatternBehaviorRepeats)
{
    CfgProgram cfg("pattern");
    int f = cfg.addFunction("f");
    auto &fn = cfg.function(f);
    int b0 = fn.addBlock();
    CondBehavior pb;
    pb.kind = CondBehavior::Kind::Pattern;
    pb.patternLen = 3;
    pb.patternBits = 0b011;  // T, T, N repeating
    fn.blocks[b0].term.kind = TermKind::CondBranch;
    fn.blocks[b0].term.targetBlock = b0;
    fn.blocks[b0].term.cond = pb;
    int b1 = fn.addBlock();
    fn.blocks[b1].term.kind = TermKind::Return;
    auto prog = cfg.link();

    Executor ex(prog, 1);
    std::vector<bool> dirs;
    for (int i = 0; i < 9; ++i) {
        int32_t idx = ex.step();
        if (prog->code().inst(idx).cls == InstClass::CondBranch)
            dirs.push_back(ex.lastTaken());
    }
    ASSERT_GE(dirs.size(), 6u);
    EXPECT_TRUE(dirs[0]);
    EXPECT_TRUE(dirs[1]);
    EXPECT_FALSE(dirs[2]);
    EXPECT_TRUE(dirs[3]);
    EXPECT_TRUE(dirs[4]);
    EXPECT_FALSE(dirs[5]);
}

TEST(Builder, DeterministicFromSeed)
{
    WorkloadProfile p = specIntProfile();
    p.name = "det";
    p.seed = 1234;
    p.numFunctions = 20;
    auto a = buildProgram(p);
    auto b = buildProgram(p);
    ASSERT_EQ(a->code().size(), b->code().size());
    for (std::size_t i = 0; i < a->code().size(); ++i) {
        EXPECT_EQ(a->code().inst((int32_t)i).ip,
                  b->code().inst((int32_t)i).ip);
        EXPECT_EQ(a->code().inst((int32_t)i).cls,
                  b->code().inst((int32_t)i).cls);
    }
}

TEST(Builder, ProducesJoinPoints)
{
    // If/else diamonds must produce instructions that are both jump
    // targets and fall-through successors (the paper's multi-entry /
    // redundancy scenario).
    WorkloadProfile p = sysmarkProfile();
    p.name = "joins";
    p.seed = 5;
    p.numFunctions = 30;
    auto prog = buildProgram(p);
    const auto &code = prog->code();

    std::set<int32_t> jump_targets;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const auto &si = code.inst((int32_t)i);
        if (si.cls == InstClass::DirectJump &&
            si.takenIdx != kNoTarget) {
            jump_targets.insert(si.takenIdx);
        }
    }
    // A jump target whose predecessor instruction is non-control is
    // a fall-through join.
    int joins = 0;
    for (int32_t t : jump_targets) {
        if (t > 0 && !code.inst(t - 1).isControl())
            ++joins;
    }
    EXPECT_GT(joins, 0);
}

class ProfileSweep
    : public testing::TestWithParam<std::pair<const char *, int>>
{
};

TEST_P(ProfileSweep, StatisticalShape)
{
    auto [suite, seed] = GetParam();
    WorkloadProfile p;
    if (std::string(suite) == "spec")
        p = specIntProfile();
    else if (std::string(suite) == "sysmark")
        p = sysmarkProfile();
    else
        p = gamesProfile();
    p.name = std::string("sweep-") + suite;
    p.seed = (uint64_t)seed;
    p.numFunctions = std::max(30u, p.numFunctions / 4);

    auto prog = buildProgram(p);
    Trace t = Executor(prog, (uint64_t)seed).run(40000);
    t.validate();

    // x86-like aggregates must hold for any seed.
    double uops_per_inst = (double)t.totalUops() / t.numRecords();
    EXPECT_GT(uops_per_inst, 1.2);
    EXPECT_LT(uops_per_inst, 2.2);

    uint64_t branches = 0, taken = 0, controls = 0;
    for (std::size_t i = 0; i < t.numRecords(); ++i) {
        const auto &si = t.inst(i);
        if (si.isControl())
            ++controls;
        if (si.cls == InstClass::CondBranch) {
            ++branches;
            taken += t.record(i).taken;
        }
    }
    // Conditional branches: 8-25% of the stream; controls below 40%.
    EXPECT_GT((double)branches / t.numRecords(), 0.05);
    EXPECT_LT((double)branches / t.numRecords(), 0.25);
    EXPECT_LT((double)controls / t.numRecords(), 0.40);
    // Taken fraction within a plausible band.
    EXPECT_GT((double)taken / branches, 0.35);
    EXPECT_LT((double)taken / branches, 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProfileSweep,
    testing::Values(std::make_pair("spec", 1),
                    std::make_pair("spec", 2),
                    std::make_pair("sysmark", 1),
                    std::make_pair("sysmark", 2),
                    std::make_pair("games", 1),
                    std::make_pair("games", 2)),
    [](const auto &info) {
        return std::string(info.param.first) +
               std::to_string(info.param.second);
    });

TEST(Catalog, SuiteFootprintOrdering)
{
    // SYSmark32-like workloads must have the largest dynamic code
    // footprints and SPECint95-like the smallest (DESIGN.md suite
    // calibration); measured as unique uops touched in 150K insts.
    auto dyn_uops = [](const std::string &name) {
        Trace t = makeCatalogTrace(name, 150000);
        std::vector<bool> seen(t.code().size(), false);
        uint64_t uops = 0;
        for (std::size_t i = 0; i < t.numRecords(); ++i) {
            if (!seen[t.record(i).staticIdx]) {
                seen[t.record(i).staticIdx] = true;
                uops += t.inst(i).numUops;
            }
        }
        return uops;
    };
    auto suite_mean = [&](std::initializer_list<const char *> names) {
        uint64_t sum = 0;
        for (const char *n : names)
            sum += dyn_uops(n);
        return (double)sum / (double)names.size();
    };
    double spec = suite_mean({"go", "li", "vortex"});
    double sysm = suite_mean({"word", "excel", "netscape"});
    double games = suite_mean({"quake2", "unreal", "halflife"});
    EXPECT_GT(sysm, games);
    EXPECT_GT(games, spec * 0.8);
    EXPECT_GT(sysm, spec * 1.5);
}

TEST(Catalog, HasTwentyOneWorkloadsInThreeSuites)
{
    const auto &cat = workloadCatalog();
    ASSERT_EQ(cat.size(), 21u);
    int spec = 0, sys = 0, games = 0;
    for (const auto &e : cat) {
        if (e.suite == "SPECint95")
            ++spec;
        else if (e.suite == "SYSmark32")
            ++sys;
        else if (e.suite == "Games")
            ++games;
    }
    EXPECT_EQ(spec, 8);
    EXPECT_EQ(sys, 8);
    EXPECT_EQ(games, 5);
}

TEST(Catalog, FindByName)
{
    EXPECT_EQ(findWorkload("gcc").suite, "SPECint95");
    EXPECT_EQ(findWorkload("quake2").suite, "Games");
    EXPECT_EXIT(findWorkload("nosuch"), testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Catalog, FindExReturnsStatusForUnknown)
{
    Expected<const CatalogEntry *> e = findWorkloadEx("nosuch");
    ASSERT_FALSE(e.ok());
    EXPECT_NE(e.status().cause().find("unknown workload 'nosuch'"),
              std::string::npos);

    Expected<const CatalogEntry *> ok = findWorkloadEx("gcc");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value()->suite, "SPECint95");
}

TEST(Catalog, WorkloadNamesEnumerateWholeCatalog)
{
    std::vector<std::string> names = catalogWorkloadNames();
    EXPECT_EQ(names.size(), workloadCatalog().size());
    EXPECT_EQ(names.size(), 21u);
    EXPECT_EQ(names.front(), "go");
    EXPECT_EQ(names.back(), "falcon4");
}

TEST(Catalog, TraceLengthHonored)
{
    Trace t = makeCatalogTrace("compress", 5000);
    EXPECT_EQ(t.numRecords(), 5000u);
    t.validate();
}

/** Every catalog workload must produce a valid, varied trace. */
class CatalogParam : public testing::TestWithParam<std::string>
{
};

TEST_P(CatalogParam, ShortTraceIsValid)
{
    Trace t = makeCatalogTrace(GetParam(), 20000);
    t.validate();
    EXPECT_EQ(t.numRecords(), 20000u);

    auto s = computeBlockLengthStats(t);
    // Block lengths must land in a plausible x86-like range.
    EXPECT_GT(s.basicBlock.mean(), 3.0);
    EXPECT_LT(s.basicBlock.mean(), 14.0);
    EXPECT_GE(s.xb.mean(), s.basicBlock.mean() - 0.01);
    EXPECT_GE(s.xbPromoted.mean(), s.xb.mean() - 0.01);
    EXPECT_GE(s.dualXb.mean(), s.xb.mean());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CatalogParam,
    testing::Values("go", "m88ksim", "gcc", "compress", "li", "ijpeg",
                    "perl", "vortex", "word", "excel", "powerpnt",
                    "access", "corel", "photoshp", "premiere",
                    "netscape", "quake2", "unreal", "halflife",
                    "descent3", "falcon4"));

} // anonymous namespace
} // namespace xbs
