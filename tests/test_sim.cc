/**
 * @file
 * Tests for the simulation driver: config factory, suite runner,
 * and aggregation helpers.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/runner.hh"

namespace xbs
{
namespace
{

TEST(Config, FactoryProducesNamedFrontends)
{
    EXPECT_EQ(makeFrontend(SimConfig::icBaseline())->name(), "ic");
    EXPECT_EQ(makeFrontend(SimConfig::dcBaseline())->name(), "dcfe");
    EXPECT_EQ(makeFrontend(SimConfig::tcBaseline())->name(), "tc");
    EXPECT_EQ(makeFrontend(SimConfig::bbtcBaseline())->name(),
              "bbtc");
    EXPECT_EQ(makeFrontend(SimConfig::xbcBaseline())->name(),
              "xbcfe");
}

TEST(Config, BaselineCapacities)
{
    auto tc = SimConfig::tcBaseline(16384, 2);
    EXPECT_EQ(tc.tc.capacityUops, 16384u);
    EXPECT_EQ(tc.tc.ways, 2u);
    auto xbc = SimConfig::xbcBaseline(8192, 1);
    EXPECT_EQ(xbc.xbc.capacityUops, 8192u);
    EXPECT_EQ(xbc.xbc.ways, 1u);
}

TEST(Config, KindNames)
{
    EXPECT_STREQ(frontendKindName(FrontendKind::Ic), "IC");
    EXPECT_STREQ(frontendKindName(FrontendKind::Dc), "DC");
    EXPECT_STREQ(frontendKindName(FrontendKind::Tc), "TC");
    EXPECT_STREQ(frontendKindName(FrontendKind::Bbtc), "BBTC");
    EXPECT_STREQ(frontendKindName(FrontendKind::Xbc), "XBC");
}

TEST(Runner, RunOneProducesMetrics)
{
    SuiteRunner runner(15000, {"compress"});
    RunResult r = runner.runOne("compress", "xbc",
                                SimConfig::xbcBaseline());
    EXPECT_EQ(r.workload, "compress");
    EXPECT_EQ(r.suite, "SPECint95");
    EXPECT_EQ(r.label, "xbc");
    EXPECT_GT(r.bandwidth, 0.0);
    EXPECT_GE(r.missRate, 0.0);
    EXPECT_LE(r.missRate, 1.0);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.totalUops, 0u);
}

TEST(Runner, SweepCoversWorkloadsTimesConfigs)
{
    SuiteRunner runner(8000, {"compress", "quake2"});
    std::vector<std::pair<std::string, SimConfig>> configs = {
        {"tc", SimConfig::tcBaseline()},
        {"xbc", SimConfig::xbcBaseline()},
    };
    unsigned progress_calls = 0;
    auto results = runner.sweep(configs, [&](const RunResult &) {
        ++progress_calls;
    });
    EXPECT_EQ(results.size(), 4u);
    EXPECT_EQ(progress_calls, 4u);

    // Workload-outer order: both configs of a workload adjacent.
    EXPECT_EQ(results[0].workload, results[1].workload);
    EXPECT_NE(results[0].label, results[1].label);
}

TEST(Runner, DefaultsToFullCatalog)
{
    SuiteRunner runner(1000);
    EXPECT_EQ(runner.workloads().size(), 21u);
}

TEST(Runner, Aggregation)
{
    std::vector<RunResult> rs;
    RunResult a;
    a.label = "x";
    a.suite = "S1";
    a.missRate = 0.2;
    a.bandwidth = 6.0;
    RunResult b = a;
    b.missRate = 0.4;
    b.bandwidth = 8.0;
    RunResult c = a;
    c.suite = "S2";
    c.missRate = 0.9;
    rs = {a, b, c};

    EXPECT_NEAR(SuiteRunner::meanMissRate(rs, "x", "S1"), 0.3, 1e-9);
    EXPECT_NEAR(SuiteRunner::meanMissRate(rs, "x"), 0.5, 1e-9);
    EXPECT_NEAR(SuiteRunner::meanBandwidth(rs, "x", "S1"), 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(SuiteRunner::meanMissRate(rs, "nolabel"), 0.0);
}

TEST(Runner, RedundancyReportedPerStructure)
{
    SuiteRunner runner(15000, {"word"});
    RunResult tc = runner.runOne("word", "tc",
                                 SimConfig::tcBaseline());
    RunResult xbc = runner.runOne("word", "xbc",
                                  SimConfig::xbcBaseline());
    EXPECT_GT(tc.redundancy, 1.2);
    EXPECT_LT(xbc.redundancy, tc.redundancy);
}

} // anonymous namespace
} // namespace xbs
