/**
 * @file
 * Sweep service & result cache tests: SHA-256 vectors, the xbatchd
 * wire protocol, cache key derivation and entry integrity, typed
 * resource-exhaustion errors, duplicate coalescing in the scheduler,
 * service-mode scheduling (priority, tenant fair share, cancel),
 * the crash-point recovery matrix (this test binary doubles as the
 * victim process), and a fork-based end-to-end daemon round trip.
 */

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "batch/journal.hh"
#include "batch/result_cache.hh"
#include "batch/scheduler.hh"
#include "common/crashpoint.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/sha256.hh"
#include "svc/daemon.hh"
#include "svc/proto.hh"
#include "verify/crash_matrix.hh"
#include "workload/catalog.hh"

using namespace xbs;

namespace
{

/** Fresh scratch directory per test. */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/xbs_svc_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

/** Write an executable /bin/sh script. */
std::string
writeScript(const std::string &dir, const std::string &name,
            const std::string &body)
{
    const std::string path = dir + "/" + name;
    {
        std::ofstream os(path);
        os << "#!/bin/sh\n" << body;
    }
    ::chmod(path.c_str(), 0755);
    return path;
}

const char *kOkJson =
    "echo '{\"bandwidth\": 2.5, \"missRate\": 0.125, "
    "\"overallIpc\": 2.0, \"cycles\": 100, \"totalUops\": 250}'\n";

SchedulerOptions
fastOptions(const std::string &xbsim)
{
    SchedulerOptions opts;
    opts.xbsimPath = xbsim;
    opts.workers = 2;
    opts.timeoutSec = 5.0;
    opts.maxRetries = 0;
    opts.backoffMs = 10;
    opts.graceSec = 0.2;
    opts.pollMs = 2;
    return opts;
}

/** A real-catalog spec (cache keys need a known workload). */
RunSpec
gccSpec(uint64_t insts = 1000)
{
    RunSpec run;
    run.workload = "gcc";
    run.frontend = "xbc";
    run.capacity = 32768;
    run.insts = insts;
    return run;
}

std::string
selfExe()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    EXPECT_GT(n, 0);
    buf[n > 0 ? n : 0] = '\0';
    return buf;
}

} // anonymous namespace

// ---------------------------------------------------------------
// SHA-256 (hand-rolled: pin it to the FIPS 180-4 vectors)
// ---------------------------------------------------------------

TEST(Sha256, KnownVectors)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca4959"
              "91b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410f"
              "f61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklm"
                        "nlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd"
              "419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string text =
        "the journal is the source of truth, the cache is only an "
        "accelerator";
    Sha256 h;
    for (char c : text)
        h.update(&c, 1);
    EXPECT_EQ(h.hexDigest(), sha256Hex(text));
}

TEST(Sha256, LengthBoundaryBlocks)
{
    // 55/56/64 bytes straddle the padding boundary cases.
    for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
        std::string a(len, 'x');
        Sha256 h;
        h.update(a.substr(0, len / 2));
        h.update(a.substr(len / 2));
        EXPECT_EQ(h.hexDigest(), sha256Hex(a)) << "len " << len;
    }
}

// ---------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------

TEST(Proto, RenderParseRoundTrip)
{
    ProtoRequest req;
    req.op = ProtoOp::Submit;
    req.spec = {"--workload=gcc", "--frontend=xbc",
                "--capacity=32768", "--insts=1000"};
    req.tenant = "alice";
    req.priority = 3;

    Expected<ProtoRequest> back =
        parseProtoRequest(renderProtoRequest(req));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().op, ProtoOp::Submit);
    EXPECT_EQ(back.value().spec, req.spec);
    EXPECT_EQ(back.value().tenant, "alice");
    EXPECT_EQ(back.value().priority, 3);
}

TEST(Proto, AllOpsRoundTrip)
{
    for (ProtoOp op : {ProtoOp::Ping, ProtoOp::Status,
                       ProtoOp::Metrics, ProtoOp::Drain,
                       ProtoOp::Shutdown, ProtoOp::Cancel,
                       ProtoOp::Submit}) {
        ProtoRequest req;
        req.op = op;
        if (op == ProtoOp::Submit)
            req.spec = {"--workload=gcc"};
        if (op == ProtoOp::Cancel)
            req.job = 7;
        Expected<ProtoRequest> back =
            parseProtoRequest(renderProtoRequest(req));
        ASSERT_TRUE(back.ok())
            << protoOpName(op) << ": " << back.status().toString();
        EXPECT_EQ(back.value().op, op);
    }
}

TEST(Proto, SubmitWithoutSpecRejected)
{
    EXPECT_FALSE(parseProtoRequest("{\"op\": \"submit\"}").ok());
}

TEST(Proto, CancelWithoutJobRejected)
{
    EXPECT_FALSE(parseProtoRequest("{\"op\": \"cancel\"}").ok());
}

TEST(Proto, GarbageRejected)
{
    EXPECT_FALSE(parseProtoRequest("not json").ok());
    EXPECT_FALSE(parseProtoRequest("{\"op\": \"explode\"}").ok());
    EXPECT_FALSE(parseProtoRequest("{}").ok());
}

// ---------------------------------------------------------------
// Cache key derivation
// ---------------------------------------------------------------

TEST(CacheKey, Deterministic)
{
    Expected<CacheKey> a = makeCacheKey(gccSpec());
    Expected<CacheKey> b = makeCacheKey(gccSpec());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().hex, b.value().hex);
    EXPECT_EQ(a.value().hex.size(), 64u);
}

TEST(CacheKey, InstsZeroResolvesToEffectiveDefault)
{
    // insts=0 means "the xbsim default", which env vars change; the
    // canonical spec pins the *effective* length so a cached result
    // can never be served across a different default.
    Expected<CacheKey> implicit = makeCacheKey(gccSpec(0));
    Expected<CacheKey> explicit_ =
        makeCacheKey(gccSpec(defaultTraceLength()));
    ASSERT_TRUE(implicit.ok());
    ASSERT_TRUE(explicit_.ok());
    EXPECT_EQ(implicit.value().hex, explicit_.value().hex);
}

TEST(CacheKey, DistinctSpecsGetDistinctKeys)
{
    Expected<CacheKey> a = makeCacheKey(gccSpec(1000));
    Expected<CacheKey> b = makeCacheKey(gccSpec(1001));
    RunSpec tc = gccSpec(1000);
    tc.frontend = "tc";
    Expected<CacheKey> c = makeCacheKey(tc);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_NE(a.value().hex, b.value().hex);
    EXPECT_NE(a.value().hex, c.value().hex);
}

TEST(CacheKey, UnknownWorkloadFails)
{
    RunSpec run = gccSpec();
    run.workload = "no-such-workload";
    EXPECT_FALSE(makeCacheKey(run).ok());
}

// ---------------------------------------------------------------
// Result cache store
// ---------------------------------------------------------------

TEST(ResultCache, StoreLookupRoundTripIsExact)
{
    const std::string dir = makeTempDir();
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir + "/cache").isOk());

    Expected<CacheKey> key = makeCacheKey(gccSpec());
    ASSERT_TRUE(key.ok());

    CacheEntry entry;
    entry.label = "xbc/gcc@32768";
    entry.seconds = 1.25;
    // Deliberately precision-hostile doubles: the store must round
    // trip them bit-exactly (report.json equality is an acceptance
    // criterion for cached runs).
    entry.metrics.bandwidth = 7.8116300000000001;
    entry.metrics.missRate = 0.087583700000000003;
    entry.metrics.overallIpc = 2.0888700000000001;
    entry.metrics.cycles = 15731;
    entry.metrics.totalUops = 32860;

    ASSERT_TRUE(cache.store(key.value(), entry).isOk());
    Expected<CacheEntry> back = cache.lookup(key.value());
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().label, entry.label);
    EXPECT_EQ(back.value().metrics.bandwidth,
              entry.metrics.bandwidth);
    EXPECT_EQ(back.value().metrics.missRate,
              entry.metrics.missRate);
    EXPECT_EQ(back.value().metrics.overallIpc,
              entry.metrics.overallIpc);
    EXPECT_EQ(back.value().metrics.cycles, entry.metrics.cycles);
    EXPECT_EQ(back.value().metrics.totalUops,
              entry.metrics.totalUops);
}

TEST(ResultCache, CleanMissIsNotFound)
{
    const std::string dir = makeTempDir();
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir + "/cache").isOk());
    Expected<CacheKey> key = makeCacheKey(gccSpec());
    ASSERT_TRUE(key.ok());
    Expected<CacheEntry> miss = cache.lookup(key.value());
    ASSERT_FALSE(miss.ok());
    EXPECT_EQ(miss.status().code(), StatusCode::NotFound);
}

TEST(ResultCache, CorruptEntryDemotedToMissAndUnlinked)
{
    const std::string dir = makeTempDir();
    ResultCache cache;
    ASSERT_TRUE(cache.open(dir + "/cache").isOk());
    Expected<CacheKey> key = makeCacheKey(gccSpec());
    ASSERT_TRUE(key.ok());

    CacheEntry entry;
    entry.label = "victim";
    entry.seconds = 1.0;
    entry.metrics.cycles = 10;
    ASSERT_TRUE(cache.store(key.value(), entry).isOk());

    // Flip a byte in the body: the guard hash must catch it.
    const std::string path = cache.entryPath(key.value());
    Expected<std::string> read = readFileToString(path);
    ASSERT_TRUE(read.ok());
    std::string blob = read.take();
    blob[blob.size() / 2] ^= 0x20;
    {
        std::ofstream os(path, std::ios::trunc);
        os << blob;
    }

    Expected<CacheEntry> hit = cache.lookup(key.value());
    ASSERT_FALSE(hit.ok());
    EXPECT_EQ(hit.status().code(), StatusCode::Corrupt);
    EXPECT_FALSE(pathExists(path)) << "corrupt entry not unlinked";

    // The slate is clean: a fresh store round-trips.
    ASSERT_TRUE(cache.store(key.value(), entry).isOk());
    EXPECT_TRUE(cache.lookup(key.value()).ok());
}

// ---------------------------------------------------------------
// Typed resource exhaustion (satellite: ENOSPC is transient)
// ---------------------------------------------------------------

TEST(TypedErrors, EnospcAppendIsTransientResource)
{
    // /dev/full gives a deterministic ENOSPC on write.
    if (::access("/dev/full", W_OK) != 0)
        GTEST_SKIP() << "/dev/full not available";
    AppendLog log;
    Status st = log.open("/dev/full");
    if (!st.isOk())
        GTEST_SKIP() << "cannot open /dev/full: " << st.toString();
    Status append = log.append("{}");
    ASSERT_FALSE(append.isOk());
    EXPECT_EQ(append.code(), StatusCode::Resource);
    EXPECT_TRUE(append.transient());
}

TEST(TypedErrors, ErrnoMapping)
{
    EXPECT_EQ(errnoStatusCode(ENOSPC), StatusCode::Resource);
    EXPECT_EQ(errnoStatusCode(EDQUOT), StatusCode::Resource);
    EXPECT_EQ(errnoStatusCode(EAGAIN), StatusCode::Resource);
    EXPECT_EQ(errnoStatusCode(ENOMEM), StatusCode::Resource);
    EXPECT_EQ(errnoStatusCode(ENOENT), StatusCode::NotFound);
    EXPECT_EQ(errnoStatusCode(EIO), StatusCode::Generic);
}

TEST(TypedErrors, ResourceRetriesCanceledDoesNot)
{
    EXPECT_TRUE(jobClassRetryable(JobClass::Resource));
    EXPECT_FALSE(jobClassRetryable(JobClass::Canceled));
    EXPECT_STREQ(jobClassName(JobClass::Resource), "resource");
    EXPECT_STREQ(jobClassName(JobClass::Canceled), "canceled");
}

// ---------------------------------------------------------------
// Journal: cached finals
// ---------------------------------------------------------------

TEST(JournalCached, FinalCachedFlagRoundTrips)
{
    const std::string dir = makeTempDir();
    {
        SweepJournal journal;
        ASSERT_TRUE(journal.open(dir).isOk());
        JournalEvent fin;
        fin.kind = JournalEvent::Kind::Final;
        fin.job = 0;
        fin.attempt = 1;
        fin.cls = JobClass::Ok;
        fin.exitCode = 0;
        fin.cached = true;
        fin.seconds = 0.000123456789012345;
        fin.hasMetrics = true;
        fin.metrics.bandwidth = 7.8116300000000001;
        fin.metrics.cycles = 15731;
        ASSERT_TRUE(journal.append(fin).isOk());
    }
    Expected<std::vector<JournalEvent>> events =
        SweepJournal::replay(dir);
    ASSERT_TRUE(events.ok());
    ASSERT_EQ(events.value().size(), 1u);
    const JournalEvent &ev = events.value()[0];
    EXPECT_TRUE(ev.cached);
    EXPECT_EQ(ev.seconds, 0.000123456789012345);
    EXPECT_EQ(ev.metrics.bandwidth, 7.8116300000000001);
}

// ---------------------------------------------------------------
// Scheduler service mode
// ---------------------------------------------------------------

TEST(SchedulerService, DuplicateSubmissionServedFromCache)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    ResultCache cache;
    ASSERT_TRUE(cache.open(dir + "/cache").isOk());
    SchedulerOptions opts = fastOptions(sim);
    opts.cache = &cache;

    SweepScheduler sched(opts, {}, nullptr);
    ASSERT_TRUE(sched.submit(gccSpec()).ok());
    ASSERT_TRUE(sched.submit(gccSpec()).ok());
    EXPECT_TRUE(sched.run());

    ASSERT_EQ(sched.records().size(), 2u);
    EXPECT_TRUE(sched.allOk());
    EXPECT_EQ(sched.cacheHits(), 1u);
    int cached = 0, simulated = 0;
    for (const JobRecord &rec : sched.records())
        (rec.cached ? cached : simulated)++;
    EXPECT_EQ(cached, 1);
    EXPECT_EQ(simulated, 1);
    // Byte-identical paper metrics on both paths.
    EXPECT_EQ(sched.records()[0].metrics.bandwidth,
              sched.records()[1].metrics.bandwidth);
    EXPECT_EQ(sched.records()[0].metrics.cycles,
              sched.records()[1].metrics.cycles);
}

TEST(SchedulerService, ReplayedDuplicateSpecsServedFromCache)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    // A daemon acked two identical submissions, then was SIGKILLed
    // before either ran: only the Submit events are on disk.
    {
        SweepJournal journal;
        ASSERT_TRUE(journal.open(dir).isOk());
        SweepScheduler sched(fastOptions(sim), {}, &journal);
        ASSERT_TRUE(sched.submit(gccSpec()).ok());
        ASSERT_TRUE(sched.submit(gccSpec()).ok());
    }

    Expected<std::vector<JournalEvent>> events =
        SweepJournal::replay(dir);
    ASSERT_TRUE(events.ok());

    ResultCache cache;
    ASSERT_TRUE(cache.open(dir + "/cache").isOk());
    SchedulerOptions opts = fastOptions(sim);
    opts.cache = &cache;
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());
    SweepScheduler sched(opts, {}, &journal);
    journal.seedSeq(sched.restore(events.value()));

    ASSERT_EQ(sched.records().size(), 2u);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    EXPECT_EQ(sched.doneCount(), 2u);
    // One simulated, its twin coalesced into a cache hit.
    EXPECT_EQ(sched.cacheHits(), 1u);
}

TEST(SchedulerService, HigherPriorityLaunchesFirst)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    SchedulerOptions opts = fastOptions(sim);
    opts.workers = 1;
    std::vector<int> final_order;
    opts.onFinal = [&](const JobRecord &rec) {
        final_order.push_back(rec.spec.id);
    };
    SweepScheduler sched(opts, {}, nullptr);
    ASSERT_TRUE(sched.submit(gccSpec(1000), "", /*priority=*/0).ok());
    ASSERT_TRUE(sched.submit(gccSpec(1001), "", /*priority=*/5).ok());
    EXPECT_TRUE(sched.run());
    ASSERT_EQ(final_order.size(), 2u);
    EXPECT_EQ(final_order[0], 1) << "priority 5 should preempt the "
                                    "earlier priority-0 submission";
}

TEST(SchedulerService, TenantsShareSlotsRoundRobin)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    SchedulerOptions opts = fastOptions(sim);
    opts.workers = 1;
    std::vector<int> final_order;
    opts.onFinal = [&](const JobRecord &rec) {
        final_order.push_back(rec.spec.id);
    };
    SweepScheduler sched(opts, {}, nullptr);
    ASSERT_TRUE(sched.submit(gccSpec(1000), "alice").ok());  // id 0
    ASSERT_TRUE(sched.submit(gccSpec(1001), "alice").ok());  // id 1
    ASSERT_TRUE(sched.submit(gccSpec(1002), "bob").ok());    // id 2
    EXPECT_TRUE(sched.run());
    ASSERT_EQ(final_order.size(), 3u);
    // alice's first, then bob (least served), then alice again.
    EXPECT_EQ(final_order[0], 0);
    EXPECT_EQ(final_order[1], 2);
    EXPECT_EQ(final_order[2], 1);
}

TEST(SchedulerService, CancelPendingJobFinalizesCanceled)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    SweepScheduler sched(fastOptions(sim), {}, nullptr);
    ASSERT_TRUE(sched.submit(gccSpec(1000)).ok());
    ASSERT_TRUE(sched.submit(gccSpec(1001)).ok());
    ASSERT_TRUE(sched.cancel(1).isOk());
    EXPECT_TRUE(sched.records()[1].done);
    EXPECT_EQ(sched.records()[1].cls, JobClass::Canceled);

    EXPECT_FALSE(sched.cancel(99).isOk()) << "unknown id";
    EXPECT_FALSE(sched.cancel(1).isOk()) << "already final";

    EXPECT_TRUE(sched.run());
    EXPECT_EQ(sched.doneCount(), 2u);
    EXPECT_EQ(sched.records()[0].cls, JobClass::Ok);
    EXPECT_EQ(sched.records()[1].cls, JobClass::Canceled)
        << "run() must not resurrect a canceled job";
}

// ---------------------------------------------------------------
// Crash-point matrix (this binary is the victim host)
// ---------------------------------------------------------------

// When XBS_CRASH_VICTIM_DIR is set this test IS the victim process:
// it runs the durability exercise body and exits, dying mid-flight
// at whatever crash point the environment armed.
TEST(CrashVictimHost, RunBody)
{
    const char *dir = std::getenv("XBS_CRASH_VICTIM_DIR");
    if (!dir)
        GTEST_SKIP() << "victim mode only (XBS_CRASH_VICTIM_DIR)";
    ::_exit(crashVictimMain(dir));
}

TEST(CrashMatrix, EverySiteCrashesAndRecovers)
{
    const std::string scratch = makeTempDir();
    const std::vector<std::string> victim = {
        "env", "XBS_CRASH_VICTIM_DIR={DIR}", selfExe(),
        "--gtest_filter=CrashVictimHost.RunBody"};
    std::vector<CrashSiteResult> results =
        runCrashMatrix(victim, scratch);
    EXPECT_EQ(results.size(), crashPointSites().size());
    for (const CrashSiteResult &res : results) {
        EXPECT_TRUE(res.crashed)
            << res.site << ": victim did not die at the plant: "
            << res.detail;
        EXPECT_TRUE(res.recovered)
            << res.site << ": " << res.detail;
    }
    EXPECT_TRUE(crashMatrixPassed(results));
}

TEST(CrashMatrix, UnarmedVictimRunsToCompletion)
{
    const std::string dir = makeTempDir();
    EXPECT_EQ(crashVictimMain(dir + "/v"), 0);
    // And everything it wrote is consistent.
    Expected<std::vector<JournalEvent>> events =
        SweepJournal::replay(dir + "/v");
    ASSERT_TRUE(events.ok());
    std::size_t finals = 0;
    for (const JournalEvent &ev : events.value()) {
        if (ev.kind == JournalEvent::Kind::Final)
            ++finals;
    }
    EXPECT_EQ(finals, 5u);
}

// ---------------------------------------------------------------
// Daemon end to end (fork + Unix socket)
// ---------------------------------------------------------------

namespace
{

Expected<JsonValue>
ctl(int fd, const ProtoRequest &req)
{
    return roundTrip(fd, renderProtoRequest(req));
}

bool
okField(const Expected<JsonValue> &resp)
{
    if (!resp.ok())
        return false;
    const JsonValue *ok = resp.value().find("ok");
    return ok && ok->isBool() && ok->boolValue;
}

uint64_t
numField(const Expected<JsonValue> &resp, const char *name)
{
    const JsonValue *f = resp.ok() ? resp.value().find(name)
                                   : nullptr;
    return f ? f->asUint() : 0;
}

} // anonymous namespace

TEST(Daemon, SubmitDuplicateStatusDrain)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);
    const std::string sock = dir + "/d.sock";

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        DaemonOptions opts;
        opts.socketPath = sock;
        opts.dir = dir + "/svc";
        opts.cacheDir = dir + "/cache";
        opts.sched = fastOptions(sim);
        SweepDaemon daemon(std::move(opts));
        if (!daemon.open().isOk())
            ::_exit(90);
        ::_exit(daemon.runLoop());
    }

    // Wait for the socket, then drive one full session.
    int fd = -1;
    for (int i = 0; i < 200 && fd < 0; ++i) {
        Expected<int> c = connectUnixSocket(sock);
        if (c.ok())
            fd = c.take();
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "daemon socket never came up";

    ProtoRequest ping;
    ping.op = ProtoOp::Ping;
    EXPECT_TRUE(okField(ctl(fd, ping)));

    ProtoRequest submit;
    submit.op = ProtoOp::Submit;
    submit.spec = gccSpec(1000).toArgv();
    Expected<JsonValue> first = ctl(fd, submit);
    ASSERT_TRUE(okField(first));
    Expected<JsonValue> dup = ctl(fd, submit);
    ASSERT_TRUE(okField(dup));
    EXPECT_NE(numField(first, "job"), numField(dup, "job"));

    // Poll until both jobs are done.
    ProtoRequest status;
    status.op = ProtoOp::Status;
    uint64_t done = 0, hits = 0;
    for (int i = 0; i < 500 && done < 2; ++i) {
        Expected<JsonValue> st = ctl(fd, status);
        ASSERT_TRUE(okField(st));
        done = numField(st, "done");
        hits = numField(st, "cacheHits");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(done, 2u);
    EXPECT_EQ(hits, 1u) << "duplicate was not served from cache";

    // Per-job view marks the duplicate as cached.
    ProtoRequest job_status;
    job_status.op = ProtoOp::Status;
    job_status.job = (int)numField(dup, "job");
    Expected<JsonValue> view = ctl(fd, job_status);
    ASSERT_TRUE(okField(view));
    const JsonValue *cached = view.value().find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(cached->isBool() && cached->boolValue);

    ProtoRequest drain;
    drain.op = ProtoOp::Drain;
    EXPECT_TRUE(okField(ctl(fd, drain)));
    ::close(fd);

    int raw = 0;
    ASSERT_EQ(::waitpid(pid, &raw, 0), pid);
    ASSERT_TRUE(WIFEXITED(raw));
    EXPECT_EQ(WEXITSTATUS(raw), kExitOk);

    // The drained daemon leaves a report behind.
    EXPECT_TRUE(pathExists(dir + "/svc/report.json"));
}

TEST(Daemon, MetricsSnapshotCountsServiceActivity)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);
    const std::string sock = dir + "/m.sock";

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        DaemonOptions opts;
        opts.socketPath = sock;
        opts.dir = dir + "/svc";
        opts.cacheDir = dir + "/cache";
        opts.sched = fastOptions(sim);
        SweepDaemon daemon(std::move(opts));
        if (!daemon.open().isOk())
            ::_exit(90);
        ::_exit(daemon.runLoop());
    }

    int fd = -1;
    for (int i = 0; i < 200 && fd < 0; ++i) {
        Expected<int> c = connectUnixSocket(sock);
        if (c.ok())
            fd = c.take();
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "daemon socket never came up";

    // Two identical submissions: one simulates, one is a cache hit.
    ProtoRequest submit;
    submit.op = ProtoOp::Submit;
    submit.spec = gccSpec(1000).toArgv();
    ASSERT_TRUE(okField(ctl(fd, submit)));
    ASSERT_TRUE(okField(ctl(fd, submit)));

    ProtoRequest metrics;
    metrics.op = ProtoOp::Metrics;
    uint64_t completions = 0;
    Expected<JsonValue> snap = Status::error("never polled");
    for (int i = 0; i < 500 && completions < 2; ++i) {
        snap = ctl(fd, metrics);
        ASSERT_TRUE(okField(snap));
        completions = numField(snap, "completions");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // One cumulative snapshot carries the whole service story.
    EXPECT_EQ(numField(snap, "submits"), 2u);
    EXPECT_EQ(completions, 2u);
    EXPECT_EQ(numField(snap, "cacheHits"), 1u);
    // cacheMisses counts lookups that missed: the first job always
    // misses; the duplicate misses too unless the first completed
    // before it was picked (it then coalesces and hits later).
    EXPECT_GE(numField(snap, "cacheMisses"), 1u);
    EXPECT_LE(numField(snap, "cacheMisses"), 2u);
    EXPECT_EQ(numField(snap, "retries"), 0u);
    EXPECT_EQ(numField(snap, "stalls"), 0u);
    EXPECT_EQ(numField(snap, "cancels"), 0u);
    EXPECT_EQ(numField(snap, "pending"), 0u);
    ASSERT_TRUE(snap.ok());
    EXPECT_NE(snap.value().find("uptimeSeconds"), nullptr);
    const JsonValue *by_tenant = snap.value().find("pendingByTenant");
    ASSERT_NE(by_tenant, nullptr);
    EXPECT_TRUE(by_tenant->isObject());
    const JsonValue *draining = snap.value().find("draining");
    ASSERT_NE(draining, nullptr);
    EXPECT_FALSE(draining->boolValue);

    ProtoRequest drain;
    drain.op = ProtoOp::Drain;
    EXPECT_TRUE(okField(ctl(fd, drain)));
    ::close(fd);

    int raw = 0;
    ASSERT_EQ(::waitpid(pid, &raw, 0), pid);
    ASSERT_TRUE(WIFEXITED(raw));
    EXPECT_EQ(WEXITSTATUS(raw), kExitOk);
}
