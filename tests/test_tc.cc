/**
 * @file
 * Unit tests for the trace-cache baseline: fill-unit end conditions,
 * the cache's redundancy/replacement behavior, and the frontend's
 * conservation and mode-switching properties.
 */

#include <gtest/gtest.h>

#include "tc/fill_unit.hh"
#include "tc/tc_frontend.hh"
#include "tc/trace_cache.hh"
#include "test_helpers.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

std::vector<TraceLine>
collectTraces(const Trace &trace, const TraceLimits &limits)
{
    TcFillUnit fill(limits);
    std::vector<TraceLine> out;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        fill.feed(trace, i,
                  [&](const TraceLine &l) { out.push_back(l); });
    }
    return out;
}

TEST(TcFill, EndsOnThirdCondBranch)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t b1 = cb.cond(0);
    int32_t b2 = cb.cond(0);
    int32_t b3 = cb.cond(0);
    int32_t c = cb.seq();
    cb.jump(0);
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, 0}, {b1, 0}, {b2, 0}, {b3, 0},
                                   {c, 0}});
    TraceLimits lim;
    auto traces = collectTraces(t, lim);
    ASSERT_GE(traces.size(), 1u);
    // First trace ends exactly at the third conditional branch.
    EXPECT_EQ(traces[0].insts.size(), 4u);
    EXPECT_EQ(traces[0].numCondBranches, 3u);
}

TEST(TcFill, EndsOnReturnAndIndirect)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t r = cb.ret();
    int32_t b = cb.seq();
    int32_t ij = cb.add(InstClass::IndirectJump, 3, 2, kNoTarget, 0);
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, 0}, {r, 0}, {b, 0}, {ij, 0}});
    auto traces = collectTraces(t, TraceLimits{});
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].insts.back().staticIdx, r);
    EXPECT_EQ(traces[1].insts.back().staticIdx, ij);
}

TEST(TcFill, QuotaSplits)
{
    CodeBuilder cb;
    std::vector<int32_t> seqs;
    for (int i = 0; i < 6; ++i)
        seqs.push_back(cb.seq(4));
    cb.jump(0);
    auto code = cb.finalize();

    std::vector<std::pair<int32_t, bool>> path;
    for (int32_t s : seqs)
        path.push_back({s, false});
    Trace t = makeTestTrace(code, path);
    auto traces = collectTraces(t, TraceLimits{});
    // 24 uops split at the 16-uop quota: the first trace holds 4
    // instructions (16 uops).
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].numUops, 16u);
}

TEST(TcFill, CallsAndJumpsEmbedded)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t j = cb.jump(2);
    int32_t b = cb.seq();
    int32_t call = cb.call(5);
    int32_t c = cb.seq();
    int32_t f = cb.seq();  // callee body
    cb.ret();
    (void)c;
    auto code = cb.finalize();

    Trace t = makeTestTrace(code, {{a, 0}, {j, 0}, {b, 0}, {call, 0},
                                   {f, 0}});
    TcFillUnit fill(TraceLimits{});
    std::vector<TraceLine> out;
    for (std::size_t i = 0; i < t.numRecords(); ++i)
        fill.feed(t, i, [&](const TraceLine &l) { out.push_back(l); });
    // No end condition seen yet: everything is one pending trace.
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(fill.active());
    EXPECT_EQ(fill.pending().insts.size(), 5u);
}

struct TcCacheFixture : public testing::Test
{
    TcCacheFixture()
        : root("test"), tc(1024, 4, TraceLimits{}, &root)
    {
    }

    TraceLine
    makeLine(const Trace &trace, std::size_t first, std::size_t count)
    {
        TraceLine l;
        l.valid = true;
        l.startIp = trace.inst(first).ip;
        for (std::size_t i = first; i < first + count; ++i) {
            l.insts.push_back(EmbeddedInst{
                trace.record(i).staticIdx, trace.record(i).taken});
            l.numUops += trace.inst(i).numUops;
        }
        return l;
    }

    StatGroup root;
    TraceCache tc;
};

TEST_F(TcCacheFixture, InsertLookup)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, 0}, {br, 1}});

    EXPECT_EQ(tc.lookup(t.inst(0).ip), nullptr);
    tc.insert(makeLine(t, 0, 2), t.code());
    const TraceLine *l = tc.lookup(t.inst(0).ip);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->numUops, 3u);
    EXPECT_EQ(tc.hits.value(), 1u);
}

TEST_F(TcCacheFixture, NoPathAssociativity)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(0);
    auto code = cb.finalize();
    Trace taken_path = makeTestTrace(code, {{a, 0}, {br, 1}});
    Trace nt_path = makeTestTrace(code, {{a, 0}, {br, 0}});

    tc.insert(makeLine(taken_path, 0, 2), *code);
    tc.insert(makeLine(nt_path, 0, 2), *code);
    EXPECT_EQ(tc.replacements.value(), 1u);
    const TraceLine *l = tc.lookup(code->inst(a).ip);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->insts[1].taken, 0);
}

TEST_F(TcCacheFixture, RedundancyCountsCopies)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t b = cb.seq(2);
    int32_t br = cb.cond(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, 0}, {b, 0}, {br, 1},
                                   {b, 0}, {br, 1}});

    // Two traces overlapping on instructions b and br.
    tc.insert(makeLine(t, 0, 3), t.code());
    EXPECT_DOUBLE_EQ(tc.redundancy(), 1.0);
    tc.insert(makeLine(t, 3, 2), t.code());
    // b (2 uops) and br (1 uop) now resident twice; a once.
    EXPECT_NEAR(tc.redundancy(), 8.0 / 5.0, 1e-9);
}

TEST_F(TcCacheFixture, FillFactorReflectsFragmentation)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, 0}, {br, 1}});
    tc.insert(makeLine(t, 0, 2), t.code());
    // 3 uops in a 16-uop line.
    EXPECT_NEAR(tc.fillFactor(), 3.0 / 16.0, 1e-9);
}

TEST(TcFrontend, Conservation)
{
    Trace trace = makeCatalogTrace("li", 30000);
    FrontendParams fp;
    TcParams tp;
    TcFrontend fe(fp, tp);
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
}

TEST(TcFrontend, WarmCodeHitsDeliveryMode)
{
    // A tiny loopy workload must settle into delivery mode.
    Trace trace = makeCatalogTrace("compress", 50000);
    FrontendParams fp;
    TcParams tp;
    TcFrontend fe(fp, tp);
    fe.run(trace);
    EXPECT_LT(fe.metrics().missRate(), 0.10);
    EXPECT_GT(fe.metrics().bandwidth(), 4.0);
    EXPECT_GT(fe.cache().redundancy(), 1.0);
}

TEST(TcFrontend, BandwidthBoundedByRenamer)
{
    Trace trace = makeCatalogTrace("go", 30000);
    FrontendParams fp;
    TcFrontend fe(fp, TcParams{});
    fe.run(trace);
    EXPECT_LE(fe.metrics().bandwidth(),
              (double)fp.renamerWidth + 1e-9);
}

TEST(TcBuildInDelivery, ConservesAndBuildsMore)
{
    Trace trace = makeCatalogTrace("perl", 50000);
    FrontendParams fp;
    TcParams base, always;
    always.buildInDelivery = true;
    TcFrontend fb(fp, base), fa(fp, always);
    fb.run(trace);
    fa.run(trace);
    EXPECT_EQ(fa.metrics().deliveryUops.value() +
                  fa.metrics().buildUops.value(),
              trace.totalUops());
    // Building from the delivered stream inserts strictly more
    // traces than build-mode-only filling.
    EXPECT_GT(fa.cache().inserts.value() +
                  fa.cache().replacements.value(),
              fb.cache().inserts.value() +
                  fb.cache().replacements.value());
}

TEST(TcPathAssoc, CoexistingPaths)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(0);
    auto code = cb.finalize();
    Trace taken_path = makeTestTrace(code, {{a, 0}, {br, 1}});
    Trace nt_path = makeTestTrace(code, {{a, 0}, {br, 0}});

    StatGroup root("t");
    TraceCache tc(1024, 4, TraceLimits{}, &root);

    auto makeLine = [&](const Trace &t) {
        TraceLine l;
        l.valid = true;
        l.startIp = t.inst(0).ip;
        for (std::size_t i = 0; i < t.numRecords(); ++i) {
            l.insts.push_back(EmbeddedInst{t.record(i).staticIdx,
                                           t.record(i).taken});
            l.numUops += t.inst(i).numUops;
        }
        return l;
    };

    tc.insert(makeLine(taken_path), *code, /*path_associative=*/true);
    tc.insert(makeLine(nt_path), *code, /*path_associative=*/true);
    EXPECT_EQ(tc.replacements.value(), 0u);
    auto all = tc.lookupAll(code->inst(a).ip);
    EXPECT_EQ(all.size(), 2u);

    // Re-inserting an identical path refreshes instead of adding.
    tc.insert(makeLine(nt_path), *code, /*path_associative=*/true);
    EXPECT_EQ(tc.replacements.value(), 1u);
    EXPECT_EQ(tc.lookupAll(code->inst(a).ip).size(), 2u);
}

TEST(TcPathAssoc, FrontendImprovesOrMatchesBase)
{
    Trace trace = makeCatalogTrace("perl", 50000);
    FrontendParams fp;
    TcParams base, pa;
    pa.pathAssociative = true;
    TcFrontend fb(fp, base), fa(fp, pa);
    fb.run(trace);
    fa.run(trace);
    EXPECT_EQ(fa.metrics().deliveryUops.value() +
                  fa.metrics().buildUops.value(),
              trace.totalUops());
    // Perfect path selection cannot lose against replace-on-conflict
    // by much; typically it wins on alternating-path code.
    EXPECT_LE(fa.metrics().missRate(),
              fb.metrics().missRate() + 0.01);
}

TEST(TcFrontend, SmallerCacheMissesMore)
{
    Trace trace = makeCatalogTrace("word", 60000);
    FrontendParams fp;
    TcParams small, large;
    small.capacityUops = 4096;
    large.capacityUops = 65536;
    TcFrontend fs(fp, small), fl(fp, large);
    fs.run(trace);
    fl.run(trace);
    EXPECT_GT(fs.metrics().missRate(), fl.metrics().missRate());
}

} // anonymous namespace
} // namespace xbs
