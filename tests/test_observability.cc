/**
 * @file
 * Tests for the observability layer: probe registration/dispatch,
 * event-trace JSON well-formedness (parsed back with the in-tree
 * JSON parser), interval-sampler delta exactness across a forced
 * mode switch, nested StatGroup::find paths, the JSON parser, and
 * the XBSIM_LOG environment override.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/event_trace.hh"
#include "common/interval_stats.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/probe.hh"
#include "common/stats.hh"
#include "core/xbc_frontend.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

/** Sink that records everything verbatim for dispatch checks. */
struct RecordingSink : ProbeSink
{
    struct Rec
    {
        std::string track;
        std::string name;
        ProbeOp op;
        uint64_t cycle;
        int64_t value;
    };
    std::vector<Rec> recs;

    void
    record(const ProbePoint &point, ProbeOp op, uint64_t cycle,
           int64_t value, const char *) override
    {
        recs.push_back({point.track(), point.name(), op, cycle, value});
    }
};

TEST(Probe, RegistrationAndLookup)
{
    ProbeManager mgr;
    ProbePoint a(&mgr, "trackA", "alpha");
    ProbePoint b(&mgr, "trackA", "beta");
    ProbePoint c(&mgr, "trackB", "alpha");
    EXPECT_EQ(mgr.points().size(), 3u);
    EXPECT_EQ(mgr.find("trackA", "beta"), &b);
    EXPECT_EQ(mgr.find("trackB", "alpha"), &c);
    EXPECT_EQ(mgr.find("trackB", "beta"), nullptr);
    EXPECT_EQ(mgr.find("nope", "alpha"), nullptr);
}

TEST(Probe, DisabledWithoutSink)
{
    ProbeManager mgr;
    ProbePoint p(&mgr, "t", "n");
    EXPECT_FALSE(p.enabled());
    p.fire(42);  // must be a no-op, not a crash
    p.count(7);
    p.begin("slice");
    p.end();

    // A manager-less point is permanently disabled.
    ProbePoint orphan(nullptr, "t", "n");
    EXPECT_FALSE(orphan.enabled());
    orphan.fire(1);
}

TEST(Probe, DispatchCarriesCycleAndValue)
{
    ProbeManager mgr;
    StatGroup root("root");
    ScalarStat cycles(&root, "cycles", "clock");
    mgr.setCycleSource(&cycles);

    ProbePoint p(&mgr, "xfu", "alloc");
    RecordingSink sink;
    mgr.attach(&sink);
    EXPECT_TRUE(p.enabled());

    cycles += 10;
    p.fire(5);
    cycles += 7;
    p.count(99);
    p.begin("build");
    p.end();

    ASSERT_EQ(sink.recs.size(), 4u);
    EXPECT_EQ(sink.recs[0].op, ProbeOp::Instant);
    EXPECT_EQ(sink.recs[0].cycle, 10u);
    EXPECT_EQ(sink.recs[0].value, 5);
    EXPECT_EQ(sink.recs[1].op, ProbeOp::Counter);
    EXPECT_EQ(sink.recs[1].cycle, 17u);
    EXPECT_EQ(sink.recs[1].value, 99);
    EXPECT_EQ(sink.recs[2].op, ProbeOp::Begin);
    EXPECT_EQ(sink.recs[3].op, ProbeOp::End);

    // Detach: no further records, and points report disabled.
    mgr.attach(nullptr);
    EXPECT_FALSE(p.enabled());
    p.fire(1);
    EXPECT_EQ(sink.recs.size(), 4u);
}

TEST(Probe, LateRegistrationSeesExistingSink)
{
    ProbeManager mgr;
    RecordingSink sink;
    mgr.attach(&sink);
    ProbePoint late(&mgr, "t", "late");
    EXPECT_TRUE(late.enabled());
    late.fire();
    EXPECT_EQ(sink.recs.size(), 1u);
}

TEST(EventTrace, RingDropsOldest)
{
    ProbeManager mgr;
    ProbePoint p(&mgr, "t", "e");
    EventTraceSink sink(/*capacity=*/4);
    mgr.attach(&sink);

    for (int i = 0; i < 10; ++i)
        p.fire(i);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.received(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);

    // The survivors are the newest four (values 6..9).
    std::ostringstream os;
    sink.writeChromeJson(os);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::vector<int64_t> values;
    for (const auto &e : events->items) {
        if (const auto *args = e.find("args")) {
            if (const auto *v = args->find("value"))
                values.push_back((int64_t)v->asNumber());
        }
    }
    EXPECT_EQ(values, (std::vector<int64_t>{6, 7, 8, 9}));
}

TEST(EventTrace, ChromeJsonWellFormed)
{
    Trace trace = makeCatalogTrace("li", 30000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    EventTraceSink sink;
    fe.probes().attach(&sink);
    fe.run(trace);

    std::ostringstream os;
    sink.writeChromeJson(os);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_FALSE(events->items.empty());

    // Track metadata covers at least the mode FSM and the XFU.
    std::vector<std::string> tracks;
    for (const auto &e : events->items) {
        const auto *name = e.find("name");
        const auto *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "M" &&
            name->asString() == "thread_name") {
            tracks.push_back(
                e.find("args")->find("name")->asString());
        } else if (ph->asString() != "M") {
            // Data records: ph in {i, C, B, E}, ts/pid/tid present.
            const std::string &p = ph->asString();
            EXPECT_TRUE(p == "i" || p == "C" || p == "B" || p == "E")
                << p;
            EXPECT_NE(e.find("ts"), nullptr);
            EXPECT_NE(e.find("tid"), nullptr);
            EXPECT_NE(e.find("pid"), nullptr);
        }
    }
    EXPECT_GE(tracks.size(), 5u);
    auto has = [&](const char *t) {
        for (const auto &s : tracks)
            if (s == t)
                return true;
        return false;
    };
    EXPECT_TRUE(has("mode"));
    EXPECT_TRUE(has("xfu"));
    EXPECT_TRUE(has("array"));
    EXPECT_TRUE(has("pred"));
    EXPECT_TRUE(has("icpipe"));

    // Matches the sink's own view of the tracks.
    EXPECT_EQ(sink.trackNames().size(), tracks.size());
}

TEST(EventTrace, ModeSlicesBalance)
{
    Trace trace = makeCatalogTrace("compress", 30000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    EventTraceSink sink;
    fe.probes().attach(&sink);
    fe.run(trace);

    std::ostringstream os;
    sink.writeChromeJson(os);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    uint64_t begins = 0, ends = 0;
    for (const auto &e : doc.find("traceEvents")->items) {
        const auto *ph = e.find("ph");
        if (ph->asString() == "B")
            ++begins;
        else if (ph->asString() == "E")
            ++ends;
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);  // traceModeDone closed the last slice
}

TEST(IntervalSampler, DeltaSumsMatchAggregates)
{
    Trace trace = makeCatalogTrace("gcc", 60000);
    FrontendParams fp;
    // A small XBC forces evictions and build<->delivery churn so the
    // windows see genuine mode switches.
    XbcParams xp;
    xp.capacityUops = 4096;
    XbcFrontend fe(fp, xp);

    std::ostringstream os;
    IntervalSampler sampler(fe.statRoot(), /*interval=*/1000);
    sampler.setOutput(&os);
    fe.attachSampler(&sampler);
    fe.run(trace);
    fe.finishObservation();

    EXPECT_GT(sampler.windowsEmitted(), 1u);

    // Parse every JSONL line and sum all deltas per path.
    std::istringstream lines(os.str());
    std::string line;
    uint64_t sum_delivery = 0, sum_build = 0, sum_cycles = 0,
             sum_switches = 0, windows = 0;
    uint64_t last_end = 0;
    while (std::getline(lines, line)) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(line, &doc, &err)) << err;
        ++windows;
        const JsonValue *deltas = doc.find("deltas");
        ASSERT_NE(deltas, nullptr);
        auto get = [&](const char *suffix) -> uint64_t {
            for (const auto &[k, v] : deltas->members) {
                if (k.size() >= std::strlen(suffix) &&
                    k.compare(k.size() - std::strlen(suffix),
                              std::strlen(suffix), suffix) == 0) {
                    return v.asUint();
                }
            }
            return 0;
        };
        sum_delivery += get("frontend.deliveryUops");
        sum_build += get("frontend.buildUops");
        sum_cycles += get("frontend.cycles");
        sum_switches += get("frontend.modeSwitches");
        // Windows tile the run contiguously.
        EXPECT_EQ(doc.find("startCycle")->asUint(), last_end);
        last_end = doc.find("endCycle")->asUint();
    }
    EXPECT_EQ(windows, sampler.windowsEmitted());

    // The exactness guarantee: summed deltas == end-of-run values.
    const auto &m = fe.metrics();
    EXPECT_EQ(sum_delivery, m.deliveryUops.value());
    EXPECT_EQ(sum_build, m.buildUops.value());
    EXPECT_EQ(sum_cycles, m.cycles.value());
    EXPECT_EQ(sum_switches, m.modeSwitches.value());
    EXPECT_GT(sum_switches, 0u);  // the churn actually happened
    EXPECT_EQ(last_end, m.cycles.value());

    // Conservation through the trace as well.
    EXPECT_EQ(sum_delivery + sum_build, trace.totalUops());

    // finish() is idempotent.
    uint64_t emitted = sampler.windowsEmitted();
    sampler.finish(m.cycles.value());
    EXPECT_EQ(sampler.windowsEmitted(), emitted);
}

TEST(IntervalSampler, EmptyRunEmitsOneWindow)
{
    StatGroup root("root");
    ScalarStat s(&root, "counter", "a counter");
    std::ostringstream os;
    IntervalSampler sampler(root, 100);
    sampler.setOutput(&os);
    sampler.finish(0);
    EXPECT_EQ(sampler.windowsEmitted(), 1u);
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(parseJson(os.str(), &doc, &err)) << err;
}

// Regression: a run whose counters still move after the last crossed
// boundary must flush those deltas in a final partial window —
// including the corner case where the run *ends exactly on* a
// boundary with uncommitted deltas behind it.
TEST(IntervalSampler, BoundaryEndFlushesResidualDeltas)
{
    StatGroup root("root");
    ScalarStat s(&root, "counter", "a counter");
    std::ostringstream os;
    IntervalSampler sampler(root, 100);
    sampler.setOutput(&os);

    s += 3;
    sampler.tick(100);  // boundary window [0,100): captures the 3
    s += 5;             // lands after the last boundary crossing
    sampler.finish(100);

    uint64_t sum = 0, windows = 0;
    std::istringstream lines(os.str());
    std::string line;
    while (std::getline(lines, line)) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(line, &doc, &err)) << err;
        ++windows;
        const JsonValue *deltas = doc.find("deltas");
        ASSERT_NE(deltas, nullptr);
        for (const auto &[k, v] : deltas->members)
            sum += v.asUint();
    }
    EXPECT_EQ(windows, 2u);
    EXPECT_EQ(windows, sampler.windowsEmitted());
    // The exactness guarantee survives the boundary-ending run.
    EXPECT_EQ(sum, s.value());

    // But a boundary-ending run with *no* residual deltas must not
    // grow an empty trailing window.
    StatGroup root2("root");
    ScalarStat s2(&root2, "counter", "a counter");
    IntervalSampler clean(root2, 100);
    s2 += 1;
    clean.tick(100);
    clean.finish(100);
    EXPECT_EQ(clean.windowsEmitted(), 1u);
}

// Regression: a trace shorter than one window (the run ends before
// the first boundary is ever crossed) must emit exactly one final
// partial window carrying all the deltas — not zero windows, and
// not a duplicate.
TEST(IntervalSampler, SubWindowRunEmitsOnePartialWindow)
{
    StatGroup root("root");
    ScalarStat s(&root, "counter", "a counter");
    std::ostringstream os;
    IntervalSampler sampler(root, /*interval=*/10000);
    sampler.setOutput(&os);

    s += 42;
    sampler.tick(137);     // never reaches the 10000-cycle boundary
    sampler.finish(137);
    sampler.finish(137);   // idempotent

    EXPECT_EQ(sampler.windowsEmitted(), 1u);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    EXPECT_EQ(doc.find("startCycle")->asUint(), 0u);
    EXPECT_EQ(doc.find("endCycle")->asUint(), 137u);
    const JsonValue *deltas = doc.find("deltas");
    ASSERT_NE(deltas, nullptr);
    uint64_t sum = 0;
    for (const auto &[k, v] : deltas->members)
        sum += v.asUint();
    EXPECT_EQ(sum, 42u);
}

TEST(Stats, FindNestedPaths)
{
    StatGroup root("fe");
    StatGroup mid("core", &root);
    StatGroup leaf("array", &mid);
    ScalarStat top(&root, "cycles", "top-level");
    ScalarStat deep(&leaf, "evictions", "three levels down");

    EXPECT_EQ(root.find("cycles"), &top);
    EXPECT_EQ(root.find("core.array.evictions"), &deep);
    EXPECT_EQ(mid.find("array.evictions"), &deep);
    EXPECT_EQ(root.find("core.array.nope"), nullptr);
    EXPECT_EQ(root.find("bogus.evictions"), nullptr);
    EXPECT_EQ(root.find(""), nullptr);
}

TEST(Stats, FormulaStatEvaluatesAndDumps)
{
    StatGroup root("g");
    ScalarStat n(&root, "n", "numerator");
    ScalarStat d(&root, "d", "denominator");
    FormulaStat ratio(&root, "ratio", "n over d", [&] {
        return d.value() ? (double)n.value() / (double)d.value() : 0.0;
    });
    n += 3;
    d += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
    EXPECT_EQ(root.find("ratio"), &ratio);

    std::ostringstream os;
    JsonWriter jw(os, /*pretty=*/false);
    jw.beginObject();
    root.dumpJson(jw, /*as_member=*/true);
    jw.endObject();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    const JsonValue *g = doc.find("g");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->find("ratio")->asNumber(), 0.75);
}

TEST(Json, ParserRoundTrip)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": -2.5e1}})",
        &doc, &err))
        << err;
    EXPECT_EQ(doc.find("a")->asUint(), 1u);
    const JsonValue *b = doc.find("b");
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].boolValue);
    EXPECT_TRUE(b->items[1].isNull());
    EXPECT_EQ(b->items[2].asString(), "x\n\"y\"");
    EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->asNumber(), -25.0);
}

TEST(Json, ParserRejectsMalformed)
{
    JsonValue doc;
    std::string err;
    EXPECT_FALSE(parseJson("{", &doc, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("{\"a\":}", &doc, &err));
    EXPECT_FALSE(parseJson("[1,]", &doc, &err));
    EXPECT_FALSE(parseJson("", &doc, &err));
    EXPECT_FALSE(parseJson("{} trailing", &doc, &err));
}

TEST(Logging, EnvVarOverridesQuiet)
{
    // Remember and restore the ambient state.
    const char *old = std::getenv("XBSIM_LOG");
    std::string saved = old ? old : "";

    unsetenv("XBSIM_LOG");
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());

    setenv("XBSIM_LOG", "normal", 1);
    EXPECT_FALSE(logQuiet());  // env forces output through quiet
    setenv("XBSIM_LOG", "quiet", 1);
    setLogQuiet(false);
    EXPECT_TRUE(logQuiet());  // env silences a normal request
    EXPECT_FALSE(logVerbose());
    setenv("XBSIM_LOG", "verbose", 1);
    EXPECT_FALSE(logQuiet());
    EXPECT_TRUE(logVerbose());

    if (old)
        setenv("XBSIM_LOG", saved.c_str(), 1);
    else
        unsetenv("XBSIM_LOG");
    setLogQuiet(false);
}

} // anonymous namespace
} // namespace xbs
