/**
 * @file
 * Tests for the live-telemetry layer (src/obs): heartbeat records and
 * their torn-write/resume guarantees, the sweep span log, and the
 * merged Perfetto trace writer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fs.hh"
#include "common/json.hh"
#include "obs/heartbeat.hh"
#include "obs/span.hh"
#include "obs/trace_merge.hh"

using namespace xbs;

namespace
{

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/xbs_obs_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Heartbeat records
// ---------------------------------------------------------------------

TEST(Heartbeat, RenderParseRoundTrip)
{
    HeartbeatRecord rec;
    rec.seq = 42;
    rec.pid = 1234;
    rec.phase = "sim:xbc";
    rec.uops = 123456789;
    rec.totalUops = 250000000;
    rec.cycles = 987654;
    rec.uopsPerSec = 1.5e6;
    rec.wallSeconds = 3.25;
    rec.rssKb = 51200;
    rec.done = true;

    Expected<HeartbeatRecord> back = parseHeartbeat(renderHeartbeat(rec));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().seq, rec.seq);
    EXPECT_EQ(back.value().pid, rec.pid);
    EXPECT_EQ(back.value().phase, rec.phase);
    EXPECT_EQ(back.value().uops, rec.uops);
    EXPECT_EQ(back.value().totalUops, rec.totalUops);
    EXPECT_EQ(back.value().cycles, rec.cycles);
    EXPECT_DOUBLE_EQ(back.value().uopsPerSec, rec.uopsPerSec);
    EXPECT_DOUBLE_EQ(back.value().wallSeconds, rec.wallSeconds);
    EXPECT_EQ(back.value().rssKb, rec.rssKb);
    EXPECT_TRUE(back.value().done);
}

TEST(Heartbeat, ParseRejectsGarbage)
{
    EXPECT_FALSE(parseHeartbeat("").ok());
    EXPECT_FALSE(parseHeartbeat("not json").ok());
    // A torn record (truncated mid-object) must parse as an error,
    // not as a half-filled record.
    EXPECT_FALSE(parseHeartbeat("{\"seq\":3,\"phase\":\"si").ok());
    // seq and phase are mandatory.
    EXPECT_FALSE(parseHeartbeat("{\"phase\":\"sim\"}").ok());
    EXPECT_FALSE(parseHeartbeat("{\"seq\":1}").ok());
    EXPECT_FALSE(parseHeartbeat("[1,2,3]").ok());
}

TEST(Heartbeat, WriterStampsMonotonicSeq)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/hb.json";

    HeartbeatWriter w(path);
    for (uint64_t i = 1; i <= 3; ++i) {
        HeartbeatRecord rec;
        rec.phase = "sim";
        rec.uops = i * 100;
        ASSERT_TRUE(w.write(rec).isOk());
        EXPECT_EQ(rec.seq, i);
        EXPECT_GT(rec.pid, 0);
        EXPECT_GE(rec.wallSeconds, 0.0);

        Expected<HeartbeatRecord> seen = readHeartbeat(path);
        ASSERT_TRUE(seen.ok());
        EXPECT_EQ(seen.value().seq, i);
        EXPECT_EQ(seen.value().uops, i * 100);
    }
}

TEST(Heartbeat, SeqResumesAcrossWriters)
{
    // A retried attempt reopens its predecessor's heartbeat file; a
    // watcher comparing seq across the retry must never see it go
    // backwards.
    const std::string dir = makeTempDir();
    const std::string path = dir + "/hb.json";

    {
        HeartbeatWriter w(path);
        HeartbeatRecord rec;
        rec.phase = "sim";
        ASSERT_TRUE(w.write(rec).isOk());
        ASSERT_TRUE(w.write(rec).isOk());
        EXPECT_EQ(rec.seq, 2u);
    }
    {
        HeartbeatWriter w(path);  // the "retry"
        EXPECT_EQ(w.seq(), 2u);
        HeartbeatRecord rec;
        rec.phase = "start";
        ASSERT_TRUE(w.write(rec).isOk());
        EXPECT_EQ(rec.seq, 3u);
    }
    Expected<HeartbeatRecord> seen = readHeartbeat(path);
    ASSERT_TRUE(seen.ok());
    EXPECT_EQ(seen.value().seq, 3u);
}

TEST(Heartbeat, TornTmpFileIsHarmless)
{
    // Simulate a writer crash between temp-write and rename: the
    // target still holds the previous complete record, and a stale
    // temp file sits next to it. Readers and later writers must be
    // unaffected.
    const std::string dir = makeTempDir();
    const std::string path = dir + "/hb.json";

    HeartbeatWriter w(path);
    HeartbeatRecord rec;
    rec.phase = "sim";
    rec.uops = 777;
    ASSERT_TRUE(w.write(rec).isOk());

    ASSERT_TRUE(writeFileAtomic(path + ".tmp.9999",
                                "{\"seq\":99,\"pha").isOk());

    Expected<HeartbeatRecord> seen = readHeartbeat(path);
    ASSERT_TRUE(seen.ok());
    EXPECT_EQ(seen.value().seq, 1u);
    EXPECT_EQ(seen.value().uops, 777u);

    // The next writer (a retry) resumes from the *committed* record,
    // not the torn temp, and its publish supersedes cleanly.
    HeartbeatWriter w2(path);
    EXPECT_EQ(w2.seq(), 1u);
    HeartbeatRecord rec2;
    rec2.phase = "sim";
    rec2.uops = 888;
    ASSERT_TRUE(w2.write(rec2).isOk());
    seen = readHeartbeat(path);
    ASSERT_TRUE(seen.ok());
    EXPECT_EQ(seen.value().seq, 2u);
    EXPECT_EQ(seen.value().uops, 888u);
}

TEST(Heartbeat, CorruptTargetReadsAsAbsence)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/hb.json";
    ASSERT_TRUE(writeFileAtomic(path, "{{{{").isOk());

    EXPECT_FALSE(readHeartbeat(path).ok());
    EXPECT_FALSE(readHeartbeat(dir + "/missing.json").ok());

    // A writer opened on garbage starts numbering fresh.
    HeartbeatWriter w(path);
    EXPECT_EQ(w.seq(), 0u);
    HeartbeatRecord rec;
    rec.phase = "start";
    ASSERT_TRUE(w.write(rec).isOk());
    EXPECT_EQ(rec.seq, 1u);
}

TEST(Heartbeat, EmitterBeatsThroughPhases)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/hb.json";

    HeartbeatEmitter em(path, 0.05);
    em.beat(nullptr);
    Expected<HeartbeatRecord> hb = readHeartbeat(path);
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb.value().phase, "start");
    EXPECT_FALSE(hb.value().done);

    em.setPhase("decode");
    em.setTotalUops(500);
    em.beat(nullptr);
    hb = readHeartbeat(path);
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb.value().phase, "decode");
    EXPECT_EQ(hb.value().totalUops, 500u);
    EXPECT_EQ(hb.value().seq, 2u);

    em.setPhase("done");
    em.beat(nullptr, /*done=*/true);
    hb = readHeartbeat(path);
    ASSERT_TRUE(hb.ok());
    EXPECT_TRUE(hb.value().done);
    EXPECT_EQ(hb.value().seq, 3u);
}

// ---------------------------------------------------------------------
// Span log
// ---------------------------------------------------------------------

TEST(SpanLog, RecordsAndClosesAttempts)
{
    SweepSpanLog log;
    EXPECT_FALSE(log.started());
    EXPECT_EQ(log.now(), 0.0);

    log.startSweep();
    EXPECT_TRUE(log.started());

    log.noteLaunch(3, "gcc/tc/32768", 1, 0);
    log.noteLaunch(5, "go/xbc/32768", 1, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    log.noteExit(3, 1, "ok");
    // Job 5 never reports an exit (drained mid-flight).
    log.noteBackoff(3, 2, log.now(), log.now() + 0.01);
    log.finishSweep();

    ASSERT_EQ(log.attempts().size(), 2u);
    const AttemptSpan &a3 = log.attempts()[0];
    EXPECT_EQ(a3.job, 3u);
    EXPECT_EQ(a3.label, "gcc/tc/32768");
    EXPECT_FALSE(a3.open);
    EXPECT_EQ(a3.cls, "ok");
    EXPECT_GE(a3.endSec, a3.startSec);

    const AttemptSpan &a5 = log.attempts()[1];
    EXPECT_EQ(a5.job, 5u);
    EXPECT_FALSE(a5.open) << "finishSweep must close drained spans";
    EXPECT_EQ(a5.cls, "");
    EXPECT_LE(a5.endSec, log.sweepSeconds() + 1e-9);

    ASSERT_EQ(log.backoffs().size(), 1u);
    EXPECT_EQ(log.backoffs()[0].job, 3u);
    EXPECT_EQ(log.backoffs()[0].attempt, 2u);

    // Exit for a span that was never launched is ignored, not fatal.
    log.noteExit(99, 1, "crash");
}

TEST(SpanLog, ExitClosesNewestMatchingAttempt)
{
    SweepSpanLog log;
    log.startSweep();
    log.noteLaunch(1, "li/tc/32768", 1, 0);
    log.noteExit(1, 1, "timeout");
    log.noteLaunch(1, "li/tc/32768", 2, 0);
    log.noteExit(1, 2, "ok");
    log.finishSweep();

    ASSERT_EQ(log.attempts().size(), 2u);
    EXPECT_EQ(log.attempts()[0].cls, "timeout");
    EXPECT_EQ(log.attempts()[1].cls, "ok");
    EXPECT_EQ(log.attempts()[1].attempt, 2u);
}

// ---------------------------------------------------------------------
// Trace merge
// ---------------------------------------------------------------------

namespace
{

/**
 * Perfetto sanity-check: replay every B/E pair per (pid,tid) as a
 * stack. Returns the number of slices closed; any structural problem
 * (stray E, mismatched name, span left open) fails expectations.
 */
int
checkBalanced(const JsonValue &doc)
{
    const JsonValue *events = doc.find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    std::map<std::pair<uint64_t, uint64_t>, std::vector<std::string>>
        stacks;
    std::map<std::pair<uint64_t, uint64_t>, double> last_ts;
    int closed = 0;
    for (const JsonValue &ev : events->items) {
        const std::string ph = ev.find("ph")->asString();
        if (ph == "M")
            continue;
        const auto key = std::make_pair(ev.find("pid")->asUint(),
                                        ev.find("tid")->asUint());
        const std::string name = ev.find("name")->asString();
        const double ts = ev.find("ts")->asNumber();
        EXPECT_GE(ts, last_ts[key] - 1e-9)
            << "timestamps regress on pid/tid track";
        last_ts[key] = ts;
        if (ph == "B") {
            stacks[key].push_back(name);
        } else if (ph == "E") {
            EXPECT_FALSE(stacks[key].empty())
                << "stray E for " << name;
            if (stacks[key].empty())
                continue;
            EXPECT_EQ(stacks[key].back(), name)
                << "E does not close the innermost open span";
            stacks[key].pop_back();
            ++closed;
        } else {
            ADD_FAILURE() << "unexpected event phase " << ph;
        }
    }
    for (const auto &[key, stack] : stacks) {
        EXPECT_TRUE(stack.empty())
            << "orphan span left open on pid " << key.first
            << " tid " << key.second;
    }
    return closed;
}

} // anonymous namespace

TEST(TraceMerge, SchedulerOnlyTimelineIsBalanced)
{
    const std::string dir = makeTempDir();
    SweepSpanLog log;
    log.startSweep();
    log.noteLaunch(0, "gcc/tc/32768", 1, 0);
    log.noteLaunch(1, "go/tc/32768", 1, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    log.noteExit(0, 1, "ok");
    log.noteExit(1, 1, "crash");
    log.noteBackoff(1, 2, log.now(), log.now() + 0.005);
    log.noteLaunch(1, "go/tc/32768", 2, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    log.noteExit(1, 2, "ok");
    log.finishSweep();

    const std::string out = dir + "/trace.json";
    ASSERT_TRUE(writeSweepTrace(out, log, "").isOk());

    Expected<JsonValue> doc = readJsonFile(out);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    EXPECT_GT(checkBalanced(doc.value()), 0);

    // The sweep span, both jobs, the retried attempt, and its
    // backoff all appear by name.
    Expected<std::string> text = readFileToString(out);
    ASSERT_TRUE(text.ok());
    EXPECT_NE(text.value().find("\"sweep\""), std::string::npos);
    EXPECT_NE(text.value().find("job 0"), std::string::npos);
    EXPECT_NE(text.value().find("attempt 2 [ok]"), std::string::npos);
    EXPECT_NE(text.value().find("backoff"), std::string::npos);
    EXPECT_NE(text.value().find("worker 1"), std::string::npos);
}

TEST(TraceMerge, RepairsUnbalancedChildTrace)
{
    const std::string dir = makeTempDir();
    const std::string events = dir + "/events";
    ASSERT_TRUE(ensureDir(events).isOk());

    // A deliberately damaged child trace: a stray E with no B (ring
    // dropped the Begin), a dangling B never closed (child was
    // killed), plus one well-formed pair and a thread_name meta.
    ASSERT_TRUE(writeFileAtomic(
        events + "/job-7-a1.json",
        "{\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"mode\"}},"
        "{\"name\":\"lost\",\"ph\":\"E\",\"ts\":50,\"pid\":1,\"tid\":0},"
        "{\"name\":\"build\",\"ph\":\"B\",\"ts\":100,\"pid\":1,\"tid\":0},"
        "{\"name\":\"build\",\"ph\":\"E\",\"ts\":400,\"pid\":1,\"tid\":0},"
        "{\"name\":\"deliver\",\"ph\":\"B\",\"ts\":500,\"pid\":1,"
        "\"tid\":0}"
        "]}").isOk());

    SweepSpanLog log;
    log.startSweep();
    log.noteLaunch(7, "gcc/xbc/32768", 1, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    log.noteExit(7, 1, "stalled");
    log.finishSweep();

    const std::string out = dir + "/trace.json";
    ASSERT_TRUE(writeSweepTrace(out, log, events).isOk());

    Expected<JsonValue> doc = readJsonFile(out);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    EXPECT_GT(checkBalanced(doc.value()), 0);

    Expected<std::string> text = readFileToString(out);
    ASSERT_TRUE(text.ok());
    // The stray E is gone; the dangling B became a closed span; the
    // child track is labeled with its attempt.
    EXPECT_EQ(text.value().find("\"lost\""), std::string::npos);
    EXPECT_NE(text.value().find("\"deliver\""), std::string::npos);
    EXPECT_NE(text.value().find("mode (a1)"), std::string::npos);
    EXPECT_NE(text.value().find("attempt 1 [stalled]"),
              std::string::npos);
}

TEST(TraceMerge, MissingChildTraceOmitsSimTracks)
{
    const std::string dir = makeTempDir();
    const std::string events = dir + "/events";
    ASSERT_TRUE(ensureDir(events).isOk());

    SweepSpanLog log;
    log.startSweep();
    log.noteLaunch(2, "li/dc/32768", 1, 0);
    log.noteExit(2, 1, "ok");
    log.finishSweep();

    const std::string out = dir + "/trace.json";
    ASSERT_TRUE(writeSweepTrace(out, log, events).isOk());
    Expected<JsonValue> doc = readJsonFile(out);
    ASSERT_TRUE(doc.ok());
    EXPECT_GT(checkBalanced(doc.value()), 0);
}
