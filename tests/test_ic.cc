/**
 * @file
 * Unit tests for the legacy path: instruction cache geometry/LRU,
 * the fetch/decode pipeline, and the IC baseline frontend.
 */

#include <gtest/gtest.h>

#include "frontend/predictors.hh"
#include "ic/ic_frontend.hh"
#include "ic/inst_cache.hh"
#include "ic/legacy_pipe.hh"
#include "test_helpers.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

TEST(InstCache, HitAfterFill)
{
    InstCache ic(1024, 64, 2);
    EXPECT_FALSE(ic.access(0x100));  // compulsory miss, fills
    EXPECT_TRUE(ic.access(0x100));
    EXPECT_TRUE(ic.access(0x13f));   // same 64B line
    EXPECT_FALSE(ic.access(0x140));  // next line
}

TEST(InstCache, Geometry)
{
    InstCache ic(64 * 1024, 64, 4);
    EXPECT_EQ(ic.numSets(), 256u);
    EXPECT_EQ(ic.lineBytes(), 64u);
    EXPECT_EQ(ic.lineOf(0x12345), 0x12340u);
}

TEST(InstCache, LruEvictsOldest)
{
    // 2 sets x 2 ways x 64B: lines mapping to set 0 are multiples of
    // 128.
    InstCache ic(256, 64, 2);
    EXPECT_EQ(ic.numSets(), 2u);
    ic.access(0x000);
    ic.access(0x080);
    ic.access(0x000);        // refresh
    ic.access(0x100);        // evicts 0x080
    EXPECT_TRUE(ic.contains(0x000));
    EXPECT_FALSE(ic.contains(0x080));
    EXPECT_TRUE(ic.contains(0x100));
}

TEST(InstCache, ContainsDoesNotFill)
{
    InstCache ic(1024, 64, 2);
    EXPECT_FALSE(ic.contains(0x200));
    EXPECT_FALSE(ic.contains(0x200));
    EXPECT_FALSE(ic.access(0x200));
    EXPECT_TRUE(ic.contains(0x200));
}

struct PipeFixture : public testing::Test
{
    PipeFixture()
        : metrics(nullptr), preds(params),
          pipe(params, metrics, preds)
    {
    }

    FrontendParams params;
    FrontendMetrics metrics;
    PredictorBank preds;
    LegacyPipe pipe;
};

TEST_F(PipeFixture, StraightLineRespectsDecodeWidth)
{
    CodeBuilder cb;
    std::vector<std::pair<int32_t, bool>> path;
    for (int i = 0; i < 8; ++i)
        path.push_back({cb.seq(1, 2), false});
    path.push_back({cb.cond(0, 1), false});
    auto trace = makeTestTrace(cb.finalize(), path);

    std::size_t rec = 0;
    pipe.cycle(trace, rec);  // absorb the compulsory IC miss
    ASSERT_EQ(rec, 0u);
    auto r = pipe.cycle(trace, rec);
    // decodeWidth defaults to 4 instructions per cycle.
    EXPECT_EQ(r.insts, params.decode.decodeWidth);
    EXPECT_EQ(rec, (std::size_t)params.decode.decodeWidth);
}

TEST_F(PipeFixture, TakenBranchEndsFetchBlock)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t br = cb.cond(3);
    int32_t skip = cb.seq();
    int32_t tgt = cb.seq();
    (void)skip;
    cb.jump(0);
    auto trace = makeTestTrace(cb.finalize(),
                               {{a, 0}, {br, true}, {tgt, 0}});

    std::size_t rec = 0;
    pipe.cycle(trace, rec);  // absorb the compulsory IC miss
    auto r = pipe.cycle(trace, rec);
    // The taken branch ends the block: only a and br consumed.
    EXPECT_EQ(r.insts, 2u);
    EXPECT_EQ(rec, 2u);
    (void)r;
}

TEST_F(PipeFixture, IcMissChargesLatencyOnce)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t b = cb.seq();
    cb.jump(0);
    auto trace = makeTestTrace(cb.finalize(), {{a, 0}, {b, 0}});

    std::size_t rec = 0;
    auto r = pipe.cycle(trace, rec);
    // Cold IC and cold L2: the first access goes to memory.
    EXPECT_EQ(r.insts, 0u);
    EXPECT_EQ(r.stall, params.l2MissLatency);
    EXPECT_EQ(metrics.icMisses.value(), 1u);
    EXPECT_EQ(metrics.l2Misses.value(), 1u);

    auto r2 = pipe.cycle(trace, rec);
    EXPECT_GT(r2.insts, 0u);
    EXPECT_EQ(metrics.icMisses.value(), 1u);
}

TEST_F(PipeFixture, L2HitIsCheaperThanMemory)
{
    // Two lines far apart in the same IC set thrash the IC but stay
    // resident in the larger L2, so re-misses cost icMissLatency.
    CodeBuilder cb;
    int32_t a = cb.seq();
    cb.jump(0);
    auto trace_a = makeTestTrace(cb.finalize(), {{a, 0}});

    std::size_t rec = 0;
    auto cold = pipe.cycle(trace_a, rec);
    EXPECT_EQ(cold.stall, params.l2MissLatency);

    // Evict the line from the IC only (different tags, same set:
    // stride = icCapacity / ways).
    uint64_t ip = trace_a.inst(0).ip;
    unsigned stride = params.icCapacityBytes / params.icWays;
    for (unsigned w = 0; w <= params.icWays; ++w)
        pipe.icache().access(ip + (uint64_t)(w + 1) * stride);
    ASSERT_FALSE(pipe.icache().contains(ip));

    rec = 0;
    auto warm = pipe.cycle(trace_a, rec);
    EXPECT_EQ(warm.stall, params.icMissLatency);  // L2 hit
    EXPECT_EQ(metrics.l2Misses.value(), 1u);
}

TEST_F(PipeFixture, MispredictChargesPenalty)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    int32_t br = cb.cond(3);
    (void)cb.seq();
    int32_t tgt = cb.seq();
    cb.jump(0);
    // Make the branch alternate so the cold predictor misses at
    // least once.
    std::vector<std::pair<int32_t, bool>> path;
    for (int i = 0; i < 12; ++i) {
        path.push_back({a, false});
        path.push_back({br, true});
        path.push_back({tgt, false});
    }
    auto trace = makeTestTrace(cb.finalize(), path);

    std::size_t rec = 0;
    uint64_t stalls = 0;
    while (rec < trace.numRecords()) {
        auto r = pipe.cycle(trace, rec);
        stalls += r.stall;
    }
    EXPECT_GT(metrics.condBranches.value(), 0u);
    // Early cold mispredicts and/or BTB misses must cost something.
    EXPECT_GT(stalls, 0u);
}

TEST(IcFrontend, SuppliesEveryUop)
{
    Trace trace = makeCatalogTrace("compress", 20000);
    FrontendParams fp;
    IcFrontend fe(fp);
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value(), trace.totalUops());
    EXPECT_GT(fe.metrics().cycles.value(), 0u);
    // Decode-limited bandwidth: above 1, below the uop width.
    EXPECT_GT(fe.metrics().bandwidth(), 1.0);
    EXPECT_LE(fe.metrics().bandwidth(),
              (double)fp.decode.uopWidth);
}

TEST(IcFrontend, BandwidthBelowDecodedStructures)
{
    // The motivating claim: a single-ported IC cannot sustain the
    // renamer width because fetch ends at every taken transfer.
    Trace trace = makeCatalogTrace("word", 20000);
    FrontendParams fp;
    IcFrontend fe(fp);
    fe.run(trace);
    EXPECT_LT(fe.metrics().bandwidth(), 6.0);
}

} // anonymous namespace
} // namespace xbs
