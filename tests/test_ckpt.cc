/**
 * @file
 * Warm-state checkpoint/restore tests: container integrity (every
 * single-bit flip detected), the corrupt-file corpus, per-frontend
 * bit-exact restore via the divergence oracle, identity and build
 * gating, ckpt-flip fault injection, and result-cache keying.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "batch/result_cache.hh"
#include "ckpt/checkpoint.hh"
#include "common/fs.hh"
#include "prof/build_info.hh"
#include "sim/ckpt_io.hh"
#include "sim/config.hh"
#include "verify/divergence.hh"
#include "verify/inject.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(XBS_TEST_DATA_DIR) + "/" + name;
}

/** A small container with deterministic content for flip tests. */
std::string
tinyContainer()
{
    CheckpointWriter w;
    w.addSection("alpha", "first-section-payload");
    w.addSection("beta", std::string(64, '\x5a'));
    return w.encode();
}

TEST(CkptSerial, SinkSourceRoundtrip)
{
    CkptSink sink;
    sink.u8(0xab);
    sink.u16(0xbeef);
    sink.u32(0xdeadbeefu);
    sink.u64(0x0123456789abcdefull);
    sink.i32(-7);
    sink.i64(-1234567890123ll);
    sink.b(true);
    sink.f64(3.141592653589793);
    sink.str("hello");

    CkptSource src(sink.bytes());
    EXPECT_EQ(src.u8(), 0xab);
    EXPECT_EQ(src.u16(), 0xbeef);
    EXPECT_EQ(src.u32(), 0xdeadbeefu);
    EXPECT_EQ(src.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(src.i32(), -7);
    EXPECT_EQ(src.i64(), -1234567890123ll);
    EXPECT_TRUE(src.b());
    EXPECT_EQ(src.f64(), 3.141592653589793);
    EXPECT_EQ(src.str(), "hello");
    EXPECT_TRUE(src.ok());
    EXPECT_TRUE(src.consumed());
}

TEST(CkptContainer, Roundtrip)
{
    const std::string bytes = tinyContainer();
    Expected<CheckpointFile> file = parseCheckpoint(bytes);
    ASSERT_TRUE(file.ok()) << file.status().toString();
    ASSERT_NE(file.value().section("alpha"), nullptr);
    ASSERT_NE(file.value().section("beta"), nullptr);
    EXPECT_EQ(*file.value().section("alpha"),
              "first-section-payload");
    EXPECT_EQ(file.value().section("gamma"), nullptr);
    EXPECT_EQ(file.value().fileDigest().size(), 64u);
    EXPECT_EQ(file.value().sections().size(), 2u);
}

// The format's core guarantee, asserted exhaustively: flipping ANY
// single bit of a container makes the parse fail with a typed
// status. Every byte is covered by the magic/version check, a
// section CRC, or the guard hash.
TEST(CkptContainer, EverySingleBitFlipDetected)
{
    const std::string good = tinyContainer();
    ASSERT_TRUE(parseCheckpoint(good).ok());
    for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
        std::string bad = good;
        bad[bit / 8] ^= (char)(1 << (bit % 8));
        Expected<CheckpointFile> file = parseCheckpoint(bad);
        EXPECT_FALSE(file.ok()) << "undetected flip at bit " << bit;
    }
}

TEST(CkptContainer, TruncationAtEveryLengthDetected)
{
    const std::string good = tinyContainer();
    for (std::size_t len = 0; len < good.size(); ++len) {
        Expected<CheckpointFile> file =
            parseCheckpoint(good.substr(0, len));
        EXPECT_FALSE(file.ok()) << "undetected truncation at " << len;
    }
}

TEST(CkptCorpus, ValidContainerParses)
{
    Expected<CheckpointFile> file =
        readCheckpointFile(dataPath("ckpt_valid_container.xbckpt"));
    ASSERT_TRUE(file.ok())
        << "corpus generator and reader disagree on the format: "
        << file.status().toString();
}

TEST(CkptCorpus, CorruptFilesRejected)
{
    const char *names[] = {
        "ckpt_trunc_header.xbckpt",  "ckpt_bad_magic.xbckpt",
        "ckpt_bad_version.xbckpt",   "ckpt_trunc_section.xbckpt",
        "ckpt_bad_crc.xbckpt",       "ckpt_bad_guard.xbckpt",
    };
    for (const char *name : names) {
        Expected<CheckpointFile> file =
            readCheckpointFile(dataPath(name));
        EXPECT_FALSE(file.ok()) << name << " was accepted";
        if (!file.ok()) {
            EXPECT_EQ(file.status().code(), StatusCode::Corrupt)
                << name << ": " << file.status().toString();
        }
    }
}

TEST(CkptCorpus, MissingFileIsNotFound)
{
    Expected<CheckpointFile> file =
        readCheckpointFile(dataPath("no_such_checkpoint.xbckpt"));
    ASSERT_FALSE(file.ok());
    EXPECT_EQ(file.status().code(), StatusCode::NotFound);
}

TEST(CkptMetaTest, EncodeDecodeRoundtrip)
{
    RunSpec spec;
    spec.frontend = "tc";
    spec.workload = "gcc";
    spec.insts = 12345;
    spec.capacity = 4096;
    spec.ways = 2;
    const Trace trace = makeCatalogTrace("gcc", 2000);
    const CkptMeta meta = makeCkptMeta(spec, trace, 777);

    Expected<CkptMeta> back = decodeCkptMeta(encodeCkptMeta(meta));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().frontend, "tc");
    EXPECT_EQ(back.value().workload, "gcc");
    EXPECT_EQ(back.value().insts, 12345u);
    EXPECT_EQ(back.value().cycle, 777u);
    EXPECT_EQ(back.value().traceName, trace.name());
    EXPECT_EQ(back.value().numRecords, trace.numRecords());
    EXPECT_EQ(back.value().specDigest, meta.specDigest);
    EXPECT_EQ(back.value().buildType, buildInfo().buildType);
}

TEST(CkptMetaTest, BuildGateRejectsMismatch)
{
    RunSpec spec;
    const Trace trace = makeCatalogTrace("gcc", 2000);
    CkptMeta meta = makeCkptMeta(spec, trace, 0);
    EXPECT_TRUE(checkCkptBuild(meta, buildInfo().buildType,
                               buildInfo().sanitized)
                    .isOk());
    EXPECT_FALSE(checkCkptBuild(meta, buildInfo().buildType,
                                !buildInfo().sanitized)
                     .isOk());
    meta.buildType = "SomeOtherBuildType";
    Status st = checkCkptBuild(meta, buildInfo().buildType,
                               buildInfo().sanitized);
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::Corrupt);
}

struct FrontendCase
{
    const char *flag;
    SimConfig config;
};

std::vector<FrontendCase>
allFrontends()
{
    return {
        {"ic", SimConfig::icBaseline()},
        {"dc", SimConfig::dcBaseline(8192)},
        {"tc", SimConfig::tcBaseline(8192, 2)},
        {"bbtc", SimConfig::bbtcBaseline(8192)},
        {"xbc", SimConfig::xbcBaseline(8192, 2)},
    };
}

RunSpec
specFor(const char *flag)
{
    RunSpec spec;
    spec.frontend = flag;
    spec.workload = "gcc";
    spec.insts = 30000;
    spec.capacity = 8192;
    spec.ways = 0;
    return spec;
}

// The tentpole guarantee, per frontend: a run restored from a
// mid-run checkpoint finishes with BIT-IDENTICAL metrics (headline
// numbers at full precision, the attribution report, and the entire
// stat tree) and passes the post-restore structural audit.
TEST(CkptDivergence, RestoreIsBitExactOnEveryFrontend)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    for (const FrontendCase &fc : allFrontends()) {
        Expected<DivergenceReport> rep = runDivergenceOracle(
            fc.config, specFor(fc.flag), trace, 2000);
        ASSERT_TRUE(rep.ok())
            << fc.flag << ": " << rep.status().toString();
        EXPECT_EQ(rep.value().auditViolations, 0u) << fc.flag;
        EXPECT_TRUE(rep.value().identical)
            << fc.flag << " diverged: " << rep.value().detail;
        EXPECT_GE(rep.value().cutCycle, 2000u) << fc.flag;
        EXPECT_GT(rep.value().checkpointBytes, 0u) << fc.flag;
    }
}

TEST(CkptDivergence, UnreachableCheckpointCycleIsAnError)
{
    const Trace trace = makeCatalogTrace("gcc", 2000);
    Expected<DivergenceReport> rep =
        runDivergenceOracle(SimConfig::xbcBaseline(8192, 2),
                            specFor("xbc"), trace, 1u << 30);
    EXPECT_FALSE(rep.ok());
}

/** Cut a real checkpoint of @p flag's frontend in memory. */
std::string
captureCheckpoint(const FrontendCase &fc, const Trace &trace,
                  RunSpec spec, uint64_t at = 2000)
{
    std::string bytes;
    auto fe = makeFrontend(fc.config);
    fe->armCheckpoint(at, [&](Frontend &f) -> Status {
        bytes = encodeCheckpoint(
            f, makeCkptMeta(spec, trace,
                            f.metrics().cycles.value()));
        return Status::ok();
    });
    fe->run(trace);
    EXPECT_TRUE(fe->checkpointTaken());
    return bytes;
}

// ckpt-flip injection: every seeded random single-bit flip of a real
// frontend checkpoint must be rejected on the full restore path.
TEST(CkptInject, SeededFlipsAlwaysRejected)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    FrontendCase fc{"xbc", SimConfig::xbcBaseline(8192, 2)};
    const RunSpec spec = specFor("xbc");
    const std::string good = captureCheckpoint(fc, trace, spec);
    ASSERT_FALSE(good.empty());
    ASSERT_TRUE(parseCheckpoint(good).ok());

    Expected<InjectPlan> plan = parseInjectSpec("ckpt-flip");
    ASSERT_TRUE(plan.ok());
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        FaultInjector injector(plan.value(), seed);
        const std::string bad =
            injector.prepareCheckpointBytes(good);
        EXPECT_EQ(injector.injections(), 1u);
        EXPECT_NE(bad, good);
        Expected<CheckpointFile> file = parseCheckpoint(bad);
        EXPECT_FALSE(file.ok()) << "seed " << seed << " undetected";
        if (!file.ok())
            EXPECT_EQ(file.status().code(), StatusCode::Corrupt);
    }
}

// A checkpoint must only restore the exact cell it was cut from:
// wrong frontend kind, wrong trace, or a doctored spec all fail as
// Corrupt before any state is touched.
TEST(CkptIdentity, CrossFrontendRestoreRejected)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    FrontendCase tc{"tc", SimConfig::tcBaseline(8192, 2)};
    const std::string bytes =
        captureCheckpoint(tc, trace, specFor("tc"));
    Expected<CheckpointFile> file = parseCheckpoint(bytes);
    ASSERT_TRUE(file.ok());

    auto xbc = makeFrontend(SimConfig::xbcBaseline(8192, 2));
    Status st = restoreCheckpoint(*xbc, file.value(),
                                  specFor("xbc"), trace);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::Corrupt);

    // Even bypassing the meta gate, the self-describing stat tree
    // refuses to load into the wrong frontend.
    auto xbc2 = makeFrontend(SimConfig::xbcBaseline(8192, 2));
    Status raw = xbc2->restoreState(file.value());
    EXPECT_FALSE(raw.isOk());
}

TEST(CkptIdentity, WrongTraceRejected)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    FrontendCase fc{"xbc", SimConfig::xbcBaseline(8192, 2)};
    const std::string bytes =
        captureCheckpoint(fc, trace, specFor("xbc"));
    Expected<CheckpointFile> file = parseCheckpoint(bytes);
    ASSERT_TRUE(file.ok());

    const Trace other = makeCatalogTrace("gcc", 31000);
    auto fe = makeFrontend(fc.config);
    Status st = restoreCheckpoint(*fe, file.value(),
                                  specFor("xbc"), other);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::Corrupt);
}

// The result cache must never alias a warm run with a cold one (or
// with a restore from different checkpoint content), while the
// user-facing label treats them as the same cell.
TEST(CkptCache, WarmKeyNeverAliasesCold)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    FrontendCase fc{"xbc", SimConfig::xbcBaseline(8192, 2)};
    RunSpec cold = specFor("xbc");
    const std::string bytes =
        captureCheckpoint(fc, trace, cold);

    const std::string dir =
        ::testing::TempDir() + "/xbs_ckpt_cache_test";
    ASSERT_TRUE(ensureDir(dir).isOk());
    const std::string path_a = dir + "/warm_a.xbckpt";
    const std::string path_b = dir + "/warm_b.xbckpt";
    ASSERT_TRUE(writeFileAtomic(path_a, bytes).isOk());
    ASSERT_TRUE(writeFileAtomic(path_b, bytes).isOk());

    RunSpec warm_a = cold;
    warm_a.restoreFrom = path_a;
    RunSpec warm_b = cold;
    warm_b.restoreFrom = path_b;

    // Same simulation cell in every identity-facing way...
    EXPECT_EQ(warm_a.label(), cold.label());

    Expected<CacheKey> key_cold = makeCacheKey(cold);
    Expected<CacheKey> key_a = makeCacheKey(warm_a);
    Expected<CacheKey> key_b = makeCacheKey(warm_b);
    ASSERT_TRUE(key_cold.ok()) << key_cold.status().toString();
    ASSERT_TRUE(key_a.ok()) << key_a.status().toString();
    ASSERT_TRUE(key_b.ok()) << key_b.status().toString();

    // ...but the warm key folds in the checkpoint content: distinct
    // from cold, stable across paths with identical bytes.
    EXPECT_NE(key_a.value().hex, key_cold.value().hex);
    EXPECT_EQ(key_a.value().hex, key_b.value().hex);
    EXPECT_EQ(key_a.value().ckptDigest, key_b.value().ckptDigest);
    EXPECT_TRUE(key_cold.value().ckptDigest.empty());

    // A rewritten (different-content) checkpoint moves the key.
    std::string other = bytes;
    {
        CheckpointWriter w;
        w.addSection("meta", "different");
        other = w.encode();
    }
    ASSERT_TRUE(writeFileAtomic(path_a, other).isOk());
    Expected<CacheKey> key_a2 = makeCacheKey(warm_a);
    ASSERT_TRUE(key_a2.ok());
    EXPECT_NE(key_a2.value().hex, key_a.value().hex);

    // Missing checkpoint: no key at all (callers fall through to a
    // real simulation, which then reports the defect).
    RunSpec gone = cold;
    gone.restoreFrom = dir + "/never_written.xbckpt";
    EXPECT_FALSE(makeCacheKey(gone).ok());

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

// Restoring build-incompatible state fails through the full
// restoreCheckpoint path (meta is re-encoded with a doctored build
// type; container integrity stays intact, so only the gate fires).
TEST(CkptIdentity, BuildMismatchRejectedOnRestorePath)
{
    const Trace trace = makeCatalogTrace("gcc", 30000);
    FrontendCase fc{"xbc", SimConfig::xbcBaseline(8192, 2)};
    const std::string bytes =
        captureCheckpoint(fc, trace, specFor("xbc"));
    Expected<CheckpointFile> file = parseCheckpoint(bytes);
    ASSERT_TRUE(file.ok());

    Expected<CkptMeta> meta =
        decodeCkptMeta(*file.value().section("meta"));
    ASSERT_TRUE(meta.ok());
    CkptMeta doctored = meta.take();
    doctored.buildType = "NotThisBuildType";

    CheckpointWriter w;
    w.addSection("meta", encodeCkptMeta(doctored));
    for (const auto &kv : file.value().sections()) {
        if (kv.first != "meta")
            w.addSection(kv.first, kv.second);
    }
    Expected<CheckpointFile> redone = parseCheckpoint(w.encode());
    ASSERT_TRUE(redone.ok()) << redone.status().toString();

    auto fe = makeFrontend(fc.config);
    Status st = restoreCheckpoint(*fe, redone.value(),
                                  specFor("xbc"), trace);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::Corrupt);
}

} // anonymous namespace
} // namespace xbs
