/**
 * @file
 * Unit tests for the ISA layer: instruction classification, static
 * code images, uop identity/expansion, and the decode model.
 */

#include <gtest/gtest.h>

#include "isa/decoder.hh"
#include "isa/static_inst.hh"
#include "isa/types.hh"
#include "isa/uop.hh"

namespace xbs
{
namespace
{

TEST(InstClassify, XbEndConditions)
{
    // Section 3.1: conditional and indirect branches (and returns)
    // end XBs; calls end XBs for XRSB bookkeeping; unconditional
    // direct jumps and plain instructions do not.
    EXPECT_TRUE(endsXb(InstClass::CondBranch));
    EXPECT_TRUE(endsXb(InstClass::IndirectJump));
    EXPECT_TRUE(endsXb(InstClass::IndirectCall));
    EXPECT_TRUE(endsXb(InstClass::Return));
    EXPECT_TRUE(endsXb(InstClass::DirectCall));
    EXPECT_FALSE(endsXb(InstClass::DirectJump));
    EXPECT_FALSE(endsXb(InstClass::Seq));
}

TEST(InstClassify, TraceEndConditions)
{
    // [Rote96]: traces embed direct jumps and calls, end on indirect
    // transfers and returns (the branch quota is handled separately).
    EXPECT_TRUE(endsTrace(InstClass::IndirectJump));
    EXPECT_TRUE(endsTrace(InstClass::Return));
    EXPECT_FALSE(endsTrace(InstClass::CondBranch));
    EXPECT_FALSE(endsTrace(InstClass::DirectJump));
    EXPECT_FALSE(endsTrace(InstClass::DirectCall));
}

TEST(InstClassify, BasicBlockEndsOnAnyControl)
{
    EXPECT_TRUE(endsBasicBlock(InstClass::DirectJump));
    EXPECT_TRUE(endsBasicBlock(InstClass::CondBranch));
    EXPECT_FALSE(endsBasicBlock(InstClass::Seq));
}

TEST(InstClassify, FallThrough)
{
    EXPECT_TRUE(hasFallThrough(InstClass::Seq));
    EXPECT_TRUE(hasFallThrough(InstClass::CondBranch));
    EXPECT_FALSE(hasFallThrough(InstClass::DirectJump));
    EXPECT_FALSE(hasFallThrough(InstClass::Return));
}

TEST(InstClassify, Names)
{
    EXPECT_STREQ(instClassName(InstClass::CondBranch), "cond");
    EXPECT_STREQ(instClassName(InstClass::Return), "ret");
    EXPECT_STREQ(uopClassName(UopClass::Load), "load");
}

StaticInst
makeInst(uint64_t ip, uint8_t len, uint8_t uops,
         InstClass cls = InstClass::Seq)
{
    StaticInst si;
    si.ip = ip;
    si.length = len;
    si.numUops = uops;
    si.cls = cls;
    return si;
}

TEST(StaticCode, AppendFinalizeLookup)
{
    StaticCode code;
    EXPECT_EQ(code.append(makeInst(0x100, 3, 2)), 0);
    EXPECT_EQ(code.append(makeInst(0x103, 1, 1)), 1);
    code.finalize();
    EXPECT_TRUE(code.finalized());
    EXPECT_EQ(code.size(), 2u);
    EXPECT_EQ(code.indexOf(0x100), 0);
    EXPECT_EQ(code.indexOf(0x103), 1);
    EXPECT_EQ(code.indexOf(0x999), kNoTarget);
    EXPECT_EQ(code.totalUops(), 3u);
}

TEST(StaticCode, FallThroughIp)
{
    StaticInst si = makeInst(0x200, 5, 1);
    EXPECT_EQ(si.fallThroughIp(), 0x205u);
}

TEST(StaticCodeDeath, DuplicateIpPanics)
{
    StaticCode code;
    code.append(makeInst(0x100, 3, 1));
    code.append(makeInst(0x100, 3, 1));
    EXPECT_DEATH(code.finalize(), "duplicate IP");
}

TEST(Uop, IdRoundTrip)
{
    UopId id = makeUopId(0x401234, 3);
    EXPECT_EQ(uopIdIp(id), 0x401234u);
    EXPECT_EQ(uopIdSeq(id), 3u);
}

TEST(Uop, ExpansionDeterministicAndComplete)
{
    StaticInst si = makeInst(0x400, 4, 3, InstClass::CondBranch);
    std::vector<Uop> a, b;
    EXPECT_EQ(expandUops(si, a), 3u);
    expandUops(si, b);
    ASSERT_EQ(a.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(a[i].cls, b[i].cls);
        EXPECT_EQ(a[i].ip, 0x400u);
        EXPECT_EQ(a[i].seq, i);
        EXPECT_EQ(a[i].ofTotal, 3u);
    }
    // Last uop of a control instruction is the branch uop.
    EXPECT_EQ(a.back().cls, UopClass::Branch);
    EXPECT_TRUE(a.back().isControlUop());
    EXPECT_FALSE(a.front().isControlUop());
}

TEST(Uop, NonControlExpansionHasNoBranchUop)
{
    StaticInst si = makeInst(0x500, 2, 4, InstClass::Seq);
    std::vector<Uop> v;
    expandUops(si, v);
    for (const auto &u : v)
        EXPECT_NE(u.cls, UopClass::Branch);
}

TEST(Decoder, AdmitsWithinLimits)
{
    DecodeParams p;
    p.fetchBytes = 16;
    p.decodeWidth = 4;
    p.uopWidth = 6;
    Decoder d(p);

    unsigned bytes = 0, insts = 0, uops = 0;
    EXPECT_TRUE(d.admit(makeInst(0, 4, 2), bytes, insts, uops));
    EXPECT_TRUE(d.admit(makeInst(4, 4, 2), bytes, insts, uops));
    EXPECT_TRUE(d.admit(makeInst(8, 4, 2), bytes, insts, uops));
    // Fourth instruction would exceed the 6-uop emission cap.
    EXPECT_FALSE(d.admit(makeInst(12, 4, 2), bytes, insts, uops));
    EXPECT_EQ(uops, 6u);
}

TEST(Decoder, DecodeWidthBinds)
{
    DecodeParams p;
    p.decodeWidth = 2;
    Decoder d(p);
    unsigned bytes = 0, insts = 0, uops = 0;
    EXPECT_TRUE(d.admit(makeInst(0, 1, 1), bytes, insts, uops));
    EXPECT_TRUE(d.admit(makeInst(1, 1, 1), bytes, insts, uops));
    EXPECT_FALSE(d.admit(makeInst(2, 1, 1), bytes, insts, uops));
}

TEST(Decoder, FetchBytesBind)
{
    DecodeParams p;
    p.fetchBytes = 8;
    Decoder d(p);
    unsigned bytes = 0, insts = 0, uops = 0;
    EXPECT_TRUE(d.admit(makeInst(0, 7, 1), bytes, insts, uops));
    EXPECT_FALSE(d.admit(makeInst(7, 2, 1), bytes, insts, uops));
    EXPECT_TRUE(d.admit(makeInst(7, 1, 1), bytes, insts, uops));
}

} // anonymous namespace
} // namespace xbs
