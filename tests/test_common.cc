/**
 * @file
 * Unit tests for the common utility library: bit operations, the
 * deterministic RNG, statistics, histograms, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bitops.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace xbs
{
namespace
{

TEST(Bitops, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(Bitops, Logarithms)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0ULL);
    EXPECT_EQ(mask(4), 0xfULL);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(bits(0xabcdULL, 4, 8), 0xbcULL);
}

TEST(Bitops, FoldedIndexInRange)
{
    for (uint64_t ip : {0ULL, 1ULL, 0x400000ULL, 0xdeadbeefULL}) {
        EXPECT_LT(foldedIndex(ip, 1024), 1024ULL);
        EXPECT_EQ(foldedIndex(ip, 1), 0ULL);
    }
}

TEST(Bitops, FoldedIndexSpreads)
{
    // Consecutive hot addresses must not collapse to few sets.
    std::set<uint64_t> seen;
    for (uint64_t ip = 0x400000; ip < 0x400000 + 4096; ip += 4)
        seen.insert(foldedIndex(ip, 256));
    EXPECT_GE(seen.size(), 200u);
}

TEST(Bitops, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xf), 4u);
    EXPECT_EQ(popCount(~0ULL), 64u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17ULL);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformMean)
{
    Rng rng(99);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR((double)hits / n, 0.3, 0.02);
}

TEST(Rng, WeightedRespectWeights)
{
    Rng rng(11);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.weighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR((double)counts[2] / counts[0], 3.0, 0.4);
}

TEST(Rng, BoundedGeometricMeanAndCap)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        uint32_t v = rng.boundedGeometric(4.0, 100);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 100u);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, BoundedGeometricCapBinds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.boundedGeometric(50.0, 8), 8u);
}

TEST(Zipf, SkewedTowardLowRanks)
{
    Rng rng(3);
    ZipfTable table(100, 1.0);
    int low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        std::size_t r = table.sample(rng);
        EXPECT_LT(r, 100u);
        if (r < 10)
            ++low;
        if (r >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 5);
}

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("root");
    ScalarStat s(&root, "s", "test");
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    StatGroup root("root");
    AverageStat a(&root, "a", "test");
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, DistributionBuckets)
{
    StatGroup root("root");
    DistributionStat d(&root, "d", "test", 0.0, 10.0, 1.0);
    d.sample(0.5);
    d.sample(1.5);
    d.sample(1.6);
    d.sample(-1.0);   // underflow
    d.sample(100.0);  // overflow
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
}

TEST(Stats, GroupDumpAndFind)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    ScalarStat s(&child, "hits", "hits");
    s += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("root.child.hits"), std::string::npos);

    const StatBase *found = root.find("child.hits");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(dynamic_cast<const ScalarStat *>(found)->value(), 7u);
    EXPECT_EQ(root.find("child.nope"), nullptr);
    EXPECT_EQ(root.find("nope.hits"), nullptr);
}

TEST(Stats, GroupReset)
{
    StatGroup root("root");
    ScalarStat s(&root, "s", "test");
    s += 3;
    root.resetStats();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Histogram, MeanAndFraction)
{
    Histogram h(16);
    h.add(4, 2);
    h.add(8);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_NEAR(h.mean(), (4 * 2 + 8) / 3.0, 1e-9);
    EXPECT_NEAR(h.fraction(4), 2.0 / 3.0, 1e-9);
}

TEST(Histogram, ClampsToDomain)
{
    Histogram h(16);
    h.add(100);
    EXPECT_EQ(h.count(16), 1u);
}

TEST(Histogram, Merge)
{
    Histogram a(16), b(16);
    a.add(2);
    b.add(2);
    b.add(6);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.count(2), 2u);
}

TEST(Histogram, Percentile)
{
    Histogram h(16);
    for (uint32_t v = 1; v <= 10; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 5u);
    EXPECT_EQ(h.percentile(1.0), 10u);
}

TEST(Histogram, SummaryPercentiles)
{
    Histogram h(200);
    for (uint32_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.p50(), 50u);
    EXPECT_EQ(h.p95(), 95u);
    EXPECT_EQ(h.p99(), 99u);
}

TEST(Histogram, SummaryPercentilesSingleBin)
{
    Histogram h(16);
    h.add(7, 1000);
    EXPECT_EQ(h.p50(), 7u);
    EXPECT_EQ(h.p95(), 7u);
    EXPECT_EQ(h.p99(), 7u);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(16);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p95(), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

// Regression: with few samples, p * total truncates to zero, which
// used to "satisfy" the target at bin 0 before any mass accumulated.
TEST(Histogram, SmallTotalPercentilesHitTheSample)
{
    Histogram h(16);
    h.add(7);
    EXPECT_EQ(h.p50(), 7u);
    EXPECT_EQ(h.p95(), 7u);
    EXPECT_EQ(h.p99(), 7u);

    Histogram two(16);
    two.add(3);
    two.add(9);
    EXPECT_EQ(two.percentile(0.25), 3u);
    EXPECT_EQ(two.p50(), 3u);
    EXPECT_EQ(two.p99(), 9u);
}

TEST(Histogram, PercentileClampsP)
{
    Histogram h(16);
    h.add(5);
    EXPECT_EQ(h.percentile(-1.0), 5u);
    EXPECT_EQ(h.percentile(2.0), 5u);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(16);
    h.add(3, 10);
    h.add(7, 5);
    std::string r = h.render("test");
    EXPECT_NE(r.find("test"), std::string::npos);
    EXPECT_NE(r.find('#'), std::string::npos);
    EXPECT_NE(r.find("3 |"), std::string::npos);
}

TEST(Histogram, RenderEmpty)
{
    Histogram h(4);
    EXPECT_NE(h.render("empty").find("<empty>"), std::string::npos);
}

TEST(Logging, QuietSuppressesInform)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    xbs_inform("this should not appear");
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

TEST(Table, RenderAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvQuoting)
{
    TextTable t({"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    std::string csv = t.csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"\"hi\"\""), std::string::npos);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.295, 1), "29.5%");
}

} // anonymous namespace
} // namespace xbs
