/**
 * @file
 * Robustness tests for the binary trace reader/writer: every file in
 * the malformed corpus under tests/data/ must come back as a
 * structured Status (never an abort or UB), with the cause naming the
 * defect and the byte offset populated; the writer must refuse values
 * the format cannot represent instead of silently wrapping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/status.hh"
#include "test_helpers.hh"
#include "trace/trace_io.hh"

#ifndef XBS_TEST_DATA_DIR
#error "XBS_TEST_DATA_DIR must point at tests/data"
#endif

namespace xbs
{
namespace
{

std::string
dataPath(const std::string &file)
{
    return std::string(XBS_TEST_DATA_DIR) + "/" + file;
}

/** Read a corpus file, assert a structured error whose cause
 *  mentions @p expect_substr. */
void
expectCorrupt(const std::string &file, const std::string &expect_substr)
{
    SCOPED_TRACE(file);
    Expected<Trace> t = readTraceEx(dataPath(file));
    ASSERT_FALSE(t.ok()) << "corrupt file parsed successfully";
    const Status &st = t.status();
    EXPECT_NE(st.toString().find(expect_substr), std::string::npos)
        << "error was: " << st.toString();
    // Every corpus defect sits at a known place in the byte stream.
    EXPECT_TRUE(st.offset().has_value())
        << "error carries no byte offset: " << st.toString();
}

TEST(TraceIoCorpus, ValidControlParses)
{
    Expected<Trace> t = readTraceEx(dataPath("valid_min.xbt"));
    ASSERT_TRUE(t.ok()) << t.status().toString();
    Trace trace = t.take();
    EXPECT_EQ(trace.name(), "mini");
    EXPECT_EQ(trace.numRecords(), 2u);
    EXPECT_EQ(trace.totalUops(), 2u);
}

TEST(TraceIoCorpus, MissingFile)
{
    Expected<Trace> t = readTraceEx(dataPath("no_such_file.xbt"));
    ASSERT_FALSE(t.ok());
    EXPECT_NE(t.status().toString().find("cannot open"),
              std::string::npos);
}

TEST(TraceIoCorpus, EmptyFile)
{
    expectCorrupt("empty.xbt", "not an XBT1 trace");
}

TEST(TraceIoCorpus, BadMagic)
{
    expectCorrupt("bad_magic.xbt", "not an XBT1 trace");
}

TEST(TraceIoCorpus, TruncatedHeader)
{
    expectCorrupt("trunc_header.xbt", "not an XBT1 trace");
}

TEST(TraceIoCorpus, TruncatedName)
{
    expectCorrupt("trunc_name.xbt", "name length 100");
}

TEST(TraceIoCorpus, NameBeyondFormatCap)
{
    expectCorrupt("huge_name.xbt", "exceeds the format limit");
}

TEST(TraceIoCorpus, OversizedInstructionCount)
{
    expectCorrupt("oversized_inst_count.xbt", "instruction count");
}

TEST(TraceIoCorpus, UnknownInstructionClass)
{
    expectCorrupt("bad_inst_class.xbt", "unknown class 99");
}

TEST(TraceIoCorpus, TakenIdxOutOfRange)
{
    expectCorrupt("bad_taken_idx.xbt", "takenIdx 5 out of range");
}

TEST(TraceIoCorpus, ZeroUopInstruction)
{
    expectCorrupt("zero_uops.xbt", "uop count 0 outside 1..16");
}

TEST(TraceIoCorpus, DuplicateIp)
{
    expectCorrupt("dup_ip.xbt", "duplicate ip");
}

TEST(TraceIoCorpus, RecordIndexOutOfRange)
{
    expectCorrupt("bad_record_idx.xbt", "staticIdx 7 out of range");
}

TEST(TraceIoCorpus, BadTakenFlag)
{
    expectCorrupt("bad_taken_flag.xbt", "taken flag 2 is not 0/1");
}

TEST(TraceIoCorpus, TruncatedRecordSection)
{
    expectCorrupt("trunc_records.xbt", "record count 50");
}

TEST(TraceIoCorpus, TrailingBytes)
{
    expectCorrupt("trailing_bytes.xbt", "trailing bytes");
}

// ---------------------------------------------------------------
// Writer-side refusals and the legacy fatal wrappers.

TEST(TraceIoWriter, RefusesOverlongName)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    cb.jump(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, false}},
                            std::string(kMaxTraceNameLen + 1, 'n'));
    Status st = writeTraceEx(t, "/tmp/xbs_overlong_name.xbt");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.toString().find("exceeds the format limit"),
              std::string::npos);
}

TEST(TraceIoWriter, RefusesUnwritablePath)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    cb.jump(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, false}});
    Status st = writeTraceEx(t, "/no/such/dir/out.xbt");
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.toString().find("cannot open"), std::string::npos);
}

TEST(TraceIoWriter, RoundTripSurvives)
{
    CodeBuilder cb;
    int32_t a = cb.seq(3);
    int32_t b = cb.cond(0, 2);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code,
                            {{a, false}, {b, true}, {a, false}},
                            "roundtrip");
    const std::string path = "/tmp/xbs_roundtrip.xbt";
    ASSERT_TRUE(writeTraceEx(t, path).isOk());
    Expected<Trace> back = readTraceEx(path);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().numRecords(), t.numRecords());
    EXPECT_EQ(back.value().totalUops(), t.totalUops());
    EXPECT_EQ(back.value().name(), "roundtrip");
    std::remove(path.c_str());
}

TEST(TraceIoLegacy, FatalWrapperStillAborts)
{
    EXPECT_EXIT(readTrace(dataPath("bad_magic.xbt")),
                testing::ExitedWithCode(1), "not an XBT1 trace");
}

TEST(TraceIoLegacy, ReadWrapperReportsFileAndOffset)
{
    // The Status already carries the path and byte offset; the
    // legacy wrapper must surface both in its fatal message, not
    // just the cause string.
    EXPECT_EXIT(readTrace(dataPath("bad_taken_idx.xbt")),
                testing::ExitedWithCode(1),
                "bad_taken_idx\\.xbt' at byte [0-9]+");
}

TEST(TraceIoLegacy, ReadWrapperReportsFileWithoutOffset)
{
    // fopen failures have no offset, but the wrapper still attaches
    // the path it was asked to read.
    EXPECT_EXIT(readTrace(dataPath("no_such_file.xbt")),
                testing::ExitedWithCode(1),
                "cannot open for reading in '.*no_such_file\\.xbt'");
}

TEST(TraceIoLegacy, WriteWrapperReportsFile)
{
    CodeBuilder cb;
    int32_t a = cb.seq();
    cb.jump(0);
    auto code = cb.finalize();
    Trace t = makeTestTrace(code, {{a, false}});
    EXPECT_EXIT(writeTrace(t, "/no/such/dir/out.xbt"),
                testing::ExitedWithCode(1),
                "in '/no/such/dir/out\\.xbt'");
}

// ---------------------------------------------------------------
// Status / Expected unit behavior.

TEST(Status, ContextAttachmentInnerWins)
{
    Status st = Status::error("boom").withOffset(7);
    st.withFile("a.xbt").withOffset(99).withFile("b.xbt");
    EXPECT_EQ(st.file(), "a.xbt");
    ASSERT_TRUE(st.offset().has_value());
    EXPECT_EQ(*st.offset(), 7u);
    EXPECT_EQ(st.toString(), "boom in 'a.xbt' at byte 7");
}

TEST(Status, OkCarriesNoContext)
{
    Status st = Status::ok();
    EXPECT_TRUE(st.isOk());
    st.withFile("ignored").withOffset(3);
    EXPECT_EQ(st.toString(), "ok");
}

TEST(ExpectedT, ValueAndTake)
{
    Expected<int> e(42);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(e.take(), 42);

    Expected<int> bad(Status::error("nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().cause(), "nope");
}

} // anonymous namespace
} // namespace xbs
