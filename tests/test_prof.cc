/**
 * @file
 * Tests for the host-performance profiling layer: sampled phase
 * timing (including the <=2% overhead budget of --profile),
 * rusage/throughput counters, build-provenance round trips, the
 * sweep-to-bench.json aggregation with its torn/missing interval
 * degradation, and the regression gate's verdict taxonomy.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/fs.hh"
#include "common/json.hh"
#include "prof/bench_io.hh"
#include "prof/build_info.hh"
#include "prof/host_counters.hh"
#include "prof/perf_counters.hh"
#include "prof/phase_profiler.hh"

using namespace xbs;

namespace
{

/** Fresh scratch directory per test. */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/xbs_prof_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path);
    os << text;
}

} // anonymous namespace

// ---------------------------------------------------------------
// PhaseProfiler

TEST(PhaseProfiler, DefineDedupsByNameAndParent)
{
    PhaseProfiler prof;
    unsigned root = prof.definePhase("fetch");
    EXPECT_EQ(prof.definePhase("fetch"), root);
    unsigned child = prof.definePhase("predict", root);
    EXPECT_EQ(prof.definePhase("predict", root), child);
    // Same name under a different parent is a different phase.
    unsigned other = prof.definePhase("predict");
    EXPECT_NE(other, child);
    EXPECT_EQ(prof.phases().size(), 3u);
}

TEST(PhaseProfiler, ArmSamplesOneInEveryWindow)
{
    PhaseProfiler prof(/*sample_shift=*/2);  // 1 of every 4
    unsigned id = prof.definePhase("p");
    int sampled = 0;
    for (int i = 0; i < 8; ++i) {
        if (prof.arm(id))
            ++sampled;
    }
    EXPECT_EQ(sampled, 2);
    EXPECT_EQ(prof.phases()[id].calls, 8u);
}

TEST(PhaseProfiler, EstimateScalesSampledTime)
{
    PhaseProfiler prof(/*sample_shift=*/2);
    unsigned id = prof.definePhase("p");
    for (int i = 0; i < 8; ++i) {
        if (prof.arm(id))
            prof.commit(id, 100);
    }
    // 2 samples x 100ns scaled onto 8 calls -> 800ns.
    EXPECT_EQ(prof.estimatedNs(id), 800u);
    EXPECT_EQ(prof.totalEstimatedNs(), 800u);
}

TEST(PhaseProfiler, ScopedPhaseIsNoopWhenDetached)
{
    PhaseProfiler prof(0);
    unsigned id = prof.definePhase("p");
    {
        ScopedPhase off(nullptr, id);
        ScopedPhase sentinel(&prof, PhaseProfiler::kNoPhase);
    }
    EXPECT_EQ(prof.phases()[id].calls, 0u);
}

TEST(PhaseProfiler, ScopedPhaseAccumulates)
{
    PhaseProfiler prof(0);  // sample every call
    unsigned id = prof.definePhase("p");
    for (int i = 0; i < 100; ++i) {
        ScopedPhase timer(&prof, id);
    }
    const PhaseProfiler::Phase &p = prof.phases()[id];
    EXPECT_EQ(p.calls, 100u);
    EXPECT_EQ(p.sampledCalls, 100u);
}

TEST(PhaseProfiler, JsonAndRenderCarryPhases)
{
    PhaseProfiler prof(0);
    unsigned root = prof.definePhase("build");
    unsigned child = prof.definePhase("predict", root);
    if (prof.arm(root))
        prof.commit(root, 1000);
    if (prof.arm(child))
        prof.commit(child, 200);

    std::ostringstream os;
    {
        JsonWriter jw(os);
        jw.beginObject();
        prof.writeJson(jw);
        jw.endObject();
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), &doc));
    const JsonValue *phases = doc.find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_TRUE(phases->isArray());
    EXPECT_EQ(phases->items.size(), 2u);

    const std::string tree = prof.render();
    EXPECT_NE(tree.find("build"), std::string::npos);
    EXPECT_NE(tree.find("predict"), std::string::npos);
}

/**
 * The --profile overhead budget: sampled phase timing must cost no
 * more than 2% on a workload whose per-entry work resembles a
 * simulator cycle. Interleaved min-of-N repetitions cancel host
 * noise (the minimum filters one-sided scheduler interference).
 */
TEST(PhaseProfiler, SampledOverheadWithinTwoPercent)
{
    constexpr int kEntries = 1 << 14;
    constexpr int kWorkSteps = 128;  // ~ a simulated cycle's work
    constexpr int kReps = 9;

    // xorshift kernel: cheap, unoptimizable-away deterministic work.
    auto work = [](uint64_t seed) {
        uint64_t x = seed | 1;
        for (int i = 0; i < kWorkSteps; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        return x;
    };

    PhaseProfiler prof;  // default shift: 1 of every 64
    unsigned id = prof.definePhase("cycle");
    volatile uint64_t sink = 0;

    // The pointer is read through a volatile so both variants run
    // the exact code --profile-less xbsim runs (a runtime null
    // check), and the serial acc chain keeps the compiler from
    // vectorizing the unprofiled loop into an unrealistic baseline.
    auto rep = [&](PhaseProfiler *p) {
        PhaseProfiler *volatile vp = p;
        auto t0 = std::chrono::steady_clock::now();
        uint64_t acc = 1;
        for (int i = 0; i < kEntries; ++i) {
            ScopedPhase timer(vp, id);
            acc = work(acc + (uint64_t)i);
        }
        sink = sink ^ acc;
        return (uint64_t)std::chrono::duration_cast<
                   std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    uint64_t best_off = ~0ull, best_on = ~0ull;
    for (int r = 0; r < kReps; ++r) {
        best_off = std::min(best_off, rep(nullptr));
        best_on = std::min(best_on, rep(&prof));
    }

    const double ratio = (double)best_on / (double)best_off;
    EXPECT_LE(ratio, 1.02)
        << "profiled " << best_on << "ns vs " << best_off
        << "ns unprofiled";
}

// ---------------------------------------------------------------
// Host counters / throughput

TEST(HostCounters, SelfSnapshotIsPlausible)
{
    const HostCounters hc = HostCounters::self();
    EXPECT_GT(hc.maxRssKb, 0u);
    EXPECT_GE(hc.cpuSec(), 0.0);

    std::ostringstream os;
    {
        JsonWriter jw(os);
        jw.beginObject();
        hc.writeJson(jw);
        jw.endObject();
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), &doc));
    const JsonValue *host = doc.find("host");
    ASSERT_NE(host, nullptr);
    EXPECT_NE(host->find("maxRssKb"), nullptr);
}

TEST(ThroughputMeter, WindowAndOverallRates)
{
    ThroughputMeter meter;
    meter.reset();
    // Burn a little CPU so the elapsed window is nonzero even on a
    // coarse clock.
    volatile uint64_t x = 1;
    for (int i = 0; i < 200000; ++i)
        x = x * 2654435761u + 1;

    ThroughputMeter::Rates w1 = meter.sample(1000, 2000, 500);
    EXPECT_GT(w1.windowSeconds, 0.0);
    EXPECT_GT(w1.cyclesPerSec, 0.0);
    EXPECT_GT(w1.uopsPerSec, w1.cyclesPerSec);  // 2 uops per cycle

    for (int i = 0; i < 200000; ++i)
        x = x * 2654435761u + 1;
    ThroughputMeter::Rates w2 = meter.sample(3000, 6000, 1500);
    EXPECT_GT(w2.windowSeconds, 0.0);
    EXPECT_GE(w2.wallSeconds, w2.windowSeconds);

    ThroughputMeter::Rates all = meter.overall(3000, 6000, 1500);
    EXPECT_GT(all.cyclesPerSec, 0.0);
    EXPECT_GE(all.wallSeconds, w2.wallSeconds);
}

TEST(ThroughputMeter, SubTickWindowsNeverProduceInfiniteRates)
{
    // Hammer sample() back-to-back: whatever the clock granularity,
    // rates must stay finite and non-negative, and any window below
    // the epsilon floor must report exactly zero (the deltas carry
    // into the next real window instead of dividing by ~0).
    ThroughputMeter meter;
    meter.reset();
    uint64_t cycles = 0;
    for (int i = 0; i < 5000; ++i) {
        cycles += 10;
        ThroughputMeter::Rates r =
            meter.sample(cycles, cycles * 2, cycles / 10);
        ASSERT_TRUE(std::isfinite(r.cyclesPerSec));
        ASSERT_TRUE(std::isfinite(r.uopsPerSec));
        ASSERT_TRUE(std::isfinite(r.recordsPerSec));
        ASSERT_GE(r.cyclesPerSec, 0.0);
        if (r.windowSeconds < ThroughputMeter::kMinWindowSec) {
            ASSERT_EQ(r.cyclesPerSec, 0.0);
            ASSERT_EQ(r.uopsPerSec, 0.0);
            ASSERT_EQ(r.recordsPerSec, 0.0);
        }
    }
    ThroughputMeter::Rates all =
        meter.overall(cycles, cycles * 2, cycles / 10);
    EXPECT_TRUE(std::isfinite(all.cyclesPerSec));
    EXPECT_GE(all.wallSeconds, 0.0);
}

// ---------------------------------------------------------------
// Build provenance

TEST(BuildInfo, RoundTripsThroughJson)
{
    const BuildInfo &info = buildInfo();
    EXPECT_FALSE(info.compiler.empty());
    EXPECT_FALSE(info.buildType.empty());

    std::ostringstream os;
    {
        JsonWriter jw(os);
        jw.beginObject();
        writeBuildInfoJson(jw, info);
        jw.endObject();
    }
    JsonValue doc;
    ASSERT_TRUE(parseJson(os.str(), &doc));
    const JsonValue *bi = doc.find("buildInfo");
    ASSERT_NE(bi, nullptr);
    BuildInfo back = parseBuildInfoJson(*bi);
    EXPECT_EQ(back.compiler, info.compiler);
    EXPECT_EQ(back.buildType, info.buildType);
    EXPECT_EQ(back.source, info.source);
    EXPECT_EQ(back.sanitized, info.sanitized);
}

TEST(BuildInfo, CompatibilityGatesOnTypeAndSanitizer)
{
    BuildInfo a = buildInfo();
    BuildInfo b = a;
    EXPECT_TRUE(buildCompatible(a, b));

    b.buildType = a.buildType == "Debug" ? "Release" : "Debug";
    EXPECT_FALSE(buildCompatible(a, b));

    b = a;
    b.sanitized = !a.sanitized;
    EXPECT_FALSE(buildCompatible(a, b));

    // Compiler/flags/source drift is a soft note, not a gate.
    b = a;
    b.compiler = "gcc 99.0";
    b.source = "deadbee";
    std::vector<std::string> notes;
    EXPECT_TRUE(buildCompatible(a, b, &notes));
    EXPECT_FALSE(notes.empty());
}

// ---------------------------------------------------------------
// Sweep aggregation (xbagg's core)

namespace
{

/** A minimal sweep report with three ok jobs and one failed one. */
std::string
syntheticReport()
{
    return R"({
  "version": 1,
  "interrupted": false,
  "buildInfo": {
    "compiler": "gcc 12.2.0", "buildType": "Release", "flags": "",
    "source": "abc1234", "cxxStandard": 202002, "sanitized": false
  },
  "intervalCycles": 1000,
  "summary": {"total": 4, "ok": 3, "failed": 1, "notRun": 0,
              "retries": 0, "classes": {"ok": 3, "crash": 1}},
  "timing": {"wallSeconds": 2.5},
  "jobs": [
    {"id": 0, "workload": "gcc", "frontend": "ic", "capacity": 32768,
     "done": true, "class": "ok", "attempts": 1, "exit": 0,
     "signal": 0, "replayed": false, "seconds": 1.0,
     "metrics": {"bandwidth": 4.0, "missRate": 0.01,
                 "overallIpc": 2.5, "cycles": 1000,
                 "totalUops": 4000},
     "rusage": {"maxRssKb": 10000, "userSec": 0.5, "sysSec": 0.1}},
    {"id": 1, "workload": "gcc", "frontend": "xbc",
     "capacity": 32768, "ways": 4, "done": true, "class": "ok",
     "attempts": 1, "exit": 0, "signal": 0, "replayed": false,
     "seconds": 1.2,
     "metrics": {"bandwidth": 8.0, "missRate": 0.03,
                 "overallIpc": 3.5, "cycles": 500,
                 "totalUops": 4000},
     "rusage": {"maxRssKb": 20000, "userSec": 0.7, "sysSec": 0.1}},
    {"id": 2, "workload": "go", "frontend": "tc", "capacity": 32768,
     "done": true, "class": "ok", "attempts": 1, "exit": 0,
     "signal": 0, "replayed": false, "seconds": 0.8,
     "metrics": {"bandwidth": 5.0, "missRate": 0.02,
                 "overallIpc": 3.0, "cycles": 800,
                 "totalUops": 4000},
     "rusage": {"maxRssKb": 15000, "userSec": 0.4, "sysSec": 0.2}},
    {"id": 3, "workload": "li", "frontend": "tc", "capacity": 32768,
     "done": true, "class": "crash", "attempts": 2, "exit": -1,
     "signal": 11, "replayed": false, "seconds": 0.1}
  ]
})";
}

/** One interval window line with the given bandwidth. */
std::string
windowLine(double bw)
{
    std::ostringstream os;
    os << "{\"interval\":0,\"cycles\":1000,\"bandwidth\":" << bw
       << ",\"missRate\":0.01}\n";
    return os.str();
}

} // anonymous namespace

TEST(BenchAggregate, MergesReportAndIntervals)
{
    const std::string dir = makeTempDir();
    ASSERT_TRUE(ensureDir(dir + "/intervals").isOk());
    writeFile(dir + "/report.json", syntheticReport());

    // Job 0: 100 clean windows with bandwidth 1..100 / 25.
    std::string lines;
    for (int i = 1; i <= 100; ++i)
        lines += windowLine(i / 25.0);
    writeFile(dir + "/intervals/job-0.jsonl", lines);
    // Job 1: two clean windows, then a torn line.
    writeFile(dir + "/intervals/job-1.jsonl",
              windowLine(8.0) + windowLine(8.5) +
                  "{\"interval\":2,\"band");
    // Job 2: no interval file at all.

    Expected<BenchReport> bench = aggregateSweepDir(dir);
    ASSERT_TRUE(bench.ok()) << bench.status().toString();
    const BenchReport &b = bench.value();

    EXPECT_EQ(b.jobsTotal, 4u);
    EXPECT_EQ(b.jobsOk, 3u);
    EXPECT_EQ(b.jobsFailed, 1u);
    EXPECT_EQ(b.intervalCycles, 1000u);
    EXPECT_EQ(b.build.source, "abc1234");
    ASSERT_EQ(b.rows.size(), 3u);  // crashed job contributes no row

    const BenchRow &r0 = b.rows[0];
    EXPECT_EQ(r0.id, "ic/gcc@32768");
    EXPECT_DOUBLE_EQ(r0.bandwidth, 4.0);
    EXPECT_EQ(r0.totalUops, 4000u);
    ASSERT_TRUE(r0.intervals.has);
    EXPECT_FALSE(r0.intervals.torn);
    EXPECT_EQ(r0.intervals.windows, 100u);
    EXPECT_NEAR(r0.intervals.bwP50, 2.0, 1e-3);
    EXPECT_NEAR(r0.intervals.bwP95, 3.8, 1e-3);
    EXPECT_NEAR(r0.intervals.bwP99, 3.96, 1e-3);
    ASSERT_TRUE(r0.host.has);
    EXPECT_EQ(r0.host.maxRssKb, 10000u);
    EXPECT_NEAR(r0.host.uopsPerHostSec, 4000 / 0.6, 1e-6);

    // The ways!=0 geometry shows up in the row id.
    const BenchRow &r1 = b.rows[1];
    EXPECT_EQ(r1.id, "xbc/gcc@32768w4");
    ASSERT_TRUE(r1.intervals.has);
    EXPECT_TRUE(r1.intervals.torn);
    EXPECT_EQ(r1.intervals.windows, 2u);  // clean prefix kept
    EXPECT_NEAR(r1.intervals.bwP50, 8.0, 1e-3);

    const BenchRow &r2 = b.rows[2];
    EXPECT_FALSE(r2.intervals.has);  // degraded, row still present
    EXPECT_DOUBLE_EQ(r2.bandwidth, 5.0);

    // Sweep-wide host rollup: user/sys sum, RSS max, uops/cpu.
    ASSERT_TRUE(b.host.has);
    EXPECT_NEAR(b.host.userSec, 1.6, 1e-9);
    EXPECT_NEAR(b.host.sysSec, 0.4, 1e-9);
    EXPECT_EQ(b.host.maxRssKb, 20000u);
    EXPECT_NEAR(b.host.uopsPerHostSec, 12000 / 2.0, 1e-6);
}

TEST(BenchAggregate, MissingReportFails)
{
    const std::string dir = makeTempDir();
    Expected<BenchReport> bench = aggregateSweepDir(dir);
    EXPECT_FALSE(bench.ok());
}

TEST(BenchAggregate, BenchJsonRoundTrips)
{
    const std::string dir = makeTempDir();
    ASSERT_TRUE(ensureDir(dir + "/intervals").isOk());
    writeFile(dir + "/report.json", syntheticReport());
    writeFile(dir + "/intervals/job-0.jsonl",
              windowLine(4.0) + windowLine(4.2));

    Expected<BenchReport> bench = aggregateSweepDir(dir);
    ASSERT_TRUE(bench.ok());
    const std::string json = renderBenchJson(bench.value());
    Expected<BenchReport> back = parseBenchJson(json, "mem");
    ASSERT_TRUE(back.ok()) << back.status().toString();

    const BenchReport &a = bench.value(), &b = back.value();
    ASSERT_EQ(b.rows.size(), a.rows.size());
    EXPECT_EQ(b.rows[0].id, a.rows[0].id);
    EXPECT_DOUBLE_EQ(b.rows[0].missRate, a.rows[0].missRate);
    EXPECT_EQ(b.rows[0].intervals.windows,
              a.rows[0].intervals.windows);
    EXPECT_DOUBLE_EQ(b.rows[0].intervals.bwP95,
                     a.rows[0].intervals.bwP95);
    EXPECT_EQ(b.host.maxRssKb, a.host.maxRssKb);
    EXPECT_EQ(b.build.source, a.build.source);
    EXPECT_EQ(b.intervalCycles, a.intervalCycles);
}

// ---------------------------------------------------------------
// Regression gate (xbregress's core)

namespace
{

BenchReport
makeBaseline()
{
    BenchReport b;
    b.build.compiler = "gcc 12.2.0";
    b.build.buildType = "Release";
    b.build.sanitized = false;
    b.jobsTotal = b.jobsOk = 1;
    b.intervalCycles = 1000;

    BenchRow row;
    row.id = "xbc/gcc@32768";
    row.frontend = "xbc";
    row.workload = "gcc";
    row.capacity = 32768;
    row.missRate = 0.04;
    row.bandwidth = 8.0;
    row.overallIpc = 3.5;
    row.cycles = 10000;
    row.totalUops = 40000;
    row.intervals.has = true;
    row.intervals.windows = 50;
    row.intervals.bwP50 = 7.9;
    row.intervals.bwP95 = 8.4;
    row.intervals.bwP99 = 8.6;
    b.rows.push_back(row);

    b.host.has = true;
    b.host.userSec = 2.0;
    b.host.sysSec = 0.5;
    b.host.maxRssKb = 30000;
    b.host.uopsPerHostSec = 16000.0;
    return b;
}

} // anonymous namespace

TEST(Regress, IdenticalReportsPass)
{
    BenchReport base = makeBaseline();
    RegressReport rep = compareBench(base, base, RegressOptions{});
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.regressions, 0u);
    EXPECT_EQ(rep.missing, 0u);
    // 5 paper + 3 interval + 3 host metrics.
    EXPECT_EQ(rep.compared, 11u);
}

TEST(Regress, PaperMetricDriftFails)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.rows[0].missRate *= 1.02;  // +2% on a +-0.5% gate
    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.regressions, 1u);

    bool found = false;
    for (const MetricDelta &d : rep.deltas) {
        if (d.name == "xbc/gcc@32768.missRate") {
            found = true;
            EXPECT_EQ(d.verdict, MetricVerdict::Regress);
            EXPECT_NEAR(d.rel, 0.02, 1e-9);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Regress, ExactCounterAnyDriftFails)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.rows[0].totalUops += 1;  // below 0.5% but Exact-gated
    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.regressions, 1u);
}

TEST(Regress, ImprovementPassesAndIsCounted)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.rows[0].bandwidth *= 1.10;  // higher-is-better, way up
    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.improvements, 1u);
}

TEST(Regress, HostDriftWarnsUnlessGated)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.host.userSec = 4.0;  // +80% cpu on a +-50% host gate

    RegressReport warn = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(warn.pass());
    EXPECT_EQ(warn.warnings, 1u);

    RegressOptions gated;
    gated.gateHost = true;
    RegressReport fail = compareBench(cur, base, gated);
    EXPECT_FALSE(fail.pass());
    EXPECT_EQ(fail.regressions, 1u);
}

TEST(Regress, MissingRowAndMissingIntervalsFail)
{
    BenchReport base = makeBaseline();

    BenchReport empty = base;
    empty.rows.clear();
    RegressReport rep = compareBench(empty, base, RegressOptions{});
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.missing, 1u);  // the whole row is gone

    // A current row without interval percentiles is a missing
    // metric, not a silent pass.
    BenchReport no_iv = base;
    no_iv.rows[0].intervals = BenchIntervals{};
    RegressReport rep2 = compareBench(no_iv, base, RegressOptions{});
    EXPECT_FALSE(rep2.pass());
    EXPECT_GE(rep2.missing, 1u);
}

TEST(Regress, BuildMismatchGatesUnlessAllowed)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.build.buildType = "Debug";

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(rep.buildMismatch);
    EXPECT_TRUE(rep.buildGated);
    EXPECT_FALSE(rep.pass());

    RegressOptions allow;
    allow.allowBuildMismatch = true;
    RegressReport ok = compareBench(cur, base, allow);
    EXPECT_TRUE(ok.buildMismatch);
    EXPECT_FALSE(ok.buildGated);
    EXPECT_TRUE(ok.pass());
}

TEST(Regress, TableAndRecordNameOffenders)
{
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.rows[0].missRate *= 1.02;
    RegressReport rep = compareBench(cur, base, RegressOptions{});

    const std::string table = renderRegressTable(rep, false);
    EXPECT_NE(table.find("missRate"), std::string::npos);
    EXPECT_NE(table.find("FAIL"), std::string::npos);

    const std::string record =
        renderBenchRecord(cur, rep, "base.json");
    JsonValue doc;
    ASSERT_TRUE(parseJson(record, &doc));
    EXPECT_EQ(doc.find("verdict")->asString(), "fail");
    const JsonValue *flagged = doc.find("flagged");
    ASSERT_NE(flagged, nullptr);
    ASSERT_TRUE(flagged->isArray());
    EXPECT_EQ(flagged->items.size(), 1u);
    const JsonValue *bench = doc.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_NE(bench->find("rows"), nullptr);
}

// ----------------------------------------------------------------
// Host perf counters: scale-up math, typed denial, attribution.

namespace
{

/** A synthetic group snapshot: raw[i] = base * (i + 1). */
PerfCounterGroup::Snapshot
perfSnap(uint64_t enabled, uint64_t running, uint64_t base)
{
    PerfCounterGroup::Snapshot s;
    s.valid = true;
    s.timeEnabled = enabled;
    s.timeRunning = running;
    for (int i = 0; i < PerfCounterGroup::kMaxEvents; ++i)
        s.raw[i] = base * (uint64_t)(i + 1);
    return s;
}

/** The core six events present, the optional ones absent. */
void
coreSix(bool present[PerfCounterGroup::kMaxEvents])
{
    for (int i = 0; i < PerfCounterGroup::kMaxEvents; ++i)
        present[i] = i <= PerfCounterGroup::kBranchMisses;
}

} // anonymous namespace

TEST(PerfCounters, DerivedRatesGuardZeroDenominators)
{
    PerfDelta d;
    EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(d.cacheMpki(), 0.0);
    EXPECT_DOUBLE_EQ(d.branchMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(d.multiplexFraction(), 1.0);

    d.cycles = 1000.0;
    d.instructions = 2500.0;
    d.cacheMisses = 5.0;
    d.branches = 100.0;
    d.branchMisses = 10.0;
    EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(d.cacheMpki(), 2.0);
    EXPECT_DOUBLE_EQ(d.branchMissRate(), 0.1);

    PerfDelta other = d;
    other.samples = 1;
    d.add(other);
    EXPECT_DOUBLE_EQ(d.cycles, 2000.0);
    EXPECT_DOUBLE_EQ(d.instructions, 5000.0);
    EXPECT_EQ(d.samples, 1u);
    EXPECT_DOUBLE_EQ(d.ipc(), 2.5);  // rates survive accumulation
}

TEST(PerfCounters, ScaleIsIdentityWhenFullyScheduled)
{
    bool present[PerfCounterGroup::kMaxEvents];
    coreSix(present);
    PerfCounterGroup::Snapshot begin = perfSnap(0, 0, 0);
    PerfCounterGroup::Snapshot end = perfSnap(1000, 1000, 1000);

    PerfDelta d = PerfCounterGroup::scale(begin, end, present);
    EXPECT_EQ(d.samples, 1u);
    EXPECT_DOUBLE_EQ(d.cycles, 1000.0);
    EXPECT_DOUBLE_EQ(d.instructions, 2000.0);
    EXPECT_DOUBLE_EQ(d.cacheRefs, 3000.0);
    EXPECT_DOUBLE_EQ(d.cacheMisses, 4000.0);
    EXPECT_DOUBLE_EQ(d.branches, 5000.0);
    EXPECT_DOUBLE_EQ(d.branchMisses, 6000.0);
    // Absent optional events contribute nothing.
    EXPECT_DOUBLE_EQ(d.dtlbMisses, 0.0);
    EXPECT_DOUBLE_EQ(d.llcMisses, 0.0);
    EXPECT_DOUBLE_EQ(d.multiplexFraction(), 1.0);
}

TEST(PerfCounters, ScaleExtrapolatesMultiplexedWindows)
{
    bool present[PerfCounterGroup::kMaxEvents];
    coreSix(present);
    PerfCounterGroup::Snapshot begin = perfSnap(0, 0, 0);
    // The group was scheduled for only half its enabled window, so
    // every raw delta extrapolates by time_enabled / time_running.
    PerfCounterGroup::Snapshot end = perfSnap(1000, 500, 1000);

    PerfDelta d = PerfCounterGroup::scale(begin, end, present);
    EXPECT_DOUBLE_EQ(d.cycles, 2000.0);
    EXPECT_DOUBLE_EQ(d.instructions, 4000.0);
    EXPECT_DOUBLE_EQ(d.branchMisses, 12000.0);
    EXPECT_NEAR(d.multiplexFraction(), 0.5, 1e-12);
}

TEST(PerfCounters, ScaleDropsWindowsThatNeverRan)
{
    bool present[PerfCounterGroup::kMaxEvents];
    coreSix(present);
    PerfCounterGroup::Snapshot begin = perfSnap(0, 0, 0);
    PerfCounterGroup::Snapshot end = perfSnap(1000, 0, 1000);

    // time_running did not advance: no basis for extrapolation, so
    // the counts are dropped rather than invented.
    PerfDelta d = PerfCounterGroup::scale(begin, end, present);
    EXPECT_EQ(d.samples, 1u);
    EXPECT_DOUBLE_EQ(d.cycles, 0.0);
    EXPECT_DOUBLE_EQ(d.instructions, 0.0);
    EXPECT_DOUBLE_EQ(d.multiplexFraction(), 0.0);
}

TEST(PerfCounters, SimulatedDenialIsTypedAndGraceful)
{
    ::setenv("XBS_PERF_DENY", "paranoid", 1);
    PerfCounterGroup denied;
    EXPECT_FALSE(denied.open());
    EXPECT_FALSE(denied.available());
    EXPECT_NE(denied.unavailableReason().find("denied"),
              std::string::npos)
        << denied.unavailableReason();
    EXPECT_NE(denied.unavailableReason().find("perf_event_paranoid"),
              std::string::npos)
        << denied.unavailableReason();
    EXPECT_FALSE(denied.read().valid);

    ::setenv("XBS_PERF_DENY", "enosys", 1);
    PerfCounterGroup nosys;
    EXPECT_FALSE(nosys.open());
    EXPECT_NE(nosys.unavailableReason().find("unsupported"),
              std::string::npos)
        << nosys.unavailableReason();
    ::unsetenv("XBS_PERF_DENY");
}

TEST(PerfCounters, ProfilerIgnoresUnavailableGroup)
{
    ::setenv("XBS_PERF_DENY", "paranoid", 1);
    PerfCounterGroup grp;
    grp.open();
    ::unsetenv("XBS_PERF_DENY");

    PhaseProfiler prof(0);
    unsigned id = prof.definePhase("hot");
    prof.attachPerf(&grp);
    EXPECT_FALSE(prof.perfAttached());
    for (int i = 0; i < 16; ++i)
        ScopedPhase t(&prof, id);
    EXPECT_EQ(prof.phases()[id].calls, 16u);
    EXPECT_EQ(prof.phasePerf(id).samples, 0u);
}

TEST(PerfCounters, LivePerPhaseAttributionWhenAvailable)
{
    PerfCounterGroup grp;
    if (!grp.open())
        GTEST_SKIP() << "host perf counters unavailable: "
                     << grp.unavailableReason();
    ASSERT_GE(grp.eventNames().size(), 6u);

    PhaseProfiler prof(0);
    unsigned id = prof.definePhase("hot");
    prof.attachPerf(&grp, 0);  // snapshot every armed entry
    EXPECT_TRUE(prof.perfAttached());

    volatile uint64_t sink = 0;
    for (int i = 0; i < 512; ++i) {
        ScopedPhase t(&prof, id);
        uint64_t x = (uint64_t)i | 1;
        for (int k = 0; k < 64; ++k) {
            x ^= x << 13;
            x ^= x >> 7;
        }
        sink = sink ^ x;
    }
    const PerfDelta &d = prof.phasePerf(id);
    EXPECT_GT(d.samples, 0u);
    EXPECT_GT(d.cycles, 0.0);
    EXPECT_GT(d.instructions, 0.0);
    EXPECT_GT(d.ipc(), 0.0);
}

TEST(PhaseProfiler, RenderShowsSampledCalls)
{
    PhaseProfiler prof(0);
    unsigned id = prof.definePhase("decode");
    for (int i = 0; i < 4; ++i)
        ScopedPhase t(&prof, id);
    std::string tree = prof.render();
    EXPECT_NE(tree.find("sampled"), std::string::npos) << tree;
    EXPECT_NE(tree.find("decode"), std::string::npos) << tree;
}

TEST(PhaseProfiler, PerfSampledOverheadWithinTwoPercent)
{
    PerfCounterGroup grp;
    if (!grp.open())
        GTEST_SKIP() << "host perf counters unavailable: "
                     << grp.unavailableReason();

    // Same harness as SampledOverheadWithinTwoPercent, with the
    // counter group attached at the production sampling shift.
    constexpr int kEntries = 1 << 14;
    constexpr int kWorkSteps = 128;
    auto work = [](PhaseProfiler *prof, unsigned id) {
        uint64_t acc = 0;
        for (int i = 0; i < kEntries; ++i) {
            ScopedPhase t(prof, id);
            uint64_t x = (uint64_t)i * 2654435761u + 1;
            for (int k = 0; k < kWorkSteps; ++k) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            acc ^= x;
        }
        return acc;
    };

    PhaseProfiler prof;
    unsigned id = prof.definePhase("hot");
    prof.attachPerf(&grp);

    auto rep = [&](PhaseProfiler *p) {
        PhaseProfiler *volatile vp = p;
        volatile uint64_t sink = 0;
        double best = 1e300;
        for (int r = 0; r < 9; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            sink = sink ^ work(vp, id);
            auto t1 = std::chrono::steady_clock::now();
            double sec =
                std::chrono::duration<double>(t1 - t0).count();
            if (sec < best)
                best = sec;
        }
        return best;
    };

    double off = rep(nullptr);
    double on = rep(&prof);
    double ratio = on / off;
    EXPECT_LE(ratio, 1.02)
        << "perf-profiled: " << on << "s bare: " << off << "s";
}

// ----------------------------------------------------------------
// Bench aggregation and regression gating of host perf counters.

namespace
{

/** syntheticReport() with host perf objects on jobs 0 and 1. */
std::string
syntheticPerfReport()
{
    std::string rep = syntheticReport();
    auto inject = [&rep](const std::string &anchor,
                         const std::string &perf) {
        std::size_t at = rep.find(anchor);
        ASSERT_NE(at, std::string::npos);
        at += anchor.size();
        rep.insert(at, perf);
    };
    inject("\"rusage\": {\"maxRssKb\": 10000, \"userSec\": 0.5, "
           "\"sysSec\": 0.1}",
           ",\n     \"perf\": {\"cycles\": 1000000, "
           "\"instructions\": 2500000, \"cacheRefs\": 50000, "
           "\"cacheMisses\": 2500, \"branches\": 500000, "
           "\"branchMisses\": 10000, \"ipc\": 2.5, "
           "\"cacheMpki\": 1.0, \"branchMissRate\": 0.02}");
    inject("\"rusage\": {\"maxRssKb\": 20000, \"userSec\": 0.7, "
           "\"sysSec\": 0.1}",
           ",\n     \"perf\": {\"cycles\": 2000000, "
           "\"instructions\": 3000000, \"cacheRefs\": 60000, "
           "\"cacheMisses\": 3000, \"branches\": 600000, "
           "\"branchMisses\": 6000, \"ipc\": 1.5, "
           "\"cacheMpki\": 1.0, \"branchMissRate\": 0.01}");
    return rep;
}

/** One interval window line carrying a host perf annotation. */
std::string
windowLinePerf(double bw, double ipc)
{
    std::ostringstream os;
    os << "{\"interval\":0,\"cycles\":1000,\"bandwidth\":" << bw
       << ",\"missRate\":0.01,\"perf\":{\"ipc\":" << ipc
       << ",\"cacheMpki\":1.0,\"branchMissRate\":0.02,"
          "\"multiplexFraction\":1.0}}\n";
    return os.str();
}

} // anonymous namespace

TEST(BenchAggregate, PerfCountersRollUpAndRoundTrip)
{
    const std::string dir = makeTempDir();
    ASSERT_TRUE(ensureDir(dir + "/intervals").isOk());
    writeFile(dir + "/report.json", syntheticPerfReport());

    std::string lines;
    for (int i = 1; i <= 100; ++i)
        lines += windowLinePerf(i / 25.0, i / 50.0);
    writeFile(dir + "/intervals/job-0.jsonl", lines);

    Expected<BenchReport> bench = aggregateSweepDir(dir);
    ASSERT_TRUE(bench.ok()) << bench.status().toString();
    const BenchReport &b = bench.value();
    ASSERT_EQ(b.rows.size(), 3u);

    // Per-row counters come from report.json; derived rates are
    // recomputed, never trusted from the file.
    const BenchRow &r0 = b.rows[0];
    ASSERT_TRUE(r0.perf.has);
    EXPECT_DOUBLE_EQ(r0.perf.cycles, 1000000.0);
    EXPECT_DOUBLE_EQ(r0.perf.instructions, 2500000.0);
    EXPECT_DOUBLE_EQ(r0.perf.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(r0.perf.cacheMpki(), 1.0);
    EXPECT_DOUBLE_EQ(r0.perf.branchMissRate(), 0.02);
    EXPECT_TRUE(b.rows[1].perf.has);
    EXPECT_FALSE(b.rows[2].perf.has);  // job 2 ran without --perf

    // Interval IPC percentiles mirror the bandwidth percentile math.
    ASSERT_TRUE(r0.intervals.has);
    EXPECT_EQ(r0.intervals.ipcWindows, 100u);
    EXPECT_NEAR(r0.intervals.ipcP50, 1.0, 1e-3);
    EXPECT_NEAR(r0.intervals.ipcP95, 1.9, 1e-3);
    EXPECT_NEAR(r0.intervals.ipcP99, 1.98, 1e-3);

    // Sweep-wide perf: counter sums, rates recomputed from sums.
    ASSERT_TRUE(b.perf.has);
    EXPECT_DOUBLE_EQ(b.perf.cycles, 3000000.0);
    EXPECT_DOUBLE_EQ(b.perf.instructions, 5500000.0);
    EXPECT_DOUBLE_EQ(b.perf.cacheMisses, 5500.0);
    EXPECT_NEAR(b.perf.ipc(), 5500000.0 / 3000000.0, 1e-12);
    EXPECT_NEAR(b.perf.cacheMpki(), 1.0, 1e-12);

    // Render / parse round trip preserves the perf surfaces.
    Expected<BenchReport> back =
        parseBenchJson(renderBenchJson(b), "mem");
    ASSERT_TRUE(back.ok()) << back.status().toString();
    const BenchReport &rt = back.value();
    ASSERT_TRUE(rt.perf.has);
    EXPECT_DOUBLE_EQ(rt.perf.cycles, b.perf.cycles);
    EXPECT_DOUBLE_EQ(rt.perf.branchMisses, b.perf.branchMisses);
    ASSERT_TRUE(rt.rows[0].perf.has);
    EXPECT_DOUBLE_EQ(rt.rows[0].perf.instructions, 2500000.0);
    EXPECT_EQ(rt.rows[0].intervals.ipcWindows, 100u);
    EXPECT_NEAR(rt.rows[0].intervals.ipcP95, r0.intervals.ipcP95,
                1e-9);
    EXPECT_FALSE(rt.rows[2].perf.has);
}

TEST(Regress, HostPerfComparedSweepWideWarnOnly)
{
    BenchReport base = makeBaseline();
    base.perf.has = true;
    base.perf.cycles = 1e9;
    base.perf.instructions = 2e9;  // ipc 2.0
    base.perf.cacheRefs = 4e7;
    base.perf.cacheMisses = 2e6;   // cacheMpki 1.0
    base.perf.branches = 4e8;
    base.perf.branchMisses = 8e6;

    BenchReport cur = base;
    RegressReport same = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(same.pass());
    // 5 paper + 3 interval + 3 host + 2 sweep-wide perf metrics.
    EXPECT_EQ(same.compared, 13u);

    // Host IPC collapse is a warning by default, a failure when the
    // host class is gated -- same policy as the rusage metrics.
    cur.perf.instructions = 0.9e9;
    RegressReport warn = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(warn.pass());
    EXPECT_GE(warn.warnings, 1u);

    RegressOptions gated;
    gated.gateHost = true;
    RegressReport fail = compareBench(cur, base, gated);
    EXPECT_FALSE(fail.pass());

    // A perf baseline against a counter-less current run flags the
    // missing metric instead of silently shrinking coverage.
    BenchReport bare = base;
    bare.perf = BenchPerf{};
    RegressReport missing = compareBench(bare, base, RegressOptions{});
    EXPECT_FALSE(missing.pass());
    EXPECT_GE(missing.missing, 1u);
}

// ---------------------------------------------------------------
// Statistical gate: CI-carrying baselines decide bandwidth by
// interval overlap instead of the raw threshold.

namespace
{

BenchStats
makeStats(double mean, double ci95, uint64_t batches)
{
    BenchStats st;
    st.has = true;
    st.windows = batches * 8;
    st.mean = mean;
    st.var = 0.02;
    st.lag1 = 0.05;
    st.ciValid = true;
    st.ci95 = ci95;
    st.batches = batches;
    st.batchSize = 8;
    return st;
}

/** The bandwidth delta row for the baseline's single bench row. */
const MetricDelta *
bandwidthDelta(const RegressReport &rep)
{
    for (const MetricDelta &d : rep.deltas)
        if (d.name == "xbc/gcc@32768.bandwidth")
            return &d;
    return nullptr;
}

} // anonymous namespace

TEST(RegressStatistical, StatsRoundTripExactly)
{
    const std::string dir = makeTempDir();
    BenchReport b = makeBaseline();
    b.rows[0].bwStats = makeStats(8.012345678901234, 0.0312, 16);
    b.bwStats = makeStats(8.012345678901234, 0.11, 4);

    Expected<BenchReport> back =
        parseBenchJson(renderBenchJson(b), "mem");
    ASSERT_TRUE(back.ok()) << back.status().toString();
    const BenchStats &r = back.value().rows[0].bwStats;
    ASSERT_TRUE(r.has);
    ASSERT_TRUE(r.ciValid);
    // fieldFull doubles round-trip bit-exactly.
    EXPECT_EQ(r.mean, b.rows[0].bwStats.mean);
    EXPECT_EQ(r.ci95, b.rows[0].bwStats.ci95);
    EXPECT_EQ(r.batches, 16u);
    EXPECT_EQ(r.batchSize, 8u);
    const BenchStats &s = back.value().bwStats;
    ASSERT_TRUE(s.has);
    EXPECT_EQ(s.mean, b.bwStats.mean);
}

TEST(RegressStatistical, TrueDriftRegresses)
{
    BenchReport base = makeBaseline();
    base.rows[0].bwStats = makeStats(8.0, 0.01, 16);
    BenchReport cur = base;
    // -0.3 on disjoint +-0.01 intervals, far beyond 0.5% of 8.0.
    cur.rows[0].bwStats = makeStats(7.7, 0.01, 16);
    cur.rows[0].bandwidth = 7.7;

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.statistical, 1u);
    EXPECT_EQ(rep.lowPower, 0u);
    const MetricDelta *d = bandwidthDelta(rep);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->statistical);
    EXPECT_EQ(d->verdict, MetricVerdict::Regress);
    EXPECT_LT(d->welchT, -2.0);  // strongly significant drop
    EXPECT_GT(d->welchDf, 1.0);
}

TEST(RegressStatistical, InCiJitterPasses)
{
    BenchReport base = makeBaseline();
    base.rows[0].bwStats = makeStats(8.0, 0.01, 16);
    BenchReport cur = base;
    // +0.015 overlaps the +-0.01 intervals (sum 0.02), and the CIs
    // are tight enough (0.02 < 0.5% of 8.0) that power is fine.
    cur.rows[0].bwStats = makeStats(8.015, 0.01, 16);

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(rep.pass());
    const MetricDelta *d = bandwidthDelta(rep);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->verdict, MetricVerdict::Pass);
    EXPECT_EQ(rep.lowPower, 0u);
}

TEST(RegressStatistical, WideIntervalsWarnLowPower)
{
    BenchReport base = makeBaseline();
    base.rows[0].bwStats = makeStats(8.0, 0.5, 16);
    BenchReport cur = base;
    // Overlapping but the +-0.5 intervals cannot see a 0.5% drift:
    // the verdict is "cannot tell", typed, and never a failure.
    cur.rows[0].bwStats = makeStats(7.8, 0.5, 16);
    cur.rows[0].bandwidth = 7.8;

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.lowPower, 1u);
    EXPECT_GE(rep.warnings, 1u);
    const MetricDelta *d = bandwidthDelta(rep);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->verdict, MetricVerdict::LowPower);

    // And the verdict renders with its own name.
    EXPECT_NE(renderRegressTable(rep, false).find("lowPower"),
              std::string::npos);
}

TEST(RegressStatistical, SignificantImprovementCounts)
{
    BenchReport base = makeBaseline();
    base.rows[0].bwStats = makeStats(8.0, 0.01, 16);
    BenchReport cur = base;
    cur.rows[0].bwStats = makeStats(8.3, 0.01, 16);
    cur.rows[0].bandwidth = 8.3;

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_TRUE(rep.pass());
    EXPECT_EQ(rep.improvements, 1u);
    const MetricDelta *d = bandwidthDelta(rep);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->improved);
}

TEST(RegressStatistical, CiLessBaselineKeepsLegacyThreshold)
{
    // Old baselines (BENCH_1.json vintage) carry no stats: the gate
    // must keep the raw-threshold path, so checked-in history stays
    // comparable without re-recording.
    BenchReport base = makeBaseline();
    BenchReport cur = base;
    cur.rows[0].bwStats = makeStats(8.0, 0.01, 16);  // current only
    cur.rows[0].bandwidth = 8.0 * 0.98;  // -2% on a +-0.5% gate

    RegressReport rep = compareBench(cur, base, RegressOptions{});
    EXPECT_FALSE(rep.pass());
    EXPECT_EQ(rep.statistical, 0u);
    const MetricDelta *d = bandwidthDelta(rep);
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->statistical);
    EXPECT_EQ(d->verdict, MetricVerdict::Regress);

    // insufficientData on either side (ciValid false) also falls
    // back, even when the structs are present.
    BenchReport base2 = makeBaseline();
    base2.rows[0].bwStats = makeStats(8.0, 0.0, 16);
    base2.rows[0].bwStats.ciValid = false;
    RegressReport rep2 = compareBench(cur, base2, RegressOptions{});
    EXPECT_EQ(rep2.statistical, 0u);
}

TEST(RegressStatistical, RecordStampsSamplingGeometry)
{
    BenchReport base = makeBaseline();
    base.rows[0].bwStats = makeStats(8.0, 0.01, 16);
    RegressReport rep = compareBench(base, base, RegressOptions{});
    const std::string rec = renderBenchRecord(base, rep, "base.json");

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(rec, &doc, &err)) << err;
    const JsonValue *from = doc.find("recordedFrom");
    ASSERT_NE(from, nullptr);
    EXPECT_EQ(from->find("intervalCycles")->asUint(), 1000u);
    EXPECT_EQ(from->find("windows")->asUint(), 128u);
    EXPECT_EQ(from->find("rows")->asUint(), 1u);
    EXPECT_EQ(from->find("ciRows")->asUint(), 1u);
    const JsonValue *cmp = doc.find("comparison");
    ASSERT_NE(cmp, nullptr);
    EXPECT_EQ(cmp->find("statistical")->asUint(), 1u);
}
