/**
 * @file
 * Tests for the full XBC frontend: conservation, mode behavior,
 * branch promotion / de-promotion dynamics, set search, the
 * complex-XB storage modes, and parameterized invariant sweeps.
 */

#include <gtest/gtest.h>

#include "core/xbc_frontend.hh"
#include "test_helpers.hh"
#include "workload/catalog.hh"
#include "workload/cfg.hh"
#include "workload/executor.hh"

namespace xbs
{
namespace
{

TEST(XbcFrontend, Conservation)
{
    Trace trace = makeCatalogTrace("li", 30000);
    FrontendParams fp;
    XbcParams xp;
    XbcFrontend fe(fp, xp);
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
    fe.dataArray().checkInvariants();
}

TEST(XbcFrontend, WarmLoopReachesDeliveryMode)
{
    Trace trace = makeCatalogTrace("compress", 50000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    EXPECT_LT(fe.metrics().missRate(), 0.05);
    EXPECT_GT(fe.metrics().bandwidth(), 4.0);
    EXPECT_GT(fe.buildExits.value(), 0u);
}

TEST(XbcFrontend, BandwidthBoundedByRenamer)
{
    Trace trace = makeCatalogTrace("go", 30000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    EXPECT_LE(fe.metrics().bandwidth(),
              (double)fp.renamerWidth + 1e-9);
}

TEST(XbcFrontend, NearlyRedundancyFree)
{
    Trace trace = makeCatalogTrace("word", 50000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    // "Nearly redundancy free": only transient promotion copies.
    EXPECT_LT(fe.dataArray().redundancy(), 1.6);
}

TEST(XbcFrontend, SmallerCacheMissesMore)
{
    Trace trace = makeCatalogTrace("excel", 60000);
    FrontendParams fp;
    XbcParams small, large;
    small.capacityUops = 4096;
    large.capacityUops = 65536;
    XbcFrontend fs(fp, small), fl(fp, large);
    fs.run(trace);
    fl.run(trace);
    EXPECT_GT(fs.metrics().missRate(), fl.metrics().missRate());
}

/**
 * A hand-built workload with one >99%-monotonic branch between two
 * hot XBs: promotion must fire and supply through the branch.
 */
std::shared_ptr<const Program>
makeMonotonicProgram()
{
    CfgProgram cfg("mono");
    int f = cfg.addFunction("main");
    auto &fn = cfg.function(f);

    // header: body, monotonic NT branch, body, latch loop.
    int header = fn.addBlock();
    fn.blocks[header].body.push_back({4, 2});
    fn.blocks[header].body.push_back({4, 2});
    CondBehavior mono;
    mono.kind = CondBehavior::Kind::Biased;
    mono.biasTaken = 0.001;  // essentially never taken
    mono.seed = 7;
    fn.blocks[header].term.kind = TermKind::CondBranch;
    fn.blocks[header].term.cond = mono;
    fn.blocks[header].term.length = 2;
    fn.blocks[header].term.numUops = 1;

    int mid = fn.addBlock();  // fall-through path (the hot one)
    fn.blocks[mid].body.push_back({4, 2});
    fn.blocks[mid].body.push_back({4, 1});
    CondBehavior loop;
    loop.kind = CondBehavior::Kind::Loop;
    loop.tripCount = 1u << 30;
    loop.tripJitter = 0.0;
    fn.blocks[mid].term.kind = TermKind::CondBranch;
    fn.blocks[mid].term.targetBlock = header;
    fn.blocks[mid].term.cond = loop;
    fn.blocks[mid].term.length = 2;
    fn.blocks[mid].term.numUops = 1;

    int cold = fn.addBlock();  // taken target of the monotonic branch
    fn.blocks[cold].body.push_back({4, 1});
    fn.blocks[cold].term.kind = TermKind::Jump;
    fn.blocks[cold].term.targetBlock = cold + 1;
    int exit_blk = fn.addBlock();
    fn.blocks[exit_blk].term.kind = TermKind::Return;

    cfg.function(f).blocks[header].term.targetBlock = cold;
    return cfg.link();
}

TEST(XbcPromotion, MonotonicBranchGetsPromoted)
{
    auto prog = makeMonotonicProgram();
    Trace trace = Executor(prog, 3).run(30000);

    FrontendParams fp;
    XbcParams xp;
    XbcFrontend fe(fp, xp);
    fe.run(trace);

    EXPECT_GE(fe.promotions.value(), 1u);
    EXPECT_GT(fe.promotedSupplied.value(), 100u);
    fe.dataArray().checkInvariants();

    // The promoted branch no longer consumes predictions: the
    // frontend makes strictly fewer conditional predictions than a
    // promotion-free configuration (that is the bandwidth win the
    // paper claims for a fixed prediction bandwidth).
    XbcParams off;
    off.promotionEnabled = false;
    XbcFrontend base(fp, off);
    base.run(trace);
    EXPECT_EQ(base.promotions.value(), 0u);
    EXPECT_LT(fe.metrics().condBranches.value(),
              base.metrics().condBranches.value());
}

TEST(XbcPromotion, WrongPathRedirectsWithoutBuild)
{
    auto prog = makeMonotonicProgram();
    Trace trace = Executor(prog, 3).run(60000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    // The 0.1% taken path occurs a few dozen times in 60K insts; at
    // least some must hit the promoted wrong-path redirect.
    EXPECT_GT(fe.promotedWrongPath.value(), 0u);
    fe.dataArray().checkInvariants();
}

/** A branch that turns monotonic, then flips: must de-promote. */
TEST(XbcPromotion, MisbehavingBranchDepromotes)
{
    CodeBuilder cb;
    int32_t a = cb.seq(2);
    int32_t br = cb.cond(kNoTarget, 1);   // patched below
    int32_t b = cb.seq(2);
    int32_t latch = cb.cond(0, 1);        // loop back to a
    int32_t tgt = cb.seq(1);              // br's taken target
    int32_t j = cb.jump(2);               // jump back to b
    cb.patchTarget(br, tgt);
    auto code = cb.finalize();

    std::vector<std::pair<int32_t, bool>> path;
    // Phase 1: br always not-taken (promotes).
    for (int i = 0; i < 400; ++i) {
        path.push_back({a, false});
        path.push_back({br, false});
        path.push_back({b, false});
        path.push_back({latch, true});
    }
    // Phase 2: br always taken (misbehaves; must de-promote).
    for (int i = 0; i < 400; ++i) {
        path.push_back({a, false});
        path.push_back({br, true});
        path.push_back({tgt, false});
        path.push_back({j, false});
        path.push_back({b, false});
        path.push_back({latch, true});
    }
    Trace trace = makeTestTrace(code, path);

    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    EXPECT_GE(fe.promotions.value(), 1u);
    EXPECT_GE(fe.depromotions.value(), 1u);
    fe.dataArray().checkInvariants();
}

TEST(XbcFrontend, SetSearchSavesBuilds)
{
    Trace trace = makeCatalogTrace("word", 60000);
    FrontendParams fp;
    XbcParams with, without;
    without.setSearchEnabled = false;
    XbcFrontend fw(fp, with), fo(fp, without);
    fw.run(trace);
    fo.run(trace);
    EXPECT_GT(fw.dataArray().setSearchHits.value(), 0u);
    // Set search turns rebuilds into one-cycle penalties.
    EXPECT_LE(fw.metrics().missRate(),
              fo.metrics().missRate() + 1e-9);
}

struct ModeParams
{
    XbcParams::ComplexMode mode;
    const char *name;
};

class ComplexModeTest : public testing::TestWithParam<ModeParams>
{
};

TEST_P(ComplexModeTest, ConservationAndInvariants)
{
    Trace trace = makeCatalogTrace("perl", 30000);
    FrontendParams fp;
    XbcParams xp;
    xp.complexMode = GetParam().mode;
    XbcFrontend fe(fp, xp);
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
    fe.dataArray().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ComplexModeTest,
    testing::Values(
        ModeParams{XbcParams::ComplexMode::Complex, "complex"},
        ModeParams{XbcParams::ComplexMode::PrefixSplit, "split"},
        ModeParams{XbcParams::ComplexMode::Duplicate, "dup"}),
    [](const testing::TestParamInfo<ModeParams> &info) {
        return info.param.name;
    });

struct GeometryParams
{
    unsigned banks;
    unsigned bankUops;
    unsigned ways;
    unsigned capacity;
    unsigned fetchXbs;
};

class GeometryTest : public testing::TestWithParam<GeometryParams>
{
};

TEST_P(GeometryTest, RunsCleanAcrossGeometries)
{
    const auto g = GetParam();
    Trace trace = makeCatalogTrace("go", 25000);
    FrontendParams fp;
    XbcParams xp;
    xp.numBanks = g.banks;
    xp.bankUops = g.bankUops;
    xp.ways = g.ways;
    xp.capacityUops = g.capacity;
    xp.xbQuotaUops = std::min(16u, g.banks * g.bankUops);
    xp.fetchXbsPerCycle = g.fetchXbs;
    XbcFrontend fe(fp, xp);
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
    EXPECT_LE(fe.metrics().bandwidth(),
              (double)fp.renamerWidth + 1e-9);
    fe.dataArray().checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeometryTest,
    testing::Values(GeometryParams{4, 4, 2, 32768, 2},
                    GeometryParams{4, 4, 1, 32768, 2},
                    GeometryParams{4, 4, 4, 32768, 2},
                    GeometryParams{2, 8, 2, 32768, 2},
                    GeometryParams{8, 2, 2, 32768, 2},
                    GeometryParams{4, 4, 2, 8192, 2},
                    GeometryParams{4, 4, 2, 65536, 2},
                    GeometryParams{4, 4, 2, 32768, 1},
                    GeometryParams{4, 4, 2, 32768, 3}));

TEST(XbcFrontend, SingleXbPerCycleLowersBandwidth)
{
    Trace trace = makeCatalogTrace("vortex", 40000);
    FrontendParams fp;
    XbcParams one, two;
    one.fetchXbsPerCycle = 1;
    two.fetchXbsPerCycle = 2;
    XbcFrontend f1(fp, one), f2(fp, two);
    f1.run(trace);
    f2.run(trace);
    EXPECT_LT(f1.metrics().bandwidth(), f2.metrics().bandwidth());
}

TEST(XbcFrontend, OutMuxPlansEveryDeliveryCycle)
{
    Trace trace = makeCatalogTrace("compress", 30000);
    FrontendParams fp;
    XbcFrontend fe(fp, XbcParams{});
    fe.run(trace);
    // Hot loops mean plenty of delivery cycles, each planned once.
    EXPECT_GT(fe.outMux().cycles.value(), 1000u);
    EXPECT_GE(fe.outMux().segments.value(),
              fe.outMux().cycles.value());
    // The mux never sees more than the 16-uop fetch width.
    EXPECT_LE(fe.outMux().occupancy.mean(), 16.0);
    EXPECT_GT(fe.outMux().occupancy.mean(), 4.0);
}

TEST(XbcFrontend, ContinuousInvariantStress)
{
    // Run with the invariant checker armed on every 32 completions:
    // any bookkeeping drift in the data array aborts loudly.
    Trace trace = makeCatalogTrace("netscape", 40000);
    FrontendParams fp;
    XbcParams xp;
    xp.capacityUops = 4096;  // small = heavy eviction traffic
    xp.checkInvariantsEveryN = 32;
    XbcFrontend fe(fp, xp);
    fe.run(trace);
    fe.dataArray().checkInvariants();
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
}

TEST(XbcFrontend, DeterministicRuns)
{
    Trace trace = makeCatalogTrace("halflife", 20000);
    FrontendParams fp;
    XbcFrontend a(fp, XbcParams{}), b(fp, XbcParams{});
    a.run(trace);
    b.run(trace);
    EXPECT_EQ(a.metrics().cycles.value(), b.metrics().cycles.value());
    EXPECT_EQ(a.metrics().deliveryUops.value(),
              b.metrics().deliveryUops.value());
    EXPECT_EQ(a.promotions.value(), b.promotions.value());
}

} // anonymous namespace
} // namespace xbs
