/**
 * @file
 * Tests for the fault-tolerant sweep engine: exit-code taxonomy,
 * journal round-trip and torn-tail tolerance, timeout classification
 * against a genuinely hung child, retry/backoff accounting, and
 * resume semantics (no completed job re-executed, no pending job
 * lost).
 *
 * Children are tiny /bin/sh scripts the tests write themselves, so
 * each failure mode (hang, crash, deterministic exit code) is exact
 * and fast.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <sys/stat.h>
#include <unistd.h>

#include "batch/job.hh"
#include "batch/journal.hh"
#include "batch/report.hh"
#include "batch/scheduler.hh"
#include "batch/subprocess.hh"
#include "common/fs.hh"

using namespace xbs;

namespace
{

/** Fresh scratch directory per test. */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/xbs_batch_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir;
}

/** Write an executable /bin/sh script. */
std::string
writeScript(const std::string &dir, const std::string &name,
            const std::string &body)
{
    const std::string path = dir + "/" + name;
    {
        std::ofstream os(path);
        os << "#!/bin/sh\n" << body;
    }
    ::chmod(path.c_str(), 0755);
    return path;
}

/** A 1xN matrix of jobs against the tc frontend. */
std::vector<JobSpec>
makeJobs(int n)
{
    std::vector<std::string> workloads;
    for (int i = 0; i < n; ++i) {
        std::string name = "w";
        name += std::to_string(i);
        workloads.push_back(std::move(name));
    }
    return buildJobMatrix(workloads, {"tc"}, {32768}, 1000);
}

SchedulerOptions
fastOptions(const std::string &xbsim)
{
    SchedulerOptions opts;
    opts.xbsimPath = xbsim;
    opts.workers = 2;
    opts.timeoutSec = 5.0;
    opts.maxRetries = 0;
    opts.backoffMs = 10;
    opts.graceSec = 0.2;
    opts.pollMs = 2;
    return opts;
}

const char *kOkJson =
    "echo '{\"bandwidth\": 2.5, \"missRate\": 0.125, "
    "\"overallIpc\": 2.0, \"cycles\": 100, \"totalUops\": 250}'\n";

} // anonymous namespace

// ---------------------------------------------------------------
// Exit-code taxonomy
// ---------------------------------------------------------------

TEST(JobClassify, ExitCodeTaxonomy)
{
    EXPECT_EQ(classifyOutcome(false, false, true, 0, 0),
              JobClass::Ok);
    EXPECT_EQ(classifyOutcome(false, false, true, 1, 0),
              JobClass::Usage);
    EXPECT_EQ(classifyOutcome(false, false, true, 2, 0),
              JobClass::Data);
    EXPECT_EQ(classifyOutcome(false, false, true, 3, 0),
              JobClass::Audit);
    EXPECT_EQ(classifyOutcome(false, false, true, 5, 0),
              JobClass::Interrupted);
    EXPECT_EQ(classifyOutcome(false, false, true, 127, 0),
              JobClass::Spawn);
    // Unknown exit codes and signal deaths are crashes.
    EXPECT_EQ(classifyOutcome(false, false, true, 42, 0),
              JobClass::Crash);
    EXPECT_EQ(classifyOutcome(false, false, false, -1, SIGSEGV),
              JobClass::Crash);
    // A watchdog kill is a timeout no matter what the child managed
    // to report on the way down.
    EXPECT_EQ(classifyOutcome(true, false, true, 0, 0),
              JobClass::Timeout);
    EXPECT_EQ(classifyOutcome(true, false, false, -1, SIGKILL),
              JobClass::Timeout);
    // A stall-detector kill is the more specific verdict: it wins
    // over both the exit status and a concurrent wall-clock timeout.
    EXPECT_EQ(classifyOutcome(false, true, false, -1, SIGKILL),
              JobClass::Stalled);
    EXPECT_EQ(classifyOutcome(true, true, true, 0, 0),
              JobClass::Stalled);
}

TEST(JobClassify, OnlyTransientsRetry)
{
    EXPECT_TRUE(jobClassRetryable(JobClass::Timeout));
    EXPECT_TRUE(jobClassRetryable(JobClass::Stalled));
    EXPECT_TRUE(jobClassRetryable(JobClass::Crash));
    EXPECT_FALSE(jobClassRetryable(JobClass::Ok));
    EXPECT_FALSE(jobClassRetryable(JobClass::Usage));
    EXPECT_FALSE(jobClassRetryable(JobClass::Data));
    EXPECT_FALSE(jobClassRetryable(JobClass::Audit));
    EXPECT_FALSE(jobClassRetryable(JobClass::Spawn));
    EXPECT_FALSE(jobClassRetryable(JobClass::Interrupted));
}

TEST(JobClassify, NamesRoundTrip)
{
    for (JobClass cls :
         {JobClass::Ok, JobClass::Usage, JobClass::Data,
          JobClass::Audit, JobClass::Interrupted, JobClass::Timeout,
          JobClass::Stalled, JobClass::Crash, JobClass::Spawn}) {
        Expected<JobClass> back = jobClassFromName(jobClassName(cls));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back.value(), cls);
    }
    EXPECT_FALSE(jobClassFromName("bogus").ok());
}

TEST(JobClassify, SanitizeNoteStripsControlBytes)
{
    // Control characters from a child's binary stderr must not reach
    // the journal (one JSON record per line) or the report table.
    EXPECT_EQ(sanitizeNote("plain note"), "plain note");
    EXPECT_EQ(sanitizeNote(std::string("a\x01" "b\x1f" "c\x7f" "d")),
              "a b c d");
    EXPECT_EQ(sanitizeNote("tab\tand\rreturn"), "tab and return");
    EXPECT_EQ(sanitizeNote(""), "");
    // UTF-8 continuation bytes (>= 0x80) pass through untouched.
    EXPECT_EQ(sanitizeNote("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JobClassify, SanitizeNoteBoundsLength)
{
    const std::string note = sanitizeNote(std::string(500, 'x'));
    EXPECT_EQ(note.size(), 160u + 3u);
    EXPECT_EQ(note.substr(note.size() - 3), "...");
    EXPECT_EQ(sanitizeNote(std::string(500, 'x'), 10), "xxxxxxxxxx...");
    // At or below the bound: returned verbatim, no ellipsis.
    EXPECT_EQ(sanitizeNote(std::string(160, 'y')),
              std::string(160, 'y'));
}

TEST(JobMatrix, DeterministicWorkloadOuterOrder)
{
    std::vector<JobSpec> jobs =
        buildJobMatrix({"a", "b"}, {"tc", "xbc"}, {100, 200}, 0);
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].id, 0);
    EXPECT_EQ(jobs[0].run.label(), "tc/a@100");
    EXPECT_EQ(jobs[1].run.label(), "tc/a@200");
    EXPECT_EQ(jobs[2].run.label(), "xbc/a@100");
    EXPECT_EQ(jobs[4].run.label(), "tc/b@100");
    EXPECT_EQ(jobs[7].id, 7);
    EXPECT_EQ(jobs[7].run.label(), "xbc/b@200");
}

TEST(JobMatrix, RunSpecArgvRoundTrip)
{
    RunSpec spec;
    spec.frontend = "bbtc";
    spec.workload = "perl";
    spec.capacity = 65536;
    spec.ways = 4;
    spec.insts = 123456;
    Expected<RunSpec> back = RunSpec::fromArgv(spec.toArgv());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value() == spec);
}

// ---------------------------------------------------------------
// Journal
// ---------------------------------------------------------------

TEST(Journal, ManifestRoundTrip)
{
    const std::string dir = makeTempDir();
    SweepManifest m;
    m.xbsim = "/opt/bin/xbsim";
    m.workers = 7;
    m.timeoutSec = 12.5;
    m.maxRetries = 3;
    m.backoffMs = 450;
    m.jobs = buildJobMatrix({"gcc", "go"}, {"tc"}, {4096}, 5000);
    ASSERT_TRUE(SweepJournal::writeManifest(dir, m).isOk());

    Expected<SweepManifest> back = SweepJournal::readManifest(dir);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().xbsim, m.xbsim);
    EXPECT_EQ(back.value().workers, 7u);
    EXPECT_EQ(back.value().timeoutSec, 12.5);
    EXPECT_EQ(back.value().maxRetries, 3u);
    EXPECT_EQ(back.value().backoffMs, 450u);
    ASSERT_EQ(back.value().jobs.size(), 2u);
    EXPECT_TRUE(back.value().jobs[1].run == m.jobs[1].run);
}

TEST(Journal, EventsRoundTrip)
{
    const std::string dir = makeTempDir();
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());

    JournalEvent launch;
    launch.kind = JournalEvent::Kind::Launch;
    launch.job = 3;
    launch.attempt = 2;
    ASSERT_TRUE(journal.append(launch).isOk());

    JournalEvent final_ev;
    final_ev.kind = JournalEvent::Kind::Final;
    final_ev.job = 3;
    final_ev.attempt = 2;
    final_ev.cls = JobClass::Ok;
    final_ev.exitCode = 0;
    final_ev.seconds = 1.5;
    final_ev.hasMetrics = true;
    final_ev.metrics.bandwidth = 3.25;
    final_ev.metrics.cycles = 77;
    final_ev.note = "fine";
    ASSERT_TRUE(journal.append(final_ev).isOk());

    Expected<std::vector<JournalEvent>> back =
        SweepJournal::replay(dir);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    ASSERT_EQ(back.value().size(), 2u);
    EXPECT_EQ(back.value()[0].kind, JournalEvent::Kind::Launch);
    EXPECT_EQ(back.value()[0].seq, 1u);
    EXPECT_EQ(back.value()[0].job, 3);
    const JournalEvent &f = back.value()[1];
    EXPECT_EQ(f.kind, JournalEvent::Kind::Final);
    EXPECT_EQ(f.seq, 2u);
    EXPECT_EQ(f.attempt, 2);
    EXPECT_EQ(f.cls, JobClass::Ok);
    EXPECT_TRUE(f.hasMetrics);
    EXPECT_DOUBLE_EQ(f.metrics.bandwidth, 3.25);
    EXPECT_EQ(f.metrics.cycles, 77u);
    EXPECT_EQ(f.note, "fine");
}

TEST(Journal, PerfAndBlockIoRoundTripBitIdentical)
{
    const std::string dir = makeTempDir();
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());

    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Final;
    ev.job = 0;
    ev.attempt = 1;
    ev.cls = JobClass::Ok;
    ev.seconds = 1.0;
    ev.hasUsage = true;
    ev.usage.maxRssKb = 12345;
    ev.usage.userSec = 0.5;
    ev.usage.sysSec = 0.25;
    ev.usage.inBlock = 4096;
    ev.usage.outBlock = 128;
    ev.hasPerf = true;
    // Multiplex-scaled counters are doubles; deliberately pick
    // values with non-terminating binary-fraction noise so only a
    // full-precision (%.17g) round trip can reproduce them.
    ev.perf.cycles = 123456789.1;
    ev.perf.instructions = 3.0000000000000004e8;
    ev.perf.cacheRefs = 5.5e6;
    ev.perf.cacheMisses = 98765.3;
    ev.perf.branches = 7.7e7;
    ev.perf.branchMisses = 1234.0000001;
    ASSERT_TRUE(journal.append(ev).isOk());

    Expected<std::vector<JournalEvent>> back =
        SweepJournal::replay(dir);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    ASSERT_EQ(back.value().size(), 1u);
    const JournalEvent &f = back.value()[0];
    ASSERT_TRUE(f.hasUsage);
    EXPECT_EQ(f.usage.inBlock, 4096u);
    EXPECT_EQ(f.usage.outBlock, 128u);
    ASSERT_TRUE(f.hasPerf);
    EXPECT_EQ(f.perf.cycles, ev.perf.cycles);
    EXPECT_EQ(f.perf.instructions, ev.perf.instructions);
    EXPECT_EQ(f.perf.cacheRefs, ev.perf.cacheRefs);
    EXPECT_EQ(f.perf.cacheMisses, ev.perf.cacheMisses);
    EXPECT_EQ(f.perf.branches, ev.perf.branches);
    EXPECT_EQ(f.perf.branchMisses, ev.perf.branchMisses);

    // Events without perf stay perf-less through replay.
    JournalEvent bare;
    bare.kind = JournalEvent::Kind::Launch;
    bare.job = 1;
    bare.attempt = 1;
    ASSERT_TRUE(journal.append(bare).isOk());
    back = SweepJournal::replay(dir);
    ASSERT_TRUE(back.ok());
    EXPECT_FALSE(back.value()[1].hasPerf);
}

TEST(Journal, TornTailLineIsTolerated)
{
    const std::string dir = makeTempDir();
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());
    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.job = 0;
    ev.attempt = 1;
    ASSERT_TRUE(journal.append(ev).isOk());

    // A crash mid-write can tear only the final line.
    std::ofstream os(SweepJournal::journalPath(dir),
                     std::ios::app);
    os << "{\"seq\":2,\"event\":\"res";
    os.close();

    Expected<std::vector<JournalEvent>> back =
        SweepJournal::replay(dir);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().size(), 1u);
}

TEST(Journal, CorruptionMidFileIsAnError)
{
    const std::string dir = makeTempDir();
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());
    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.job = 0;
    ev.attempt = 1;
    ASSERT_TRUE(journal.append(ev).isOk());

    {
        std::ofstream os(SweepJournal::journalPath(dir),
                         std::ios::app);
        os << "garbage not json\n";
    }
    ASSERT_TRUE(journal.append(ev).isOk());

    Expected<std::vector<JournalEvent>> back =
        SweepJournal::replay(dir);
    ASSERT_FALSE(back.ok());
    EXPECT_NE(back.status().toString().find("malformed journal"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Scheduler against real (scripted) children
// ---------------------------------------------------------------

TEST(Scheduler, HappyPathParsesMetrics)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(dir, "sim.sh", kOkJson);

    SweepScheduler sched(fastOptions(sim), makeJobs(3), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    EXPECT_EQ(sched.doneCount(), 3u);
    for (const JobRecord &rec : sched.records()) {
        EXPECT_EQ(rec.attempts, 1);
        EXPECT_EQ(rec.exitCode, 0);
        ASSERT_TRUE(rec.hasMetrics);
        EXPECT_DOUBLE_EQ(rec.metrics.bandwidth, 2.5);
        EXPECT_EQ(rec.metrics.totalUops, 250u);
    }
}

TEST(Scheduler, HungChildClassifiedTimeout)
{
    const std::string dir = makeTempDir();
    // Ignore SIGTERM so the watchdog must escalate to SIGKILL. The
    // hang is a busy loop in the shell itself: a foreground sleep
    // would die on the group-wide TERM and let the script exit 0.
    const std::string sim = writeScript(
        dir, "hang.sh", "trap '' TERM\nwhile :; do :; done\n");

    SchedulerOptions opts = fastOptions(sim);
    opts.timeoutSec = 0.3;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());  // completed, not interrupted
    EXPECT_FALSE(sched.allOk());
    ASSERT_EQ(sched.records().size(), 1u);
    const JobRecord &rec = sched.records()[0];
    EXPECT_TRUE(rec.done);
    EXPECT_EQ(rec.cls, JobClass::Timeout);
    EXPECT_EQ(rec.termSignal, SIGKILL);
    EXPECT_GE(rec.seconds, 0.3);
    EXPECT_LT(rec.seconds, 5.0);  // never waited for the sleep
}

namespace
{

/** fastOptions plus an armed stall detector writing into dir/hb. */
SchedulerOptions
heartbeatOptions(const std::string &dir, const std::string &xbsim,
                 double period_sec, unsigned periods)
{
    SchedulerOptions opts = fastOptions(xbsim);
    opts.heartbeatDir = dir + "/hb";
    opts.heartbeatSec = period_sec;
    opts.stallPeriods = periods;
    EXPECT_TRUE(ensureDir(opts.heartbeatDir).isOk());
    return opts;
}

} // anonymous namespace

TEST(Scheduler, StalledChildKilledAndClassified)
{
    const std::string dir = makeTempDir();
    // The child heartbeats once (arming the detector) and then stops
    // making progress while staying alive and ignoring SIGTERM. The
    // wall-clock timeout is far away: only the stall detector can
    // end this within the test's deadline.
    const std::string sim = writeScript(
        dir, "stall.sh",
        "printf '{\"seq\":1,\"phase\":\"sim\",\"uops\":100}' > " +
            dir + "/hb/job-0.json\n"
            "trap '' TERM\nwhile :; do :; done\n");

    SchedulerOptions opts = heartbeatOptions(dir, sim, 0.05, 2);
    opts.timeoutSec = 30.0;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_FALSE(sched.allOk());
    const JobRecord &rec = sched.records()[0];
    EXPECT_TRUE(rec.done);
    EXPECT_EQ(rec.cls, JobClass::Stalled);
    EXPECT_EQ(rec.termSignal, SIGKILL);
    EXPECT_EQ(rec.note, "no uop progress for 2 heartbeat periods");
    EXPECT_LT(rec.seconds, 5.0);  // stalled, not wall-clock timeout
}

TEST(Scheduler, StalledJobRetriedThenSucceeds)
{
    const std::string dir = makeTempDir();
    // First attempt wedges after one heartbeat; the marker makes the
    // retry exit cleanly. Stalls must be treated as transient.
    const std::string sim = writeScript(
        dir, "flaky_stall.sh",
        "if [ -e " + dir + "/marker ]; then\n" +
            std::string(kOkJson) +
            "else\n"
            "  touch " + dir + "/marker\n"
            "  printf '{\"seq\":1,\"phase\":\"sim\",\"uops\":5}' > " +
            dir + "/hb/job-0.json\n"
            "  trap '' TERM\n"
            "  while :; do :; done\n"
            "fi\n");

    SchedulerOptions opts = heartbeatOptions(dir, sim, 0.05, 2);
    opts.timeoutSec = 30.0;
    opts.maxRetries = 1;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Ok);
    EXPECT_EQ(rec.attempts, 2);
    EXPECT_EQ(sched.totalRetries(), 1u);
    EXPECT_TRUE(rec.hasMetrics);
}

TEST(Scheduler, ProgressingChildOutlivesWallClockTimeout)
{
    const std::string dir = makeTempDir();
    // The child needs ~0.6s but the wall-clock timeout is 0.25s.
    // Because it heartbeats with growing uop counts, the armed stall
    // detector owns the verdict and the job must NOT be killed.
    const std::string sim = writeScript(
        dir, "slow.sh",
        "i=1\n"
        "while [ $i -le 12 ]; do\n"
        "  printf '{\"seq\":%d,\"phase\":\"sim\",\"uops\":%d}' "
        "$i $((i*100)) > " + dir + "/hb/job-0.json\n"
        "  i=$((i+1))\n"
        "  sleep 0.05\n"
        "done\n" + kOkJson);

    SchedulerOptions opts = heartbeatOptions(dir, sim, 0.05, 4);
    opts.timeoutSec = 0.25;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Ok);
    EXPECT_EQ(rec.attempts, 1);
    EXPECT_GE(rec.seconds, 0.25);  // genuinely outlived the deadline
}

TEST(Scheduler, SilentChildStillFallsBackToWallClock)
{
    const std::string dir = makeTempDir();
    // Heartbeats are enabled but this child never writes one (hung
    // before its first beat). The wall-clock watchdog must still
    // apply, and the verdict stays Timeout — not Stalled.
    const std::string sim = writeScript(
        dir, "mute.sh", "trap '' TERM\nwhile :; do :; done\n");

    SchedulerOptions opts = heartbeatOptions(dir, sim, 0.05, 2);
    opts.timeoutSec = 0.3;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Timeout);
    EXPECT_GE(rec.seconds, 0.3);
    EXPECT_LT(rec.seconds, 5.0);
}

TEST(Scheduler, BinaryStderrSanitizedInNote)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(
        dir, "binerr.sh",
        "printf 'bad\\001\\002trace\\n' >&2\nexit 2\n");

    SweepScheduler sched(fastOptions(sim), makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Data);
    EXPECT_EQ(rec.note, "bad  trace");
    for (char c : rec.note)
        EXPECT_FALSE((unsigned char)c < 0x20 || c == 0x7f);
}

TEST(Scheduler, DeterministicFailureNotRetried)
{
    const std::string dir = makeTempDir();
    const std::string sim = writeScript(
        dir, "data.sh", "echo 'corrupt trace' >&2\nexit 2\n");

    SchedulerOptions opts = fastOptions(sim);
    opts.maxRetries = 3;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Data);
    EXPECT_EQ(rec.attempts, 1);  // retries are for transients only
    EXPECT_EQ(sched.totalRetries(), 0u);
    EXPECT_EQ(rec.note, "corrupt trace");
}

TEST(Scheduler, TransientCrashRetriedThenSucceeds)
{
    const std::string dir = makeTempDir();
    // First attempt crashes; the marker file makes the retry pass.
    const std::string sim = writeScript(
        dir, "flaky.sh",
        "if [ -e " + dir + "/marker ]; then\n" +
            std::string(kOkJson) +
            "else\n"
            "  touch " + dir + "/marker\n"
            "  kill -SEGV $$\n"
            "fi\n");

    SchedulerOptions opts = fastOptions(sim);
    opts.maxRetries = 1;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Ok);
    EXPECT_EQ(rec.attempts, 2);
    EXPECT_EQ(sched.totalRetries(), 1u);
    EXPECT_TRUE(rec.hasMetrics);
}

TEST(Scheduler, RetriesAreBounded)
{
    const std::string dir = makeTempDir();
    const std::string sim =
        writeScript(dir, "crash.sh", "kill -SEGV $$\n");

    SchedulerOptions opts = fastOptions(sim);
    opts.maxRetries = 2;
    SweepScheduler sched(opts, makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    const JobRecord &rec = sched.records()[0];
    EXPECT_EQ(rec.cls, JobClass::Crash);
    EXPECT_EQ(rec.attempts, 3);  // 1 + maxRetries
    EXPECT_EQ(rec.termSignal, SIGSEGV);
    EXPECT_EQ(sched.totalRetries(), 2u);
}

TEST(Scheduler, SpawnFailureIsFinal)
{
    SweepScheduler sched(fastOptions("/no/such/binary"), makeJobs(1),
                         nullptr);
    EXPECT_TRUE(sched.run());
    const JobRecord &rec = sched.records()[0];
    EXPECT_TRUE(rec.done);
    EXPECT_EQ(rec.cls, JobClass::Spawn);
    EXPECT_EQ(rec.exitCode, 127);
}

TEST(Scheduler, FailuresDegradeButNeverAbortTheSweep)
{
    const std::string dir = makeTempDir();
    // Job w1 fails deterministically, the others pass.
    const std::string sim = writeScript(
        dir, "mixed.sh",
        "case \"$*\" in *w1*) exit 3 ;; esac\n" +
            std::string(kOkJson));

    SweepScheduler sched(fastOptions(sim), makeJobs(4), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_FALSE(sched.allOk());
    EXPECT_EQ(sched.doneCount(), 4u);  // graceful degradation
    int failed = 0;
    for (const JobRecord &rec : sched.records()) {
        if (rec.cls == JobClass::Audit)
            ++failed;
        else
            EXPECT_EQ(rec.cls, JobClass::Ok);
    }
    EXPECT_EQ(failed, 1);
}

// ---------------------------------------------------------------
// Resume
// ---------------------------------------------------------------

TEST(Resume, CompletedJobsNotReRunAndNoneLost)
{
    const std::string dir = makeTempDir();
    // Every execution appends its workload name to runs.log.
    const std::string sim = writeScript(
        dir, "count.sh",
        "for a in \"$@\"; do case \"$a\" in --workload=*) "
        "echo \"${a#--workload=}\" >> " + dir + "/runs.log ;; "
        "esac; done\n" + std::string(kOkJson));

    std::vector<JobSpec> jobs = makeJobs(3);

    // A journal as a SIGKILLed supervisor would leave it: job 0
    // finished, job 1 was launched but never reported, job 2 was
    // never started.
    SweepJournal journal;
    ASSERT_TRUE(journal.open(dir).isOk());
    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.job = 0;
    ev.attempt = 1;
    ASSERT_TRUE(journal.append(ev).isOk());
    JournalEvent fin;
    fin.kind = JournalEvent::Kind::Final;
    fin.job = 0;
    fin.attempt = 1;
    fin.cls = JobClass::Ok;
    fin.exitCode = 0;
    fin.seconds = 0.5;
    fin.hasMetrics = true;
    fin.metrics.bandwidth = 9.0;
    ASSERT_TRUE(journal.append(fin).isOk());
    ev.job = 1;
    ASSERT_TRUE(journal.append(ev).isOk());

    Expected<std::vector<JournalEvent>> replayed =
        SweepJournal::replay(dir);
    ASSERT_TRUE(replayed.ok());

    SweepScheduler sched(fastOptions(sim), jobs, &journal);
    journal.seedSeq(sched.restore(replayed.value()));
    EXPECT_EQ(sched.doneCount(), 1u);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    EXPECT_EQ(sched.doneCount(), 3u);

    // Job 0's result was restored, not recomputed.
    EXPECT_TRUE(sched.records()[0].replayed);
    EXPECT_DOUBLE_EQ(sched.records()[0].metrics.bandwidth, 9.0);
    EXPECT_FALSE(sched.records()[1].replayed);

    // runs.log: exactly w1 and w2, never w0 — nothing twice,
    // nothing lost.
    Expected<std::string> runs =
        readFileToString(dir + "/runs.log");
    ASSERT_TRUE(runs.ok());
    EXPECT_EQ(runs.value().find("w0"), std::string::npos);
    EXPECT_NE(runs.value().find("w1"), std::string::npos);
    EXPECT_NE(runs.value().find("w2"), std::string::npos);
    EXPECT_EQ(runs.value().size(), 6u);  // "w1\nw2\n" in some order

    // The journal keeps a single, coherent history across both
    // supervisor generations.
    Expected<std::vector<JournalEvent>> full =
        SweepJournal::replay(dir);
    ASSERT_TRUE(full.ok());
    int finals = 0;
    for (const JournalEvent &e : full.value())
        finals += e.kind == JournalEvent::Kind::Final;
    EXPECT_EQ(finals, 3);
    EXPECT_GT(full.value().back().seq, replayed.value().back().seq);
}

TEST(Resume, InterruptedAttemptIsFree)
{
    // A drain-interrupted result must not consume a retry budget:
    // the job restores with zero attempts and full retries ahead.
    std::vector<JobSpec> jobs = makeJobs(1);
    std::vector<JournalEvent> events;
    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.seq = 1;
    ev.job = 0;
    ev.attempt = 1;
    events.push_back(ev);
    ev.kind = JournalEvent::Kind::Result;
    ev.seq = 2;
    ev.cls = JobClass::Interrupted;
    events.push_back(ev);

    SweepScheduler sched(fastOptions("/bin/true"), jobs, nullptr);
    EXPECT_EQ(sched.restore(events), 2u);
    EXPECT_EQ(sched.doneCount(), 0u);
    EXPECT_EQ(sched.records()[0].attempts, 0);
}

TEST(Scheduler, ChildPerfCountersReachRecordAndReport)
{
    const std::string dir = makeTempDir();
    // A --perf child: metrics doc carries the host counter object.
    const std::string sim = writeScript(
        dir, "perf.sh",
        "echo '{\"bandwidth\": 2.5, \"missRate\": 0.125, "
        "\"overallIpc\": 2.0, \"cycles\": 100, \"totalUops\": 250, "
        "\"perf\": {\"available\": true, "
        "\"events\": [\"cycles\", \"instructions\"], "
        "\"total\": {\"cycles\": 5000000.5, "
        "\"instructions\": 12500000.25, \"cacheRefs\": 40000, "
        "\"cacheMisses\": 1000, \"branches\": 300000, "
        "\"branchMisses\": 6000}}}'\n");

    SweepScheduler sched(fastOptions(sim), makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    ASSERT_EQ(sched.records().size(), 1u);
    const JobRecord &rec = sched.records()[0];
    ASSERT_TRUE(rec.hasPerf);
    EXPECT_DOUBLE_EQ(rec.perf.cycles, 5000000.5);
    EXPECT_DOUBLE_EQ(rec.perf.instructions, 12500000.25);
    EXPECT_DOUBLE_EQ(rec.perf.ipc(), 12500000.25 / 5000000.5);
    EXPECT_DOUBLE_EQ(rec.perf.branchMissRate(), 0.02);

    // The counters surface in report.json with the derived rates.
    SweepSummary s = summarizeSweep(sched.records(), false, 0, 1.0);
    const std::string json = renderSweepReport(sched.records(), s);
    EXPECT_NE(json.find("\"perf\""), std::string::npos);
    EXPECT_NE(json.find("\"cacheMpki\""), std::string::npos);
    EXPECT_NE(json.find("\"branchMissRate\""), std::string::npos);
}

TEST(Scheduler, PerfUnavailableChildStaysPerfLess)
{
    const std::string dir = makeTempDir();
    // A --perf child on a counter-less host: typed unavailability,
    // paper metrics untouched, and no perf on the record.
    const std::string sim = writeScript(
        dir, "noperf.sh",
        "echo '{\"bandwidth\": 2.5, \"missRate\": 0.125, "
        "\"overallIpc\": 2.0, \"cycles\": 100, \"totalUops\": 250, "
        "\"perf\": {\"available\": false, "
        "\"perfUnavailable\": \"denied: perf_event_open\"}}'\n");

    SweepScheduler sched(fastOptions(sim), makeJobs(1), nullptr);
    EXPECT_TRUE(sched.run());
    EXPECT_TRUE(sched.allOk());
    const JobRecord &rec = sched.records()[0];
    EXPECT_FALSE(rec.hasPerf);
    ASSERT_TRUE(rec.hasMetrics);
    EXPECT_DOUBLE_EQ(rec.metrics.bandwidth, 2.5);
}

TEST(Resume, PerfSurvivesJournalReplay)
{
    std::vector<JobSpec> jobs = makeJobs(1);
    std::vector<JournalEvent> events;
    JournalEvent ev;
    ev.kind = JournalEvent::Kind::Launch;
    ev.seq = 1;
    ev.job = 0;
    ev.attempt = 1;
    events.push_back(ev);
    ev.kind = JournalEvent::Kind::Final;
    ev.seq = 2;
    ev.cls = JobClass::Ok;
    ev.hasMetrics = true;
    ev.metrics.bandwidth = 4.0;
    ev.hasUsage = true;
    ev.usage.inBlock = 2048;
    ev.hasPerf = true;
    ev.perf.cycles = 123456789.1;
    ev.perf.instructions = 2.5e8;
    events.push_back(ev);

    SweepScheduler sched(fastOptions("/bin/true"), jobs, nullptr);
    EXPECT_EQ(sched.restore(events), 2u);
    EXPECT_EQ(sched.doneCount(), 1u);
    const JobRecord &rec = sched.records()[0];
    EXPECT_TRUE(rec.replayed);
    ASSERT_TRUE(rec.hasPerf);
    EXPECT_DOUBLE_EQ(rec.perf.cycles, 123456789.1);
    EXPECT_DOUBLE_EQ(rec.perf.instructions, 2.5e8);
    EXPECT_EQ(rec.usage.inBlock, 2048u);
}

// ---------------------------------------------------------------
// Report
// ---------------------------------------------------------------

TEST(Report, SummaryCountsClasses)
{
    std::vector<JobSpec> jobs = makeJobs(4);
    std::vector<JobRecord> records;
    for (JobSpec &spec : jobs) {
        JobRecord rec;
        rec.spec = spec;
        records.push_back(rec);
    }
    records[0].done = true;
    records[0].cls = JobClass::Ok;
    records[1].done = true;
    records[1].cls = JobClass::Timeout;
    records[2].done = true;
    records[2].cls = JobClass::Timeout;
    // records[3] never ran (interrupted sweep)

    SweepSummary s = summarizeSweep(records, /*interrupted=*/true,
                                    /*retries=*/5, /*wall=*/1.25);
    EXPECT_EQ(s.total, 4u);
    EXPECT_EQ(s.ok, 1u);
    EXPECT_EQ(s.failed, 2u);
    EXPECT_EQ(s.notRun, 1u);
    EXPECT_EQ(s.retries, 5u);
    EXPECT_TRUE(s.interrupted);
    ASSERT_EQ(s.classCounts.size(), 2u);  // ok, timeout

    const std::string json = renderSweepReport(records, s);
    EXPECT_NE(json.find("\"interrupted\": true"), std::string::npos);
    EXPECT_NE(json.find("\"timeout\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"notRun\": 1"), std::string::npos);
}

TEST(Report, WrittenAtomicallyToDir)
{
    const std::string dir = makeTempDir();
    std::vector<JobRecord> records;
    SweepSummary s = summarizeSweep(records, false, 0, 0.0);
    ASSERT_TRUE(writeSweepReport(dir, records, s).isOk());
    Expected<std::string> text =
        readFileToString(dir + "/report.json");
    ASSERT_TRUE(text.ok());
    EXPECT_NE(text.value().find("\"total\": 0"), std::string::npos);
}

// ---------------------------------------------------------------
// Subprocess primitives
// ---------------------------------------------------------------

TEST(Subprocess, CapturesBothStreamsAndExitCode)
{
    Expected<Child> child =
        spawnChild({"/bin/sh", "-c", "echo out; echo err >&2; exit 7"});
    ASSERT_TRUE(child.ok()) << child.status().toString();
    Child c = child.take();
    int raw = 0;
    while (!reapChild(c, &raw))
        pumpChild(c);
    ASSERT_TRUE(WIFEXITED(raw));
    EXPECT_EQ(WEXITSTATUS(raw), 7);
    EXPECT_EQ(c.out, "out\n");
    EXPECT_EQ(c.err, "err\n");
}

TEST(Subprocess, ExecFailureExits127)
{
    Expected<Child> child = spawnChild({"/no/such/binary"});
    ASSERT_TRUE(child.ok());
    Child c = child.take();
    int raw = 0;
    while (!reapChild(c, &raw))
        pumpChild(c);
    ASSERT_TRUE(WIFEXITED(raw));
    EXPECT_EQ(WEXITSTATUS(raw), 127);
}

TEST(Subprocess, SignalKillsWholeProcessGroup)
{
    // The script spawns a grandchild; killing the group takes both.
    Expected<Child> child = spawnChild(
        {"/bin/sh", "-c", "sleep 30 & wait"});
    ASSERT_TRUE(child.ok());
    Child c = child.take();
    signalChild(c, SIGKILL);
    int raw = 0;
    while (!reapChild(c, &raw))
        pumpChild(c);
    ASSERT_TRUE(WIFSIGNALED(raw));
    EXPECT_EQ(WTERMSIG(raw), SIGKILL);
}
