#!/usr/bin/env python3
"""Generate the corrupt-checkpoint corpus (*.xbckpt files).

Re-run after changing the container format in src/ckpt/checkpoint.cc
(layout documented in checkpoint.hh):

    File    := Header Section* Trailer
    Header  := magic[8]="XBCKPT1\\n"  u32 formatVersion
    Section := u16 nameLen  name  u64 payloadLen  payload
               u32 crc32(payload)
    Trailer := u16 0 (sentinel)  sha256(bytes through sentinel)

Every file here must be rejected by parseCheckpoint with a typed
Corrupt status; test_ckpt.cc asserts exactly that. CRC32 is the
reflected 0xEDB88320 polynomial, i.e. zlib.crc32.
"""

import hashlib
import pathlib
import struct
import zlib

MAGIC = b"XBCKPT1\n"
VERSION = 1


def section(name: bytes, payload: bytes) -> bytes:
    return (
        struct.pack("<H", len(name))
        + name
        + struct.pack("<Q", len(payload))
        + payload
        + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
    )


def container(version: int = VERSION, magic: bytes = MAGIC) -> bytes:
    body = magic + struct.pack("<I", version)
    body += section(b"meta", b"not-a-real-meta-payload")
    body += section(b"stats", bytes(range(48)))
    body += struct.pack("<H", 0)
    return body + hashlib.sha256(body).digest()


def main() -> None:
    out = pathlib.Path(__file__).resolve().parent
    good = container()

    # Pristine container: must PARSE cleanly (proves this generator
    # and the C++ reader agree on CRC, hash, and layout — which is
    # what makes the corrupted variants meaningful). Restore still
    # rejects it later, at meta decoding.
    (out / "ckpt_valid_container.xbckpt").write_bytes(good)

    # Cut mid-magic: too short to even hold the header.
    (out / "ckpt_trunc_header.xbckpt").write_bytes(good[:6])

    # Wrong magic / unsupported version (otherwise intact).
    (out / "ckpt_bad_magic.xbckpt").write_bytes(
        container(magic=b"XBCKPT9\n"))
    (out / "ckpt_bad_version.xbckpt").write_bytes(
        container(version=99))

    # Cut inside the first section's payload.
    hdr = MAGIC + struct.pack("<I", VERSION)
    sec = section(b"meta", b"not-a-real-meta-payload")
    (out / "ckpt_trunc_section.xbckpt").write_bytes(
        hdr + sec[: len(sec) - 10])

    # Flip one bit of a stored section CRC.
    bad_crc = bytearray(good)
    crc_off = len(hdr) + len(sec) - 4
    bad_crc[crc_off] ^= 0x01
    (out / "ckpt_bad_crc.xbckpt").write_bytes(bytes(bad_crc))

    # Flip one bit inside the stored guard hash itself.
    bad_guard = bytearray(good)
    bad_guard[-1] ^= 0x80
    (out / "ckpt_bad_guard.xbckpt").write_bytes(bytes(bad_guard))


if __name__ == "__main__":
    main()
