/**
 * @file
 * Tests for the verification layer (src/verify): the invariant
 * auditor + delivery oracle must pass cleanly on every unmodified
 * frontend, catch each planted structural bug (the oracle of the
 * oracle), and report graceful degradation — never stream corruption
 * — under every fault-injection kind.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/xbc_frontend.hh"
#include "sim/config.hh"
#include "test_helpers.hh"
#include "verify/auditor.hh"
#include "verify/inject.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

constexpr uint64_t kInsts = 60000;

Trace
smallTrace(const char *workload = "gcc")
{
    return makeCatalogTrace(workload, kInsts);
}

std::string
reportOf(const InvariantAuditor &a)
{
    std::ostringstream os;
    a.report(os);
    return os.str();
}

// ---------------------------------------------------------------
// Clean runs: the auditor must find nothing on the unmodified
// simulator, whichever frontend delivers the stream.

class CleanAudit : public testing::TestWithParam<FrontendKind>
{
};

TEST_P(CleanAudit, NoViolationsOnUnmodifiedFrontend)
{
    SimConfig config;
    config.kind = GetParam();
    auto fe = makeFrontend(config);
    Trace trace = smallTrace();

    AuditorOptions opts;
    opts.interval = 20000;
    InvariantAuditor auditor(opts);
    auditor.attach(*fe, trace);
    fe->run(trace);
    auditor.finishRun(*fe);

    EXPECT_TRUE(auditor.ok()) << reportOf(auditor);
    EXPECT_EQ(auditor.violations().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFrontends, CleanAudit,
    testing::Values(FrontendKind::Ic, FrontendKind::Dc,
                    FrontendKind::Tc, FrontendKind::Bbtc,
                    FrontendKind::Xbc),
    [](const testing::TestParamInfo<FrontendKind> &info) {
        return frontendKindName(info.param);
    });

// ---------------------------------------------------------------
// The oracle of the oracle: each planted structural bug must be
// caught by a walk that was clean immediately before the tampering.

class PlantedBug : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        SimConfig config;
        config.kind = FrontendKind::Xbc;
        fe_ = std::make_unique<XbcFrontend>(config.frontend,
                                            config.xbc);
        trace_ = std::make_unique<Trace>(smallTrace());
        auditor_.attach(*fe_, *trace_);
        fe_->run(*trace_);
        auditor_.auditNow(*fe_);
        ASSERT_TRUE(auditor_.ok()) << reportOf(auditor_);
    }

    void
    expectCaught(const std::string &substr)
    {
        auditor_.auditNow(*fe_);
        EXPECT_FALSE(auditor_.ok());
        EXPECT_GT(auditor_.countOf(AuditViolation::Kind::Structural),
                  0u);
        EXPECT_NE(reportOf(auditor_).find(substr), std::string::npos)
            << reportOf(auditor_);
    }

    std::unique_ptr<XbcFrontend> fe_;
    std::unique_ptr<Trace> trace_;
    InvariantAuditor auditor_;
};

TEST_F(PlantedBug, DuplicateVariantCaught)
{
    ASSERT_TRUE(fe_->mutableDataArray().tamperDuplicateVariant());
    expectCaught("duplicate variant image");
}

TEST_F(PlantedBug, OutOfOrderBankLinesCaught)
{
    ASSERT_TRUE(fe_->mutableDataArray().tamperSwapVariantLines());
    expectCaught("reverse-order banking broken");
}

TEST_F(PlantedBug, StaleHeadLruCaught)
{
    ASSERT_TRUE(fe_->mutableDataArray().tamperStaleHeadLru());
    expectCaught("head-first aging broken");
}

// ---------------------------------------------------------------
// Fault injection: under every injector the delivered stream must
// stay correct (zero oracle violations) and the run must terminate
// within the auditor's bounded-slowdown watchdog.

struct InjectCase
{
    const char *spec;
    uint64_t seed;
};

class Injection : public testing::TestWithParam<InjectCase>
{
};

TEST_P(Injection, StreamSurvivesCorruption)
{
    const InjectCase &c = GetParam();
    auto plan = parseInjectSpec(c.spec);
    ASSERT_TRUE(plan.ok()) << plan.status().toString();
    FaultInjector injector(plan.take(), c.seed);

    SimConfig config;
    config.kind = FrontendKind::Xbc;
    auto fe = makeFrontend(config);

    Trace base = smallTrace();
    Trace trace = injector.plan().hasTraceActions()
                      ? injector.prepareTrace(base)
                      : std::move(base);

    AuditorOptions opts;
    opts.interval = 20000;
    InvariantAuditor auditor(opts);
    auditor.attach(*fe, trace);
    fe->attachCycleObserver(&injector);
    fe->run(trace);
    auditor.finishRun(*fe);

    EXPECT_GT(injector.injections(), 0u) << injector.summary();
    // Graceful degradation: structural/accounting damage is the
    // injection's doing, but the delivered uop stream must match the
    // trace exactly.
    EXPECT_EQ(auditor.countOf(AuditViolation::Kind::Oracle), 0u)
        << reportOf(auditor);
    // Bounded slowdown: the watchdog reports through the auditor.
    EXPECT_EQ(fe->metrics().cycles.value() <
                  opts.maxCyclesPerRecord * trace.numRecords() + 10000,
              true);
}

INSTANTIATE_TEST_SUITE_P(
    KindsBySeeds, Injection,
    testing::Values(InjectCase{"xbtb-flip@997", 1},
                    InjectCase{"xbtb-flip@997", 2},
                    InjectCase{"xfu-drop@1499", 1},
                    InjectCase{"xfu-drop@1499", 2},
                    InjectCase{"line-kill@1999", 1},
                    InjectCase{"line-kill@1999", 2},
                    InjectCase{"slot-corrupt@2503", 1},
                    InjectCase{"slot-corrupt@2503", 2},
                    InjectCase{"trace-flip@32", 1},
                    InjectCase{"trace-flip@32", 2},
                    InjectCase{"trace-trunc", 1},
                    InjectCase{"trace-trunc", 2},
                    InjectCase{"xbtb-flip@997,line-kill@1999,"
                               "slot-corrupt@2503",
                               7}),
    [](const testing::TestParamInfo<InjectCase> &info) {
        std::string n = info.param.spec;
        for (char &ch : n)
            if (ch == '-' || ch == '@' || ch == ',')
                ch = '_';
        return n + "_s" + std::to_string(info.param.seed);
    });

// Slot corruption must surface: the corrupted content is either
// never delivered (pointer paths reject it) or the oracle flags it.
// Either way the auditor's structural walk sees the content diverge
// from the static code only via the residency recompute — which the
// injector keeps consistent — so this asserts the injector applied.
TEST(Injection, SlotCorruptReportsApplication)
{
    auto plan = parseInjectSpec("slot-corrupt@503");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(plan.take(), 3);
    SimConfig config;
    config.kind = FrontendKind::Xbc;
    auto fe = makeFrontend(config);
    Trace trace = smallTrace();
    fe->attachCycleObserver(&injector);
    fe->run(trace);
    EXPECT_GT(injector.injections(), 0u);
    EXPECT_NE(injector.summary().find("slot-corrupt"),
              std::string::npos);
}

// Cycle-domain injectors are XBC-specific and must be harmless
// no-ops on the other frontends.
TEST(Injection, NoOpOnNonXbcFrontends)
{
    auto plan = parseInjectSpec("xbtb-flip@503,line-kill@997");
    ASSERT_TRUE(plan.ok());
    FaultInjector injector(plan.take(), 1);
    SimConfig config;
    config.kind = FrontendKind::Tc;
    auto fe = makeFrontend(config);
    Trace trace = smallTrace();
    InvariantAuditor auditor;
    auditor.attach(*fe, trace);
    fe->attachCycleObserver(&injector);
    fe->run(trace);
    auditor.finishRun(*fe);
    EXPECT_EQ(injector.injections(), 0u);
    EXPECT_TRUE(auditor.ok()) << reportOf(auditor);
}

// ---------------------------------------------------------------
// Spec parsing.

TEST(InjectSpec, ParsesKindsAndPeriods)
{
    auto plan = parseInjectSpec("xbtb-flip,line-kill@123,trace-trunc");
    ASSERT_TRUE(plan.ok()) << plan.status().toString();
    const InjectPlan p = plan.take();
    ASSERT_EQ(p.actions.size(), 3u);
    EXPECT_EQ(p.actions[0].kind, InjectKind::XbtbFlip);
    EXPECT_EQ(p.actions[0].period, 10000u);  // cycle-domain default
    EXPECT_EQ(p.actions[1].period, 123u);
    EXPECT_EQ(p.actions[2].kind, InjectKind::TraceTrunc);
    EXPECT_TRUE(p.hasTraceActions());
}

TEST(InjectSpec, HangIsCycleDomain)
{
    // "hang" wedges the run loop for the watchdog negative tests; it
    // parses like any cycle-domain kind and is not a trace action.
    auto plan = parseInjectSpec("hang");
    ASSERT_TRUE(plan.ok()) << plan.status().toString();
    ASSERT_EQ(plan.value().actions.size(), 1u);
    EXPECT_EQ(plan.value().actions[0].kind, InjectKind::Hang);
    EXPECT_EQ(plan.value().actions[0].period, 10000u);
    EXPECT_FALSE(plan.value().hasTraceActions());

    auto at = parseInjectSpec("hang@20000");
    ASSERT_TRUE(at.ok());
    EXPECT_EQ(at.value().actions[0].period, 20000u);

    EXPECT_STREQ(injectKindName(InjectKind::Hang), "hang");
}

TEST(InjectSpec, RejectsGarbage)
{
    EXPECT_FALSE(parseInjectSpec("").ok());
    EXPECT_FALSE(parseInjectSpec("bogus-kind").ok());
    EXPECT_FALSE(parseInjectSpec("xbtb-flip@").ok());
    EXPECT_FALSE(parseInjectSpec("xbtb-flip@0").ok());
    EXPECT_FALSE(parseInjectSpec("xbtb-flip@12x").ok());
    EXPECT_FALSE(parseInjectSpec("line-kill,,").ok());
}

// The injector must be deterministic in its seed: same plan + seed
// twice => identical injection counts and identical final metrics.
TEST(Injection, DeterministicAcrossRuns)
{
    for (int run = 0; run < 2; ++run) {
        SCOPED_TRACE(run);
        uint64_t counts[2];
        uint64_t cycles[2];
        for (int i = 0; i < 2; ++i) {
            auto plan = parseInjectSpec("xbtb-flip@997,line-kill@1499");
            ASSERT_TRUE(plan.ok());
            FaultInjector injector(plan.take(), 42);
            SimConfig config;
            config.kind = FrontendKind::Xbc;
            auto fe = makeFrontend(config);
            Trace trace = smallTrace();
            fe->attachCycleObserver(&injector);
            fe->run(trace);
            counts[i] = injector.injections();
            cycles[i] = fe->metrics().cycles.value();
        }
        EXPECT_EQ(counts[0], counts[1]);
        EXPECT_EQ(cycles[0], cycles[1]);
    }
}

} // anonymous namespace
} // namespace xbs
