/**
 * @file
 * Tests for the streaming statistics layer (src/obs/stats): the
 * Student-t table, the Welford/lag-1/batch-means estimator — with an
 * empirical coverage check that the batch-means 95% CI actually
 * covers ~95% on both i.i.d. and AR(1) series — the online phase
 * detector and its exact-sum invariant, and the StatsLayer riding a
 * synthetic IntervalSampler tree.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <sstream>
#include <vector>

#include "common/interval_stats.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "obs/stats/phase_detect.hh"
#include "obs/stats/stream_stats.hh"
#include "obs/stats/stats_layer.hh"

using namespace xbs;

namespace
{

/** Fraction of @p reps seeded replications whose CI covers the true
 *  mean. @p gen produces one series per call; invalid CIs (too few
 *  batches) do not count against coverage but do shrink the sample,
 *  so the test lengths are chosen to keep them rare. */
template <typename Gen>
double
coverage(unsigned reps, double true_mean, Gen gen)
{
    unsigned covered = 0, valid = 0;
    for (unsigned r = 0; r < reps; ++r) {
        StreamStat st;
        for (double x : gen(r))
            st.push(x);
        StreamStat::Ci95 ci = st.ci95();
        if (!ci.valid)
            continue;
        ++valid;
        if (std::fabs(st.mean() - true_mean) <= ci.halfWidth)
            ++covered;
    }
    EXPECT_GT(valid, reps * 9 / 10);  // CIs must mostly materialize
    return valid ? (double)covered / valid : 0.0;
}

std::vector<double>
iidSeries(unsigned seed, std::size_t n)
{
    std::mt19937 rng(12345 + seed * 7919);
    std::normal_distribution<double> dist(5.0, 1.0);
    std::vector<double> xs(n);
    for (double &x : xs)
        x = dist(rng);
    return xs;
}

std::vector<double>
ar1Series(unsigned seed, std::size_t n, double phi)
{
    // x_t = phi*x_{t-1} + e_t shifted to mean 5; innovations scaled
    // so the marginal variance is 1 regardless of phi.
    std::mt19937 rng(54321 + seed * 104729);
    std::normal_distribution<double> dist(0.0,
                                          std::sqrt(1.0 - phi * phi));
    std::vector<double> xs(n);
    double x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        x = phi * x + dist(rng);
        xs[i] = 5.0 + x;
    }
    return xs;
}

} // anonymous namespace

// ---------------------------------------------------------------
// tCritical95

TEST(TCritical95, TableValues)
{
    EXPECT_NEAR(tCritical95(1), 12.706, 1e-3);
    EXPECT_NEAR(tCritical95(2), 4.303, 1e-3);
    EXPECT_NEAR(tCritical95(10), 2.228, 1e-3);
    EXPECT_NEAR(tCritical95(30), 2.042, 1e-3);
    EXPECT_NEAR(tCritical95(40), 2.021, 1e-3);
    EXPECT_NEAR(tCritical95(120), 1.980, 1e-3);
    EXPECT_NEAR(tCritical95(10000), 1.960, 1e-3);
    // df 0 (one sample) must never look significant.
    EXPECT_GT(tCritical95(0), 1e20);
}

TEST(TCritical95, MonotoneNonIncreasing)
{
    double prev = tCritical95(1);
    for (uint64_t df = 2; df <= 200; ++df) {
        const double t = tCritical95(df);
        EXPECT_LE(t, prev + 1e-12) << "df=" << df;
        prev = t;
    }
}

// ---------------------------------------------------------------
// StreamStat moments

TEST(StreamStat, WelfordMatchesTwoPass)
{
    std::vector<double> xs = iidSeries(0, 257);
    StreamStat st;
    for (double x : xs)
        st.push(x);

    double sum = 0.0;
    for (double x : xs)
        sum += x;
    const double mean = sum / (double)xs.size();
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - mean) * (x - mean);

    EXPECT_EQ(st.count(), xs.size());
    EXPECT_NEAR(st.mean(), mean, 1e-9);
    EXPECT_NEAR(st.variance(), m2 / (double)(xs.size() - 1), 1e-9);
    EXPECT_NEAR(st.lag1(), lag1Autocorr(xs), 1e-9);
}

TEST(StreamStat, Lag1DetectsCorrelationStructure)
{
    StreamStat pos, alt;
    std::vector<double> xs = ar1Series(0, 4096, 0.8);
    for (double x : xs)
        pos.push(x);
    for (int i = 0; i < 4096; ++i)
        alt.push(i % 2 ? 1.0 : -1.0);
    EXPECT_GT(pos.lag1(), 0.6);
    EXPECT_LT(alt.lag1(), -0.9);
}

TEST(StreamStat, InsufficientDataOnShortSeries)
{
    StreamStat st;
    for (int i = 0; i < 5; ++i)
        st.push((double)i);
    StreamStat::Ci95 ci = st.ci95();
    EXPECT_FALSE(ci.valid);  // fewer than minBatches windows

    // Constant series: enough batches, CI collapses to zero width.
    StreamStat flat;
    for (int i = 0; i < 64; ++i)
        flat.push(3.0);
    ci = flat.ci95();
    ASSERT_TRUE(ci.valid);
    EXPECT_NEAR(ci.halfWidth, 0.0, 1e-12);
}

TEST(StreamStat, BatchMeansWidensUnderAutocorrelation)
{
    // On a strongly autocorrelated series the naive i.i.d. interval
    // is a lie (far too narrow); batch means must widen it.
    StreamStat st;
    for (double x : ar1Series(3, 8192, 0.9))
        st.push(x);
    StreamStat::Ci95 batch = st.ci95();
    StreamStat::Ci95 naive = st.naiveCi95();
    ASSERT_TRUE(batch.valid);
    ASSERT_TRUE(naive.valid);
    EXPECT_GT(batch.halfWidth, naive.halfWidth * 2.0);
    EXPECT_GT(batch.batchSize, 1u);  // merging actually happened

    // On an i.i.d. series the two should be the same scale.
    StreamStat iid;
    for (double x : iidSeries(3, 8192))
        iid.push(x);
    batch = iid.ci95();
    naive = iid.naiveCi95();
    ASSERT_TRUE(batch.valid);
    EXPECT_LT(batch.halfWidth, naive.halfWidth * 3.0);
}

TEST(StreamStat, EmpiricalCoverageIid)
{
    const double cov = coverage(200, 5.0, [](unsigned r) {
        return iidSeries(100 + r, 1024);
    });
    EXPECT_GE(cov, 0.90);
    EXPECT_LE(cov, 0.99);
}

TEST(StreamStat, EmpiricalCoverageAr1)
{
    // The acceptance criterion: ~95% coverage on autocorrelated
    // windows, which the naive interval would badly miss.
    const double cov = coverage(200, 5.0, [](unsigned r) {
        return ar1Series(300 + r, 4096, 0.7);
    });
    EXPECT_GE(cov, 0.90);
    EXPECT_LE(cov, 0.99);

    // Control: the naive i.i.d. interval under-covers on the same
    // series — the whole reason batch means exist.
    unsigned covered = 0;
    for (unsigned r = 0; r < 200; ++r) {
        StreamStat st;
        for (double x : ar1Series(300 + r, 4096, 0.7))
            st.push(x);
        StreamStat::Ci95 ci = st.naiveCi95();
        ASSERT_TRUE(ci.valid);
        if (std::fabs(st.mean() - 5.0) <= ci.halfWidth)
            ++covered;
    }
    EXPECT_LT((double)covered / 200.0, 0.85);
}

// ---------------------------------------------------------------
// PhaseDetector

namespace
{

/** Two clearly different 3-dim shapes plus a zero vector. */
const std::vector<double> kShapeA{10.0, 1.0, 0.0};
const std::vector<double> kShapeB{0.0, 1.0, 10.0};
const std::vector<double> kZero{0.0, 0.0, 0.0};

/** Feed @p n windows of @p shape starting at @p window. */
int
feed(PhaseDetector &det, const std::vector<double> &shape, unsigned n,
     uint64_t *window)
{
    int last = -1;
    for (unsigned i = 0; i < n; ++i)
        last = det.observe(shape, (*window)++);
    return last;
}

} // anonymous namespace

TEST(PhaseDetector, SegmentsTwoPhases)
{
    PhaseDetector det;
    uint64_t w = 0;
    const int a = feed(det, kShapeA, 10, &w);
    const int b = feed(det, kShapeB, 10, &w);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    ASSERT_EQ(det.phases().size(), 2u);
    EXPECT_EQ(det.phases()[0].firstWindow, 0u);
    // Phase B's first window burned hysteresis-1 windows still
    // counted into A.
    EXPECT_GT(det.phases()[1].firstWindow, 9u);
}

TEST(PhaseDetector, HysteresisAbsorbsSingleOutlier)
{
    PhaseDetector det;  // hysteresis 2
    uint64_t w = 0;
    feed(det, kShapeA, 8, &w);
    // One outlier window (a cold-miss burst) must not split a phase.
    EXPECT_EQ(det.observe(kShapeB, w++), 0);
    EXPECT_EQ(feed(det, kShapeA, 8, &w), 0);
    EXPECT_EQ(det.phases().size(), 1u);
}

TEST(PhaseDetector, AbaReusesIds)
{
    PhaseDetector det;
    uint64_t w = 0;
    const int a1 = feed(det, kShapeA, 10, &w);
    const int b = feed(det, kShapeB, 10, &w);
    const int a2 = feed(det, kShapeA, 10, &w);
    EXPECT_EQ(a1, a2);   // A-B-A keeps two IDs, not three
    EXPECT_NE(a1, b);
    EXPECT_EQ(det.phases().size(), 2u);
}

TEST(PhaseDetector, ExactSumInvariant)
{
    // Every observed window lands in exactly one phase: per-phase
    // window counts sum to the total, whatever the input order.
    PhaseDetector det;
    uint64_t w = 0;
    feed(det, kShapeA, 7, &w);
    feed(det, kZero, 3, &w);   // idle windows assimilate silently
    feed(det, kShapeB, 5, &w);
    det.observe(kShapeA, w++);  // sub-hysteresis outlier
    feed(det, kShapeB, 4, &w);
    feed(det, kShapeA, 6, &w);

    uint64_t sum = 0;
    for (const PhaseDetector::Phase &p : det.phases())
        sum += p.windows;
    EXPECT_EQ(det.windowsObserved(), w);
    EXPECT_EQ(sum, w);
}

TEST(PhaseDetector, ZeroWindowsDoNotPerturbMean)
{
    PhaseDetector det;
    uint64_t w = 0;
    feed(det, kShapeA, 6, &w);
    const std::vector<double> before = det.phases()[0].mean;
    EXPECT_EQ(feed(det, kZero, 4, &w), 0);
    EXPECT_EQ(det.phases()[0].mean, before);
    EXPECT_EQ(det.phases()[0].windows, 10u);
}

TEST(PhaseDetector, ScaleInvariance)
{
    // The same shape at 10x the volume is the same phase: the
    // detector segments on shares, not magnitudes.
    PhaseDetector det;
    uint64_t w = 0;
    feed(det, kShapeA, 6, &w);
    std::vector<double> scaled = kShapeA;
    for (double &x : scaled)
        x *= 10.0;
    EXPECT_EQ(feed(det, scaled, 6, &w), 0);
    EXPECT_EQ(det.phases().size(), 1u);
}

// ---------------------------------------------------------------
// StatsLayer over a synthetic sampled tree

TEST(StatsLayer, PhaseFieldAndExactSumOverSampler)
{
    // A synthetic tree with two attrib counters lets us drive phase
    // changes deterministically: phase 1 charges cause A, phase 2
    // charges cause B.
    StatGroup root("fe");
    StatGroup attrib("attrib", &root);
    StatGroup uops("uops", &attrib);
    ScalarStat a(&uops, "condMispredict", "cause A");
    ScalarStat b(&uops, "l2Miss", "cause B");

    std::ostringstream os;
    IntervalSampler sampler(root, /*interval=*/100);
    sampler.setOutput(&os);
    StatsLayer layer(sampler);

    unsigned changes = 0;
    layer.setPhaseCallback(
        [&](int, uint64_t) { ++changes; });

    uint64_t cycle = 0;
    for (int window = 0; window < 20; ++window) {
        if (window < 10)
            a += 50;
        else
            b += 50;
        cycle += 100;
        sampler.tick(cycle);
    }
    sampler.finish(cycle);

    EXPECT_EQ(layer.windows(), 20u);
    EXPECT_GE(changes, 2u);  // initial phase + the A->B change

    // Every emitted line carries a phase ID, and the per-phase
    // counts reconstructed from the stream match the phase table.
    std::map<int, uint64_t> per_phase;
    std::istringstream lines(os.str());
    std::string line;
    uint64_t windows = 0;
    while (std::getline(lines, line)) {
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(parseJson(line, &doc, &err)) << err;
        const JsonValue *phase = doc.find("phase");
        ASSERT_NE(phase, nullptr) << line;
        ++per_phase[(int)phase->asUint()];
        ++windows;
    }
    EXPECT_EQ(windows, 20u);
    EXPECT_EQ(per_phase.size(), layer.detector().phases().size());
    uint64_t sum = 0;
    for (const PhaseDetector::Phase &p : layer.detector().phases()) {
        EXPECT_EQ(per_phase[p.id], p.windows);
        sum += p.windows;
    }
    EXPECT_EQ(sum, windows);  // the exact-sum invariant, end to end
}

TEST(StatsLayer, StatsJsonShape)
{
    StatGroup root("fe");
    StatGroup attrib("attrib", &root);
    StatGroup uops("uops", &attrib);
    ScalarStat a(&uops, "condMispredict", "cause A");

    IntervalSampler sampler(root, 100);  // no output stream: hook only
    StatsLayer layer(sampler);
    uint64_t cycle = 0;
    for (int i = 0; i < 96; ++i) {
        a += 10 + (i % 3);
        cycle += 100;
        sampler.tick(cycle);
    }
    sampler.finish(cycle);

    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        layer.writeStatsJson(jw);
        layer.writePhasesJson(jw);
        jw.endObject();
    }
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), &doc, &err)) << err;
    const JsonValue *stats = doc.find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("windows")->asUint(), 96u);
    EXPECT_EQ(stats->find("windowCycles")->asUint(), 100u);
    const JsonValue *bw = stats->find("bandwidth");
    ASSERT_NE(bw, nullptr);
    EXPECT_NE(bw->find("mean"), nullptr);
    EXPECT_NE(bw->find("lag1"), nullptr);
    const JsonValue *cause = stats->find("attrib.uops.condMispredict");
    ASSERT_NE(cause, nullptr);
    EXPECT_GT(cause->find("mean")->asNumber(), 9.0);
    const JsonValue *phases = doc.find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_TRUE(phases->isArray());
    EXPECT_GE(phases->items.size(), 1u);
}
