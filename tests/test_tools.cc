/**
 * @file
 * Tests for the tooling layer: the argument parser, the JSON writer
 * (including stats export), and the OUT_MUX reorder/align model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/args.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "core/out_mux.hh"
#include "core/priority_encoder.hh"

namespace xbs
{
namespace
{

std::vector<char *>
argvOf(std::vector<std::string> &storage)
{
    std::vector<char *> out;
    for (auto &s : storage)
        out.push_back(s.data());
    return out;
}

TEST(Args, ParsesAllKinds)
{
    std::string name = "default";
    uint64_t count = 5;
    double ratio = 1.0;
    bool flag = false;

    ArgParser p("prog", "test");
    p.addString("name", &name, "a name");
    p.addUint("count", &count, "a count");
    p.addDouble("ratio", &ratio, "a ratio");
    p.addBool("flag", &flag, "a flag");

    std::vector<std::string> args = {"prog", "--name=xbc",
                                     "--count", "42",
                                     "--ratio=2.5", "--flag"};
    auto argv = argvOf(args);
    EXPECT_TRUE(p.parse((int)argv.size(), argv.data()));
    EXPECT_EQ(name, "xbc");
    EXPECT_EQ(count, 42u);
    EXPECT_DOUBLE_EQ(ratio, 2.5);
    EXPECT_TRUE(flag);
}

TEST(Args, BoolExplicitValues)
{
    bool flag = true;
    ArgParser p("prog", "test");
    p.addBool("flag", &flag, "a flag");
    std::vector<std::string> args = {"prog", "--flag=false"};
    auto argv = argvOf(args);
    EXPECT_TRUE(p.parse((int)argv.size(), argv.data()));
    EXPECT_FALSE(flag);
}

TEST(Args, PositionalCollected)
{
    ArgParser p("prog", "test");
    std::vector<std::string> args = {"prog", "one", "two"};
    auto argv = argvOf(args);
    EXPECT_TRUE(p.parse((int)argv.size(), argv.data()));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "one");
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser p("prog", "test");
    std::vector<std::string> args = {"prog", "--help"};
    auto argv = argvOf(args);
    EXPECT_FALSE(p.parse((int)argv.size(), argv.data()));
}

TEST(Args, UnknownFlagIsFatal)
{
    ArgParser p("prog", "test");
    std::vector<std::string> args = {"prog", "--nope"};
    auto argv = argvOf(args);
    EXPECT_EXIT(p.parse((int)argv.size(), argv.data()),
                testing::ExitedWithCode(1), "unknown flag");
}

TEST(Args, BadIntegerIsFatal)
{
    uint64_t v = 0;
    ArgParser p("prog", "test");
    p.addUint("n", &v, "n");
    std::vector<std::string> args = {"prog", "--n=abc"};
    auto argv = argvOf(args);
    EXPECT_EXIT(p.parse((int)argv.size(), argv.data()),
                testing::ExitedWithCode(1), "expects an integer");
}

TEST(Args, UsageMentionsFlags)
{
    uint64_t v = 7;
    ArgParser p("prog", "does things");
    p.addUint("count", &v, "how many");
    std::string u = p.usage();
    EXPECT_NE(u.find("--count"), std::string::npos);
    EXPECT_NE(u.find("how many"), std::string::npos);
    EXPECT_NE(u.find("default: 7"), std::string::npos);
}

TEST(Json, ObjectAndArray)
{
    std::ostringstream os;
    {
        JsonWriter j(os, /*pretty=*/false);
        j.beginObject();
        j.field("a", (uint64_t)1);
        j.field("b", "two");
        j.beginArray("c");
        j.field("", 1.5);
        j.field("", true);
        j.endArray();
        j.endObject();
        EXPECT_TRUE(j.balanced());
    }
    EXPECT_EQ(os.str(), "{\"a\":1,\"b\":\"two\",\"c\":[1.5,true]}");
}

TEST(Json, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter j(os, false);
    j.beginObject();
    j.field("s", "a\"b\\c\nd");
    j.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, StatsExportRoundShape)
{
    StatGroup root("root");
    StatGroup child("frontend", &root);
    ScalarStat s(&child, "cycles", "cycles");
    s += 12;
    AverageStat a(&child, "avg", "average");
    a.sample(2.0);
    a.sample(4.0);

    std::ostringstream os;
    JsonWriter j(os, false);
    root.dumpJson(j);
    std::string out = os.str();
    EXPECT_NE(out.find("\"frontend\":{"), std::string::npos);
    EXPECT_NE(out.find("\"cycles\":12"), std::string::npos);
    EXPECT_NE(out.find("\"avg\":3"), std::string::npos);
}

struct OutMuxFixture : public testing::Test
{
    OutMuxFixture() : root("test"), mux(XbcParams{}, &root) {}

    StatGroup root;
    OutMux mux;
};

TEST_F(OutMuxFixture, CompactsSegments)
{
    // XB1 in banks 0 (2 uops, head) and 3 (4 uops, primary); XB2's
    // prefix in bank 2 (3 uops).
    auto plan = mux.plan({{0, 2}, {3, 4}, {2, 3}});
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].dstOffset, 0u);
    EXPECT_EQ(plan[1].dstOffset, 2u);
    EXPECT_EQ(plan[2].dstOffset, 6u);
    EXPECT_EQ(mux.segments.value(), 3u);
    EXPECT_DOUBLE_EQ(mux.occupancy.mean(), 9.0);
}

TEST_F(OutMuxFixture, ShiftDistances)
{
    // bank1's natural slice starts at uop 4; compacted to offset 0.
    mux.plan({{1, 4}});
    EXPECT_EQ(mux.shift.samples(), 1u);
    EXPECT_DOUBLE_EQ(mux.shift.mean(), 4.0);
}

TEST_F(OutMuxFixture, SharedReadFansOut)
{
    // The priority encoder can grant the same line twice (shared
    // read); the mux routes the one read to two segments.
    auto plan = mux.plan({{1, 2}, {1, 2}});
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].dstOffset, 0u);
    EXPECT_EQ(plan[1].dstOffset, 2u);
}

TEST_F(OutMuxFixture, RejectsOverflow)
{
    EXPECT_DEATH(mux.plan({{0, 4}, {1, 4}, {2, 4}, {3, 4}, {0, 4}}),
                 "OUT_MUX width");
}

struct PrioFixture : public testing::Test
{
    PrioFixture() : root("test"), pe(4, &root) {}

    StatGroup root;
    PriorityEncoder pe;
};

TEST_F(PrioFixture, PaperExample)
{
    // Section 3.6's worked example: XB1 in banks 0 and 3 of set 23,
    // XB2 in banks 2 and 3 of set 15. XB1 has priority; XB2's prefix
    // in bank 2 is fetched, its suffix in bank 3 is deferred.
    pe.reset();
    EXPECT_TRUE(pe.claim(0, 23, 0));   // XB1 head
    EXPECT_TRUE(pe.claim(3, 23, 0));   // XB1 primary
    EXPECT_TRUE(pe.claim(2, 15, 0));   // XB2 prefix
    EXPECT_FALSE(pe.wouldGrant(3, 15, 0));
    EXPECT_FALSE(pe.claim(3, 15, 0));  // XB2 suffix deferred
    EXPECT_EQ(pe.busyMask(), 0b1101u);
    EXPECT_EQ(pe.conflicts.value(), 1u);
}

TEST_F(PrioFixture, DifferentSetsPerBankInOneCycle)
{
    // "In a given cycle a different set may be accessed in each
    // bank" - the banks are independent.
    pe.reset();
    EXPECT_TRUE(pe.claim(0, 23, 0));
    EXPECT_TRUE(pe.claim(1, 15, 1));
    EXPECT_TRUE(pe.claim(2, 7, 0));
    EXPECT_TRUE(pe.claim(3, 99, 1));
    EXPECT_EQ(pe.busyMask(), 0b1111u);
}

TEST_F(PrioFixture, SharedLineGranted)
{
    pe.reset();
    EXPECT_TRUE(pe.claim(1, 23, 0));
    EXPECT_TRUE(pe.wouldGrant(1, 23, 0));   // same physical line
    EXPECT_TRUE(pe.claim(1, 23, 0));
    EXPECT_FALSE(pe.wouldGrant(1, 23, 1));  // other way: busy
    EXPECT_EQ(pe.shared.value(), 1u);
    EXPECT_EQ(pe.grants.value(), 1u);
}

TEST_F(PrioFixture, ResetFreesBanks)
{
    pe.reset();
    EXPECT_TRUE(pe.claim(2, 5, 0));
    pe.reset();
    EXPECT_TRUE(pe.wouldGrant(2, 6, 1));
    EXPECT_TRUE(pe.claim(2, 6, 1));
}

} // anonymous namespace
} // namespace xbs
