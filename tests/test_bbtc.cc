/**
 * @file
 * Unit tests for the block-based trace cache (paper section 2.4):
 * block cache behavior, pointer-trace filling, conservation, and the
 * redundancy-moves-to-pointers property.
 */

#include <gtest/gtest.h>

#include "bbtc/bbtc_frontend.hh"
#include "bbtc/block_cache.hh"
#include "tc/tc_frontend.hh"
#include "test_helpers.hh"
#include "workload/catalog.hh"

namespace xbs
{
namespace
{

CachedBlock
makeBlock(uint64_t ip, std::initializer_list<int32_t> insts,
          unsigned uops)
{
    CachedBlock b;
    b.valid = true;
    b.startIp = ip;
    b.insts = insts;
    b.numUops = uops;
    return b;
}

struct BlockCacheFixture : public testing::Test
{
    BlockCacheFixture() : root("test"), bc(params(), &root) {}

    static BlockCacheParams
    params()
    {
        BlockCacheParams p;
        p.capacityUops = 256;
        p.blockUops = 8;
        p.ways = 2;
        return p;
    }

    StatGroup root;
    BlockCache bc;
};

TEST_F(BlockCacheFixture, InsertLookup)
{
    EXPECT_EQ(bc.lookup(0x100), nullptr);
    bc.insert(makeBlock(0x100, {1, 2}, 5));
    const CachedBlock *b = bc.lookup(0x100);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->numUops, 5u);
    EXPECT_EQ(bc.hits.value(), 1u);
}

TEST_F(BlockCacheFixture, SameIpReplaces)
{
    bc.insert(makeBlock(0x100, {1, 2}, 5));
    bc.insert(makeBlock(0x100, {1, 2, 3}, 7));
    const CachedBlock *b = bc.lookup(0x100);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->insts.size(), 3u);
    EXPECT_EQ(bc.inserts.value(), 1u);  // replace is not an insert
}

TEST_F(BlockCacheFixture, ProbeDoesNotTouch)
{
    bc.insert(makeBlock(0x100, {1}, 2));
    EXPECT_NE(bc.probe(0x100), nullptr);
    EXPECT_EQ(bc.probe(0x999), nullptr);
    EXPECT_EQ(bc.hits.value(), 0u);
}

TEST_F(BlockCacheFixture, FillFactor)
{
    bc.insert(makeBlock(0x100, {1}, 2));
    EXPECT_NEAR(bc.fillFactor(), 2.0 / 8.0, 1e-9);
}

TEST(BbtcFrontend, Conservation)
{
    Trace trace = makeCatalogTrace("perl", 30000);
    FrontendParams fp;
    BbtcFrontend fe(fp, BbtcParams{});
    fe.run(trace);
    EXPECT_EQ(fe.metrics().deliveryUops.value() +
                  fe.metrics().buildUops.value(),
              trace.totalUops());
}

TEST(BbtcFrontend, BandwidthBoundedByRenamer)
{
    Trace trace = makeCatalogTrace("go", 30000);
    FrontendParams fp;
    BbtcFrontend fe(fp, BbtcParams{});
    fe.run(trace);
    EXPECT_LE(fe.metrics().bandwidth(),
              (double)fp.renamerWidth + 1e-9);
    EXPECT_GT(fe.metrics().bandwidth(), 4.0);
}

TEST(BbtcFrontend, RedundancyMovesToPointers)
{
    // Section 2.4: "the BBTC shifts the redundancy from instructions
    // to block pointers". Blocks live once in the block cache, but
    // the trace table holds repeated pointers.
    Trace trace = makeCatalogTrace("word", 50000);
    FrontendParams fp;
    BbtcFrontend bbtc(fp, BbtcParams{});
    TcFrontend tc(fp, TcParams{});
    bbtc.run(trace);
    tc.run(trace);
    EXPECT_GT(bbtc.pointerRedundancy(), 1.0);
    // Uop-level effective capacity is better than the TC's.
    EXPECT_LT(bbtc.metrics().missRate(),
              tc.metrics().missRate() + 0.02);
}

TEST(BbtcFrontend, DeterministicRuns)
{
    Trace trace = makeCatalogTrace("falcon4", 20000);
    FrontendParams fp;
    BbtcFrontend a(fp, BbtcParams{}), b(fp, BbtcParams{});
    a.run(trace);
    b.run(trace);
    EXPECT_EQ(a.metrics().cycles.value(), b.metrics().cycles.value());
    EXPECT_EQ(a.metrics().deliveryUops.value(),
              b.metrics().deliveryUops.value());
}

TEST(BbtcFrontend, SmallerBlockCacheMissesMore)
{
    Trace trace = makeCatalogTrace("excel", 50000);
    FrontendParams fp;
    BbtcParams small, large;
    small.blocks.capacityUops = 4096;
    large.blocks.capacityUops = 65536;
    BbtcFrontend fs(fp, small), fl(fp, large);
    fs.run(trace);
    fl.run(trace);
    EXPECT_GT(fs.metrics().missRate(), fl.metrics().missRate());
}

} // anonymous namespace
} // namespace xbs
