/**
 * @file
 * xbregress - benchmark regression gate: compares a current
 * bench.json against a checked-in baseline metric-for-metric and
 * fails (exit 6) when a gated metric drifts outside its tolerance.
 *
 * Paper metrics (miss rate, bandwidth, uops/cycle, cycles, total
 * uops) are simulator outputs and must be stable to a tight relative
 * tolerance (default +-0.5%; totalUops must match exactly). Host
 * metrics (CPU seconds, peak RSS, uops per host second) vary with
 * the machine, so they get a loose tolerance (default +-50%) and
 * warn instead of fail unless --gate-host is set.
 *
 * When both sides carry a batch-means bandwidth CI (sweeps run with
 * --intervals, aggregated by xbagg), the bandwidth gate switches
 * from the raw threshold to a CI-overlap decision: disjoint
 * intervals beyond tolerance fail, overlapping intervals pass, and
 * intervals too wide to detect a tolerance-sized drift produce a
 * typed "lowPower" warning instead of a silent pass. CI-less
 * baselines keep the legacy threshold comparison.
 *
 * Examples:
 *   xbregress bench.json bench/baselines/ci-smoke.json
 *   xbregress bench.json base.json --record=BENCH_1.json
 *   xbregress bench.json base.json --paper-tol=0.01 --all
 *
 * Exit codes: 0 pass; 1 usage; 2 unreadable input; 6 regression
 * (gated metric out of tolerance, metric missing, or baseline built
 * incompatibly and --allow-build-mismatch not given).
 */

#include <cstdio>
#include <iostream>

#include "common/args.hh"
#include "common/fs.hh"
#include "common/status.hh"
#include "prof/bench_io.hh"

using namespace xbs;

int
main(int argc, char **argv)
{
    double paper_tol = 0.005;
    double host_tol = 0.50;
    bool gate_host = false;
    bool allow_build_mismatch = false;
    bool all = false;
    std::string record_path;

    ArgParser args("xbregress",
                   "compare bench.json against a baseline and gate "
                   "on regressions");
    args.addDouble("paper-tol", &paper_tol,
                   "relative tolerance for paper metrics");
    args.addDouble("host-tol", &host_tol,
                   "relative tolerance for host metrics");
    args.addBool("gate-host", &gate_host,
                 "host regressions fail instead of warn");
    args.addBool("allow-build-mismatch", &allow_build_mismatch,
                 "compare despite a build-type/sanitizer mismatch");
    args.addBool("all", &all,
                 "show every compared metric, not just offenders");
    args.addString("record", &record_path,
                   "also write a BENCH_<n>.json trajectory record");
    if (!args.parse(argc, argv))
        return 0;
    if (args.positional().size() != 2) {
        std::fprintf(stderr,
                     "xbregress: expected <current.json> "
                     "<baseline.json>\n");
        return kExitUsage;
    }
    const std::string cur_path = args.positional()[0];
    const std::string base_path = args.positional()[1];

    Expected<BenchReport> current = readBenchFile(cur_path);
    if (!current.ok()) {
        std::fprintf(stderr, "xbregress: %s\n",
                     current.status().toString().c_str());
        return kExitData;
    }
    Expected<BenchReport> baseline = readBenchFile(base_path);
    if (!baseline.ok()) {
        std::fprintf(stderr, "xbregress: %s\n",
                     baseline.status().toString().c_str());
        return kExitData;
    }

    RegressOptions opts;
    opts.paperTol = paper_tol;
    opts.hostTol = host_tol;
    opts.gateHost = gate_host;
    opts.allowBuildMismatch = allow_build_mismatch;

    RegressReport report =
        compareBench(current.value(), baseline.value(), opts);
    std::cout << renderRegressTable(report, all);

    if (!record_path.empty()) {
        const std::string rec =
            renderBenchRecord(current.value(), report, base_path);
        if (Status st = writeFileAtomic(record_path, rec);
            !st.isOk()) {
            std::fprintf(stderr, "xbregress: %s\n",
                         st.toString().c_str());
            return kExitData;
        }
    }

    return report.pass() ? kExitOk : kExitRegression;
}
