/**
 * @file
 * xbexplain - renders the miss-attribution layer's answer to "where
 * did the lost cycles and build uops go?".
 *
 * Input is either one xbsim --json document (a top-level "attrib"
 * object) or one xbatch report.json (a "jobs" array whose ok jobs
 * carry metrics.attrib); the tool does not care which tool wrote the
 * file, only which shape it finds.
 *
 * Single mode prints, per run, the uop and silent-cycle categories
 * ranked by share. Diff mode (--diff BASE CUR) matches runs by id and
 * prints per-category deltas ranked by magnitude — the table a bench
 * gate failure should be read next to. Both modes write a
 * machine-readable explain.json with --out (schema:
 * tools/explain.schema.json).
 *
 * The category-sum invariants (uops == buildUops, cycles ==
 * silentCycles) are checked for every run; a violation prints the
 * offender and exits 2 (kExitData), so CI can gate on accounting
 * integrity.
 *
 * Examples:
 *   xbsim --frontend=xbc --json > run.json && xbexplain run.json
 *   xbexplain --diff base/report.json cur/report.json --out=explain.json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "attrib/rollup.hh"
#include "common/args.hh"
#include "common/json.hh"
#include "common/status.hh"
#include "common/table.hh"

using namespace xbs;

namespace
{

/** One detected execution phase (xbsim --stats single-doc input):
 *  the src/obs/stats phase table entry, whose mean vector is the
 *  L1-normalized per-window attrib-delta shape — i.e. per-phase loss
 *  shares, directly rankable as a top-loss table. */
struct UnitPhase
{
    int64_t id = 0;
    uint64_t windows = 0;
    uint64_t firstWindow = 0;
    uint64_t representative = 0;
    std::vector<std::pair<std::string, double>> share;
};

/** One attributed run: a single xbsim invocation or one sweep job. */
struct Unit
{
    std::string id;  ///< "frontend/workload@capacity" label
    AttribRollup attrib;
    /// @{ Host microarchitecture context (--perf runs): how the run
    ///    behaved on the host, shown next to what it lost in the
    ///    model. Absent when the input carries no perf object.
    bool hasPerf = false;
    double hostIpc = 0.0;
    double hostCacheMpki = 0.0;
    double hostBranchMissRate = 0.0;
    /// @}
    std::vector<UnitPhase> phases;  ///< empty: input had no phases[]
};

/** Fill a unit's host-perf fields from a job/run "perf" object
 *  (report.json job shape: counters + precomputed rates; xbsim
 *  single-doc shape: {available, total:{...}}). */
void
extractUnitPerf(const JsonValue &perf, Unit *u)
{
    const JsonValue *src = &perf;
    if (const JsonValue *avail = perf.find("available")) {
        // xbsim single-doc shape.
        if (!avail->boolValue)
            return;
        src = perf.find("total");
        if (!src || !src->isObject())
            return;
    }
    u->hasPerf = true;
    if (const JsonValue *v = src->find("ipc"))
        u->hostIpc = v->asNumber();
    if (const JsonValue *v = src->find("cacheMpki"))
        u->hostCacheMpki = v->asNumber();
    if (const JsonValue *v = src->find("branchMissRate"))
        u->hostBranchMissRate = v->asNumber();
}

std::string
unitLabel(const std::string &frontend, const std::string &workload,
          uint64_t capacity, uint64_t ways)
{
    std::string s = frontend + "/" + workload;
    if (capacity) {
        s += "@" + std::to_string(capacity);
        if (ways)
            s += "w" + std::to_string(ways);
    }
    return s;
}

/** Pull the units out of either input shape. */
int
extractUnits(const std::string &path, std::vector<Unit> *units)
{
    Expected<JsonValue> parsed = readJsonFile(path);
    if (!parsed.ok()) {
        std::fprintf(stderr, "xbexplain: %s\n",
                     parsed.status().toString().c_str());
        return kExitData;
    }
    const JsonValue &doc = parsed.value();
    if (!doc.isObject()) {
        std::fprintf(stderr, "xbexplain: %s: not a JSON object\n",
                     path.c_str());
        return kExitData;
    }

    if (const JsonValue *jobs = doc.find("jobs");
        jobs && jobs->isArray()) {
        // Sweep report: one unit per completed ok job with attrib.
        for (const JsonValue &job : jobs->items) {
            const JsonValue *done = job.find("done");
            const JsonValue *cls = job.find("class");
            if (!done || !done->boolValue || !cls ||
                cls->asString() != "ok") {
                continue;
            }
            const JsonValue *metrics = job.find("metrics");
            const JsonValue *attrib =
                metrics ? metrics->find("attrib") : nullptr;
            if (!attrib)
                continue;
            Unit u;
            u.attrib = parseAttribRollup(*attrib);
            std::string frontend, workload;
            uint64_t capacity = 0, ways = 0;
            if (const JsonValue *v = job.find("frontend"))
                frontend = v->asString();
            if (const JsonValue *v = job.find("workload"))
                workload = v->asString();
            if (const JsonValue *v = job.find("capacity"))
                capacity = v->asUint();
            if (const JsonValue *v = job.find("ways"))
                ways = v->asUint();
            u.id = unitLabel(frontend, workload, capacity, ways);
            if (const JsonValue *pf = job.find("perf");
                pf && pf->isObject()) {
                extractUnitPerf(*pf, &u);
            }
            units->push_back(std::move(u));
        }
        if (units->empty()) {
            std::fprintf(stderr,
                         "xbexplain: %s: no ok jobs carry an attrib "
                         "rollup\n",
                         path.c_str());
            return kExitData;
        }
        return kExitOk;
    }

    const JsonValue *attrib = doc.find("attrib");
    if (!attrib) {
        std::fprintf(stderr,
                     "xbexplain: %s: neither a jobs array nor an "
                     "attrib object\n",
                     path.c_str());
        return kExitData;
    }
    Unit u;
    u.attrib = parseAttribRollup(*attrib);
    std::string frontend, workload;
    uint64_t capacity = 0;
    if (const JsonValue *v = doc.find("frontend"))
        frontend = v->asString();
    if (const JsonValue *v = doc.find("workload"))
        workload = v->asString();
    if (const JsonValue *v = doc.find("capacityUops"))
        capacity = v->asUint();
    u.id = unitLabel(frontend, workload, capacity, 0);
    if (const JsonValue *pf = doc.find("perf"); pf && pf->isObject())
        extractUnitPerf(*pf, &u);
    if (const JsonValue *ph = doc.find("phases"); ph && ph->isArray()) {
        for (const JsonValue &p : ph->items) {
            UnitPhase phase;
            if (const JsonValue *v = p.find("id"))
                phase.id = (int64_t)v->asUint();
            if (const JsonValue *v = p.find("windows"))
                phase.windows = v->asUint();
            if (const JsonValue *v = p.find("firstWindow"))
                phase.firstWindow = v->asUint();
            if (const JsonValue *v = p.find("representative"))
                phase.representative = v->asUint();
            if (const JsonValue *m = p.find("mean");
                m && m->isObject()) {
                for (const auto &[key, val] : m->members)
                    phase.share.emplace_back(key, val.asNumber());
            }
            u.phases.push_back(std::move(phase));
        }
    }
    units->push_back(std::move(u));
    return kExitOk;
}

/** Check both sum invariants; print every violation found. */
bool
checkSums(const std::vector<Unit> &units, const std::string &path)
{
    bool ok = true;
    for (const Unit &u : units) {
        if (u.attrib.sumsMatch())
            continue;
        ok = false;
        std::fprintf(stderr,
                     "xbexplain: %s: %s: category sums broken "
                     "(uops %llu vs buildUops %llu, cycles %llu vs "
                     "silentCycles %llu)\n",
                     path.c_str(), u.id.c_str(),
                     (unsigned long long)u.attrib.uopSum(),
                     (unsigned long long)u.attrib.buildUops,
                     (unsigned long long)u.attrib.cycleSum(),
                     (unsigned long long)u.attrib.silentCycles);
    }
    return ok;
}

using Categories = std::vector<std::pair<std::string, uint64_t>>;

uint64_t
countOf(const Categories &cats, const std::string &name)
{
    for (const auto &[n, c] : cats)
        if (n == name)
            return c;
    return 0;
}

/** Category names present in either list, baseline order first. */
std::vector<std::string>
unionNames(const Categories &a, const Categories &b)
{
    std::vector<std::string> names;
    auto add = [&](const std::string &n) {
        if (std::find(names.begin(), names.end(), n) == names.end())
            names.push_back(n);
    };
    for (const auto &[n, c] : a)
        add(n);
    for (const auto &[n, c] : b)
        add(n);
    return names;
}

void
printTopLoss(const Unit &u, unsigned top)
{
    std::printf("%s  (buildUops %llu, silentCycles %llu)\n",
                u.id.c_str(),
                (unsigned long long)u.attrib.buildUops,
                (unsigned long long)u.attrib.silentCycles);
    if (u.hasPerf) {
        std::printf("  host: ipc %.2f, cacheMPKI %.2f, "
                    "brMiss %.2f%%\n",
                    u.hostIpc, u.hostCacheMpki,
                    u.hostBranchMissRate * 100.0);
    }
    auto render = [&](const char *kind, const Categories &cats,
                      uint64_t total) {
        Categories sorted = cats;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        TextTable table({"cause", kind, "share"});
        unsigned shown = 0;
        for (const auto &[name, count] : sorted) {
            if (shown++ >= top)
                break;
            table.addRow({name, std::to_string(count),
                          TextTable::pct(
                              total ? (double)count / (double)total
                                    : 0.0)});
        }
        if (table.numRows() > 0)
            std::fputs(table.render().c_str(), stdout);
    };
    render("buildUops", u.attrib.uops, u.attrib.buildUops);
    render("silentCycles", u.attrib.cycles, u.attrib.silentCycles);
    // Per-phase loss shares: where the activity went while the run
    // was *in* that phase, not averaged across the whole run.
    for (const UnitPhase &phase : u.phases) {
        std::printf("  phase P%lld: %llu window%s "
                    "(first %llu, representative %llu)\n",
                    (long long)phase.id,
                    (unsigned long long)phase.windows,
                    phase.windows == 1 ? "" : "s",
                    (unsigned long long)phase.firstWindow,
                    (unsigned long long)phase.representative);
        auto sorted = phase.share;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        TextTable table({"cause", "share"});
        unsigned shown = 0;
        for (const auto &[name, val] : sorted) {
            if (shown++ >= top || val <= 0.0)
                break;
            table.addRow({name, TextTable::pct(val)});
        }
        if (table.numRows() > 0)
            std::fputs(table.render().c_str(), stdout);
    }
    std::printf("\n");
}

/** One matched pair's per-category deltas, magnitude-ranked. */
struct DiffRow
{
    std::string unit;
    std::string kind;  ///< "uops" | "cycles"
    std::string cause;
    uint64_t baseline = 0;
    uint64_t current = 0;
    int64_t delta = 0;
};

std::vector<DiffRow>
diffUnits(const Unit &base, const Unit &cur)
{
    std::vector<DiffRow> rows;
    auto fold = [&](const char *kind, const Categories &b,
                    const Categories &c) {
        for (const std::string &name : unionNames(b, c)) {
            DiffRow row;
            row.unit = base.id;
            row.kind = kind;
            row.cause = name;
            row.baseline = countOf(b, name);
            row.current = countOf(c, name);
            row.delta =
                (int64_t)row.current - (int64_t)row.baseline;
            if (row.delta != 0)
                rows.push_back(std::move(row));
        }
    };
    fold("uops", base.attrib.uops, cur.attrib.uops);
    fold("cycles", base.attrib.cycles, cur.attrib.cycles);
    return rows;
}

void
writeExplainJson(const std::string &path, const std::string &mode,
                 const std::vector<Unit> &units,
                 const std::vector<DiffRow> &diff, bool sums_ok)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "xbexplain: cannot write '%s'\n",
                     path.c_str());
        std::exit(kExitData);
    }
    JsonWriter jw(os, /*pretty=*/true);
    jw.beginObject();
    jw.field("version", (uint64_t)1);
    jw.field("mode", mode);
    jw.field("sumsOk", sums_ok);
    jw.beginArray("units");
    for (const Unit &u : units) {
        jw.beginObject();
        jw.field("id", u.id);
        jw.field("sumsOk", u.attrib.sumsMatch());
        if (u.hasPerf) {
            jw.beginObject("hostPerf");
            jw.field("ipc", u.hostIpc);
            jw.field("cacheMpki", u.hostCacheMpki);
            jw.field("branchMissRate", u.hostBranchMissRate);
            jw.endObject();
        }
        if (!u.phases.empty()) {
            jw.beginArray("phases");
            for (const UnitPhase &phase : u.phases) {
                jw.beginObject();
                jw.field("id", (int64_t)phase.id);
                jw.field("windows", phase.windows);
                jw.field("firstWindow", phase.firstWindow);
                jw.field("representative", phase.representative);
                jw.beginObject("share");
                for (const auto &[name, val] : phase.share)
                    jw.field(name, val);
                jw.endObject();
                jw.endObject();
            }
            jw.endArray();
        }
        writeAttribRollup(jw, u.attrib);
        jw.endObject();
    }
    jw.endArray();
    jw.beginArray("diff");
    for (const DiffRow &row : diff) {
        jw.beginObject();
        jw.field("unit", row.unit);
        jw.field("kind", row.kind);
        jw.field("cause", row.cause);
        jw.field("baseline", row.baseline);
        jw.field("current", row.current);
        jw.field("delta", row.delta);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool diff = false;
    std::string out;
    std::string top_str = "8";

    ArgParser args("xbexplain",
                   "attribute lost uops/cycles to root causes");
    args.addBool("diff", &diff,
                 "compare two runs: BASELINE CURRENT");
    args.addString("out", &out, "write machine-readable explain.json");
    args.addString("top", &top_str, "rows per table (single mode)");
    if (!args.parse(argc, argv))
        return kExitOk;

    const auto &paths = args.positional();
    if ((diff && paths.size() != 2) || (!diff && paths.size() != 1)) {
        std::fprintf(stderr,
                     "xbexplain: expected %s, got %zu paths "
                     "(--help for usage)\n",
                     diff ? "--diff BASELINE CURRENT" : "one input",
                     paths.size());
        return kExitUsage;
    }
    unsigned top = (unsigned)std::strtoul(top_str.c_str(), nullptr, 10);
    if (top == 0)
        top = 8;

    std::vector<Unit> units;
    int rc = extractUnits(paths[0], &units);
    if (rc != kExitOk)
        return rc;
    bool sums_ok = checkSums(units, paths[0]);
    std::vector<DiffRow> diff_rows;

    if (!diff) {
        for (const Unit &u : units)
            printTopLoss(u, top);
    } else {
        std::vector<Unit> current;
        rc = extractUnits(paths[1], &current);
        if (rc != kExitOk)
            return rc;
        sums_ok = checkSums(current, paths[1]) && sums_ok;

        // Match by id; two single-run files are paired directly so a
        // capacity sweep of the same workload stays comparable.
        std::size_t matched = 0;
        TextTable table({"unit", "kind", "cause", "baseline",
                         "current", "delta"});
        for (const Unit &base : units) {
            const Unit *cur = nullptr;
            if (units.size() == 1 && current.size() == 1) {
                cur = &current[0];
            } else {
                auto it = std::find_if(
                    current.begin(), current.end(),
                    [&](const Unit &u) { return u.id == base.id; });
                cur = it != current.end() ? &*it : nullptr;
            }
            if (!cur)
                continue;
            ++matched;
            std::vector<DiffRow> rows = diffUnits(base, *cur);
            diff_rows.insert(diff_rows.end(), rows.begin(),
                             rows.end());
        }
        std::stable_sort(diff_rows.begin(), diff_rows.end(),
                         [](const DiffRow &a, const DiffRow &b) {
                             uint64_t ma = (uint64_t)(a.delta < 0
                                                          ? -a.delta
                                                          : a.delta);
                             uint64_t mb = (uint64_t)(b.delta < 0
                                                          ? -b.delta
                                                          : b.delta);
                             return ma > mb;
                         });
        for (const DiffRow &row : diff_rows) {
            table.addRow({row.unit, row.kind, row.cause,
                          std::to_string(row.baseline),
                          std::to_string(row.current),
                          (row.delta >= 0 ? "+" : "") +
                              std::to_string(row.delta)});
        }
        if (table.numRows() > 0)
            std::fputs(table.render().c_str(), stdout);
        else
            std::printf("no attribution deltas\n");
        if (matched == 0) {
            std::fprintf(stderr,
                         "xbexplain: no units match between the two "
                         "inputs\n");
            return kExitData;
        }
        // The explain.json carries the *current* side's units.
        units = std::move(current);
    }

    if (!out.empty())
        writeExplainJson(out, diff ? "diff" : "single", units,
                         diff_rows, sums_ok);
    return sums_ok ? kExitOk : kExitData;
}
