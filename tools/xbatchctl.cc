/**
 * @file
 * xbatchctl - client for the xbatchd sweep service.
 *
 * Commands (first positional argument):
 *   ping                      liveness check
 *   submit                    one job from --workload/--frontend/...
 *   status                    whole-service counters (or --job=N)
 *   metrics                   cumulative service counters snapshot
 *                             (submits, cache hits/misses,
 *                             completions, retries, stalls, cancels,
 *                             per-tenant queue depth, uptime)
 *   cancel --job=N            cancel a pending or running job
 *   drain                     finish queued work, then daemon exits 0
 *   shutdown                  interrupt in-flight work resumably
 *   wait                      block until the service is idle
 *   storm                     duplicate-storm load generator (CI)
 *
 * storm submits --count jobs over one pipelined connection where a
 * --dup-fraction share are exact duplicates of earlier specs, waits
 * for the service to go idle, and prints a JSON verdict with the
 * cache-hit count and the cached-completions-per-second rate. Two
 * back-to-back storms against one daemon measure the two acceptance
 * numbers: the first proves duplicate coalescing (hits ~= the
 * duplicate share), the second proves hit throughput (every spec is
 * already cached, so the rate is pure cache-serve speed).
 *
 * Exit codes: 0 ok; 1 bad flags; 2 protocol/daemon error;
 * 3 storm/wait verdict failed.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/args.hh"
#include "common/json.hh"
#include "common/status.hh"
#include "svc/proto.hh"

using namespace xbs;

namespace
{

int
fail(const Status &st)
{
    std::fprintf(stderr, "xbatchctl: %s\n", st.toString().c_str());
    return kExitUsage;
}

int
failData(const Status &st)
{
    std::fprintf(stderr, "xbatchctl: %s\n", st.toString().c_str());
    return kExitData;
}

/** Blocking write of the whole buffer. */
Status
writeAll(int fd, const std::string &buf)
{
    std::size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(std::string("write failed: ") +
                                 std::strerror(errno));
        }
        off += (std::size_t)n;
    }
    return Status::ok();
}

/** Blocking read of one raw response line (buffered across calls). */
Expected<std::string>
readLine(int fd, std::string &buf)
{
    for (;;) {
        std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(std::string("read failed: ") +
                                 std::strerror(errno));
        }
        if (n == 0) {
            return Status::error(StatusCode::NotFound,
                                 "daemon closed the connection");
        }
        buf.append(chunk, (std::size_t)n);
        if (buf.size() > (64u << 20))
            return Status::error("oversized response");
    }
}

/** Blocking read of one parsed response line. */
Expected<JsonValue>
readResponse(int fd, std::string &buf)
{
    Expected<std::string> line = readLine(fd, buf);
    if (!line.ok())
        return line.status();
    JsonValue v;
    std::string err;
    if (!parseJson(line.value(), &v, &err))
        return Status::error("bad response: " + err);
    return v;
}

/** Whole-service status as a JsonValue. */
Expected<JsonValue>
serviceStatus(int fd, std::string &buf)
{
    ProtoRequest req;
    req.op = ProtoOp::Status;
    if (Status st = writeAll(fd, renderProtoRequest(req) + "\n");
        !st.isOk()) {
        return st;
    }
    return readResponse(fd, buf);
}

uint64_t
numField(const JsonValue &v, const char *name)
{
    const JsonValue *f = v.find(name);
    return f ? f->asUint() : 0;
}

/** Poll status until idle (running == 0 && pending == 0). */
Status
waitIdle(int fd, std::string &buf, double timeout_sec)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds((int64_t)(timeout_sec * 1e6));
    for (;;) {
        Expected<JsonValue> st = serviceStatus(fd, buf);
        if (!st.ok())
            return st.status();
        const JsonValue *idle = st.value().find("idle");
        if (idle && idle->isBool() && idle->boolValue)
            return Status::ok();
        if (timeout_sec > 0.0 &&
            std::chrono::steady_clock::now() > deadline) {
            return Status::error("timed out waiting for idle");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

/** The spec argv for storm job cell @p cell (unique per cell). */
std::vector<std::string>
stormSpec(const std::string &workload, const std::string &frontend,
          uint64_t capacity, uint64_t insts_base, uint64_t cell)
{
    // Distinct insts => distinct canonical spec => distinct cache
    // key; equal cell indices are exact duplicates.
    return {"--workload=" + workload, "--frontend=" + frontend,
            "--capacity=" + std::to_string(capacity),
            "--insts=" + std::to_string(insts_base + cell)};
}

struct StormFlags
{
    std::string workload = "gcc";
    std::string frontend = "xbc";
    uint64_t capacity = 32768;
    uint64_t insts = 10000;
    uint64_t count = 1000;
    double dupFraction = 0.5;
    std::string tenant;
    bool wait = true;
    double waitTimeout = 600.0;
};

/**
 * Pipeline @p flags.count submissions (chunked so the daemon's
 * group commit batches the journal fsyncs), optionally wait for
 * idle, and print the verdict JSON.
 */
int
runStorm(int fd, std::string &buf, const StormFlags &flags)
{
    const uint64_t count = flags.count;
    double dup = flags.dupFraction;
    if (dup < 0.0)
        dup = 0.0;
    if (dup > 1.0)
        dup = 1.0;
    uint64_t unique = count - (uint64_t)((double)count * dup);
    if (unique == 0)
        unique = 1;

    Expected<JsonValue> before = serviceStatus(fd, buf);
    if (!before.ok())
        return failData(before.status());
    const uint64_t hits0 = numField(before.value(), "cacheHits");
    const uint64_t done0 = numField(before.value(), "done");

    const auto t0 = std::chrono::steady_clock::now();
    uint64_t submitted = 0;
    const uint64_t chunk = 128;
    for (uint64_t base = 0; base < count; base += chunk) {
        const uint64_t n = std::min(chunk, count - base);
        std::string batch;
        for (uint64_t i = 0; i < n; ++i) {
            ProtoRequest req;
            req.op = ProtoOp::Submit;
            // Cells repeat modulo the unique pool: the first pass
            // is fresh, every later pass is an exact duplicate.
            req.spec = stormSpec(flags.workload, flags.frontend,
                                 flags.capacity, flags.insts,
                                 (base + i) % unique);
            req.tenant = flags.tenant;
            batch += renderProtoRequest(req);
            batch += '\n';
        }
        if (Status st = writeAll(fd, batch); !st.isOk())
            return failData(st);
        for (uint64_t i = 0; i < n; ++i) {
            Expected<JsonValue> resp = readResponse(fd, buf);
            if (!resp.ok())
                return failData(resp.status());
            const JsonValue *ok = resp.value().find("ok");
            if (!ok || !ok->isBool() || !ok->boolValue) {
                const JsonValue *err = resp.value().find("error");
                return failData(Status::error(
                    "submit rejected: " +
                    (err ? err->asString() : std::string("?"))));
            }
            ++submitted;
        }
    }

    if (flags.wait) {
        if (Status st = waitIdle(fd, buf, flags.waitTimeout);
            !st.isOk()) {
            return failData(st);
        }
    }
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();

    Expected<JsonValue> after = serviceStatus(fd, buf);
    if (!after.ok())
        return failData(after.status());
    const uint64_t hits = numField(after.value(), "cacheHits") -
                          hits0;
    const uint64_t done = numField(after.value(), "done") - done0;

    JsonWriter jw(std::cout, /*pretty=*/false);
    jw.beginObject();
    jw.field("submitted", submitted);
    jw.field("unique", unique);
    jw.field("done", done);
    jw.field("cacheHits", hits);
    jw.field("hitFraction",
             submitted ? (double)hits / (double)submitted : 0.0);
    jw.field("elapsedSec", elapsed);
    jw.field("cachedPerSec",
             elapsed > 0.0 ? (double)hits / elapsed : 0.0);
    jw.endObject();
    std::cout << "\n";
    return kExitOk;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string workload = "gcc";
    std::string frontend = "xbc";
    uint64_t capacity = 32768;
    uint64_t insts = 0;
    std::string tenant;
    uint64_t priority = 0;
    std::string job;
    double wait_timeout = 600.0;
    uint64_t storm_count = 1000;
    double dup_fraction = 0.5;
    uint64_t storm_insts = 10000;
    bool storm_submit_only = false;

    ArgParser args("xbatchctl",
                   "client for the xbatchd sweep service");
    args.addString("socket", &socket_path, "daemon Unix socket");
    args.addString("workload", &workload, "submit: workload name");
    args.addString("frontend", &frontend, "submit: frontend kind");
    args.addUint("capacity", &capacity, "submit: capacity in uops");
    args.addUint("insts", &insts,
                 "submit: instructions (0 = xbsim default)");
    args.addString("tenant", &tenant,
                   "submit/storm: fair-share tenant bucket");
    args.addUint("priority", &priority,
                 "submit: higher launches first");
    args.addString("job", &job, "status/cancel: job id");
    args.addDouble("wait-timeout", &wait_timeout,
                   "wait/storm: seconds before giving up (0 = "
                   "forever)");
    args.addUint("count", &storm_count, "storm: total submissions");
    args.addDouble("dup-fraction", &dup_fraction,
                   "storm: share of submissions that duplicate an "
                   "earlier spec");
    args.addUint("storm-insts", &storm_insts,
                 "storm: instruction base (cell i runs base+i)");
    args.addBool("storm-submit-only", &storm_submit_only,
                 "storm: submit and exit without waiting for idle "
                 "(SIGKILL-recovery drills)");
    if (!args.parse(argc, argv))
        return 0;
    if (args.positional().size() != 1) {
        return fail(Status::error(
            "expected one command: ping|submit|status|metrics|"
            "cancel|drain|shutdown|wait|storm"));
    }
    const std::string cmd = args.positional()[0];
    if (socket_path.empty())
        return fail(Status::error("--socket is required"));

    Expected<int> fd = connectUnixSocket(socket_path);
    if (!fd.ok())
        return failData(fd.status());
    std::string buf;

    int rc = kExitOk;
    if (cmd == "ping" || cmd == "drain" || cmd == "shutdown") {
        ProtoRequest req;
        req.op = cmd == "ping"    ? ProtoOp::Ping
                 : cmd == "drain" ? ProtoOp::Drain
                                  : ProtoOp::Shutdown;
        Expected<JsonValue> resp =
            roundTrip(fd.value(), renderProtoRequest(req));
        if (!resp.ok()) {
            rc = failData(resp.status());
        } else {
            const JsonValue *ok = resp.value().find("ok");
            if (!ok || !ok->isBool() || !ok->boolValue)
                rc = kExitData;
            std::printf("%s\n", renderProtoOk().c_str());
        }
    } else if (cmd == "submit") {
        ProtoRequest req;
        req.op = ProtoOp::Submit;
        req.spec = {"--workload=" + workload,
                    "--frontend=" + frontend,
                    "--capacity=" + std::to_string(capacity)};
        if (insts)
            req.spec.push_back("--insts=" + std::to_string(insts));
        req.tenant = tenant;
        req.priority = (int)priority;
        Expected<JsonValue> resp =
            roundTrip(fd.value(), renderProtoRequest(req));
        if (!resp.ok()) {
            rc = failData(resp.status());
        } else {
            const JsonValue *ok = resp.value().find("ok");
            if (ok && ok->isBool() && ok->boolValue) {
                std::printf("{\"ok\": true, \"job\": %llu}\n",
                            (unsigned long long)numField(
                                resp.value(), "job"));
            } else {
                const JsonValue *err = resp.value().find("error");
                rc = failData(Status::error(
                    err ? err->asString() : "submit rejected"));
            }
        }
    } else if (cmd == "status" || cmd == "metrics") {
        ProtoRequest req;
        req.op = cmd == "status" ? ProtoOp::Status : ProtoOp::Metrics;
        if (!job.empty())
            req.job = std::atoi(job.c_str());
        // Print the daemon's raw response line: it IS the status/
        // metrics JSON, no re-serialization needed.
        if (Status st = writeAll(fd.value(),
                                 renderProtoRequest(req) + "\n");
            !st.isOk()) {
            rc = failData(st);
        } else if (Expected<std::string> line =
                       readLine(fd.value(), buf);
                   !line.ok()) {
            rc = failData(line.status());
        } else {
            std::printf("%s\n", line.value().c_str());
        }
    } else if (cmd == "cancel") {
        if (job.empty())
            return fail(Status::error("cancel needs --job=N"));
        ProtoRequest req;
        req.op = ProtoOp::Cancel;
        req.job = std::atoi(job.c_str());
        Expected<JsonValue> resp =
            roundTrip(fd.value(), renderProtoRequest(req));
        if (!resp.ok()) {
            rc = failData(resp.status());
        } else {
            const JsonValue *ok = resp.value().find("ok");
            if (ok && ok->isBool() && ok->boolValue) {
                std::printf("%s\n", renderProtoOk().c_str());
            } else {
                const JsonValue *err = resp.value().find("error");
                rc = failData(Status::error(
                    err ? err->asString() : "cancel rejected"));
            }
        }
    } else if (cmd == "wait") {
        if (Status st = waitIdle(fd.value(), buf, wait_timeout);
            !st.isOk()) {
            std::fprintf(stderr, "xbatchctl: %s\n",
                         st.toString().c_str());
            rc = kExitAudit;
        } else {
            std::printf("%s\n", renderProtoOk().c_str());
        }
    } else if (cmd == "storm") {
        StormFlags flags;
        flags.workload = workload;
        flags.frontend = frontend;
        flags.capacity = capacity;
        flags.insts = storm_insts;
        flags.count = storm_count;
        flags.dupFraction = dup_fraction;
        flags.tenant = tenant;
        flags.wait = !storm_submit_only;
        flags.waitTimeout = wait_timeout;
        rc = runStorm(fd.value(), buf, flags);
    } else {
        rc = fail(Status::error("unknown command '" + cmd + "'"));
    }
    ::close(fd.value());
    return rc;
}
