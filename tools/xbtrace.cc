/**
 * @file
 * xbtrace - trace utility: generate catalog or ad-hoc synthetic
 * traces, write them as binary .xbt files, and inspect existing
 * files (instruction mix, block-length statistics, branch bias).
 *
 * Examples:
 *   xbtrace --workload=gcc --insts=2000000 --out=gcc.xbt
 *   xbtrace --suite=sysmark --seed=7 --functions=300 --out=adhoc.xbt
 *   xbtrace --in=gcc.xbt                       # inspect
 */

#include <cstdio>
#include <map>

#include "common/args.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "common/table.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "workload/builder.hh"
#include "workload/catalog.hh"
#include "workload/executor.hh"

using namespace xbs;

namespace
{

void
inspect(const Trace &trace)
{
    std::printf("trace '%s': %zu instructions, %llu uops "
                "(%.2f uops/inst)\n",
                trace.name().c_str(), trace.numRecords(),
                (unsigned long long)trace.totalUops(),
                (double)trace.totalUops() /
                    (double)trace.numRecords());

    std::map<InstClass, uint64_t> mix;
    for (std::size_t i = 0; i < trace.numRecords(); ++i)
        ++mix[trace.inst(i).cls];
    TextTable t({"class", "count", "share"});
    for (const auto &[cls, count] : mix) {
        t.addRow({instClassName(cls), std::to_string(count),
                  TextTable::pct((double)count /
                                 (double)trace.numRecords())});
    }
    std::printf("%s\n", t.render().c_str());

    auto s = computeBlockLengthStats(trace);
    TextTable lt({"block type", "mean uops"});
    lt.addRow({"basic block", TextTable::num(s.basicBlock.mean())});
    lt.addRow({"extended block", TextTable::num(s.xb.mean())});
    lt.addRow({"XB w/ promotion",
               TextTable::num(s.xbPromoted.mean())});
    lt.addRow({"dual XB", TextTable::num(s.dualXb.mean())});
    std::printf("%s\n", lt.render().c_str());
}

WorkloadProfile
adhocProfile(const std::string &suite, uint64_t seed,
             uint64_t functions)
{
    WorkloadProfile p;
    if (suite == "spec")
        p = specIntProfile();
    else if (suite == "sysmark")
        p = sysmarkProfile();
    else if (suite == "games")
        p = gamesProfile();
    else
        xbs_fatal("unknown suite '%s' (spec|sysmark|games)",
                  suite.c_str());
    p.name = "adhoc-" + suite + "-" + std::to_string(seed);
    p.seed = seed;
    if (functions)
        p.numFunctions = (unsigned)functions;
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string suite;
    std::string in_path;
    std::string out_path;
    uint64_t insts = 0;
    uint64_t seed = 1;
    uint64_t functions = 0;

    ArgParser args("xbtrace", "synthetic trace generator/inspector");
    args.addString("workload", &workload,
                   "catalog workload to generate");
    args.addString("suite", &suite,
                   "ad-hoc workload from a suite preset: "
                   "spec|sysmark|games");
    args.addUint("seed", &seed, "ad-hoc generation seed");
    args.addUint("functions", &functions,
                 "ad-hoc function count (0 = preset default)");
    args.addUint("insts", &insts,
                 "instructions (0 = XBS_TRACE_LEN or 2M)");
    args.addString("in", &in_path, "inspect an existing .xbt file");
    args.addString("out", &out_path, "write the trace here (.xbt)");
    if (!args.parse(argc, argv))
        return 0;

    if (!in_path.empty()) {
        Expected<Trace> tr = readTraceEx(in_path);
        if (!tr.ok()) {
            std::fprintf(stderr, "xbtrace: %s\n",
                         tr.status().toString().c_str());
            return kExitData;
        }
        Trace trace = tr.take();
        trace.validate();
        inspect(trace);
        if (!out_path.empty()) {
            if (Status st = writeTraceEx(trace, out_path);
                !st.isOk()) {
                std::fprintf(stderr, "xbtrace: %s\n",
                             st.toString().c_str());
                return kExitData;
            }
        }
        return kExitOk;
    }

    if (workload.empty())
        workload = "gcc";
    if (suite.empty() && !findWorkloadPtr(workload)) {
        std::fprintf(stderr,
                     "xbtrace: unknown workload '%s'\n",
                     workload.c_str());
        return kExitUsage;
    }

    Trace trace = [&]() {
        if (!suite.empty()) {
            auto profile = adhocProfile(suite, seed, functions);
            auto program = buildProgram(profile);
            uint64_t n = insts ? insts : defaultTraceLength();
            return Executor(program, seed).run(n);
        }
        return makeCatalogTrace(workload, insts);
    }();
    trace.validate();
    inspect(trace);

    if (!out_path.empty()) {
        if (Status st = writeTraceEx(trace, out_path); !st.isOk()) {
            std::fprintf(stderr, "xbtrace: %s\n",
                         st.toString().c_str());
            return kExitData;
        }
        std::printf("written: %s\n", out_path.c_str());
    }
    return kExitOk;
}
