/**
 * @file
 * xbagg - sweep aggregator: merges an xbatch sweep directory
 * (report.json + intervals/job-<id>.jsonl) into one run-level
 * bench.json carrying paper metrics with interval-bandwidth
 * percentiles, host-performance rollups, and build provenance.
 *
 * Examples:
 *   xbagg sweep-dir                      # writes sweep-dir/bench.json
 *   xbagg sweep-dir --out=bench.json     # explicit output path
 *   xbagg sweep-dir --print              # also pretty-print to stdout
 *
 * Degrades gracefully: jobs with torn or missing interval streams
 * keep their paper metrics (flagged in the row); only a missing or
 * malformed report.json is fatal.
 */

#include <cstdio>
#include <iostream>

#include "common/args.hh"
#include "common/fs.hh"
#include "common/status.hh"
#include "prof/bench_io.hh"

using namespace xbs;

int
main(int argc, char **argv)
{
    std::string out_path;
    bool print = false;

    ArgParser args("xbagg",
                   "aggregate an xbatch sweep directory into "
                   "bench.json");
    args.addString("out", &out_path,
                   "output path (default: <dir>/bench.json)");
    args.addBool("print", &print, "echo the JSON to stdout too");
    if (!args.parse(argc, argv))
        return 0;
    if (args.positional().size() != 1) {
        std::fprintf(stderr,
                     "xbagg: expected exactly one sweep directory\n");
        return kExitUsage;
    }
    const std::string dir = args.positional()[0];
    if (out_path.empty())
        out_path = dir + "/bench.json";

    Expected<BenchReport> bench = aggregateSweepDir(dir);
    if (!bench.ok()) {
        std::fprintf(stderr, "xbagg: %s\n",
                     bench.status().toString().c_str());
        return kExitData;
    }

    const std::string json = renderBenchJson(bench.value());
    if (Status st = writeFileAtomic(out_path, json); !st.isOk()) {
        std::fprintf(stderr, "xbagg: %s\n", st.toString().c_str());
        return kExitData;
    }
    if (print)
        std::cout << json;

    const BenchReport &b = bench.value();
    std::size_t torn = 0, no_intervals = 0;
    for (const BenchRow &row : b.rows) {
        if (row.intervals.torn)
            ++torn;
        else if (!row.intervals.has)
            ++no_intervals;
    }
    std::fprintf(stderr,
                 "xbagg: %zu rows (%llu/%llu jobs ok) -> %s\n",
                 b.rows.size(), (unsigned long long)b.jobsOk,
                 (unsigned long long)b.jobsTotal, out_path.c_str());
    std::size_t ci_rows = 0;
    for (const BenchRow &row : b.rows)
        if (row.bwStats.has && row.bwStats.ciValid)
            ++ci_rows;
    if (ci_rows) {
        std::fprintf(stderr,
                     "xbagg: %zu/%zu rows carry a bandwidth CI; "
                     "sweep bw %.3f +- %.3f\n",
                     ci_rows, b.rows.size(), b.bwStats.mean,
                     b.bwStats.ciValid ? b.bwStats.ci95 : 0.0);
    }
    if (torn || no_intervals) {
        std::fprintf(stderr,
                     "xbagg: interval damage: %zu torn, %zu missing "
                     "(rows keep their paper metrics)\n",
                     torn, no_intervals);
    }
    return kExitOk;
}
