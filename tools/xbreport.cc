/**
 * @file
 * xbreport - post-processor for xbsim's observability outputs.
 *
 * Interval mode (default): reads the interval JSONL emitted by
 * `xbsim --interval-stats=N`, classifies each window into a phase by
 * its miss rate (delivery / mixed / build), merges consecutive
 * same-phase windows, and prints a per-phase summary table plus
 * whole-run totals. This turns the raw window stream into the
 * phase-level picture the paper's figures reason about.
 *
 * Trace mode (--trace=FILE): parses a Chrome trace-event JSON file
 * emitted by `xbsim --trace-events` and prints per-track event counts
 * - a quick structural check that the timeline contains what it
 * should (CI uses the nonzero exit on malformed input as a gate).
 *
 * Examples:
 *   xbsim --frontend=xbc --interval-stats=10000
 *   xbreport intervals.jsonl
 *   xbreport --trace=out.json
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

using namespace xbs;

namespace
{

/** One parsed interval window (headline fields only). */
struct Window
{
    uint64_t index = 0;
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;
    double bandwidth = 0.0;
    double missRate = 0.0;
    uint64_t deliveryUops = 0;
    uint64_t buildUops = 0;
    uint64_t renamedUops = 0;
    uint64_t modeSwitches = 0;
};

/** A run of consecutive same-phase windows. */
struct Phase
{
    std::string name;
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;
    uint64_t windows = 0;
    uint64_t deliveryUops = 0;
    uint64_t buildUops = 0;
    uint64_t renamedUops = 0;
    uint64_t modeSwitches = 0;
};

/** Find the delta whose dotted path ends in @p suffix. */
uint64_t
deltaOf(const JsonValue &deltas, const std::string &suffix)
{
    const JsonValue *v = findBySuffix(deltas, suffix);
    return v ? v->asUint() : 0;
}

std::string
classify(const Window &w, double build_thresh, double delivery_thresh)
{
    if (w.missRate >= build_thresh)
        return "build";
    if (w.missRate <= delivery_thresh)
        return "delivery";
    return "mixed";
}

int
reportIntervals(const std::string &path, double build_thresh,
                double delivery_thresh, bool csv)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "xbreport: cannot open '%s'\n",
                     path.c_str());
        return 1;
    }

    std::vector<Window> windows;
    JsonlScan scan = forEachJsonLine(in, [&](const JsonValue &doc) {
        Window w;
        if (const auto *v = doc.find("interval"))
            w.index = v->asUint();
        if (const auto *v = doc.find("startCycle"))
            w.startCycle = v->asUint();
        if (const auto *v = doc.find("endCycle"))
            w.endCycle = v->asUint();
        if (const auto *v = doc.find("bandwidth"))
            w.bandwidth = v->asNumber();
        if (const auto *v = doc.find("missRate"))
            w.missRate = v->asNumber();
        if (const auto *d = doc.find("deltas"); d && d->isObject()) {
            w.deliveryUops = deltaOf(*d, "frontend.deliveryUops");
            w.buildUops = deltaOf(*d, "frontend.buildUops");
            w.renamedUops = deltaOf(*d, "frontend.renamedUops");
            w.modeSwitches = deltaOf(*d, "frontend.modeSwitches");
        }
        windows.push_back(w);
        return true;
    });
    if (!scan.clean()) {
        std::fprintf(stderr, "xbreport: %s:%zu: %s\n", path.c_str(),
                     scan.badLine, scan.error.c_str());
        return 1;
    }
    if (windows.empty()) {
        std::fprintf(stderr, "xbreport: '%s' holds no windows\n",
                     path.c_str());
        return 1;
    }

    // Merge consecutive same-phase windows.
    std::vector<Phase> phases;
    for (const auto &w : windows) {
        std::string name = classify(w, build_thresh, delivery_thresh);
        if (phases.empty() || phases.back().name != name) {
            Phase p;
            p.name = name;
            p.startCycle = w.startCycle;
            phases.push_back(p);
        }
        Phase &p = phases.back();
        p.endCycle = w.endCycle;
        ++p.windows;
        p.deliveryUops += w.deliveryUops;
        p.buildUops += w.buildUops;
        p.renamedUops += w.renamedUops;
        p.modeSwitches += w.modeSwitches;
    }

    TextTable table({"phase", "cycles", "windows", "deliveryUops",
                     "buildUops", "missRate", "bandwidth",
                     "modeSwitches"});
    Phase total;
    total.name = "total";
    total.startCycle = windows.front().startCycle;
    total.endCycle = windows.back().endCycle;
    auto addRow = [&](const Phase &p) {
        uint64_t uops = p.deliveryUops + p.buildUops;
        uint64_t cycles = p.endCycle - p.startCycle;
        table.addRow(
            {p.name, std::to_string(cycles),
             std::to_string(p.windows),
             std::to_string(p.deliveryUops),
             std::to_string(p.buildUops),
             TextTable::pct(uops ? (double)p.buildUops / (double)uops
                                 : 0.0),
             TextTable::num(cycles ? (double)p.renamedUops /
                                         (double)cycles
                                   : 0.0),
             std::to_string(p.modeSwitches)});
    };
    for (const auto &p : phases) {
        addRow(p);
        total.windows += p.windows;
        total.deliveryUops += p.deliveryUops;
        total.buildUops += p.buildUops;
        total.renamedUops += p.renamedUops;
        total.modeSwitches += p.modeSwitches;
    }
    addRow(total);

    std::fputs(csv ? table.csv().c_str() : table.render().c_str(),
               stdout);
    return 0;
}

int
reportTrace(const std::string &path)
{
    Expected<JsonValue> parsed = readJsonFile(path);
    if (!parsed.ok()) {
        std::fprintf(stderr, "xbreport: %s\n",
                     parsed.status().toString().c_str());
        return 1;
    }
    const JsonValue &doc = parsed.value();
    if (!doc.isObject()) {
        std::fprintf(stderr, "xbreport: %s: not a JSON object\n",
                     path.c_str());
        return 1;
    }
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "xbreport: %s: no traceEvents array\n",
                     path.c_str());
        return 1;
    }

    // tid -> track name from the thread_name metadata records.
    std::map<uint64_t, std::string> trackOf;
    std::map<std::string, uint64_t> counts;
    uint64_t data_events = 0;
    for (const auto &e : events->items) {
        if (!e.isObject())
            continue;
        const auto *ph = e.find("ph");
        const auto *name = e.find("name");
        if (!ph || !name)
            continue;
        if (ph->asString() == "M") {
            if (name->asString() == "thread_name") {
                const auto *tid = e.find("tid");
                const auto *args = e.find("args");
                const auto *tn = args ? args->find("name") : nullptr;
                if (tid && tn)
                    trackOf[tid->asUint()] = tn->asString();
            }
            continue;
        }
        ++data_events;
        const auto *tid = e.find("tid");
        auto it = tid ? trackOf.find(tid->asUint()) : trackOf.end();
        std::string track =
            it != trackOf.end() ? it->second : "(unnamed)";
        ++counts[track + "/" + name->asString() + " (" +
                 ph->asString() + ")"];
    }

    TextTable table({"track/event", "count"});
    for (const auto &[key, n] : counts)
        table.addRow({key, std::to_string(n)});
    std::fputs(table.render().c_str(), stdout);
    std::printf("%llu data events on %zu tracks",
                (unsigned long long)data_events, trackOf.size());
    if (const auto *d = doc.find("droppedEvents"))
        std::printf(", %llu dropped",
                    (unsigned long long)d->asUint());
    std::printf("\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string build_thresh = "0.5";
    std::string delivery_thresh = "0.05";
    bool csv = false;

    ArgParser args("xbreport",
                   "summarize xbsim interval/trace-event output");
    args.addString("trace", &trace_path,
                   "summarize a trace-event JSON file instead");
    args.addString("build-threshold", &build_thresh,
                   "missRate at/above which a window is 'build'");
    args.addString("delivery-threshold", &delivery_thresh,
                   "missRate at/below which a window is 'delivery'");
    args.addBool("csv", &csv, "emit CSV instead of an aligned table");
    if (!args.parse(argc, argv))
        return 0;

    if (!trace_path.empty())
        return reportTrace(trace_path);

    const auto &rest = args.positional();
    std::string path = rest.empty() ? "intervals.jsonl" : rest[0];
    return reportIntervals(path, std::stod(build_thresh),
                           std::stod(delivery_thresh), csv);
}
