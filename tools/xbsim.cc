/**
 * @file
 * xbsim - the command-line driver: run any of the five frontends over
 * any catalog workload (or a trace file) with the structure geometry
 * set from flags, and dump results as text or JSON.
 *
 * Examples:
 *   xbsim --frontend=xbc --workload=gcc --insts=2000000
 *   xbsim --frontend=tc --capacity=65536 --ways=2 --json
 *   xbsim --frontend=xbc --trace=run.xbt --stats
 *   xbsim --frontend=xbc --trace-events=out.json --interval-stats=10000
 *   xbsim --frontend=xbc --checkpoint-at=500000 --checkpoint-out=warm.xbckpt
 *   xbsim --frontend=xbc --restore-from=warm.xbckpt
 *   xbsim --frontend=xbc --verify-ckpt=500000
 *   xbsim --list-workloads
 */

#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "ckpt/checkpoint.hh"
#include "common/args.hh"
#include "common/event_trace.hh"
#include "common/fs.hh"
#include "common/interval_stats.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/signals.hh"
#include "common/status.hh"
#include "obs/heartbeat.hh"
#include "obs/stats/stats_layer.hh"
#include "prof/build_info.hh"
#include "prof/host_counters.hh"
#include "prof/phase_profiler.hh"
#include "sim/ckpt_io.hh"
#include "sim/config.hh"
#include "sim/runner.hh"
#include "trace/trace_io.hh"
#include "verify/auditor.hh"
#include "verify/divergence.hh"
#include "verify/inject.hh"
#include "workload/catalog.hh"

using namespace xbs;

namespace
{

/**
 * Graceful shutdown (see docs/MODEL.md "Batch execution"): SIGINT or
 * SIGTERM raises this flag, the frontend run loop notices it at the
 * next cycle boundary, and main() flushes interval stats, the event
 * trace, and the audit report before exiting with kExitInterrupted —
 * so a supervisor-timed-out job still leaves usable partial output.
 */
volatile std::sig_atomic_t g_stop = 0;

/** Bridges the frontend's cycle-observer hook to the heartbeat
 *  emitter (obs must not leak into frontend.hh, so the adapter
 *  lives here in the driver). */
class HeartbeatObserver : public CycleObserver
{
  public:
    explicit HeartbeatObserver(HeartbeatEmitter *hb) : hb_(hb) {}

    void
    onCycle(Frontend &fe, uint64_t cycle) override
    {
        (void)cycle;
        hb_->onCycle(fe);
    }

  private:
    HeartbeatEmitter *hb_;
};

void
listWorkloads()
{
    std::printf("%-10s %-10s\n", "workload", "suite");
    std::printf("%-10s %-10s\n", "--------", "-----");
    for (const auto &e : workloadCatalog())
        std::printf("%-10s %-10s\n", e.name.c_str(), e.suite.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string frontend = "xbc";
    std::string workload = "gcc";
    std::string trace_path;
    uint64_t insts = 0;
    uint64_t capacity = 32768;
    uint64_t ways = 0;
    uint64_t xbtb_entries = 8192;
    uint64_t fetch_xbs = 2;
    bool promotion = true;
    bool set_search = true;
    bool path_assoc = false;
    bool json = false;
    bool stats = false;
    bool list = false;
    std::string trace_events;
    uint64_t trace_capacity = 1u << 20;
    uint64_t interval = 0;
    std::string interval_out = "intervals.jsonl";
    bool audit = false;
    uint64_t audit_interval = 100000;
    std::string inject_spec;
    uint64_t inject_seed = 1;
    bool profile = false;
    bool perf = false;
    bool build_info_only = false;
    std::string heartbeat_path;
    double heartbeat_period = 1.0;
    uint64_t checkpoint_at = 0;
    std::string checkpoint_out;
    std::string restore_from;
    uint64_t verify_ckpt = 0;

    ArgParser args("xbsim",
                   "trace-driven frontend simulator (XBC, HPCA 2000)");
    args.addString("frontend", &frontend,
                   "structure to simulate: ic|dc|tc|bbtc|xbc");
    args.addString("workload", &workload,
                   "catalog workload name (see --list-workloads)");
    args.addString("trace", &trace_path,
                   "replay a binary .xbt trace instead of a workload");
    args.addUint("insts", &insts,
                 "instructions to simulate (0 = XBS_TRACE_LEN or 2M)");
    args.addUint("capacity", &capacity, "structure capacity in uops");
    args.addUint("ways", &ways,
                 "associativity (0 = structure default)");
    args.addUint("xbtb-entries", &xbtb_entries, "XBTB entries (xbc)");
    args.addUint("fetch-xbs", &fetch_xbs, "XB pointers/cycle (xbc)");
    args.addBool("promotion", &promotion, "branch promotion (xbc)");
    args.addBool("set-search", &set_search, "set search (xbc)");
    args.addBool("path-assoc", &path_assoc,
                 "path-associative trace cache (tc)");
    args.addBool("json", &json, "emit results as JSON");
    args.addBool("stats", &stats,
                 "dump the full statistics tree plus streaming "
                 "interval statistics (mean/variance/lag-1/95% CI "
                 "per metric, workload phases); implies a default "
                 "10000-cycle interval sampler when --interval-stats "
                 "is off");
    args.addBool("list-workloads", &list, "list the catalog and exit");
    args.addString("trace-events", &trace_events,
                   "write a Chrome/Perfetto trace-event JSON file");
    args.addUint("trace-capacity", &trace_capacity,
                 "event ring capacity (oldest dropped on overflow)");
    args.addUint("interval-stats", &interval,
                 "emit windowed stat deltas every N cycles (0 = off)");
    args.addString("interval-out", &interval_out,
                   "interval JSONL output path");
    args.addBool("audit", &audit,
                 "attach the invariant auditor + delivery oracle "
                 "(exit 3 on violations)");
    args.addUint("audit-interval", &audit_interval,
                 "cycles between structural audits (0 = end only)");
    args.addString("inject", &inject_spec,
                   "fault injection spec: kind[@period],... with kind "
                   "in xbtb-flip|xfu-drop|line-kill|slot-corrupt|"
                   "trace-flip|trace-trunc|hang|ckpt-flip");
    args.addUint("checkpoint-at", &checkpoint_at,
                 "cut a warm-state checkpoint at this cycle (0 = off)");
    args.addString("checkpoint-out", &checkpoint_out,
                   "checkpoint output path (default "
                   "<workload>.<frontend>.xbckpt)");
    args.addString("restore-from", &restore_from,
                   "restore warm state from a checkpoint before "
                   "simulating (exit 2 if missing/corrupt/mismatched)");
    args.addUint("verify-ckpt", &verify_ckpt,
                 "divergence oracle: checkpoint at this cycle, "
                 "restore into a fresh frontend, finish both runs, "
                 "and require bit-identical metrics (exit 2 on "
                 "divergence)");
    args.addString("heartbeat", &heartbeat_path,
                   "atomically rewrite a JSON progress record at "
                   "this path while running (live telemetry)");
    args.addDouble("heartbeat-period", &heartbeat_period,
                   "host seconds between heartbeats");
    args.addUint("inject-seed", &inject_seed,
                 "deterministic fault-injection seed");
    args.addBool("profile", &profile,
                 "time simulator phases (predict/fetch/build/array/"
                 "trace-decode) on the host clock");
    args.addBool("perf", &perf,
                 "host microarchitecture counters (perf_event): "
                 "IPC / cache MPKI / branch-miss rate, attributed "
                 "per phase; degrades gracefully when denied");
    args.addBool("build-info", &build_info_only,
                 "print build provenance as JSON and exit");
    if (!args.parse(argc, argv))
        return 0;

    if (build_info_only) {
        JsonWriter jw(std::cout);
        jw.beginObject();
        writeBuildInfoJson(jw, buildInfo());
        jw.endObject();
        std::cout << "\n";
        return 0;
    }

    if (list) {
        listWorkloads();
        return 0;
    }

    // Install the shutdown flag early so a SIGTERM that lands during
    // trace generation is remembered: the run loop then exits on its
    // first cycle and the partial-output path below still runs.
    installStopHandlers(&g_stop);

    // Live telemetry: first beat before any heavy work, so a watcher
    // can tell "starting up" from "never launched".
    std::unique_ptr<HeartbeatEmitter> heartbeat;
    if (!heartbeat_path.empty()) {
        heartbeat = std::make_unique<HeartbeatEmitter>(
            heartbeat_path, heartbeat_period);
        heartbeat->beat(nullptr);
    }

    Expected<FrontendKind> kind = parseFrontendKind(frontend);
    if (!kind.ok())
        xbs_fatal("%s", kind.status().toString().c_str());

    SimConfig config;
    config.kind = kind.value();
    config.tc.capacityUops = (unsigned)capacity;
    config.xbc.capacityUops = (unsigned)capacity;
    config.dc.capacityUops = (unsigned)capacity;
    config.bbtc.blocks.capacityUops = (unsigned)capacity;
    if (ways) {
        config.tc.ways = (unsigned)ways;
        config.xbc.ways = (unsigned)ways;
        config.dc.ways = (unsigned)ways;
        config.bbtc.blocks.ways = (unsigned)ways;
    }
    config.xbc.xbtbEntries = (unsigned)xbtb_entries;
    config.xbc.fetchXbsPerCycle = (unsigned)fetch_xbs;
    config.xbc.promotionEnabled = promotion;
    config.xbc.setSearchEnabled = set_search;
    config.tc.pathAssociative = path_assoc;

    setLogQuiet(json);

    if (Status st = validateConfig(config); !st.isOk()) {
        std::fprintf(stderr, "xbsim: %s\n", st.toString().c_str());
        return kExitUsage;
    }

    std::unique_ptr<FaultInjector> injector;
    if (!inject_spec.empty()) {
        auto plan = parseInjectSpec(inject_spec);
        if (!plan.ok()) {
            std::fprintf(stderr, "xbsim: %s\n",
                         plan.status().toString().c_str());
            return kExitUsage;
        }
        injector = std::make_unique<FaultInjector>(plan.take(),
                                                   inject_seed);
    }

    auto fe = makeFrontend(config);

    // Host-time profiling (src/prof): phase timers inside the run
    // loops plus a "trace-decode" phase around input materialization.
    // --perf rides the same sampled phase boundaries, so it implies
    // the phase infrastructure even without --profile.
    const bool phases_on = profile || perf;
    PhaseProfiler prof;
    unsigned ph_decode = PhaseProfiler::kNoPhase;
    if (phases_on) {
        ph_decode = prof.definePhase("trace-decode");
        fe->attachProfiler(&prof);
    }

    // Host microarchitecture counters: one perf_event group on this
    // process, snapshotted at sampled phase boundaries. Unavailable
    // counters (perf_event_paranoid, containers, non-Linux) demote
    // to a typed reason in the output; paper metrics are unaffected
    // either way.
    PerfCounterGroup perf_group;
    PerfCounterGroup::Snapshot perf_run_begin;
    if (perf) {
        if (perf_group.open()) {
            prof.attachPerf(&perf_group);
            perf_run_begin = perf_group.read();
        } else {
            xbs_inform("perf counters unavailable: %s",
                       perf_group.unavailableReason().c_str());
        }
    }

    // Observability: an event-trace sink on the probe registry and/or
    // an interval sampler over the stat tree, both opt-in via flags.
    std::unique_ptr<EventTraceSink> sink;
    if (!trace_events.empty()) {
        sink = std::make_unique<EventTraceSink>(
            (std::size_t)trace_capacity);
        fe->probes().attach(sink.get());
    }
    std::unique_ptr<IntervalSampler> sampler;
    std::ofstream interval_os;
    if (interval > 0) {
        sampler = std::make_unique<IntervalSampler>(fe->statRoot(),
                                                    interval);
        interval_os.open(interval_out);
        if (!interval_os)
            xbs_fatal("cannot open '%s'", interval_out.c_str());
        sampler->setOutput(&interval_os);
        fe->attachSampler(sampler.get());
    } else if (stats) {
        // --stats without --interval-stats still wants the streaming
        // estimators: sample on a default window with no JSONL
        // output (the sampler then only feeds the stats layer).
        sampler = std::make_unique<IntervalSampler>(fe->statRoot(),
                                                    10000);
        fe->attachSampler(sampler.get());
    }

    // Streaming statistics (src/obs/stats) ride every sampler:
    // per-metric mean/variance/lag-1/batch-means CI plus online
    // phase segmentation. A pure observer — paper metrics are
    // byte-identical with or without it. The phase id is mirrored
    // into the heartbeat and, as a slice track, into the event
    // trace.
    std::unique_ptr<StatsLayer> stats_layer;
    ProbePoint phase_probe(&fe->probes(), "stats", "phase");
    std::deque<std::string> phase_labels;  // stable label addresses
    bool phase_slice_open = false;
    if (sampler) {
        stats_layer = std::make_unique<StatsLayer>(*sampler);
        stats_layer->setPhaseCallback([&](int phase, uint64_t window) {
            (void)window;
            if (phase_slice_open)
                phase_probe.end();
            phase_labels.push_back("phase-" + std::to_string(phase));
            phase_probe.begin(phase_labels.back().c_str());
            phase_slice_open = true;
            if (heartbeat)
                heartbeat->setStatsPhase(phase);
        });
    }

    std::optional<Trace> trace_opt;
    {
        if (heartbeat) {
            heartbeat->setPhase("decode");
            heartbeat->beat(fe.get());
        }
        ScopedPhase decode_timer(phases_on ? &prof : nullptr,
                                 ph_decode);
        if (!trace_path.empty()) {
            Expected<Trace> tr = readTraceEx(trace_path);
            if (!tr.ok()) {
                std::fprintf(stderr, "xbsim: %s\n",
                             tr.status().toString().c_str());
                return kExitData;
            }
            trace_opt.emplace(tr.take());
        } else {
            if (!findWorkloadPtr(workload)) {
                std::fprintf(stderr,
                             "xbsim: unknown workload '%s' "
                             "(see --list-workloads)\n",
                             workload.c_str());
                return kExitUsage;
            }
            trace_opt.emplace(makeCatalogTrace(workload, insts));
        }
        if (injector && injector->plan().hasTraceActions()) {
            Trace injected = injector->prepareTrace(*trace_opt);
            trace_opt.emplace(std::move(injected));
        }
    }
    const Trace &trace = *trace_opt;
    const std::string trace_name = trace.name();
    const uint64_t total_uops = trace.totalUops();

    // The spec identity a checkpoint of this run carries, and a
    // restored checkpoint is verified against. (Only the batch-layer
    // flags; a geometry mismatch in the extra flags is still caught
    // by the per-section size checks on restore.)
    RunSpec spec;
    spec.frontend = frontend;
    spec.workload = trace_path.empty() ? workload : trace_path;
    spec.insts = insts;
    spec.capacity = capacity;
    spec.ways = ways;
    spec.restoreFrom = restore_from;

    // Divergence-oracle mode: a self-contained experiment (two full
    // in-process runs), not a simulation of this cell.
    if (verify_ckpt) {
        Expected<DivergenceReport> rep =
            runDivergenceOracle(config, spec, trace, verify_ckpt);
        if (!rep.ok()) {
            std::fprintf(stderr, "xbsim: %s\n",
                         rep.status().toString().c_str());
            return kExitData;
        }
        const DivergenceReport &r = rep.value();
        if (json) {
            JsonWriter jw(std::cout);
            jw.beginObject();
            jw.field("frontend", frontend);
            jw.field("workload", trace_name);
            jw.field("checkpointCycle", r.cutCycle);
            jw.field("checkpointBytes", r.checkpointBytes);
            jw.field("auditViolations", (uint64_t)r.auditViolations);
            jw.field("identical", r.identical);
            if (!r.detail.empty())
                jw.field("detail", r.detail);
            jw.endObject();
            std::cout << "\n";
        } else {
            std::printf("checkpoint divergence oracle: %s on '%s', "
                        "cut at cycle %llu (%llu bytes)\n",
                        frontend.c_str(), trace_name.c_str(),
                        (unsigned long long)r.cutCycle,
                        (unsigned long long)r.checkpointBytes);
            std::printf("  restore is %s\n",
                        r.identical ? "bit-exact" : "DIVERGENT");
            if (!r.detail.empty())
                std::printf("  %s\n", r.detail.c_str());
        }
        return r.identical ? kExitOk : kExitData;
    }

    // Warm start: restore checkpointed state before the run. Every
    // failure here is typed and exits with kExitData; the batch
    // layer implements demote-to-cold-start by clearing the flag and
    // re-launching, so a bad checkpoint costs warmup, never results.
    if (!restore_from.empty()) {
        if (heartbeat) {
            heartbeat->setPhase("restore");
            heartbeat->setRestoredFrom(restore_from);
            heartbeat->beat(fe.get());
        }
        Expected<std::string> raw = readFileToString(restore_from);
        if (!raw.ok()) {
            Status st = raw.status();
            st.withFile(restore_from);
            std::fprintf(stderr, "xbsim: %s\n",
                         st.toString().c_str());
            return kExitData;
        }
        std::string bytes = raw.take();
        if (injector && injector->plan().hasCkptActions())
            bytes = injector->prepareCheckpointBytes(bytes);
        Expected<CheckpointFile> ckpt = parseCheckpoint(bytes);
        Status restored =
            ckpt.ok() ? restoreCheckpoint(*fe, ckpt.value(), spec,
                                          trace)
                      : ckpt.status();
        if (!restored.isOk()) {
            restored.withFile(restore_from);
            std::fprintf(stderr, "xbsim: restore failed: %s\n",
                         restored.toString().c_str());
            return kExitData;
        }
        // Mandatory post-restore audit: one structural walk over the
        // restored structures before a single cycle is simulated on
        // them. A checkpoint that passes every integrity check but
        // decodes into invariant-violating state is still Corrupt.
        InvariantAuditor restore_audit;
        restore_audit.auditRestore(*fe, trace,
                                   fe->metrics().cycles.value());
        if (!restore_audit.violations().empty()) {
            restore_audit.report(std::cerr);
            std::fprintf(stderr,
                         "xbsim: restored state from '%s' violates "
                         "structural invariants\n",
                         restore_from.c_str());
            return kExitData;
        }
        xbs_inform("restored warm state at cycle %llu from %s",
                   (unsigned long long)fe->metrics().cycles.value(),
                   restore_from.c_str());
    }

    std::unique_ptr<InvariantAuditor> auditor;
    if (audit && !restore_from.empty()) {
        // The delivery oracle grounds at record 0 of the trace; a
        // restored run only delivers the tail, so the full auditor
        // would report spurious violations. The mandatory one-shot
        // structural audit above already covered the restored state.
        xbs_inform("--audit disabled for a restored run (delivery "
                   "oracle needs a cold start)");
        audit = false;
    }
    if (audit) {
        AuditorOptions opts;
        opts.interval = audit_interval;
        auditor = std::make_unique<InvariantAuditor>(opts);
        auditor->attach(*fe, trace);
    }
    // Heartbeat before injector: at a cycle where an injected hang
    // wedges the loop, the beat for that cycle still goes out.
    std::unique_ptr<HeartbeatObserver> hb_observer;
    if (heartbeat) {
        heartbeat->setTotalUops(total_uops);
        heartbeat->setPhase("sim");
        heartbeat->beat(fe.get());
        hb_observer =
            std::make_unique<HeartbeatObserver>(heartbeat.get());
        fe->attachCycleObserver(hb_observer.get());
    }
    if (injector)
        fe->attachCycleObserver(injector.get());

    fe->attachStopFlag(&g_stop);

    // Simulated-progress-per-host-second rates, sampled on the
    // interval-stats cadence: each window gets a "host" sub-object
    // and the "host" probe track mirrors the rates into the event
    // trace as counter series.
    ThroughputMeter meter;
    ProbePoint host_uops_rate(&fe->probes(), "host", "uopsPerSec");
    ProbePoint host_rec_rate(&fe->probes(), "host", "recordsPerSec");
    ProbePoint host_cyc_rate(&fe->probes(), "host", "cyclesPerSec");
    PerfCounterGroup::Snapshot perf_win_prev;
    if (perf_group.available())
        perf_win_prev = perf_group.read();
    if (sampler) {
        Frontend *fe_ptr = fe.get();
        sampler->setAnnotator([&, fe_ptr](JsonWriter &jw) {
            const FrontendMetrics &mm = fe_ptr->metrics();
            ThroughputMeter::Rates r = meter.sample(
                mm.cycles.value(),
                mm.deliveryUops.value() + mm.buildUops.value(),
                mm.traceRecords.value());
            jw.beginObject("host");
            jw.field("wallSeconds", r.wallSeconds);
            jw.field("windowSeconds", r.windowSeconds);
            jw.field("cyclesPerSec", r.cyclesPerSec);
            jw.field("uopsPerSec", r.uopsPerSec);
            jw.field("recordsPerSec", r.recordsPerSec);
            jw.endObject();
            // Per-window host counters: the delta since the previous
            // window, multiplex-scaled — so bench rollups can build
            // host-IPC percentiles over the run.
            if (perf_group.available()) {
                PerfCounterGroup::Snapshot now = perf_group.read();
                PerfDelta d =
                    perf_group.delta(perf_win_prev, now);
                perf_win_prev = now;
                jw.beginObject("perf");
                jw.field("ipc", d.ipc());
                jw.field("cacheMpki", d.cacheMpki());
                jw.field("branchMissRate", d.branchMissRate());
                jw.field("multiplexFraction", d.multiplexFraction());
                jw.endObject();
            }
            host_uops_rate.fire((int64_t)r.uopsPerSec);
            host_rec_rate.fire((int64_t)r.recordsPerSec);
            host_cyc_rate.fire((int64_t)r.cyclesPerSec);
        });
    }

    // Live-point cut: arm the run loop to serialize the complete
    // warm state the first time the cycle counter reaches the mark
    // (the write happens mid-run, atomically, without stopping the
    // simulation).
    std::string ckpt_path = checkpoint_out;
    if (checkpoint_at) {
        if (ckpt_path.empty())
            ckpt_path = spec.workload + "." + frontend + ".xbckpt";
        fe->armCheckpoint(
            checkpoint_at, [&](Frontend &f) -> Status {
                return writeCheckpoint(
                    f,
                    makeCkptMeta(spec, trace,
                                 f.metrics().cycles.value()),
                    ckpt_path);
            });
    }

    meter.reset();
    fe->run(trace);

    // A raised flag means SIGINT/SIGTERM cut the run short at a
    // cycle boundary: still flush everything below (interval stats,
    // event trace, audit report, partial results) but report the
    // distinct interrupted exit code.
    const bool interrupted = g_stop != 0;
    resetStopHandlers();

    if (heartbeat) {
        heartbeat->setPhase("flush");
        heartbeat->beat(fe.get());
    }

    fe->finishObservation();
    if (phase_slice_open)
        phase_probe.end();
    if (auditor)
        auditor->finishRun(*fe);

    if (sink) {
        std::ofstream os(trace_events);
        if (!os)
            xbs_fatal("cannot open '%s'", trace_events.c_str());
        sink->writeChromeJson(os);
        xbs_inform("wrote %zu trace events (%llu dropped) to %s",
                   sink->size(), (unsigned long long)sink->dropped(),
                   trace_events.c_str());
    }

    // Exit-code gating: under injection only oracle violations count
    // (the injected corruption legitimately trips structural checks;
    // what must never happen is a change in the delivered stream).
    // An interrupted run trumps the audit verdict: a partial run
    // legitimately fails end-of-run completeness checks, and the
    // supervisor needs to see "interrupted with partial output".
    int exit_code = kExitOk;
    std::size_t gated_violations = 0;
    if (auditor) {
        gated_violations =
            injector ? auditor->countOf(AuditViolation::Kind::Oracle)
                     : auditor->violations().size();
        if (gated_violations)
            exit_code = kExitAudit;
    }
    if (interrupted)
        exit_code = kExitInterrupted;

    if (checkpoint_at) {
        if (!fe->checkpointTaken()) {
            xbs_inform("run ended before checkpoint cycle %llu; no "
                       "checkpoint written",
                       (unsigned long long)checkpoint_at);
        } else if (!fe->checkpointStatus().isOk()) {
            std::fprintf(stderr,
                         "xbsim: checkpoint write failed: %s\n",
                         fe->checkpointStatus().toString().c_str());
            if (exit_code == kExitOk)
                exit_code = kExitData;
        } else {
            xbs_inform("wrote checkpoint to %s",
                       ckpt_path.c_str());
        }
    }

    const auto &m = fe->metrics();
    const HostCounters hc = HostCounters::self();
    const ThroughputMeter::Rates overall = meter.overall(
        m.cycles.value(),
        m.deliveryUops.value() + m.buildUops.value(),
        m.traceRecords.value());
    if (json) {
        JsonWriter jw(std::cout);
        jw.beginObject();
        jw.field("frontend", frontend);
        jw.field("workload", trace_name);
        jw.field("capacityUops", capacity);
        jw.field("totalUops", total_uops);
        jw.field("bandwidth", m.bandwidth());
        jw.field("missRate", m.missRate());
        jw.field("overallIpc", m.overallIpc());
        jw.field("cycles", m.cycles.value());
        jw.field("condMispredictRate", m.condMispredictRate());
        fe->attrib().writeJson(jw, m.buildUops.value(),
                               m.stallCycles.value(),
                               fe->arrayAccounting());
        writeBuildInfoJson(jw, buildInfo());
        hc.writeJson(jw, "host");
        jw.beginObject("throughput");
        jw.field("wallSeconds", overall.wallSeconds);
        jw.field("cyclesPerSec", overall.cyclesPerSec);
        jw.field("uopsPerSec", overall.uopsPerSec);
        jw.field("recordsPerSec", overall.recordsPerSec);
        jw.endObject();
        if (profile) {
            jw.beginObject("profile");
            jw.field("totalEstimatedMs",
                     (double)prof.totalEstimatedNs() / 1e6);
            prof.writeJson(jw, "phases");
            jw.endObject();
        }
        if (perf) {
            jw.beginObject("perf");
            jw.field("available", perf_group.available());
            if (perf_group.available()) {
                jw.beginArray("events");
                for (const std::string &name :
                     perf_group.eventNames()) {
                    jw.field("", name);
                }
                jw.endArray();
                // Whole-run totals from one snapshot pair (covers
                // unsampled time too, unlike the phase estimates).
                const PerfDelta total = perf_group.delta(
                    perf_run_begin, perf_group.read());
                total.writeJson(jw, "total");
                prof.writePerfJson(jw, "phases");
            } else {
                jw.field("perfUnavailable",
                         perf_group.unavailableReason());
            }
            jw.endObject();
        }
        if (interrupted)
            jw.field("interrupted", true);
        if (!restore_from.empty())
            jw.field("restoredFrom", restore_from);
        if (checkpoint_at && fe->checkpointTaken() &&
            fe->checkpointStatus().isOk()) {
            jw.field("checkpointOut", ckpt_path);
        }
        if (auditor) {
            jw.field("auditViolations",
                     (uint64_t)auditor->violations().size());
            jw.field("auditGatedViolations",
                     (uint64_t)gated_violations);
        }
        if (injector)
            jw.field("injections", injector->injections());
        if (stats)
            fe->statRoot().dumpJson(jw, /*as_member=*/true);
        if (stats_layer) {
            stats_layer->writeStatsJson(jw);
            stats_layer->writePhasesJson(jw);
        }
        jw.endObject();
        if (auditor && !auditor->ok())
            auditor->report(std::cerr);
    } else {
        std::printf("%s on '%s' (%llu uops, %llu cycles)%s\n",
                    frontend.c_str(), trace_name.c_str(),
                    (unsigned long long)total_uops,
                    (unsigned long long)m.cycles.value(),
                    interrupted ? "  [interrupted, partial]" : "");
        std::printf("  bandwidth: %.2f uops/cycle   miss rate: "
                    "%.2f%%   overall: %.2f uops/cycle\n",
                    m.bandwidth(), 100.0 * m.missRate(),
                    m.overallIpc());
        if (injector) {
            std::printf("  injected %llu fault(s): %s\n",
                        (unsigned long long)injector->injections(),
                        injector->summary().c_str());
        }
        std::printf("  host: %.2fs wall, %.2fs cpu, %llu KiB peak "
                    "RSS, %.2f Muops/s\n",
                    overall.wallSeconds, hc.cpuSec(),
                    (unsigned long long)hc.maxRssKb,
                    overall.uopsPerSec / 1e6);
        if (profile)
            std::fputs(prof.render().c_str(), stdout);
        if (perf && perf_group.available()) {
            const PerfDelta total = perf_group.delta(
                perf_run_begin, perf_group.read());
            std::printf("  perf: IPC %.2f   cache MPKI %.2f   "
                        "branch miss %.2f%%   (counting %.0f%% of "
                        "enabled time)\n",
                        total.ipc(), total.cacheMpki(),
                        100.0 * total.branchMissRate(),
                        100.0 * total.multiplexFraction());
            std::printf("  %-24s %8s %10s %10s %10s\n", "phase",
                        "samples", "ipc", "cacheMPKI", "brMiss%");
            for (unsigned i = 0; i < prof.phases().size(); ++i) {
                const PerfDelta &d = prof.phasePerf(i);
                if (!d.samples)
                    continue;
                std::printf("  %-24s %8llu %10.2f %10.2f %10.2f\n",
                            prof.phases()[i].name.c_str(),
                            (unsigned long long)d.samples, d.ipc(),
                            d.cacheMpki(),
                            100.0 * d.branchMissRate());
            }
        } else if (perf) {
            std::printf("  perf: unavailable (%s)\n",
                        perf_group.unavailableReason().c_str());
        }
        if (auditor)
            auditor->report(std::cout);
        if (stats)
            fe->statRoot().dump(std::cout);
        if (stats && stats_layer)
            stats_layer->writeText(std::cout);
    }
    if (heartbeat) {
        heartbeat->setPhase("done");
        heartbeat->beat(fe.get(), /*done=*/true);
    }
    return exit_code;
}
