/**
 * @file
 * xbatchd - long-running sweep service. Owns a sweep directory
 * (journal + report + content-addressed result cache) and a Unix
 * socket; clients (xbatchctl) submit RunSpecs over the line-JSON
 * protocol and the daemon schedules them through the same
 * fault-tolerant supervisor as one-shot xbatch.
 *
 * Examples:
 *   xbatchd --socket=/tmp/xb.sock --dir=svc-out &
 *   xbatchctl --socket=/tmp/xb.sock submit --workload=gcc
 *   xbatchctl --socket=/tmp/xb.sock drain
 *
 * A submission is acked only after its journal record is fsync'd;
 * SIGKILL the daemon at any instant and a restart with the same
 * --dir resumes with every acked job intact. Duplicate submissions
 * (same canonical spec, workload content, build) simulate once and
 * are served from the cache, marked `cached` end to end.
 *
 * The crash-injection flags host the durability verification harness
 * (src/verify/crash_matrix.hh) in the shipped binary so CI chaos
 * jobs drive exactly the production write paths:
 *   xbatchd --list-crash-sites
 *   xbatchd --crash-matrix=/tmp/scratch
 *
 * Exit codes: 0 drained; 5 shutdown/signal (resumable); 1 bad
 * flags; 2 unusable state (socket, journal). --crash-matrix: 0 all
 * sites recovered, 3 otherwise.
 */

#include <cstdio>

#include "batch/scheduler.hh"
#include "common/args.hh"
#include "common/crashpoint.hh"
#include "common/fs.hh"
#include "common/signals.hh"
#include "common/status.hh"
#include "svc/daemon.hh"
#include "verify/crash_matrix.hh"

using namespace xbs;

namespace
{

/** Default the child binary to a sibling of this one. */
std::string
siblingXbsim(const char *argv0)
{
    std::string self(argv0);
    std::size_t slash = self.find_last_of('/');
    if (slash == std::string::npos)
        return "xbsim";  // rely on PATH
    return self.substr(0, slash + 1) + "xbsim";
}

int
fail(const Status &st)
{
    std::fprintf(stderr, "xbatchd: %s\n", st.toString().c_str());
    return kExitUsage;
}

/** Self-hosted crash matrix: re-exec this binary as the victim. */
int
runMatrix(const char *argv0, const std::string &scratch)
{
    std::vector<std::string> victim = {argv0,
                                       "--crash-victim={DIR}"};
    std::vector<CrashSiteResult> results =
        runCrashMatrix(victim, scratch);
    for (const CrashSiteResult &res : results) {
        std::fprintf(stderr, "xbatchd: crash site %-18s %s%s%s\n",
                     res.site.c_str(),
                     res.crashed && res.recovered ? "recovered"
                     : res.crashed               ? "NOT RECOVERED"
                                                 : "DID NOT CRASH",
                     res.detail.empty() ? "" : ": ",
                     res.detail.c_str());
    }
    std::fprintf(stderr, "xbatchd: crash matrix: %zu sites, %s\n",
                 results.size(),
                 crashMatrixPassed(results) ? "all recovered"
                                            : "FAILED");
    return crashMatrixPassed(results) ? kExitOk : kExitAudit;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string dir = "xbatchd-out";
    std::string cache_dir;
    bool no_cache = false;
    uint64_t jobs = 2;
    double timeout = 300.0;
    uint64_t retries = 1;
    uint64_t backoff_ms = 200;
    double grace = 2.0;
    double heartbeat = 1.0;
    uint64_t stall_periods = 4;
    uint64_t poll_ms = 10;
    bool perf = false;
    std::string xbsim_path;
    bool list_sites = false;
    std::string crash_victim_dir;
    std::string crash_matrix_scratch;

    ArgParser args("xbatchd",
                   "sweep service daemon (submit jobs via xbatchctl)");
    args.addString("socket", &socket_path,
                   "Unix socket to listen on (default: "
                   "<dir>/xbatchd.sock)");
    args.addString("dir", &dir,
                   "service sweep directory (journal, report); a "
                   "pre-existing journal resumes");
    args.addString("cache-dir", &cache_dir,
                   "content-addressed result cache root (default: "
                   "<dir>/cache)");
    args.addBool("no-cache", &no_cache,
                 "disable the result cache (every submission "
                 "simulates)");
    args.addUint("jobs", &jobs, "concurrent worker processes");
    args.addDouble("timeout", &timeout,
                   "per-job wall-clock timeout in seconds");
    args.addUint("retries", &retries,
                 "extra attempts for transient failures");
    args.addUint("backoff-ms", &backoff_ms,
                 "base retry backoff in ms (doubles per attempt)");
    args.addDouble("grace", &grace,
                   "seconds between SIGTERM and SIGKILL");
    args.addDouble("heartbeat", &heartbeat,
                   "child heartbeat period in seconds (0 = off)");
    args.addUint("stall-periods", &stall_periods,
                 "heartbeat periods without progress before a kill");
    args.addUint("poll-ms", &poll_ms,
                 "socket poll / scheduler step interval");
    args.addBool("perf", &perf,
                 "run children with --perf: per-job host "
                 "microarchitecture counters in the journal and "
                 "report (graceful where perf_event_open is "
                 "unavailable)");
    args.addString("xbsim", &xbsim_path,
                   "xbsim binary (default: next to xbatchd)");
    args.addBool("list-crash-sites", &list_sites,
                 "print the registered crash-point sites and exit");
    args.addString("crash-victim", &crash_victim_dir,
                   "run the crash-matrix victim body against this "
                   "directory (internal; used with XBATCH_CRASH_AT)");
    args.addString("crash-matrix", &crash_matrix_scratch,
                   "run the whole crash-point recovery matrix in "
                   "this scratch directory and exit");
    if (!args.parse(argc, argv))
        return 0;
    if (!args.positional().empty()) {
        return fail(Status::error("unexpected argument '" +
                                  args.positional()[0] + "'"));
    }

    if (list_sites) {
        for (const std::string &site : crashPointSites())
            std::printf("%s\n", site.c_str());
        return kExitOk;
    }
    if (!crash_victim_dir.empty())
        return crashVictimMain(crash_victim_dir);
    if (!crash_matrix_scratch.empty())
        return runMatrix(argv[0], crash_matrix_scratch);

    if (jobs == 0)
        return fail(Status::error("--jobs must be >= 1"));

    DaemonOptions opts;
    opts.dir = dir;
    opts.socketPath = socket_path.empty() ? dir + "/xbatchd.sock"
                                          : socket_path;
    if (!no_cache)
        opts.cacheDir = cache_dir.empty() ? dir + "/cache"
                                          : cache_dir;
    opts.sched.xbsimPath = xbsim_path.empty()
                               ? siblingXbsim(argv[0])
                               : xbsim_path;
    opts.sched.workers = (unsigned)jobs;
    opts.sched.timeoutSec = timeout;
    opts.sched.maxRetries = (unsigned)retries;
    opts.sched.backoffMs = (unsigned)backoff_ms;
    opts.sched.graceSec = grace;
    opts.sched.pollMs = (unsigned)poll_ms;
    if (heartbeat > 0.0) {
        if (Status st = ensureDir(dir); !st.isOk())
            return fail(st);
        if (Status st = ensureDir(dir + "/heartbeats"); !st.isOk())
            return fail(st);
        opts.sched.heartbeatDir = dir + "/heartbeats";
        opts.sched.heartbeatSec = heartbeat;
        opts.sched.stallPeriods = (unsigned)stall_periods;
    }
    if (perf) {
        opts.sched.extraArgs = [](const JobSpec &, int) {
            return std::vector<std::string>{"--perf"};
        };
    }

    SweepDaemon daemon(std::move(opts));
    if (Status st = daemon.open(); !st.isOk()) {
        std::fprintf(stderr, "xbatchd: %s\n", st.toString().c_str());
        return kExitData;
    }
    installStopHandlers(daemon.stopFlagAddr());
    std::fprintf(stderr, "xbatchd: serving %s (dir %s, %u workers)\n",
                 daemon.socketPath().c_str(), dir.c_str(),
                 (unsigned)jobs);
    int rc = daemon.runLoop();
    resetStopHandlers();
    return rc;
}
