#!/usr/bin/env python3
"""Validate a JSON document against a small JSON Schema subset.

Stdlib-only (CI must not install packages). Supported keywords:
type (object/array/string/integer/number/boolean/null), properties,
required, items, enum, additionalProperties (schema form), minimum.
Unknown keywords are ignored, so the checked-in schemas stay readable
by full validators too.

Usage: validate_schema.py SCHEMA.json DOC.json
Exit: 0 valid, 1 invalid or unreadable.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(kind, value):
    if kind == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool)
    expected = TYPES.get(kind)
    if expected is None:
        return True  # unknown type name: don't reject
    if expected is dict or expected is list:
        return isinstance(value, expected)
    # bool is a subclass of int; keep string/bool checks exact.
    return type(value) is expected


def validate(schema, value, path, errors):
    kind = schema.get("type")
    if kind is not None and not type_ok(kind, value):
        errors.append("%s: expected %s, got %s" %
                      (path, kind, type(value).__name__))
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" %
                      (path, value, schema["enum"]))

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append("%s: %r below minimum %r" %
                          (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required member '%s'" %
                              (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, member in value.items():
            sub = props.get(key)
            if sub is None and isinstance(extra, dict):
                sub = extra
            if sub is not None:
                validate(sub, member, "%s.%s" % (path, key), errors)

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                validate(items, item, "%s[%d]" % (path, i), errors)


def main(argv):
    if len(argv) != 3:
        print("usage: validate_schema.py SCHEMA.json DOC.json",
              file=sys.stderr)
        return 1
    try:
        with open(argv[1]) as f:
            schema = json.load(f)
        with open(argv[2]) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print("validate_schema: %s" % e, file=sys.stderr)
        return 1

    errors = []
    validate(schema, doc, "$", errors)
    for err in errors:
        print("validate_schema: %s: %s" % (argv[2], err),
              file=sys.stderr)
    if not errors:
        print("%s: valid against %s" % (argv[2], argv[1]))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
