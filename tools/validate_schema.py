#!/usr/bin/env python3
"""Validate a JSON document against a small JSON Schema subset.

Stdlib-only (CI must not install packages). Supported keywords:
type (object/array/string/integer/number/boolean/null), properties,
required, items, enum, additionalProperties (schema form), minimum.
Unknown keywords are ignored, so the checked-in schemas stay readable
by full validators too.

Usage: validate_schema.py [--jsonl] SCHEMA.json DOC.json
With --jsonl, DOC is a JSON-Lines stream and every non-empty line is
validated against the schema independently (interval streams).
Exit: 0 valid, 1 invalid or unreadable.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(kind, value):
    if kind == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool)
    expected = TYPES.get(kind)
    if expected is None:
        return True  # unknown type name: don't reject
    if expected is dict or expected is list:
        return isinstance(value, expected)
    # bool is a subclass of int; keep string/bool checks exact.
    return type(value) is expected


def validate(schema, value, path, errors):
    kind = schema.get("type")
    if kind is not None and not type_ok(kind, value):
        errors.append("%s: expected %s, got %s" %
                      (path, kind, type(value).__name__))
        return

    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in enum %r" %
                      (path, value, schema["enum"]))

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append("%s: %r below minimum %r" %
                          (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required member '%s'" %
                              (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, member in value.items():
            sub = props.get(key)
            if sub is None and isinstance(extra, dict):
                sub = extra
            if sub is not None:
                validate(sub, member, "%s.%s" % (path, key), errors)

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                validate(items, item, "%s[%d]" % (path, i), errors)


def main(argv):
    jsonl = False
    args = argv[1:]
    if args and args[0] == "--jsonl":
        jsonl = True
        args = args[1:]
    if len(args) != 2:
        print("usage: validate_schema.py [--jsonl] SCHEMA.json "
              "DOC.json", file=sys.stderr)
        return 1
    schema_path, doc_path = args
    try:
        with open(schema_path) as f:
            schema = json.load(f)
        with open(doc_path) as f:
            text = f.read()
    except (OSError, ValueError) as e:
        print("validate_schema: %s" % e, file=sys.stderr)
        return 1

    errors = []
    if jsonl:
        lines = 0
        for i, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError as e:
                errors.append("line %d: %s" % (i, e))
                continue
            lines += 1
            validate(schema, doc, "line %d $" % i, errors)
        if lines == 0 and not errors:
            errors.append("no JSON lines found")
    else:
        try:
            doc = json.loads(text)
        except ValueError as e:
            print("validate_schema: %s" % e, file=sys.stderr)
            return 1
        validate(schema, doc, "$", errors)

    for err in errors:
        print("validate_schema: %s: %s" % (doc_path, err),
              file=sys.stderr)
    if not errors:
        print("%s: valid against %s" % (doc_path, schema_path))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
