/**
 * @file
 * xbatch - fault-tolerant parallel sweep driver: runs the workload x
 * frontend (x capacity) matrix as isolated xbsim child processes
 * under a supervisor with a bounded worker pool, per-job timeouts,
 * bounded retries with exponential backoff, and a crash-safe journal
 * that makes an interrupted (or SIGKILLed) sweep resumable.
 *
 * Examples:
 *   xbatch --workloads=gcc,go,li --frontends=tc,xbc --jobs=4
 *   xbatch --capacities=16384,32768,65536 --out=sweep
 *   xbatch --resume=sweep
 *
 * Exit codes: 0 every job ok; 4 sweep completed but some jobs failed
 * (degraded success: the report still covers the whole matrix); 5 the
 * sweep itself was interrupted (SIGINT/SIGTERM; resume to continue).
 */

#include <cstdio>
#include <iostream>

#include "batch/job.hh"
#include "batch/journal.hh"
#include "batch/report.hh"
#include "batch/result_cache.hh"
#include "batch/scheduler.hh"
#include "common/args.hh"
#include "common/fs.hh"
#include "common/signals.hh"
#include "common/status.hh"
#include "obs/span.hh"
#include "obs/trace_merge.hh"
#include "prof/build_info.hh"
#include "workload/catalog.hh"

using namespace xbs;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

/** Default the child binary to a sibling of this one. */
std::string
siblingXbsim(const char *argv0)
{
    std::string self(argv0);
    std::size_t slash = self.find_last_of('/');
    if (slash == std::string::npos)
        return "xbsim";  // rely on PATH
    return self.substr(0, slash + 1) + "xbsim";
}

Expected<std::vector<uint64_t>>
parseCapacityList(const std::string &csv)
{
    std::vector<uint64_t> out;
    for (const std::string &item : splitList(csv)) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(item.c_str(), &end, 0);
        if (end == item.c_str() || *end != '\0' || v == 0) {
            return Status::error("bad capacity '" + item +
                                 "' in --capacities");
        }
        out.push_back((uint64_t)v);
    }
    return out;
}

int
fail(const Status &st)
{
    std::fprintf(stderr, "xbatch: %s\n", st.toString().c_str());
    return kExitUsage;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workloads_csv;
    std::string frontends_csv = "ic,dc,tc,bbtc,xbc";
    std::string capacities_csv = "32768";
    uint64_t insts = 0;
    uint64_t intervals = 0;
    uint64_t jobs = 2;
    double timeout = 300.0;
    uint64_t retries = 1;
    uint64_t backoff_ms = 200;
    double grace = 2.0;
    double heartbeat = 1.0;
    uint64_t stall_periods = 4;
    std::string trace_out;
    std::string out_dir = "xbatch-out";
    std::string resume_dir;
    std::string xbsim_path;
    std::string cache_dir;
    bool perf = false;
    bool print_table = true;

    ArgParser args("xbatch",
                   "fault-tolerant parallel sweep driver for xbsim");
    args.addString("workloads", &workloads_csv,
                   "comma-separated workload names (default: whole "
                   "catalog)");
    args.addString("frontends", &frontends_csv,
                   "comma-separated frontends to sweep");
    args.addString("capacities", &capacities_csv,
                   "comma-separated capacities in uops");
    args.addUint("insts", &insts,
                 "instructions per job (0 = xbsim default)");
    args.addUint("intervals", &intervals,
                 "per-job interval-stats window in cycles, written "
                 "to <out>/intervals/job-<id>.jsonl (0 = off)");
    args.addUint("jobs", &jobs, "concurrent worker processes");
    args.addDouble("timeout", &timeout,
                   "per-job wall-clock timeout in seconds");
    args.addUint("retries", &retries,
                 "extra attempts for transient failures");
    args.addUint("backoff-ms", &backoff_ms,
                 "base retry backoff in ms (doubles per attempt)");
    args.addDouble("grace", &grace,
                   "seconds between SIGTERM and SIGKILL");
    args.addDouble("heartbeat", &heartbeat,
                   "child heartbeat period in seconds; arms the "
                   "progress-aware stall detector (0 = off, "
                   "wall-clock watchdog only)");
    args.addUint("stall-periods", &stall_periods,
                 "heartbeat periods without uop progress before a "
                 "job is killed and retried as stalled");
    args.addString("trace-out", &trace_out,
                   "write a merged Perfetto span timeline "
                   "(scheduler/jobs/attempts/sim phases) here");
    args.addString("out", &out_dir,
                   "sweep directory (manifest, journal, report)");
    args.addString("resume", &resume_dir,
                   "resume an interrupted sweep from its directory");
    args.addString("xbsim", &xbsim_path,
                   "xbsim binary (default: next to xbatch)");
    args.addString("cache-dir", &cache_dir,
                   "content-addressed result cache: jobs whose "
                   "(spec, workload content, build) key hits are "
                   "served as `cached` without simulating; Ok runs "
                   "store their entries (empty = off)");
    args.addBool("perf", &perf,
                 "run children with --perf: host microarchitecture "
                 "counters (IPC, cache/branch MPKI) captured per job "
                 "into the journal and report.json; degrades "
                 "gracefully where perf_event_open is unavailable");
    args.addBool("print", &print_table,
                 "print the per-job result table");
    if (!args.parse(argc, argv))
        return 0;
    if (!args.positional().empty()) {
        return fail(Status::error("unexpected argument '" +
                                  args.positional()[0] + "'"));
    }
    if (jobs == 0)
        return fail(Status::error("--jobs must be >= 1"));

    const bool resuming = !resume_dir.empty();
    const std::string dir = resuming ? resume_dir : out_dir;

    SweepManifest manifest;
    std::vector<JournalEvent> replayed;
    if (resuming) {
        // The manifest is the source of truth for the matrix and the
        // supervision parameters, so a resumed sweep is the same
        // sweep (CLI sweep flags are ignored on purpose).
        Expected<SweepManifest> m = SweepJournal::readManifest(dir);
        if (!m.ok())
            return fail(m.status());
        manifest = m.take();
        Expected<std::vector<JournalEvent>> ev =
            SweepJournal::replay(dir);
        if (!ev.ok())
            return fail(ev.status());
        replayed = ev.take();
    } else {
        std::vector<std::string> workloads = splitList(workloads_csv);
        if (workloads.empty())
            workloads = catalogWorkloadNames();
        for (const std::string &w : workloads) {
            if (Expected<const CatalogEntry *> e = findWorkloadEx(w);
                !e.ok()) {
                return fail(e.status());
            }
        }
        std::vector<std::string> frontends = splitList(frontends_csv);
        if (frontends.empty())
            return fail(Status::error("--frontends is empty"));
        for (const std::string &f : frontends) {
            if (Expected<FrontendKind> k = parseFrontendKind(f);
                !k.ok()) {
                return fail(k.status());
            }
        }
        Expected<std::vector<uint64_t>> capacities =
            parseCapacityList(capacities_csv);
        if (!capacities.ok())
            return fail(capacities.status());
        if (capacities.value().empty())
            return fail(Status::error("--capacities is empty"));

        manifest.xbsim = xbsim_path.empty() ? siblingXbsim(argv[0])
                                            : xbsim_path;
        manifest.workers = (unsigned)jobs;
        manifest.timeoutSec = timeout;
        manifest.maxRetries = (unsigned)retries;
        manifest.backoffMs = (unsigned)backoff_ms;
        manifest.intervalCycles = intervals;
        manifest.heartbeatSec = heartbeat;
        manifest.stallPeriods = (unsigned)stall_periods;
        manifest.perf = perf;
        manifest.jobs = buildJobMatrix(workloads, frontends,
                                       capacities.value(), insts);

        if (Status st = ensureDir(dir); !st.isOk())
            return fail(st);
        if (Status st = SweepJournal::writeManifest(dir, manifest);
            !st.isOk()) {
            return fail(st);
        }
    }

    // Interval capture: each child streams its windows to its own
    // file under <dir>/intervals (resume reuses the manifest's
    // window so replayed and fresh jobs observe alike).
    if (manifest.intervalCycles) {
        if (Status st = ensureDir(dir + "/intervals"); !st.isOk())
            return fail(st);
    }
    // Live telemetry: children heartbeat into <dir>/heartbeats
    // (xbtop and the stall detector read them there). The manifest
    // gates it so a resume supervises exactly like the original run.
    if (manifest.heartbeatSec > 0.0) {
        if (Status st = ensureDir(dir + "/heartbeats"); !st.isOk())
            return fail(st);
    }
    // Span timeline: per-attempt child event traces land in
    // <dir>/events, merged with the scheduler spans at the end.
    if (!trace_out.empty()) {
        if (Status st = ensureDir(dir + "/events"); !st.isOk())
            return fail(st);
    }

    SweepJournal journal;
    if (Status st = journal.open(dir); !st.isOk())
        return fail(st);

    ResultCache cache;
    const bool caching = !cache_dir.empty();
    if (caching) {
        if (Status st = cache.open(cache_dir); !st.isOk())
            return fail(st);
    }

    installStopHandlers(&g_stop);

    SchedulerOptions opts;
    opts.xbsimPath = manifest.xbsim;
    opts.workers = manifest.workers;
    opts.timeoutSec = manifest.timeoutSec;
    opts.maxRetries = manifest.maxRetries;
    opts.backoffMs = manifest.backoffMs;
    opts.graceSec = grace;
    opts.stopFlag = &g_stop;
    if (caching)
        opts.cache = &cache;
    if (manifest.heartbeatSec > 0.0) {
        opts.heartbeatDir = dir + "/heartbeats";
        opts.heartbeatSec = manifest.heartbeatSec;
        opts.stallPeriods = manifest.stallPeriods;
    }
    SweepSpanLog span_log;
    if (!trace_out.empty())
        opts.spanLog = &span_log;
    if (manifest.intervalCycles || manifest.perf ||
        !trace_out.empty()) {
        const uint64_t window = manifest.intervalCycles;
        const bool events = !trace_out.empty();
        // --perf rides on extraArgs, not RunSpec, so cache keys stay
        // stable: host counters never change the simulated result.
        const bool child_perf = manifest.perf;
        opts.extraArgs = [dir, window, events,
                          child_perf](const JobSpec &spec,
                                      int attempt) {
            std::vector<std::string> extra;
            if (window) {
                extra.push_back("--interval-stats=" +
                                std::to_string(window));
                extra.push_back("--interval-out=" + dir +
                                "/intervals/job-" +
                                std::to_string(spec.id) + ".jsonl");
            }
            if (events) {
                extra.push_back("--trace-events=" + dir +
                                "/events/job-" +
                                std::to_string(spec.id) + "-a" +
                                std::to_string(attempt) + ".json");
            }
            if (child_perf)
                extra.push_back("--perf");
            return extra;
        };
    }
    const std::size_t total = manifest.jobs.size();
    opts.onFinal = [total](const JobRecord &rec) {
        if (rec.replayed)
            return;
        std::fprintf(stderr, "xbatch: [%s] %s (%.1fs)\n",
                     jobClassName(rec.cls),
                     rec.spec.run.label().c_str(), rec.seconds);
        (void)total;
    };

    SweepScheduler sched(opts, manifest.jobs, &journal);
    if (resuming) {
        journal.seedSeq(sched.restore(replayed));
        std::fprintf(stderr,
                     "xbatch: resuming %s: %zu/%zu jobs already "
                     "done\n",
                     dir.c_str(), sched.doneCount(), total);
    } else {
        std::fprintf(stderr,
                     "xbatch: %zu jobs, %u workers, %.0fs timeout "
                     "-> %s\n",
                     total, opts.workers, opts.timeoutSec,
                     dir.c_str());
    }

    const auto t0 = std::chrono::steady_clock::now();
    sched.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - t0).count();
    resetStopHandlers();

    SweepSummary summary =
        summarizeSweep(sched.records(), sched.interrupted(),
                       sched.totalRetries(), wall);
    SweepReportInfo report_info;
    report_info.hasBuild = true;
    report_info.build = buildInfo();
    report_info.intervalCycles = manifest.intervalCycles;
    if (Status st = writeSweepReport(dir, sched.records(), summary,
                                     report_info);
        !st.isOk()) {
        std::fprintf(stderr, "xbatch: cannot write report: %s\n",
                     st.toString().c_str());
    }
    if (print_table)
        printSweepSummary(std::cout, sched.records(), summary);

    if (!trace_out.empty()) {
        if (Status st = writeSweepTrace(trace_out, span_log,
                                        dir + "/events");
            !st.isOk()) {
            std::fprintf(stderr,
                         "xbatch: cannot write sweep trace: %s\n",
                         st.toString().c_str());
        } else {
            std::fprintf(stderr, "xbatch: sweep timeline -> %s\n",
                         trace_out.c_str());
        }
    }

    // Graceful degradation: a completed sweep always produces the
    // full report; failures degrade the exit code, never abort the
    // matrix.
    if (sched.interrupted())
        return kExitInterrupted;
    return sched.allOk() ? kExitOk : kExitDegraded;
}
