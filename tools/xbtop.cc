/**
 * @file
 * xbtop - live view of a running (or crashed) sweep directory.
 *
 * Attaches strictly read-only: the manifest gives the matrix, a
 * journal replay gives finished jobs and consumed attempts, and the
 * per-job heartbeat files give the live children's progress. Nothing
 * here coordinates with the supervisor, so xbtop works identically
 * on a sweep that is mid-flight, finished, or whose supervisor was
 * SIGKILLed an hour ago — the "is it hung or just slow?" question is
 * answered from the same evidence the stall detector uses.
 *
 * Examples:
 *   xbtop sweep-dir                 # refreshing terminal view
 *   xbtop sweep-dir --once          # one table, then exit
 *   xbtop sweep-dir --once --json   # machine-readable snapshot (CI)
 *
 * Exit codes: 0 snapshot rendered; 1 unusable sweep directory.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>

#include <sys/stat.h>
#include <time.h>

#include "batch/journal.hh"
#include "batch/report.hh"
#include "batch/scheduler.hh"
#include "common/args.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/signals.hh"
#include "common/table.hh"
#include "obs/heartbeat.hh"
#include "obs/stats/stream_stats.hh"

using namespace xbs;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

/** Age of @p path in seconds (negative if it cannot be stat'ed). */
double
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    double age = (double)(now.tv_sec - st.st_mtim.tv_sec) +
                 (double)(now.tv_nsec - st.st_mtim.tv_nsec) * 1e-9;
    return age < 0.0 ? 0.0 : age;
}

/** One job's merged view: journal state + live heartbeat. */
struct JobView
{
    const JobRecord *rec = nullptr;
    bool hasHb = false;
    HeartbeatRecord hb;
    double hbAge = -1.0;
    std::string state;  ///< ok|usage|...|running|stalled|pending
};

struct Snapshot
{
    SweepManifest manifest;
    bool hasManifest = true;  ///< false: xbatchd service dir
    std::vector<JobRecord> records;
    std::vector<JobView> jobs;
    unsigned retries = 0;
    std::size_t done = 0, ok = 0, failed = 0, cachedJobs = 0;
    std::size_t running = 0, stalledJobs = 0, pendingJobs = 0;
    uint64_t progressUops = 0;
    uint64_t estTotalUops = 0;
    double uopsPerSec = 0.0;
    double etaSeconds = -1.0;  ///< negative: unknown
    /// @{ Filled by the refresh loop, not takeSnapshot: EWMA-smoothed
    ///    aggregate rate (first sample: the raw rate), the ETA derived
    ///    from it, and a t-interval over the raw rate samples seen so
    ///    far this viewing session (0 until two refreshes).
    double uopsPerSecSmoothed = 0.0;
    double etaSecondsSmoothed = -1.0;
    double uopsPerSecCi95 = 0.0;
    /// @}
};

/**
 * Build one consistent snapshot from the directory. Every read is
 * individually torn-tolerant (atomic heartbeats, journal tail
 * tolerance), so racing the live supervisor is safe.
 */
Expected<Snapshot>
takeSnapshot(const std::string &dir)
{
    Snapshot snap;
    if (pathExists(SweepJournal::manifestPath(dir))) {
        Expected<SweepManifest> m = SweepJournal::readManifest(dir);
        if (!m.ok())
            return m.status();
        snap.manifest = m.take();
    } else if (pathExists(SweepJournal::journalPath(dir))) {
        // A service sweep (xbatchd) has no manifest: the journal's
        // Submit events are the matrix, and the replay fold below
        // reconstructs every record from them. Supervision settings
        // fall back to the manifest defaults for display.
        snap.hasManifest = false;
    } else {
        return Status::error("not a sweep directory (no manifest, "
                             "no journal)").withFile(dir);
    }

    Expected<std::vector<JournalEvent>> ev = SweepJournal::replay(dir);
    if (!ev.ok())
        return ev.status();

    // Reuse the supervisor's replay fold (journal-less, read-only)
    // so xbtop and --resume always agree on what is finished.
    SweepScheduler replayer(SchedulerOptions{}, snap.manifest.jobs,
                            nullptr);
    replayer.restore(ev.value());
    snap.records = replayer.records();
    for (const JournalEvent &e : ev.value()) {
        if (e.kind == JournalEvent::Kind::Result &&
            jobClassRetryable(e.cls)) {
            ++snap.retries;
        }
    }

    const double hb_sec = snap.manifest.heartbeatSec > 0.0
                              ? snap.manifest.heartbeatSec
                              : 1.0;
    const double stall_after =
        hb_sec * (snap.manifest.stallPeriods
                      ? snap.manifest.stallPeriods
                      : 4);

    uint64_t known_total = 0;
    std::size_t known_jobs = 0;
    for (const JobRecord &rec : snap.records) {
        JobView view;
        view.rec = &rec;
        const std::string hb_path = dir + "/heartbeats/job-" +
                                    std::to_string(rec.spec.id) +
                                    ".json";
        if (Expected<HeartbeatRecord> hb = readHeartbeat(hb_path);
            hb.ok()) {
            view.hasHb = true;
            view.hb = hb.take();
            view.hbAge = fileAgeSeconds(hb_path);
        }

        if (rec.done) {
            // Cache hits get their own phase: the row's `seconds`
            // is the hit-serve latency, not a simulation time.
            view.state = rec.cached && rec.cls == JobClass::Ok
                             ? "cached"
                             : jobClassName(rec.cls);
            ++snap.done;
            if (rec.cached)
                ++snap.cachedJobs;
            if (rec.cls == JobClass::Ok) {
                ++snap.ok;
                snap.progressUops += rec.metrics.totalUops;
                known_total += rec.metrics.totalUops;
                ++known_jobs;
            } else {
                ++snap.failed;
            }
        } else if (view.hasHb && !view.hb.done &&
                   view.hbAge >= 0.0 && view.hbAge < stall_after) {
            view.state = "running";
            ++snap.running;
            snap.progressUops += view.hb.uops;
            snap.uopsPerSec += view.hb.uopsPerSec;
            if (view.hb.totalUops) {
                known_total += view.hb.totalUops;
                ++known_jobs;
            }
        } else if (view.hasHb && !view.hb.done) {
            // A heartbeat exists but went quiet: dead supervisor,
            // dead child, or a child the detector is about to kill.
            view.state = "stalled";
            ++snap.stalledJobs;
        } else {
            // Includes hb.done with no journal final (supervisor
            // died between the child's exit and the journal write):
            // the job will be re-run on resume.
            view.state = "pending";
            ++snap.pendingJobs;
        }
        snap.jobs.push_back(std::move(view));
    }

    // Estimate the sweep total: jobs with an unknown length get the
    // average of the known ones (same workload mix, so a fair
    // prior); no known lengths means no estimate.
    if (known_jobs) {
        const uint64_t avg = known_total / known_jobs;
        snap.estTotalUops = known_total +
                            avg * (uint64_t)(snap.records.size() -
                                             known_jobs);
    }
    if (snap.estTotalUops > snap.progressUops &&
        snap.uopsPerSec > 0.0) {
        snap.etaSeconds =
            (double)(snap.estTotalUops - snap.progressUops) /
            snap.uopsPerSec;
    }
    return snap;
}

void
writeSnapshotJson(std::ostream &os, const std::string &dir,
                  const Snapshot &snap)
{
    JsonWriter jw(os, /*pretty=*/true);
    jw.beginObject();
    // Version 3: per-job "restoredFrom" (warm starts) and the
    // "restore" heartbeat phase. Version 4: per-job host perf
    // counters (hostIpc/hostCacheMpki/hostBranchMissRate) for jobs
    // that ran --perf with counters available. Version 5: EWMA-
    // smoothed rate/ETA alongside the raw ones, a t-interval on the
    // rate samples, and per-job statsPhase (src/obs/stats phase ID).
    jw.field("version", (uint64_t)5);
    jw.field("dir", dir);
    jw.field("service", !snap.hasManifest);
    jw.field("workers", (uint64_t)snap.manifest.workers);
    jw.field("heartbeatSec", snap.manifest.heartbeatSec);
    jw.field("stallPeriods", (uint64_t)snap.manifest.stallPeriods);
    jw.beginObject("jobs");
    jw.field("total", (uint64_t)snap.records.size());
    jw.field("done", (uint64_t)snap.done);
    jw.field("ok", (uint64_t)snap.ok);
    jw.field("cached", (uint64_t)snap.cachedJobs);
    jw.field("failed", (uint64_t)snap.failed);
    jw.field("running", (uint64_t)snap.running);
    jw.field("stalled", (uint64_t)snap.stalledJobs);
    jw.field("pending", (uint64_t)snap.pendingJobs);
    jw.endObject();
    jw.field("retries", (uint64_t)snap.retries);
    jw.beginObject("progress");
    jw.field("uops", snap.progressUops);
    jw.field("estTotalUops", snap.estTotalUops);
    jw.field("ratio", snap.estTotalUops
                          ? std::min(1.0, (double)snap.progressUops /
                                              (double)snap.estTotalUops)
                          : 0.0);
    jw.field("uopsPerSec", snap.uopsPerSec);
    jw.field("etaSeconds", snap.etaSeconds);
    jw.field("uopsPerSecSmoothed", snap.uopsPerSecSmoothed);
    jw.field("etaSecondsSmoothed", snap.etaSecondsSmoothed);
    jw.field("uopsPerSecCi95", snap.uopsPerSecCi95);
    jw.endObject();
    jw.beginArray("perJob");
    for (const JobView &view : snap.jobs) {
        const JobRecord &rec = *view.rec;
        jw.beginObject();
        jw.field("id", (uint64_t)rec.spec.id);
        jw.field("label", rec.spec.run.label());
        jw.field("state", view.state);
        jw.field("cached", rec.cached);
        jw.field("attempts", (uint64_t)rec.attempts);
        if (view.hasHb) {
            jw.field("phase", view.hb.phase);
            jw.field("uops", view.hb.uops);
            jw.field("totalUops", view.hb.totalUops);
            jw.field("uopsPerSec", view.hb.uopsPerSec);
            jw.field("rssKb", view.hb.rssKb);
            jw.field("heartbeatSeq", view.hb.seq);
            jw.field("ageSeconds", view.hbAge);
            if (view.hb.statsPhase >= 0)
                jw.field("statsPhase", (int64_t)view.hb.statsPhase);
            if (!view.hb.restoredFrom.empty())
                jw.field("restoredFrom", view.hb.restoredFrom);
        }
        if (rec.done)
            jw.field("seconds", rec.seconds);
        if (rec.hasPerf) {
            jw.field("hostIpc", rec.perf.ipc());
            jw.field("hostCacheMpki", rec.perf.cacheMpki());
            jw.field("hostBranchMissRate", rec.perf.branchMissRate());
        }
        if (!rec.note.empty())
            jw.field("note", rec.note);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
}

void
renderTable(std::ostream &os, const std::string &dir,
            const Snapshot &snap)
{
    std::ostringstream head;
    head << "sweep " << dir << ": " << snap.done << "/"
         << snap.records.size() << " done (" << snap.ok << " ok, "
         << snap.cachedJobs << " cached, " << snap.failed
         << " failed), " << snap.running
         << " running, " << snap.stalledJobs << " stalled, "
         << snap.pendingJobs << " pending, " << snap.retries
         << " retries\n";
    if (snap.estTotalUops) {
        head << "progress: "
             << TextTable::pct((double)snap.progressUops /
                               (double)snap.estTotalUops)
             << " of ~" << snap.estTotalUops << " uops";
        if (snap.uopsPerSecSmoothed > 0.0) {
            head << " at "
                 << TextTable::num(snap.uopsPerSecSmoothed / 1e6, 2)
                 << " Muops/s";
            if (snap.uopsPerSecCi95 > 0.0) {
                head << " +-"
                     << TextTable::num(snap.uopsPerSecCi95 / 1e6, 2);
            }
        }
        if (snap.etaSecondsSmoothed >= 0.0) {
            head << ", ETA "
                 << TextTable::num(snap.etaSecondsSmoothed, 0) << "s";
        }
        head << "\n";
    }
    os << head.str() << "\n";

    // Host perf columns only earn their width when some job carries
    // counters (--perf sweep on a host with a PMU).
    bool any_perf = false;
    for (const JobView &view : snap.jobs)
        any_perf = any_perf || view.rec->hasPerf;

    std::vector<std::string> header{"job", "label", "state", "att",
                                    "phase", "sPh", "uops", "rate",
                                    "rss", "beat"};
    if (any_perf) {
        header.push_back("hIPC");
        header.push_back("hMPKI");
    }
    TextTable table(header);
    for (const JobView &view : snap.jobs) {
        const JobRecord &rec = *view.rec;
        // Keep the table focused on live rows unless the sweep is
        // small; finished jobs are summarized above.
        if (rec.done && snap.records.size() > 16)
            continue;
        std::vector<std::string> row;
        row.push_back(std::to_string(rec.spec.id));
        row.push_back(rec.spec.run.label());
        row.push_back(view.state);
        row.push_back(std::to_string(rec.attempts));
        if (view.hasHb && !rec.done) {
            row.push_back(view.hb.phase);
            row.push_back(view.hb.statsPhase >= 0
                              ? "P" + std::to_string(
                                          view.hb.statsPhase)
                              : "-");
            row.push_back(std::to_string(view.hb.uops));
            row.push_back(
                TextTable::num(view.hb.uopsPerSec / 1e6, 2) + "M/s");
            row.push_back(std::to_string(view.hb.rssKb) + "K");
            row.push_back(TextTable::num(view.hbAge, 1) + "s");
        } else {
            row.push_back("-");
            row.push_back("-");
            row.push_back(rec.done && rec.hasMetrics
                              ? std::to_string(
                                    rec.metrics.totalUops)
                              : "-");
            row.push_back("-");
            row.push_back("-");
            row.push_back("-");
        }
        if (any_perf) {
            if (rec.hasPerf) {
                row.push_back(TextTable::num(rec.perf.ipc(), 2));
                row.push_back(
                    TextTable::num(rec.perf.cacheMpki(), 2));
            } else {
                row.push_back("-");
                row.push_back("-");
            }
        }
        table.addRow(std::move(row));
    }
    if (table.numRows())
        os << table.render();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string dir;
    bool once = false;
    bool json = false;
    double refresh = 1.0;

    ArgParser args("xbtop",
                   "live progress view of an xbatch sweep directory");
    args.addString("dir", &dir, "sweep directory (or positional)");
    args.addBool("once", &once, "render one snapshot and exit");
    args.addBool("json", &json,
                 "emit the snapshot as JSON (implies --once)");
    args.addDouble("refresh", &refresh,
                   "seconds between refreshes (live mode)");
    if (!args.parse(argc, argv))
        return 0;
    if (dir.empty() && !args.positional().empty())
        dir = args.positional()[0];
    if (dir.empty()) {
        std::fprintf(stderr,
                     "xbtop: no sweep directory (pass it as the "
                     "first argument)\n");
        return 1;
    }
    if (json)
        once = true;
    if (refresh < 0.1)
        refresh = 0.1;

    installStopHandlers(&g_stop);
    // Refresh-to-refresh state: an EWMA over the aggregate rate (so
    // the ETA stops whipsawing with scheduler noise) and a StreamStat
    // over the raw samples for a +-CI on the displayed throughput.
    // With --once there is one sample: smoothed == raw, no CI.
    constexpr double kRateAlpha = 0.3;
    double rate_ewma = -1.0;
    StreamStat rate_stat;
    for (;;) {
        Expected<Snapshot> snap = takeSnapshot(dir);
        if (!snap.ok()) {
            std::fprintf(stderr, "xbtop: %s\n",
                         snap.status().toString().c_str());
            return 1;
        }
        {
            Snapshot &s = snap.value();
            if (s.uopsPerSec > 0.0) {
                rate_ewma = rate_ewma < 0.0
                                ? s.uopsPerSec
                                : kRateAlpha * s.uopsPerSec +
                                      (1.0 - kRateAlpha) * rate_ewma;
                rate_stat.push(s.uopsPerSec);
            }
            s.uopsPerSecSmoothed = rate_ewma < 0.0 ? 0.0 : rate_ewma;
            if (s.estTotalUops > s.progressUops &&
                s.uopsPerSecSmoothed > 0.0) {
                s.etaSecondsSmoothed =
                    (double)(s.estTotalUops - s.progressUops) /
                    s.uopsPerSecSmoothed;
            }
            if (StreamStat::Ci95 ci = rate_stat.naiveCi95(); ci.valid)
                s.uopsPerSecCi95 = ci.halfWidth;
        }
        if (json) {
            writeSnapshotJson(std::cout, dir, snap.value());
        } else {
            if (!once)
                std::cout << "\033[H\033[2J";  // clear, keep scrollback
            renderTable(std::cout, dir, snap.value());
            std::cout.flush();
        }
        if (once || g_stop)
            break;
        const auto until =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds((int64_t)(refresh * 1e6));
        while (!g_stop && std::chrono::steady_clock::now() < until) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        if (g_stop)
            break;
    }
    resetStopHandlers();
    return 0;
}
