#include "isa/types.hh"

namespace xbs
{

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Seq:          return "seq";
      case InstClass::CondBranch:   return "cond";
      case InstClass::DirectJump:   return "jmp";
      case InstClass::DirectCall:   return "call";
      case InstClass::IndirectJump: return "ijmp";
      case InstClass::IndirectCall: return "icall";
      case InstClass::Return:       return "ret";
      default:                      return "?";
    }
}

const char *
uopClassName(UopClass cls)
{
    switch (cls) {
      case UopClass::Alu:    return "alu";
      case UopClass::Load:   return "load";
      case UopClass::Store:  return "store";
      case UopClass::Fp:     return "fp";
      case UopClass::Branch: return "branch";
      default:               return "?";
    }
}

} // namespace xbs
