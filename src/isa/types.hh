/**
 * @file
 * Core ISA-level type definitions for the synthetic x86-like
 * instruction set used throughout xbcsim.
 *
 * The frontend structures studied by the XBC paper never interpret
 * instruction semantics; they only care about each instruction's IP,
 * byte length, uop expansion, and control-flow class. The enums here
 * capture exactly that surface.
 */

#ifndef XBS_ISA_TYPES_HH
#define XBS_ISA_TYPES_HH

#include <cstdint>

namespace xbs
{

/**
 * Control-flow classification of a macro instruction.
 *
 * The XB end conditions (paper section 3.1 and 3.5) partition these:
 *  - Seq and DirectJump never end an extended block;
 *  - CondBranch, IndirectJump, IndirectCall, Return end extended
 *    blocks because they may redirect to multiple locations;
 *  - DirectCall ends an extended block as well: although it has a
 *    single target, the XRSB machinery (section 3.5) requires an XBTB
 *    entry per call so the return linkage can be recorded.
 */
enum class InstClass : uint8_t
{
    Seq,           ///< plain non-control instruction
    CondBranch,    ///< conditional direct branch
    DirectJump,    ///< unconditional direct jump
    DirectCall,    ///< direct call
    IndirectJump,  ///< register/memory indirect jump
    IndirectCall,  ///< indirect call
    Return,        ///< procedure return
    NumClasses,
};

/** Functional class of a micro-operation. */
enum class UopClass : uint8_t
{
    Alu,
    Load,
    Store,
    Fp,
    Branch,   ///< the resolving uop of a control instruction
    NumClasses,
};

/** @return a short printable name for @p cls. */
const char *instClassName(InstClass cls);

/** @return a short printable name for @p cls. */
const char *uopClassName(UopClass cls);

/** @return true if the instruction redirects control flow at all. */
constexpr bool
isControl(InstClass cls)
{
    return cls != InstClass::Seq;
}

/** @return true if the instruction is any kind of call. */
constexpr bool
isCall(InstClass cls)
{
    return cls == InstClass::DirectCall || cls == InstClass::IndirectCall;
}

/** @return true if the instruction's target is not statically known. */
constexpr bool
isIndirect(InstClass cls)
{
    return cls == InstClass::IndirectJump ||
           cls == InstClass::IndirectCall ||
           cls == InstClass::Return;
}

/**
 * @return true if the instruction ends an extended block
 * (paper section 3.1, amended with calls for XRSB bookkeeping).
 */
constexpr bool
endsXb(InstClass cls)
{
    return cls == InstClass::CondBranch || isIndirect(cls) ||
           isCall(cls);
}

/**
 * @return true if the instruction ends a trace-cache trace
 * irrespective of the branch quota ([Rote96] end conditions: indirect
 * branches and returns; direct jumps and calls are embedded).
 */
constexpr bool
endsTrace(InstClass cls)
{
    return isIndirect(cls);
}

/**
 * @return true if the instruction ends a "basic block" as defined for
 * Figure 1 of the paper: a sequence ended by any jump.
 */
constexpr bool
endsBasicBlock(InstClass cls)
{
    return isControl(cls);
}

/**
 * @return true if the instruction may have a not-taken (fall-through)
 * successor.
 */
constexpr bool
hasFallThrough(InstClass cls)
{
    return cls == InstClass::Seq || cls == InstClass::CondBranch;
}

} // namespace xbs

#endif // XBS_ISA_TYPES_HH
