#include "isa/static_inst.hh"

#include "common/logging.hh"

namespace xbs
{

int32_t
StaticCode::append(const StaticInst &inst)
{
    xbs_assert(!finalized_, "appending to finalized StaticCode");
    xbs_assert(inst.length >= 1 && inst.length <= 15,
               "bad instruction length %u", inst.length);
    xbs_assert(inst.numUops >= 1, "instruction with no uops");
    insts_.push_back(inst);
    return (int32_t)insts_.size() - 1;
}

void
StaticCode::finalize()
{
    xbs_assert(!finalized_, "double finalize");
    ipMap_.reserve(insts_.size());
    totalUops_ = 0;
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        const auto &inst = insts_[i];
        auto [it, inserted] = ipMap_.emplace(inst.ip, (int32_t)i);
        (void)it;
        xbs_assert(inserted, "duplicate IP %llx",
                   (unsigned long long)inst.ip);
        totalUops_ += inst.numUops;
    }
    for (std::size_t i = 0; i < insts_.size(); ++i) {
        const auto &inst = insts_[i];
        if (inst.takenIdx != kNoTarget) {
            xbs_assert(inst.takenIdx >= 0 &&
                       (std::size_t)inst.takenIdx < insts_.size(),
                       "inst %zu target %d out of range", i,
                       inst.takenIdx);
        }
    }
    finalized_ = true;
}

int32_t
StaticCode::indexOf(uint64_t ip) const
{
    auto it = ipMap_.find(ip);
    return it == ipMap_.end() ? kNoTarget : it->second;
}

StaticInst &
StaticCode::mutableInst(int32_t idx)
{
    xbs_assert(!finalized_, "mutating finalized StaticCode");
    return insts_[idx];
}

} // namespace xbs
