/**
 * @file
 * Decode-path model parameters and helpers.
 *
 * The legacy (build-mode) pipeline of all three frontends fetches raw
 * bytes from the instruction cache and decodes variable-length
 * instructions. Decoder captures the classic x86 decode constraints:
 * a fetch-block of bytes per cycle, a limited number of length-marked
 * instructions decoded per cycle, and a uop emission cap.
 */

#ifndef XBS_ISA_DECODER_HH
#define XBS_ISA_DECODER_HH

#include <cstdint>

#include "isa/static_inst.hh"

namespace xbs
{

/** Static configuration of the decode path. */
struct DecodeParams
{
    /** Bytes delivered by one IC access (also the IC line size). */
    unsigned fetchBytes = 16;

    /** Macro instructions decoded per cycle (4-1-1-1 style caps
     *  collapse to a simple width here). */
    unsigned decodeWidth = 4;

    /** Uops emitted by the decoder per cycle. */
    unsigned uopWidth = 6;

    /** Extra pipeline stages between IC and rename relative to the
     *  decoded-cache path; charged on every build-mode resteer. */
    unsigned decodePipeDepth = 3;
};

/**
 * Stateless decode-throughput calculator. Given a run of instructions
 * beginning somewhere in a fetch block, determine how many of them can
 * be decoded in one cycle.
 */
class Decoder
{
  public:
    explicit Decoder(const DecodeParams &params) : params_(params) {}

    const DecodeParams &params() const { return params_; }

    /**
     * Feed instructions one by one for the current cycle.
     * Returns true if @p inst still fits in this cycle's fetch/decode
     * budget, false if it must wait for the next cycle.
     *
     * @param inst       candidate instruction
     * @param bytes_used bytes already consumed this cycle (updated)
     * @param insts_used instructions already decoded (updated)
     * @param uops_used  uops already emitted (updated)
     */
    bool
    admit(const StaticInst &inst, unsigned &bytes_used,
          unsigned &insts_used, unsigned &uops_used) const
    {
        if (insts_used >= params_.decodeWidth)
            return false;
        if (uops_used + inst.numUops > params_.uopWidth)
            return false;
        if (bytes_used + inst.length > params_.fetchBytes)
            return false;
        bytes_used += inst.length;
        insts_used += 1;
        uops_used += inst.numUops;
        return true;
    }

  private:
    DecodeParams params_;
};

} // namespace xbs

#endif // XBS_ISA_DECODER_HH
