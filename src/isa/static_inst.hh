/**
 * @file
 * Static (flattened) representation of program instructions.
 *
 * A StaticCode object is the immutable, flattened image of a synthetic
 * program: an array of StaticInst in address order plus an IP -> index
 * map. Dynamic traces reference instructions by index into this array,
 * which keeps trace records tiny and makes IP arithmetic trivial.
 */

#ifndef XBS_ISA_STATIC_INST_HH
#define XBS_ISA_STATIC_INST_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/types.hh"

namespace xbs
{

/** Sentinel index meaning "no static target" (indirect / return). */
constexpr int32_t kNoTarget = -1;

/** Sentinel index meaning "no behavior attached". */
constexpr int32_t kNoBehavior = -1;

/**
 * One static instruction. Kept to 24 bytes so multi-megabyte programs
 * stay cache friendly.
 */
struct StaticInst
{
    uint64_t ip = 0;       ///< virtual address of the first byte
    uint8_t length = 1;    ///< encoded length in bytes (1..15)
    uint8_t numUops = 1;   ///< uop expansion count (1..4 here)
    InstClass cls = InstClass::Seq;

    /**
     * Target instruction index for direct control transfers
     * (CondBranch taken path, DirectJump, DirectCall); kNoTarget for
     * everything else.
     */
    int32_t takenIdx = kNoTarget;

    /**
     * For CondBranch / IndirectJump / IndirectCall: index into the
     * program's behavior table driving dynamic outcomes.
     */
    int32_t behaviorId = kNoBehavior;

    /** @return the fall-through IP (the next sequential address). */
    uint64_t fallThroughIp() const { return ip + length; }

    bool isControl() const { return xbs::isControl(cls); }
    bool endsXb() const { return xbs::endsXb(cls); }
    bool endsTrace() const { return xbs::endsTrace(cls); }
    bool endsBasicBlock() const { return xbs::endsBasicBlock(cls); }
};

/**
 * Immutable flattened code image. Instances are shared between the
 * workload executor, traces, and frontends via shared_ptr.
 */
class StaticCode
{
  public:
    StaticCode() = default;

    /** Append an instruction; returns its index. */
    int32_t append(const StaticInst &inst);

    /** Finalize: build the IP map and validate target indices. */
    void finalize();

    const StaticInst &inst(int32_t idx) const { return insts_[idx]; }
    const StaticInst &operator[](int32_t idx) const
    {
        return insts_[idx];
    }

    std::size_t size() const { return insts_.size(); }
    bool finalized() const { return finalized_; }

    /** @return instruction index at @p ip, or kNoTarget. */
    int32_t indexOf(uint64_t ip) const;

    /** Total static uop footprint (sum of numUops). */
    uint64_t totalUops() const { return totalUops_; }

    /** Mutable access during construction only. */
    StaticInst &mutableInst(int32_t idx);

  private:
    std::vector<StaticInst> insts_;
    std::unordered_map<uint64_t, int32_t> ipMap_;
    uint64_t totalUops_ = 0;
    bool finalized_ = false;
};

} // namespace xbs

#endif // XBS_ISA_STATIC_INST_HH
