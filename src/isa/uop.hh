/**
 * @file
 * Micro-operation identity and expansion.
 *
 * A uop is identified by its parent instruction's IP and its index
 * within the instruction's expansion. This identity is what the
 * redundancy metric counts: the TC may hold many copies of the same
 * (ip, seq) pair, while the XBC holds at most one (plus transient
 * promotion copies).
 */

#ifndef XBS_ISA_UOP_HH
#define XBS_ISA_UOP_HH

#include <cstdint>
#include <functional>

#include "isa/static_inst.hh"
#include "isa/types.hh"

namespace xbs
{

/**
 * Unique identity of a uop: parent IP in the upper bits, expansion
 * index (< 16) in the low 4 bits. IPs in the synthetic programs are
 * well below 2^60, so no information is lost.
 */
using UopId = uint64_t;

constexpr UopId
makeUopId(uint64_t ip, unsigned seq)
{
    return (ip << 4) | (seq & 0xf);
}

constexpr uint64_t
uopIdIp(UopId id)
{
    return id >> 4;
}

constexpr unsigned
uopIdSeq(UopId id)
{
    return (unsigned)(id & 0xf);
}

/** One decoded micro-operation as held in a frontend structure. */
struct Uop
{
    uint64_t ip = 0;       ///< parent instruction IP
    uint8_t seq = 0;       ///< index within the expansion
    uint8_t ofTotal = 1;   ///< expansion size of the parent
    UopClass cls = UopClass::Alu;
    InstClass parentCls = InstClass::Seq;

    UopId id() const { return makeUopId(ip, seq); }

    /** Last uop of the parent instruction? */
    bool endOfInst() const { return seq + 1 == ofTotal; }

    /**
     * The uop that actually resolves a control instruction is the
     * last uop of that instruction's expansion.
     */
    bool
    isControlUop() const
    {
        return endOfInst() && isControl(parentCls);
    }
};

/**
 * Deterministically expand @p inst into its uops, appending to
 * @p out. The functional classes are a hash of the IP so they are
 * stable across runs without storing per-uop data in StaticInst.
 *
 * @return the number of uops appended.
 */
unsigned expandUops(const StaticInst &inst, std::vector<Uop> &out);

/** Expansion without materialization: class of uop @p seq of @p inst. */
UopClass uopClassOf(const StaticInst &inst, unsigned seq);

} // namespace xbs

#endif // XBS_ISA_UOP_HH
