#include "isa/uop.hh"

#include "common/logging.hh"

namespace xbs
{

namespace
{

/** Cheap stateless mix for per-uop class selection. */
uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // anonymous namespace

UopClass
uopClassOf(const StaticInst &inst, unsigned seq)
{
    xbs_assert(seq < inst.numUops, "uop seq %u out of range", seq);
    // The resolving uop of a control instruction is a branch uop.
    if (seq + 1 == inst.numUops && isControl(inst.cls))
        return UopClass::Branch;
    switch (mix(inst.ip + seq) % 8) {
      case 0: case 1: case 2: case 3:
        return UopClass::Alu;
      case 4: case 5:
        return UopClass::Load;
      case 6:
        return UopClass::Store;
      default:
        return UopClass::Fp;
    }
}

unsigned
expandUops(const StaticInst &inst, std::vector<Uop> &out)
{
    for (unsigned s = 0; s < inst.numUops; ++s) {
        Uop u;
        u.ip = inst.ip;
        u.seq = (uint8_t)s;
        u.ofTotal = inst.numUops;
        u.cls = uopClassOf(inst, s);
        u.parentCls = inst.cls;
        out.push_back(u);
    }
    return inst.numUops;
}

} // namespace xbs
