#include "sim/ckpt_io.hh"

#include "common/sha256.hh"
#include "prof/build_info.hh"

namespace xbs
{

namespace
{

/** Canonical spec text: newline-joined argv of the spec with
 *  restoreFrom cleared (a restored run is the same cell). */
std::string
canonicalSpec(const RunSpec &spec)
{
    RunSpec cold = spec;
    cold.restoreFrom.clear();
    std::string out;
    for (const std::string &arg : cold.toArgv()) {
        if (!out.empty())
            out += '\n';
        out += arg;
    }
    return out;
}

} // anonymous namespace

CkptMeta
makeCkptMeta(const RunSpec &spec, const Trace &trace, uint64_t cycle)
{
    CkptMeta meta;
    meta.frontend = spec.frontend;
    meta.workload = spec.workload;
    meta.insts = spec.insts;
    meta.capacity = spec.capacity;
    meta.ways = (unsigned)spec.ways;
    meta.traceName = trace.name();
    meta.numRecords = trace.numRecords();
    meta.totalUops = trace.totalUops();
    meta.specCanonical = canonicalSpec(spec);
    meta.specDigest = sha256Hex(meta.specCanonical);
    meta.cycle = cycle;

    const BuildInfo &bi = buildInfo();
    meta.buildCompiler = bi.compiler;
    meta.buildType = bi.buildType;
    meta.buildFlags = bi.flags;
    meta.buildSource = bi.source;
    meta.buildCxxStandard = std::to_string(bi.cxxStandard);
    meta.buildSanitized = bi.sanitized;
    return meta;
}

std::string
encodeCheckpoint(const Frontend &fe, const CkptMeta &meta)
{
    CheckpointWriter w;
    w.addSection("meta", encodeCkptMeta(meta));
    fe.saveState(w);
    return w.encode();
}

Status
writeCheckpoint(const Frontend &fe, const CkptMeta &meta,
                const std::string &path)
{
    CheckpointWriter w;
    w.addSection("meta", encodeCkptMeta(meta));
    fe.saveState(w);
    return w.writeTo(path);
}

Status
restoreCheckpoint(Frontend &fe, const CheckpointFile &file,
                  const RunSpec &spec, const Trace &trace)
{
    const std::string *raw = file.section("meta");
    if (!raw) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks a 'meta' section");
    }
    Expected<CkptMeta> decoded = decodeCkptMeta(*raw);
    if (!decoded.ok())
        return decoded.status();
    const CkptMeta meta = decoded.take();

    // Identity: the checkpoint must come from the exact same
    // simulation cell. The spec digest subsumes the individual spec
    // fields, but checking them separately yields messages that name
    // the actual mismatch.
    auto mismatch = [](const std::string &what, const std::string &a,
                       const std::string &b) {
        return Status::error(
            StatusCode::Corrupt,
            "checkpoint " + what + " mismatch: checkpoint has '" + a +
                "', this run needs '" + b + "'");
    };
    if (meta.frontend != spec.frontend)
        return mismatch("frontend", meta.frontend, spec.frontend);
    if (meta.workload != spec.workload)
        return mismatch("workload", meta.workload, spec.workload);
    if (meta.insts != spec.insts) {
        return mismatch("insts", std::to_string(meta.insts),
                        std::to_string(spec.insts));
    }
    if (meta.capacity != spec.capacity) {
        return mismatch("capacity", std::to_string(meta.capacity),
                        std::to_string(spec.capacity));
    }
    if (meta.ways != (unsigned)spec.ways) {
        return mismatch("ways", std::to_string(meta.ways),
                        std::to_string(spec.ways));
    }
    if (meta.traceName != trace.name())
        return mismatch("trace", meta.traceName, trace.name());
    if (meta.numRecords != trace.numRecords()) {
        return mismatch("trace records",
                        std::to_string(meta.numRecords),
                        std::to_string(trace.numRecords()));
    }
    if (meta.totalUops != trace.totalUops()) {
        return mismatch("trace uops", std::to_string(meta.totalUops),
                        std::to_string(trace.totalUops()));
    }
    const std::string canonical = canonicalSpec(spec);
    if (meta.specCanonical != canonical ||
        meta.specDigest != sha256Hex(canonical)) {
        return mismatch("spec", meta.specDigest,
                        sha256Hex(canonical));
    }

    const BuildInfo &bi = buildInfo();
    Status build = checkCkptBuild(meta, bi.buildType, bi.sanitized);
    if (!build.isOk())
        return build;

    return fe.restoreState(file);
}

Status
restoreCheckpointPath(Frontend &fe, const std::string &path,
                      const RunSpec &spec, const Trace &trace)
{
    Expected<CheckpointFile> file = readCheckpointFile(path);
    if (!file.ok())
        return file.status();
    return restoreCheckpoint(fe, file.take(), spec, trace);
}

} // namespace xbs
