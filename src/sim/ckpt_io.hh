/**
 * @file
 * Checkpoint I/O glue between the frontend state machinery
 * (Frontend::saveState/restoreState) and the container format
 * (src/ckpt): builds the identity meta from the run spec and trace,
 * writes live-points, and performs a fully verified restore.
 *
 * The restore contract is all-or-nothing: identity (spec, trace,
 * frontend kind, geometry) and build compatibility are checked
 * before any state is touched, and every failure is a typed Status
 * (NotFound for a missing file, Corrupt for everything else) so the
 * caller can demote the run to a cold start instead of crashing.
 */

#ifndef XBS_SIM_CKPT_IO_HH
#define XBS_SIM_CKPT_IO_HH

#include <string>

#include "ckpt/checkpoint.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace xbs
{

/**
 * Identity meta for a checkpoint of @p spec over @p trace at
 * @p cycle, stamped with this binary's build provenance. The spec's
 * restoreFrom is cleared before canonicalization: a run restored
 * from a checkpoint is the same simulation cell as its cold twin,
 * so a second-generation checkpoint must carry the same identity.
 */
CkptMeta makeCkptMeta(const RunSpec &spec, const Trace &trace,
                      uint64_t cycle);

/** Serialize @p fe (meta + all state sections) to container bytes. */
std::string encodeCheckpoint(const Frontend &fe, const CkptMeta &meta);

/** encodeCheckpoint + atomic write to @p path. */
Status writeCheckpoint(const Frontend &fe, const CkptMeta &meta,
                       const std::string &path);

/**
 * Verify @p file against (@p spec, @p trace, running build) and
 * restore @p fe from it. On failure the frontend may hold partially
 * restored counters and must be discarded (re-make it for a cold
 * start).
 */
Status restoreCheckpoint(Frontend &fe, const CheckpointFile &file,
                         const RunSpec &spec, const Trace &trace);

/** readCheckpointFile + restoreCheckpoint. */
Status restoreCheckpointPath(Frontend &fe, const std::string &path,
                             const RunSpec &spec, const Trace &trace);

} // namespace xbs

#endif // XBS_SIM_CKPT_IO_HH
