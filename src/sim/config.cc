#include "sim/config.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "core/xbc_frontend.hh"
#include "ic/ic_frontend.hh"

namespace xbs
{

SimConfig
SimConfig::icBaseline()
{
    SimConfig c;
    c.kind = FrontendKind::Ic;
    return c;
}

SimConfig
SimConfig::dcBaseline(unsigned capacity_uops)
{
    SimConfig c;
    c.kind = FrontendKind::Dc;
    c.dc.capacityUops = capacity_uops;
    return c;
}

SimConfig
SimConfig::bbtcBaseline(unsigned capacity_uops)
{
    SimConfig c;
    c.kind = FrontendKind::Bbtc;
    c.bbtc.blocks.capacityUops = capacity_uops;
    return c;
}

SimConfig
SimConfig::tcBaseline(unsigned capacity_uops, unsigned ways)
{
    SimConfig c;
    c.kind = FrontendKind::Tc;
    c.tc.capacityUops = capacity_uops;
    c.tc.ways = ways;
    return c;
}

SimConfig
SimConfig::xbcBaseline(unsigned capacity_uops, unsigned ways)
{
    SimConfig c;
    c.kind = FrontendKind::Xbc;
    c.xbc.capacityUops = capacity_uops;
    c.xbc.ways = ways;
    return c;
}

namespace
{

bool
powerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

Status
validateConfig(const SimConfig &config)
{
    auto bad = [](std::string what) {
        return Status::error("bad configuration: " + std::move(what));
    };

    switch (config.kind) {
      case FrontendKind::Ic:
        break;
      case FrontendKind::Dc: {
        const auto &p = config.dc;
        if (!powerOfTwo(p.windowBytes))
            return bad("DC window bytes must be a power of two");
        if (p.lineUops < 4)
            return bad("DC line below 4 uop slots");
        if (p.ways < 1 ||
            p.capacityUops / std::max(1u, p.lineUops) < p.ways) {
            return bad("DC capacity below one set");
        }
        break;
      }
      case FrontendKind::Tc: {
        const auto &p = config.tc;
        if (p.ways < 1)
            return bad("TC needs at least one way");
        if (p.limits.maxUops < 1)
            return bad("TC line needs a nonzero uop limit");
        if (p.capacityUops / p.limits.maxUops < p.ways)
            return bad("TC capacity below one set");
        break;
      }
      case FrontendKind::Bbtc: {
        const auto &p = config.bbtc;
        if (p.blocks.ways < 1 || p.blocks.blockUops < 1 ||
            p.blocks.capacityUops / p.blocks.blockUops <
                p.blocks.ways) {
            return bad("BBTC block cache capacity below one set");
        }
        if (p.ptrsPerTrace < 1 || p.traceTableWays < 1)
            return bad("BBTC trace table needs ways and pointers");
        break;
      }
      case FrontendKind::Xbc: {
        const auto &p = config.xbc;
        if (p.numBanks < 1 || p.bankUops < 1 || p.ways < 1)
            return bad("XBC needs banks, bank uops, and ways");
        if (p.xbQuotaUops > p.numBanks * p.bankUops)
            return bad("XB quota exceeds one set row");
        if (p.capacityUops / (p.numBanks * p.bankUops * p.ways) < 1)
            return bad("XBC capacity below one set");
        if (p.xbtbWays < 1 || p.xbtbEntries < p.xbtbWays)
            return bad("bad XBTB geometry");
        if (p.xibtbWays < 1 || p.xibtbSets < 1)
            return bad("bad XiBTB geometry");
        if (p.xrsbDepth < 1)
            return bad("XRSB needs depth");
        break;
      }
    }

    if (config.frontend.renamerWidth < 1)
        return bad("renamer width must be nonzero");
    return Status::ok();
}

std::unique_ptr<Frontend>
makeFrontend(const SimConfig &config)
{
    switch (config.kind) {
      case FrontendKind::Ic:
        return std::make_unique<IcFrontend>(config.frontend);
      case FrontendKind::Dc:
        return std::make_unique<DcFrontend>(config.frontend,
                                            config.dc);
      case FrontendKind::Tc:
        return std::make_unique<TcFrontend>(config.frontend,
                                            config.tc);
      case FrontendKind::Bbtc:
        return std::make_unique<BbtcFrontend>(config.frontend,
                                              config.bbtc);
      case FrontendKind::Xbc:
        return std::make_unique<XbcFrontend>(config.frontend,
                                             config.xbc);
    }
    xbs_panic("bad frontend kind");
}

const char *
frontendKindName(FrontendKind kind)
{
    switch (kind) {
      case FrontendKind::Ic:   return "IC";
      case FrontendKind::Dc:   return "DC";
      case FrontendKind::Tc:   return "TC";
      case FrontendKind::Bbtc: return "BBTC";
      case FrontendKind::Xbc:  return "XBC";
    }
    return "?";
}

Expected<FrontendKind>
parseFrontendKind(const std::string &name)
{
    if (name == "ic")
        return FrontendKind::Ic;
    if (name == "dc")
        return FrontendKind::Dc;
    if (name == "tc")
        return FrontendKind::Tc;
    if (name == "bbtc")
        return FrontendKind::Bbtc;
    if (name == "xbc")
        return FrontendKind::Xbc;
    return Status::error("unknown frontend '" + name +
                         "' (ic|dc|tc|bbtc|xbc)");
}

const char *
frontendKindFlag(FrontendKind kind)
{
    switch (kind) {
      case FrontendKind::Ic:   return "ic";
      case FrontendKind::Dc:   return "dc";
      case FrontendKind::Tc:   return "tc";
      case FrontendKind::Bbtc: return "bbtc";
      case FrontendKind::Xbc:  return "xbc";
    }
    return "?";
}

std::vector<std::string>
RunSpec::toArgv() const
{
    std::vector<std::string> argv;
    argv.push_back("--frontend=" + frontend);
    argv.push_back("--workload=" + workload);
    argv.push_back("--capacity=" + std::to_string(capacity));
    if (ways)
        argv.push_back("--ways=" + std::to_string(ways));
    if (insts)
        argv.push_back("--insts=" + std::to_string(insts));
    if (!restoreFrom.empty())
        argv.push_back("--restore-from=" + restoreFrom);
    return argv;
}

Expected<RunSpec>
RunSpec::fromArgv(const std::vector<std::string> &args)
{
    RunSpec spec;
    for (const std::string &arg : args) {
        if (arg.rfind("--", 0) != 0 ||
            arg.find('=') == std::string::npos) {
            return Status::error("run spec flag '" + arg +
                                 "' is not --name=value");
        }
        const std::string key = arg.substr(2, arg.find('=') - 2);
        const std::string val = arg.substr(arg.find('=') + 1);
        auto parseUint = [&](uint64_t *out) -> Status {
            char *end = nullptr;
            uint64_t v = std::strtoull(val.c_str(), &end, 10);
            if (val.empty() || *end != '\0') {
                return Status::error("run spec flag --" + key +
                                     " expects an integer, got '" +
                                     val + "'");
            }
            *out = v;
            return Status::ok();
        };
        Status st = Status::ok();
        if (key == "frontend") {
            Expected<FrontendKind> kind = parseFrontendKind(val);
            if (!kind.ok())
                return kind.status();
            spec.frontend = val;
        } else if (key == "workload") {
            spec.workload = val;
        } else if (key == "insts") {
            st = parseUint(&spec.insts);
        } else if (key == "capacity") {
            st = parseUint(&spec.capacity);
        } else if (key == "ways") {
            st = parseUint(&spec.ways);
        } else if (key == "restore-from") {
            spec.restoreFrom = val;
        } else {
            return Status::error("unknown run spec flag --" + key);
        }
        if (!st.isOk())
            return st;
    }
    return spec;
}

std::string
RunSpec::label() const
{
    std::string s = frontend;
    s += "/";
    s += workload;
    s += "@";
    s += std::to_string(capacity);
    if (ways) {
        s += "w";
        s += std::to_string(ways);
    }
    return s;
}

} // namespace xbs
