#include "sim/config.hh"

#include "common/logging.hh"
#include "core/xbc_frontend.hh"
#include "ic/ic_frontend.hh"

namespace xbs
{

SimConfig
SimConfig::icBaseline()
{
    SimConfig c;
    c.kind = FrontendKind::Ic;
    return c;
}

SimConfig
SimConfig::dcBaseline(unsigned capacity_uops)
{
    SimConfig c;
    c.kind = FrontendKind::Dc;
    c.dc.capacityUops = capacity_uops;
    return c;
}

SimConfig
SimConfig::bbtcBaseline(unsigned capacity_uops)
{
    SimConfig c;
    c.kind = FrontendKind::Bbtc;
    c.bbtc.blocks.capacityUops = capacity_uops;
    return c;
}

SimConfig
SimConfig::tcBaseline(unsigned capacity_uops, unsigned ways)
{
    SimConfig c;
    c.kind = FrontendKind::Tc;
    c.tc.capacityUops = capacity_uops;
    c.tc.ways = ways;
    return c;
}

SimConfig
SimConfig::xbcBaseline(unsigned capacity_uops, unsigned ways)
{
    SimConfig c;
    c.kind = FrontendKind::Xbc;
    c.xbc.capacityUops = capacity_uops;
    c.xbc.ways = ways;
    return c;
}

std::unique_ptr<Frontend>
makeFrontend(const SimConfig &config)
{
    switch (config.kind) {
      case FrontendKind::Ic:
        return std::make_unique<IcFrontend>(config.frontend);
      case FrontendKind::Dc:
        return std::make_unique<DcFrontend>(config.frontend,
                                            config.dc);
      case FrontendKind::Tc:
        return std::make_unique<TcFrontend>(config.frontend,
                                            config.tc);
      case FrontendKind::Bbtc:
        return std::make_unique<BbtcFrontend>(config.frontend,
                                              config.bbtc);
      case FrontendKind::Xbc:
        return std::make_unique<XbcFrontend>(config.frontend,
                                             config.xbc);
    }
    xbs_panic("bad frontend kind");
}

const char *
frontendKindName(FrontendKind kind)
{
    switch (kind) {
      case FrontendKind::Ic:   return "IC";
      case FrontendKind::Dc:   return "DC";
      case FrontendKind::Tc:   return "TC";
      case FrontendKind::Bbtc: return "BBTC";
      case FrontendKind::Xbc:  return "XBC";
    }
    return "?";
}

} // namespace xbs
