/**
 * @file
 * Suite runner: executes labeled frontend configurations over the
 * 21-workload catalog, workload-outer so only one trace is resident
 * at a time, and aggregates results per suite.
 */

#ifndef XBS_SIM_RUNNER_HH
#define XBS_SIM_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace xbs
{

/** One (workload x configuration) measurement. */
struct RunResult
{
    std::string label;      ///< configuration label
    std::string workload;
    std::string suite;

    double bandwidth = 0.0;      ///< delivery uops/cycle (Figure 8)
    double missRate = 0.0;       ///< fraction of uops from the IC
    double redundancy = 1.0;     ///< resident copies per unique uop
    double fillFactor = 1.0;     ///< filled / reserved uop slots
    double condMispredictRate = 0.0;
    double overallIpc = 0.0;

    uint64_t cycles = 0;
    uint64_t totalUops = 0;
    uint64_t modeSwitches = 0;

    /// @{ XBC-only extras (zero for other frontends).
    uint64_t promotions = 0;
    uint64_t bankConflictDefers = 0;
    uint64_t setSearchHits = 0;
    uint64_t condPredictions = 0;
    /// @}
};

class SuiteRunner
{
  public:
    /**
     * @param trace_len instructions per trace; 0 = default
     *        (XBS_TRACE_LEN / XBS_FAST environment overrides)
     * @param workloads subset of catalog names; empty = all 21
     */
    explicit SuiteRunner(uint64_t trace_len = 0,
                         std::vector<std::string> workloads = {});

    /**
     * Run every configuration over every workload (workload-outer).
     *
     * @param configs labeled configurations
     * @param progress optional callback after each (workload, config)
     */
    std::vector<RunResult>
    sweep(const std::vector<std::pair<std::string, SimConfig>> &configs,
          const std::function<void(const RunResult &)> &progress = {});

    /** Measure a single (workload, config) pair. */
    RunResult runOne(const std::string &workload,
                     const std::string &label, const SimConfig &config);

    const std::vector<std::string> &workloads() const
    {
        return workloads_;
    }

    /// @{ Aggregation helpers over sweep results.
    static double meanMissRate(const std::vector<RunResult> &results,
                               const std::string &label,
                               const std::string &suite = "");
    static double meanBandwidth(const std::vector<RunResult> &results,
                                const std::string &label,
                                const std::string &suite = "");
    /// @}

    /** Observation hook type: the frontend about to run / just run,
     *  the trace it runs over (so an auditor can attach its delivery
     *  oracle), plus the (workload, label) measurement pair. */
    using RunHook = std::function<void(Frontend &, const Trace &,
                                       const std::string &workload,
                                       const std::string &label)>;

    /// @{ Observation hooks around each measurement: before-run fires
    ///    after construction (attach sinks/samplers here), after-run
    ///    fires after run() but before metrics are read (the runner
    ///    calls finishObservation() itself between the two).
    void setBeforeRun(RunHook hook) { beforeRun_ = std::move(hook); }
    void setAfterRun(RunHook hook) { afterRun_ = std::move(hook); }
    /// @}

  private:
    RunResult measure(const Trace &trace, const std::string &suite,
                      const std::string &label,
                      const SimConfig &config);

    uint64_t traceLen_;
    std::vector<std::string> workloads_;
    RunHook beforeRun_;
    RunHook afterRun_;
};

} // namespace xbs

#endif // XBS_SIM_RUNNER_HH
