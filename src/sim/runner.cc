#include "sim/runner.hh"

#include "bbtc/bbtc_frontend.hh"
#include "common/logging.hh"
#include "core/xbc_frontend.hh"
#include "dc/dc_frontend.hh"
#include "workload/catalog.hh"

namespace xbs
{

SuiteRunner::SuiteRunner(uint64_t trace_len,
                         std::vector<std::string> workloads)
    : traceLen_(trace_len ? trace_len : defaultTraceLength()),
      workloads_(std::move(workloads))
{
    if (workloads_.empty()) {
        for (const auto &e : workloadCatalog())
            workloads_.push_back(e.name);
    }
}

RunResult
SuiteRunner::measure(const Trace &trace, const std::string &suite,
                     const std::string &label, const SimConfig &config)
{
    auto fe = makeFrontend(config);
    if (beforeRun_)
        beforeRun_(*fe, trace, trace.name(), label);
    fe->run(trace);
    fe->finishObservation();
    if (afterRun_)
        afterRun_(*fe, trace, trace.name(), label);

    RunResult r;
    r.label = label;
    r.workload = trace.name();
    r.suite = suite;
    const auto &m = fe->metrics();
    r.bandwidth = m.bandwidth();
    r.missRate = m.missRate();
    r.condMispredictRate = m.condMispredictRate();
    r.overallIpc = m.overallIpc();
    r.cycles = m.cycles.value();
    r.totalUops = m.deliveryUops.value() + m.buildUops.value();
    r.modeSwitches = m.modeSwitches.value();

    r.condPredictions = m.condBranches.value();

    if (auto *tc = dynamic_cast<TcFrontend *>(fe.get())) {
        r.redundancy = tc->cache().redundancy();
        r.fillFactor = tc->cache().fillFactor();
    } else if (auto *xbc = dynamic_cast<XbcFrontend *>(fe.get())) {
        r.redundancy = xbc->dataArray().redundancy();
        r.fillFactor = xbc->dataArray().fillFactor();
        r.promotions = xbc->promotions.value();
        r.bankConflictDefers = xbc->bankConflictDefers.value();
        r.setSearchHits = xbc->dataArray().setSearchHits.value();
    } else if (auto *dc = dynamic_cast<DcFrontend *>(fe.get())) {
        r.fillFactor = dc->cache().fillFactor();
    } else if (auto *bbtc = dynamic_cast<BbtcFrontend *>(fe.get())) {
        r.redundancy = bbtc->pointerRedundancy();
        r.fillFactor = bbtc->blockCache().fillFactor();
    }
    return r;
}

RunResult
SuiteRunner::runOne(const std::string &workload,
                    const std::string &label, const SimConfig &config)
{
    const auto &entry = findWorkload(workload);
    Trace trace = makeCatalogTrace(workload, traceLen_);
    return measure(trace, entry.suite, label, config);
}

std::vector<RunResult>
SuiteRunner::sweep(
    const std::vector<std::pair<std::string, SimConfig>> &configs,
    const std::function<void(const RunResult &)> &progress)
{
    std::vector<RunResult> out;
    for (const auto &name : workloads_) {
        const auto &entry = findWorkload(name);
        Trace trace = makeCatalogTrace(name, traceLen_);
        for (const auto &[label, config] : configs) {
            RunResult r = measure(trace, entry.suite, label, config);
            if (progress)
                progress(r);
            out.push_back(std::move(r));
        }
    }
    return out;
}

namespace
{

double
meanOf(const std::vector<RunResult> &results, const std::string &label,
       const std::string &suite, double RunResult::*field)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const auto &r : results) {
        if (r.label != label)
            continue;
        if (!suite.empty() && r.suite != suite)
            continue;
        sum += r.*field;
        ++n;
    }
    return n ? sum / (double)n : 0.0;
}

} // anonymous namespace

double
SuiteRunner::meanMissRate(const std::vector<RunResult> &results,
                          const std::string &label,
                          const std::string &suite)
{
    return meanOf(results, label, suite, &RunResult::missRate);
}

double
SuiteRunner::meanBandwidth(const std::vector<RunResult> &results,
                           const std::string &label,
                           const std::string &suite)
{
    return meanOf(results, label, suite, &RunResult::bandwidth);
}

} // namespace xbs
