/**
 * @file
 * Simulation configuration: which frontend to instantiate, with what
 * parameters. Used by the bench harnesses and examples.
 */

#ifndef XBS_SIM_CONFIG_HH
#define XBS_SIM_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "bbtc/bbtc_frontend.hh"
#include "common/status.hh"
#include "core/params.hh"
#include "dc/dc_frontend.hh"
#include "frontend/frontend.hh"
#include "tc/tc_frontend.hh"

namespace xbs
{

enum class FrontendKind
{
    Ic,
    Dc,    ///< decoded uop cache (section 2.2)
    Tc,
    Bbtc,  ///< block-based trace cache (section 2.4)
    Xbc,
};

struct SimConfig
{
    FrontendKind kind = FrontendKind::Xbc;
    FrontendParams frontend;
    TcParams tc;
    XbcParams xbc;
    DecodedCacheParams dc;
    BbtcParams bbtc;

    /** Paper defaults: a 32K-uop structure. */
    static SimConfig icBaseline();
    static SimConfig dcBaseline(unsigned capacity_uops = 32768);
    static SimConfig tcBaseline(unsigned capacity_uops = 32768,
                                unsigned ways = 4);
    static SimConfig bbtcBaseline(unsigned capacity_uops = 32768);
    static SimConfig xbcBaseline(unsigned capacity_uops = 32768,
                                 unsigned ways = 2);
};

/**
 * Check a configuration's geometry *before* construction (the
 * frontend constructors assert the same constraints): nonzero
 * capacities, per-structure minimum sizes, power-of-two windows.
 * Lets tools reject bad CLI input with a clean exit code instead of
 * an abort.
 */
Status validateConfig(const SimConfig &config);

/** Instantiate the configured frontend. */
std::unique_ptr<Frontend> makeFrontend(const SimConfig &config);

const char *frontendKindName(FrontendKind kind);

/** Parse a CLI frontend name ("ic"|"dc"|"tc"|"bbtc"|"xbc"). */
Expected<FrontendKind> parseFrontendKind(const std::string &name);

/** The CLI spelling of a kind (lowercase, matches parse). */
const char *frontendKindFlag(FrontendKind kind);

/**
 * One simulation run as the batch layer sees it: the handful of
 * xbsim flags that define a (workload, frontend, geometry) cell of a
 * sweep matrix. A RunSpec serializes to xbsim argv (toArgv) and back
 * (fromArgv) so the journal can record exactly what each child was
 * asked to do and a --resume can re-launch it bit-identically.
 */
struct RunSpec
{
    std::string frontend = "xbc";   ///< ic|dc|tc|bbtc|xbc
    std::string workload = "gcc";   ///< catalog name
    uint64_t insts = 0;             ///< 0 = xbsim default
    uint64_t capacity = 32768;      ///< structure capacity in uops
    uint64_t ways = 0;              ///< 0 = structure default

    /**
     * Warm-state checkpoint to restore before simulating (empty =
     * cold start). Identity-wise a restored run is the *same*
     * simulation cell as its cold twin — the checkpoint only skips
     * warmup — so label() ignores it; the result cache keys on the
     * checkpoint file's digest separately, and the scheduler demotes
     * a job to a cold start (clearing this) when the file is
     * missing or corrupt.
     */
    std::string restoreFrom;

    /** xbsim flags for this run (no argv[0], no --json). */
    std::vector<std::string> toArgv() const;

    /** Inverse of toArgv (rejects unknown or malformed flags). */
    static Expected<RunSpec> fromArgv(
        const std::vector<std::string> &args);

    /** "xbc/gcc@32768" (plus "wN" when ways is explicit). */
    std::string label() const;

    bool operator==(const RunSpec &o) const
    {
        return frontend == o.frontend && workload == o.workload &&
               insts == o.insts && capacity == o.capacity &&
               ways == o.ways && restoreFrom == o.restoreFrom;
    }
};

} // namespace xbs

#endif // XBS_SIM_CONFIG_HH
