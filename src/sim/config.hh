/**
 * @file
 * Simulation configuration: which frontend to instantiate, with what
 * parameters. Used by the bench harnesses and examples.
 */

#ifndef XBS_SIM_CONFIG_HH
#define XBS_SIM_CONFIG_HH

#include <memory>
#include <string>

#include "bbtc/bbtc_frontend.hh"
#include "common/status.hh"
#include "core/params.hh"
#include "dc/dc_frontend.hh"
#include "frontend/frontend.hh"
#include "tc/tc_frontend.hh"

namespace xbs
{

enum class FrontendKind
{
    Ic,
    Dc,    ///< decoded uop cache (section 2.2)
    Tc,
    Bbtc,  ///< block-based trace cache (section 2.4)
    Xbc,
};

struct SimConfig
{
    FrontendKind kind = FrontendKind::Xbc;
    FrontendParams frontend;
    TcParams tc;
    XbcParams xbc;
    DecodedCacheParams dc;
    BbtcParams bbtc;

    /** Paper defaults: a 32K-uop structure. */
    static SimConfig icBaseline();
    static SimConfig dcBaseline(unsigned capacity_uops = 32768);
    static SimConfig tcBaseline(unsigned capacity_uops = 32768,
                                unsigned ways = 4);
    static SimConfig bbtcBaseline(unsigned capacity_uops = 32768);
    static SimConfig xbcBaseline(unsigned capacity_uops = 32768,
                                 unsigned ways = 2);
};

/**
 * Check a configuration's geometry *before* construction (the
 * frontend constructors assert the same constraints): nonzero
 * capacities, per-structure minimum sizes, power-of-two windows.
 * Lets tools reject bad CLI input with a clean exit code instead of
 * an abort.
 */
Status validateConfig(const SimConfig &config);

/** Instantiate the configured frontend. */
std::unique_ptr<Frontend> makeFrontend(const SimConfig &config);

const char *frontendKindName(FrontendKind kind);

} // namespace xbs

#endif // XBS_SIM_CONFIG_HH
