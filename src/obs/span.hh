/**
 * @file
 * Sweep span timeline: the scheduler-side half of the unified trace.
 *
 * The scheduler reports launches, exits, and retry backoffs as they
 * happen; the log stores them as *completed intervals* in host
 * seconds relative to the sweep start. Storing closed intervals
 * (rather than streaming open/close events) makes the later trace
 * emission trivially balanced — an attempt that never reported an
 * exit is closed at the sweep end, so no span is ever left open.
 *
 * The hierarchy the merge step (obs/trace_merge) renders:
 *
 *     scheduler (sweep)                    pid 0
 *       worker slot occupancy              pid 0, one tid per slot
 *     job <id>                             pid 100+id
 *       attempt N / backoff N              tid 0, nested
 *         sim phases (child event trace)   tid 1.., remapped
 */

#ifndef XBS_OBS_SPAN_HH
#define XBS_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace xbs
{

/** One child attempt: launch to reap on a worker slot. */
struct AttemptSpan
{
    uint64_t job = 0;      ///< JobSpec::id
    std::string label;     ///< run label, for span names
    unsigned attempt = 1;  ///< 1-based
    unsigned slot = 0;     ///< worker slot the attempt occupied
    double startSec = 0.0; ///< host seconds since sweep start
    double endSec = 0.0;
    bool open = true;      ///< no exit reported (closed at finish())
    std::string cls;       ///< outcome class name ("" while open)
};

/** One retry backoff window (exit of attempt N to eligibility). */
struct BackoffSpan
{
    uint64_t job = 0;
    unsigned attempt = 1;  ///< the attempt the backoff *precedes*
    double startSec = 0.0;
    double endSec = 0.0;
};

/**
 * Collects the scheduler's spans for one sweep run. Single-threaded
 * (the scheduler's poll loop is); all methods are cheap enough for
 * the hot loop.
 */
class SweepSpanLog
{
  public:
    /** Mark the sweep start; spans are relative to this instant. */
    void startSweep();

    /** Host seconds since startSweep() (0 before it). */
    double now() const;

    void noteLaunch(uint64_t job, const std::string &label,
                    unsigned attempt, unsigned slot);

    /** Close the newest open span of (job, attempt). */
    void noteExit(uint64_t job, unsigned attempt,
                  const std::string &cls);

    /** Record the backoff window granted before retry @p attempt. */
    void noteBackoff(uint64_t job, unsigned attempt,
                     double start_sec, double end_sec);

    /** Mark the sweep end and close any still-open attempts (their
     *  class stays "" — e.g. a drain left them mid-flight). */
    void finishSweep();

    bool started() const { return started_; }
    double sweepSeconds() const { return sweepSeconds_; }
    const std::vector<AttemptSpan> &attempts() const
    {
        return attempts_;
    }
    const std::vector<BackoffSpan> &backoffs() const
    {
        return backoffs_;
    }

  private:
    using Clock = std::chrono::steady_clock;

    bool started_ = false;
    Clock::time_point t0_;
    double sweepSeconds_ = 0.0;
    std::vector<AttemptSpan> attempts_;
    std::vector<BackoffSpan> backoffs_;
};

} // namespace xbs

#endif // XBS_OBS_SPAN_HH
