#include "obs/heartbeat.hh"

#include <sstream>
#include <unistd.h>

#include "common/fs.hh"
#include "common/json.hh"
#include "frontend/frontend.hh"
#include "prof/host_counters.hh"

namespace xbs
{

std::string
renderHeartbeat(const HeartbeatRecord &rec)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.field("seq", rec.seq);
        jw.field("pid", rec.pid);
        jw.field("phase", rec.phase);
        jw.field("uops", rec.uops);
        jw.field("totalUops", rec.totalUops);
        jw.field("cycles", rec.cycles);
        jw.field("uopsPerSec", rec.uopsPerSec);
        jw.field("wallSeconds", rec.wallSeconds);
        jw.field("rssKb", rec.rssKb);
        jw.field("done", rec.done);
        if (rec.statsPhase >= 0)
            jw.field("statsPhase", (uint64_t)rec.statsPhase);
        if (!rec.restoredFrom.empty())
            jw.field("restoredFrom", rec.restoredFrom);
        jw.endObject();
    }
    os << '\n';
    return os.str();
}

Expected<HeartbeatRecord>
parseHeartbeat(const std::string &text)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(text, &doc, &err))
        return Status::error("bad heartbeat: " + err);
    if (!doc.isObject())
        return Status::error("bad heartbeat: not an object");
    const JsonValue *seq = doc.find("seq");
    const JsonValue *phase = doc.find("phase");
    if (!seq || !seq->isNumber() || !phase || !phase->isString())
        return Status::error("bad heartbeat: missing seq/phase");

    HeartbeatRecord rec;
    rec.seq = seq->asUint();
    if (const JsonValue *v = doc.find("pid"))
        rec.pid = (int64_t)v->asNumber();
    rec.phase = phase->asString();
    if (const JsonValue *v = doc.find("uops"))
        rec.uops = v->asUint();
    if (const JsonValue *v = doc.find("totalUops"))
        rec.totalUops = v->asUint();
    if (const JsonValue *v = doc.find("cycles"))
        rec.cycles = v->asUint();
    if (const JsonValue *v = doc.find("uopsPerSec"))
        rec.uopsPerSec = v->asNumber();
    if (const JsonValue *v = doc.find("wallSeconds"))
        rec.wallSeconds = v->asNumber();
    if (const JsonValue *v = doc.find("rssKb"))
        rec.rssKb = v->asUint();
    if (const JsonValue *v = doc.find("done"))
        rec.done = v->isBool() && v->boolValue;
    if (const JsonValue *v = doc.find("statsPhase"))
        rec.statsPhase = (int64_t)v->asNumber();
    if (const JsonValue *v = doc.find("restoredFrom"))
        rec.restoredFrom = v->asString();
    return rec;
}

Expected<HeartbeatRecord>
readHeartbeat(const std::string &path)
{
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return text.status();
    return parseHeartbeat(text.value());
}

HeartbeatWriter::HeartbeatWriter(std::string path)
    : path_(std::move(path)), start_(Clock::now())
{
    // Resume numbering after any record a previous attempt left
    // behind, so watchers never see seq go backwards on retry.
    if (Expected<HeartbeatRecord> prev = readHeartbeat(path_);
        prev.ok()) {
        seq_ = prev.value().seq;
    }
}

Status
HeartbeatWriter::write(HeartbeatRecord &rec)
{
    rec.seq = ++seq_;
    rec.pid = (int64_t)::getpid();
    rec.wallSeconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    // writeFileAtomic gives the torn-read guarantee (temp + rename);
    // the fsync it performs is overkill for advisory telemetry but
    // at ~1 Hz the cost is irrelevant next to the simulation.
    return writeFileAtomic(path_, renderHeartbeat(rec));
}

HeartbeatEmitter::HeartbeatEmitter(std::string path, double period_sec)
    : writer_(std::move(path)),
      periodSec_(period_sec < 0.01 ? 0.01 : period_sec),
      lastBeat_(Clock::now())
{
}

void
HeartbeatEmitter::publish(uint64_t uops, uint64_t cycles,
                          const char *mode, bool done)
{
    const Clock::time_point now = Clock::now();
    const double window =
        std::chrono::duration<double>(now - lastBeat_).count();

    HeartbeatRecord rec;
    rec.phase = phase_;
    if (mode && phase_ == "sim")
        rec.phase += std::string(":") + mode;
    rec.uops = uops;
    rec.totalUops = totalUops_;
    rec.cycles = cycles;
    // Rate over the beat window; first beat has no window yet. The
    // epsilon guard mirrors ThroughputMeter: a sub-tick window must
    // not produce inf/nan in the record.
    if (everBeat_ && window > 1e-9 && uops >= lastUops_)
        rec.uopsPerSec = (double)(uops - lastUops_) / window;
    rec.rssKb = HostCounters::self().maxRssKb;
    rec.done = done;
    rec.statsPhase = statsPhase_;
    rec.restoredFrom = restoredFrom_;
    if (writer_.write(rec).isOk()) {
        lastBeat_ = now;
        lastUops_ = uops;
        everBeat_ = true;
    }
}

void
HeartbeatEmitter::beat(const Frontend *fe, bool done)
{
    uint64_t uops = 0;
    uint64_t cycles = 0;
    const char *mode = nullptr;
    if (fe) {
        const FrontendMetrics &m = fe->metrics();
        uops = m.deliveryUops.value() + m.buildUops.value();
        cycles = m.cycles.value();
        mode = fe->modeLabel();
    }
    publish(uops, cycles, mode, done);
}

void
HeartbeatEmitter::onCycle(const Frontend &fe)
{
    // A steady_clock read costs ~20ns; sampling it every cycle would
    // be measurable, so only look every 4096 simulated cycles.
    if (++ticks_ % 4096 != 0)
        return;
    const double since = std::chrono::duration<double>(
        Clock::now() - lastBeat_).count();
    if (since < periodSec_)
        return;
    beat(&fe, /*done=*/false);
}

} // namespace xbs
