#include "obs/trace_merge.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/fs.hh"
#include "common/json.hh"

namespace xbs
{

namespace
{

constexpr uint64_t kJobPidBase = 100;
/// tid stride per attempt inside a job pid: attempt N's child tracks
/// live at 1 + (N-1)*kAttemptTidStride + track.
constexpr uint64_t kAttemptTidStride = 16;

double
usOf(double sec)
{
    return sec * 1e6;
}

void
metaEvent(JsonWriter &jw, const char *kind, uint64_t pid,
          uint64_t tid, bool has_tid, const std::string &name)
{
    jw.beginObject();
    jw.field("name", kind);
    jw.field("ph", "M");
    jw.field("pid", pid);
    if (has_tid)
        jw.field("tid", tid);
    jw.beginObject("args");
    jw.field("name", name);
    jw.endObject();
    jw.endObject();
}

void
spanEvent(JsonWriter &jw, const char *ph, const std::string &name,
          double ts_us, uint64_t pid, uint64_t tid)
{
    jw.beginObject();
    jw.field("name", name);
    jw.field("ph", ph);
    jw.field("ts", ts_us);
    jw.field("pid", pid);
    jw.field("tid", tid);
    jw.endObject();
}

/** A complete B..E pair, ready to emit in nesting order. */
struct Slice
{
    std::string name;
    double startUs = 0.0;
    double endUs = 0.0;
    uint64_t tid = 0;
};

/**
 * Fold one child trace file into @p slices: scale cycle timestamps
 * into [attempt start, attempt end] µs and rebalance B/E per track.
 * Instants/counters are dropped (the merged file is a span
 * timeline; per-cycle counters stay in the per-job files).
 */
void
foldChildTrace(const std::string &file, double start_us,
               double end_us, uint64_t tid_base,
               std::vector<Slice> *slices,
               std::map<uint64_t, std::string> *track_names)
{
    Expected<JsonValue> doc = readJsonFile(file);
    if (!doc.ok())
        return;  // missing/corrupt child trace: no in-sim tracks
    const JsonValue *events = doc.value().find("traceEvents");
    if (!events || !events->isArray())
        return;

    // Pass 1: the cycle span of the trace, for the linear rescale.
    uint64_t max_ts = 0;
    for (const JsonValue &ev : events->items) {
        const JsonValue *ph = ev.find("ph");
        if (!ph || !ph->isString() || ph->asString() == "M")
            continue;
        if (const JsonValue *ts = ev.find("ts"))
            max_ts = std::max(max_ts, ts->asUint());
    }
    const double dur_us = end_us - start_us;
    const double scale = max_ts ? dur_us / (double)max_ts : 0.0;

    struct Open
    {
        std::string name;
        double startUs;
    };
    std::map<uint64_t, std::vector<Open>> open;

    for (const JsonValue &ev : events->items) {
        const JsonValue *ph = ev.find("ph");
        const JsonValue *name = ev.find("name");
        if (!ph || !ph->isString() || !name || !name->isString())
            continue;
        const std::string &kind = ph->asString();
        const uint64_t raw_tid =
            ev.find("tid") ? ev.find("tid")->asUint() : 0;
        const uint64_t tid = tid_base + raw_tid;

        if (kind == "M") {
            if (name->asString() == "thread_name") {
                if (const JsonValue *args = ev.find("args")) {
                    if (const JsonValue *n = args->find("name")) {
                        (*track_names)[tid] =
                            n->asString() + " (a" +
                            std::to_string(
                                (tid_base - 1) / kAttemptTidStride
                                + 1) + ")";
                    }
                }
            }
            continue;
        }

        const double ts_us =
            start_us +
            (ev.find("ts") ? ev.find("ts")->asUint() : 0) * scale;
        if (kind == "B") {
            open[tid].push_back({name->asString(), ts_us});
        } else if (kind == "E") {
            auto &stack = open[tid];
            if (stack.empty())
                continue;  // stray End (ring drop): discard
            Slice s;
            s.name = stack.back().name;
            s.startUs = stack.back().startUs;
            s.endUs = ts_us;
            s.tid = tid;
            stack.pop_back();
            slices->push_back(std::move(s));
        }
        // Instants/counters: dropped on purpose (see doc comment).
    }

    // Dangling Begins (child died or ring dropped the End): close at
    // the attempt end so every emitted span is complete.
    for (auto &[tid, stack] : open) {
        while (!stack.empty()) {
            Slice s;
            s.name = stack.back().name;
            s.startUs = stack.back().startUs;
            s.endUs = end_us;
            s.tid = tid;
            stack.pop_back();
            slices->push_back(std::move(s));
        }
    }
}

/**
 * Emit @p slices of one pid as properly nested B/E events: sorted by
 * start (ties: longer first) per tid, Begin emitted at open, End
 * when the next slice starts after its end. A simple stack replay —
 * slices from foldChildTrace already nest (they came from balanced
 * stacks), so this is just ordering.
 */
void
emitSlices(JsonWriter &jw, uint64_t pid, std::vector<Slice> slices)
{
    std::stable_sort(slices.begin(), slices.end(),
                     [](const Slice &a, const Slice &b) {
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.startUs != b.startUs)
                             return a.startUs < b.startUs;
                         return a.endUs > b.endUs;
                     });
    std::vector<const Slice *> stack;
    uint64_t cur_tid = ~0ull;
    auto drain = [&](double until_us) {
        while (!stack.empty() &&
               stack.back()->endUs <= until_us + 1e-9) {
            spanEvent(jw, "E", stack.back()->name,
                      stack.back()->endUs, pid, stack.back()->tid);
            stack.pop_back();
        }
    };
    for (const Slice &s : slices) {
        if (s.tid != cur_tid) {
            drain(1e300);
            cur_tid = s.tid;
        }
        drain(s.startUs);
        spanEvent(jw, "B", s.name, s.startUs, pid, s.tid);
        stack.push_back(&s);
    }
    drain(1e300);
}

} // anonymous namespace

Status
writeSweepTrace(const std::string &path, const SweepSpanLog &spans,
                const std::string &events_dir)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.beginArray("traceEvents");

        // --- pid 0: the scheduler itself ---
        metaEvent(jw, "process_name", 0, 0, false, "scheduler");
        metaEvent(jw, "thread_name", 0, 0, true, "control");
        const double sweep_us = usOf(spans.sweepSeconds());
        spanEvent(jw, "B", "sweep", 0.0, 0, 0);

        // Worker-slot occupancy tracks (tid 1+slot).
        unsigned max_slot = 0;
        for (const AttemptSpan &a : spans.attempts())
            max_slot = std::max(max_slot, a.slot);
        for (unsigned s = 0; s <= max_slot; ++s) {
            metaEvent(jw, "thread_name", 0, 1 + s, true,
                      "worker " + std::to_string(s));
        }
        {
            std::vector<Slice> slot_slices;
            for (const AttemptSpan &a : spans.attempts()) {
                Slice s;
                s.name = "job " + std::to_string(a.job) + " a" +
                         std::to_string(a.attempt);
                s.startUs = usOf(a.startSec);
                s.endUs = usOf(a.endSec);
                s.tid = 1 + a.slot;
                slot_slices.push_back(std::move(s));
            }
            emitSlices(jw, 0, std::move(slot_slices));
        }
        spanEvent(jw, "E", "sweep", sweep_us, 0, 0);

        // --- one pid per job ---
        std::map<uint64_t, std::vector<const AttemptSpan *>> by_job;
        for (const AttemptSpan &a : spans.attempts())
            by_job[a.job].push_back(&a);

        for (auto &[job, list] : by_job) {
            const uint64_t pid = kJobPidBase + job;
            metaEvent(jw, "process_name", pid, 0, false,
                      "job " + std::to_string(job) + ": " +
                          list.front()->label);
            metaEvent(jw, "thread_name", pid, 0, true, "attempts");

            std::vector<Slice> slices;
            double job_start = list.front()->startSec;
            double job_end = list.front()->endSec;
            for (const AttemptSpan *a : list) {
                job_start = std::min(job_start, a->startSec);
                job_end = std::max(job_end, a->endSec);
            }
            for (const BackoffSpan &b : spans.backoffs()) {
                if (b.job != job)
                    continue;
                job_end = std::max(job_end, b.endSec);
                Slice s;
                s.name = "backoff";
                s.startUs = usOf(b.startSec);
                s.endUs = usOf(b.endSec);
                s.tid = 0;
                slices.push_back(std::move(s));
            }
            {
                Slice s;
                s.name = "job " + std::to_string(job);
                s.startUs = usOf(job_start);
                s.endUs = usOf(job_end);
                s.tid = 0;
                slices.push_back(std::move(s));
            }
            std::map<uint64_t, std::string> track_names;
            for (const AttemptSpan *a : list) {
                Slice s;
                s.name = "attempt " + std::to_string(a->attempt) +
                         (a->cls.empty() ? "" : " [" + a->cls + "]");
                s.startUs = usOf(a->startSec);
                s.endUs = usOf(a->endSec);
                s.tid = 0;
                slices.push_back(std::move(s));

                if (!events_dir.empty()) {
                    const std::string file =
                        events_dir + "/job-" + std::to_string(job) +
                        "-a" + std::to_string(a->attempt) + ".json";
                    foldChildTrace(
                        file, usOf(a->startSec), usOf(a->endSec),
                        1 + (uint64_t)(a->attempt - 1) *
                                kAttemptTidStride,
                        &slices, &track_names);
                }
            }
            for (const auto &[tid, name] : track_names)
                metaEvent(jw, "thread_name", pid, tid, true, name);
            emitSlices(jw, pid, std::move(slices));
        }

        jw.endArray();
        jw.field("displayTimeUnit", "ms");
        jw.endObject();
    }
    std::string text = os.str();
    text += '\n';
    return writeFileAtomic(path, text);
}

} // namespace xbs
