/**
 * @file
 * The streaming statistics layer: rides IntervalSampler windows and
 * keeps, per tracked metric, a StreamStat (Welford mean/variance,
 * lag-1 autocorrelation, batch-means 95% CI) plus an online phase
 * segmentation over the per-window attribution vectors.
 *
 * Tracked metrics: window bandwidth (uops/cycle), window stall
 * cycles, and every per-cause attribution delta
 * ("attrib.uops.<cause>", "attrib.cycles.<cause>") present in the
 * sampled stat tree.
 *
 * The layer is a pure observer: it installs the sampler's window
 * hook, reads the not-yet-committed deltas, and never touches a
 * simulator counter — paper metrics are byte-identical with the
 * layer attached or not. When the sampler writes JSONL, the layer
 * appends one member, the window's "phase" id.
 */

#ifndef XBS_OBS_STATS_STATS_LAYER_HH
#define XBS_OBS_STATS_STATS_LAYER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/interval_stats.hh"
#include "obs/stats/phase_detect.hh"
#include "obs/stats/stream_stats.hh"

namespace xbs
{

class JsonWriter;

class StatsLayer
{
  public:
    struct Config
    {
        StreamStat::Config ci;
        PhaseDetector::Config phase;
    };

    /** One tracked metric and its streaming estimator. */
    struct Metric
    {
        std::string name;      ///< "bandwidth", "stallCycles",
                               ///< "attrib.uops.coldStart", ...
        std::size_t pathIdx;   ///< sampler path index (npos: derived)
        StreamStat stat;
    };

    /** Installs the window hook on @p sampler; the layer must
     *  outlive the sampler's last emitted window. */
    StatsLayer(IntervalSampler &sampler, Config cfg);

    explicit StatsLayer(IntervalSampler &sampler)
        : StatsLayer(sampler, Config{})
    {
    }

    /**
     * Fired when a window is assigned a different phase than the
     * previous window (including the first window). Drivers hang the
     * Perfetto phase track and the heartbeat phase field off this.
     */
    void
    setPhaseCallback(std::function<void(int phase, uint64_t window)> fn)
    {
        phaseCb_ = std::move(fn);
    }

    uint64_t windows() const { return windows_; }
    const std::vector<Metric> &metrics() const { return metrics_; }
    const PhaseDetector &detector() const { return detector_; }
    const Config &config() const { return cfg_; }

    /** Emit the "stats" JSON member: per-metric
     *  {mean, var, lag1, ci95, batches} (insufficientData when the
     *  batch-means estimator cannot produce an honest CI). Attrib
     *  metrics that never fired are skipped. */
    void writeStatsJson(JsonWriter &jw) const;

    /** Emit the "phases" JSON member: the phase table (per-phase
     *  normalized mean attribution vector, window count,
     *  representative window). */
    void writePhasesJson(JsonWriter &jw) const;

    /** Human-readable summary (xbsim --stats text mode). */
    void writeText(std::ostream &os) const;

  private:
    void onWindow(const IntervalSampler::WindowInfo &info,
                  JsonWriter *jw);

    IntervalSampler &sampler_;
    Config cfg_;
    std::vector<Metric> metrics_;        ///< [0] bandwidth (derived)
    std::vector<std::size_t> attribIdx_; ///< sampler indices, vector order
    std::vector<std::string> attribKeys_;///< "attrib.uops.<cause>", ...
    PhaseDetector detector_;
    uint64_t windows_ = 0;
    int lastPhase_ = -1;
    std::function<void(int, uint64_t)> phaseCb_;
};

} // namespace xbs

#endif // XBS_OBS_STATS_STATS_LAYER_HH
