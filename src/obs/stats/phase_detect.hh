/**
 * @file
 * Online phase segmentation over per-window attribution vectors.
 *
 * Each interval window yields a vector of attrib deltas (uops and
 * stall cycles per root cause). L1-normalizing the vector turns it
 * into a *shape* — which mechanisms the window's work went to —
 * independent of how much work the window did. Workload phases are
 * runs of windows with the same shape; a change point is a window
 * whose Manhattan distance from the current phase's running mean
 * shape exceeds a threshold, confirmed by hysteresis (a single
 * outlier window — one cold miss burst — must not split a phase).
 *
 * Phase IDs are stable: when a confirmed change point's shape matches
 * an *earlier* phase's mean within the threshold, that phase's ID is
 * reused (A-B-A patterns keep two IDs, not three). The detector keeps
 * a phase table (mean shape, window count, representative window)
 * for end-of-run reporting.
 *
 * Invariant (tested): every observed window is counted in exactly one
 * phase, so per-phase window counts sum to the total window count.
 */

#ifndef XBS_OBS_STATS_PHASE_DETECT_HH
#define XBS_OBS_STATS_PHASE_DETECT_HH

#include <cstdint>
#include <vector>

namespace xbs
{

class PhaseDetector
{
  public:
    struct Config
    {
        /** Manhattan distance (on L1-normalized vectors, range
         *  [0, 2]) beyond which a window is an outlier vs. the
         *  current phase mean. */
        double threshold = 0.25;
        /** Consecutive outlier windows required to confirm a change
         *  point (>= 1). */
        unsigned hysteresis = 2;
    };

    struct Phase
    {
        int id = 0;
        std::vector<double> mean;   ///< running mean shape
        uint64_t windows = 0;       ///< windows labeled with this id
        uint64_t firstWindow = 0;
        /** Window closest to the running mean at observation time
         *  (a cheap online stand-in for the medoid). */
        uint64_t representative = 0;
        /** Distance the representative scored (internal). */
        double repDist = 1e300;
    };

    explicit PhaseDetector(Config cfg);
    PhaseDetector() : PhaseDetector(Config{}) {}

    /**
     * Classify one window. @p raw is the window's attrib delta
     * vector (unnormalized; all dimensions, fixed order); @p window
     * is its index. Returns the phase ID assigned to this window.
     * An all-zero window (no attributable activity) stays in the
     * current phase without perturbing its mean.
     */
    int observe(const std::vector<double> &raw, uint64_t window);

    int currentPhase() const { return current_; }
    const std::vector<Phase> &phases() const { return phases_; }
    uint64_t windowsObserved() const { return observed_; }

  private:
    static double manhattan(const std::vector<double> &a,
                            const std::vector<double> &b);
    void assimilate(Phase &p, const std::vector<double> &v,
                    uint64_t window);
    int startPhase(const std::vector<double> &v, uint64_t window);

    Config cfg_;
    std::vector<Phase> phases_;
    int current_ = -1;
    unsigned outliers_ = 0;  ///< consecutive outliers pending
    uint64_t observed_ = 0;
};

} // namespace xbs

#endif // XBS_OBS_STATS_PHASE_DETECT_HH
