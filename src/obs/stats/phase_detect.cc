#include "obs/stats/phase_detect.hh"

#include <cmath>

namespace xbs
{

PhaseDetector::PhaseDetector(Config cfg) : cfg_(cfg)
{
    if (cfg_.hysteresis < 1)
        cfg_.hysteresis = 1;
}

double
PhaseDetector::manhattan(const std::vector<double> &a,
                         const std::vector<double> &b)
{
    double d = 0.0;
    const std::size_t n = a.size() < b.size() ? a.size() : b.size();
    for (std::size_t i = 0; i < n; ++i)
        d += std::fabs(a[i] - b[i]);
    for (std::size_t i = n; i < a.size(); ++i)
        d += std::fabs(a[i]);
    for (std::size_t i = n; i < b.size(); ++i)
        d += std::fabs(b[i]);
    return d;
}

void
PhaseDetector::assimilate(Phase &p, const std::vector<double> &v,
                          uint64_t window)
{
    ++p.windows;
    if (p.mean.size() < v.size())
        p.mean.resize(v.size(), 0.0);
    for (std::size_t i = 0; i < v.size(); ++i)
        p.mean[i] += (v[i] - p.mean[i]) / (double)p.windows;
    // The representative chases the running mean: the window that
    // scored the smallest distance to the mean as it stood when the
    // window was observed. As the mean converges, later in-phase
    // windows can displace the founding window.
    const double d = manhattan(v, p.mean);
    if (d < p.repDist) {
        p.repDist = d;
        p.representative = window;
    }
}

int
PhaseDetector::startPhase(const std::vector<double> &v,
                          uint64_t window)
{
    Phase p;
    p.id = (int)phases_.size();
    p.mean = v;
    p.windows = 1;
    p.firstWindow = window;
    p.representative = window;
    phases_.push_back(std::move(p));
    return phases_.back().id;
}

int
PhaseDetector::observe(const std::vector<double> &raw, uint64_t window)
{
    ++observed_;

    // L1-normalize: phase identity is the *shape* of the activity.
    double sum = 0.0;
    for (double x : raw)
        sum += std::fabs(x);
    std::vector<double> v(raw.size(), 0.0);
    if (sum > 0.0) {
        for (std::size_t i = 0; i < raw.size(); ++i)
            v[i] = raw[i] / sum;
    }

    if (current_ < 0) {
        current_ = startPhase(v, window);
        outliers_ = 0;
        return current_;
    }

    Phase &cur = phases_[(std::size_t)current_];

    // A window with no attributable activity carries no shape
    // evidence: count it into the current phase, leave the mean
    // alone, and do not let it advance the outlier counter.
    if (sum <= 0.0) {
        ++cur.windows;
        return current_;
    }

    if (manhattan(v, cur.mean) <= cfg_.threshold) {
        outliers_ = 0;
        assimilate(cur, v, window);
        return current_;
    }

    // Outlier. Below the hysteresis count it stays in the current
    // phase (counted, mean untouched, so one burst cannot drag the
    // mean toward itself and manufacture a change point).
    if (++outliers_ < cfg_.hysteresis) {
        ++cur.windows;
        return current_;
    }

    // Change point confirmed: re-match against every known phase so
    // an A-B-A workload reuses A's id instead of minting a third.
    outliers_ = 0;
    int best = -1;
    double best_d = cfg_.threshold;
    for (const Phase &p : phases_) {
        const double d = manhattan(v, p.mean);
        if (d <= best_d) {
            best_d = d;
            best = p.id;
        }
    }
    if (best >= 0) {
        current_ = best;
        assimilate(phases_[(std::size_t)best], v, window);
    } else {
        current_ = startPhase(v, window);
    }
    return current_;
}

} // namespace xbs
