#include "obs/stats/stats_layer.hh"

#include <cstdio>

#include "attrib/taxonomy.hh"
#include "common/json.hh"

namespace xbs
{

StatsLayer::StatsLayer(IntervalSampler &sampler, Config cfg)
    : sampler_(sampler), cfg_(cfg), detector_(cfg.phase)
{
    // Metric 0: window bandwidth, derived from the headline deltas
    // the sampler already computes. Metric 1: stall cycles (absent
    // from trees without a frontend group — synthetic test trees —
    // where it must not fall back to the bandwidth sentinel).
    metrics_.push_back({"bandwidth", IntervalSampler::npos, {}});
    if (std::size_t idx =
            sampler_.findPathIndex("frontend.stallCycles");
        idx != IntervalSampler::npos) {
        metrics_.push_back({"stallCycles", idx, {}});
    }

    // Every per-cause attribution counter in the sampled tree, in
    // path order: these form the phase-segmentation vector and each
    // gets its own estimator.
    const std::vector<std::string> &paths = sampler_.paths();
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (!isAttribDeltaPath(paths[i]))
            continue;
        attribIdx_.push_back(i);
        attribKeys_.push_back(attribDeltaKey(paths[i]));
        metrics_.push_back({attribKeys_.back(), i, {}});
    }

    sampler_.setWindowHook(
        [this](const IntervalSampler::WindowInfo &info,
               JsonWriter *jw) { onWindow(info, jw); });
}

void
StatsLayer::onWindow(const IntervalSampler::WindowInfo &info,
                     JsonWriter *jw)
{
    ++windows_;

    for (Metric &m : metrics_) {
        if (m.pathIdx == IntervalSampler::npos)
            m.stat.push(info.bandwidth);
        else
            m.stat.push((double)sampler_.pendingDelta(m.pathIdx));
    }

    std::vector<double> vec(attribIdx_.size(), 0.0);
    for (std::size_t i = 0; i < attribIdx_.size(); ++i)
        vec[i] = (double)sampler_.pendingDelta(attribIdx_[i]);
    const int phase = detector_.observe(vec, info.index);

    if (jw)
        jw->field("phase", (uint64_t)phase);

    if (phase != lastPhase_) {
        lastPhase_ = phase;
        if (phaseCb_)
            phaseCb_(phase, info.index);
    }
}

void
StatsLayer::writeStatsJson(JsonWriter &jw) const
{
    jw.beginObject("stats");
    jw.field("windows", windows_);
    jw.field("windowCycles", sampler_.interval());
    for (const Metric &m : metrics_) {
        // Attribution causes this run never charged would be rows of
        // zeros; skip them (mirrors the nonzero-only delta emission).
        if (m.pathIdx != IntervalSampler::npos &&
            m.stat.mean() == 0.0 && m.stat.variance() == 0.0) {
            continue;
        }
        jw.beginObject(m.name);
        jw.fieldFull("mean", m.stat.mean());
        jw.fieldFull("var", m.stat.variance());
        jw.fieldFull("lag1", m.stat.lag1());
        const StreamStat::Ci95 ci = m.stat.ci95(cfg_.ci);
        if (ci.valid) {
            jw.fieldFull("ci95", ci.halfWidth);
            jw.field("batches", ci.batches);
            jw.field("batchSize", ci.batchSize);
        } else {
            jw.field("insufficientData", true);
        }
        jw.endObject();
    }
    jw.endObject();
}

void
StatsLayer::writePhasesJson(JsonWriter &jw) const
{
    jw.beginArray("phases");
    for (const PhaseDetector::Phase &p : detector_.phases()) {
        jw.beginObject();
        jw.field("id", (uint64_t)p.id);
        jw.field("windows", p.windows);
        jw.field("firstWindow", p.firstWindow);
        jw.field("representative", p.representative);
        jw.beginObject("mean");
        for (std::size_t i = 0;
             i < p.mean.size() && i < attribKeys_.size(); ++i) {
            if (p.mean[i] != 0.0)
                jw.field(attribKeys_[i], p.mean[i]);
        }
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
}

void
StatsLayer::writeText(std::ostream &os) const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  interval stats: %llu windows of %llu cycles\n",
                  (unsigned long long)windows_,
                  (unsigned long long)sampler_.interval());
    os << buf;
    for (const Metric &m : metrics_) {
        if (m.pathIdx != IntervalSampler::npos &&
            m.stat.mean() == 0.0 && m.stat.variance() == 0.0) {
            continue;
        }
        const StreamStat::Ci95 ci = m.stat.ci95(cfg_.ci);
        if (ci.valid) {
            std::snprintf(buf, sizeof(buf),
                          "    %-28s mean %12.4f  lag1 %+.3f  "
                          "ci95 +-%.4f (%llu batches x %llu)\n",
                          m.name.c_str(), m.stat.mean(),
                          m.stat.lag1(), ci.halfWidth,
                          (unsigned long long)ci.batches,
                          (unsigned long long)ci.batchSize);
        } else {
            std::snprintf(buf, sizeof(buf),
                          "    %-28s mean %12.4f  lag1 %+.3f  "
                          "ci95 insufficient data\n",
                          m.name.c_str(), m.stat.mean(),
                          m.stat.lag1());
        }
        os << buf;
    }
    const auto &phases = detector_.phases();
    std::snprintf(buf, sizeof(buf), "  phases: %zu detected\n",
                  phases.size());
    os << buf;
    for (const PhaseDetector::Phase &p : phases) {
        std::snprintf(buf, sizeof(buf),
                      "    phase %d: %llu windows (first %llu, "
                      "representative %llu)\n",
                      p.id, (unsigned long long)p.windows,
                      (unsigned long long)p.firstWindow,
                      (unsigned long long)p.representative);
        os << buf;
    }
}

} // namespace xbs
