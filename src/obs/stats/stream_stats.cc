#include "obs/stats/stream_stats.hh"

#include <cmath>

namespace xbs
{

double
tCritical95(uint64_t df)
{
    // Two-sided 95% (upper 2.5%) Student-t critical values.
    static const double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 1e30;  // no estimate is ever significant on 0 df
    if (df <= 30)
        return kTable[df];
    if (df <= 40)
        return 2.021;
    if (df <= 60)
        return 2.000;
    if (df <= 120)
        return 1.980;
    return 1.960;
}

double
lag1Autocorr(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= (double)n;
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double c = xs[i] - mean;
        den += c * c;
        if (i + 1 < n)
            num += c * (xs[i + 1] - mean);
    }
    return den > 0.0 ? num / den : 0.0;
}

void
StreamStat::push(double x)
{
    // Welford.
    ++n_;
    const double d = x - mean_;
    mean_ += d / (double)n_;
    m2_ += d * (x - mean_);

    // Lag-1 raw accumulators.
    if (n_ == 1)
        first_ = x;
    else
        sumCross_ += prev_ * x;
    prev_ = x;

    // Batch means with size doubling: collapse pairwise when the
    // bounded buffer fills, so memory stays O(1) for any run length.
    batchAcc_ += x;
    if (++batchFill_ == batchSize_) {
        batchMeans_.push_back(batchAcc_ / (double)batchSize_);
        batchAcc_ = 0.0;
        batchFill_ = 0;
        if (batchMeans_.size() == kMaxBatches) {
            for (std::size_t i = 0; i < kMaxBatches / 2; ++i) {
                batchMeans_[i] = 0.5 * (batchMeans_[2 * i] +
                                        batchMeans_[2 * i + 1]);
            }
            batchMeans_.resize(kMaxBatches / 2);
            batchSize_ *= 2;
        }
    }
}

double
StreamStat::lag1() const
{
    // r1 = sum (x_t - m)(x_{t+1} - m) / sum (x_t - m)^2, with the
    // centered cross-sum reconstructed from the running product sum
    // and the series endpoints:
    //   sum (x_t - m)(x_{t+1} - m)
    //     = sumCross - m*(2*sumAll - first - last) + (n-1)*m^2
    if (n_ < 2 || m2_ <= 0.0)
        return 0.0;
    const double sum_all = mean_ * (double)n_;
    const double num = sumCross_ -
                       mean_ * (2.0 * sum_all - first_ - prev_) +
                       (double)(n_ - 1) * mean_ * mean_;
    return num / m2_;
}

StreamStat::Ci95
StreamStat::ci95(const Config &cfg) const
{
    Ci95 out;
    const uint64_t min_b = cfg.minBatches < 2 ? 2 : cfg.minBatches;
    std::vector<double> bm = batchMeans_;  // completed batches only
    uint64_t bsize = batchSize_;

    // Merge adjacent batches until their means decorrelate; give up
    // (insufficient data) before dropping below the minimum count.
    while (true) {
        if (bm.size() < min_b)
            return out;  // valid == false: insufficientData
        if (lag1Autocorr(bm) <= cfg.autocorrThreshold)
            break;
        if (bm.size() / 2 < min_b)
            return out;
        for (std::size_t i = 0; i < bm.size() / 2; ++i)
            bm[i] = 0.5 * (bm[2 * i] + bm[2 * i + 1]);
        bm.resize(bm.size() / 2);
        bsize *= 2;
    }

    const std::size_t k = bm.size();
    double bmean = 0.0;
    for (double b : bm)
        bmean += b;
    bmean /= (double)k;
    double s2 = 0.0;
    for (double b : bm)
        s2 += (b - bmean) * (b - bmean);
    s2 /= (double)(k - 1);

    out.valid = true;
    out.halfWidth = tCritical95(k - 1) * std::sqrt(s2 / (double)k);
    out.batches = k;
    out.batchSize = bsize;
    return out;
}

StreamStat::Ci95
StreamStat::naiveCi95() const
{
    Ci95 out;
    if (n_ < 2)
        return out;
    out.valid = true;
    out.halfWidth =
        tCritical95(n_ - 1) * std::sqrt(variance() / (double)n_);
    out.batches = n_;
    out.batchSize = 1;
    return out;
}

} // namespace xbs
