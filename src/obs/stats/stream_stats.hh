/**
 * @file
 * Streaming per-metric statistics over interval windows: Welford
 * online mean/variance, lag-1 autocorrelation, and a batch-means 95%
 * confidence interval that is honest about autocorrelated windows.
 *
 * Interval windows from one run are *not* independent samples — a
 * workload phase stretches across many adjacent windows, so a naive
 * i.i.d. t-interval on the window series is far too narrow. The
 * classic fix (batch means, see any discrete-event-simulation text)
 * merges adjacent windows into batches until the batch means are
 * approximately uncorrelated, then applies the t-interval to the
 * batch means. When too few batches survive the merging, the
 * estimator reports "insufficient data" instead of inventing a CI —
 * downstream gates (xbregress) fall back to the legacy raw-threshold
 * comparison in that case.
 *
 * Memory is O(1): the batch-mean buffer is bounded (64 entries) and
 * collapses pairwise, doubling the batch size, whenever it fills.
 */

#ifndef XBS_OBS_STATS_STREAM_STATS_HH
#define XBS_OBS_STATS_STREAM_STATS_HH

#include <cstdint>
#include <vector>

namespace xbs
{

/** Two-sided 95% Student-t critical value for @p df degrees of
 *  freedom (tabulated through 30, then the standard coarse steps;
 *  1.96 asymptotically). df 0 returns +inf's stand-in (a huge value)
 *  so a 1-sample "interval" can never look significant. */
double tCritical95(uint64_t df);

/** Lag-1 autocorrelation of a finite series (0 when n < 2 or the
 *  series is constant). */
double lag1Autocorr(const std::vector<double> &xs);

class StreamStat
{
  public:
    struct Config
    {
        /** Batch means are merged pairwise until their lag-1
         *  autocorrelation drops to this threshold or below. */
        double autocorrThreshold = 0.10;
        /** Minimum batches for a t-interval; fewer (after merging)
         *  means insufficientData. */
        uint64_t minBatches = 8;
    };

    /** One 95% confidence interval (half-width form: mean ± half). */
    struct Ci95
    {
        bool valid = false;     ///< false: insufficient data
        double halfWidth = 0.0;
        uint64_t batches = 0;   ///< batch means the t-interval used
        uint64_t batchSize = 0; ///< windows per batch at that level
    };

    void push(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance of the raw window series (n-1 denominator). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / (double)(n_ - 1) : 0.0;
    }

    /** Lag-1 autocorrelation of the raw window series. */
    double lag1() const;

    /** Batch-means CI (honest under autocorrelation). */
    Ci95 ci95(const Config &cfg) const;
    Ci95 ci95() const { return ci95(Config{}); }

    /** The naive i.i.d. t-interval on the raw windows — what the CI
     *  would be if windows were independent. Kept for comparison and
     *  the widens-under-autocorrelation test; never used for gating. */
    Ci95 naiveCi95() const;

  private:
    static constexpr std::size_t kMaxBatches = 64;

    // Welford accumulators over the raw series.
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;

    // Lag-1 accumulators: sum of adjacent products plus the series
    // endpoints reconstruct the centered cross-sum exactly.
    double sumCross_ = 0.0;
    double first_ = 0.0;
    double prev_ = 0.0;

    // Bounded batch-mean buffer with batch-size doubling.
    std::vector<double> batchMeans_;
    uint64_t batchSize_ = 1;
    double batchAcc_ = 0.0;
    uint64_t batchFill_ = 0;
};

} // namespace xbs

#endif // XBS_OBS_STATS_STREAM_STATS_HH
