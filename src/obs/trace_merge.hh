/**
 * @file
 * Sweep trace merge: fold the scheduler's span log and the per-child
 * xbsim event traces into ONE Perfetto/Chrome trace-event JSON file.
 *
 * Output layout (one timeline for the whole sweep; ts in µs of host
 * time since sweep start):
 *
 *  - pid 0 "scheduler": tid 0 carries the enclosing "sweep" span;
 *    tid 1+slot ("worker N") carries each slot's occupancy slices.
 *  - pid 100+job ("job <id>: <label>"): tid 0 nests the "job" span
 *    around its "attempt N" and "backoff" children; tids 1.. carry
 *    the child simulator's own phase tracks for each attempt,
 *    remapped from the child trace file.
 *
 * Child xbsim traces timestamp in simulated cycles; the merge scales
 * them linearly into the attempt's host-time window so in-sim phases
 * line up with the supervision spans around them. Unbalanced child
 * events (ring-buffer drops) are repaired: stray Ends are dropped,
 * dangling Begins are closed at the attempt end — the merged file
 * never contains an orphan span.
 */

#ifndef XBS_OBS_TRACE_MERGE_HH
#define XBS_OBS_TRACE_MERGE_HH

#include <string>

#include "common/status.hh"
#include "obs/span.hh"

namespace xbs
{

/**
 * Write the merged sweep trace to @p path (atomically).
 *
 * @param spans      completed span log (finishSweep() must have run)
 * @param events_dir directory holding per-attempt child traces named
 *                   job-<id>-a<attempt>.json; "" or missing files
 *                   simply omit the in-sim tracks
 */
Status writeSweepTrace(const std::string &path,
                       const SweepSpanLog &spans,
                       const std::string &events_dir);

} // namespace xbs

#endif // XBS_OBS_TRACE_MERGE_HH
