#include "obs/span.hh"

namespace xbs
{

void
SweepSpanLog::startSweep()
{
    started_ = true;
    t0_ = Clock::now();
}

double
SweepSpanLog::now() const
{
    if (!started_)
        return 0.0;
    return std::chrono::duration<double>(Clock::now() - t0_).count();
}

void
SweepSpanLog::noteLaunch(uint64_t job, const std::string &label,
                         unsigned attempt, unsigned slot)
{
    AttemptSpan span;
    span.job = job;
    span.label = label;
    span.attempt = attempt;
    span.slot = slot;
    span.startSec = now();
    attempts_.push_back(std::move(span));
}

void
SweepSpanLog::noteExit(uint64_t job, unsigned attempt,
                       const std::string &cls)
{
    for (auto it = attempts_.rbegin(); it != attempts_.rend(); ++it) {
        if (it->job == job && it->attempt == attempt && it->open) {
            it->open = false;
            it->endSec = now();
            it->cls = cls;
            return;
        }
    }
}

void
SweepSpanLog::noteBackoff(uint64_t job, unsigned attempt,
                          double start_sec, double end_sec)
{
    BackoffSpan span;
    span.job = job;
    span.attempt = attempt;
    span.startSec = start_sec;
    span.endSec = end_sec < start_sec ? start_sec : end_sec;
    backoffs_.push_back(span);
}

void
SweepSpanLog::finishSweep()
{
    sweepSeconds_ = now();
    for (AttemptSpan &span : attempts_) {
        if (span.open) {
            span.open = false;
            span.endSec = sweepSeconds_;
        }
    }
}

} // namespace xbs
