/**
 * @file
 * Per-process heartbeats: the simulator's live progress channel.
 *
 * A running xbsim periodically (on a host-time cadence, checked every
 * few thousand simulated cycles) rewrites one small JSON file with
 * its current progress: uops retired, the trace's total, the phase it
 * is in, host-side throughput, RSS, and a monotonic sequence number.
 * The write is atomic (write-temp + rename), so a concurrent reader —
 * the sweep watchdog, xbtop — sees either the previous or the new
 * complete record, never a torn one, even across a crash mid-rename
 * (the stale temp file is simply ignored and later overwritten).
 *
 * The record is advisory telemetry, not durable state: writes are
 * NOT fsync'd (a heartbeat that dies with the host is worthless
 * anyway), and a malformed or missing file is an Expected error the
 * reader maps to "no heartbeat yet".
 *
 * Sequence numbers never go backwards across attempts: a writer
 * opened on a path that already holds a record (a retried job reusing
 * its predecessor's file) continues numbering after it.
 */

#ifndef XBS_OBS_HEARTBEAT_HH
#define XBS_OBS_HEARTBEAT_HH

#include <chrono>
#include <csignal>
#include <cstdint>
#include <string>

#include "common/status.hh"

namespace xbs
{

class Frontend;

/** One heartbeat: the progress of one simulator process, right now. */
struct HeartbeatRecord
{
    uint64_t seq = 0;        ///< monotonic per path (across attempts)
    int64_t pid = 0;         ///< writer's process id
    std::string phase;       ///< "start"|"decode"|"restore"|"sim[:mode]"|"flush"|"done"
    uint64_t uops = 0;       ///< uops retired (delivery + build) so far
    uint64_t totalUops = 0;  ///< estimated total from the trace (0: unknown)
    uint64_t cycles = 0;     ///< simulated cycles so far
    double uopsPerSec = 0.0; ///< host rate over the last beat window
    double wallSeconds = 0.0;///< host seconds since the writer started
    uint64_t rssKb = 0;      ///< current peak resident set, KiB
    bool done = false;       ///< final heartbeat of this process
    /** Current workload phase id from the streaming-stats segmenter
     *  (src/obs/stats); -1 when the run has no stats layer or no
     *  window has closed yet. */
    int64_t statsPhase = -1;
    /** Checkpoint path this run restored warm state from (empty =
     *  cold start). Lets a watcher tell a warm run's head start from
     *  a cold run's genuine progress. */
    std::string restoredFrom;
};

/** Serialize @p rec as one compact JSON object. */
std::string renderHeartbeat(const HeartbeatRecord &rec);

/** Inverse of renderHeartbeat. */
Expected<HeartbeatRecord> parseHeartbeat(const std::string &text);

/** Read and parse the heartbeat at @p path ("no heartbeat yet" comes
 *  back as an error Status, which readers treat as absence). */
Expected<HeartbeatRecord> readHeartbeat(const std::string &path);

/**
 * Atomic heartbeat publisher. Construction reads any record already
 * at @p path and continues its sequence numbering, so a retried
 * attempt's heartbeats never appear to go backwards to a watcher.
 */
class HeartbeatWriter
{
  public:
    explicit HeartbeatWriter(std::string path);

    /** Stamp seq/pid/wallSeconds into @p rec and publish it. */
    Status write(HeartbeatRecord &rec);

    uint64_t seq() const { return seq_; }
    const std::string &path() const { return path_; }

  private:
    using Clock = std::chrono::steady_clock;

    std::string path_;
    uint64_t seq_ = 0;
    Clock::time_point start_;
};

/**
 * The xbsim-side emitter: owns a HeartbeatWriter and decides *when*
 * to publish. During run() it is attached as a cycle observer and
 * checks the host clock every few thousand cycles (a clock read is
 * ~20ns; the cadence keeps the overhead unmeasurable); outside the
 * run loop the driver forces beats at phase transitions via beat().
 *
 * Not a CycleObserver subclass on purpose: frontend.hh must not
 * depend on obs, so xbsim wraps onCycle in a tiny adapter.
 */
class HeartbeatEmitter
{
  public:
    /** @param period_sec host seconds between beats (>= 0.01). */
    HeartbeatEmitter(std::string path, double period_sec);

    /** Set the phase reported by subsequent beats ("decode", ...). */
    void setPhase(std::string phase) { phase_ = std::move(phase); }

    /** Total-uops estimate, once the trace is materialized. */
    void setTotalUops(uint64_t total) { totalUops_ = total; }

    /** Workload phase id reported by subsequent beats (-1: none). */
    void setStatsPhase(int64_t phase) { statsPhase_ = phase; }

    /** Checkpoint path reported by subsequent beats (warm starts). */
    void
    setRestoredFrom(std::string path)
    {
        restoredFrom_ = std::move(path);
    }

    /** Publish a beat immediately (phase transitions, final flush).
     *  @param fe metrics source; nullptr before the run starts. */
    void beat(const Frontend *fe, bool done = false);

    /** Cycle-cadence hook: publishes when the period has elapsed. */
    void onCycle(const Frontend &fe);

    double periodSec() const { return periodSec_; }
    const HeartbeatWriter &writer() const { return writer_; }

  private:
    using Clock = std::chrono::steady_clock;

    void publish(uint64_t uops, uint64_t cycles, const char *mode,
                 bool done);

    HeartbeatWriter writer_;
    double periodSec_;
    std::string phase_ = "start";
    std::string restoredFrom_;
    uint64_t totalUops_ = 0;
    int64_t statsPhase_ = -1;
    uint64_t ticks_ = 0;
    Clock::time_point lastBeat_;
    uint64_t lastUops_ = 0;
    bool everBeat_ = false;
};

} // namespace xbs

#endif // XBS_OBS_HEARTBEAT_HH
