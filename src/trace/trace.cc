#include "trace/trace.hh"

#include "common/logging.hh"

namespace xbs
{

Trace::Trace(std::shared_ptr<const StaticCode> code,
             std::vector<TraceRecord> records, std::string name)
    : code_(std::move(code)), records_(std::move(records)),
      name_(std::move(name))
{
    xbs_assert(code_ != nullptr && code_->finalized(),
               "trace needs finalized code");
    for (const auto &r : records_) {
        xbs_assert(r.staticIdx >= 0 &&
                   (std::size_t)r.staticIdx < code_->size(),
                   "record index %d out of range", r.staticIdx);
        totalUops_ += code_->inst(r.staticIdx).numUops;
    }
}

void
Trace::validate() const
{
    for (std::size_t i = 0; i + 1 < records_.size(); ++i) {
        const auto &si = inst(i);
        const uint64_t succ = inst(i + 1).ip;
        switch (si.cls) {
          case InstClass::Seq:
            xbs_assert(succ == si.fallThroughIp(),
                       "record %zu: seq successor mismatch", i);
            break;
          case InstClass::CondBranch:
            if (record(i).taken) {
                xbs_assert(si.takenIdx != kNoTarget &&
                           succ == code_->inst(si.takenIdx).ip,
                           "record %zu: taken target mismatch", i);
            } else {
                xbs_assert(succ == si.fallThroughIp(),
                           "record %zu: fall-through mismatch", i);
            }
            break;
          case InstClass::DirectJump:
          case InstClass::DirectCall:
            xbs_assert(si.takenIdx != kNoTarget &&
                       succ == code_->inst(si.takenIdx).ip,
                       "record %zu: direct target mismatch", i);
            break;
          default:
            // Indirect targets are only known dynamically; nothing
            // static to check beyond index validity (checked above).
            break;
        }
    }
}

} // namespace xbs
