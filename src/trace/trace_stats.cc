#include "trace/trace_stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xbs
{

void
BranchBiasTable::observe(int32_t static_idx, bool taken)
{
    auto &c = table_[static_idx];
    c.total += 1;
    if (taken)
        c.taken += 1;
}

uint64_t
BranchBiasTable::count(int32_t static_idx) const
{
    auto it = table_.find(static_idx);
    return it == table_.end() ? 0 : it->second.total;
}

double
BranchBiasTable::bias(int32_t static_idx) const
{
    auto it = table_.find(static_idx);
    if (it == table_.end() || it->second.total == 0)
        return 0.0;
    uint64_t t = it->second.taken;
    uint64_t n = it->second.total - t;
    return (double)std::max(t, n) / (double)it->second.total;
}

bool
BranchBiasTable::monotonic(int32_t static_idx, double threshold) const
{
    return bias(static_idx) >= threshold;
}

void
BlockLengthStats::merge(const BlockLengthStats &other)
{
    basicBlock.merge(other.basicBlock);
    xb.merge(other.xb);
    xbPromoted.merge(other.xbPromoted);
    dualXb.merge(other.dualXb);
}

BranchBiasTable
computeBranchBias(const Trace &trace)
{
    BranchBiasTable bias;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        const auto &si = trace.inst(i);
        if (si.cls == InstClass::CondBranch)
            bias.observe(trace.record(i).staticIdx,
                         trace.record(i).taken != 0);
    }
    return bias;
}

namespace
{

/**
 * Streaming block accumulator: feeds instructions, emits block
 * lengths into a histogram honoring the uop quota.
 */
class BlockAccumulator
{
  public:
    BlockAccumulator(Histogram &hist, unsigned quota)
        : hist_(hist), quota_(quota)
    {
    }

    void
    feed(unsigned uops, bool ends_block)
    {
        // The quota splits an over-long run into quota-sized blocks,
        // mirroring the fill buffer filling up mid-sequence.
        if (len_ + uops > quota_) {
            hist_.add(len_);
            len_ = 0;
        }
        len_ += uops;
        if (ends_block) {
            hist_.add(std::min(len_, quota_));
            len_ = 0;
        }
    }

    void
    flush()
    {
        if (len_ > 0) {
            hist_.add(std::min(len_, quota_));
            len_ = 0;
        }
    }

  private:
    Histogram &hist_;
    unsigned quota_;
    unsigned len_ = 0;
};

} // anonymous namespace

BlockLengthStats
computeBlockLengthStats(const Trace &trace, double promote_threshold,
                        unsigned quota)
{
    BlockLengthStats out;
    BranchBiasTable bias = computeBranchBias(trace);

    BlockAccumulator bb(out.basicBlock, quota);
    BlockAccumulator xb(out.xb, quota);
    BlockAccumulator xbp(out.xbPromoted, quota);

    // Dual-XB pairing state: remember the previous XB length.
    unsigned dual_pending = 0;
    bool dual_have = false;
    unsigned dual_len = 0;

    auto feedDual = [&](unsigned xb_len) {
        if (!dual_have) {
            dual_pending = xb_len;
            dual_have = true;
        } else {
            out.dualXb.add(std::min(dual_pending + xb_len, quota));
            dual_have = false;
        }
    };

    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        const auto &si = trace.inst(i);
        const unsigned uops = si.numUops;

        bb.feed(uops, si.endsBasicBlock());

        // Extended blocks, with a parallel copy feeding the dual-XB
        // pairing (needs explicit lengths, so re-derive them here).
        bool xb_end = si.endsXb();
        xb.feed(uops, xb_end);

        if (dual_len + uops > quota) {
            feedDual(dual_len);
            dual_len = 0;
        }
        dual_len += uops;
        if (xb_end) {
            feedDual(std::min(dual_len, quota));
            dual_len = 0;
        }

        // Promotion view: monotonic conditional branches are absorbed.
        bool xbp_end = xb_end;
        if (si.cls == InstClass::CondBranch &&
            bias.monotonic(trace.record(i).staticIdx,
                           promote_threshold)) {
            xbp_end = false;
        }
        xbp.feed(uops, xbp_end);
    }

    bb.flush();
    xb.flush();
    xbp.flush();
    if (dual_len > 0)
        feedDual(std::min(dual_len, quota));
    if (dual_have)
        out.dualXb.add(std::min(dual_pending, quota));

    return out;
}

} // namespace xbs
