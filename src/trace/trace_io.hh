/**
 * @file
 * Binary trace file format (".xbt").
 *
 * Layout (little endian):
 *   magic  'X','B','T','1'
 *   u32    name length, bytes (at most kMaxTraceNameLen)
 *   u64    instruction count
 *   per instruction: u64 ip, u8 len, u8 uops, u8 cls, i32 takenIdx,
 *                    i32 behaviorId
 *   u64    record count
 *   per record: i32 staticIdx, u8 taken
 *
 * Behaviors are not serialized: a written trace replays exactly, it
 * is not re-executable.
 *
 * readTraceEx() validates everything before constructing the Trace:
 * the magic, the name/instruction/record counts against the file
 * size, each instruction's length (1..15), uop count (1..16), class
 * and takenIdx range, IP uniqueness, and each record's staticIdx
 * range and taken flag. Trailing bytes after the record section are
 * rejected too. A malformed file therefore yields a Status with the
 * offending byte offset, never UB or an abort.
 */

#ifndef XBS_TRACE_TRACE_IO_HH
#define XBS_TRACE_TRACE_IO_HH

#include <string>

#include "common/status.hh"
#include "trace/trace.hh"

namespace xbs
{

/** Format limit on the serialized trace name. The field is a u32,
 *  but no legitimate name approaches this; enforcing a tight cap
 *  turns a corrupt length into an early structured error. */
constexpr std::size_t kMaxTraceNameLen = 4096;

/** Write @p trace to @p path; returns an error Status (with file and
 *  byte-offset context) on I/O failure or a name exceeding the
 *  format's field width — nothing is silently truncated/wrapped. */
Status writeTraceEx(const Trace &trace, const std::string &path);

/** Read and fully validate a trace file written by writeTraceEx(). */
Expected<Trace> readTraceEx(const std::string &path);

/** Legacy wrapper: writeTraceEx(), fatal() on error. */
void writeTrace(const Trace &trace, const std::string &path);

/** Legacy wrapper: readTraceEx(), fatal() on error. */
Trace readTrace(const std::string &path);

} // namespace xbs

#endif // XBS_TRACE_TRACE_IO_HH
