/**
 * @file
 * Binary trace file format (".xbt").
 *
 * Layout (little endian):
 *   magic  'X','B','T','1'
 *   u32    name length, bytes
 *   u64    instruction count
 *   per instruction: u64 ip, u8 len, u8 uops, u8 cls, i32 takenIdx,
 *                    i32 behaviorId
 *   u64    record count
 *   per record: i32 staticIdx, u8 taken
 *
 * Behaviors are not serialized: a written trace replays exactly, it
 * is not re-executable.
 */

#ifndef XBS_TRACE_TRACE_IO_HH
#define XBS_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace xbs
{

/** Write @p trace to @p path; fatal() on I/O failure. */
void writeTrace(const Trace &trace, const std::string &path);

/** Read a trace previously written by writeTrace(). */
Trace readTrace(const std::string &path);

} // namespace xbs

#endif // XBS_TRACE_TRACE_IO_HH
