/**
 * @file
 * Dynamic block-length statistics over a trace (paper Figure 1).
 *
 * Four block types, all capped at 16 uops:
 *  - basic block:      ends on any control instruction;
 *  - extended block:   ends on conditional/indirect branches, calls,
 *                      and returns (direct jumps are absorbed);
 *  - XB w/ promotion:  like XB, but conditional branches whose
 *                      observed bias is >= the promotion threshold do
 *                      not end a block;
 *  - dual XB:          two consecutive XBs fused (capped at 16).
 */

#ifndef XBS_TRACE_TRACE_STATS_HH
#define XBS_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <unordered_map>

#include "common/histogram.hh"
#include "trace/trace.hh"

namespace xbs
{

/** Per-static-branch dynamic bias, gathered in a first pass. */
class BranchBiasTable
{
  public:
    void observe(int32_t static_idx, bool taken);

    /** Executions of the branch. */
    uint64_t count(int32_t static_idx) const;

    /** max(taken, not-taken) / total, or 0 if never seen. */
    double bias(int32_t static_idx) const;

    /** True if the branch is at least @p threshold biased. */
    bool monotonic(int32_t static_idx, double threshold) const;

  private:
    struct Counts { uint64_t taken = 0; uint64_t total = 0; };
    std::unordered_map<int32_t, Counts> table_;
};

/** Result bundle for Figure 1. */
struct BlockLengthStats
{
    Histogram basicBlock{16};
    Histogram xb{16};
    Histogram xbPromoted{16};
    Histogram dualXb{16};

    /** Merge another trace's stats into this aggregate. */
    void merge(const BlockLengthStats &other);
};

/**
 * Compute block-length statistics for @p trace.
 *
 * @param trace              the dynamic trace to analyze
 * @param promote_threshold  bias above which a conditional branch is
 *                           treated as promoted (paper: 99.2%)
 * @param quota              maximum block length in uops (paper: 16)
 */
BlockLengthStats computeBlockLengthStats(const Trace &trace,
                                         double promote_threshold = 0.992,
                                         unsigned quota = 16);

/** First-pass bias computation, exposed for tests and the XFU. */
BranchBiasTable computeBranchBias(const Trace &trace);

} // namespace xbs

#endif // XBS_TRACE_TRACE_STATS_HH
