#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace xbs
{

namespace
{

constexpr char kMagic[4] = {'X', 'B', 'T', '1'};

struct FileCloser
{
    void operator()(FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<FILE, FileCloser>;

template <typename T>
void
put(FILE *f, const T &v)
{
    if (std::fwrite(&v, sizeof(T), 1, f) != 1)
        xbs_fatal("trace write failed");
}

template <typename T>
T
get(FILE *f)
{
    T v;
    if (std::fread(&v, sizeof(T), 1, f) != 1)
        xbs_fatal("trace read failed (truncated file?)");
    return v;
}

} // anonymous namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        xbs_fatal("cannot open '%s' for writing", path.c_str());

    std::fwrite(kMagic, 1, 4, f.get());
    put<uint32_t>(f.get(), (uint32_t)trace.name().size());
    std::fwrite(trace.name().data(), 1, trace.name().size(), f.get());

    const auto &code = trace.code();
    put<uint64_t>(f.get(), code.size());
    for (std::size_t i = 0; i < code.size(); ++i) {
        const auto &si = code.inst((int32_t)i);
        put<uint64_t>(f.get(), si.ip);
        put<uint8_t>(f.get(), si.length);
        put<uint8_t>(f.get(), si.numUops);
        put<uint8_t>(f.get(), (uint8_t)si.cls);
        put<int32_t>(f.get(), si.takenIdx);
        put<int32_t>(f.get(), si.behaviorId);
    }

    put<uint64_t>(f.get(), trace.numRecords());
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        put<int32_t>(f.get(), trace.record(i).staticIdx);
        put<uint8_t>(f.get(), trace.record(i).taken);
    }
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        xbs_fatal("cannot open '%s' for reading", path.c_str());

    char magic[4];
    if (std::fread(magic, 1, 4, f.get()) != 4 ||
        std::memcmp(magic, kMagic, 4) != 0) {
        xbs_fatal("'%s' is not an XBT1 trace file", path.c_str());
    }

    auto name_len = get<uint32_t>(f.get());
    std::string name(name_len, '\0');
    if (name_len &&
        std::fread(name.data(), 1, name_len, f.get()) != name_len) {
        xbs_fatal("trace read failed (name)");
    }

    auto code = std::make_shared<StaticCode>();
    auto num_insts = get<uint64_t>(f.get());
    for (uint64_t i = 0; i < num_insts; ++i) {
        StaticInst si;
        si.ip = get<uint64_t>(f.get());
        si.length = get<uint8_t>(f.get());
        si.numUops = get<uint8_t>(f.get());
        si.cls = (InstClass)get<uint8_t>(f.get());
        si.takenIdx = get<int32_t>(f.get());
        si.behaviorId = get<int32_t>(f.get());
        code->append(si);
    }
    code->finalize();

    auto num_records = get<uint64_t>(f.get());
    std::vector<TraceRecord> records;
    records.reserve(num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
        TraceRecord r;
        r.staticIdx = get<int32_t>(f.get());
        r.taken = get<uint8_t>(f.get());
        records.push_back(r);
    }

    return Trace(std::move(code), std::move(records), std::move(name));
}

} // namespace xbs
