#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_set>

#include "common/logging.hh"

namespace xbs
{

namespace
{

constexpr char kMagic[4] = {'X', 'B', 'T', '1'};

/** Serialized sizes (the structs are written field by field). */
constexpr uint64_t kInstBytes = 8 + 1 + 1 + 1 + 4 + 4;
constexpr uint64_t kRecordBytes = 4 + 1;

struct FileCloser
{
    void operator()(FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<FILE, FileCloser>;

/**
 * Bounds-tracked reader over a stdio stream: every get knows the
 * current byte offset (for error context) and the total file size
 * (so section counts can be sanity-checked before any allocation).
 */
struct Reader
{
    FILE *f = nullptr;
    uint64_t offset = 0;
    uint64_t size = 0;
    Status error;  ///< first failure; reads after it are no-ops

    bool
    read(void *dst, std::size_t n, const char *what)
    {
        if (!error.isOk())
            return false;
        if (std::fread(dst, 1, n, f) != n) {
            error = Status::error(std::string("truncated ") + what)
                        .withOffset(offset);
            return false;
        }
        offset += n;
        return true;
    }

    template <typename T>
    T
    get(const char *what)
    {
        T v{};
        read(&v, sizeof(T), what);
        return v;
    }

    uint64_t remaining() const { return size - offset; }

    void
    fail(std::string cause)
    {
        if (error.isOk())
            error = Status::error(std::move(cause)).withOffset(offset);
    }
};

template <typename T>
bool
put(FILE *f, const T &v)
{
    return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

} // anonymous namespace

Status
writeTraceEx(const Trace &trace, const std::string &path)
{
    // Refuse anything the format fields cannot represent instead of
    // wrapping on the (uint32_t) cast the old writer performed.
    if (trace.name().size() > kMaxTraceNameLen) {
        return Status::error(
            "trace name length " + std::to_string(trace.name().size()) +
            " exceeds the format limit of " +
            std::to_string(kMaxTraceNameLen))
            .withFile(path);
    }

    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return Status::error("cannot open for writing").withFile(path);

    uint64_t offset = 0;
    auto fail = [&]() {
        return Status::error("trace write failed")
            .withFile(path).withOffset(offset);
    };

    if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
        return fail();
    offset += 4;
    if (!put<uint32_t>(f.get(), (uint32_t)trace.name().size()))
        return fail();
    offset += 4;
    if (std::fwrite(trace.name().data(), 1, trace.name().size(),
                    f.get()) != trace.name().size()) {
        return fail();
    }
    offset += trace.name().size();

    const auto &code = trace.code();
    if (!put<uint64_t>(f.get(), code.size()))
        return fail();
    offset += 8;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const auto &si = code.inst((int32_t)i);
        if (!put<uint64_t>(f.get(), si.ip) ||
            !put<uint8_t>(f.get(), si.length) ||
            !put<uint8_t>(f.get(), si.numUops) ||
            !put<uint8_t>(f.get(), (uint8_t)si.cls) ||
            !put<int32_t>(f.get(), si.takenIdx) ||
            !put<int32_t>(f.get(), si.behaviorId)) {
            return fail();
        }
        offset += kInstBytes;
    }

    if (!put<uint64_t>(f.get(), trace.numRecords()))
        return fail();
    offset += 8;
    for (std::size_t i = 0; i < trace.numRecords(); ++i) {
        if (!put<int32_t>(f.get(), trace.record(i).staticIdx) ||
            !put<uint8_t>(f.get(), trace.record(i).taken)) {
            return fail();
        }
        offset += kRecordBytes;
    }
    if (std::fflush(f.get()) != 0)
        return fail();
    return Status::ok();
}

Expected<Trace>
readTraceEx(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return Status::error("cannot open for reading").withFile(path);

    Reader r;
    r.f = f.get();
    if (std::fseek(r.f, 0, SEEK_END) != 0)
        return Status::error("cannot seek").withFile(path);
    long end = std::ftell(r.f);
    if (end < 0)
        return Status::error("cannot tell").withFile(path);
    r.size = (uint64_t)end;
    std::rewind(r.f);

    char magic[4] = {};
    if (!r.read(magic, 4, "header") ||
        std::memcmp(magic, kMagic, 4) != 0) {
        return Status::error("'" + path +
                             "' is not an XBT1 trace file")
            .withOffset(0);
    }

    // Name section, with the length checked against both the format
    // cap and the bytes actually present.
    auto name_len = r.get<uint32_t>("name length");
    if (!r.error.isOk())
        return r.error.withFile(path);
    if (name_len > kMaxTraceNameLen) {
        r.fail("name length " + std::to_string(name_len) +
               " exceeds the format limit of " +
               std::to_string(kMaxTraceNameLen));
        return r.error.withFile(path);
    }
    if (name_len > r.remaining()) {
        r.fail("name length " + std::to_string(name_len) +
               " exceeds the " + std::to_string(r.remaining()) +
               " bytes left in the file");
        return r.error.withFile(path);
    }
    std::string name(name_len, '\0');
    if (name_len && !r.read(name.data(), name_len, "name"))
        return r.error.withFile(path);

    // Instruction section: bound the count by the bytes present
    // before reserving anything, then validate each field so the
    // StaticCode/Trace constructors (which assert) never see junk.
    auto num_insts = r.get<uint64_t>("instruction count");
    if (!r.error.isOk())
        return r.error.withFile(path);
    if (num_insts > r.remaining() / kInstBytes) {
        r.fail("instruction count " + std::to_string(num_insts) +
               " exceeds the " + std::to_string(r.remaining()) +
               " bytes left in the file");
        return r.error.withFile(path);
    }
    if (num_insts > (uint64_t)INT32_MAX) {
        r.fail("instruction count " + std::to_string(num_insts) +
               " exceeds the 31-bit index space");
        return r.error.withFile(path);
    }

    auto code = std::make_shared<StaticCode>();
    std::unordered_set<uint64_t> seen_ips;
    seen_ips.reserve((std::size_t)num_insts);
    for (uint64_t i = 0; i < num_insts; ++i) {
        uint64_t inst_off = r.offset;
        StaticInst si;
        si.ip = r.get<uint64_t>("instruction");
        si.length = r.get<uint8_t>("instruction");
        si.numUops = r.get<uint8_t>("instruction");
        auto cls = r.get<uint8_t>("instruction");
        si.takenIdx = r.get<int32_t>("instruction");
        si.behaviorId = r.get<int32_t>("instruction");
        if (!r.error.isOk())
            return r.error.withFile(path);

        auto bad = [&](const std::string &what) {
            r.error = Status::error("instruction " +
                                    std::to_string(i) + ": " + what)
                          .withOffset(inst_off).withFile(path);
            return r.error;
        };
        if (si.length < 1 || si.length > 15)
            return bad("length " + std::to_string(si.length) +
                       " outside 1..15");
        if (si.numUops < 1 || si.numUops > 16)
            return bad("uop count " + std::to_string(si.numUops) +
                       " outside 1..16");
        if (cls >= (uint8_t)InstClass::NumClasses)
            return bad("unknown class " + std::to_string(cls));
        si.cls = (InstClass)cls;
        if (si.takenIdx != kNoTarget &&
            (si.takenIdx < 0 || (uint64_t)si.takenIdx >= num_insts)) {
            return bad("takenIdx " + std::to_string(si.takenIdx) +
                       " out of range");
        }
        if (si.behaviorId != kNoBehavior && si.behaviorId < 0)
            return bad("negative behaviorId");
        if (!seen_ips.insert(si.ip).second)
            return bad("duplicate ip " + std::to_string(si.ip));
        code->append(si);
    }
    code->finalize();

    // Record section, again count-bounded by the remaining bytes and
    // with every index checked against the code image.
    auto num_records = r.get<uint64_t>("record count");
    if (!r.error.isOk())
        return r.error.withFile(path);
    if (num_records > r.remaining() / kRecordBytes) {
        r.fail("record count " + std::to_string(num_records) +
               " exceeds the " + std::to_string(r.remaining()) +
               " bytes left in the file");
        return r.error.withFile(path);
    }
    std::vector<TraceRecord> records;
    records.reserve((std::size_t)num_records);
    for (uint64_t i = 0; i < num_records; ++i) {
        uint64_t rec_off = r.offset;
        TraceRecord rec;
        rec.staticIdx = r.get<int32_t>("record");
        rec.taken = r.get<uint8_t>("record");
        if (!r.error.isOk())
            return r.error.withFile(path);
        if (rec.staticIdx < 0 ||
            (uint64_t)rec.staticIdx >= num_insts) {
            return Status::error("record " + std::to_string(i) +
                                 ": staticIdx " +
                                 std::to_string(rec.staticIdx) +
                                 " out of range")
                .withOffset(rec_off).withFile(path);
        }
        if (rec.taken > 1) {
            return Status::error("record " + std::to_string(i) +
                                 ": taken flag " +
                                 std::to_string(rec.taken) +
                                 " is not 0/1")
                .withOffset(rec_off).withFile(path);
        }
        records.push_back(rec);
    }

    if (r.remaining() != 0) {
        r.fail(std::to_string(r.remaining()) +
               " trailing bytes after the record section");
        return r.error.withFile(path);
    }

    return Trace(std::move(code), std::move(records),
                 std::move(name));
}

void
writeTrace(const Trace &trace, const std::string &path)
{
    Status st = writeTraceEx(trace, path);
    if (!st) {
        // Attach the path before formatting: a few early failures
        // (e.g. fopen) report only a cause, and the legacy callers
        // have no Status to recover the context from, so the fatal
        // message is their one chance to see file and byte offset.
        st.withFile(path);
        xbs_fatal("%s", st.toString().c_str());
    }
}

Trace
readTrace(const std::string &path)
{
    Expected<Trace> t = readTraceEx(path);
    if (!t) {
        Status st = t.status();
        st.withFile(path);
        xbs_fatal("%s", st.toString().c_str());
    }
    return t.take();
}

} // namespace xbs
