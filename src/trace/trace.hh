/**
 * @file
 * Dynamic instruction traces.
 *
 * A Trace is the unit the standalone frontend simulator consumes (the
 * paper drives its simulator with 30M-instruction x86 traces; ours are
 * synthetic and typically 2M instructions). Each record references a
 * StaticInst by index, so a record is 8 bytes and all static
 * properties (IP, length, uop count, class, direct target) are shared.
 */

#ifndef XBS_TRACE_TRACE_HH
#define XBS_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/static_inst.hh"

namespace xbs
{

/** One dynamic instruction instance. */
struct TraceRecord
{
    int32_t staticIdx = 0;  ///< index into the trace's StaticCode
    uint8_t taken = 0;      ///< conditional branches: direction
    uint8_t pad[3] = {};
};

static_assert(sizeof(TraceRecord) == 8, "TraceRecord should be 8B");

/** An immutable dynamic trace over a shared static code image. */
class Trace
{
  public:
    Trace(std::shared_ptr<const StaticCode> code,
          std::vector<TraceRecord> records,
          std::string name = "trace");

    const StaticCode &code() const { return *code_; }
    std::shared_ptr<const StaticCode> codePtr() const { return code_; }

    const std::string &name() const { return name_; }

    std::size_t numRecords() const { return records_.size(); }

    const TraceRecord &record(std::size_t i) const
    {
        return records_[i];
    }

    /** Static instruction of record @p i. */
    const StaticInst &inst(std::size_t i) const
    {
        return code_->inst(records_[i].staticIdx);
    }

    /**
     * IP of the dynamic successor of record @p i (the actual path the
     * frontend must supply). Returns 0 past the end of the trace.
     */
    uint64_t
    nextIp(std::size_t i) const
    {
        return i + 1 < records_.size() ? inst(i + 1).ip : 0;
    }

    /** Total dynamic uop count. */
    uint64_t totalUops() const { return totalUops_; }

    /** Validate internal consistency (targets match successors). */
    void validate() const;

  private:
    std::shared_ptr<const StaticCode> code_;
    std::vector<TraceRecord> records_;
    std::string name_;
    uint64_t totalUops_ = 0;
};

} // namespace xbs

#endif // XBS_TRACE_TRACE_HH
