#include "svc/daemon.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "batch/report.hh"
#include "common/fs.hh"
#include "common/logging.hh"
#include "prof/build_info.hh"

namespace xbs
{

namespace
{

Status
errnoError(const std::string &what)
{
    return Status::error(errnoStatusCode(errno),
                         what + ": " + std::strerror(errno));
}

bool
setNonBlocking(int fd)
{
    int fl = ::fcntl(fd, F_GETFL);
    return fl >= 0 && ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) >= 0;
}

} // anonymous namespace

SweepDaemon::SweepDaemon(DaemonOptions opts) : opts_(std::move(opts))
{
}

SweepDaemon::~SweepDaemon()
{
    closeSocket();
}

Status
SweepDaemon::open()
{
    if (Status st = ensureDir(opts_.dir); !st.isOk())
        return st;

    // Resume before accepting: the journal's Submit events ARE the
    // matrix, so replay rebuilds every acked job; finished ones keep
    // their finals and open attempts re-queue.
    std::vector<JournalEvent> events;
    if (pathExists(SweepJournal::journalPath(opts_.dir))) {
        Expected<std::vector<JournalEvent>> replayed =
            SweepJournal::replay(opts_.dir);
        if (!replayed.ok())
            return replayed.status();
        events = replayed.take();
    }
    if (Status st = journal_.open(opts_.dir); !st.isOk())
        return st;

    if (!opts_.cacheDir.empty()) {
        if (Status st = cache_.open(opts_.cacheDir); !st.isOk())
            return st;
        opts_.sched.cache = &cache_;
    }
    opts_.sched.stopFlag = &stop_;

    sched_ = std::make_unique<SweepScheduler>(
        opts_.sched, std::vector<JobSpec>{}, &journal_);
    journal_.seedSeq(sched_->restore(events));

    struct sockaddr_un addr;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        return Status::error("socket path too long")
            .withFile(opts_.socketPath);
    }
    // A previous daemon's socket file would make bind() fail; a
    // *live* daemon is the operator's problem (flock-style exclusion
    // would need a lock file; the journal's O_APPEND keeps even that
    // mistake from corrupting state).
    ::unlink(opts_.socketPath.c_str());
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return errnoError("socket failed");
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size());
    if (::bind(listenFd_, (struct sockaddr *)&addr, sizeof(addr)) !=
        0) {
        Status st = errnoError("bind failed")
                        .withFile(opts_.socketPath);
        closeSocket();
        return st;
    }
    if (::listen(listenFd_, 64) != 0) {
        Status st = errnoError("listen failed")
                        .withFile(opts_.socketPath);
        closeSocket();
        return st;
    }
    if (!setNonBlocking(listenFd_)) {
        Status st = errnoError("fcntl failed");
        closeSocket();
        return st;
    }
    startedAt_ = std::chrono::steady_clock::now();
    return Status::ok();
}

void
SweepDaemon::closeSocket()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opts_.socketPath.c_str());
    }
    for (auto &conn : conns_) {
        if (conn->fd >= 0)
            ::close(conn->fd);
    }
    conns_.clear();
}

void
SweepDaemon::acceptClients()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;  // EAGAIN (or EINTR: next loop retries)
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
    }
}

void
SweepDaemon::readClient(Conn &conn)
{
    char buf[4096];
    for (;;) {
        ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.in.append(buf, (std::size_t)n);
            if (conn.in.size() > (8u << 20)) {
                // A client that never sends a newline is hogging
                // memory, not speaking the protocol.
                conn.closed = true;
                return;
            }
            continue;
        }
        if (n == 0) {
            conn.closed = true;
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            conn.closed = true;
        return;
    }
}

void
SweepDaemon::flushClient(Conn &conn)
{
    while (!conn.out.empty()) {
        ssize_t n = ::write(conn.fd, conn.out.data(),
                            conn.out.size());
        if (n > 0) {
            conn.out.erase(0, (std::size_t)n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        conn.closed = true;
        return;
    }
}

std::string
SweepDaemon::statusJson(int job) const
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        if (job < 0) {
            const auto &records = sched_->records();
            std::size_t done = 0, ok = 0;
            for (const JobRecord &rec : records) {
                if (rec.done) {
                    ++done;
                    if (rec.cls == JobClass::Ok)
                        ++ok;
                }
            }
            jw.field("ok", true);
            jw.field("total", (uint64_t)records.size());
            jw.field("done", (uint64_t)done);
            jw.field("okJobs", (uint64_t)ok);
            jw.field("running", (uint64_t)sched_->runningCount());
            jw.field("pending", (uint64_t)sched_->pendingCount());
            jw.field("cacheHits", sched_->cacheHits());
            jw.field("retries", (uint64_t)sched_->totalRetries());
            jw.field("idle", sched_->idle());
            jw.field("draining", draining_ || shutdown_);
        } else {
            const auto &records = sched_->records();
            auto it = std::find_if(records.begin(), records.end(),
                                   [&](const JobRecord &r) {
                                       return r.spec.id == job;
                                   });
            if (it == records.end()) {
                jw.field("ok", false);
                jw.field("error", "unknown job " +
                                      std::to_string(job));
            } else {
                jw.field("ok", true);
                jw.field("job", (int64_t)it->spec.id);
                jw.field("label", it->spec.run.label());
                jw.field("done", it->done);
                if (it->done)
                    jw.field("class", jobClassName(it->cls));
                jw.field("cached", it->cached);
                jw.field("attempts", (int64_t)it->attempts);
                jw.fieldFull("seconds", it->seconds);
                if (it->hasMetrics) {
                    jw.beginObject("metrics");
                    writeJobMetricsFields(jw, it->metrics);
                    jw.endObject();
                }
                if (!it->note.empty())
                    jw.field("note", it->note);
            }
        }
        jw.endObject();
    }
    return os.str();
}

std::string
SweepDaemon::metricsJson() const
{
    const double uptime =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startedAt_).count();
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.field("ok", true);
        jw.field("uptimeSeconds", uptime);
        jw.field("submits", sched_->submits());
        jw.field("cacheHits", sched_->cacheHits());
        jw.field("cacheMisses", sched_->cacheMisses());
        jw.field("completions", (uint64_t)sched_->doneCount());
        jw.field("retries", (uint64_t)sched_->totalRetries());
        jw.field("stalls", sched_->stallKills());
        jw.field("cancels", sched_->cancelCount());
        jw.field("running", (uint64_t)sched_->runningCount());
        jw.field("pending", (uint64_t)sched_->pendingCount());
        jw.beginObject("pendingByTenant");
        for (const auto &[tenant, depth] : sched_->pendingByTenant())
            jw.field(tenant.empty() ? "(default)" : tenant, depth);
        jw.endObject();
        jw.field("draining", draining_ || shutdown_);
        jw.endObject();
    }
    return os.str();
}

void
SweepDaemon::handleLine(Conn &conn, const std::string &line,
                        std::vector<std::pair<Conn *, int>> &acks)
{
    Expected<ProtoRequest> parsed = parseProtoRequest(line);
    if (!parsed.ok()) {
        conn.out += renderProtoError(parsed.status().toString());
        conn.out += '\n';
        return;
    }
    const ProtoRequest &req = parsed.value();
    switch (req.op) {
      case ProtoOp::Ping:
        conn.out += renderProtoOk();
        conn.out += '\n';
        return;
      case ProtoOp::Status:
        conn.out += statusJson(req.job);
        conn.out += '\n';
        return;
      case ProtoOp::Metrics:
        conn.out += metricsJson();
        conn.out += '\n';
        return;
      case ProtoOp::Cancel: {
        Status st = sched_->cancel(req.job);
        conn.out += st.isOk() ? renderProtoOk()
                              : renderProtoError(st.toString());
        conn.out += '\n';
        return;
      }
      case ProtoOp::Drain:
        draining_ = true;
        conn.out += renderProtoOk();
        conn.out += '\n';
        return;
      case ProtoOp::Shutdown:
        shutdown_ = true;
        stop_ = 1;  // scheduler drains its children resumably
        conn.out += renderProtoOk();
        conn.out += '\n';
        return;
      case ProtoOp::Submit: {
        if (draining_ || shutdown_) {
            conn.out += renderProtoError("daemon is draining");
            conn.out += '\n';
            return;
        }
        Expected<RunSpec> run = RunSpec::fromArgv(req.spec);
        if (!run.ok()) {
            conn.out += renderProtoError(run.status().toString());
            conn.out += '\n';
            return;
        }
        // durable=false: the ack is withheld until the one fsync
        // that covers every submission in this burst (runLoop's
        // group-commit barrier).
        Expected<int> id = sched_->submit(run.value(), req.tenant,
                                          req.priority,
                                          /*durable=*/false);
        if (!id.ok()) {
            conn.out += renderProtoError(id.status().toString());
            conn.out += '\n';
            return;
        }
        acks.emplace_back(&conn, id.value());
        return;
      }
    }
}

int
SweepDaemon::runLoop()
{
    while (true) {
        // Mirror SIGINT/SIGTERM into a shutdown request.
        if (stop_ != 0 && !shutdown_) {
            shutdown_ = true;
            draining_ = false;
        }

        std::vector<struct pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        for (auto &conn : conns_) {
            short events = POLLIN;
            if (!conn->out.empty())
                events |= POLLOUT;
            fds.push_back({conn->fd, events, 0});
        }
        // The scheduler still needs pumping while the socket idles.
        int rc = ::poll(fds.data(), (nfds_t)fds.size(),
                        (int)opts_.sched.pollMs);
        if (rc < 0 && errno != EINTR && errno != EAGAIN)
            xbs_warn("poll failed: %s", std::strerror(errno));

        if (fds[0].revents & POLLIN)
            acceptClients();

        // Gather every complete request line that arrived, then
        // process them in order. Submit acks are deferred past one
        // shared fsync: a hundred pipelined submissions cost one
        // sync, and nobody is told "accepted" before the journal is.
        std::vector<std::pair<Conn *, int>> acks;
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            Conn &conn = *conns_[i];
            if (i + 1 < fds.size() &&
                (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
                readClient(conn);
            }
            std::size_t nl;
            while ((nl = conn.in.find('\n')) != std::string::npos) {
                std::string line = conn.in.substr(0, nl);
                conn.in.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (line.empty())
                    continue;
                handleLine(conn, line, acks);
            }
        }
        if (!acks.empty()) {
            Status st = sched_->journalSync();
            for (auto &[conn, id] : acks) {
                if (st.isOk()) {
                    conn->out += "{\"ok\": true, \"job\": " +
                                 std::to_string(id) + "}";
                } else {
                    // The Submit record may not be durable: the
                    // client must treat the job as not accepted (a
                    // crash-replay may or may not resurrect it; resubmitting
                    // is safe because duplicates coalesce).
                    conn->out += renderProtoError(
                        "journal sync failed: " + st.toString());
                }
                conn->out += '\n';
            }
        }

        sched_->step();

        for (auto &conn : conns_) {
            if (!conn->closed && !conn->out.empty())
                flushClient(*conn);
        }
        conns_.erase(
            std::remove_if(conns_.begin(), conns_.end(),
                           [](const std::unique_ptr<Conn> &c) {
                               if (!c->closed)
                                   return false;
                               ::close(c->fd);
                               return true;
                           }),
            conns_.end());

        // Shutdown exits once the scheduler has reaped the children
        // it TERM'd (the stop flag armed its drain); their attempts
        // stay open in the journal and a restarted daemon re-queues
        // them. A drain instead waits the whole queue out.
        if (shutdown_ && sched_->runningCount() == 0)
            break;
        if (draining_ && sched_->idle())
            break;
    }

    // Leave report.json behind for xbexplain/analysis, mirroring
    // one-shot xbatch.
    SweepSummary summary = summarizeSweep(
        sched_->records(), sched_->interrupted(),
        sched_->totalRetries(), 0.0);
    SweepReportInfo info;
    info.hasBuild = true;
    info.build = buildInfo();
    if (Status st = writeSweepReport(opts_.dir, sched_->records(),
                                     summary, info);
        !st.isOk()) {
        xbs_warn("report write failed: %s", st.toString().c_str());
    }
    closeSocket();
    return shutdown_ ? kExitInterrupted : kExitOk;
}

} // namespace xbs
