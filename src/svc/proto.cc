#include "svc/proto.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "batch/job.hh"
#include "common/fs.hh"

namespace xbs
{

const char *
protoOpName(ProtoOp op)
{
    switch (op) {
      case ProtoOp::Ping:     return "ping";
      case ProtoOp::Submit:   return "submit";
      case ProtoOp::Status:   return "status";
      case ProtoOp::Metrics:  return "metrics";
      case ProtoOp::Cancel:   return "cancel";
      case ProtoOp::Drain:    return "drain";
      case ProtoOp::Shutdown: return "shutdown";
    }
    return "?";
}

Expected<ProtoRequest>
parseProtoRequest(const std::string &line)
{
    JsonValue v;
    std::string err;
    if (!parseJson(line, &v, &err) || !v.isObject())
        return Status::error("malformed request: " + err);

    const JsonValue *op = v.find("op");
    if (!op || !op->isString())
        return Status::error("request has no op field");

    ProtoRequest req;
    const std::string &name = op->asString();
    if (name == "ping") {
        req.op = ProtoOp::Ping;
    } else if (name == "submit") {
        req.op = ProtoOp::Submit;
    } else if (name == "status") {
        req.op = ProtoOp::Status;
    } else if (name == "metrics") {
        req.op = ProtoOp::Metrics;
    } else if (name == "cancel") {
        req.op = ProtoOp::Cancel;
    } else if (name == "drain") {
        req.op = ProtoOp::Drain;
    } else if (name == "shutdown") {
        req.op = ProtoOp::Shutdown;
    } else {
        return Status::error("unknown op '" + name + "'");
    }

    if (const JsonValue *f = v.find("spec")) {
        if (!f->isArray())
            return Status::error("spec must be an array");
        for (const JsonValue &flag : f->items)
            req.spec.push_back(flag.asString());
    }
    if (const JsonValue *f = v.find("tenant"))
        req.tenant = f->asString();
    if (const JsonValue *f = v.find("priority"))
        req.priority = (int)f->asNumber();
    if (const JsonValue *f = v.find("job"))
        req.job = (int)f->asNumber();

    if (req.op == ProtoOp::Submit && req.spec.empty())
        return Status::error("submit needs a spec array");
    if (req.op == ProtoOp::Cancel && req.job < 0)
        return Status::error("cancel needs a job id");
    return req;
}

std::string
renderProtoRequest(const ProtoRequest &req)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.field("op", protoOpName(req.op));
        if (!req.spec.empty()) {
            jw.beginArray("spec");
            for (const std::string &flag : req.spec)
                jw.field("", flag);
            jw.endArray();
        }
        if (!req.tenant.empty())
            jw.field("tenant", req.tenant);
        if (req.priority != 0)
            jw.field("priority", (int64_t)req.priority);
        if (req.job >= 0)
            jw.field("job", (int64_t)req.job);
        jw.endObject();
    }
    return os.str();
}

std::string
renderProtoError(const std::string &message)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/false);
        jw.beginObject();
        jw.field("ok", false);
        jw.field("error", sanitizeNote(message));
        jw.endObject();
    }
    return os.str();
}

std::string
renderProtoOk()
{
    return "{\"ok\": true}";
}

Expected<int>
connectUnixSocket(const std::string &path)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        return Status::error("socket path too long").withFile(path);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status::error(errnoStatusCode(errno),
                             std::string("socket failed: ") +
                             std::strerror(errno));
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, (struct sockaddr *)&addr, sizeof(addr)) != 0) {
        Status st = Status::error(errnoStatusCode(errno),
                                  std::string("connect failed: ") +
                                  std::strerror(errno)).withFile(path);
        ::close(fd);
        return st;
    }
    return fd;
}

Expected<JsonValue>
roundTrip(int fd, const std::string &request_line)
{
    std::string out = request_line;
    if (out.empty() || out.back() != '\n')
        out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::write(fd, out.data() + off, out.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(errnoStatusCode(errno),
                                 std::string("write failed: ") +
                                 std::strerror(errno));
        }
        off += (std::size_t)n;
    }

    std::string line;
    char c;
    for (;;) {
        ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(errnoStatusCode(errno),
                                 std::string("read failed: ") +
                                 std::strerror(errno));
        }
        if (n == 0) {
            return Status::error(StatusCode::NotFound,
                                 "daemon closed the connection");
        }
        if (c == '\n')
            break;
        line += c;
        if (line.size() > (1u << 20))
            return Status::error("oversized response line");
    }

    JsonValue v;
    std::string err;
    if (!parseJson(line, &v, &err) || !v.isObject())
        return Status::error("malformed response: " + err);
    return v;
}

} // namespace xbs
