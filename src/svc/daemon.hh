/**
 * @file
 * xbatchd: the sweep service. One single-threaded daemon owning a
 * sweep directory (journal + report + result cache) and a Unix
 * socket; clients submit RunSpecs over the line-JSON protocol
 * (svc/proto.hh) and the daemon schedules them through the same
 * SweepScheduler that powers one-shot xbatch runs.
 *
 * Durability contract (the whole point of the service):
 *
 *  - a submission is acknowledged only after its Submit event is
 *    fsync'd into journal.jsonl. Acks for a pipelined burst are
 *    group-committed: every line of input processed in one loop
 *    iteration shares a single fsync.
 *  - a SIGKILL of the daemon at any instant loses nothing that was
 *    acked: on restart the journal replays, finished jobs keep their
 *    finals (served from the report/cache, never re-run), in-flight
 *    attempts re-queue, and unacked torn submissions at the tail are
 *    dropped exactly as their clients (which never got an ack) must
 *    assume.
 *  - duplicate submissions coalesce: identical cells (same canonical
 *    spec, workload content, build) simulate once and every other
 *    copy is served from the content-addressed result cache, marked
 *    `cached` end to end (journal, report, xbtop).
 *
 * Scheduling: highest priority first; within a priority class,
 *  worker slots round-robin across tenants (one tenant's thousand
 *  submissions cannot starve another's one).
 *
 * Lifecycle: runLoop() services the socket and pumps the scheduler
 * until one of
 *   - drain op:     stop admitting, finish queued work, exit 0
 *   - shutdown op:  stop admitting, interrupt in-flight children
 *                   resumably (journal shows open attempts), exit 5
 *   - SIGINT/TERM:  same as shutdown
 */

#ifndef XBS_SVC_DAEMON_HH
#define XBS_SVC_DAEMON_HH

#include <chrono>
#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "batch/result_cache.hh"
#include "batch/scheduler.hh"
#include "svc/proto.hh"

namespace xbs
{

struct DaemonOptions
{
    std::string socketPath;   ///< Unix socket (sun_path limit ~107)
    std::string dir;          ///< sweep directory (journal, report)
    std::string cacheDir;     ///< result cache root ("" disables)
    SchedulerOptions sched;   ///< worker pool / watchdog settings
};

class SweepDaemon
{
  public:
    explicit SweepDaemon(DaemonOptions opts);
    ~SweepDaemon();

    SweepDaemon(const SweepDaemon &) = delete;
    SweepDaemon &operator=(const SweepDaemon &) = delete;

    /**
     * Prepare to serve: create the sweep dir, open (and replay) the
     * journal, open the cache, bind + listen on the socket. A
     * pre-existing journal resumes: done jobs keep their finals,
     * open attempts re-queue.
     */
    Status open();

    /**
     * Serve until drained, shut down, or signaled (see file
     * comment). Always leaves report.json behind.
     *
     * @return kExitOk after a drain, kExitInterrupted after a
     *         shutdown/signal
     */
    int runLoop();

    const SweepScheduler &scheduler() const { return *sched_; }
    const ResultCache &cache() const { return cache_; }
    const std::string &socketPath() const { return opts_.socketPath; }

    /** For installStopHandlers: SIGINT/SIGTERM land here and read
     *  as a shutdown request (must outlive the handlers). */
    volatile std::sig_atomic_t *stopFlagAddr() { return &stop_; }

  private:
    struct Conn
    {
        int fd = -1;
        std::string in;    ///< unconsumed partial input
        std::string out;   ///< unwritten response bytes
        bool closed = false;
    };

    void acceptClients();
    void readClient(Conn &conn);
    void flushClient(Conn &conn);
    /** Handle one request line; submit acks go through @p acks for
     *  the group-commit barrier, everything else replies directly. */
    void handleLine(Conn &conn, const std::string &line,
                    std::vector<std::pair<Conn *, int>> &acks);
    std::string statusJson(int job) const;
    /** One cumulative-counters snapshot (the `metrics` op). */
    std::string metricsJson() const;
    void closeSocket();

    DaemonOptions opts_;
    SweepJournal journal_;
    ResultCache cache_;
    std::unique_ptr<SweepScheduler> sched_;
    int listenFd_ = -1;
    std::vector<std::unique_ptr<Conn>> conns_;
    /// Service start (stamped by open()) for the metrics uptime.
    std::chrono::steady_clock::time_point startedAt_;
    /// Drain/shutdown request (protocol op or signal); the scheduler
    /// watches this address as its stop flag for shutdown_.
    volatile std::sig_atomic_t stop_ = 0;
    bool draining_ = false;   ///< finish queued work, then exit
    bool shutdown_ = false;   ///< interrupt in-flight work, exit
};

} // namespace xbs

#endif // XBS_SVC_DAEMON_HH
