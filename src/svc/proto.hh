/**
 * @file
 * The xbatchd wire protocol: line-delimited JSON over a Unix
 * SOCK_STREAM socket. One request object per line, one response
 * object per line, in order; a client may pipeline requests.
 *
 * Requests:
 *
 *   {"op":"ping"}
 *   {"op":"submit","spec":["--workload=...","--frontend=...",...],
 *    "tenant":"alice","priority":0}
 *   {"op":"status"}            whole-service counters
 *   {"op":"status","job":N}    one job's record
 *   {"op":"metrics"}           cumulative service counters snapshot
 *                              (submits, cache hits/misses,
 *                              completions, retries, stalls,
 *                              cancels, queue depth per tenant,
 *                              uptime)
 *   {"op":"cancel","job":N}
 *   {"op":"drain"}             stop admitting; finish queued work
 *   {"op":"shutdown"}          stop admitting; interrupt in-flight
 *                              work resumably and exit
 *
 * Responses are {"ok":true,...} or {"ok":false,"error":"..."}.
 * A submit is acknowledged only after its Submit journal event is
 * fsync'd (group-committed across a pipelined burst): an acked job
 * survives SIGKILL of the daemon.
 *
 * The "spec" array is the RunSpec argv round trip (sim/config.hh),
 * the same encoding the manifest and journal use.
 */

#ifndef XBS_SVC_PROTO_HH
#define XBS_SVC_PROTO_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/status.hh"

namespace xbs
{

enum class ProtoOp
{
    Ping,
    Submit,
    Status,
    Metrics,
    Cancel,
    Drain,
    Shutdown,
};

const char *protoOpName(ProtoOp op);

struct ProtoRequest
{
    ProtoOp op = ProtoOp::Ping;
    std::vector<std::string> spec;  ///< Submit: RunSpec argv
    std::string tenant;             ///< Submit: fair-share bucket
    int priority = 0;               ///< Submit: higher launches first
    int job = -1;                   ///< Status (optional) / Cancel
};

/** Parse one request line (without the trailing newline). */
Expected<ProtoRequest> parseProtoRequest(const std::string &line);

/** Serialize a request (tests and the xbatchctl client). */
std::string renderProtoRequest(const ProtoRequest &req);

/** {"ok":false,"error":...} with control bytes stripped. */
std::string renderProtoError(const std::string &message);

/** {"ok":true} */
std::string renderProtoOk();

/// @{ Blocking client helpers (xbatchctl, tests).

/** Connect to the daemon's Unix socket. */
Expected<int> connectUnixSocket(const std::string &path);

/**
 * Send one request line and read one response line (blocking).
 * Fails with a typed NotFound-ish error if the daemon hangs up.
 */
Expected<JsonValue> roundTrip(int fd, const std::string &request_line);

/// @}

} // namespace xbs

#endif // XBS_SVC_PROTO_HH
