#include "core/priority_encoder.hh"

#include "common/logging.hh"

namespace xbs
{

PriorityEncoder::PriorityEncoder(unsigned num_banks, StatGroup *parent)
    : StatGroup("prioenc", parent), grants_(num_banks)
{
    xbs_assert(num_banks >= 1, "need at least one bank");
}

void
PriorityEncoder::reset()
{
    for (auto &g : grants_)
        g.busy = false;
}

bool
PriorityEncoder::wouldGrant(unsigned bank, uint32_t set,
                            uint8_t way) const
{
    xbs_assert(bank < grants_.size(), "bank out of range");
    const Grant &g = grants_[bank];
    return !g.busy || (g.set == set && g.way == way);
}

bool
PriorityEncoder::claim(unsigned bank, uint32_t set, uint8_t way)
{
    xbs_assert(bank < grants_.size(), "bank out of range");
    Grant &g = grants_[bank];
    if (!g.busy) {
        g.busy = true;
        g.set = set;
        g.way = way;
        ++grants;
        return true;
    }
    if (g.set == set && g.way == way) {
        ++shared;
        return true;
    }
    ++conflicts;
    return false;
}

uint32_t
PriorityEncoder::busyMask() const
{
    uint32_t mask_bits = 0;
    for (std::size_t b = 0; b < grants_.size(); ++b) {
        if (grants_[b].busy)
            mask_bits |= 1u << b;
    }
    return mask_bits;
}

} // namespace xbs
