#include "core/out_mux.hh"

#include <cmath>

#include "common/logging.hh"

namespace xbs
{

OutMux::OutMux(const XbcParams &params, StatGroup *parent)
    : StatGroup("outmux", parent), params_(params)
{
}

std::vector<MuxSegment>
OutMux::plan(const std::vector<MuxInput> &inputs)
{
    std::vector<MuxSegment> out;
    out.reserve(inputs.size());

    // A bank may appear more than once only when the priority
    // encoder granted a *shared* read (the same physical line
    // feeding two output segments, e.g. a one-XB loop supplied
    // twice in a cycle); the mux fans the single read out.
    unsigned dst = 0;
    for (const auto &in : inputs) {
        xbs_assert(in.bank < params_.numBanks, "bank out of range");
        xbs_assert(in.count >= 1 && in.count <= params_.bankUops,
                   "segment count out of range");

        MuxSegment seg;
        seg.bank = in.bank;
        seg.count = in.count;
        seg.dstOffset = (uint8_t)dst;
        out.push_back(seg);

        // Alignment shift: distance between the segment's natural
        // position (its bank's fixed slice of the raw 16-wide read)
        // and its compacted position.
        unsigned natural = in.bank * params_.bankUops;
        shift.sample(std::abs((int)natural - (int)dst));

        dst += in.count;
        xbs_assert(dst <= params_.xbQuotaUops,
                   "OUT_MUX width exceeded");
    }

    ++cycles;
    segments += inputs.size();
    occupancy.sample((double)dst);
    return out;
}

} // namespace xbs
