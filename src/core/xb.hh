/**
 * @file
 * Extended-block value types shared across the XBC sub-units.
 */

#ifndef XBS_CORE_XB_HH
#define XBS_CORE_XB_HH

#include <cstdint>
#include <vector>

#include "isa/static_inst.hh"
#include "isa/uop.hh"

namespace xbs
{

/** One uop slot in a bank line: a specific uop of a specific inst. */
struct UopSlot
{
    int32_t staticIdx = kNoTarget;
    uint8_t seq = 0;

    bool operator==(const UopSlot &o) const
    {
        return staticIdx == o.staticIdx && seq == o.seq;
    }
};

/** An XB's uop sequence in logical order (earliest uop first). */
using XbSeq = std::vector<UopSlot>;

/**
 * Pointer into the XBC as provided by the XBTB (paper section 3.5):
 * the XB_IP (tag of the target XB = IP of its ending instruction), a
 * bank mask selecting the variant, and the entry point. The hardware
 * encodes the entry as OFFSET (uops counted backward from the end);
 * the model carries the entry instruction's static index, which is
 * equivalent and self-checking.
 */
struct XbPointer
{
    bool valid = false;
    uint64_t xbIp = 0;
    uint32_t mask = 0;
    int32_t entryIdx = kNoTarget;
};

/**
 * Append the uops of instruction @p idx of @p code to @p seq.
 */
inline void
appendInstUops(const StaticCode &code, int32_t idx, XbSeq &seq)
{
    const StaticInst &si = code.inst(idx);
    for (unsigned s = 0; s < si.numUops; ++s)
        seq.push_back(UopSlot{idx, (uint8_t)s});
}

/** Length in uops of the longest common suffix of two sequences. */
inline unsigned
commonSuffixLength(const XbSeq &a, const XbSeq &b)
{
    unsigned n = 0;
    while (n < a.size() && n < b.size() &&
           a[a.size() - 1 - n] == b[b.size() - 1 - n]) {
        ++n;
    }
    return n;
}

} // namespace xbs

#endif // XBS_CORE_XB_HH
