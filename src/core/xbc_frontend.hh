/**
 * @file
 * The XBC frontend: the whole structure of the paper's Figure 6.
 *
 * Delivery mode: the XBTB chain (XBTB entries + XBP direction
 * prediction + XiBTB + XRSB) provides up to fetchXbsPerCycle XB
 * pointers per cycle; the banked data array supplies their uops
 * subject to bank conflicts and the 16-uop fetch width; a decoupling
 * buffer (the XBQ) drains into the renamer at 8 uops/cycle.
 *
 * Build mode: the legacy IC path supplies uops while the XFU builds
 * XBs; delivery resumes when a completed XB's successor pointer
 * resolves to a resident XB (XBTB hit + XBC hit).
 *
 * Branch promotion (section 3.8) is driven here: 7-bit counters in
 * the XBTB entries, combination of XB0 with its frequent successor
 * into XB_comb (an extension / complex store in the data array),
 * supply through embedded promoted branches without consuming a
 * prediction, wrong-path redirection through XB0's retained entry,
 * and de-promotion on misbehavior.
 */

#ifndef XBS_CORE_XBC_FRONTEND_HH
#define XBS_CORE_XBC_FRONTEND_HH

#include "attrib/array_acct.hh"
#include "core/data_array.hh"
#include "core/fill_unit.hh"
#include "core/out_mux.hh"
#include "core/params.hh"
#include "core/priority_encoder.hh"
#include "core/xbtb.hh"
#include "frontend/frontend.hh"
#include "frontend/predictors.hh"
#include "ic/legacy_pipe.hh"

namespace xbs
{

class XbcFrontend : public Frontend
{
  public:
    XbcFrontend(const FrontendParams &params,
                const XbcParams &xbc_params);

    void run(const Trace &trace) override;

    /// @{ Warm-state checkpoint/restore (src/ckpt).
    void saveState(CheckpointWriter &w) const override;
    Status restoreState(const CheckpointFile &f) override;
    /// @}

    const XbcDataArray &dataArray() const { return array_; }
    const Xbtb &xbtbUnit() const { return xbtb_; }
    const XbcFillUnit &fillUnit() const { return fill_; }
    const OutMux &outMux() const { return outMux_; }
    const PriorityEncoder &priorityEncoder() const { return prio_; }
    const XbcParams &xbcParams() const { return xbcParams_; }

    /** Structure accounting (heatmaps, lifetimes, shadow 3C). */
    const ArrayAccounting *arrayAccounting() const override
    {
        return &arrayAcct_;
    }

    /// @{ Verification interface (src/verify): mutable access for
    ///    the fault injectors and the invariant auditor's tamper
    ///    tests. Not used by the model itself.
    XbcDataArray &mutableDataArray() { return array_; }
    Xbtb &mutableXbtb() { return xbtb_; }
    XiBtb &mutableXibtb() { return xibtb_; }
    XbcFillUnit &mutableFillUnit() { return fill_; }
    /// @}

    /// @{ XBC-specific statistics.
    ScalarStat xbSupplies{&root_, "xbSupplies",
        "XB supply operations started"};
    ScalarStat xbContinuations{&root_, "xbContinuations",
        "partial-XB continuations (conflict/width deferrals)"};
    ScalarStat bankConflictDefers{&root_, "bankConflictDefers",
        "supplies cut short by a bank conflict"};
    ScalarStat widthDefers{&root_, "widthDefers",
        "supplies cut short by the 16-uop fetch width"};
    ScalarStat promotions{&root_, "promotions",
        "branches promoted (XBs combined)"};
    ScalarStat depromotions{&root_, "depromotions",
        "promoted branches demoted for misbehaving"};
    ScalarStat promotedSupplied{&root_, "promotedSupplied",
        "embedded promoted branches supplied without prediction"};
    ScalarStat promotedWrongPath{&root_, "promotedWrongPath",
        "promoted branches that took the infrequent path"};
    ScalarStat setSearchPenalties{&root_, "setSearchPenalties",
        "cycles lost to set searches"};
    ScalarStat staleSupplies{&root_, "staleSupplies",
        "supplies aborted on stale XB content"};
    ScalarStat buildExits{&root_, "buildExits",
        "successful build->delivery transitions"};
    /// @}

  protected:
    void
    registerPhases(PhaseProfiler *prof) override
    {
        // The legacy pipe runs as this frontend's build path.
        pipe_.attachProfiler(prof, phBuild_);
    }

  private:
    enum class Mode { Build, Delivery };

    /** Which pointer of the previously executed XB the next XB's
     *  location must be written into (paper's XBTB update chain). */
    struct PrevLink
    {
        enum class Kind
        {
            None,
            Taken,       ///< taken / unconditional / call-target slot
            Fallthrough, ///< not-taken slot
            Indirect,    ///< XiBTB entry
            ReturnLink,  ///< fall-through slot of the call's entry
        };
        Kind kind = Kind::None;
        uint64_t xbIp = 0;
    };

    /** Outcome of resolving an XB-ending control instruction. */
    struct EndResult
    {
        XbPointer next;       ///< where delivery continues (if valid)
        unsigned penalty = 0; ///< bubble cycles
        bool toBuild = false; ///< must switch to build mode
    };

    /** Resolve the XB end at record @p end_rec: predict, train,
     *  promote, set prev link, and produce the next pointer. */
    EndResult handleXbEnd(const Trace &trace, std::size_t end_rec);

    /** Write @p ptr into the previously executed XB's pointer slot. */
    void linkPrev(const XbPointer &ptr);

    /** Attempt branch promotion for the cond-ended XB of @p entry. */
    void maybePromote(Xbtb::Entry &entry);

    /** Handle an XFU completion in build mode (linking, XRSB,
     *  counters, and the build->delivery exit check). The exit is
     *  only legal for the completion at the cycle's final consumed
     *  record, so the delivery cursor and cur_ agree. */
    void handleCompletion(const Trace &trace,
                          const XbcFillUnit::Completion &comp,
                          std::size_t rec, bool can_exit, Mode &mode);

    /**
     * Supply one XB (or its continuation) in a delivery cycle.
     * Updates the cursor, the cycle's bank grants (via the priority
     * encoder) and fetched-uop count, and the frontend's
     * cur_/stall/mode intent.
     *
     * @return uops supplied (0 means the slot did no work)
     */
    unsigned supplySlot(const Trace &trace, std::size_t &rec,
                        unsigned &fetched, unsigned &stall);

    /** One build-mode cycle (legacy fetch + XFU feeding). */
    void buildCycle(const Trace &trace, std::size_t &rec,
                    unsigned &stall, Mode &mode);

    XbcParams xbcParams_;
    PredictorBank preds_;   ///< gshare doubles as the XBP
    LegacyPipe pipe_;
    XbcDataArray array_;
    Xbtb xbtb_;
    XiBtb xibtb_;
    Xrsb xrsb_;
    XbcFillUnit fill_;
    OutMux outMux_;
    PriorityEncoder prio_;
    ArrayAccounting arrayAcct_;

    /** Per-cycle line contributions for the OUT_MUX model. */
    std::vector<MuxInput> cycleMux_;

    XbPointer cur_;
    bool curIsContinuation_ = false;
    PrevLink prev_;
    unsigned completionsSinceCheck_ = 0;

    /// @{ "pred" track: prediction outcomes and promotion lifecycle
    ///    (values carry the charged penalty / promoted XB size).
    ProbePoint condMispredProbe_{&probes_, "pred", "condMispredict"};
    ProbePoint indirectMispredProbe_{&probes_, "pred",
                                     "indirectMispredict"};
    ProbePoint returnMispredProbe_{&probes_, "pred",
                                   "returnMispredict"};
    ProbePoint promoteProbe_{&probes_, "pred", "promote"};
    ProbePoint depromoteProbe_{&probes_, "pred", "depromote"};
    ProbePoint promotedWrongProbe_{&probes_, "pred",
                                   "promotedWrongPath"};
    /// @}
};

} // namespace xbs

#endif // XBS_CORE_XBC_FRONTEND_HH
