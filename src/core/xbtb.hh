/**
 * @file
 * The XBTB and its companion predictors (paper section 3.5).
 *
 * The XBTB is the only road into the XBC: since XBs are indexed by
 * their *ending* IP, a branch target IP cannot be looked up in the
 * XBC directly. Each entry describes one XB (keyed by its XB_IP) and
 * carries pointers (XB_IP, BANK_MASK, OFFSET) to the taken-path and
 * fall-through successors, the end-instruction type, and the 7-bit
 * bias counter driving branch promotion (section 3.8).
 *
 * The XiBTB predicts the successor of indirect-ended XBs; the XRSB
 * predicts the successor of return-ended XBs by stacking references
 * to the XBTB entries of the corresponding calls.
 */

#ifndef XBS_CORE_XBTB_HH
#define XBS_CORE_XBTB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/params.hh"
#include "core/xb.hh"
#include "isa/types.hh"

namespace xbs
{

class CkptSink;
class CkptSource;

/// @{ XbPointer serialization helpers shared by the XBC units.
void ckptSaveXbPointer(CkptSink &sink, const XbPointer &ptr);
XbPointer ckptLoadXbPointer(CkptSource &src);
/// @}

class Xbtb : public StatGroup
{
  public:
    struct Entry
    {
        bool valid = false;
        uint64_t xbIp = 0;
        uint64_t lru = 0;

        /** Class of the XB's ending instruction (Seq marks a
         *  quota-ended XB, whose successor is unconditional). */
        InstClass endType = InstClass::Seq;

        /** Taken-path successor; for calls, XB_func; for quota-ended
         *  and jump-ended XBs, the unconditional successor. */
        XbPointer taken;

        /** Fall-through successor; for calls, XB_ret. */
        XbPointer fallthrough;

        /// @{ Branch promotion state (7-bit counter, section 3.8).
        uint8_t counter = 64;
        bool promoted = false;
        bool promotedTaken = false;  ///< frequent direction
        /** Entry into XB_comb at this XB's first instruction. */
        XbPointer promotedPtr;
        /// @}

        void
        trainCounter(bool taken_dir)
        {
            if (taken_dir) {
                if (counter < 127)
                    ++counter;
            } else {
                if (counter > 0)
                    --counter;
            }
        }
    };

    Xbtb(unsigned entries, unsigned ways, StatGroup *parent);

    /** Predictive lookup (counted in hit/miss statistics). */
    Entry *lookup(uint64_t xb_ip);

    /** Silent lookup for updates/linking (no statistics). */
    Entry *find(uint64_t xb_ip);

    /**
     * Find-or-allocate the entry for @p xb_ip (LRU victim on
     * conflict); used by the XFU when an XB is built.
     */
    Entry &allocate(uint64_t xb_ip, InstClass end_type);

    unsigned numSets() const { return numSets_; }

    /// @{ Raw entry iteration for the fault-injection harness
    ///    (src/verify): XBTB contents are prediction hints, so
    ///    corrupting an entry must only cost performance.
    std::size_t entryCount() const { return entries_.size(); }
    Entry &entryAt(std::size_t i) { return entries_[i]; }
    /// @}

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat lookups{this, "lookups", "XBTB predictive lookups"};
    ScalarStat hits{this, "hits", "XBTB lookup hits"};
    ScalarStat allocations{this, "allocations",
        "XBTB entries allocated"};
    ScalarStat entryEvictions{this, "entryEvictions",
        "valid XBTB entries replaced"};

  private:
    std::size_t setOf(uint64_t xb_ip) const;

    unsigned numSets_;
    unsigned ways_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
};

/** Indirect next-XB predictor: a tagged last-pointer table. */
class XiBtb : public StatGroup
{
  public:
    XiBtb(unsigned sets, unsigned ways, StatGroup *parent);

    /** Predicted successor pointer of the indirect-ended XB at
     *  @p xb_ip, or nullptr. */
    const XbPointer *predict(uint64_t xb_ip);

    /** Record the observed successor. */
    void update(uint64_t xb_ip, const XbPointer &ptr);

    struct Slot
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
        XbPointer ptr;
    };

    /// @{ Raw slot iteration for the fault-injection harness.
    std::size_t slotCount() const { return slots_.size(); }
    Slot &slotAt(std::size_t i) { return slots_[i]; }
    /// @}

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat lookups{this, "lookups", "XiBTB lookups"};
    ScalarStat hits{this, "hits", "XiBTB tag hits"};

  private:
    std::size_t setOf(uint64_t ip) const;

    unsigned numSets_;
    unsigned ways_;
    std::vector<Slot> slots_;
    uint64_t clock_ = 0;
};

/**
 * XRSB: return stack of call-XB references. Pushing happens when a
 * call-ended XB is fetched; popping yields the XBTB entry of the
 * matching call, whose fall-through pointer locates XB_ret.
 */
class Xrsb
{
  public:
    explicit Xrsb(unsigned depth);

    void push(uint64_t call_xb_ip);

    /** @return the call-XB ip, or 0 when empty (underflow). */
    uint64_t pop();

    unsigned size() const { return size_; }
    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

  private:
    std::vector<uint64_t> stack_;
    unsigned topIdx_ = 0;
    unsigned size_ = 0;
};

} // namespace xbs

#endif // XBS_CORE_XBTB_HH
