/**
 * @file
 * The OUT_MUX reorder/align network (paper section 3.7).
 *
 * Each delivery cycle the banks produce up to one line each; the
 * first mux layer reorders the lines according to the XB order and
 * the bank order within each XB, and the second layer compacts the
 * partially used lines into a dense uop sequence for the renamer.
 * The paper's point is that a careful two-layer design does this in
 * a single cycle; the model checks the single-cycle feasibility
 * conditions (at most one line per bank, total width within the
 * 16-uop OUT_MUX) and gathers wiring statistics that a circuit
 * designer would care about (segments per cycle, alignment shift
 * distances).
 */

#ifndef XBS_CORE_OUT_MUX_HH
#define XBS_CORE_OUT_MUX_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/params.hh"

namespace xbs
{

/** One bank line's contribution to a cycle's output. */
struct MuxInput
{
    uint8_t bank = 0;
    uint8_t count = 0;  ///< uops read from this line
};

/** Where a contribution lands in the aligned output. */
struct MuxSegment
{
    uint8_t bank = 0;
    uint8_t count = 0;
    uint8_t dstOffset = 0;  ///< position in the compacted sequence
};

class OutMux : public StatGroup
{
  public:
    OutMux(const XbcParams &params, StatGroup *parent);

    /**
     * Compute the reorder+align plan for one cycle.
     *
     * @param inputs per-line contributions, already in supply order
     *        (the priority encoder's output). A repeated bank means
     *        a shared read fanned out to two segments.
     * @return dense placement; panics if the cycle is physically
     *         infeasible (width overflow)
     */
    std::vector<MuxSegment> plan(const std::vector<MuxInput> &inputs);

    ScalarStat cycles{this, "cycles", "cycles planned"};
    ScalarStat segments{this, "segments", "line segments routed"};
    AverageStat occupancy{this, "occupancy",
        "uops per planned cycle"};
    DistributionStat shift{this, "shift",
        "alignment shift distance in uop slots", 0, 17, 1};

  private:
    XbcParams params_;
};

} // namespace xbs

#endif // XBS_CORE_OUT_MUX_HH
