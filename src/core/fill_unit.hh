/**
 * @file
 * The XBC fill unit, XFU (paper section 3.3).
 *
 * In build mode the XFU receives decoded uops, accumulates them in a
 * fill buffer until an end-of-XB condition (conditional branch,
 * indirect branch, call, return, or the 16-uop quota), then performs
 * the XBC store: the data array resolves the three same-tag overlap
 * cases; in PrefixSplit mode the XFU itself stores the differing
 * prefix as an independent XB chained through the XBTB.
 */

#ifndef XBS_CORE_FILL_UNIT_HH
#define XBS_CORE_FILL_UNIT_HH

#include "common/probe.hh"
#include "core/data_array.hh"
#include "core/params.hh"
#include "core/xbtb.hh"
#include "trace/trace.hh"

namespace xbs
{

class XbcFillUnit : public StatGroup
{
  public:
    /**
     * @param probes probe registry of the owning frontend for the
     *        "xfu" track (nullptr: probes permanently disabled)
     */
    XbcFillUnit(const XbcParams &params, XbcDataArray &array,
                Xbtb &xbtb, StatGroup *parent,
                ProbeManager *probes = nullptr);

    /** Abandon the current partial XB and start fresh. */
    void restart();

    /** Result of feeding one instruction. */
    struct Completion
    {
        bool completed = false;
        uint64_t endIp = 0;      ///< tag of the completed XB
        InstClass endType = InstClass::Seq;
        std::size_t endRec = 0;  ///< trace record of the ending inst
        XbPointer startPtr;      ///< pointer entering at the XB start
        XbcDataArray::InsertOutcome outcome =
            XbcDataArray::InsertOutcome::Allocated;
    };

    /**
     * Feed the executed instruction at record @p rec. If it completes
     * an XB, the XB is stored and its XBTB entry allocated.
     */
    Completion feed(const Trace &trace, std::size_t rec);

    bool active() const { return !seq_.empty(); }

    /// @{ Warm-state checkpointing (src/ckpt): the partial XB.
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat xbsBuilt{this, "xbsBuilt", "XBs completed by the XFU"};
    ScalarStat quotaEnded{this, "quotaEnded",
        "XBs ended by the uop quota"};
    ScalarStat prefixSplits{this, "prefixSplits",
        "prefixes stored as independent XBs (PrefixSplit mode)"};

  private:
    /**
     * Store @p seq ending at @p end_ip, recursively splitting the
     * prefix when the array reports PrefixNeeded.
     *
     * @return pointer entering at seq's first instruction
     */
    XbPointer store(const Trace &trace, const XbSeq &seq,
                    uint64_t end_ip, InstClass end_type,
                    XbcDataArray::InsertOutcome *outcome);

    XbcParams params_;
    XbcDataArray &array_;
    Xbtb &xbtb_;

    XbSeq seq_;
    int32_t lastIdx_ = kNoTarget;  ///< static idx of last fed inst
    uint32_t prevMask_ = 0;        ///< banks of the last placed XB

    /// @{ "xfu" track: store outcomes keyed by InsertOutcome
    ///    (value = uops stored), quota-ended builds and prefix
    ///    splits as instant markers.
    ProbePoint allocProbe_;
    ProbePoint containProbe_;
    ProbePoint extendProbe_;
    ProbePoint complexProbe_;
    ProbePoint independentProbe_;
    ProbePoint quotaProbe_;
    ProbePoint prefixSplitProbe_;
    /// @}

    /** Fire the "xfu" probe matching @p oc with @p uops as value. */
    void fireStore(XbcDataArray::InsertOutcome oc, std::size_t uops);
};

} // namespace xbs

#endif // XBS_CORE_FILL_UNIT_HH
