#include "core/data_array.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

XbcDataArray::XbcDataArray(const XbcParams &params, StatGroup *parent,
                           ProbeManager *probes)
    : StatGroup("xbc", parent), params_(params),
      evictProbe_(probes, "array", "evict"),
      relocProbe_(probes, "array", "relocate"),
      conflictProbe_(probes, "array", "conflict"),
      occupancyProbe_(probes, "array", "residentUops")
{
    xbs_assert(params_.numBanks >= 1 && params_.bankUops >= 1 &&
               params_.ways >= 1, "bad XBC geometry");
    xbs_assert(params_.xbQuotaUops <=
               params_.numBanks * params_.bankUops,
               "XB quota exceeds one set row");
    unsigned set_uops = params_.numBanks * params_.bankUops *
                        params_.ways;
    unsigned sets = params_.capacityUops / set_uops;
    xbs_assert(sets >= 1, "XBC capacity below one set");
    numSets_ = 1u << floorLog2(sets);
    lines_.resize((std::size_t)params_.numBanks * numSets_ *
                  params_.ways);
}

std::size_t
XbcDataArray::setOf(uint64_t tag) const
{
    return (std::size_t)foldedIndex(tag, numSets_, 0);
}

XbcDataArray::BankLine &
XbcDataArray::line(unsigned bank, std::size_t set, unsigned way)
{
    return lines_[((std::size_t)bank * numSets_ + set) * params_.ways +
                  way];
}

const XbcDataArray::BankLine &
XbcDataArray::line(unsigned bank, std::size_t set, unsigned way) const
{
    return lines_[((std::size_t)bank * numSets_ + set) * params_.ways +
                  way];
}

XbcDataArray::BankLine &
XbcDataArray::line(const LineUse &lu, std::size_t set)
{
    return line(lu.bank, set, lu.way);
}

void
XbcDataArray::accountSlots(const std::vector<UopSlot> &slots, int delta)
{
    xbs_assert(code_ != nullptr, "XBC used before bindCode()");
    for (const auto &s : slots) {
        UopId id = makeUopId(code_->inst(s.staticIdx).ip, s.seq);
        if (delta > 0) {
            ++residency_[id];
            ++filledUops_;
        } else {
            auto it = residency_.find(id);
            xbs_assert(it != residency_.end() && it->second > 0,
                       "XBC residency underflow");
            if (--it->second == 0)
                residency_.erase(it);
            --filledUops_;
        }
    }
    occupancyProbe_.count((int64_t)filledUops_);
}

void
XbcDataArray::rebuildMask(Variant &v)
{
    v.mask = 0;
    for (const auto &lu : v.lines)
        v.mask |= 1u << lu.bank;
}

void
XbcDataArray::dropVariantsUsing(uint64_t tag, std::size_t set,
                                unsigned bank, unsigned way)
{
    (void)set;
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return;
    auto &vars = it->second;

    // Paper section 3.10: evicting a head line still leaves the XB
    // enterable in its middle, so a variant losing a line keeps its
    // surviving suffix (the lines after the evicted one); only a
    // variant losing its primary line dies entirely.
    for (auto &v : vars) {
        std::size_t hit = v.lines.size();
        for (std::size_t i = 0; i < v.lines.size(); ++i) {
            if (v.lines[i].bank == bank && v.lines[i].way == way) {
                hit = i;
                break;
            }
        }
        if (hit == v.lines.size())
            continue;
        ++variantDrops;
        std::size_t keep_uops = 0;
        for (std::size_t i = hit + 1; i < v.lines.size(); ++i)
            keep_uops += v.lines[i].count;
        if (keep_uops == 0) {
            v.lines.clear();  // marks the variant dead
            v.seq.clear();
            continue;
        }
        v.lines.erase(v.lines.begin(),
                      v.lines.begin() + (std::ptrdiff_t)hit + 1);
        v.seq.erase(v.seq.begin(),
                    v.seq.end() - (std::ptrdiff_t)keep_uops);
        rebuildMask(v);
    }
    vars.erase(std::remove_if(vars.begin(), vars.end(),
                              [](const Variant &v) {
                                  return v.lines.empty();
                              }),
               vars.end());

    // Truncation can leave duplicate suffix-only variants; keep one.
    for (std::size_t i = 0; i < vars.size(); ++i) {
        for (std::size_t j = vars.size(); j-- > i + 1;) {
            if (vars[j].seq == vars[i].seq &&
                vars[j].mask == vars[i].mask) {
                vars.erase(vars.begin() + (std::ptrdiff_t)j);
            }
        }
    }
    if (vars.empty())
        directory_.erase(it);
}

std::optional<XbcDataArray::LineUse>
XbcDataArray::allocLine(uint64_t tag, std::size_t set,
                        uint32_t used_banks, uint32_t avoid_mask)
{
    const uint32_t all = mask(params_.numBanks);
    uint32_t allowed = all & ~used_banks;
    if (!allowed)
        return std::nullopt;

    // Pass 1: an invalid way in a preferred (non-avoid) bank.
    // Pass 2: an invalid way anywhere allowed.
    // Pass 3: LRU victim in a preferred bank.
    // Pass 4: LRU victim anywhere allowed.
    for (int pass = 0; pass < 4; ++pass) {
        bool prefer = (pass == 0 || pass == 2);
        bool want_invalid = (pass < 2);
        BankLine *victim = nullptr;
        LineUse ref;
        for (unsigned b = 0; b < params_.numBanks; ++b) {
            if (!(allowed & (1u << b)))
                continue;
            if (prefer && (avoid_mask & (1u << b)))
                continue;
            for (unsigned w = 0; w < params_.ways; ++w) {
                BankLine &l = line(b, set, w);
                if (want_invalid) {
                    if (!l.valid) {
                        victim = &l;
                        ref = LineUse{(uint8_t)b, (uint8_t)w, 0};
                        break;
                    }
                } else if (l.valid) {
                    if (!victim || l.lru < victim->lru) {
                        victim = &l;
                        ref = LineUse{(uint8_t)b, (uint8_t)w, 0};
                    }
                }
            }
            if (want_invalid && victim)
                break;
        }
        if (!victim)
            continue;

        if (victim->valid) {
            ++evictions;
            evictProbe_.fire((int64_t)victim->slots.size());
            accountSlots(victim->slots, -1);
            dropVariantsUsing(victim->tag, set, ref.bank, ref.way);
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lru = ++clock_;
        victim->conflict = 0;
        victim->slots.clear();
        return ref;
    }
    return std::nullopt;
}

std::optional<std::vector<XbcDataArray::LineUse>>
XbcDataArray::placeChunks(const XbSeq &seq, std::size_t uops,
                          uint64_t tag, std::size_t set,
                          uint32_t used_banks, uint32_t avoid_mask)
{
    xbs_assert(uops >= 1 && uops <= seq.size(), "bad chunk span");

    // Reverse-order fill: full bankUops chunks counted from the end
    // of the span; the head chunk takes the remainder, leaving free
    // space at the head line for later extension.
    std::vector<std::size_t> sizes;
    std::size_t head = uops % params_.bankUops;
    if (head)
        sizes.push_back(head);
    for (std::size_t done = head; done < uops;
         done += params_.bankUops) {
        sizes.push_back(params_.bankUops);
    }

    if (sizes.size() > popCount(mask(params_.numBanks) & ~used_banks))
        return std::nullopt;

    std::vector<LineUse> placed;
    uint32_t banks = used_banks;
    std::size_t pos = 0;
    for (std::size_t sz : sizes) {
        auto lu = allocLine(tag, set, banks, avoid_mask);
        if (!lu) {
            // Roll back lines placed so far.
            for (auto &p : placed) {
                BankLine &l = line(p, set);
                accountSlots(l.slots, -1);
                l.valid = false;
                l.slots.clear();
            }
            return std::nullopt;
        }
        BankLine &l = line(*lu, set);
        l.slots.assign(seq.begin() + pos, seq.begin() + pos + sz);
        accountSlots(l.slots, +1);
        lu->count = (uint16_t)sz;
        placed.push_back(*lu);
        banks |= 1u << lu->bank;
        pos += sz;
    }
    return placed;
}

XbcDataArray::InsertOutcome
XbcDataArray::insert(const XbSeq &seq, uint64_t end_ip,
                     uint32_t prev_mask, XbPointer *out,
                     unsigned *common_out, bool allow_match)
{
    xbs_assert(!seq.empty() && seq.size() <= params_.xbQuotaUops,
               "bad XB length %zu", seq.size());
    ++inserts;
    std::size_t set = setOf(end_ip);

    auto fill_out = [&](const Variant &v) {
        if (out) {
            out->valid = true;
            out->xbIp = end_ip;
            out->mask = v.mask;
            out->entryIdx = seq.front().staticIdx;
        }
    };
    if (out)
        out->valid = false;

    // Find the resident variant with the longest common suffix.
    // NOTE: evictions during line allocation can reshuffle the
    // variant vector, so everything needed later is copied out and
    // the variant is re-found by its sequence before mutation.
    unsigned best_common = 0;
    XbSeq best_seq;
    uint32_t best_mask = 0;
    std::vector<LineUse> best_lines;
    if (allow_match) {
        auto it = directory_.find(end_ip);
        if (it != directory_.end()) {
            for (auto &v : it->second) {
                unsigned c = commonSuffixLength(seq, v.seq);
                if (c > best_common) {
                    best_common = c;
                    best_seq = v.seq;
                    best_mask = v.mask;
                    best_lines = v.lines;
                }
            }
        }
    }
    bool have_best = best_common > 0;

    auto refind_best = [&]() -> Variant * {
        auto it = directory_.find(end_ip);
        if (it == directory_.end())
            return nullptr;
        for (auto &v : it->second) {
            if (v.seq == best_seq && v.mask == best_mask)
                return &v;
        }
        return nullptr;
    };

    if (have_best && best_common == seq.size()) {
        // Case 1: the existing XB contains the new one; only the
        // XBTB needs a pointer (multiple entry points at work).
        ++containedHits;
        Variant *v = refind_best();
        xbs_assert(v != nullptr, "case-1 variant vanished");
        fill_out(*v);
        return InsertOutcome::AlreadyPresent;
    }

    if (have_best && best_common == best_seq.size()) {
        // Case 2: the new XB contains the existing one; extend it at
        // its head. Reverse-order storage means nothing moves: free
        // head-line slots fill up, then fresh lines are allocated.
        std::size_t extra = seq.size() - best_common;
        const BankLine &hl_probe = line(best_lines.front(), set);
        // A truncated variant's head line may be partially used (its
        // leading slots belong to an evicted prefix); in-place head
        // fill is only legal when the variant owns the whole line.
        std::size_t free_slots = 0;
        if (hl_probe.slots.size() == best_lines.front().count)
            free_slots = params_.bankUops - hl_probe.slots.size();
        std::size_t take = std::min(free_slots, extra);
        std::size_t remaining = extra - take;

        std::vector<LineUse> new_lines;
        bool ok = true;
        if (remaining) {
            auto chunks = placeChunks(seq, remaining, end_ip, set,
                                      best_mask, prev_mask);
            if (chunks)
                new_lines = std::move(*chunks);
            else
                ok = false;  // bank exhaustion; fall through below
        }
        if (ok) {
            Variant *v = refind_best();
            xbs_assert(v != nullptr,
                       "case-2 variant vanished (lines protected)");
            if (take) {
                BankLine &hl = line(v->lines.front(), set);
                std::vector<UopSlot> prepend(
                    seq.begin() + remaining,
                    seq.begin() + remaining + take);
                hl.slots.insert(hl.slots.begin(), prepend.begin(),
                                prepend.end());
                accountSlots(prepend, +1);
                v->lines.front().count += (uint16_t)take;
            }
            v->lines.insert(v->lines.begin(), new_lines.begin(),
                            new_lines.end());
            v->seq = seq;
            rebuildMask(*v);
            ++extensions;
            fill_out(*v);
            return InsertOutcome::Extended;
        }
    } else if (have_best &&
               params_.complexMode ==
                   XbcParams::ComplexMode::PrefixSplit) {
        // The caller (XFU) stores the differing prefix as an
        // independent XB and chains it through the XBTB.
        if (common_out)
            *common_out = best_common;
        return InsertOutcome::PrefixNeeded;
    } else if (have_best &&
               params_.complexMode ==
                   XbcParams::ComplexMode::Complex) {
        // Case 3: same suffix, different prefix -> complex XB. Share
        // as many suffix lines as the bank budget allows (the
        // boundary line may be shared partially thanks to the
        // reverse-order storage).
        std::size_t m = best_lines.size();
        // cum[j] = uops covered by the last j lines of best.
        std::vector<std::size_t> cum(m + 1, 0);
        for (std::size_t j = 1; j <= m; ++j)
            cum[j] = cum[j - 1] + best_lines[m - j].count;

        for (std::size_t k_shared = m; k_shared >= 1; --k_shared) {
            std::size_t shared_uops =
                std::min<std::size_t>(best_common, cum[k_shared]);
            if (shared_uops == 0 || shared_uops >= seq.size())
                continue;
            if (shared_uops <= cum[k_shared - 1])
                continue;  // k_shared-1 lines already cover it
            std::size_t prefix_uops = seq.size() - shared_uops;
            std::size_t prefix_lines =
                (prefix_uops + params_.bankUops - 1) /
                params_.bankUops;
            if (prefix_lines + k_shared > params_.numBanks)
                continue;

            uint32_t shared_banks = 0;
            for (std::size_t j = 0; j < k_shared; ++j)
                shared_banks |= 1u << best_lines[m - 1 - j].bank;

            auto chunks = placeChunks(seq, prefix_uops, end_ip, set,
                                      shared_banks, prev_mask);
            if (!chunks)
                continue;
            // The shared lines belong to best; they were excluded
            // from eviction via shared_banks, so they still hold.
            Variant v;
            v.tag = end_ip;
            v.lines = std::move(*chunks);
            for (std::size_t j = k_shared; j-- > 0;) {
                LineUse lu = best_lines[m - 1 - j];
                if (j == k_shared - 1) {
                    // Earliest shared line: partial use.
                    std::size_t before = cum[k_shared - 1];
                    lu.count = (uint16_t)(shared_uops - before);
                }
                v.lines.push_back(lu);
            }
            v.seq = seq;
            rebuildMask(v);
            ++complexAdds;
            auto &vars = directory_[end_ip];
            vars.push_back(std::move(v));
            fill_out(vars.back());
            return InsertOutcome::ComplexAdded;
        }
    }

    // Fresh allocation (also the complex fallback and the
    // prefix-as-independent-XB policy when complex XBs are disabled).
    {
        auto chunks = placeChunks(seq, seq.size(), end_ip, set, 0,
                                  prev_mask);
        if (!chunks) {
            if (out)
                out->valid = false;
            auto it = directory_.find(end_ip);
            if (it != directory_.end() && it->second.empty())
                directory_.erase(it);
            return InsertOutcome::IndependentAdded;
        }
        Variant v;
        v.tag = end_ip;
        v.lines = std::move(*chunks);
        v.seq = seq;
        rebuildMask(v);
        auto &vars = directory_[end_ip];
        bool fresh = vars.empty();
        vars.push_back(std::move(v));
        if (fresh)
            ++allocs;
        else
            ++independentAdds;
        fill_out(vars.back());
        return fresh ? InsertOutcome::Allocated
                     : InsertOutcome::IndependentAdded;
    }
}

XbcDataArray::Access
XbcDataArray::lookup(uint64_t tag, uint32_t mask_bits,
                     int32_t entry_idx)
{
    Access acc;
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return acc;
    for (auto &v : it->second) {
        if (v.mask != mask_bits)
            continue;
        // Entry must sit at an instruction boundary in the sequence.
        for (std::size_t p = 0; p < v.seq.size(); ++p) {
            if (v.seq[p].staticIdx == entry_idx && v.seq[p].seq == 0) {
                acc.variant = &v;
                acc.entryPos = p;
                return acc;
            }
        }
    }
    return acc;
}

XbcDataArray::Access
XbcDataArray::findQuiet(uint64_t tag, int32_t entry_idx)
{
    Access acc;
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return acc;
    for (auto &v : it->second) {
        for (std::size_t p = 0; p < v.seq.size(); ++p) {
            if (v.seq[p].staticIdx == entry_idx && v.seq[p].seq == 0) {
                acc.variant = &v;
                acc.entryPos = p;
                return acc;
            }
        }
    }
    return acc;
}

const XbcDataArray::Variant *
XbcDataArray::longestVariant(uint64_t tag) const
{
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return nullptr;
    const Variant *best = nullptr;
    for (const auto &v : it->second) {
        if (!best || v.seq.size() > best->seq.size())
            best = &v;
    }
    return best;
}

XbcDataArray::Access
XbcDataArray::setSearch(uint64_t tag, int32_t entry_idx)
{
    ++setSearches;
    Access acc = findQuiet(tag, entry_idx);
    if (acc.variant)
        ++setSearchHits;
    return acc;
}

void
XbcDataArray::touch(const Variant &variant, std::size_t entry_pos)
{
    std::size_t set = setOf(variant.tag);
    // Find the first line the entry falls into.
    std::size_t pos = 0;
    std::size_t start_line = 0;
    for (std::size_t i = 0; i < variant.lines.size(); ++i) {
        if (entry_pos < pos + variant.lines[i].count) {
            start_line = i;
            break;
        }
        pos += variant.lines[i].count;
    }
    // Touch head-to-primary so the primary ends most recent and a
    // head line is always the first of the XB to age out.
    for (std::size_t i = start_line; i < variant.lines.size(); ++i)
        line(variant.lines[i], set).lru = ++clock_;
}

bool
XbcDataArray::noteConflict(const Variant &variant,
                           std::size_t line_pos,
                           uint32_t free_banks_mask)
{
    std::size_t set = setOf(variant.tag);
    const LineUse lu = variant.lines[line_pos];
    BankLine &l = line(lu, set);
    ++l.conflict;
    conflictProbe_.fire((int64_t)line_pos);
    if (!params_.dynamicPlacement ||
        l.conflict < params_.dynamicPlacementThreshold) {
        return false;
    }
    l.conflict = 0;

    uint32_t candidates = free_banks_mask & ~variant.mask &
                          (uint32_t)mask(params_.numBanks);
    for (unsigned b = 0; b < params_.numBanks; ++b) {
        if (!(candidates & (1u << b)))
            continue;
        for (unsigned w = 0; w < params_.ways; ++w) {
            BankLine &target = line(b, set, w);
            // Move only into an invalid way or over an older line
            // ("only if its LRU is higher, or both gain").
            if (target.valid && target.lru >= l.lru)
                continue;
            if (target.valid) {
                ++evictions;
                evictProbe_.fire((int64_t)target.slots.size());
                accountSlots(target.slots, -1);
                dropVariantsUsing(target.tag, set, b, w);
            }
            target = l;
            l.valid = false;
            l.slots.clear();
            l.conflict = 0;

            // Repoint every variant of this tag that used the old
            // line; drop any that would now collide on the bank.
            auto it = directory_.find(variant.tag);
            if (it != directory_.end()) {
                auto &vars = it->second;
                for (auto &v : vars) {
                    for (auto &ref : v.lines) {
                        if (ref.bank == lu.bank && ref.way == lu.way) {
                            ref.bank = (uint8_t)b;
                            ref.way = (uint8_t)w;
                        }
                    }
                    rebuildMask(v);
                }
                // Drop variants with duplicate banks (unreadable).
                vars.erase(std::remove_if(vars.begin(), vars.end(),
                    [&](const Variant &v) {
                        uint32_t seen = 0;
                        for (const auto &ref : v.lines) {
                            if (seen & (1u << ref.bank))
                                return true;
                            seen |= 1u << ref.bank;
                        }
                        return false;
                    }), vars.end());
                if (vars.empty())
                    directory_.erase(it);
            }
            ++relocations;
            relocProbe_.fire((int64_t)b);
            return true;
        }
    }
    return false;
}

void
XbcDataArray::demoteLru(uint64_t tag, uint32_t mask_bits)
{
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return;
    std::size_t set = setOf(tag);
    for (auto &v : it->second) {
        if (v.mask != mask_bits)
            continue;
        for (const auto &lu : v.lines)
            line(lu, set).lru = 0;
    }
}

double
XbcDataArray::redundancy() const
{
    uint64_t instances = 0;
    for (const auto &[id, count] : residency_)
        instances += count;
    return residency_.empty()
               ? 1.0
               : (double)instances / (double)residency_.size();
}

double
XbcDataArray::fillFactor() const
{
    uint64_t reserved = 0;
    for (const auto &l : lines_) {
        if (l.valid)
            reserved += params_.bankUops;
    }
    return reserved ? (double)filledUops_ / (double)reserved : 0.0;
}

void
XbcDataArray::checkInvariants() const
{
    for (const auto &[tag, vars] : directory_) {
        std::size_t set = setOf(tag);
        for (const auto &v : vars) {
            xbs_assert(v.tag == tag, "variant tag mismatch");
            xbs_assert(!v.lines.empty() && !v.seq.empty(),
                       "empty variant");
            uint32_t banks = 0;
            XbSeq concat;
            for (std::size_t i = 0; i < v.lines.size(); ++i) {
                const auto &lu = v.lines[i];
                xbs_assert(!(banks & (1u << lu.bank)),
                           "duplicate bank within variant");
                banks |= 1u << lu.bank;
                const BankLine &l = line(lu.bank, set, lu.way);
                xbs_assert(l.valid && l.tag == tag,
                           "variant references stale line");
                xbs_assert(lu.count >= 1 &&
                           lu.count <= l.slots.size(),
                           "bad line use count");
                // (A truncated variant's head line may be
                // partially used, so no head-fullness invariant.)
                concat.insert(concat.end(),
                              l.slots.end() - lu.count,
                              l.slots.end());
            }
            xbs_assert(banks == v.mask, "stale mask");
            xbs_assert(concat.size() == v.seq.size(),
                       "seq length mismatch");
            for (std::size_t i = 0; i < concat.size(); ++i) {
                xbs_assert(concat[i] == v.seq[i],
                           "seq content mismatch at %zu", i);
            }
        }
    }

    // Residency must match the physical contents exactly.
    uint64_t filled = 0;
    for (const auto &l : lines_) {
        if (l.valid) {
            xbs_assert(l.slots.size() <= params_.bankUops,
                       "overfull line");
            filled += l.slots.size();
        }
    }
    xbs_assert(filled == filledUops_, "filledUops accounting drift");
}

void
XbcDataArray::reset()
{
    for (auto &l : lines_)
        l = BankLine{};
    directory_.clear();
    residency_.clear();
    filledUops_ = 0;
    clock_ = 0;
    resetStats();
}

} // namespace xbs
