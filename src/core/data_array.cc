#include "core/data_array.hh"

#include <algorithm>

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"
#include "core/xbtb.hh"

namespace xbs
{

XbcDataArray::XbcDataArray(const XbcParams &params, StatGroup *parent,
                           ProbeManager *probes)
    : StatGroup("xbc", parent), params_(params),
      evictProbe_(probes, "array", "evict"),
      relocProbe_(probes, "array", "relocate"),
      conflictProbe_(probes, "array", "conflict"),
      occupancyProbe_(probes, "array", "residentUops")
{
    xbs_assert(params_.numBanks >= 1 && params_.bankUops >= 1 &&
               params_.ways >= 1, "bad XBC geometry");
    xbs_assert(params_.xbQuotaUops <=
               params_.numBanks * params_.bankUops,
               "XB quota exceeds one set row");
    unsigned set_uops = params_.numBanks * params_.bankUops *
                        params_.ways;
    unsigned sets = params_.capacityUops / set_uops;
    xbs_assert(sets >= 1, "XBC capacity below one set");
    numSets_ = 1u << floorLog2(sets);
    lines_.resize((std::size_t)params_.numBanks * numSets_ *
                  params_.ways);
}

std::size_t
XbcDataArray::setOf(uint64_t tag) const
{
    return (std::size_t)foldedIndex(tag, numSets_, 0);
}

XbcDataArray::BankLine &
XbcDataArray::line(unsigned bank, std::size_t set, unsigned way)
{
    return lines_[((std::size_t)bank * numSets_ + set) * params_.ways +
                  way];
}

const XbcDataArray::BankLine &
XbcDataArray::line(unsigned bank, std::size_t set, unsigned way) const
{
    return lines_[((std::size_t)bank * numSets_ + set) * params_.ways +
                  way];
}

XbcDataArray::BankLine &
XbcDataArray::line(const LineUse &lu, std::size_t set)
{
    return line(lu.bank, set, lu.way);
}

void
XbcDataArray::accountSlots(const std::vector<UopSlot> &slots, int delta)
{
    xbs_assert(code_ != nullptr, "XBC used before bindCode()");
    for (const auto &s : slots) {
        UopId id = makeUopId(code_->inst(s.staticIdx).ip, s.seq);
        if (delta > 0) {
            ++residency_[id];
            ++filledUops_;
        } else {
            auto it = residency_.find(id);
            xbs_assert(it != residency_.end() && it->second > 0,
                       "XBC residency underflow");
            if (--it->second == 0)
                residency_.erase(it);
            --filledUops_;
        }
    }
    occupancyProbe_.count((int64_t)filledUops_);
}

void
XbcDataArray::rebuildMask(Variant &v)
{
    v.mask = 0;
    for (const auto &lu : v.lines)
        v.mask |= 1u << lu.bank;
}

void
XbcDataArray::refreshLru(Variant &v)
{
    std::size_t set = setOf(v.tag);
    for (const auto &lu : v.lines)
        line(lu, set).lru = ++clock_;
}

void
XbcDataArray::dropVariantsUsing(uint64_t tag, std::size_t set,
                                unsigned bank, unsigned way)
{
    auto it = directory_.find(tag);
    if (it == directory_.end()) {
        // Line outlived every variant of its tag; still an eviction
        // for the structure-accounting heatmap.
        if (sink_)
            sink_->onEvict(tag, bank, set, false, false);
        return;
    }
    auto &vars = it->second;
    bool head = false;

    // Paper section 3.10: evicting a head line still leaves the XB
    // enterable in its middle, so a variant losing a line keeps its
    // surviving suffix (the lines after the evicted one); only a
    // variant losing its primary line dies entirely.
    for (auto &v : vars) {
        std::size_t hit = v.lines.size();
        for (std::size_t i = 0; i < v.lines.size(); ++i) {
            if (v.lines[i].bank == bank && v.lines[i].way == way) {
                hit = i;
                break;
            }
        }
        if (hit == v.lines.size())
            continue;
        if (hit == 0)
            head = true;
        ++variantDrops;
        std::size_t keep_uops = 0;
        for (std::size_t i = hit + 1; i < v.lines.size(); ++i)
            keep_uops += v.lines[i].count;
        if (keep_uops == 0) {
            v.lines.clear();  // marks the variant dead
            v.seq.clear();
            continue;
        }
        v.lines.erase(v.lines.begin(),
                      v.lines.begin() + (std::ptrdiff_t)hit + 1);
        v.seq.erase(v.seq.begin(),
                    v.seq.end() - (std::ptrdiff_t)keep_uops);
        rebuildMask(v);
    }
    vars.erase(std::remove_if(vars.begin(), vars.end(),
                              [](const Variant &v) {
                                  return v.lines.empty();
                              }),
               vars.end());

    // Truncation can leave duplicate suffix-only variants; keep one.
    for (std::size_t i = 0; i < vars.size(); ++i) {
        for (std::size_t j = vars.size(); j-- > i + 1;) {
            if (vars[j].seq == vars[i].seq &&
                vars[j].mask == vars[i].mask) {
                vars.erase(vars.begin() + (std::ptrdiff_t)j);
            }
        }
    }
    bool last_gone = vars.empty();
    if (last_gone)
        directory_.erase(it);
    if (sink_)
        sink_->onEvict(tag, bank, set, head, last_gone);
}

std::optional<XbcDataArray::LineUse>
XbcDataArray::allocLine(uint64_t tag, std::size_t set,
                        uint32_t used_banks, uint32_t avoid_mask)
{
    const uint32_t all = mask(params_.numBanks);
    uint32_t allowed = all & ~used_banks;
    if (!allowed)
        return std::nullopt;

    // Pass 1: an invalid way in a preferred (non-avoid) bank.
    // Pass 2: an invalid way anywhere allowed.
    // Pass 3: LRU victim in a preferred bank.
    // Pass 4: LRU victim anywhere allowed.
    for (int pass = 0; pass < 4; ++pass) {
        bool prefer = (pass == 0 || pass == 2);
        bool want_invalid = (pass < 2);
        BankLine *victim = nullptr;
        LineUse ref;
        for (unsigned b = 0; b < params_.numBanks; ++b) {
            if (!(allowed & (1u << b)))
                continue;
            if (prefer && (avoid_mask & (1u << b)))
                continue;
            for (unsigned w = 0; w < params_.ways; ++w) {
                BankLine &l = line(b, set, w);
                if (want_invalid) {
                    if (!l.valid) {
                        victim = &l;
                        ref = LineUse{(uint8_t)b, (uint8_t)w, 0};
                        break;
                    }
                } else if (l.valid) {
                    if (!victim || l.lru < victim->lru) {
                        victim = &l;
                        ref = LineUse{(uint8_t)b, (uint8_t)w, 0};
                    }
                }
            }
            if (want_invalid && victim)
                break;
        }
        if (!victim)
            continue;

        if (victim->valid) {
            ++evictions;
            evictProbe_.fire((int64_t)victim->slots.size());
            accountSlots(victim->slots, -1);
            dropVariantsUsing(victim->tag, set, ref.bank, ref.way);
        }
        victim->valid = true;
        victim->tag = tag;
        victim->lru = ++clock_;
        victim->conflict = 0;
        victim->slots.clear();
        if (sink_)
            sink_->onAlloc(tag, ref.bank, set);
        return ref;
    }
    return std::nullopt;
}

std::optional<std::vector<XbcDataArray::LineUse>>
XbcDataArray::placeChunks(const XbSeq &seq, std::size_t uops,
                          uint64_t tag, std::size_t set,
                          uint32_t used_banks, uint32_t avoid_mask)
{
    xbs_assert(uops >= 1 && uops <= seq.size(), "bad chunk span");

    // Reverse-order fill: full bankUops chunks counted from the end
    // of the span; the head chunk takes the remainder, leaving free
    // space at the head line for later extension.
    std::vector<std::size_t> sizes;
    std::size_t head = uops % params_.bankUops;
    if (head)
        sizes.push_back(head);
    for (std::size_t done = head; done < uops;
         done += params_.bankUops) {
        sizes.push_back(params_.bankUops);
    }

    if (sizes.size() > popCount(mask(params_.numBanks) & ~used_banks))
        return std::nullopt;

    std::vector<LineUse> placed;
    uint32_t banks = used_banks;
    std::size_t pos = 0;
    for (std::size_t sz : sizes) {
        auto lu = allocLine(tag, set, banks, avoid_mask);
        if (!lu) {
            // Roll back lines placed so far.
            for (auto &p : placed) {
                BankLine &l = line(p, set);
                accountSlots(l.slots, -1);
                l.valid = false;
                l.slots.clear();
            }
            return std::nullopt;
        }
        BankLine &l = line(*lu, set);
        l.slots.assign(seq.begin() + pos, seq.begin() + pos + sz);
        accountSlots(l.slots, +1);
        lu->count = (uint16_t)sz;
        placed.push_back(*lu);
        banks |= 1u << lu->bank;
        pos += sz;
    }
    return placed;
}

XbcDataArray::InsertOutcome
XbcDataArray::insert(const XbSeq &seq, uint64_t end_ip,
                     uint32_t prev_mask, XbPointer *out,
                     unsigned *common_out, bool allow_match)
{
    xbs_assert(!seq.empty() && seq.size() <= params_.xbQuotaUops,
               "bad XB length %zu", seq.size());
    ++inserts;
    std::size_t set = setOf(end_ip);

    auto fill_out = [&](const Variant &v) {
        if (out) {
            out->valid = true;
            out->xbIp = end_ip;
            out->mask = v.mask;
            out->entryIdx = seq.front().staticIdx;
        }
    };
    if (out)
        out->valid = false;

    // Find the resident variant with the longest common suffix.
    // NOTE: evictions during line allocation can reshuffle the
    // variant vector, so everything needed later is copied out and
    // the variant is re-found by its sequence before mutation.
    unsigned best_common = 0;
    XbSeq best_seq;
    uint32_t best_mask = 0;
    std::vector<LineUse> best_lines;
    if (allow_match) {
        auto it = directory_.find(end_ip);
        if (it != directory_.end()) {
            for (auto &v : it->second) {
                unsigned c = commonSuffixLength(seq, v.seq);
                if (c > best_common) {
                    best_common = c;
                    best_seq = v.seq;
                    best_mask = v.mask;
                    best_lines = v.lines;
                }
            }
        }
    }
    bool have_best = best_common > 0;

    auto refind_best = [&]() -> Variant * {
        auto it = directory_.find(end_ip);
        if (it == directory_.end())
            return nullptr;
        for (auto &v : it->second) {
            if (v.seq == best_seq && v.mask == best_mask)
                return &v;
        }
        return nullptr;
    };

    if (have_best && best_common == seq.size()) {
        // Case 1: the existing XB contains the new one; only the
        // XBTB needs a pointer (multiple entry points at work).
        ++containedHits;
        Variant *v = refind_best();
        xbs_assert(v != nullptr, "case-1 variant vanished");
        fill_out(*v);
        return InsertOutcome::AlreadyPresent;
    }

    if (have_best && best_common == best_seq.size()) {
        // Case 2: the new XB contains the existing one; extend it at
        // its head. Reverse-order storage means nothing moves: free
        // head-line slots fill up, then fresh lines are allocated.
        std::size_t extra = seq.size() - best_common;
        const BankLine &hl_probe = line(best_lines.front(), set);
        // A truncated variant's head line may be partially used (its
        // leading slots belong to an evicted prefix); in-place head
        // fill is only legal when the variant owns the whole line.
        std::size_t free_slots = 0;
        if (hl_probe.slots.size() == best_lines.front().count)
            free_slots = params_.bankUops - hl_probe.slots.size();
        std::size_t take = std::min(free_slots, extra);
        std::size_t remaining = extra - take;

        std::vector<LineUse> new_lines;
        bool ok = true;
        if (remaining) {
            auto chunks = placeChunks(seq, remaining, end_ip, set,
                                      best_mask, prev_mask);
            if (chunks)
                new_lines = std::move(*chunks);
            else
                ok = false;  // bank exhaustion; fall through below
        }
        if (ok) {
            Variant *v = refind_best();
            xbs_assert(v != nullptr,
                       "case-2 variant vanished (lines protected)");
            if (take) {
                BankLine &hl = line(v->lines.front(), set);
                std::vector<UopSlot> prepend(
                    seq.begin() + remaining,
                    seq.begin() + remaining + take);
                hl.slots.insert(hl.slots.begin(), prepend.begin(),
                                prepend.end());
                accountSlots(prepend, +1);
                v->lines.front().count += (uint16_t)take;
            }
            v->lines.insert(v->lines.begin(), new_lines.begin(),
                            new_lines.end());
            v->seq = seq;
            rebuildMask(*v);
            // The XFU just wrote the whole extended image: re-stamp
            // the lines head-first so the section 3.10 aging order
            // (head line oldest) holds for the new shape too.
            refreshLru(*v);
            ++extensions;
            fill_out(*v);
            return InsertOutcome::Extended;
        }
    } else if (have_best &&
               params_.complexMode ==
                   XbcParams::ComplexMode::PrefixSplit) {
        // The caller (XFU) stores the differing prefix as an
        // independent XB and chains it through the XBTB.
        if (common_out)
            *common_out = best_common;
        return InsertOutcome::PrefixNeeded;
    } else if (have_best &&
               params_.complexMode ==
                   XbcParams::ComplexMode::Complex) {
        // Case 3: same suffix, different prefix -> complex XB. Share
        // as many suffix lines as the bank budget allows (the
        // boundary line may be shared partially thanks to the
        // reverse-order storage).
        std::size_t m = best_lines.size();
        // cum[j] = uops covered by the last j lines of best.
        std::vector<std::size_t> cum(m + 1, 0);
        for (std::size_t j = 1; j <= m; ++j)
            cum[j] = cum[j - 1] + best_lines[m - j].count;

        for (std::size_t k_shared = m; k_shared >= 1; --k_shared) {
            std::size_t shared_uops =
                std::min<std::size_t>(best_common, cum[k_shared]);
            if (shared_uops == 0 || shared_uops >= seq.size())
                continue;
            if (shared_uops <= cum[k_shared - 1])
                continue;  // k_shared-1 lines already cover it
            std::size_t prefix_uops = seq.size() - shared_uops;
            std::size_t prefix_lines =
                (prefix_uops + params_.bankUops - 1) /
                params_.bankUops;
            if (prefix_lines + k_shared > params_.numBanks)
                continue;

            uint32_t shared_banks = 0;
            for (std::size_t j = 0; j < k_shared; ++j)
                shared_banks |= 1u << best_lines[m - 1 - j].bank;

            auto chunks = placeChunks(seq, prefix_uops, end_ip, set,
                                      shared_banks, prev_mask);
            if (!chunks)
                continue;
            // The shared lines belong to best; they were excluded
            // from eviction via shared_banks, so they still hold.
            Variant v;
            v.tag = end_ip;
            v.lines = std::move(*chunks);
            for (std::size_t j = k_shared; j-- > 0;) {
                LineUse lu = best_lines[m - 1 - j];
                if (j == k_shared - 1) {
                    // Earliest shared line: partial use.
                    std::size_t before = cum[k_shared - 1];
                    lu.count = (uint16_t)(shared_uops - before);
                }
                v.lines.push_back(lu);
            }
            v.seq = seq;
            rebuildMask(v);
            ++complexAdds;
            auto &vars = directory_[end_ip];
            vars.push_back(std::move(v));
            // Head-first aging for the complex image too (the shared
            // suffix lines were just accessed by the store).
            refreshLru(vars.back());
            fill_out(vars.back());
            return InsertOutcome::ComplexAdded;
        }
    }

    // Fresh allocation (also the complex fallback and the
    // prefix-as-independent-XB policy when complex XBs are disabled).
    {
        auto chunks = placeChunks(seq, seq.size(), end_ip, set, 0,
                                  prev_mask);
        if (!chunks) {
            if (out)
                out->valid = false;
            auto it = directory_.find(end_ip);
            if (it != directory_.end() && it->second.empty())
                directory_.erase(it);
            return InsertOutcome::IndependentAdded;
        }
        Variant v;
        v.tag = end_ip;
        v.lines = std::move(*chunks);
        v.seq = seq;
        rebuildMask(v);
        auto &vars = directory_[end_ip];
        bool fresh = vars.empty();
        vars.push_back(std::move(v));
        if (fresh)
            ++allocs;
        else
            ++independentAdds;
        fill_out(vars.back());
        return fresh ? InsertOutcome::Allocated
                     : InsertOutcome::IndependentAdded;
    }
}

XbcDataArray::Access
XbcDataArray::lookup(uint64_t tag, uint32_t mask_bits,
                     int32_t entry_idx)
{
    Access acc;
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return acc;
    for (auto &v : it->second) {
        if (v.mask != mask_bits)
            continue;
        // Entry must sit at an instruction boundary in the sequence.
        for (std::size_t p = 0; p < v.seq.size(); ++p) {
            if (v.seq[p].staticIdx == entry_idx && v.seq[p].seq == 0) {
                acc.variant = &v;
                acc.entryPos = p;
                return acc;
            }
        }
    }
    return acc;
}

XbcDataArray::Access
XbcDataArray::findQuiet(uint64_t tag, int32_t entry_idx)
{
    Access acc;
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return acc;
    for (auto &v : it->second) {
        for (std::size_t p = 0; p < v.seq.size(); ++p) {
            if (v.seq[p].staticIdx == entry_idx && v.seq[p].seq == 0) {
                acc.variant = &v;
                acc.entryPos = p;
                return acc;
            }
        }
    }
    return acc;
}

const XbcDataArray::Variant *
XbcDataArray::longestVariant(uint64_t tag) const
{
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return nullptr;
    const Variant *best = nullptr;
    for (const auto &v : it->second) {
        if (!best || v.seq.size() > best->seq.size())
            best = &v;
    }
    return best;
}

XbcDataArray::Access
XbcDataArray::setSearch(uint64_t tag, int32_t entry_idx)
{
    ++setSearches;
    Access acc = findQuiet(tag, entry_idx);
    if (acc.variant)
        ++setSearchHits;
    return acc;
}

void
XbcDataArray::touch(const Variant &variant, std::size_t entry_pos)
{
    std::size_t set = setOf(variant.tag);
    // Find the first line the entry falls into.
    std::size_t pos = 0;
    std::size_t start_line = 0;
    for (std::size_t i = 0; i < variant.lines.size(); ++i) {
        if (entry_pos < pos + variant.lines[i].count) {
            start_line = i;
            break;
        }
        pos += variant.lines[i].count;
    }
    // Touch head-to-primary so the primary ends most recent and a
    // head line is always the first of the XB to age out.
    for (std::size_t i = start_line; i < variant.lines.size(); ++i)
        line(variant.lines[i], set).lru = ++clock_;
}

bool
XbcDataArray::noteConflict(const Variant &variant,
                           std::size_t line_pos,
                           uint32_t free_banks_mask)
{
    std::size_t set = setOf(variant.tag);
    const LineUse lu = variant.lines[line_pos];
    BankLine &l = line(lu, set);
    ++l.conflict;
    conflictProbe_.fire((int64_t)line_pos);
    if (sink_)
        sink_->onConflict(lu.bank, set);
    if (!params_.dynamicPlacement ||
        l.conflict < params_.dynamicPlacementThreshold) {
        return false;
    }
    l.conflict = 0;

    uint32_t candidates = free_banks_mask & ~variant.mask &
                          (uint32_t)mask(params_.numBanks);
    for (unsigned b = 0; b < params_.numBanks; ++b) {
        if (!(candidates & (1u << b)))
            continue;
        for (unsigned w = 0; w < params_.ways; ++w) {
            BankLine &target = line(b, set, w);
            // Move only into an invalid way or over an older line
            // ("only if its LRU is higher, or both gain").
            if (target.valid && target.lru >= l.lru)
                continue;
            if (target.valid) {
                ++evictions;
                evictProbe_.fire((int64_t)target.slots.size());
                accountSlots(target.slots, -1);
                dropVariantsUsing(target.tag, set, b, w);
            }
            target = l;
            l.valid = false;
            l.slots.clear();
            l.conflict = 0;

            // Repoint every variant of this tag that used the old
            // line; drop any that would now collide on the bank.
            auto it = directory_.find(variant.tag);
            if (it != directory_.end()) {
                auto &vars = it->second;
                for (auto &v : vars) {
                    for (auto &ref : v.lines) {
                        if (ref.bank == lu.bank && ref.way == lu.way) {
                            ref.bank = (uint8_t)b;
                            ref.way = (uint8_t)w;
                        }
                    }
                    rebuildMask(v);
                }
                // Drop variants with duplicate banks (unreadable).
                vars.erase(std::remove_if(vars.begin(), vars.end(),
                    [&](const Variant &v) {
                        uint32_t seen = 0;
                        for (const auto &ref : v.lines) {
                            if (seen & (1u << ref.bank))
                                return true;
                            seen |= 1u << ref.bank;
                        }
                        return false;
                    }), vars.end());
                if (vars.empty())
                    directory_.erase(it);
            }
            ++relocations;
            relocProbe_.fire((int64_t)b);
            return true;
        }
    }
    return false;
}

void
XbcDataArray::demoteLru(uint64_t tag, uint32_t mask_bits)
{
    auto it = directory_.find(tag);
    if (it == directory_.end())
        return;
    std::size_t set = setOf(tag);
    for (auto &v : it->second) {
        if (v.mask != mask_bits)
            continue;
        for (const auto &lu : v.lines)
            line(lu, set).lru = 0;
    }
}

double
XbcDataArray::redundancy() const
{
    uint64_t instances = 0;
    for (const auto &[id, count] : residency_)
        instances += count;
    return residency_.empty()
               ? 1.0
               : (double)instances / (double)residency_.size();
}

double
XbcDataArray::fillFactor() const
{
    uint64_t reserved = 0;
    for (const auto &l : lines_) {
        if (l.valid)
            reserved += params_.bankUops;
    }
    return reserved ? (double)filledUops_ / (double)reserved : 0.0;
}

void
XbcDataArray::auditStorage(
    const std::function<void(AuditViolation)> &sink) const
{
    auto report = [&](AuditViolation::Kind kind, std::string what) {
        AuditViolation v;
        v.kind = kind;
        v.where = "xbc.array";
        v.what = std::move(what);
        sink(std::move(v));
    };
    auto structural = [&](std::string what) {
        report(AuditViolation::Kind::Structural, std::move(what));
    };

    for (const auto &[tag, vars] : directory_) {
        std::size_t set = setOf(tag);
        std::string where =
            "tag " + std::to_string(tag) + ": ";
        for (std::size_t vi = 0; vi < vars.size(); ++vi) {
            const Variant &v = vars[vi];
            if (v.tag != tag) {
                structural(where + "variant tag mismatch");
                continue;
            }
            if (v.lines.empty() || v.seq.empty()) {
                structural(where + "empty variant");
                continue;
            }
            if (v.seq.size() > params_.xbQuotaUops) {
                structural(where + "variant of " +
                           std::to_string(v.seq.size()) +
                           " uops exceeds the " +
                           std::to_string(params_.xbQuotaUops) +
                           "-uop quota");
            }

            // Reverse-order banking: the concatenation of each
            // line's trailing `count` slots, head line first, must
            // reproduce the variant's logical sequence (this is what
            // makes mid-line complex-XB suffix sharing legal).
            uint32_t banks = 0;
            bool lines_ok = true;
            XbSeq concat;
            for (const auto &lu : v.lines) {
                if (banks & (1u << lu.bank)) {
                    structural(where +
                               "duplicate bank within variant");
                    lines_ok = false;
                    break;
                }
                banks |= 1u << lu.bank;
                const BankLine &l = line(lu.bank, set, lu.way);
                if (!l.valid || l.tag != tag) {
                    structural(where +
                               "variant references a stale line");
                    lines_ok = false;
                    break;
                }
                if (lu.count < 1 || lu.count > l.slots.size()) {
                    structural(where + "bad line use count " +
                               std::to_string(lu.count));
                    lines_ok = false;
                    break;
                }
                // (A truncated variant's head line may be partially
                // used, so no head-fullness invariant.)
                concat.insert(concat.end(),
                              l.slots.end() - lu.count,
                              l.slots.end());
            }
            if (!lines_ok)
                continue;
            if (banks != v.mask)
                structural(where + "stale bank mask");
            if (concat.size() != v.seq.size()) {
                structural(where + "sequence length mismatch");
                continue;
            }
            for (std::size_t i = 0; i < concat.size(); ++i) {
                if (!(concat[i] == v.seq[i])) {
                    structural(where +
                               "sequence content mismatch at uop " +
                               std::to_string(i) +
                               " (reverse-order banking broken)");
                    break;
                }
            }

            // Head-first aging (section 3.10): line LRU must be
            // non-decreasing head -> primary so a head line is
            // always the first of the XB to age out. demoteLru()
            // zeroes a promoted XB0's lines; such variants are
            // deliberately aged and skipped here.
            bool demoted = false;
            for (const auto &lu : v.lines)
                demoted |= line(lu.bank, set, lu.way).lru == 0;
            if (!demoted) {
                for (std::size_t i = 1; i < v.lines.size(); ++i) {
                    const BankLine &prev =
                        line(v.lines[i - 1].bank, set,
                             v.lines[i - 1].way);
                    const BankLine &cur =
                        line(v.lines[i].bank, set, v.lines[i].way);
                    if (prev.lru > cur.lru) {
                        structural(where + "head line " +
                                   std::to_string(i - 1) +
                                   " is newer than line " +
                                   std::to_string(i) +
                                   " (head-first aging broken)");
                        break;
                    }
                }
            }

            // Single exit / instruction-boundary integrity: the
            // sequence must be whole instructions, and an XB-ending
            // class may sit mid-XB only where construction puts one:
            // CondBranch anywhere (promotion embeds them), DirectJump
            // and Seq anywhere (absorbed), and call/return/indirect
            // at the head or right after an embedded CondBranch (the
            // quota path spills the ending instruction into the next
            // XB, and promotion splices such a successor in whole).
            if (code_) {
                std::size_t p = 0;
                InstClass prev_cls = InstClass::CondBranch;
                // Suffix-preserving truncation may leave the head
                // instruction partially cached: tolerate a consistent
                // tail of one instruction before the first boundary.
                if (!v.seq.empty() && v.seq[0].seq != 0 &&
                    v.seq[0].staticIdx >= 0 &&
                    (std::size_t)v.seq[0].staticIdx < code_->size()) {
                    const UopSlot &h = v.seq[0];
                    const StaticInst &hi = code_->inst(h.staticIdx);
                    bool tail_ok = h.seq < hi.numUops;
                    std::size_t u = 0;
                    for (; tail_ok && u < v.seq.size() &&
                           h.seq + u < hi.numUops; ++u) {
                        if (!(v.seq[u] ==
                              UopSlot{h.staticIdx,
                                      (uint8_t)(h.seq + u)})) {
                            tail_ok = false;
                        }
                    }
                    if (!tail_ok) {
                        structural(where + "partial head instruction "
                                   "stored with foreign uops");
                        p = v.seq.size();
                    } else {
                        p = u;
                        prev_cls = hi.cls;
                    }
                }
                while (p < v.seq.size()) {
                    const UopSlot &s = v.seq[p];
                    if (s.seq != 0 || s.staticIdx < 0 ||
                        (std::size_t)s.staticIdx >= code_->size()) {
                        structural(where +
                                   "uop " + std::to_string(p) +
                                   " is not an instruction boundary");
                        break;
                    }
                    const StaticInst &si = code_->inst(s.staticIdx);
                    if (p + si.numUops > v.seq.size()) {
                        structural(where + "instruction at uop " +
                                   std::to_string(p) +
                                   " truncated by the sequence end");
                        break;
                    }
                    bool whole = true;
                    for (unsigned u = 1; u < si.numUops; ++u) {
                        if (!(v.seq[p + u] ==
                              UopSlot{s.staticIdx, (uint8_t)u})) {
                            structural(
                                where + "instruction at uop " +
                                std::to_string(p) +
                                " stored with foreign uops");
                            whole = false;
                            break;
                        }
                    }
                    if (!whole)
                        break;
                    bool last = p + si.numUops == v.seq.size();
                    if (!last && (isIndirect(si.cls) ||
                                  si.cls == InstClass::DirectCall) &&
                        prev_cls != InstClass::CondBranch) {
                        structural(
                            where + std::string(
                                instClassName(si.cls)) +
                            " at uop " + std::to_string(p) +
                            " in mid-XB (single-exit broken)");
                    }
                    prev_cls = si.cls;
                    p += si.numUops;
                }
            }

            // Uniqueness: truncation dedup and the three-case build
            // keep at most one variant per (mask, sequence) image.
            for (std::size_t vj = vi + 1; vj < vars.size(); ++vj) {
                if (vars[vj].mask == v.mask &&
                    vars[vj].seq == v.seq) {
                    structural(where + "duplicate variant image");
                }
            }
        }
    }

    // Accounting: residency and fill counters must match the
    // physical contents exactly (this is what redundancy() and the
    // paper's "(nearly) redundancy free" claim are computed from).
    uint64_t filled = 0;
    std::unordered_map<UopId, uint32_t> counted;
    for (const auto &l : lines_) {
        if (!l.valid)
            continue;
        if (l.slots.size() > params_.bankUops) {
            structural("overfull line (" +
                       std::to_string(l.slots.size()) + " slots)");
        }
        filled += l.slots.size();
        if (code_) {
            for (const auto &s : l.slots) {
                if (s.staticIdx >= 0 &&
                    (std::size_t)s.staticIdx < code_->size()) {
                    ++counted[makeUopId(
                        code_->inst(s.staticIdx).ip, s.seq)];
                }
            }
        }
    }
    if (filled != filledUops_) {
        report(AuditViolation::Kind::Accounting,
               "filledUops counter " + std::to_string(filledUops_) +
                   " != physical " + std::to_string(filled));
    }
    if (code_ && counted != residency_) {
        report(AuditViolation::Kind::Accounting,
               "residency map (" + std::to_string(residency_.size()) +
                   " unique uops) disagrees with physical contents (" +
                   std::to_string(counted.size()) + ")");
    }
}

void
XbcDataArray::checkInvariants() const
{
    auditStorage([](AuditViolation v) {
        xbs_panic("XBC invariant violated: %s", v.what.c_str());
    });
}

bool
XbcDataArray::faultInvalidateLine(std::size_t idx)
{
    if (idx >= lines_.size() || !lines_[idx].valid)
        return false;
    BankLine &l = lines_[idx];
    unsigned way = (unsigned)(idx % params_.ways);
    std::size_t set = (idx / params_.ways) % numSets_;
    unsigned bank = (unsigned)(idx / ((std::size_t)params_.ways *
                                      numSets_));
    ++evictions;
    evictProbe_.fire((int64_t)l.slots.size());
    accountSlots(l.slots, -1);
    dropVariantsUsing(l.tag, set, bank, way);
    l.valid = false;
    l.slots.clear();
    l.conflict = 0;
    return true;
}

bool
XbcDataArray::faultCorruptSlot(Rng &rng)
{
    if (!code_ || code_->size() < 2)
        return false;
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        if (lines_[i].valid && !lines_[i].slots.empty())
            candidates.push_back(i);
    }
    if (candidates.empty())
        return false;
    std::size_t idx = candidates[rng.below(candidates.size())];
    BankLine &l = lines_[idx];
    unsigned way = (unsigned)(idx % params_.ways);
    std::size_t set = (idx / params_.ways) % numSets_;
    unsigned bank = (unsigned)(idx / ((std::size_t)params_.ways *
                                      numSets_));

    std::size_t j = (std::size_t)rng.below(l.slots.size());
    UopSlot &slot = l.slots[j];
    int32_t old_idx = slot.staticIdx;
    int32_t new_idx = (int32_t)(((uint64_t)old_idx + 1 +
                                 rng.below(code_->size() - 1)) %
                                code_->size());

    // Keep the books balanced: the corruption changes *content*,
    // not structure, so the structural audit stays clean while the
    // frontend's match checks and the oracle see the damage.
    UopId old_id = makeUopId(code_->inst(old_idx).ip, slot.seq);
    auto it = residency_.find(old_id);
    if (it != residency_.end() && --it->second == 0)
        residency_.erase(it);
    ++residency_[makeUopId(code_->inst(new_idx).ip, slot.seq)];
    slot.staticIdx = new_idx;

    // Mirror into every variant sequence that covers the slot (a
    // variant uses the trailing `count` slots of each line).
    auto dit = directory_.find(l.tag);
    if (dit != directory_.end() && setOf(l.tag) == set) {
        for (auto &v : dit->second) {
            std::size_t pos = 0;
            for (const auto &lu : v.lines) {
                if (lu.bank == bank && lu.way == way) {
                    std::size_t first = l.slots.size() - lu.count;
                    if (j >= first)
                        v.seq[pos + (j - first)] = slot;
                }
                pos += lu.count;
            }
        }
    }
    return true;
}

bool
XbcDataArray::tamperDuplicateVariant()
{
    for (auto &[tag, vars] : directory_) {
        if (!vars.empty()) {
            vars.push_back(vars.front());
            return true;
        }
    }
    return false;
}

bool
XbcDataArray::tamperSwapVariantLines()
{
    for (auto &[tag, vars] : directory_) {
        for (auto &v : vars) {
            if (v.lines.size() >= 2) {
                std::swap(v.lines[0], v.lines[1]);
                rebuildMask(v);
                return true;
            }
        }
    }
    return false;
}

bool
XbcDataArray::tamperStaleHeadLru()
{
    for (auto &[tag, vars] : directory_) {
        std::size_t set = setOf(tag);
        for (auto &v : vars) {
            if (v.lines.size() < 2)
                continue;
            bool demoted = false;
            for (const auto &lu : v.lines)
                demoted |= line(lu, set).lru == 0;
            if (demoted)
                continue;
            line(v.lines.front(), set).lru = clock_ + 1000;
            return true;
        }
    }
    return false;
}

void
XbcDataArray::reset()
{
    for (auto &l : lines_)
        l = BankLine{};
    directory_.clear();
    residency_.clear();
    filledUops_ = 0;
    clock_ = 0;
    resetStats();
}

namespace
{

void
saveSlots(CkptSink &sink, const std::vector<UopSlot> &slots)
{
    sink.u64(slots.size());
    for (const UopSlot &slot : slots) {
        sink.i32(slot.staticIdx);
        sink.u8(slot.seq);
    }
}

void
loadSlots(CkptSource &src, std::vector<UopSlot> &slots)
{
    uint64_t n = src.count(5);
    slots.clear();
    slots.reserve(src.ok() ? n : 0);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        UopSlot slot;
        slot.staticIdx = src.i32();
        slot.seq = src.u8();
        if (src.ok())
            slots.push_back(slot);
    }
}

} // namespace

void
XbcDataArray::ckptSave(CkptSink &sink) const
{
    sink.u64(lines_.size());
    for (const BankLine &l : lines_) {
        sink.b(l.valid);
        sink.u64(l.tag);
        sink.u64(l.lru);
        sink.u32(l.conflict);
        saveSlots(sink, l.slots);
    }

    std::vector<uint64_t> tags;
    tags.reserve(directory_.size());
    for (const auto &kv : directory_)
        tags.push_back(kv.first);
    std::sort(tags.begin(), tags.end());
    sink.u64(tags.size());
    for (uint64_t tag : tags) {
        const std::vector<Variant> &variants = directory_.at(tag);
        sink.u64(tag);
        sink.u64(variants.size());
        for (const Variant &v : variants) {
            sink.u64(v.tag);
            sink.u32(v.mask);
            sink.u64(v.lines.size());
            for (const LineUse &lu : v.lines) {
                sink.u8(lu.bank);
                sink.u8(lu.way);
                sink.u16(lu.count);
            }
            saveSlots(sink, v.seq);
        }
    }

    sink.u64(clock_);

    std::vector<uint64_t> uop_ids;
    uop_ids.reserve(residency_.size());
    for (const auto &kv : residency_)
        uop_ids.push_back(kv.first);
    std::sort(uop_ids.begin(), uop_ids.end());
    sink.u64(uop_ids.size());
    for (uint64_t id : uop_ids) {
        sink.u64(id);
        sink.u32(residency_.at(id));
    }
    sink.u64(filledUops_);

    std::vector<int32_t> idxs;
    idxs.reserve(ipOf_.size());
    for (const auto &kv : ipOf_)
        idxs.push_back(kv.first);
    std::sort(idxs.begin(), idxs.end());
    sink.u64(idxs.size());
    for (int32_t idx : idxs) {
        sink.i32(idx);
        sink.u64(ipOf_.at(idx));
    }
}

void
XbcDataArray::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(1);
    src.require(n == lines_.size());
    for (std::size_t i = 0; src.ok() && i < lines_.size(); ++i) {
        BankLine &l = lines_[i];
        l.valid = src.b();
        l.tag = src.u64();
        l.lru = src.u64();
        l.conflict = src.u32();
        loadSlots(src, l.slots);
    }

    directory_.clear();
    uint64_t tags = src.count(16);
    for (uint64_t t = 0; src.ok() && t < tags; ++t) {
        uint64_t tag = src.u64();
        uint64_t num_variants = src.count(1);
        std::vector<Variant> variants;
        variants.reserve(src.ok() ? num_variants : 0);
        for (uint64_t v = 0; src.ok() && v < num_variants; ++v) {
            Variant var;
            var.tag = src.u64();
            var.mask = src.u32();
            uint64_t num_lines = src.count(4);
            var.lines.reserve(src.ok() ? num_lines : 0);
            for (uint64_t lu = 0; src.ok() && lu < num_lines; ++lu) {
                LineUse use;
                use.bank = src.u8();
                use.way = src.u8();
                use.count = src.u16();
                src.require(use.bank < params_.numBanks &&
                            use.way < params_.ways);
                if (src.ok())
                    var.lines.push_back(use);
            }
            loadSlots(src, var.seq);
            if (src.ok())
                variants.push_back(std::move(var));
        }
        if (src.ok())
            directory_[tag] = std::move(variants);
    }

    clock_ = src.u64();

    residency_.clear();
    uint64_t uop_ids = src.count(12);
    for (uint64_t i = 0; src.ok() && i < uop_ids; ++i) {
        uint64_t id = src.u64();
        uint32_t count = src.u32();
        if (src.ok())
            residency_[id] = count;
    }
    filledUops_ = src.u64();

    ipOf_.clear();
    uint64_t idxs = src.count(12);
    for (uint64_t i = 0; src.ok() && i < idxs; ++i) {
        int32_t idx = src.i32();
        uint64_t ip = src.u64();
        if (src.ok())
            ipOf_[idx] = ip;
    }
}

} // namespace xbs
