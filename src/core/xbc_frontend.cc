#include "core/xbc_frontend.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

XbcFrontend::XbcFrontend(const FrontendParams &params,
                         const XbcParams &xbc_params)
    : Frontend("xbcfe", params), xbcParams_(xbc_params),
      preds_(params_), pipe_(params_, metrics_, preds_, &probes_),
      array_(xbcParams_, &root_, &probes_),
      xbtb_(xbcParams_.xbtbEntries, xbcParams_.xbtbWays, &root_),
      xibtb_(xbcParams_.xibtbSets, xbcParams_.xibtbWays, &root_),
      xrsb_(xbcParams_.xrsbDepth),
      fill_(xbcParams_, array_, xbtb_, &root_, &probes_),
      outMux_(xbcParams_, &root_),
      prio_(xbcParams_.numBanks, &root_),
      arrayAcct_(&attrib_, &metrics_.cycles, xbcParams_.numBanks,
                 array_.numSets(),
                 (std::size_t)xbcParams_.numBanks *
                     array_.numSets() * xbcParams_.ways)
{
    pipe_.attachAttrib(&attrib_);
    array_.setEventSink(&arrayAcct_);
}

void
XbcFrontend::linkPrev(const XbPointer &ptr)
{
    if (!ptr.valid)
        return;
    switch (prev_.kind) {
      case PrevLink::Kind::None:
        break;
      case PrevLink::Kind::Taken:
        if (auto *e = xbtb_.find(prev_.xbIp))
            e->taken = ptr;
        break;
      case PrevLink::Kind::Fallthrough:
        if (auto *e = xbtb_.find(prev_.xbIp))
            e->fallthrough = ptr;
        break;
      case PrevLink::Kind::Indirect:
        xibtb_.update(prev_.xbIp, ptr);
        break;
      case PrevLink::Kind::ReturnLink:
        if (prev_.xbIp) {
            if (auto *e = xbtb_.find(prev_.xbIp))
                e->fallthrough = ptr;
        }
        break;
    }
}

void
XbcFrontend::maybePromote(Xbtb::Entry &entry)
{
    if (!xbcParams_.promotionEnabled || entry.promoted)
        return;

    bool promote_taken;
    if (entry.counter >= xbcParams_.promoteHigh)
        promote_taken = true;
    else if (entry.counter <= xbcParams_.promoteLow)
        promote_taken = false;
    else
        return;

    const XbPointer &succ = promote_taken ? entry.taken
                                          : entry.fallthrough;
    if (!succ.valid)
        return;
    auto sacc = array_.findQuiet(succ.xbIp, succ.entryIdx);
    if (!sacc.variant)
        return;
    const auto *xb0 = array_.longestVariant(entry.xbIp);
    if (!xb0)
        return;

    XbSeq combined = xb0->seq;
    combined.insert(combined.end(),
                    sacc.variant->seq.begin() + sacc.entryPos,
                    sacc.variant->seq.end());
    if (combined.size() > xbcParams_.xbQuotaUops)
        return;  // does not fit the quota; stay unpromoted

    uint32_t xb0_mask = xb0->mask;
    XbPointer comb;
    array_.insert(combined, succ.xbIp, 0, &comb);
    if (!comb.valid)
        return;

    entry.promoted = true;
    entry.promotedTaken = promote_taken;
    entry.promotedPtr = comb;
    // XB0's original location becomes eviction fodder (paper 3.8).
    array_.demoteLru(entry.xbIp, xb0_mask);
    ++promotions;
    promoteProbe_.fire((int64_t)combined.size());
}

XbcFrontend::EndResult
XbcFrontend::handleXbEnd(const Trace &trace, std::size_t end_rec)
{
    EndResult r;
    const StaticInst &si = trace.inst(end_rec);
    const bool taken = trace.record(end_rec).taken != 0;
    const int32_t actual_next =
        end_rec + 1 < trace.numRecords()
            ? trace.record(end_rec + 1).staticIdx
            : kNoTarget;

    Xbtb::Entry *e = xbtb_.lookup(si.ip);

    // Root cause a build entry from this resolution would have: a
    // missing/stale XBTB pointer unless a predictor misfired first.
    Cause build_cause = Cause::XbtbMiss;

    auto accept = [&](const XbPointer &cand) {
        if (cand.valid && cand.entryIdx == actual_next) {
            r.next = cand;
        } else if (actual_next != kNoTarget) {
            r.toBuild = true;
        }
    };

    switch (si.cls) {
      case InstClass::CondBranch: {
        ++metrics_.condBranches;
        bool pred = preds_.gshare.predict(si.ip);  // the XBP
        preds_.gshare.update(si.ip, taken);
        if (pred != taken) {
            ++metrics_.condMispredicts;
            r.penalty += params_.mispredictPenalty;
            condMispredProbe_.fire((int64_t)params_.mispredictPenalty);
            attrib_.noteStall(Cause::CondMispredict,
                              params_.mispredictPenalty);
            build_cause = Cause::CondMispredict;
        }
        if (e) {
            e->trainCounter(taken);
            maybePromote(*e);
        }
        prev_.kind = taken ? PrevLink::Kind::Taken
                           : PrevLink::Kind::Fallthrough;
        prev_.xbIp = si.ip;
        accept(e ? (taken ? e->taken : e->fallthrough) : XbPointer{});
        break;
      }
      case InstClass::DirectCall: {
        xrsb_.push(si.ip);
        preds_.rsb.push(si.fallThroughIp());
        prev_.kind = PrevLink::Kind::Taken;
        prev_.xbIp = si.ip;
        accept(e ? e->taken : XbPointer{});
        break;
      }
      case InstClass::IndirectJump:
      case InstClass::IndirectCall: {
        ++metrics_.indirectBranches;
        const XbPointer *pp = xibtb_.predict(si.ip);
        XbPointer cand = pp ? *pp : XbPointer{};
        if (!(cand.valid && cand.entryIdx == actual_next)) {
            ++metrics_.indirectMispredicts;
            r.penalty += params_.mispredictPenalty;
            indirectMispredProbe_.fire(
                (int64_t)params_.mispredictPenalty);
            attrib_.noteStall(Cause::IndirectMispredict,
                              params_.mispredictPenalty);
            build_cause = Cause::IndirectMispredict;
            r.toBuild = true;   // misfetch: target XB unknown
        } else {
            r.next = cand;
        }
        if (si.cls == InstClass::IndirectCall) {
            xrsb_.push(si.ip);
            preds_.rsb.push(si.fallThroughIp());
        }
        prev_.kind = PrevLink::Kind::Indirect;
        prev_.xbIp = si.ip;
        break;
      }
      case InstClass::Return: {
        ++metrics_.returns;
        uint64_t call_ip = xrsb_.pop();
        preds_.rsb.pop();
        Xbtb::Entry *ce = call_ip ? xbtb_.find(call_ip) : nullptr;
        XbPointer cand = ce ? ce->fallthrough : XbPointer{};
        if (!(cand.valid && cand.entryIdx == actual_next)) {
            ++metrics_.returnMispredicts;
            r.penalty += params_.mispredictPenalty;
            returnMispredProbe_.fire(
                (int64_t)params_.mispredictPenalty);
            attrib_.noteStall(Cause::ReturnMispredict,
                              params_.mispredictPenalty);
            build_cause = Cause::ReturnMispredict;
            if (call_ip == 0)
                attrib_.noteRsbUnderflow();
            r.toBuild = true;
        } else {
            r.next = cand;
        }
        prev_.kind = PrevLink::Kind::ReturnLink;
        prev_.xbIp = call_ip;
        break;
      }
      case InstClass::Seq:
      case InstClass::DirectJump: {
        // Quota-ended XB or a PrefixSplit prefix: the successor is
        // unconditional, recorded in the taken slot.
        prev_.kind = PrevLink::Kind::Taken;
        prev_.xbIp = si.ip;
        accept(e ? e->taken : XbPointer{});
        break;
      }
      default:
        xbs_panic("unexpected XB end class");
    }

    if (r.toBuild)
        attrib_.noteDisruption(build_cause);
    if (r.next.valid)
        linkPrev(r.next);  // refresh the pointer we will follow
    return r;
}

unsigned
XbcFrontend::supplySlot(const Trace &trace, std::size_t &rec,
                        unsigned &fetched, unsigned &stall)
{
    const std::size_t num_records = trace.numRecords();

    // Paper section 3.8: when a stale pointer leads to a promoted
    // XB0, redirect into XB_comb (repairing the pointer through
    // XB0's XBTB entry); XB0's original copy keeps serving only
    // until then.
    if (!curIsContinuation_) {
        Xbtb::Entry *pe = xbtb_.find(cur_.xbIp);
        if (pe && pe->promoted && pe->promotedPtr.valid &&
            pe->promotedPtr.xbIp != cur_.xbIp) {
            auto calt = array_.findQuiet(pe->promotedPtr.xbIp,
                                         cur_.entryIdx);
            if (calt.variant) {
                XbPointer repaired;
                repaired.valid = true;
                repaired.xbIp = pe->promotedPtr.xbIp;
                repaired.mask = calt.variant->mask;
                repaired.entryIdx = cur_.entryIdx;
                linkPrev(repaired);
                cur_ = repaired;
            }
        }
    }

    auto acc = array_.lookup(cur_.xbIp, cur_.mask, cur_.entryIdx);
    if (!acc.variant && xbcParams_.setSearchEnabled) {
        acc = array_.setSearch(cur_.xbIp, cur_.entryIdx);
        if (acc.variant) {
            // Found elsewhere in the set: one-cycle penalty, pointer
            // repaired, supply resumes next cycle.
            stall += xbcParams_.setSearchPenalty;
            setSearchPenalties += xbcParams_.setSearchPenalty;
            attrib_.noteStall(Cause::SetSearch,
                              xbcParams_.setSearchPenalty);
            cur_.mask = acc.variant->mask;
            linkPrev(cur_);
            return 0;
        }
    }
    if (!acc.variant) {
        cur_.valid = false;  // XBC miss: switch to build when drained
        attrib_.noteDisruption(arrayAcct_.classifyMiss(cur_.xbIp));
        return 0;
    }

    const XbcDataArray::Variant &v = *acc.variant;
    const std::size_t entry_pos = acc.entryPos;
    attrib_.clearDisruption();
    if (curIsContinuation_) {
        ++xbContinuations;
    } else {
        ++xbSupplies;
        arrayAcct_.onHit(v.tag);
    }

    // Bank-conflict horizon (section 3.6): the priority encoder
    // serves one line per bank per cycle, so the first needed line
    // it would defer cuts the supply short there.
    const uint32_t vset = (uint32_t)array_.setOf(v.tag);
    std::size_t limit = v.seq.size();
    bool conflicted = false;
    std::size_t conflict_line = 0;
    {
        std::size_t pos = 0;
        for (std::size_t i = 0; i < v.lines.size(); ++i) {
            std::size_t line_end = pos + v.lines[i].count;
            if (line_end > entry_pos &&
                !prio_.wouldGrant(v.lines[i].bank, vset,
                                  v.lines[i].way)) {
                limit = std::max(entry_pos, pos);
                conflicted = true;
                conflict_line = i;
                break;
            }
            pos = line_end;
        }
    }

    // Fetch-width horizon (the 16-uop OUT_MUX).
    bool width_limited = false;
    std::size_t width_room = xbcParams_.xbQuotaUops - fetched;
    if (entry_pos + width_room < limit) {
        limit = entry_pos + width_room;
        width_limited = true;
        conflicted = false;
    }

    unsigned supplied = 0;
    std::size_t p = entry_pos;
    bool xb_ended = false;
    bool pending_end = false;   // resolve after v is done with
    bool pending_wrong = false; // promoted wrong-path after v

    while (p < limit && rec < num_records && stall == 0) {
        const TraceRecord &record = trace.record(rec);
        const StaticInst &si = trace.inst(rec);
        if (p + si.numUops > limit)
            break;  // instruction does not fit this cycle's horizon

        // Verify the stored slots against the actual path.
        bool match = true;
        for (unsigned u = 0; u < si.numUops; ++u) {
            if (!(v.seq[p + u] ==
                  UopSlot{record.staticIdx, (uint8_t)u})) {
                match = false;
                break;
            }
        }
        if (!match) {
            // Divergence at an instruction boundary: the previous
            // instruction was an embedded promoted branch that took
            // its infrequent path (or the content is stale).
            if (p == entry_pos && !curIsContinuation_) {
                // Mismatch on the entry instruction itself: the slot
                // content is corrupt/stale (the lookup matched a
                // non-entry occurrence of the index). Treat it like
                // any stale supply: abandon the XB and let the miss
                // path rebuild — a bad hint must never change the
                // delivered stream.
                ++staleSupplies;
                cur_.valid = false;
                attrib_.noteDisruption(Cause::PartialHit);
                xb_ended = true;
                break;
            }
            const StaticInst &br = trace.inst(rec - 1);
            if (br.cls == InstClass::CondBranch) {
                ++promotedWrongPath;
                promotedWrongProbe_.fire(
                    (int64_t)params_.mispredictPenalty);
                stall += params_.mispredictPenalty;
                attrib_.noteStall(Cause::PromotionRecovery,
                                  params_.mispredictPenalty);
                bool br_taken = trace.record(rec - 1).taken != 0;
                Xbtb::Entry *be = xbtb_.find(br.ip);
                prev_.kind = br_taken ? PrevLink::Kind::Taken
                                      : PrevLink::Kind::Fallthrough;
                prev_.xbIp = br.ip;
                XbPointer cand =
                    be ? (br_taken ? be->taken : be->fallthrough)
                       : XbPointer{};
                if (cand.valid && cand.entryIdx == record.staticIdx) {
                    cur_ = cand;
                    curIsContinuation_ = false;
                    linkPrev(cur_);
                } else {
                    cur_.valid = false;
                    attrib_.noteDisruption(Cause::PromotionRecovery);
                }
            } else {
                ++staleSupplies;
                cur_.valid = false;
                attrib_.noteDisruption(Cause::PartialHit);
            }
            xb_ended = true;
            break;
        }

        // Supply the instruction (reporting the *stored* slot to the
        // oracle, so corrupted content that slipped past the match
        // check above would still be caught).
        oracleConsume(rec, v.seq[p].staticIdx, si.numUops);
        supplied += si.numUops;
        fetched += si.numUops;
        p += si.numUops;
        ++rec;

        if (p == v.seq.size()) {
            // The XB's ending instruction: resolution is deferred
            // until the variant reference is no longer needed
            // (handleXbEnd can promote, which mutates the array).
            pending_end = true;
            xb_ended = true;
            break;
        }

        if (si.isControl()) {
            // Embedded control inside the variant.
            if (si.cls == InstClass::CondBranch) {
                Xbtb::Entry *be = xbtb_.find(si.ip);
                if (be && be->promoted) {
                    // Promoted: supplied through, no prediction
                    // consumed; counter keeps gathering statistics.
                    ++promotedSupplied;
                    bool t = trace.record(rec - 1).taken != 0;
                    be->trainCounter(t);
                    bool misbehaving =
                        be->promotedTaken
                            ? be->counter <= xbcParams_.depromoteHigh
                            : be->counter >= xbcParams_.depromoteLow;
                    if (misbehaving) {
                        be->promoted = false;
                        ++depromotions;
                        depromoteProbe_.fire();
                    }
                    // Wrong-path divergence is caught by the match
                    // check on the next instruction.
                } else {
                    // De-promoted (or evicted entry): this branch
                    // ends the effective XB here (deferred as above).
                    pending_end = true;
                    xb_ended = true;
                    break;
                }
            }
            // Embedded DirectJump / Seq: nothing to predict.
        }
    }

    // Claim the granted banks and record their contributions for
    // the OUT_MUX reorder/align plan.
    {
        std::size_t pos = 0;
        for (const auto &lu : v.lines) {
            std::size_t line_end = pos + lu.count;
            std::size_t lo = std::max(pos, entry_pos);
            std::size_t hi = std::min(line_end, p);
            if (hi > lo) {
                bool granted = prio_.claim(lu.bank, vset, lu.way);
                xbs_assert(granted, "claim after wouldGrant");
                cycleMux_.push_back(
                    MuxInput{lu.bank, (uint8_t)(hi - lo)});
            }
            pos = line_end;
        }
    }
    array_.touch(v, entry_pos);
    (void)pending_wrong;

    if (pending_end) {
        // Now that the variant reference is dead, resolve the XB end
        // (this may promote and restructure the data array).
        EndResult er = handleXbEnd(trace, rec - 1);
        stall += er.penalty;
        if (er.next.valid) {
            cur_ = er.next;
            curIsContinuation_ = false;
        } else {
            cur_.valid = false;
        }
        return supplied;
    }

    if (!xb_ended && rec < num_records) {
        // Deferred remainder: continue this XB next cycle, entering
        // at the first unsupplied instruction.
        if (conflicted && p >= limit) {
            ++bankConflictDefers;
            ++attrib_.bankConflictDefers;
            uint32_t all = (uint32_t)mask(xbcParams_.numBanks);
            array_.noteConflict(v, conflict_line,
                                all & ~prio_.busyMask());
        } else if (width_limited && p >= limit) {
            ++widthDefers;
        }
        cur_.entryIdx = trace.record(rec).staticIdx;
        curIsContinuation_ = true;
    }

    return supplied;
}

void
XbcFrontend::handleCompletion(const Trace &trace,
                              const XbcFillUnit::Completion &comp,
                              std::size_t rec, bool can_exit,
                              Mode &mode)
{
    // Chain the previously executed XB to the freshly stored one.
    linkPrev(comp.startPtr);

    const bool taken = trace.record(comp.endRec).taken != 0;
    Xbtb::Entry *e = xbtb_.find(comp.endIp);

    switch (comp.endType) {
      case InstClass::CondBranch:
        if (e) {
            e->trainCounter(taken);
            maybePromote(*e);
        }
        prev_.kind = taken ? PrevLink::Kind::Taken
                           : PrevLink::Kind::Fallthrough;
        prev_.xbIp = comp.endIp;
        break;
      case InstClass::DirectCall:
        xrsb_.push(comp.endIp);
        prev_.kind = PrevLink::Kind::Taken;
        prev_.xbIp = comp.endIp;
        break;
      case InstClass::IndirectCall:
        xrsb_.push(comp.endIp);
        prev_.kind = PrevLink::Kind::Indirect;
        prev_.xbIp = comp.endIp;
        break;
      case InstClass::IndirectJump:
        prev_.kind = PrevLink::Kind::Indirect;
        prev_.xbIp = comp.endIp;
        break;
      case InstClass::Return: {
        uint64_t call_ip = xrsb_.pop();
        prev_.kind = PrevLink::Kind::ReturnLink;
        prev_.xbIp = call_ip;
        break;
      }
      default:  // Seq / DirectJump (quota or prefix XBs)
        prev_.kind = PrevLink::Kind::Taken;
        prev_.xbIp = comp.endIp;
        break;
    }

    // Build-mode exit check: delivery resumes when the successor
    // pointer resolves to a resident XB (XBTB hit + XBC hit).
    if (!can_exit || rec >= trace.numRecords())
        return;
    const int32_t actual_next = trace.record(rec).staticIdx;

    XbPointer cand;
    switch (prev_.kind) {
      case PrevLink::Kind::Taken:
        if (e && comp.endType != InstClass::Return)
            cand = e->taken;
        break;
      case PrevLink::Kind::Fallthrough:
        if (e)
            cand = e->fallthrough;
        break;
      case PrevLink::Kind::Indirect:
        if (const XbPointer *pp = xibtb_.predict(comp.endIp))
            cand = *pp;
        break;
      case PrevLink::Kind::ReturnLink:
        if (prev_.xbIp) {
            if (auto *ce = xbtb_.find(prev_.xbIp))
                cand = ce->fallthrough;
        }
        break;
      default:
        break;
    }

    if (cand.valid && cand.entryIdx == actual_next &&
        array_.findQuiet(cand.xbIp, cand.entryIdx).variant) {
        cur_ = cand;
        curIsContinuation_ = false;
        mode = Mode::Delivery;
        ++buildExits;
    }
}

void
XbcFrontend::buildCycle(const Trace &trace, std::size_t &rec,
                        unsigned &stall, Mode &mode)
{
    ++metrics_.buildCycles;
    attrib_.chargeBuildCycle();
    std::size_t prev_rec = rec;
    ScopedPhase buildTimer(prof_, phBuild_);
    LegacyPipe::Result r = pipe_.cycle(trace, rec);
    metrics_.buildUops += r.uops;
    attrib_.chargeBuildUops(r.uops);
    stall += r.stall;
    for (std::size_t i = prev_rec; i < rec; ++i) {
        oracleConsume(i, kNoTarget, 0);
        auto comp = fill_.feed(trace, i);
        if (comp.completed) {
            handleCompletion(trace, comp, i + 1, i + 1 == rec, mode);
            if (xbcParams_.checkInvariantsEveryN &&
                ++completionsSinceCheck_ >=
                    xbcParams_.checkInvariantsEveryN) {
                completionsSinceCheck_ = 0;
                array_.checkInvariants();
            }
        }
    }
}

void
XbcFrontend::saveState(CheckpointWriter &w) const
{
    Frontend::saveState(w);
    CkptSink sink;
    preds_.ckptSave(sink);
    pipe_.ckptSave(sink);
    array_.ckptSave(sink);
    xbtb_.ckptSave(sink);
    xibtb_.ckptSave(sink);
    xrsb_.ckptSave(sink);
    fill_.ckptSave(sink);
    arrayAcct_.ckptSave(sink);
    ckptSaveXbPointer(sink, cur_);
    sink.b(curIsContinuation_);
    sink.u8((uint8_t)prev_.kind);
    sink.u64(prev_.xbIp);
    sink.u32(completionsSinceCheck_);
    w.addSection("xbc", sink.take());
}

Status
XbcFrontend::restoreState(const CheckpointFile &f)
{
    Status st = Frontend::restoreState(f);
    if (!st.isOk())
        return st;
    const std::string *sec = f.section("xbc");
    if (!sec) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks an 'xbc' section");
    }
    CkptSource src(*sec);
    preds_.ckptLoad(src);
    pipe_.ckptLoad(src);
    array_.ckptLoad(src);
    xbtb_.ckptLoad(src);
    xibtb_.ckptLoad(src);
    xrsb_.ckptLoad(src);
    fill_.ckptLoad(src);
    arrayAcct_.ckptLoad(src);
    cur_ = ckptLoadXbPointer(src);
    curIsContinuation_ = src.b();
    uint8_t kind = src.u8();
    src.require(kind <= (uint8_t)PrevLink::Kind::ReturnLink);
    prev_.kind = (PrevLink::Kind)kind;
    prev_.xbIp = src.u64();
    completionsSinceCheck_ = src.u32();
    if (!src.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint 'xbc' section");
    }
    return Status::ok();
}

void
XbcFrontend::run(const Trace &trace)
{
    array_.bindCode(&trace.code());

    const std::size_t num_records = trace.numRecords();
    std::size_t rec = 0;
    Mode mode = Mode::Build;
    unsigned buffer = 0;
    unsigned stall = 0;
    if (auto resume = takeResume()) {
        rec = (std::size_t)resume->rec;
        mode = resume->mode ? Mode::Delivery : Mode::Build;
        buffer = resume->buffer;
        stall = resume->stall;
    } else {
        cur_ = XbPointer{};
        curIsContinuation_ = false;
        prev_ = PrevLink{};
        fill_.restart();
        attrib_.enterBuild(Cause::ColdStart);
    }

    while ((rec < num_records || buffer > 0) && !stopRequested()) {
        maybeCheckpoint(rec, mode == Mode::Delivery ? 1 : 0, buffer,
                        stall);
        ++metrics_.cycles;
        metrics_.traceRecords.set(rec);
        observeCycle();
        traceMode(mode == Mode::Build ? "build" : "delivery");

        if (stall > 0) {
            // Fetch-silent bubble; the buffer keeps draining, but
            // neither the uops nor the cycle count toward the
            // steady-state bandwidth metric.
            --stall;
            ++metrics_.stallCycles;
            attrib_.chargeSilentCycle();
            buffer -= std::min(buffer, params_.renamerWidth);
            continue;
        }

        if (mode == Mode::Build) {
            buildCycle(trace, rec, stall, mode);
            continue;
        }

        // Delivery cycle.
        ++metrics_.deliveryCycles;

        // The exit check in handleCompletion switched us here with a
        // valid cur_; if cur_ has gone invalid (XBC/XBTB miss), wait
        // for the buffer to drain, then fall back to build mode.
        if (!cur_.valid && buffer == 0 && rec < num_records) {
            --metrics_.deliveryCycles;
            ++metrics_.modeSwitches;
            fill_.restart();
            // The real cause was noted at the invalidating event;
            // Unattributed only backstops an unnoted invalidation.
            attrib_.enterBuild(Cause::Unattributed);
            mode = Mode::Build;
            buildCycle(trace, rec, stall, mode);
            continue;
        }

        unsigned fetched = 0;
        cycleMux_.clear();
        prio_.reset();
        {
            ScopedPhase arrayTimer(prof_, phArray_);
            for (unsigned slot = 0;
                 slot < xbcParams_.fetchXbsPerCycle &&
                 rec < num_records;
                 ++slot) {
                if (!cur_.valid || stall > 0)
                    break;
                if (buffer >= params_.renamerWidth)
                    break;
                if (fetched >= xbcParams_.xbQuotaUops)
                    break;
                unsigned got = supplySlot(trace, rec, fetched, stall);
                metrics_.deliveryUops += got;
                buffer += got;
                if (got == 0)
                    break;
            }
        }

        if (!cycleMux_.empty())
            outMux_.plan(cycleMux_);

        {
            unsigned drained = std::min(buffer, params_.renamerWidth);
            metrics_.renamedUops += drained;
            buffer -= drained;
        }
    }
    metrics_.traceRecords.set(rec);
    traceModeDone();
}

} // namespace xbs
