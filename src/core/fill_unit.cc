#include "core/fill_unit.hh"

#include "ckpt/serial.hh"
#include "common/logging.hh"

namespace xbs
{

XbcFillUnit::XbcFillUnit(const XbcParams &params, XbcDataArray &array,
                         Xbtb &xbtb, StatGroup *parent,
                         ProbeManager *probes)
    : StatGroup("xfu", parent), params_(params), array_(array),
      xbtb_(xbtb),
      allocProbe_(probes, "xfu", "alloc"),
      containProbe_(probes, "xfu", "containedHit"),
      extendProbe_(probes, "xfu", "extend"),
      complexProbe_(probes, "xfu", "complexShare"),
      independentProbe_(probes, "xfu", "independentCopy"),
      quotaProbe_(probes, "xfu", "quotaEnd"),
      prefixSplitProbe_(probes, "xfu", "prefixSplit")
{
}

void
XbcFillUnit::fireStore(XbcDataArray::InsertOutcome oc,
                       std::size_t uops)
{
    switch (oc) {
      case XbcDataArray::InsertOutcome::Allocated:
        allocProbe_.fire((int64_t)uops);
        break;
      case XbcDataArray::InsertOutcome::AlreadyPresent:
        containProbe_.fire((int64_t)uops);
        break;
      case XbcDataArray::InsertOutcome::Extended:
        extendProbe_.fire((int64_t)uops);
        break;
      case XbcDataArray::InsertOutcome::ComplexAdded:
        complexProbe_.fire((int64_t)uops);
        break;
      case XbcDataArray::InsertOutcome::IndependentAdded:
        independentProbe_.fire((int64_t)uops);
        break;
      case XbcDataArray::InsertOutcome::PrefixNeeded:
        break;  // resolved recursively; the final outcome fires
    }
}

void
XbcFillUnit::restart()
{
    seq_.clear();
    lastIdx_ = kNoTarget;
}

XbPointer
XbcFillUnit::store(const Trace &trace, const XbSeq &seq,
                   uint64_t end_ip, InstClass end_type,
                   XbcDataArray::InsertOutcome *outcome)
{
    const StaticCode &code = trace.code();
    XbPointer ptr;
    unsigned common = 0;
    uint32_t avoid = params_.smartBuildPlacement ? prevMask_ : 0;
    auto oc = array_.insert(seq, end_ip, avoid, &ptr, &common);
    if (ptr.valid)
        prevMask_ = ptr.mask;
    if (outcome)
        *outcome = oc;

    // Always record/refresh the XBTB entry of the completed XB.
    xbtb_.allocate(end_ip, end_type);

    if (oc != XbcDataArray::InsertOutcome::PrefixNeeded) {
        fireStore(oc, seq.size());
        return ptr;
    }

    // PrefixSplit mode: round the shared suffix down to an
    // instruction boundary and store the differing prefix as an
    // independent XB whose XBTB entry chains into the suffix.
    std::size_t pos = seq.size() - common;
    while (pos < seq.size() && seq[pos].seq != 0)
        ++pos;
    if (pos == 0 || pos >= seq.size()) {
        // No usable boundary; fall back to an independent copy.
        oc = array_.insert(seq, end_ip, avoid, &ptr, nullptr,
                           /*allow_match=*/false);
        if (ptr.valid)
            prevMask_ = ptr.mask;
        if (outcome)
            *outcome = oc;
        fireStore(oc, seq.size());
        return ptr;
    }

    XbSeq prefix(seq.begin(), seq.begin() + pos);
    int32_t prefix_end_idx = prefix.back().staticIdx;
    const StaticInst &pend = code.inst(prefix_end_idx);
    // The prefix ends on an unconditional instruction (a direct jump
    // or a plain fall-through into the shared suffix).
    XbcDataArray::InsertOutcome poc;
    XbPointer pptr = store(trace, prefix, pend.ip, pend.cls, &poc);
    ++prefixSplits;
    prefixSplitProbe_.fire((int64_t)prefix.size());

    // Chain prefix -> suffix through the XBTB.
    int32_t suffix_entry = seq[pos].staticIdx;
    auto sacc = array_.findQuiet(end_ip, suffix_entry);
    Xbtb::Entry *pe = xbtb_.find(pend.ip);
    if (pe && sacc.variant) {
        pe->taken.valid = true;
        pe->taken.xbIp = end_ip;
        pe->taken.mask = sacc.variant->mask;
        pe->taken.entryIdx = suffix_entry;
    }
    return pptr;
}

XbcFillUnit::Completion
XbcFillUnit::feed(const Trace &trace, std::size_t rec)
{
    Completion comp;
    const StaticCode &code = trace.code();
    const StaticInst &si = trace.inst(rec);
    const int32_t idx = trace.record(rec).staticIdx;

    // Quota: an instruction that does not fit completes the pending
    // XB first (ending on the previous instruction).
    if (!seq_.empty() &&
        seq_.size() + si.numUops > params_.xbQuotaUops) {
        const StaticInst &prev = code.inst(lastIdx_);
        comp.completed = true;
        comp.endIp = prev.ip;
        comp.endType = InstClass::Seq;  // unconditional successor
        comp.endRec = rec - 1;
        comp.startPtr = store(trace, seq_, prev.ip, InstClass::Seq,
                              &comp.outcome);
        ++xbsBuilt;
        ++quotaEnded;
        quotaProbe_.fire((int64_t)seq_.size());
        seq_.clear();
        appendInstUops(code, idx, seq_);
        lastIdx_ = idx;
        return comp;
    }

    appendInstUops(code, idx, seq_);
    lastIdx_ = idx;

    if (si.endsXb()) {
        comp.completed = true;
        comp.endIp = si.ip;
        comp.endType = si.cls;
        comp.endRec = rec;
        comp.startPtr = store(trace, seq_, si.ip, si.cls,
                              &comp.outcome);
        ++xbsBuilt;
        seq_.clear();
        lastIdx_ = kNoTarget;
    }
    return comp;
}

void
XbcFillUnit::ckptSave(CkptSink &sink) const
{
    sink.u64(seq_.size());
    for (const UopSlot &slot : seq_) {
        sink.i32(slot.staticIdx);
        sink.u8(slot.seq);
    }
    sink.i32(lastIdx_);
    sink.u32(prevMask_);
}

void
XbcFillUnit::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(5);
    seq_.clear();
    seq_.reserve(src.ok() ? n : 0);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        UopSlot slot;
        slot.staticIdx = src.i32();
        slot.seq = src.u8();
        if (src.ok())
            seq_.push_back(slot);
    }
    lastIdx_ = src.i32();
    prevMask_ = src.u32();
}

} // namespace xbs
