/**
 * @file
 * The XBC data/tag arrays (paper sections 3.2-3.4, 3.9, 3.10).
 *
 * Physical model: numBanks banks, each a (numSets x ways) array of
 * bank lines holding up to bankUops uop slots. An XB spreads over up
 * to numBanks lines of one set, all tagged with the XB's ending IP.
 *
 * A *variant* is one readable XB image: an ordered list of bank lines
 * plus, per line, how many of its trailing (in logical order) uops
 * belong to this variant. Because the hardware stores uops in
 * reverse order (section 3.4), the shared portion of a line is always
 * a contiguous suffix of the logical sequence, so:
 *  - extending an XB at its head never relocates stored uops and
 *    never disturbs variants sharing the line (the tail counts stay
 *    anchored), and
 *  - complex XBs (section 3.3) share suffix lines - including a
 *    partially shared boundary line - between prefixes.
 *
 * The directory of variants is the model-level equivalent of the
 * hardware's bank masks + order fields; the XBTB stores (tag, mask,
 * offset) pointers, and a stale pointer is repaired by set search
 * (section 3.9) exactly as in the paper.
 */

#ifndef XBS_CORE_DATA_ARRAY_HH
#define XBS_CORE_DATA_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "attrib/array_sink.hh"
#include "common/probe.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "core/params.hh"
#include "core/xb.hh"
#include "frontend/oracle.hh"
#include "isa/static_inst.hh"

namespace xbs
{

class CkptSink;
class CkptSource;

class XbcDataArray : public StatGroup
{
  public:
    /**
     * @param probes probe registry of the owning frontend for the
     *        "array" track (nullptr: probes permanently disabled)
     */
    XbcDataArray(const XbcParams &params, StatGroup *parent,
                 ProbeManager *probes = nullptr);

    /** Reference to one physical bank line. */
    struct LineUse
    {
        uint8_t bank = 0;
        uint8_t way = 0;
        /** How many trailing (logical-order) uops of the line belong
         *  to this variant. */
        uint16_t count = 0;
    };

    /** One readable XB image. */
    struct Variant
    {
        uint64_t tag = 0;         ///< ending-instruction IP
        uint32_t mask = 0;        ///< banks used (derived from lines)
        std::vector<LineUse> lines;  ///< head line first
        XbSeq seq;                ///< cached logical uop sequence
    };

    enum class InsertOutcome
    {
        Allocated,       ///< no same-tag XB existed; stored fresh
        AlreadyPresent,  ///< case 1: existing XB contains the new one
        Extended,        ///< case 2: existing XB grew at its head
        ComplexAdded,    ///< case 3: new prefix sharing the suffix
        IndependentAdded,///< case 3 fallback: stored without sharing
        PrefixNeeded     ///< PrefixSplit mode: caller must store the
                         ///< differing prefix as its own XB
    };

    /**
     * The XFU store operation (section 3.3).
     *
     * @param seq       the new XB's uops (logical order)
     * @param end_ip    IP of the ending instruction (tag)
     * @param prev_mask banks of the previously placed XB, for smart
     *                  build placement (0 = no preference)
     * @param out       filled with a pointer to the stored XB,
     *                  entering at seq's first instruction
     */
    InsertOutcome insert(const XbSeq &seq, uint64_t end_ip,
                         uint32_t prev_mask, XbPointer *out,
                         unsigned *common_out = nullptr,
                         bool allow_match = true);

    /** Result of a delivery lookup or set search. */
    struct Access
    {
        const Variant *variant = nullptr;
        std::size_t entryPos = 0;  ///< index into variant->seq
    };

    /**
     * Delivery lookup by XBTB pointer: variant selected by
     * (tag, mask) with the entry instruction present at an
     * instruction boundary. A failed lookup is an XBC miss; try
     * setSearch next.
     */
    Access lookup(uint64_t tag, uint32_t mask, int32_t entry_idx);

    /**
     * Set search (section 3.9): find any resident variant of @p tag
     * whose sequence contains instruction @p entry_idx at an
     * instruction boundary. Costs a penalty cycle at the caller.
     */
    Access setSearch(uint64_t tag, int32_t entry_idx);

    /** setSearch without statistics (XFU-internal linking). */
    Access findQuiet(uint64_t tag, int32_t entry_idx);

    /** The longest resident variant of @p tag (the "full" XB image),
     *  or nullptr; used by branch promotion to read XB0's uops. */
    const Variant *longestVariant(uint64_t tag) const;

    /**
     * LRU touch for a supplied variant: lines from the entry onward
     * are marked accessed in order, head first, so a head line always
     * ends up least-recently-used among the XB's lines (the
     * section 3.10 eviction-order rule).
     *
     * @param entry_pos index into variant.seq where supply entered
     */
    void touch(const Variant &variant, std::size_t entry_pos);

    /**
     * Record a bank-conflict deferral of line @p line_pos of
     * @p variant while banks in @p free_banks_mask went unused
     * (section 3.10 dynamic placement); relocates the line once the
     * conflict counter crosses the threshold.
     *
     * @return true if a relocation happened
     */
    bool noteConflict(const Variant &variant, std::size_t line_pos,
                      uint32_t free_banks_mask);

    /** Push an XB's lines to the bottom of the LRU order (used on
     *  promotion for XB0's original location). */
    void demoteLru(uint64_t tag, uint32_t mask);

    /// @{ Occupancy metrics.
    double redundancy() const;
    double fillFactor() const;
    uint64_t uniqueUopsResident() const { return residency_.size(); }
    /// @}

    unsigned numSets() const { return numSets_; }
    std::size_t setOf(uint64_t tag) const;

    /** Attach (or detach, with nullptr) a structural-event observer
     *  (src/attrib's ArrayAccounting): allocation, eviction, and
     *  bank-conflict events with their (bank, set) coordinates. */
    void setEventSink(ArrayEventSink *sink) { sink_ = sink; }

    /**
     * Non-aborting structural audit: walks every variant and line,
     * checking the paper's invariants — single exit, the 16-uop
     * quota, reverse-order banking (the concatenated trailing line
     * slots must reproduce the variant's sequence), the head-first
     * LRU aging rule, complex-XB suffix sharing consistency, variant
     * uniqueness, and the residency/redundancy accounting against
     * the physical contents. Each violation is reported via @p sink;
     * the walk always completes.
     */
    void auditStorage(
        const std::function<void(AuditViolation)> &sink) const;

    /** Internal invariant check for tests; panics on violation
     *  (auditStorage() is the collecting form). */
    void checkInvariants() const;

    /// @{ Fault-injection interface (src/verify): deliberate,
    ///    bookkept state damage. The frontend must degrade
    ///    gracefully — the delivery oracle stays clean — because
    ///    array contents are only performance hints.
    /** Flat line count, for picking injection victims. */
    std::size_t lineCount() const { return lines_.size(); }

    /** Invalidate flat line @p idx exactly like an eviction
     *  (accounting and dependent variants updated).
     *  @return true if the line was valid. */
    bool faultInvalidateLine(std::size_t idx);

    /**
     * Corrupt one resident uop slot, modeling a data-array bit flip:
     * the stored static index of a random slot is changed
     * consistently (line, every variant sequence covering the slot,
     * and the residency accounting), so the structural books still
     * balance while the *content* no longer matches the program.
     * @return true if a victim slot was found.
     */
    bool faultCorruptSlot(Rng &rng);
    /// @}

    /// @{ Test-only tamper helpers for the oracle-of-the-oracle
    ///    tests: plant structural bugs WITHOUT fixing the books, so
    ///    auditStorage() must flag them. Each returns true if state
    ///    suitable for the plant was found.
    bool tamperDuplicateVariant();  ///< duplicate XB in the directory
    bool tamperSwapVariantLines();  ///< out-of-order bank lines
    bool tamperStaleHeadLru();      ///< head line newer than primary
    /// @}

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt): bank lines, variant
    ///    directory, residency/redundancy accounting. The code image
    ///    is not serialized; bindCode() re-binds it on restore.
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat inserts{this, "inserts", "XBs handed to the array"};
    ScalarStat allocs{this, "allocs", "fresh XB allocations"};
    ScalarStat containedHits{this, "containedHits",
        "case-1 stores (existing XB contained the new one)"};
    ScalarStat extensions{this, "extensions",
        "case-2 stores (XB extended at its head)"};
    ScalarStat complexAdds{this, "complexAdds",
        "case-3 stores (complex XB prefix added)"};
    ScalarStat independentAdds{this, "independentAdds",
        "case-3 fallbacks stored without sharing"};
    ScalarStat evictions{this, "evictions", "bank lines evicted"};
    ScalarStat variantDrops{this, "variantDrops",
        "variants invalidated by line eviction"};
    ScalarStat setSearches{this, "setSearches",
        "set searches performed"};
    ScalarStat setSearchHits{this, "setSearchHits",
        "set searches that found the XB"};
    ScalarStat relocations{this, "relocations",
        "dynamic-placement line moves"};

  private:
    struct BankLine
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
        uint32_t conflict = 0;
        std::vector<UopSlot> slots;  ///< logical order, earliest first
    };

    BankLine &line(unsigned bank, std::size_t set, unsigned way);
    const BankLine &line(unsigned bank, std::size_t set,
                         unsigned way) const;
    BankLine &line(const LineUse &lu, std::size_t set);

    /** Remove variants of @p tag that reference (bank, way). Called
     *  exactly once per line eviction, so it also fires the event
     *  sink's onEvict with head/last-variant classification. */
    void dropVariantsUsing(uint64_t tag, std::size_t set,
                           unsigned bank, unsigned way);

    /**
     * Allocate (evicting if needed) a line in @p set for @p tag.
     *
     * @param used_banks banks this variant already occupies
     * @param avoid_mask banks to avoid if possible (smart placement)
     * @return the line position, or nullopt if every bank is used
     */
    std::optional<LineUse> allocLine(uint64_t tag, std::size_t set,
                                     uint32_t used_banks,
                                     uint32_t avoid_mask);

    /** Split the first @p uops of @p seq into head-partial chunks and
     *  allocate lines for them; returns the lines (head first) or
     *  nullopt on bank exhaustion. */
    std::optional<std::vector<LineUse>>
    placeChunks(const XbSeq &seq, std::size_t uops, uint64_t tag,
                std::size_t set, uint32_t used_banks,
                uint32_t avoid_mask);

    void accountSlots(const std::vector<UopSlot> &slots, int delta);
    void rebuildMask(Variant &v);

    /** Re-stamp a variant's lines head-to-primary with fresh LRU
     *  values, restoring the head-first aging order after an
     *  extension or complex store re-shapes the variant. */
    void refreshLru(Variant &v);

    XbcParams params_;
    unsigned numSets_;
    std::vector<BankLine> lines_;   ///< [bank][set][way]
    std::unordered_map<uint64_t, std::vector<Variant>> directory_;
    uint64_t clock_ = 0;

    std::unordered_map<UopId, uint32_t> residency_;
    uint64_t filledUops_ = 0;

    /** IP of the ending instruction of each resident uop's parent,
     *  needed to translate slots to UopIds. Provided at insert time
     *  via the sequences themselves; we keep ip per staticIdx. */
    std::unordered_map<int32_t, uint64_t> ipOf_;

  public:
    /** Register the code image so slots can be translated to uop ids
     *  for redundancy accounting. Must be called before first use. */
    void bindCode(const StaticCode *code) { code_ = code; }

  private:
    const StaticCode *code_ = nullptr;

    /// @{ "array" track: line evictions (value = slots lost),
    ///    dynamic-placement relocations (value = destination bank),
    ///    conflict-counter bumps (value = deferred line position) and
    ///    an occupancy counter sampled whenever resident uops change.
    ProbePoint evictProbe_;
    ProbePoint relocProbe_;
    ProbePoint conflictProbe_;
    ProbePoint occupancyProbe_;
    /// @}

    ArrayEventSink *sink_ = nullptr;
};

} // namespace xbs

#endif // XBS_CORE_DATA_ARRAY_HH
