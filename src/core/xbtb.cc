#include "core/xbtb.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

void
ckptSaveXbPointer(CkptSink &sink, const XbPointer &ptr)
{
    sink.b(ptr.valid);
    sink.u64(ptr.xbIp);
    sink.u32(ptr.mask);
    sink.i32(ptr.entryIdx);
}

XbPointer
ckptLoadXbPointer(CkptSource &src)
{
    XbPointer ptr;
    ptr.valid = src.b();
    ptr.xbIp = src.u64();
    ptr.mask = src.u32();
    ptr.entryIdx = src.i32();
    return ptr;
}

Xbtb::Xbtb(unsigned entries, unsigned ways, StatGroup *parent)
    : StatGroup("xbtb", parent), ways_(ways)
{
    xbs_assert(ways >= 1 && entries >= ways, "bad XBTB geometry");
    numSets_ = 1u << floorLog2(entries / ways);
    entries_.resize((std::size_t)numSets_ * ways_);
}

std::size_t
Xbtb::setOf(uint64_t xb_ip) const
{
    return (std::size_t)foldedIndex(xb_ip, numSets_, 0);
}

Xbtb::Entry *
Xbtb::lookup(uint64_t xb_ip)
{
    ++lookups;
    Entry *e = find(xb_ip);
    if (e) {
        ++hits;
        e->lru = ++clock_;
    }
    return e;
}

Xbtb::Entry *
Xbtb::find(uint64_t xb_ip)
{
    std::size_t base = setOf(xb_ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.xbIp == xb_ip)
            return &e;
    }
    return nullptr;
}

Xbtb::Entry &
Xbtb::allocate(uint64_t xb_ip, InstClass end_type)
{
    if (Entry *e = find(xb_ip)) {
        e->endType = end_type;
        e->lru = ++clock_;
        return *e;
    }
    std::size_t base = setOf(xb_ip) * ways_;
    Entry *victim = &entries_[base];
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    if (victim->valid)
        ++entryEvictions;
    *victim = Entry{};
    victim->valid = true;
    victim->xbIp = xb_ip;
    victim->endType = end_type;
    victim->lru = ++clock_;
    ++allocations;
    return *victim;
}

void
Xbtb::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    clock_ = 0;
    resetStats();
}

XiBtb::XiBtb(unsigned sets, unsigned ways, StatGroup *parent)
    : StatGroup("xibtb", parent), ways_(ways)
{
    xbs_assert(ways >= 1 && sets >= 1, "bad XiBTB geometry");
    numSets_ = 1u << floorLog2(sets);
    slots_.resize((std::size_t)numSets_ * ways_);
}

std::size_t
XiBtb::setOf(uint64_t ip) const
{
    return (std::size_t)foldedIndex(ip, numSets_, 0);
}

const XbPointer *
XiBtb::predict(uint64_t xb_ip)
{
    ++lookups;
    std::size_t base = setOf(xb_ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Slot &s = slots_[base + w];
        if (s.valid && s.tag == xb_ip) {
            s.lru = ++clock_;
            ++hits;
            return &s.ptr;
        }
    }
    return nullptr;
}

void
XiBtb::update(uint64_t xb_ip, const XbPointer &ptr)
{
    std::size_t base = setOf(xb_ip) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Slot &s = slots_[base + w];
        if (s.valid && s.tag == xb_ip) {
            s.ptr = ptr;
            s.lru = ++clock_;
            return;
        }
    }
    Slot *victim = &slots_[base];
    for (unsigned w = 0; w < ways_; ++w) {
        Slot &s = slots_[base + w];
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    victim->valid = true;
    victim->tag = xb_ip;
    victim->ptr = ptr;
    victim->lru = ++clock_;
}

void
XiBtb::reset()
{
    for (auto &s : slots_)
        s = Slot{};
    clock_ = 0;
    resetStats();
}

Xrsb::Xrsb(unsigned depth)
    : stack_(depth, 0)
{
    xbs_assert(depth >= 1, "XRSB needs depth");
}

void
Xrsb::push(uint64_t call_xb_ip)
{
    topIdx_ = (topIdx_ + 1) % stack_.size();
    stack_[topIdx_] = call_xb_ip;
    if (size_ < stack_.size())
        ++size_;
}

uint64_t
Xrsb::pop()
{
    if (size_ == 0)
        return 0;
    uint64_t v = stack_[topIdx_];
    topIdx_ = (topIdx_ + stack_.size() - 1) % stack_.size();
    --size_;
    return v;
}

void
Xrsb::reset()
{
    topIdx_ = 0;
    size_ = 0;
}

void
Xbtb::ckptSave(CkptSink &sink) const
{
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.b(e.valid);
        sink.u64(e.xbIp);
        sink.u64(e.lru);
        sink.u8((uint8_t)e.endType);
        ckptSaveXbPointer(sink, e.taken);
        ckptSaveXbPointer(sink, e.fallthrough);
        sink.u8(e.counter);
        sink.b(e.promoted);
        sink.b(e.promotedTaken);
        ckptSaveXbPointer(sink, e.promotedPtr);
    }
    sink.u64(clock_);
}

void
Xbtb::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(1);
    src.require(n == entries_.size());
    for (std::size_t i = 0; src.ok() && i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        e.valid = src.b();
        e.xbIp = src.u64();
        e.lru = src.u64();
        uint8_t end_type = src.u8();
        src.require(end_type < (uint8_t)InstClass::NumClasses);
        e.endType = (InstClass)end_type;
        e.taken = ckptLoadXbPointer(src);
        e.fallthrough = ckptLoadXbPointer(src);
        e.counter = src.u8();
        e.promoted = src.b();
        e.promotedTaken = src.b();
        e.promotedPtr = ckptLoadXbPointer(src);
    }
    clock_ = src.u64();
}

void
XiBtb::ckptSave(CkptSink &sink) const
{
    sink.u64(slots_.size());
    for (const Slot &s : slots_) {
        sink.b(s.valid);
        sink.u64(s.tag);
        sink.u64(s.lru);
        ckptSaveXbPointer(sink, s.ptr);
    }
    sink.u64(clock_);
}

void
XiBtb::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(1);
    src.require(n == slots_.size());
    for (std::size_t i = 0; src.ok() && i < slots_.size(); ++i) {
        Slot &s = slots_[i];
        s.valid = src.b();
        s.tag = src.u64();
        s.lru = src.u64();
        s.ptr = ckptLoadXbPointer(src);
    }
    clock_ = src.u64();
}

void
Xrsb::ckptSave(CkptSink &sink) const
{
    sink.u64(stack_.size());
    for (uint64_t v : stack_)
        sink.u64(v);
    sink.u32(topIdx_);
    sink.u32(size_);
}

void
Xrsb::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(8);
    src.require(n == stack_.size());
    for (std::size_t i = 0; src.ok() && i < stack_.size(); ++i)
        stack_[i] = src.u64();
    topIdx_ = src.u32();
    size_ = src.u32();
    src.require(topIdx_ < stack_.size() && size_ <= stack_.size());
}

} // namespace xbs
