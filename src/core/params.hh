/**
 * @file
 * XBC configuration (paper sections 3.2 and 4).
 *
 * Default geometry: 32K uops organized as 4 banks x 2 ways per bank
 * x 1024 sets x 4 uops per bank line; a 16-uop XB quota (= the fetch
 * width); an 8K-entry XBTB; 2 XB pointers provided per cycle.
 */

#ifndef XBS_CORE_PARAMS_HH
#define XBS_CORE_PARAMS_HH

namespace xbs
{

struct XbcParams
{
    /** Total data-array capacity in uops. */
    unsigned capacityUops = 32768;

    /** Banks per set (each with its own decoder). */
    unsigned numBanks = 4;

    /** Uops per bank line. */
    unsigned bankUops = 4;

    /** Per-bank associativity (paper recommends 2). */
    unsigned ways = 2;

    /** Maximum XB length in uops (also the per-cycle fetch width). */
    unsigned xbQuotaUops = 16;

    /// @{ XBTB geometry (total entries = sets * ways).
    unsigned xbtbEntries = 8192;
    unsigned xbtbWays = 4;
    /// @}

    /// @{ XiBTB (indirect next-XB predictor) geometry.
    unsigned xibtbSets = 512;
    unsigned xibtbWays = 4;
    /// @}

    /** XRSB (return stack) depth. */
    unsigned xrsbDepth = 32;

    /** XB pointers supplied by the XBTB per cycle (paper: 2). */
    unsigned fetchXbsPerCycle = 2;

    /// @{ Branch promotion (section 3.8).
    bool promotionEnabled = true;
    /** Promote when the 7-bit counter is <= low or >= high
     *  (127 - 1 => at least 99.2% biased). */
    unsigned promoteLow = 1;
    unsigned promoteHigh = 126;
    /** De-promote when the counter retreats past these marks. */
    unsigned depromoteLow = 8;
    unsigned depromoteHigh = 119;
    /// @}

    /**
     * How a same-suffix/different-prefix XB (build case 3) is
     * stored. The paper's two redundancy-free solutions plus a naive
     * duplicating baseline for ablation:
     *  - Complex:     one complex XB, prefixes sharing the suffix;
     *  - PrefixSplit: the prefix becomes an independent XB chained
     *                 through the XBTB (shorter blocks);
     *  - Duplicate:   store the new XB as an independent copy
     *                 (reintroduces TC-style redundancy).
     */
    enum class ComplexMode { Complex, PrefixSplit, Duplicate };
    ComplexMode complexMode = ComplexMode::Complex;

    /** Set search on XBTB hit / XBC tag miss (section 3.9). */
    bool setSearchEnabled = true;
    unsigned setSearchPenalty = 1;

    /** Conflict-aware build-mode placement (section 3.10). */
    bool smartBuildPlacement = true;

    /** Delivery-mode dynamic re-placement (section 3.10). */
    bool dynamicPlacement = true;
    unsigned dynamicPlacementThreshold = 16;

    /**
     * Debug aid: run the data array's full invariant check every N
     * XFU completions (0 = never). Used by stress tests; expensive.
     */
    unsigned checkInvariantsEveryN = 0;
};

} // namespace xbs

#endif // XBS_CORE_PARAMS_HH
