/**
 * @file
 * The priority encoder of the XBC access path (paper section 3.6).
 *
 * Each bank has a single decoder, so in one cycle a bank can serve
 * exactly one (set, way) line. The priority encoder receives the
 * XBTB's pointers in order, grants each XB's lines bank by bank, and
 * defers anything that would need an already-claimed bank - that is
 * the bank-conflict mechanism behind the paper's example where XB2's
 * prefix in bank2 is fetched while its suffix in bank3 loses to XB1.
 *
 * One refinement the physical design gets for free: if two requests
 * name the *same* line (same bank, set, and way - e.g. two complex-XB
 * siblings sharing a suffix line), a single read serves both, so the
 * second request is granted rather than deferred.
 */

#ifndef XBS_CORE_PRIORITY_ENCODER_HH
#define XBS_CORE_PRIORITY_ENCODER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace xbs
{

class PriorityEncoder : public StatGroup
{
  public:
    PriorityEncoder(unsigned num_banks, StatGroup *parent);

    /** Start a new cycle: all banks free. */
    void reset();

    /** Would a read of line (bank, set, way) be served this cycle? */
    bool wouldGrant(unsigned bank, uint32_t set, uint8_t way) const;

    /**
     * Claim line (bank, set, way) for this cycle.
     * @return true if granted (also when it aliases an existing
     *         grant of the very same line)
     */
    bool claim(unsigned bank, uint32_t set, uint8_t way);

    /** Banks with a grant this cycle. */
    uint32_t busyMask() const;

    ScalarStat grants{this, "grants", "bank reads granted"};
    ScalarStat shared{this, "shared",
        "requests served by an already-granted identical read"};
    ScalarStat conflicts{this, "conflicts",
        "requests deferred on a busy bank"};

  private:
    struct Grant
    {
        bool busy = false;
        uint32_t set = 0;
        uint8_t way = 0;
    };

    std::vector<Grant> grants_;
};

} // namespace xbs

#endif // XBS_CORE_PRIORITY_ENCODER_HH
