/**
 * @file
 * Block cache for the block-based trace cache (paper section 2.4,
 * after [Blac99]): decoded basic blocks stored exactly once, indexed
 * by the block's starting IP. The BBTC's traces are sequences of
 * *pointers* into this cache, which moves the TC's redundancy from
 * uops to pointers at the cost of extra fragmentation (fixed-size
 * block frames).
 */

#ifndef XBS_BBTC_BLOCK_CACHE_HH
#define XBS_BBTC_BLOCK_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "frontend/oracle.hh"
#include "isa/static_inst.hh"

namespace xbs
{

class CkptSink;
class CkptSource;

struct BlockCacheParams
{
    /** Total capacity in uop slots. */
    unsigned capacityUops = 32768;

    /** Uop slots reserved per block frame. */
    unsigned blockUops = 8;

    unsigned ways = 4;
};

/** One decoded basic block. */
struct CachedBlock
{
    bool valid = false;
    uint64_t startIp = 0;
    uint64_t lru = 0;
    std::vector<int32_t> insts;  ///< static indices, in order
    unsigned numUops = 0;

    void
    clear()
    {
        valid = false;
        startIp = 0;
        insts.clear();
        numUops = 0;
    }
};

class BlockCache : public StatGroup
{
  public:
    BlockCache(const BlockCacheParams &params, StatGroup *parent);

    /** @return the resident block starting at @p ip, or nullptr. */
    const CachedBlock *lookup(uint64_t ip);

    /** Probe without statistics or LRU update. */
    const CachedBlock *probe(uint64_t ip) const;

    /** Insert a block (replaces a same-IP block). */
    void insert(const CachedBlock &block);

    double fillFactor() const;
    unsigned numSets() const { return numSets_; }
    const BlockCacheParams &params() const { return params_; }

    /** Non-aborting structural audit: frame budget, stored uop
     *  counts, tag consistency, and the store-exactly-once rule (at
     *  most one block per start IP). Violations go to @p sink. */
    void auditStorage(
        const StaticCode &code,
        const std::function<void(AuditViolation)> &sink) const;

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat lookups{this, "lookups", "block cache lookups"};
    ScalarStat hits{this, "hits", "block cache hits"};
    ScalarStat inserts{this, "inserts", "blocks inserted"};
    ScalarStat evictions{this, "evictions", "blocks evicted"};

  private:
    std::size_t setOf(uint64_t ip) const;
    CachedBlock *find(uint64_t ip);

    BlockCacheParams params_;
    unsigned numSets_;
    std::vector<CachedBlock> blocks_;
    uint64_t clock_ = 0;
};

} // namespace xbs

#endif // XBS_BBTC_BLOCK_CACHE_HH
