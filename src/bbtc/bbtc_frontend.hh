/**
 * @file
 * Block-based trace cache frontend (paper section 2.4, [Blac99]):
 * traces of block *pointers* name decoded basic blocks stored once
 * in a block cache. Redundancy moves from uops to pointers;
 * fragmentation grows because storage is allocated in fixed block
 * frames.
 */

#ifndef XBS_BBTC_BBTC_FRONTEND_HH
#define XBS_BBTC_BBTC_FRONTEND_HH

#include <unordered_map>

#include "bbtc/block_cache.hh"
#include "frontend/frontend.hh"
#include "frontend/predictors.hh"
#include "ic/legacy_pipe.hh"

namespace xbs
{

struct BbtcParams
{
    BlockCacheParams blocks;

    /** Block pointers per trace-table entry. */
    unsigned ptrsPerTrace = 4;

    /** Trace-table geometry (entries = sets * ways). */
    unsigned traceTableEntries = 4096;
    unsigned traceTableWays = 4;
};

class BbtcFrontend : public Frontend
{
  public:
    BbtcFrontend(const FrontendParams &params,
                 const BbtcParams &bbtc_params);

    void run(const Trace &trace) override;

    /// @{ Warm-state checkpoint/restore (src/ckpt).
    void saveState(CheckpointWriter &w) const override;
    Status restoreState(const CheckpointFile &f) override;
    /// @}

    const BlockCache &blockCache() const { return blocks_; }

    /** Mean pointer instances per distinct resident block pointer
     *  (the BBTC's redundancy lives here, not in uops). */
    double pointerRedundancy() const;

    ScalarStat traceLookups{&root_, "traceLookups",
        "trace-table lookups"};
    ScalarStat traceHits{&root_, "traceHits", "trace-table hits"};
    ScalarStat blockMisses{&root_, "blockMissesOnHit",
        "pointed-to blocks absent from the block cache"};
    ScalarStat partialHits{&root_, "partialHits",
        "trace supplies cut short by path divergence"};

  protected:
    void
    registerPhases(PhaseProfiler *prof) override
    {
        // The legacy pipe runs as this frontend's build path.
        pipe_.attachProfiler(prof, phBuild_);
    }

  private:
    enum class Mode { Build, Delivery };

    struct TraceEntry
    {
        bool valid = false;
        uint64_t startIp = 0;
        uint64_t lru = 0;
        std::vector<uint64_t> blockIps;
    };

    TraceEntry *ttFind(uint64_t ip);
    void ttInsert(uint64_t start_ip,
                  const std::vector<uint64_t> &block_ips);

    /** Supply one trace entry along the actual path. */
    unsigned supplyTrace(const Trace &trace, const TraceEntry &entry,
                         std::size_t &rec, unsigned &stall);

    BbtcParams bbtcParams_;
    PredictorBank preds_;
    LegacyPipe pipe_;
    BlockCache blocks_;

    unsigned ttSets_;
    std::vector<TraceEntry> tt_;
    uint64_t ttClock_ = 0;

    /// @{ Fill state (build mode).
    CachedBlock fillBlock_;
    std::vector<uint64_t> fillPtrs_;
    uint64_t fillStartIp_ = 0;
    /// @}

    void restartFill();
    /** Feed one instruction; returns true when a trace completed. */
    bool feedFill(const Trace &trace, std::size_t rec);
};

} // namespace xbs

#endif // XBS_BBTC_BBTC_FRONTEND_HH
