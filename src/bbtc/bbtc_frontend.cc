#include "bbtc/bbtc_frontend.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "frontend/control.hh"

namespace xbs
{

BbtcFrontend::BbtcFrontend(const FrontendParams &params,
                           const BbtcParams &bbtc_params)
    : Frontend("bbtc", params), bbtcParams_(bbtc_params),
      preds_(params_), pipe_(params_, metrics_, preds_, &probes_),
      blocks_(bbtc_params.blocks, &root_)
{
    pipe_.attachAttrib(&attrib_);
    ttSets_ = 1u << floorLog2(std::max(
                  1u, bbtcParams_.traceTableEntries /
                          bbtcParams_.traceTableWays));
    tt_.resize((std::size_t)ttSets_ * bbtcParams_.traceTableWays);
    restartFill();
}

BbtcFrontend::TraceEntry *
BbtcFrontend::ttFind(uint64_t ip)
{
    std::size_t base = (std::size_t)foldedIndex(ip, ttSets_, 1) *
                       bbtcParams_.traceTableWays;
    for (unsigned w = 0; w < bbtcParams_.traceTableWays; ++w) {
        TraceEntry &e = tt_[base + w];
        if (e.valid && e.startIp == ip)
            return &e;
    }
    return nullptr;
}

void
BbtcFrontend::ttInsert(uint64_t start_ip,
                       const std::vector<uint64_t> &block_ips)
{
    if (TraceEntry *e = ttFind(start_ip)) {
        e->blockIps = block_ips;  // no path associativity
        e->lru = ++ttClock_;
        return;
    }
    std::size_t base =
        (std::size_t)foldedIndex(start_ip, ttSets_, 1) *
        bbtcParams_.traceTableWays;
    TraceEntry *victim = &tt_[base];
    for (unsigned w = 0; w < bbtcParams_.traceTableWays; ++w) {
        TraceEntry &e = tt_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->startIp = start_ip;
    victim->blockIps = block_ips;
    victim->lru = ++ttClock_;
}

void
BbtcFrontend::restartFill()
{
    fillBlock_.clear();
    fillPtrs_.clear();
    fillStartIp_ = 0;
}

bool
BbtcFrontend::feedFill(const Trace &trace, std::size_t rec)
{
    const StaticInst &si = trace.inst(rec);
    const int32_t idx = trace.record(rec).staticIdx;

    if (!fillBlock_.valid) {
        fillBlock_.valid = true;
        fillBlock_.startIp = si.ip;
        if (fillPtrs_.empty())
            fillStartIp_ = si.ip;
    }

    // A block ends at any control instruction or at its frame size.
    if (fillBlock_.numUops + si.numUops >
        bbtcParams_.blocks.blockUops) {
        blocks_.insert(fillBlock_);
        fillPtrs_.push_back(fillBlock_.startIp);
        fillBlock_.clear();
        fillBlock_.valid = true;
        fillBlock_.startIp = si.ip;
    }

    fillBlock_.insts.push_back(idx);
    fillBlock_.numUops += si.numUops;

    bool block_ends = si.isControl();
    bool trace_ends = false;
    if (block_ends) {
        blocks_.insert(fillBlock_);
        fillPtrs_.push_back(fillBlock_.startIp);
        fillBlock_.clear();
        trace_ends = si.endsTrace() ||
                     fillPtrs_.size() >= bbtcParams_.ptrsPerTrace;
    } else if (fillPtrs_.size() >= bbtcParams_.ptrsPerTrace) {
        trace_ends = true;
    }

    if (trace_ends && !fillPtrs_.empty()) {
        ttInsert(fillStartIp_, fillPtrs_);
        fillPtrs_.clear();
        // A quota-split may already have opened the next trace's
        // first block.
        fillStartIp_ = fillBlock_.valid ? fillBlock_.startIp : 0;
        return true;
    }
    return false;
}

unsigned
BbtcFrontend::supplyTrace(const Trace &trace, const TraceEntry &entry,
                          std::size_t &rec, unsigned &stall)
{
    unsigned supplied = 0;
    bool full = true;
    attrib_.clearDisruption();

    for (uint64_t block_ip : entry.blockIps) {
        if (rec >= trace.numRecords())
            break;
        if (trace.inst(rec).ip != block_ip) {
            // Path divergence at block granularity: partial hit.
            full = false;
            attrib_.noteDisruption(Cause::PartialHit);
            break;
        }
        const CachedBlock *blk = blocks_.lookup(block_ip);
        if (!blk) {
            // Pointer names an evicted block: supply stops; the
            // remainder comes from the legacy path.
            ++blockMisses;
            full = false;
            attrib_.noteDisruption(Cause::StructMiss);
            break;
        }

        bool diverged = false;
        for (int32_t bidx : blk->insts) {
            if (rec >= trace.numRecords() ||
                trace.record(rec).staticIdx != bidx) {
                diverged = true;
                attrib_.noteDisruption(Cause::PartialHit);
                break;
            }
            const StaticInst &si = trace.inst(rec);
            unsigned penalty = 0;
            if (si.isControl()) {
                penalty = predictControl(params_, metrics_, preds_,
                                         trace, rec,
                                         /*legacy_path=*/false,
                                         &attrib_);
            }
            oracleConsume(rec, bidx, si.numUops);
            supplied += si.numUops;
            ++rec;
            if (penalty > 0) {
                stall += penalty;
                diverged = true;
                break;
            }
        }
        if (diverged || stall > 0) {
            full = false;
            break;
        }
    }

    if (!full)
        ++partialHits;
    return supplied;
}

namespace
{

void
saveBlock(CkptSink &sink, const CachedBlock &b)
{
    sink.b(b.valid);
    sink.u64(b.startIp);
    sink.u64(b.lru);
    sink.u64(b.insts.size());
    for (int32_t idx : b.insts)
        sink.i32(idx);
    sink.u32(b.numUops);
}

void
loadBlock(CkptSource &src, CachedBlock &b)
{
    b.clear();
    b.valid = src.b();
    b.startIp = src.u64();
    b.lru = src.u64();
    uint64_t n = src.count(4);
    b.insts.reserve(src.ok() ? n : 0);
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        int32_t idx = src.i32();
        if (src.ok())
            b.insts.push_back(idx);
    }
    b.numUops = src.u32();
}

} // namespace

void
BbtcFrontend::saveState(CheckpointWriter &w) const
{
    Frontend::saveState(w);
    CkptSink sink;
    preds_.ckptSave(sink);
    pipe_.ckptSave(sink);
    blocks_.ckptSave(sink);

    sink.u64(tt_.size());
    for (const TraceEntry &e : tt_) {
        sink.b(e.valid);
        sink.u64(e.startIp);
        sink.u64(e.lru);
        sink.u64(e.blockIps.size());
        for (uint64_t ip : e.blockIps)
            sink.u64(ip);
    }
    sink.u64(ttClock_);

    saveBlock(sink, fillBlock_);
    sink.u64(fillPtrs_.size());
    for (uint64_t ip : fillPtrs_)
        sink.u64(ip);
    sink.u64(fillStartIp_);
    w.addSection("bbtc", sink.take());
}

Status
BbtcFrontend::restoreState(const CheckpointFile &f)
{
    Status st = Frontend::restoreState(f);
    if (!st.isOk())
        return st;
    const std::string *sec = f.section("bbtc");
    if (!sec) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks a 'bbtc' section");
    }
    CkptSource src(*sec);
    preds_.ckptLoad(src);
    pipe_.ckptLoad(src);
    blocks_.ckptLoad(src);

    uint64_t n = src.count(25);
    src.require(n == tt_.size());
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        TraceEntry &e = tt_[i];
        e = TraceEntry{};
        e.valid = src.b();
        e.startIp = src.u64();
        e.lru = src.u64();
        // A quota-split step can append two pointers (the split tail
        // plus the ending block) before the trace commits, so a
        // committed entry may hold ptrsPerTrace + 1 pointers.
        uint64_t ni = src.count(8);
        src.require(ni <= bbtcParams_.ptrsPerTrace + 1);
        e.blockIps.reserve(src.ok() ? ni : 0);
        for (uint64_t j = 0; src.ok() && j < ni; ++j) {
            uint64_t ip = src.u64();
            if (src.ok())
                e.blockIps.push_back(ip);
        }
    }
    ttClock_ = src.u64();

    loadBlock(src, fillBlock_);
    fillPtrs_.clear();
    uint64_t np = src.count(8);
    src.require(np <= bbtcParams_.ptrsPerTrace);
    fillPtrs_.reserve(src.ok() ? np : 0);
    for (uint64_t i = 0; src.ok() && i < np; ++i) {
        uint64_t ip = src.u64();
        if (src.ok())
            fillPtrs_.push_back(ip);
    }
    fillStartIp_ = src.u64();
    if (!src.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint 'bbtc' section");
    }
    return Status::ok();
}

void
BbtcFrontend::run(const Trace &trace)
{
    const std::size_t num_records = trace.numRecords();
    std::size_t rec = 0;
    Mode mode = Mode::Build;
    unsigned buffer = 0;
    unsigned stall = 0;
    if (auto resume = takeResume()) {
        rec = (std::size_t)resume->rec;
        mode = resume->mode ? Mode::Delivery : Mode::Build;
        buffer = resume->buffer;
        stall = resume->stall;
    } else {
        restartFill();
        attrib_.enterBuild(Cause::ColdStart);
    }

    while ((rec < num_records || buffer > 0) && !stopRequested()) {
        maybeCheckpoint(rec, mode == Mode::Delivery ? 1 : 0, buffer,
                        stall);
        ++metrics_.cycles;
        metrics_.traceRecords.set(rec);
        observeCycle();
        traceMode(mode == Mode::Build ? "build" : "delivery");

        if (stall > 0) {
            --stall;
            ++metrics_.stallCycles;
            attrib_.chargeSilentCycle();
            buffer -= std::min(buffer, params_.renamerWidth);
            continue;
        }

        if (mode == Mode::Delivery) {
            ++metrics_.deliveryCycles;
            if (buffer < params_.renamerWidth && rec < num_records) {
                ScopedPhase arrayTimer(prof_, phArray_);
                ++traceLookups;
                TraceEntry *e = ttFind(trace.inst(rec).ip);
                if (e) {
                    ++traceHits;
                    e->lru = ++ttClock_;
                    unsigned got = supplyTrace(trace, *e, rec, stall);
                    if (got == 0 && stall == 0 && buffer == 0) {
                        // Hit with nothing usable: rebuild.
                        mode = Mode::Build;
                        ++metrics_.modeSwitches;
                        restartFill();
                        attrib_.enterBuild(Cause::PartialHit);
                        --metrics_.deliveryCycles;
                        continue;
                    }
                    metrics_.deliveryUops += got;
                    buffer += got;
                } else if (buffer == 0) {
                    mode = Mode::Build;
                    ++metrics_.modeSwitches;
                    restartFill();
                    attrib_.enterBuild(Cause::StructMiss);
                    --metrics_.deliveryCycles;
                    continue;
                }
            }
            unsigned drained = std::min(buffer, params_.renamerWidth);
            metrics_.renamedUops += drained;
            buffer -= drained;
        } else {
            ++metrics_.buildCycles;
            attrib_.chargeBuildCycle();
            std::size_t prev = rec;
            ScopedPhase buildTimer(prof_, phBuild_);
            LegacyPipe::Result r = pipe_.cycle(trace, rec);
            metrics_.buildUops += r.uops;
            attrib_.chargeBuildUops(r.uops);
            stall += r.stall;
            bool completed = false;
            for (std::size_t i = prev; i < rec; ++i) {
                oracleConsume(i, kNoTarget, 0);
                completed |= feedFill(trace, i);
            }
            if (completed && rec < num_records &&
                ttFind(trace.inst(rec).ip)) {
                mode = Mode::Delivery;
            }
        }
    }
    metrics_.traceRecords.set(rec);
    traceModeDone();
}

double
BbtcFrontend::pointerRedundancy() const
{
    std::unordered_map<uint64_t, uint32_t> counts;
    for (const auto &e : tt_) {
        if (!e.valid)
            continue;
        for (uint64_t ip : e.blockIps)
            ++counts[ip];
    }
    if (counts.empty())
        return 1.0;
    uint64_t total = 0;
    for (const auto &[ip, c] : counts)
        total += c;
    return (double)total / (double)counts.size();
}

} // namespace xbs
