#include "bbtc/block_cache.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

BlockCache::BlockCache(const BlockCacheParams &params,
                       StatGroup *parent)
    : StatGroup("blockcache", parent), params_(params)
{
    unsigned frames = params_.capacityUops / params_.blockUops;
    xbs_assert(frames >= params_.ways, "capacity below one set");
    numSets_ = 1u << floorLog2(frames / params_.ways);
    blocks_.resize((std::size_t)numSets_ * params_.ways);
}

std::size_t
BlockCache::setOf(uint64_t ip) const
{
    return (std::size_t)foldedIndex(ip, numSets_, 1);
}

CachedBlock *
BlockCache::find(uint64_t ip)
{
    std::size_t base = setOf(ip) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        CachedBlock &b = blocks_[base + w];
        if (b.valid && b.startIp == ip)
            return &b;
    }
    return nullptr;
}

const CachedBlock *
BlockCache::lookup(uint64_t ip)
{
    ++lookups;
    CachedBlock *b = find(ip);
    if (b) {
        b->lru = ++clock_;
        ++hits;
    }
    return b;
}

const CachedBlock *
BlockCache::probe(uint64_t ip) const
{
    std::size_t base = setOf(ip) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        const CachedBlock &b = blocks_[base + w];
        if (b.valid && b.startIp == ip)
            return &b;
    }
    return nullptr;
}

void
BlockCache::insert(const CachedBlock &block)
{
    xbs_assert(block.valid && !block.insts.empty(),
               "inserting an empty block");
    xbs_assert(block.numUops <= params_.blockUops,
               "block exceeds its frame");
    if (CachedBlock *existing = find(block.startIp)) {
        *existing = block;
        existing->lru = ++clock_;
        return;
    }
    std::size_t base = setOf(block.startIp) * params_.ways;
    CachedBlock *victim = &blocks_[base];
    for (unsigned w = 0; w < params_.ways; ++w) {
        CachedBlock &b = blocks_[base + w];
        if (!b.valid) {
            victim = &b;
            break;
        }
        if (b.lru < victim->lru)
            victim = &b;
    }
    if (victim->valid)
        ++evictions;
    *victim = block;
    victim->lru = ++clock_;
    ++inserts;
}

void
BlockCache::auditStorage(
    const StaticCode &code,
    const std::function<void(AuditViolation)> &sink) const
{
    auto structural = [&](std::string what) {
        AuditViolation v;
        v.kind = AuditViolation::Kind::Structural;
        v.where = "bbtc.blocks";
        v.what = std::move(what);
        sink(std::move(v));
    };

    for (std::size_t set = 0; set < numSets_; ++set) {
        std::size_t base = set * params_.ways;
        for (unsigned w = 0; w < params_.ways; ++w) {
            const CachedBlock &b = blocks_[base + w];
            if (!b.valid)
                continue;
            std::string where = "block " +
                                std::to_string(base + w) + ": ";
            if (b.insts.empty()) {
                structural(where + "valid block with no instructions");
                continue;
            }
            unsigned uops = 0;
            bool indexed_ok = true;
            for (int32_t idx : b.insts) {
                if (idx < 0 || (std::size_t)idx >= code.size()) {
                    structural(where + "out-of-range static index");
                    indexed_ok = false;
                    break;
                }
                uops += code.inst(idx).numUops;
            }
            if (!indexed_ok)
                continue;
            if (b.startIp != code.inst(b.insts.front()).ip)
                structural(where + "tag does not match first inst");
            if (uops != b.numUops)
                structural(where + "stored uop count is stale");
            if (uops > params_.blockUops) {
                structural(where + "block of " + std::to_string(uops) +
                           " uops exceeds its " +
                           std::to_string(params_.blockUops) +
                           "-uop frame");
            }
            // Store-exactly-once: a second same-IP block in the set
            // would silently double pointer targets.
            for (unsigned w2 = w + 1; w2 < params_.ways; ++w2) {
                const CachedBlock &o = blocks_[base + w2];
                if (o.valid && o.startIp == b.startIp)
                    structural(where + "duplicate block for the IP");
            }
        }
    }
}

double
BlockCache::fillFactor() const
{
    uint64_t used = 0, reserved = 0;
    for (const auto &b : blocks_) {
        if (b.valid) {
            used += b.numUops;
            reserved += params_.blockUops;
        }
    }
    return reserved ? (double)used / (double)reserved : 0.0;
}

void
BlockCache::ckptSave(CkptSink &sink) const
{
    sink.u64(blocks_.size());
    for (const CachedBlock &b : blocks_) {
        sink.b(b.valid);
        sink.u64(b.startIp);
        sink.u64(b.lru);
        sink.u64(b.insts.size());
        for (int32_t idx : b.insts)
            sink.i32(idx);
        sink.u32(b.numUops);
    }
    sink.u64(clock_);
}

void
BlockCache::ckptLoad(CkptSource &src)
{
    // Min block size: valid(1) + startIp(8) + lru(8) + inst count(8)
    // + numUops(4) = 29 bytes.
    uint64_t n = src.count(29);
    src.require(n == blocks_.size());
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        CachedBlock &b = blocks_[i];
        b.clear();
        b.valid = src.b();
        b.startIp = src.u64();
        b.lru = src.u64();
        uint64_t ni = src.count(4);
        src.require(ni <= params_.blockUops);
        b.insts.reserve(src.ok() ? ni : 0);
        for (uint64_t j = 0; src.ok() && j < ni; ++j) {
            int32_t idx = src.i32();
            if (src.ok())
                b.insts.push_back(idx);
        }
        b.numUops = src.u32();
        src.require(b.numUops <= params_.blockUops);
    }
    clock_ = src.u64();
}

void
BlockCache::reset()
{
    for (auto &b : blocks_)
        b.clear();
    clock_ = 0;
    resetStats();
}

} // namespace xbs
