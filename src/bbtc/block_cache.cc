#include "bbtc/block_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

BlockCache::BlockCache(const BlockCacheParams &params,
                       StatGroup *parent)
    : StatGroup("blockcache", parent), params_(params)
{
    unsigned frames = params_.capacityUops / params_.blockUops;
    xbs_assert(frames >= params_.ways, "capacity below one set");
    numSets_ = 1u << floorLog2(frames / params_.ways);
    blocks_.resize((std::size_t)numSets_ * params_.ways);
}

std::size_t
BlockCache::setOf(uint64_t ip) const
{
    return (std::size_t)foldedIndex(ip, numSets_, 1);
}

CachedBlock *
BlockCache::find(uint64_t ip)
{
    std::size_t base = setOf(ip) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        CachedBlock &b = blocks_[base + w];
        if (b.valid && b.startIp == ip)
            return &b;
    }
    return nullptr;
}

const CachedBlock *
BlockCache::lookup(uint64_t ip)
{
    ++lookups;
    CachedBlock *b = find(ip);
    if (b) {
        b->lru = ++clock_;
        ++hits;
    }
    return b;
}

const CachedBlock *
BlockCache::probe(uint64_t ip) const
{
    std::size_t base = setOf(ip) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        const CachedBlock &b = blocks_[base + w];
        if (b.valid && b.startIp == ip)
            return &b;
    }
    return nullptr;
}

void
BlockCache::insert(const CachedBlock &block)
{
    xbs_assert(block.valid && !block.insts.empty(),
               "inserting an empty block");
    xbs_assert(block.numUops <= params_.blockUops,
               "block exceeds its frame");
    if (CachedBlock *existing = find(block.startIp)) {
        *existing = block;
        existing->lru = ++clock_;
        return;
    }
    std::size_t base = setOf(block.startIp) * params_.ways;
    CachedBlock *victim = &blocks_[base];
    for (unsigned w = 0; w < params_.ways; ++w) {
        CachedBlock &b = blocks_[base + w];
        if (!b.valid) {
            victim = &b;
            break;
        }
        if (b.lru < victim->lru)
            victim = &b;
    }
    if (victim->valid)
        ++evictions;
    *victim = block;
    victim->lru = ++clock_;
    ++inserts;
}

double
BlockCache::fillFactor() const
{
    uint64_t used = 0, reserved = 0;
    for (const auto &b : blocks_) {
        if (b.valid) {
            used += b.numUops;
            reserved += params_.blockUops;
        }
    }
    return reserved ? (double)used / (double)reserved : 0.0;
}

void
BlockCache::reset()
{
    for (auto &b : blocks_)
        b.clear();
    clock_ = 0;
    resetStats();
}

} // namespace xbs
