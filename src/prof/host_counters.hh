/**
 * @file
 * Host-side resource accounting for a run: getrusage() snapshots of
 * the simulator process itself (peak RSS, user/sys CPU time, page
 * faults) and a ThroughputMeter that converts simulated progress
 * (cycles, uops, trace records) into host-time rates on the interval
 * stats cadence.
 *
 * The batch layer records the same counters per child via wait4()
 * (see batch/subprocess), so a hung-but-idle job and a CPU-burning
 * job are distinguishable in the sweep report.
 */

#ifndef XBS_PROF_HOST_COUNTERS_HH
#define XBS_PROF_HOST_COUNTERS_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "common/json.hh"

struct rusage; // <sys/resource.h>

namespace xbs
{

/** One resource-usage snapshot (self or a reaped child). */
struct HostCounters
{
    uint64_t maxRssKb = 0;     ///< peak resident set, KiB
    double userSec = 0.0;      ///< user CPU time
    double sysSec = 0.0;       ///< system CPU time
    uint64_t minorFaults = 0;  ///< page reclaims (no I/O)
    uint64_t majorFaults = 0;  ///< page faults that hit storage
    uint64_t volCtxSw = 0;     ///< voluntary context switches
    uint64_t involCtxSw = 0;   ///< involuntary context switches
    uint64_t inBlock = 0;      ///< block-input operations (reads)
    uint64_t outBlock = 0;     ///< block-output operations (writes)

    /** Snapshot the calling process (getrusage(RUSAGE_SELF)). */
    static HostCounters self();

    /** Convert a wait4()/getrusage() result. */
    static HostCounters fromRusage(const ::rusage &ru);

    double cpuSec() const { return userSec + sysSec; }

    /** Emit as an object member @p key. */
    void writeJson(JsonWriter &jw,
                   const std::string &key = "host") const;
};

/**
 * Simulated-progress-per-host-second meter. Call sample() with the
 * current cumulative counters (typically on interval-stats window
 * boundaries); each call reports the rates over the window since the
 * previous call plus cumulative rates since reset().
 */
class ThroughputMeter
{
  public:
    /** Windows shorter than this report zero rates instead of the
     *  near-infinite numbers a sub-tick division would produce; the
     *  deltas carry into the next sample (see sample()). */
    static constexpr double kMinWindowSec = 1e-9;

    struct Rates
    {
        double wallSeconds = 0.0;      ///< since reset()
        double windowSeconds = 0.0;    ///< since the previous sample
        double cyclesPerSec = 0.0;     ///< window rate
        double uopsPerSec = 0.0;       ///< window rate
        double recordsPerSec = 0.0;    ///< window rate
    };

    /** Start (or restart) the clock; zeroes the cumulative state. */
    void reset();

    /** Report rates for the window ending now. */
    Rates sample(uint64_t cycles, uint64_t uops, uint64_t records);

    /** Cumulative rates since reset(), ending now. */
    Rates overall(uint64_t cycles, uint64_t uops,
                  uint64_t records) const;

  private:
    using Clock = std::chrono::steady_clock;

    Clock::time_point start_{};
    Clock::time_point last_{};
    uint64_t lastCycles_ = 0;
    uint64_t lastUops_ = 0;
    uint64_t lastRecords_ = 0;
    bool running_ = false;
};

} // namespace xbs

#endif // XBS_PROF_HOST_COUNTERS_HH
