/**
 * @file
 * Build provenance: which compiler, flags, build type, and source
 * revision produced this binary. Every performance artifact (stats
 * JSON, xbatch report.json, bench.json) is stamped with it so a
 * regression gate can refuse to compare numbers across incompatible
 * builds — a Debug or sanitized binary is 5-50x slower than Release
 * and would make any host-throughput baseline meaningless, and even
 * paper metrics can shift across source revisions.
 *
 * Compatibility policy (buildCompatible): build type and sanitizer
 * state must match *exactly* — a mismatch is a gate failure, not a
 * warning. Compiler version, flags, and source revision are reported
 * as soft differences: CI runners and dev machines legitimately
 * differ there, and the paper metrics are integer-deterministic
 * across compilers.
 */

#ifndef XBS_PROF_BUILD_INFO_HH
#define XBS_PROF_BUILD_INFO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace xbs
{

struct BuildInfo
{
    std::string compiler;   ///< "gcc 13.2.0" / "clang 17.0.1"
    std::string buildType;  ///< CMAKE_BUILD_TYPE ("Release", ...)
    std::string flags;      ///< CMAKE_CXX_FLAGS at configure time
    std::string source;     ///< git short rev, or "unknown"
    uint64_t cxxStandard = 0;  ///< __cplusplus
    bool sanitized = false;    ///< ASan/UBSan baked in
};

/** This binary's provenance (baked in at compile time). */
const BuildInfo &buildInfo();

/** Emit as an object member @p key. */
void writeBuildInfoJson(JsonWriter &jw, const BuildInfo &info,
                        const std::string &key = "buildInfo");

/** Parse a previously emitted buildInfo object (absent fields stay
 *  at their defaults). */
BuildInfo parseBuildInfoJson(const JsonValue &obj);

/**
 * True when @p a and @p b may be compared metric-for-metric: build
 * type and sanitizer state match. Soft differences (compiler, flags,
 * source revision) are appended to @p soft_diffs when given.
 */
bool buildCompatible(const BuildInfo &a, const BuildInfo &b,
                     std::vector<std::string> *soft_diffs = nullptr);

} // namespace xbs

#endif // XBS_PROF_BUILD_INFO_HH
