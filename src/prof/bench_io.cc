#include "prof/bench_io.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/fs.hh"
#include "common/histogram.hh"
#include "common/json.hh"
#include "common/table.hh"
#include "obs/stats/stream_stats.hh"

namespace xbs
{

namespace
{

// Interval bandwidths are real-valued in [0, ~16] uops/cycle; the
// integer histogram stores them in milli-uops so percentile() keeps
// three decimal digits of resolution.
constexpr uint32_t kBwScale = 1000;
constexpr uint32_t kBwMaxMilli = 64 * kBwScale;

std::string
rowLabel(const std::string &frontend, const std::string &workload,
         uint64_t capacity, uint64_t ways)
{
    // Mirrors RunSpec::label() so bench rows line up with xbatch and
    // xbreport output without xbs_prof depending on xbs_sim.
    std::string s = frontend;
    s += "/";
    s += workload;
    s += "@";
    s += std::to_string(capacity);
    if (ways != 0) {
        s += "w";
        s += std::to_string(ways);
    }
    return s;
}

BenchHost
parseHost(const JsonValue &obj)
{
    BenchHost h;
    h.has = true;
    if (const JsonValue *v = obj.find("seconds"))
        h.seconds = v->asNumber();
    if (const JsonValue *v = obj.find("userSec"))
        h.userSec = v->asNumber();
    if (const JsonValue *v = obj.find("sysSec"))
        h.sysSec = v->asNumber();
    if (const JsonValue *v = obj.find("maxRssKb"))
        h.maxRssKb = v->asUint();
    if (const JsonValue *v = obj.find("uopsPerHostSec"))
        h.uopsPerHostSec = v->asNumber();
    return h;
}

void
writeHost(JsonWriter &jw, const BenchHost &h, const std::string &key)
{
    jw.beginObject(key);
    jw.field("seconds", h.seconds);
    jw.field("userSec", h.userSec);
    jw.field("sysSec", h.sysSec);
    jw.field("maxRssKb", h.maxRssKb);
    jw.field("uopsPerHostSec", h.uopsPerHostSec);
    jw.endObject();
}

BenchPerf
parsePerf(const JsonValue &obj)
{
    BenchPerf p;
    p.has = true;
    if (const JsonValue *v = obj.find("cycles"))
        p.cycles = v->asNumber();
    if (const JsonValue *v = obj.find("instructions"))
        p.instructions = v->asNumber();
    if (const JsonValue *v = obj.find("cacheRefs"))
        p.cacheRefs = v->asNumber();
    if (const JsonValue *v = obj.find("cacheMisses"))
        p.cacheMisses = v->asNumber();
    if (const JsonValue *v = obj.find("branches"))
        p.branches = v->asNumber();
    if (const JsonValue *v = obj.find("branchMisses"))
        p.branchMisses = v->asNumber();
    return p;
}

void
writePerf(JsonWriter &jw, const BenchPerf &p, const std::string &key)
{
    // Derived rates are written for readers but recomputed from the
    // counters on parse, so round trips cannot drift.
    jw.beginObject(key);
    jw.field("cycles", p.cycles);
    jw.field("instructions", p.instructions);
    jw.field("cacheRefs", p.cacheRefs);
    jw.field("cacheMisses", p.cacheMisses);
    jw.field("branches", p.branches);
    jw.field("branchMisses", p.branchMisses);
    jw.field("ipc", p.ipc());
    jw.field("cacheMpki", p.cacheMpki());
    jw.field("branchMissRate", p.branchMissRate());
    jw.endObject();
}

/**
 * Fold one job's interval JSONL into bandwidth percentiles plus a
 * streaming bandwidth estimator (mean/variance/lag-1/batch-means CI,
 * written into @p stats when non-null). A torn tail (crash
 * mid-write) or a malformed line stops the scan but keeps every
 * complete window before it.
 */
BenchIntervals
readIntervalFile(const std::string &path, BenchStats *stats)
{
    BenchIntervals iv;
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return iv;  // missing file: has stays false

    iv.has = true;
    StreamStat bw_stat;
    Histogram bw(kBwMaxMilli);
    Histogram ipc(kBwMaxMilli);
    std::istringstream is(text.value());
    JsonlScan scan = forEachJsonLine(is, [&](const JsonValue &window) {
        const JsonValue *b = window.find("bandwidth");
        if (!b) {
            iv.torn = true;
            return false;
        }
        bw_stat.push(b->asNumber());
        double milli = b->asNumber() * kBwScale;
        if (milli < 0.0)
            milli = 0.0;
        if (milli > kBwMaxMilli)
            milli = kBwMaxMilli;
        bw.add((uint32_t)std::lround(milli));
        ++iv.windows;
        // Windows annotated with host perf (child ran --perf with
        // counters available) feed the host-IPC percentiles.
        if (const JsonValue *p = window.find("perf");
            p && p->isObject()) {
            if (const JsonValue *v = p->find("ipc")) {
                double im = v->asNumber() * kBwScale;
                if (im < 0.0)
                    im = 0.0;
                if (im > kBwMaxMilli)
                    im = kBwMaxMilli;
                ipc.add((uint32_t)std::lround(im));
                ++iv.ipcWindows;
            }
        }
        return true;
    });
    if (!scan.clean())
        iv.torn = true;
    if (iv.windows > 0) {
        iv.bwP50 = (double)bw.percentile(0.50) / kBwScale;
        iv.bwP95 = (double)bw.percentile(0.95) / kBwScale;
        iv.bwP99 = (double)bw.percentile(0.99) / kBwScale;
    }
    if (iv.ipcWindows > 0) {
        iv.ipcP50 = (double)ipc.percentile(0.50) / kBwScale;
        iv.ipcP95 = (double)ipc.percentile(0.95) / kBwScale;
        iv.ipcP99 = (double)ipc.percentile(0.99) / kBwScale;
    }
    if (stats && iv.windows > 0) {
        stats->has = true;
        stats->windows = bw_stat.count();
        stats->mean = bw_stat.mean();
        stats->var = bw_stat.variance();
        stats->lag1 = bw_stat.lag1();
        const StreamStat::Ci95 ci = bw_stat.ci95();
        stats->ciValid = ci.valid;
        stats->ci95 = ci.halfWidth;
        stats->batches = ci.batches;
        stats->batchSize = ci.batchSize;
    }
    return iv;
}

void
writeStats(JsonWriter &jw, const BenchStats &st, const char *key)
{
    jw.beginObject(key);
    jw.field("windows", st.windows);
    jw.fieldFull("mean", st.mean);
    jw.fieldFull("var", st.var);
    jw.fieldFull("lag1", st.lag1);
    jw.field("ciValid", st.ciValid);
    if (st.ciValid) {
        jw.fieldFull("ci95", st.ci95);
        jw.field("batches", st.batches);
        jw.field("batchSize", st.batchSize);
    }
    jw.endObject();
}

BenchStats
parseStats(const JsonValue &obj)
{
    BenchStats st;
    st.has = true;
    if (const JsonValue *v = obj.find("windows"))
        st.windows = v->asUint();
    if (const JsonValue *v = obj.find("mean"))
        st.mean = v->asNumber();
    if (const JsonValue *v = obj.find("var"))
        st.var = v->asNumber();
    if (const JsonValue *v = obj.find("lag1"))
        st.lag1 = v->asNumber();
    if (const JsonValue *v = obj.find("ciValid"))
        st.ciValid = v->isBool() && v->boolValue;
    if (const JsonValue *v = obj.find("ci95"))
        st.ci95 = v->asNumber();
    if (const JsonValue *v = obj.find("batches"))
        st.batches = v->asUint();
    if (const JsonValue *v = obj.find("batchSize"))
        st.batchSize = v->asUint();
    return st;
}

void
writeRow(JsonWriter &jw, const BenchRow &row)
{
    jw.beginObject();
    jw.field("id", row.id);
    jw.field("frontend", row.frontend);
    jw.field("workload", row.workload);
    jw.field("capacity", row.capacity);
    jw.field("missRate", row.missRate);
    jw.field("bandwidth", row.bandwidth);
    jw.field("overallIpc", row.overallIpc);
    jw.field("cycles", row.cycles);
    jw.field("totalUops", row.totalUops);
    if (row.host.has)
        writeHost(jw, row.host, "host");
    if (row.perf.has)
        writePerf(jw, row.perf, "perf");
    if (row.intervals.has) {
        jw.beginObject("intervals");
        jw.field("windows", row.intervals.windows);
        jw.field("torn", row.intervals.torn);
        jw.field("bwP50", row.intervals.bwP50);
        jw.field("bwP95", row.intervals.bwP95);
        jw.field("bwP99", row.intervals.bwP99);
        if (row.intervals.ipcWindows) {
            jw.field("ipcWindows", row.intervals.ipcWindows);
            jw.field("ipcP50", row.intervals.ipcP50);
            jw.field("ipcP95", row.intervals.ipcP95);
            jw.field("ipcP99", row.intervals.ipcP99);
        }
        jw.endObject();
    }
    if (row.bwStats.has)
        writeStats(jw, row.bwStats, "stats");
    if (row.attrib.has)
        writeAttribRollup(jw, row.attrib);
    jw.endObject();
}

BenchRow
parseRow(const JsonValue &obj)
{
    BenchRow row;
    if (const JsonValue *v = obj.find("id"))
        row.id = v->asString();
    if (const JsonValue *v = obj.find("frontend"))
        row.frontend = v->asString();
    if (const JsonValue *v = obj.find("workload"))
        row.workload = v->asString();
    if (const JsonValue *v = obj.find("capacity"))
        row.capacity = v->asUint();
    if (const JsonValue *v = obj.find("missRate"))
        row.missRate = v->asNumber();
    if (const JsonValue *v = obj.find("bandwidth"))
        row.bandwidth = v->asNumber();
    if (const JsonValue *v = obj.find("overallIpc"))
        row.overallIpc = v->asNumber();
    if (const JsonValue *v = obj.find("cycles"))
        row.cycles = v->asUint();
    if (const JsonValue *v = obj.find("totalUops"))
        row.totalUops = v->asUint();
    if (const JsonValue *v = obj.find("host"); v && v->isObject())
        row.host = parseHost(*v);
    if (const JsonValue *v = obj.find("perf"); v && v->isObject())
        row.perf = parsePerf(*v);
    if (const JsonValue *v = obj.find("intervals");
        v && v->isObject()) {
        row.intervals.has = true;
        if (const JsonValue *w = v->find("windows"))
            row.intervals.windows = w->asUint();
        if (const JsonValue *w = v->find("torn"))
            row.intervals.torn = w->isBool() && w->boolValue;
        if (const JsonValue *w = v->find("bwP50"))
            row.intervals.bwP50 = w->asNumber();
        if (const JsonValue *w = v->find("bwP95"))
            row.intervals.bwP95 = w->asNumber();
        if (const JsonValue *w = v->find("bwP99"))
            row.intervals.bwP99 = w->asNumber();
        if (const JsonValue *w = v->find("ipcWindows"))
            row.intervals.ipcWindows = w->asUint();
        if (const JsonValue *w = v->find("ipcP50"))
            row.intervals.ipcP50 = w->asNumber();
        if (const JsonValue *w = v->find("ipcP95"))
            row.intervals.ipcP95 = w->asNumber();
        if (const JsonValue *w = v->find("ipcP99"))
            row.intervals.ipcP99 = w->asNumber();
    }
    if (const JsonValue *v = obj.find("stats"); v && v->isObject())
        row.bwStats = parseStats(*v);
    if (const JsonValue *v = obj.find("attrib"))
        row.attrib = parseAttribRollup(*v);
    return row;
}

} // anonymous namespace

Expected<BenchReport>
aggregateSweepDir(const std::string &dir)
{
    const std::string report_path = dir + "/report.json";
    Expected<JsonValue> parsed = readJsonFile(report_path);
    if (!parsed.ok())
        return parsed.status();
    const JsonValue &doc = parsed.value();
    if (!doc.isObject()) {
        return Status::error("malformed sweep report: not an object")
            .withFile(report_path);
    }

    BenchReport bench;
    bench.build = buildInfo();
    // Prefer the provenance of the binary that *ran* the sweep (the
    // report stamp) over this aggregator's own.
    if (const JsonValue *bi = doc.find("buildInfo"); bi && bi->isObject())
        bench.build = parseBuildInfoJson(*bi);
    if (const JsonValue *v = doc.find("intervalCycles"))
        bench.intervalCycles = v->asUint();
    if (const JsonValue *summary = doc.find("summary")) {
        if (const JsonValue *v = summary->find("total"))
            bench.jobsTotal = v->asUint();
        if (const JsonValue *v = summary->find("ok"))
            bench.jobsOk = v->asUint();
        if (const JsonValue *v = summary->find("failed"))
            bench.jobsFailed = v->asUint();
    }
    if (const JsonValue *timing = doc.find("timing"))
        if (const JsonValue *v = timing->find("wallSeconds"))
            bench.wallSeconds = v->asNumber();

    const JsonValue *jobs = doc.find("jobs");
    if (!jobs || !jobs->isArray()) {
        return Status::error("sweep report has no jobs array")
            .withFile(report_path);
    }

    double host_user = 0.0, host_sys = 0.0;
    uint64_t host_rss = 0, host_uops = 0;
    bool any_host = false;

    for (const JsonValue &job : jobs->items) {
        const JsonValue *done = job.find("done");
        const JsonValue *cls = job.find("class");
        if (!done || !done->boolValue || !cls ||
            cls->asString() != "ok") {
            continue;
        }
        const JsonValue *metrics = job.find("metrics");
        if (!metrics || !metrics->isObject())
            continue;

        BenchRow row;
        uint64_t id = 0, ways = 0;
        if (const JsonValue *v = job.find("id"))
            id = v->asUint();
        if (const JsonValue *v = job.find("frontend"))
            row.frontend = v->asString();
        if (const JsonValue *v = job.find("workload"))
            row.workload = v->asString();
        if (const JsonValue *v = job.find("capacity"))
            row.capacity = v->asUint();
        if (const JsonValue *v = job.find("ways"))
            ways = v->asUint();
        row.id = rowLabel(row.frontend, row.workload, row.capacity,
                          ways);

        if (const JsonValue *v = metrics->find("missRate"))
            row.missRate = v->asNumber();
        if (const JsonValue *v = metrics->find("bandwidth"))
            row.bandwidth = v->asNumber();
        if (const JsonValue *v = metrics->find("overallIpc"))
            row.overallIpc = v->asNumber();
        if (const JsonValue *v = metrics->find("cycles"))
            row.cycles = v->asUint();
        if (const JsonValue *v = metrics->find("totalUops"))
            row.totalUops = v->asUint();
        if (const JsonValue *v = metrics->find("attrib"))
            row.attrib = parseAttribRollup(*v);

        if (const JsonValue *ru = job.find("rusage");
            ru && ru->isObject()) {
            row.host = parseHost(*ru);
            if (const JsonValue *v = job.find("seconds"))
                row.host.seconds = v->asNumber();
            if (row.host.cpuSec() > 0.0) {
                row.host.uopsPerHostSec =
                    (double)row.totalUops / row.host.cpuSec();
            }
            any_host = true;
            host_user += row.host.userSec;
            host_sys += row.host.sysSec;
            host_rss = std::max(host_rss, row.host.maxRssKb);
            host_uops += row.totalUops;
        }

        if (const JsonValue *pf = job.find("perf");
            pf && pf->isObject()) {
            row.perf = parsePerf(*pf);
            bench.perf.has = true;
            bench.perf.cycles += row.perf.cycles;
            bench.perf.instructions += row.perf.instructions;
            bench.perf.cacheRefs += row.perf.cacheRefs;
            bench.perf.cacheMisses += row.perf.cacheMisses;
            bench.perf.branches += row.perf.branches;
            bench.perf.branchMisses += row.perf.branchMisses;
        }

        row.intervals = readIntervalFile(
            dir + "/intervals/job-" + std::to_string(id) + ".jsonl",
            &row.bwStats);

        bench.rows.push_back(std::move(row));
    }

    // Sweep-wide dispersion: a t-interval over the per-row bandwidth
    // means (not the pooled windows — rows are different workloads,
    // so between-row variance is the honest spread).
    {
        StreamStat rows_stat;
        for (const BenchRow &row : bench.rows)
            if (row.bwStats.has)
                rows_stat.push(row.bwStats.mean);
        if (rows_stat.count() > 0) {
            bench.bwStats.has = true;
            bench.bwStats.windows = rows_stat.count();
            bench.bwStats.mean = rows_stat.mean();
            bench.bwStats.var = rows_stat.variance();
            bench.bwStats.lag1 = 0.0;  // rows are not a time series
            if (rows_stat.count() >= 2) {
                bench.bwStats.ciValid = true;
                bench.bwStats.ci95 =
                    tCritical95(rows_stat.count() - 1) *
                    std::sqrt(rows_stat.variance() /
                              (double)rows_stat.count());
                bench.bwStats.batches = rows_stat.count();
                bench.bwStats.batchSize = 1;
            }
        }
    }

    if (any_host) {
        bench.host.has = true;
        bench.host.seconds = bench.wallSeconds;
        bench.host.userSec = host_user;
        bench.host.sysSec = host_sys;
        bench.host.maxRssKb = host_rss;
        if (bench.host.cpuSec() > 0.0) {
            bench.host.uopsPerHostSec =
                (double)host_uops / bench.host.cpuSec();
        }
    }
    return bench;
}

std::string
renderBenchJson(const BenchReport &report)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/true);
        jw.beginObject();
        jw.field("version", (uint64_t)report.version);
        writeBuildInfoJson(jw, report.build);
        jw.beginObject("jobs");
        jw.field("total", report.jobsTotal);
        jw.field("ok", report.jobsOk);
        jw.field("failed", report.jobsFailed);
        jw.endObject();
        jw.field("wallSeconds", report.wallSeconds);
        jw.field("intervalCycles", report.intervalCycles);
        if (report.host.has)
            writeHost(jw, report.host, "host");
        if (report.perf.has)
            writePerf(jw, report.perf, "perf");
        if (report.bwStats.has)
            writeStats(jw, report.bwStats, "stats");
        jw.beginArray("rows");
        for (const BenchRow &row : report.rows)
            writeRow(jw, row);
        jw.endArray();
        jw.endObject();
    }
    return os.str();
}

Expected<BenchReport>
parseBenchJson(const std::string &text, const std::string &path)
{
    JsonValue doc;
    std::string err;
    if (!parseJson(text, &doc, &err) || !doc.isObject()) {
        return Status::error("malformed bench report: " + err)
            .withFile(path);
    }
    BenchReport bench;
    if (const JsonValue *v = doc.find("version"))
        bench.version = (int)v->asUint();
    if (bench.version != 1) {
        return Status::error("unsupported bench report version " +
                             std::to_string(bench.version))
            .withFile(path);
    }
    if (const JsonValue *v = doc.find("buildInfo"); v && v->isObject())
        bench.build = parseBuildInfoJson(*v);
    if (const JsonValue *jobs = doc.find("jobs")) {
        if (const JsonValue *v = jobs->find("total"))
            bench.jobsTotal = v->asUint();
        if (const JsonValue *v = jobs->find("ok"))
            bench.jobsOk = v->asUint();
        if (const JsonValue *v = jobs->find("failed"))
            bench.jobsFailed = v->asUint();
    }
    if (const JsonValue *v = doc.find("wallSeconds"))
        bench.wallSeconds = v->asNumber();
    if (const JsonValue *v = doc.find("intervalCycles"))
        bench.intervalCycles = v->asUint();
    if (const JsonValue *v = doc.find("host"); v && v->isObject())
        bench.host = parseHost(*v);
    if (const JsonValue *v = doc.find("perf"); v && v->isObject())
        bench.perf = parsePerf(*v);
    if (const JsonValue *v = doc.find("stats"); v && v->isObject())
        bench.bwStats = parseStats(*v);
    if (const JsonValue *rows = doc.find("rows");
        rows && rows->isArray()) {
        for (const JsonValue &row : rows->items)
            bench.rows.push_back(parseRow(row));
    }
    return bench;
}

Expected<BenchReport>
readBenchFile(const std::string &path)
{
    Expected<std::string> text = readFileToString(path);
    if (!text.ok())
        return text.status();
    return parseBenchJson(text.value(), path);
}

const char *
metricVerdictName(MetricVerdict v)
{
    switch (v) {
      case MetricVerdict::Pass:          return "pass";
      case MetricVerdict::Warn:          return "warn";
      case MetricVerdict::Regress:       return "regress";
      case MetricVerdict::MissingMetric: return "missing";
      case MetricVerdict::LowPower:      return "lowPower";
    }
    return "?";
}

namespace
{

/** lower-is-better, higher-is-better, or must-match-exactly. */
enum class Direction
{
    Lower,
    Higher,
    Exact,
};

void
compareMetric(RegressReport &out, const RegressOptions &opts,
              const std::string &name, double baseline, double current,
              Direction dir, bool host)
{
    MetricDelta d;
    d.name = name;
    d.baseline = baseline;
    d.current = current;
    d.host = host;
    d.tol = dir == Direction::Exact ? 0.0
            : host                  ? opts.hostTol
                                    : opts.paperTol;
    if (std::fabs(baseline) > 1e-12)
        d.rel = (current - baseline) / std::fabs(baseline);
    else
        d.rel = current - baseline;  // absolute fallback near zero

    bool worse = false;
    switch (dir) {
      case Direction::Lower:
        worse = d.rel > d.tol;
        d.improved = d.rel < -d.tol;
        break;
      case Direction::Higher:
        worse = d.rel < -d.tol;
        d.improved = d.rel > d.tol;
        break;
      case Direction::Exact:
        // Deterministic counters (uop totals): any drift in either
        // direction means the simulation changed, not just got
        // slower/faster.
        worse = std::fabs(d.rel) > 1e-12;
        break;
    }

    if (worse) {
        if (host && !opts.gateHost) {
            d.verdict = MetricVerdict::Warn;
            ++out.warnings;
        } else {
            d.verdict = MetricVerdict::Regress;
            ++out.regressions;
        }
    } else {
        d.verdict = MetricVerdict::Pass;
        if (d.improved)
            ++out.improvements;
    }
    ++out.compared;
    out.deltas.push_back(std::move(d));
}

/**
 * CI-aware comparison (both sides carried valid batch-means CIs).
 * Decision table (docs/MODEL.md "Statistical observability"):
 *
 *   no overlap, worse direction, beyond tol  -> Regress
 *   no overlap, better direction, beyond tol -> Pass (improved)
 *   overlap, CIs too wide to detect tol      -> LowPower (warn)
 *   otherwise                                -> Pass
 *
 * The Welch t statistic and its Welch-Satterthwaite degrees of
 * freedom are recorded for reporting; the gate itself uses the
 * simpler and more conservative interval-overlap test.
 */
void
compareStatisticalMetric(RegressReport &out, const RegressOptions &opts,
                         const std::string &name, const BenchStats &base,
                         const BenchStats &cur, Direction dir)
{
    MetricDelta d;
    d.name = name;
    d.baseline = base.mean;
    d.current = cur.mean;
    d.tol = opts.paperTol;
    d.statistical = true;
    d.ci95Base = base.ci95;
    d.ci95Cur = cur.ci95;
    if (std::fabs(base.mean) > 1e-12)
        d.rel = (cur.mean - base.mean) / std::fabs(base.mean);
    else
        d.rel = cur.mean - base.mean;

    // Standard errors recovered from the interval half-widths, for
    // the Welch report fields.
    const double se_b =
        base.batches > 1 ? base.ci95 / tCritical95(base.batches - 1)
                         : 0.0;
    const double se_c =
        cur.batches > 1 ? cur.ci95 / tCritical95(cur.batches - 1)
                        : 0.0;
    const double se2 = se_b * se_b + se_c * se_c;
    if (se2 > 0.0) {
        d.welchT = (cur.mean - base.mean) / std::sqrt(se2);
        double denom = 0.0;
        if (base.batches > 1)
            denom += (se_b * se_b) * (se_b * se_b) /
                     (double)(base.batches - 1);
        if (cur.batches > 1)
            denom += (se_c * se_c) * (se_c * se_c) /
                     (double)(cur.batches - 1);
        d.welchDf = denom > 0.0 ? se2 * se2 / denom : 0.0;
    }

    const double diff = cur.mean - base.mean;
    const bool overlap = std::fabs(diff) <= base.ci95 + cur.ci95;
    const double tol_abs = d.tol * std::fabs(base.mean);
    const bool beyond_tol = std::fabs(diff) > tol_abs;
    // Minimum detectable difference: intervals this wide cannot see
    // a tolerance-sized drift, so "overlap" is not evidence of
    // stability.
    const bool low_power = base.ci95 + cur.ci95 > tol_abs;
    bool worse = false;
    bool better = false;
    switch (dir) {
      case Direction::Lower:
        worse = diff > 0.0;
        better = diff < 0.0;
        break;
      case Direction::Higher:
        worse = diff < 0.0;
        better = diff > 0.0;
        break;
      case Direction::Exact:
        worse = diff != 0.0;
        break;
    }

    if (!overlap && worse && beyond_tol) {
        d.verdict = MetricVerdict::Regress;
        ++out.regressions;
    } else if (!overlap && better && beyond_tol) {
        d.verdict = MetricVerdict::Pass;
        d.improved = true;
        ++out.improvements;
    } else if (overlap && low_power) {
        d.verdict = MetricVerdict::LowPower;
        ++out.lowPower;
        ++out.warnings;
    } else {
        d.verdict = MetricVerdict::Pass;
    }
    ++out.statistical;
    ++out.compared;
    out.deltas.push_back(std::move(d));
}

/**
 * Name the attribution category whose uop count moved the most
 * between two rollups ("" when nothing moved); used to annotate a
 * regressed row with its dominant loss source.
 */
std::string
dominantAttribShift(const AttribRollup &base, const AttribRollup &cur)
{
    auto countOf =
        [](const std::vector<std::pair<std::string, uint64_t>> &cats,
           const std::string &name) -> uint64_t {
        for (const auto &[n, c] : cats)
            if (n == name)
                return c;
        return 0;
    };
    std::string best;
    int64_t best_shift = 0;
    uint64_t best_mag = 0;
    auto consider = [&](const std::string &name) {
        if (name == best)
            return;
        int64_t shift = (int64_t)countOf(cur.uops, name) -
                        (int64_t)countOf(base.uops, name);
        uint64_t mag = (uint64_t)(shift < 0 ? -shift : shift);
        if (mag > best_mag) {
            best_mag = mag;
            best_shift = shift;
            best = name;
        }
    };
    for (const auto &[name, count] : base.uops)
        consider(name);
    for (const auto &[name, count] : cur.uops)
        consider(name);
    if (best.empty())
        return "";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s %s%lld buildUops",
                  best.c_str(), best_shift >= 0 ? "+" : "",
                  (long long)best_shift);
    return buf;
}

void
missingMetric(RegressReport &out, const std::string &name,
              double baseline, bool host)
{
    MetricDelta d;
    d.name = name;
    d.baseline = baseline;
    d.host = host;
    d.verdict = MetricVerdict::MissingMetric;
    ++out.missing;
    out.deltas.push_back(std::move(d));
}

} // anonymous namespace

RegressReport
compareBench(const BenchReport &current, const BenchReport &baseline,
             const RegressOptions &opts)
{
    RegressReport out;
    out.buildMismatch =
        !buildCompatible(current.build, baseline.build,
                         &out.buildNotes);
    out.buildGated = out.buildMismatch && !opts.allowBuildMismatch;

    for (const BenchRow &base : baseline.rows) {
        const auto it = std::find_if(
            current.rows.begin(), current.rows.end(),
            [&](const BenchRow &r) { return r.id == base.id; });
        if (it == current.rows.end()) {
            missingMetric(out, base.id, base.bandwidth, false);
            continue;
        }
        const BenchRow &cur = *it;
        const std::size_t row_regressions = out.regressions;
        compareMetric(out, opts, base.id + ".missRate",
                      base.missRate, cur.missRate, Direction::Lower,
                      false);
        // Interval bandwidth gets the statistical gate whenever both
        // sides carry a valid batch-means CI; CI-less baselines (old
        // BENCH_<n>.json records, sweeps without --interval-stats)
        // fall back to the legacy raw-threshold comparison.
        if (base.bwStats.has && base.bwStats.ciValid &&
            cur.bwStats.has && cur.bwStats.ciValid) {
            compareStatisticalMetric(out, opts,
                                     base.id + ".bandwidth",
                                     base.bwStats, cur.bwStats,
                                     Direction::Higher);
        } else {
            compareMetric(out, opts, base.id + ".bandwidth",
                          base.bandwidth, cur.bandwidth,
                          Direction::Higher, false);
        }
        compareMetric(out, opts, base.id + ".overallIpc",
                      base.overallIpc, cur.overallIpc,
                      Direction::Higher, false);
        compareMetric(out, opts, base.id + ".cycles",
                      (double)base.cycles, (double)cur.cycles,
                      Direction::Lower, false);
        compareMetric(out, opts, base.id + ".totalUops",
                      (double)base.totalUops, (double)cur.totalUops,
                      Direction::Exact, false);
        if (base.intervals.has && base.intervals.windows > 0) {
            if (!cur.intervals.has || cur.intervals.windows == 0) {
                missingMetric(out, base.id + ".bwP50",
                              base.intervals.bwP50, false);
            } else {
                compareMetric(out, opts, base.id + ".bwP50",
                              base.intervals.bwP50,
                              cur.intervals.bwP50, Direction::Higher,
                              false);
                compareMetric(out, opts, base.id + ".bwP95",
                              base.intervals.bwP95,
                              cur.intervals.bwP95, Direction::Higher,
                              false);
                compareMetric(out, opts, base.id + ".bwP99",
                              base.intervals.bwP99,
                              cur.intervals.bwP99, Direction::Higher,
                              false);
            }
        }
        // A regressed row with attribution on both sides gets a note
        // naming where the loss went, so the gate failure points at a
        // mechanism and not just a number.
        if (out.regressions > row_regressions && base.attrib.has &&
            cur.attrib.has) {
            std::string shift =
                dominantAttribShift(base.attrib, cur.attrib);
            if (!shift.empty())
                out.attribNotes.push_back(base.id + ": " + shift);
        }
    }

    // Host throughput is compared sweep-wide only: per-job host
    // numbers are too noisy for even a loose gate.
    if (baseline.host.has) {
        if (!current.host.has) {
            missingMetric(out, "host.cpuSec", baseline.host.cpuSec(),
                          true);
        } else {
            compareMetric(out, opts, "host.cpuSec",
                          baseline.host.cpuSec(),
                          current.host.cpuSec(), Direction::Lower,
                          true);
            compareMetric(out, opts, "host.maxRssKb",
                          (double)baseline.host.maxRssKb,
                          (double)current.host.maxRssKb,
                          Direction::Lower, true);
            compareMetric(out, opts, "host.uopsPerHostSec",
                          baseline.host.uopsPerHostSec,
                          current.host.uopsPerHostSec,
                          Direction::Higher, true);
        }
    }

    // Host microarchitecture counters: like host throughput, the
    // per-job numbers are noisy, so only the sweep-wide IPC and cache
    // MPKI are compared, and always in the loose host class (warn
    // unless --gate-host). A baseline without perf (counters
    // unavailable where it was recorded) skips the comparison; a
    // current report without perf against a perf baseline is a
    // missing metric so CI notices the counters went away.
    if (baseline.perf.has) {
        if (!current.perf.has) {
            missingMetric(out, "host.ipc", baseline.perf.ipc(), true);
        } else {
            compareMetric(out, opts, "host.ipc", baseline.perf.ipc(),
                          current.perf.ipc(), Direction::Higher,
                          true);
            compareMetric(out, opts, "host.cacheMpki",
                          baseline.perf.cacheMpki(),
                          current.perf.cacheMpki(), Direction::Lower,
                          true);
        }
    }
    return out;
}

std::string
renderRegressTable(const RegressReport &report, bool all)
{
    TextTable table({"metric", "baseline", "current", "delta%",
                     "tol%", "verdict"});
    for (const MetricDelta &d : report.deltas) {
        if (!all && d.verdict == MetricVerdict::Pass && !d.improved)
            continue;
        std::string verdict = metricVerdictName(d.verdict);
        if (d.improved)
            verdict += " (improved)";
        if (d.statistical) {
            verdict += " [ci " + TextTable::num(d.ci95Base, 4) + "/" +
                       TextTable::num(d.ci95Cur, 4) + "]";
        }
        table.addRow({d.name, TextTable::num(d.baseline, 4),
                      d.verdict == MetricVerdict::MissingMetric
                          ? "-"
                          : TextTable::num(d.current, 4),
                      d.verdict == MetricVerdict::MissingMetric
                          ? "-"
                          : TextTable::num(d.rel * 100.0, 2),
                      TextTable::num(d.tol * 100.0, 2), verdict});
    }

    std::ostringstream os;
    for (const std::string &note : report.buildNotes)
        os << "note: build differs: " << note << "\n";
    for (const std::string &note : report.attribNotes)
        os << "note: dominant loss shift: " << note << "\n";
    if (report.buildMismatch) {
        os << (report.buildGated ? "FAIL" : "note")
           << ": baseline build incompatible (buildType/sanitizer "
              "mismatch)\n";
    }
    if (table.numRows() > 0)
        os << table.render();
    char line[224];
    std::snprintf(line, sizeof(line),
                  "regress: %zu compared, %zu regression%s, %zu "
                  "warning%s, %zu missing, %zu improved -> %s\n",
                  report.compared, report.regressions,
                  report.regressions == 1 ? "" : "s", report.warnings,
                  report.warnings == 1 ? "" : "s", report.missing,
                  report.improvements,
                  report.pass() ? "PASS" : "FAIL");
    os << line;
    if (report.statistical > 0) {
        std::snprintf(line, sizeof(line),
                      "regress: %zu metric%s decided by CI overlap"
                      " (%zu low-power)\n",
                      report.statistical,
                      report.statistical == 1 ? "" : "s",
                      report.lowPower);
        os << line;
    }
    return os.str();
}

std::string
renderBenchRecord(const BenchReport &current,
                  const RegressReport &regress,
                  const std::string &baseline_path)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, /*pretty=*/true);
        jw.beginObject();
        jw.field("verdict", regress.pass() ? "pass" : "fail");
        jw.field("baseline", baseline_path);
        jw.beginObject("comparison");
        jw.field("compared", (uint64_t)regress.compared);
        jw.field("regressions", (uint64_t)regress.regressions);
        jw.field("warnings", (uint64_t)regress.warnings);
        jw.field("missing", (uint64_t)regress.missing);
        jw.field("improved", (uint64_t)regress.improvements);
        jw.field("statistical", (uint64_t)regress.statistical);
        jw.field("lowPower", (uint64_t)regress.lowPower);
        jw.field("buildMismatch", regress.buildMismatch);
        jw.endObject();
        // Baseline provenance: the sampling geometry the record was
        // taken with, so a refresh with a different window size or
        // window count is visible at review time.
        {
            uint64_t windows = 0;
            uint64_t ci_rows = 0;
            for (const BenchRow &row : current.rows) {
                if (row.bwStats.has) {
                    windows += row.bwStats.windows;
                    if (row.bwStats.ciValid)
                        ++ci_rows;
                }
            }
            jw.beginObject("recordedFrom");
            jw.field("intervalCycles", current.intervalCycles);
            jw.field("windows", windows);
            jw.field("rows", (uint64_t)current.rows.size());
            jw.field("ciRows", ci_rows);
            jw.endObject();
        }
        jw.beginArray("attribNotes");
        for (const std::string &note : regress.attribNotes)
            jw.field("", note);
        jw.endArray();
        jw.beginArray("flagged");
        for (const MetricDelta &d : regress.deltas) {
            if (d.verdict == MetricVerdict::Pass && !d.improved)
                continue;
            jw.beginObject();
            jw.field("metric", d.name);
            jw.field("baseline", d.baseline);
            jw.field("current", d.current);
            jw.field("rel", d.rel);
            jw.field("verdict", metricVerdictName(d.verdict));
            jw.field("improved", d.improved);
            jw.endObject();
        }
        jw.endArray();
        // Full current numbers so the record is self-contained.
        jw.beginObject("bench");
        jw.field("version", (uint64_t)current.version);
        writeBuildInfoJson(jw, current.build);
        jw.beginObject("jobs");
        jw.field("total", current.jobsTotal);
        jw.field("ok", current.jobsOk);
        jw.field("failed", current.jobsFailed);
        jw.endObject();
        jw.field("wallSeconds", current.wallSeconds);
        jw.field("intervalCycles", current.intervalCycles);
        if (current.host.has)
            writeHost(jw, current.host, "host");
        if (current.perf.has)
            writePerf(jw, current.perf, "perf");
        if (current.bwStats.has)
            writeStats(jw, current.bwStats, "stats");
        jw.beginArray("rows");
        for (const BenchRow &row : current.rows)
            writeRow(jw, row);
        jw.endArray();
        jw.endObject();
        jw.endObject();
    }
    return os.str();
}

} // namespace xbs
