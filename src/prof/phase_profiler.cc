#include "prof/phase_profiler.hh"

#include <cstdio>

namespace xbs
{

unsigned
PhaseProfiler::definePhase(const std::string &name, unsigned parent)
{
    for (unsigned i = 0; i < phases_.size(); ++i) {
        if (phases_[i].name == name && phases_[i].parent == parent)
            return i;
    }
    Phase p;
    p.name = name;
    p.parent = parent;
    phases_.push_back(std::move(p));
    perfPhases_.resize(phases_.size());
    return (unsigned)phases_.size() - 1;
}

void
PhaseProfiler::attachPerf(PerfCounterGroup *grp, unsigned perf_shift)
{
    perf_ = grp && grp->available() ? grp : nullptr;
    perfMask_ = (1u << perf_shift) - 1;
    perfPhases_.assign(phases_.size(), PhasePerf{});
}

PerfCounterGroup::Snapshot
PhaseProfiler::perfEnter(unsigned id)
{
    PhasePerf &pp = perfPhases_[id];
    if ((pp.armed++ & (uint64_t)perfMask_) != 0)
        return PerfCounterGroup::Snapshot{};
    return perf_->read();
}

void
PhaseProfiler::perfExit(unsigned id,
                        const PerfCounterGroup::Snapshot &begin)
{
    const PerfCounterGroup::Snapshot end = perf_->read();
    perfPhases_[id].delta.add(perf_->delta(begin, end));
}

void
PhaseProfiler::writePerfJson(JsonWriter &jw,
                             const std::string &key) const
{
    jw.beginArray(key);
    for (unsigned i = 0; i < phases_.size(); ++i) {
        const Phase &p = phases_[i];
        const PerfDelta &d = perfPhases_[i].delta;
        if (!d.samples)
            continue;
        jw.beginObject();
        jw.field("name", p.name);
        jw.field("parent", p.parent == kNoPhase
                               ? ""
                               : phases_[p.parent].name);
        d.writeJson(jw, "perf");
        jw.endObject();
    }
    jw.endArray();
}

uint64_t
PhaseProfiler::estimatedNs(unsigned id) const
{
    const Phase &p = phases_[id];
    if (!p.sampledCalls)
        return 0;
    // Scale sampled time by the sampling ratio. Doubles keep the
    // intermediate product from overflowing on long runs; the result
    // is an estimate anyway.
    return (uint64_t)((double)p.sampledNs * (double)p.calls /
                      (double)p.sampledCalls);
}

uint64_t
PhaseProfiler::totalEstimatedNs() const
{
    uint64_t total = 0;
    for (unsigned i = 0; i < phases_.size(); ++i) {
        if (phases_[i].parent == kNoPhase)
            total += estimatedNs(i);
    }
    return total;
}

unsigned
PhaseProfiler::depthOf(unsigned id) const
{
    unsigned depth = 0;
    for (unsigned p = phases_[id].parent; p != kNoPhase;
         p = phases_[p].parent) {
        ++depth;
    }
    return depth;
}

void
PhaseProfiler::writeJson(JsonWriter &jw, const std::string &key) const
{
    jw.beginArray(key);
    for (unsigned i = 0; i < phases_.size(); ++i) {
        const Phase &p = phases_[i];
        jw.beginObject();
        jw.field("name", p.name);
        jw.field("parent", p.parent == kNoPhase
                               ? ""
                               : phases_[p.parent].name);
        jw.field("calls", p.calls);
        jw.field("sampledCalls", p.sampledCalls);
        jw.field("estimatedMs", (double)estimatedNs(i) / 1e6);
        jw.field("avgNs",
                 p.sampledCalls
                     ? (double)p.sampledNs / (double)p.sampledCalls
                     : 0.0);
        jw.endObject();
    }
    jw.endArray();
}

std::string
PhaseProfiler::render() const
{
    const uint64_t total = totalEstimatedNs();
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-24s %12s %10s %10s %7s\n", "phase", "calls",
                  "sampled", "est ms", "share");
    out += line;
    // Depth-first over the registration order (parents are always
    // registered before their children).
    std::vector<unsigned> order;
    std::vector<unsigned> stack;
    for (unsigned i = 0; i < phases_.size(); ++i) {
        if (phases_[i].parent == kNoPhase)
            stack.push_back(i);
    }
    // Preserve registration order for roots and siblings.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
        order.push_back(*it);
    stack.assign(order.rbegin(), order.rend());
    order.clear();
    while (!stack.empty()) {
        unsigned id = stack.back();
        stack.pop_back();
        order.push_back(id);
        for (unsigned i = phases_.size(); i-- > 0;) {
            if (phases_[i].parent == id)
                stack.push_back(i);
        }
    }
    for (unsigned id : order) {
        const Phase &p = phases_[id];
        std::string name(2 * depthOf(id), ' ');
        name += p.name;
        uint64_t ns = estimatedNs(id);
        // sampledCalls sits next to calls so a reader can judge how
        // much confidence the scaled estimate deserves for
        // rarely-entered phases.
        std::snprintf(line, sizeof(line),
                      "  %-24s %12llu %10llu %10.2f %6.1f%%\n",
                      name.c_str(), (unsigned long long)p.calls,
                      (unsigned long long)p.sampledCalls,
                      (double)ns / 1e6,
                      total ? 100.0 * (double)ns / (double)total
                            : 0.0);
        out += line;
    }
    return out;
}

} // namespace xbs
