/**
 * @file
 * Host-time self-profiling: where does the simulator spend
 * *wall-clock* time? The simulated-cycle observability layer
 * (probe/interval stats) answers "what did the modeled machine do";
 * this layer answers "why is the simulation itself fast or slow",
 * which is what the ROADMAP's "as fast as the hardware allows" goal
 * needs to be measurable.
 *
 * A PhaseProfiler holds a small static tree of named phases (run /
 * fetch / build / array / predict / trace-decode). Hot-path code
 * opens a phase with an RAII ScopedPhase; the profiler reads the
 * monotonic clock for only one in every 2^sampleShift entries of each
 * phase and scales the sampled time by the call count, so per-cycle
 * phases cost one counter increment and a mask in the common case.
 * That keeps the measured overhead of `xbsim --profile` within the
 * <=2% budget asserted by tests/test_prof.cc.
 *
 * Periodic sampling can alias with periodic simulator behavior; for
 * the coarse phase attribution this layer provides (tens of percent,
 * not microseconds) that bias is negligible, and the estimate for a
 * phase converges as calls accumulate.
 */

#ifndef XBS_PROF_PHASE_PROFILER_HH
#define XBS_PROF_PHASE_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "prof/perf_counters.hh"

namespace xbs
{

class PhaseProfiler
{
  public:
    /** Sentinel phase id: a ScopedPhase on it is a no-op. */
    static constexpr unsigned kNoPhase = ~0u;

    /** @param sample_shift time 1 of every 2^shift calls per phase */
    explicit PhaseProfiler(unsigned sample_shift = 6)
        : sampleMask_((1u << sample_shift) - 1)
    {
    }

    PhaseProfiler(const PhaseProfiler &) = delete;
    PhaseProfiler &operator=(const PhaseProfiler &) = delete;

    /**
     * Register a phase under @p parent (kNoPhase: a root). Phases
     * are identified by (name, parent), so a second definePhase with
     * the same coordinates returns the existing id — frontends and
     * their components can attach independently without colliding.
     */
    unsigned definePhase(const std::string &name,
                         unsigned parent = kNoPhase);

    /** One profiled phase's accumulated state. */
    struct Phase
    {
        std::string name;
        unsigned parent = kNoPhase;
        uint64_t calls = 0;         ///< every entry, sampled or not
        uint64_t sampledCalls = 0;  ///< entries that were timed
        uint64_t sampledNs = 0;     ///< clock time of timed entries
    };

    const std::vector<Phase> &phases() const { return phases_; }

    /** Scaled estimate: sampledNs * calls / sampledCalls. */
    uint64_t estimatedNs(unsigned id) const;

    /** Sum of root-phase estimates (the profiled total). */
    uint64_t totalEstimatedNs() const;

    /**
     * Enter accounting for phase @p id; returns true when this entry
     * should be timed (the caller then reports the duration through
     * commit()). Hot path: one increment + one mask test.
     */
    bool
    arm(unsigned id)
    {
        Phase &p = phases_[id];
        return (p.calls++ & (uint64_t)sampleMask_) == 0;
    }

    /** Record one timed entry of @p ns on phase @p id. */
    void
    commit(unsigned id, uint64_t ns)
    {
        Phase &p = phases_[id];
        ++p.sampledCalls;
        p.sampledNs += ns;
    }

    /**
     * Emit as a JSON array member @p key: one object per phase with
     * name, parent name, calls, and the scaled time estimate.
     */
    void writeJson(JsonWriter &jw,
                   const std::string &key = "phases") const;

    /** Indented text tree: phase, calls, est ms, share of root. */
    std::string render() const;

    /// @{ Host perf-counter attribution (see prof/perf_counters.hh).

    /**
     * Attribute @p grp's counters per phase by snapshotting at
     * ScopedPhase boundaries. Only wall-clock-sampled entries are
     * candidates, and of those only 1 in 2^perf_shift is
     * snapshotted (a group read is a syscall, ~50x a clock read),
     * which keeps --perf inside the same <=2% budget as --profile.
     */
    void attachPerf(PerfCounterGroup *grp, unsigned perf_shift = 6);

    bool perfAttached() const { return perf_ != nullptr; }
    const PerfCounterGroup *perfGroup() const { return perf_; }

    /** Begin a perf window on an *armed* entry of @p id; the
     *  returned snapshot is invalid on the entries this phase's
     *  perf subsample skips. */
    PerfCounterGroup::Snapshot perfEnter(unsigned id);

    /** Close the window opened by perfEnter() (begin.valid true). */
    void perfExit(unsigned id, const PerfCounterGroup::Snapshot &begin);

    /** Scaled counter deltas accumulated on phase @p id. */
    const PerfDelta &phasePerf(unsigned id) const
    {
        return perfPhases_[id].delta;
    }

    /**
     * Emit per-phase perf attribution as array member @p key: one
     * object per phase carrying a "perf" sub-object with scaled
     * counts and derived IPC / MPKI / branch-miss rates. Phases
     * with no perf samples are skipped.
     */
    void writePerfJson(JsonWriter &jw,
                       const std::string &key = "phases") const;

    /// @}

  private:
    unsigned depthOf(unsigned id) const;

    /** Per-phase perf sampling state, indexed like phases_. */
    struct PhasePerf
    {
        uint64_t armed = 0;  ///< wall-clock-sampled entries seen
        PerfDelta delta;
    };

    unsigned sampleMask_;
    std::vector<Phase> phases_;
    PerfCounterGroup *perf_ = nullptr;
    unsigned perfMask_ = 0;
    std::vector<PhasePerf> perfPhases_;
};

/**
 * RAII scope for one phase entry. Null profiler or kNoPhase id makes
 * construction and destruction each a single branch, so instrumented
 * code pays nothing when profiling is off.
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler *prof, unsigned id)
    {
        if (prof && id != PhaseProfiler::kNoPhase && prof->arm(id)) {
            prof_ = prof;
            id_ = id;
            // The perf window opens before the wall clock starts so
            // the group-read syscall is not charged to the phase's
            // time estimate.
            if (prof->perfAttached())
                perfBegin_ = prof->perfEnter(id);
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ScopedPhase()
    {
        if (prof_) {
            auto ns = std::chrono::duration_cast<
                          std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
            prof_->commit(id_, (uint64_t)ns);
            if (perfBegin_.valid)
                prof_->perfExit(id_, perfBegin_);
        }
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *prof_ = nullptr;
    unsigned id_ = 0;
    std::chrono::steady_clock::time_point start_;
    PerfCounterGroup::Snapshot perfBegin_;
};

} // namespace xbs

#endif // XBS_PROF_PHASE_PROFILER_HH
