/**
 * @file
 * The bench.json layer: one run-level performance artifact per sweep,
 * and the regression comparison against a checked-in baseline.
 *
 * Pipeline (see docs/MODEL.md "Profiling & regression tracking"):
 *
 *   xbatch sweep  ->  <dir>/report.json + <dir>/intervals/job-N.jsonl
 *   xbagg         ->  bench.json   (this file's aggregate half)
 *   xbregress     ->  delta table + exit code (the compare half)
 *
 * bench.json carries, per (frontend, workload, geometry) cell, the
 * paper metrics (uop miss rate, bandwidth, overall uops/cycle) with
 * p50/p95/p99 interval-bandwidth percentiles, plus host-performance
 * metrics (CPU seconds, peak RSS, uops per host second), stamped
 * with build provenance so baselines are never compared across
 * incompatible builds.
 *
 * Aggregation degrades gracefully: a job with a torn or missing
 * interval file keeps its paper metrics and simply lacks (or
 * truncates) the interval percentiles, with the damage flagged.
 */

#ifndef XBS_PROF_BENCH_IO_HH
#define XBS_PROF_BENCH_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attrib/rollup.hh"
#include "common/status.hh"
#include "prof/build_info.hh"

namespace xbs
{

/** Host-side resource totals (per row: one job; top level: sweep). */
struct BenchHost
{
    bool has = false;
    double seconds = 0.0;        ///< wall time
    double userSec = 0.0;
    double sysSec = 0.0;
    uint64_t maxRssKb = 0;
    double uopsPerHostSec = 0.0; ///< totalUops / cpu seconds

    double cpuSec() const { return userSec + sysSec; }
};

/** Host microarchitecture counters from the child's --perf group
 *  (per row: one job; top level: sweep-wide sums; derived rates are
 *  recomputed from the sums, never summed themselves). Absent
 *  (has==false) whenever the sweep ran without --perf or
 *  perf_event_open was unavailable on the host. */
struct BenchPerf
{
    bool has = false;
    double cycles = 0.0;
    double instructions = 0.0;
    double cacheRefs = 0.0;
    double cacheMisses = 0.0;
    double branches = 0.0;
    double branchMisses = 0.0;

    double
    ipc() const
    {
        return cycles > 0.0 ? instructions / cycles : 0.0;
    }
    double
    cacheMpki() const
    {
        return instructions > 0.0
                   ? cacheMisses * 1000.0 / instructions
                   : 0.0;
    }
    double
    branchMissRate() const
    {
        return branches > 0.0 ? branchMisses / branches : 0.0;
    }
};

/**
 * Streaming statistics over one row's interval-bandwidth series
 * (batch-means 95% CI; see src/obs/stats), or — at the top level —
 * the t-interval over the row means (sweep-wide dispersion). ciValid
 * is false when the estimator had insufficient data; gates then fall
 * back to the legacy raw-threshold comparison.
 */
struct BenchStats
{
    bool has = false;
    uint64_t windows = 0;   ///< samples behind the estimate
    double mean = 0.0;
    double var = 0.0;
    double lag1 = 0.0;
    bool ciValid = false;
    double ci95 = 0.0;      ///< half-width (mean +- ci95)
    uint64_t batches = 0;
    uint64_t batchSize = 0;
};

/** Interval-bandwidth rollup over one job's JSONL window stream. */
struct BenchIntervals
{
    bool has = false;
    bool torn = false;     ///< stream ended in a malformed line
    uint64_t windows = 0;  ///< complete windows used
    double bwP50 = 0.0;
    double bwP95 = 0.0;
    double bwP99 = 0.0;
    /// @{ Host-IPC percentiles over windows carrying a --perf
    ///    annotation (0 ipcWindows: the stream had none).
    uint64_t ipcWindows = 0;
    double ipcP50 = 0.0;
    double ipcP95 = 0.0;
    double ipcP99 = 0.0;
    /// @}
};

/** One (frontend, workload, geometry) cell of the sweep. */
struct BenchRow
{
    std::string id;        ///< "xbc/gcc@32768" (RunSpec::label form)
    std::string frontend;
    std::string workload;
    uint64_t capacity = 0;

    double missRate = 0.0;
    double bandwidth = 0.0;
    double overallIpc = 0.0;
    uint64_t cycles = 0;
    uint64_t totalUops = 0;

    BenchHost host;
    BenchPerf perf;
    BenchIntervals intervals;
    BenchStats bwStats;   ///< interval-bandwidth CI (src/obs/stats)
    AttribRollup attrib;  ///< root-cause rollup (has==false: absent)
};

/** The whole artifact. */
struct BenchReport
{
    int version = 1;
    BuildInfo build;
    uint64_t jobsTotal = 0;
    uint64_t jobsOk = 0;
    uint64_t jobsFailed = 0;
    double wallSeconds = 0.0;
    uint64_t intervalCycles = 0;  ///< 0: sweep ran without intervals
    std::vector<BenchRow> rows;   ///< ok jobs only, matrix order
    BenchHost host;               ///< sweep-wide rollup
    BenchPerf perf;               ///< sweep-wide counter sums
    BenchStats bwStats;           ///< t-interval over row bw means
};

/**
 * Merge @p dir/report.json and @p dir/<intervalDir>/job-<id>.jsonl
 * into a BenchReport. Fails only when report.json itself is missing
 * or malformed; per-job interval damage degrades the affected row.
 */
Expected<BenchReport> aggregateSweepDir(const std::string &dir);

/** Serialize (pretty, stable member order). */
std::string renderBenchJson(const BenchReport &report);

/** Parse a bench.json document. */
Expected<BenchReport> parseBenchJson(const std::string &text,
                                     const std::string &path);

/** Slurp + parse. */
Expected<BenchReport> readBenchFile(const std::string &path);

/// ------------------------------------------------------------------
/// Regression comparison.

enum class MetricVerdict
{
    Pass,           ///< within threshold (or improved)
    Warn,           ///< worse beyond threshold, but not gated
    Regress,        ///< worse beyond threshold, gated
    MissingMetric,  ///< baseline has it, current does not
    /** Statistical comparison only: the CIs overlap but are too wide
     *  to detect a tolerance-sized drift — the verdict is "cannot
     *  tell", reported as a typed warning, never a failure. */
    LowPower,
};

const char *metricVerdictName(MetricVerdict v);

/** One compared metric. */
struct MetricDelta
{
    std::string name;      ///< "xbc/gcc@32768.missRate"
    double baseline = 0.0;
    double current = 0.0;
    double rel = 0.0;      ///< (current - baseline) / |baseline|
    double tol = 0.0;      ///< relative threshold applied
    bool host = false;     ///< host-perf metric (loose/warn class)
    bool improved = false; ///< better beyond threshold
    MetricVerdict verdict = MetricVerdict::Pass;
    /// @{ Statistical comparison (both sides carried valid CIs):
    ///    the interval half-widths and the Welch t statistic with
    ///    its Welch-Satterthwaite degrees of freedom.
    bool statistical = false;
    double ci95Base = 0.0;
    double ci95Cur = 0.0;
    double welchT = 0.0;
    double welchDf = 0.0;
    /// @}
};

struct RegressOptions
{
    double paperTol = 0.005;  ///< paper metrics: +-0.5% relative
    double hostTol = 0.50;    ///< host metrics: +-50% relative
    bool gateHost = false;    ///< host regressions fail (vs warn)
    bool allowBuildMismatch = false;
};

struct RegressReport
{
    std::vector<MetricDelta> deltas;
    std::vector<std::string> buildNotes;  ///< soft build differences
    /** One line per regressed row naming the attribution category
     *  that moved the most (both sides need attrib data). */
    std::vector<std::string> attribNotes;
    bool buildMismatch = false;  ///< hard (type/sanitizer) mismatch
    bool buildGated = false;     ///< mismatch counts as a failure
    std::size_t compared = 0;
    std::size_t regressions = 0;
    std::size_t warnings = 0;
    std::size_t missing = 0;
    std::size_t improvements = 0;
    std::size_t statistical = 0;  ///< metrics decided by CI overlap
    std::size_t lowPower = 0;     ///< of which: verdict LowPower

    bool
    pass() const
    {
        return !buildGated && regressions == 0 && missing == 0;
    }
};

/** Compare @p current against @p baseline metric-for-metric. */
RegressReport compareBench(const BenchReport &current,
                           const BenchReport &baseline,
                           const RegressOptions &opts);

/**
 * Render the delta table (common/table). With @p all false only
 * non-Pass and improved rows are shown; the summary line always is.
 */
std::string renderRegressTable(const RegressReport &report, bool all);

/**
 * The BENCH_<n>.json trajectory record: comparison verdict + counts
 * plus the full current bench report, so one file carries both "did
 * we regress" and "what were the numbers".
 */
std::string renderBenchRecord(const BenchReport &current,
                              const RegressReport &regress,
                              const std::string &baseline_path);

} // namespace xbs

#endif // XBS_PROF_BENCH_IO_HH
