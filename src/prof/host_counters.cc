#include "prof/host_counters.hh"

#include <sys/resource.h>

namespace xbs
{

HostCounters
HostCounters::fromRusage(const ::rusage &ru)
{
    HostCounters hc;
    // Linux reports ru_maxrss in KiB already.
    hc.maxRssKb = (uint64_t)ru.ru_maxrss;
    hc.userSec = (double)ru.ru_utime.tv_sec +
                 (double)ru.ru_utime.tv_usec / 1e6;
    hc.sysSec = (double)ru.ru_stime.tv_sec +
                (double)ru.ru_stime.tv_usec / 1e6;
    hc.minorFaults = (uint64_t)ru.ru_minflt;
    hc.majorFaults = (uint64_t)ru.ru_majflt;
    hc.volCtxSw = (uint64_t)ru.ru_nvcsw;
    hc.involCtxSw = (uint64_t)ru.ru_nivcsw;
    // Block I/O distinguishes trace-decode read pressure from CPU
    // time in sweep reports.
    hc.inBlock = (uint64_t)ru.ru_inblock;
    hc.outBlock = (uint64_t)ru.ru_oublock;
    return hc;
}

HostCounters
HostCounters::self()
{
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) != 0)
        return HostCounters{};
    return fromRusage(ru);
}

void
HostCounters::writeJson(JsonWriter &jw, const std::string &key) const
{
    jw.beginObject(key);
    jw.field("maxRssKb", maxRssKb);
    jw.field("userSec", userSec);
    jw.field("sysSec", sysSec);
    jw.field("minorFaults", minorFaults);
    jw.field("majorFaults", majorFaults);
    jw.field("volCtxSw", volCtxSw);
    jw.field("involCtxSw", involCtxSw);
    jw.field("inBlock", inBlock);
    jw.field("outBlock", outBlock);
    jw.endObject();
}

void
ThroughputMeter::reset()
{
    start_ = Clock::now();
    last_ = start_;
    lastCycles_ = 0;
    lastUops_ = 0;
    lastRecords_ = 0;
    running_ = true;
}

ThroughputMeter::Rates
ThroughputMeter::sample(uint64_t cycles, uint64_t uops,
                        uint64_t records)
{
    if (!running_)
        reset();
    const auto now = Clock::now();
    Rates r;
    r.wallSeconds =
        std::chrono::duration<double>(now - start_).count();
    r.windowSeconds =
        std::chrono::duration<double>(now - last_).count();
    // Sub-tick windows (coarse clocks, two samples in the same
    // timer tick) would divide by ~0 and put inf/absurd rates into
    // JSONL output. Report zero rates for this sample and keep the
    // window open: the deltas roll into the next sample, whose
    // longer window then yields an honest rate.
    if (r.windowSeconds < kMinWindowSec)
        return r;
    r.cyclesPerSec =
        (double)(cycles - lastCycles_) / r.windowSeconds;
    r.uopsPerSec = (double)(uops - lastUops_) / r.windowSeconds;
    r.recordsPerSec =
        (double)(records - lastRecords_) / r.windowSeconds;
    last_ = now;
    lastCycles_ = cycles;
    lastUops_ = uops;
    lastRecords_ = records;
    return r;
}

ThroughputMeter::Rates
ThroughputMeter::overall(uint64_t cycles, uint64_t uops,
                         uint64_t records) const
{
    Rates r;
    if (!running_)
        return r;
    r.wallSeconds = std::chrono::duration<double>(Clock::now() -
                                                  start_).count();
    r.windowSeconds = r.wallSeconds;
    if (r.wallSeconds >= kMinWindowSec) {
        r.cyclesPerSec = (double)cycles / r.wallSeconds;
        r.uopsPerSec = (double)uops / r.wallSeconds;
        r.recordsPerSec = (double)records / r.wallSeconds;
    }
    return r;
}

} // namespace xbs
