#include "prof/build_info.hh"

// The provenance macros are injected for this one translation unit by
// src/prof/CMakeLists.txt so a configure-time change rebuilds only
// this file.
#ifndef XBS_BUILD_TYPE
#define XBS_BUILD_TYPE "unknown"
#endif
#ifndef XBS_SOURCE_REV
#define XBS_SOURCE_REV "unknown"
#endif
#ifndef XBS_CXX_FLAGS
#define XBS_CXX_FLAGS ""
#endif

namespace xbs
{

namespace
{

std::string
compilerString()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

bool
isSanitized()
{
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    return true;
#endif
#endif
    // UBSan defines no feature macro with gcc; fall back to the
    // configure-time flags.
    return std::string(XBS_CXX_FLAGS).find("-fsanitize") !=
           std::string::npos;
}

} // anonymous namespace

const BuildInfo &
buildInfo()
{
    static const BuildInfo info = [] {
        BuildInfo b;
        b.compiler = compilerString();
        b.buildType = XBS_BUILD_TYPE;
        b.flags = XBS_CXX_FLAGS;
        b.source = XBS_SOURCE_REV;
        b.cxxStandard = (uint64_t)__cplusplus;
        b.sanitized = isSanitized();
        return b;
    }();
    return info;
}

void
writeBuildInfoJson(JsonWriter &jw, const BuildInfo &info,
                   const std::string &key)
{
    jw.beginObject(key);
    jw.field("compiler", info.compiler);
    jw.field("buildType", info.buildType);
    jw.field("flags", info.flags);
    jw.field("source", info.source);
    jw.field("cxxStandard", info.cxxStandard);
    jw.field("sanitized", info.sanitized);
    jw.endObject();
}

BuildInfo
parseBuildInfoJson(const JsonValue &obj)
{
    BuildInfo b;
    if (const JsonValue *v = obj.find("compiler"))
        b.compiler = v->asString();
    if (const JsonValue *v = obj.find("buildType"))
        b.buildType = v->asString();
    if (const JsonValue *v = obj.find("flags"))
        b.flags = v->asString();
    if (const JsonValue *v = obj.find("source"))
        b.source = v->asString();
    if (const JsonValue *v = obj.find("cxxStandard"))
        b.cxxStandard = v->asUint();
    if (const JsonValue *v = obj.find("sanitized"))
        b.sanitized = v->isBool() && v->boolValue;
    return b;
}

bool
buildCompatible(const BuildInfo &a, const BuildInfo &b,
                std::vector<std::string> *soft_diffs)
{
    if (soft_diffs) {
        if (a.compiler != b.compiler) {
            soft_diffs->push_back("compiler: '" + a.compiler +
                                  "' vs '" + b.compiler + "'");
        }
        if (a.flags != b.flags) {
            soft_diffs->push_back("flags: '" + a.flags + "' vs '" +
                                  b.flags + "'");
        }
        if (a.source != b.source) {
            soft_diffs->push_back("source: '" + a.source + "' vs '" +
                                  b.source + "'");
        }
    }
    return a.buildType == b.buildType && a.sanitized == b.sanitized;
}

} // namespace xbs
