/**
 * @file
 * Host microarchitecture self-profiling: a perf_event_open counter
 * group (cycles, instructions, cache-references/misses,
 * branch-instructions/misses, plus optional dTLB/LLC miss events
 * probed at startup) read atomically via the group-read format.
 *
 * PhaseProfiler snapshots the group at the same sampled ScopedPhase
 * boundaries the wall-clock path already uses, so `xbsim --perf`
 * attributes host IPC / cache MPKI / branch-miss rate per phase at
 * the existing <=2% overhead budget — the instrument the hot-loop
 * rewrite (ROADMAP item 2) will be measured against.
 *
 * The kernel time-multiplexes conflicting groups; every snapshot
 * carries TIME_ENABLED/TIME_RUNNING so deltas are scaled up by
 * enabled/running (the standard perf extrapolation). Degradation is
 * graceful and typed: EACCES/EPERM (perf_event_paranoid, containers)
 * or ENOSYS (kernels without perf) leaves the group unavailable with
 * a machine-readable reason ("denied: ..." / "unsupported: ...") and
 * paper metrics byte-identical. Set XBS_PERF_DENY=eacces|paranoid|
 * enosys to force a denial path deterministically (tests, CI).
 */

#ifndef XBS_PROF_PERF_COUNTERS_HH
#define XBS_PROF_PERF_COUNTERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace xbs
{

/**
 * Multiplex-scaled counter deltas over one or more snapshot pairs.
 * Counts are doubles: each delta is scaled by its own
 * enabled/running ratio, so accumulated values are estimates (like
 * perf-stat's scaled output), not exact event counts.
 */
struct PerfDelta
{
    uint64_t samples = 0;     ///< snapshot pairs accumulated
    double cycles = 0.0;
    double instructions = 0.0;
    double cacheRefs = 0.0;
    double cacheMisses = 0.0;
    double branches = 0.0;
    double branchMisses = 0.0;
    double dtlbMisses = 0.0;  ///< optional event; 0 when absent
    double llcMisses = 0.0;   ///< optional event; 0 when absent
    double enabledNs = 0.0;   ///< sum of TIME_ENABLED deltas
    double runningNs = 0.0;   ///< sum of TIME_RUNNING deltas

    void add(const PerfDelta &o);

    /// @{ Derived rates (0 when the denominator is 0).
    double ipc() const;            ///< instructions per host cycle
    double cacheMpki() const;      ///< cache misses per 1k instrs
    double branchMissRate() const; ///< branch misses / branches
    /** Fraction of enabled time the group was actually counting
     *  (1.0 = never multiplexed out). */
    double multiplexFraction() const;
    /// @}

    /** Emit base counters + derived rates as object member @p key. */
    void writeJson(JsonWriter &jw, const std::string &key) const;
};

/**
 * One perf_event counter group on the calling process (all CPUs),
 * cycles as the leader so members are scheduled — and multiplexed —
 * as a unit and a single read() yields a consistent snapshot.
 */
class PerfCounterGroup
{
  public:
    /** Fixed slots in the group-read value array. */
    enum Slot
    {
        kCycles = 0,
        kInstructions,
        kCacheRefs,
        kCacheMisses,
        kBranches,
        kBranchMisses,
        kDtlbMisses,  ///< optional, probed at open
        kLlcMisses,   ///< optional, probed at open
        kMaxEvents
    };

    PerfCounterGroup() = default;
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /**
     * Open the group on the calling process. Failure to open the
     * six core events marks the whole group unavailable with a
     * typed reason; the optional dTLB/LLC events are probed
     * individually and silently skipped where unsupported.
     */
    bool open();

    bool available() const { return groupFd_ >= 0; }

    /** Why open() failed: "denied: ...", "unsupported: ...", or
     *  "error: ..."; empty while available. */
    const std::string &unavailableReason() const { return reason_; }

    bool hasDtlb() const { return present_[kDtlbMisses]; }
    bool hasLlc() const { return present_[kLlcMisses]; }

    /** Names of the events actually counting, in slot order. */
    std::vector<std::string> eventNames() const;

    /** One atomic group read. */
    struct Snapshot
    {
        bool valid = false;
        uint64_t timeEnabled = 0;  ///< ns the group was scheduled-in
        uint64_t timeRunning = 0;  ///< ns it was actually counting
        uint64_t raw[kMaxEvents] = {};
    };

    /** Read the group now; invalid snapshot when unavailable. */
    Snapshot read() const;

    /**
     * end - begin, scaled by the pair's own enabled/running ratio
     * (the multiplexing extrapolation: scaled = raw * dEnabled /
     * dRunning). Pure so tests can drive the math on synthetic
     * snapshots. Slots reported absent are left at zero.
     */
    static PerfDelta scale(const Snapshot &begin, const Snapshot &end,
                           const bool present[kMaxEvents]);

    /** scale() with this group's probed event set. */
    PerfDelta delta(const Snapshot &begin, const Snapshot &end) const;

  private:
    int groupFd_ = -1;
    int fds_[kMaxEvents];
    bool present_[kMaxEvents] = {};
    unsigned nrEvents_ = 0;  ///< events in the kernel's value array
    std::string reason_;
};

} // namespace xbs

#endif // XBS_PROF_PERF_COUNTERS_HH
