#include "prof/perf_counters.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace xbs
{

namespace
{

/** Slot metadata: human name + perf event coordinates. */
struct EventDef
{
    const char *name;
    uint32_t type;
    uint64_t config;
    bool optional;
};

#ifdef __linux__
constexpr uint64_t
hwCache(uint64_t id, uint64_t op, uint64_t result)
{
    return id | (op << 8) | (result << 16);
}
#endif

const EventDef kEvents[PerfCounterGroup::kMaxEvents] = {
#ifdef __linux__
    {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, false},
    {"instructions", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS, false},
    {"cacheRefs", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_REFERENCES, false},
    {"cacheMisses", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_MISSES, false},
    {"branches", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_INSTRUCTIONS, false},
    {"branchMisses", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES, false},
    {"dtlbMisses", PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS),
     true},
    {"llcMisses", PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS),
     true},
#else
    {"cycles", 0, 0, false},       {"instructions", 0, 0, false},
    {"cacheRefs", 0, 0, false},    {"cacheMisses", 0, 0, false},
    {"branches", 0, 0, false},     {"branchMisses", 0, 0, false},
    {"dtlbMisses", 0, 0, true},    {"llcMisses", 0, 0, true},
#endif
};

/** Typed reason string for a perf_event_open failure. */
std::string
reasonFor(int err)
{
    if (err == EACCES || err == EPERM) {
        return std::string("denied: perf_event_open: ") +
               std::strerror(err) +
               " (check /proc/sys/kernel/perf_event_paranoid)";
    }
    if (err == ENOSYS) {
        return "unsupported: kernel built without "
               "perf_event_open";
    }
    if (err == ENOENT || err == EOPNOTSUPP) {
        return std::string("unsupported: event not available: ") +
               std::strerror(err);
    }
    return std::string("error: perf_event_open: ") +
           std::strerror(err);
}

/** XBS_PERF_DENY simulates a denial for tests and CI legs that
 *  need the unavailable path on unrestricted kernels. */
const char *
simulatedDenial()
{
    const char *deny = std::getenv("XBS_PERF_DENY");
    if (!deny || !*deny)
        return nullptr;
    if (std::strcmp(deny, "enosys") == 0)
        return "unsupported: kernel built without perf_event_open";
    // "eacces", "paranoid", or anything else: the common container
    // shape, a perf_event_paranoid denial.
    return "denied: perf_event_open: Permission denied (check "
           "/proc/sys/kernel/perf_event_paranoid)";
}

} // anonymous namespace

void
PerfDelta::add(const PerfDelta &o)
{
    samples += o.samples;
    cycles += o.cycles;
    instructions += o.instructions;
    cacheRefs += o.cacheRefs;
    cacheMisses += o.cacheMisses;
    branches += o.branches;
    branchMisses += o.branchMisses;
    dtlbMisses += o.dtlbMisses;
    llcMisses += o.llcMisses;
    enabledNs += o.enabledNs;
    runningNs += o.runningNs;
}

double
PerfDelta::ipc() const
{
    return cycles > 0.0 ? instructions / cycles : 0.0;
}

double
PerfDelta::cacheMpki() const
{
    return instructions > 0.0 ? cacheMisses * 1000.0 / instructions
                              : 0.0;
}

double
PerfDelta::branchMissRate() const
{
    return branches > 0.0 ? branchMisses / branches : 0.0;
}

double
PerfDelta::multiplexFraction() const
{
    return enabledNs > 0.0 ? runningNs / enabledNs : 1.0;
}

void
PerfDelta::writeJson(JsonWriter &jw, const std::string &key) const
{
    jw.beginObject(key);
    jw.field("samples", samples);
    jw.fieldFull("cycles", cycles);
    jw.fieldFull("instructions", instructions);
    jw.fieldFull("cacheRefs", cacheRefs);
    jw.fieldFull("cacheMisses", cacheMisses);
    jw.fieldFull("branches", branches);
    jw.fieldFull("branchMisses", branchMisses);
    if (dtlbMisses > 0.0)
        jw.fieldFull("dtlbMisses", dtlbMisses);
    if (llcMisses > 0.0)
        jw.fieldFull("llcMisses", llcMisses);
    jw.field("ipc", ipc());
    jw.field("cacheMpki", cacheMpki());
    jw.field("branchMissRate", branchMissRate());
    jw.field("multiplexFraction", multiplexFraction());
    jw.endObject();
}

PerfCounterGroup::~PerfCounterGroup()
{
#ifdef __linux__
    for (unsigned i = 0; i < kMaxEvents; ++i) {
        if (present_[i])
            ::close(fds_[i]);
    }
#endif
    groupFd_ = -1;
}

bool
PerfCounterGroup::open()
{
    if (const char *deny = simulatedDenial()) {
        reason_ = deny;
        return false;
    }
#ifndef __linux__
    reason_ = "unsupported: perf_event_open requires Linux";
    return false;
#else
    for (unsigned i = 0; i < kMaxEvents; ++i) {
        struct perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = kEvents[i].type;
        attr.config = kEvents[i].config;
        attr.disabled = i == kCycles ? 1 : 0;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.inherit = 0;  // group reads forbid inherit
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;

        const int leader = i == kCycles ? -1 : groupFd_;
        const long fd = ::syscall(SYS_perf_event_open, &attr,
                                  /*pid=*/0, /*cpu=*/-1, leader,
                                  /*flags=*/0UL);
        if (fd < 0) {
            if (kEvents[i].optional)
                continue;  // skip the event, keep the group
            const int err = errno;
            reason_ = reasonFor(err);
            // Roll back whatever already opened.
            for (unsigned j = 0; j < i; ++j) {
                if (present_[j]) {
                    ::close(fds_[j]);
                    present_[j] = false;
                }
            }
            groupFd_ = -1;
            nrEvents_ = 0;
            return false;
        }
        fds_[i] = (int)fd;
        present_[i] = true;
        ++nrEvents_;
        if (i == kCycles)
            groupFd_ = (int)fd;
    }
    ::ioctl(groupFd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(groupFd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
#endif
}

std::vector<std::string>
PerfCounterGroup::eventNames() const
{
    std::vector<std::string> names;
    for (unsigned i = 0; i < kMaxEvents; ++i) {
        if (present_[i])
            names.push_back(kEvents[i].name);
    }
    return names;
}

PerfCounterGroup::Snapshot
PerfCounterGroup::read() const
{
    Snapshot snap;
#ifdef __linux__
    if (groupFd_ < 0)
        return snap;
    // Group-read layout: nr, time_enabled, time_running, values[nr]
    // in open order (absent optional slots simply do not appear).
    uint64_t buf[3 + kMaxEvents];
    const ssize_t want =
        (ssize_t)((3 + nrEvents_) * sizeof(uint64_t));
    if (::read(groupFd_, buf, sizeof(buf)) < want)
        return snap;
    if (buf[0] != nrEvents_)
        return snap;
    snap.timeEnabled = buf[1];
    snap.timeRunning = buf[2];
    unsigned next = 3;
    for (unsigned i = 0; i < kMaxEvents; ++i) {
        if (present_[i])
            snap.raw[i] = buf[next++];
    }
    snap.valid = true;
#endif
    return snap;
}

PerfDelta
PerfCounterGroup::scale(const Snapshot &begin, const Snapshot &end,
                        const bool present[kMaxEvents])
{
    PerfDelta d;
    if (!begin.valid || !end.valid)
        return d;
    const uint64_t d_enabled = end.timeEnabled - begin.timeEnabled;
    const uint64_t d_running = end.timeRunning - begin.timeRunning;
    d.samples = 1;
    d.enabledNs = (double)d_enabled;
    d.runningNs = (double)d_running;
    // Multiplexing extrapolation: the group only counted for
    // d_running of the d_enabled window, so scale raw deltas by
    // enabled/running. A window the group never ran in contributes
    // nothing (raw deltas are zero and the ratio is meaningless).
    if (d_running == 0)
        return d;
    const double up = (double)d_enabled / (double)d_running;
    double scaled[kMaxEvents];
    for (unsigned i = 0; i < kMaxEvents; ++i) {
        scaled[i] = present[i]
                        ? (double)(end.raw[i] - begin.raw[i]) * up
                        : 0.0;
    }
    d.cycles = scaled[kCycles];
    d.instructions = scaled[kInstructions];
    d.cacheRefs = scaled[kCacheRefs];
    d.cacheMisses = scaled[kCacheMisses];
    d.branches = scaled[kBranches];
    d.branchMisses = scaled[kBranchMisses];
    d.dtlbMisses = scaled[kDtlbMisses];
    d.llcMisses = scaled[kLlcMisses];
    return d;
}

PerfDelta
PerfCounterGroup::delta(const Snapshot &begin,
                        const Snapshot &end) const
{
    return scale(begin, end, present_);
}

} // namespace xbs
