/**
 * @file
 * Crash-point matrix: drive the durability layer through every
 * fsync/rename/append site and prove the recovery story at each.
 *
 * The hooks live in the durability code itself (common/crashpoint.hh;
 * armed via XBATCH_CRASH_AT=<site>:<n>, the victim _exit()s with
 * kCrashPointExit on the n-th visit of <site>). This harness is the
 * *driver*: for one site it forks a victim that exercises the
 * journal + result-cache write path, waits for the planted death,
 * then re-opens the state like a restarted daemon would and checks
 * the consistency contract:
 *
 *  - journal replay accepts the file (at most a torn tail, never a
 *    mid-file corruption);
 *  - every job id appears at most once as Final (no double counts);
 *  - every final that was ACKED before the crash point still exists
 *    (no lost results — the victim prints acked ids on stdout as it
 *    goes, fsync-ordered before the next step);
 *  - each cache entry either passes its guard hash or is demoted to
 *    a miss on lookup (never a half-entry served as a hit);
 *  - the journal accepts appends again after recovery (the log is
 *    usable, not wedged).
 *
 * runCrashMatrix() iterates every registered site; tests and the CI
 * chaos job call it with the tier-1 gtest binary as the victim host.
 */

#ifndef XBS_VERIFY_CRASH_MATRIX_HH
#define XBS_VERIFY_CRASH_MATRIX_HH

#include <string>
#include <vector>

#include "common/status.hh"

namespace xbs
{

/** Outcome of one site's crash-and-recover cycle. */
struct CrashSiteResult
{
    std::string site;
    bool crashed = false;     ///< the victim died at the plant
    bool recovered = false;   ///< post-crash state passed all checks
    std::string detail;       ///< first failed check (empty if ok)
};

/**
 * The victim body: exercises every durability site at least once
 * against @p dir — appends journal events (durable and group
 * committed), stores and re-reads a cache entry, rewrites a
 * whole file atomically — printing "acked <n>" lines for work that
 * was durable before proceeding. Runs to completion (exit 0) when no
 * crash point is armed; exits kCrashPointExit mid-flight when one
 * is. Exposed so a test binary can act as the victim process.
 */
int crashVictimMain(const std::string &dir);

/**
 * Fork a victim (re-executing @p victim_argv with
 * XBATCH_CRASH_AT=<site>:1 in its environment), wait for the planted
 * death, then verify recovery of @p dir. The victim argv must invoke
 * crashVictimMain against @p dir; the literal token "{DIR}" in any
 * argv element is replaced with @p dir so one argv template serves
 * every per-site scratch directory.
 */
CrashSiteResult runCrashSite(
    const std::string &site,
    const std::vector<std::string> &victim_argv,
    const std::string &dir);

/**
 * Run runCrashSite() for every registered crash-point site (see
 * crashPointSites()), each in a fresh subdirectory of @p scratch.
 */
std::vector<CrashSiteResult> runCrashMatrix(
    const std::vector<std::string> &victim_argv,
    const std::string &scratch);

/** True when every site both crashed and recovered. */
bool crashMatrixPassed(const std::vector<CrashSiteResult> &results);

} // namespace xbs

#endif // XBS_VERIFY_CRASH_MATRIX_HH
