#include "verify/divergence.hh"

#include <sstream>

#include "common/json.hh"
#include "sim/ckpt_io.hh"
#include "verify/auditor.hh"

namespace xbs
{

std::string
canonicalMetricsJson(const Frontend &fe)
{
    std::ostringstream os;
    {
        JsonWriter jw(os);
        jw.beginObject();
        const FrontendMetrics &m = fe.metrics();
        jw.field("cycles", m.cycles.value());
        jw.fieldFull("bandwidth", m.bandwidth());
        jw.fieldFull("missRate", m.missRate());
        jw.fieldFull("overallIpc", m.overallIpc());
        jw.fieldFull("condMispredictRate", m.condMispredictRate());
        fe.attrib().writeJson(jw, m.buildUops.value(),
                              m.stallCycles.value(),
                              fe.arrayAccounting());
        fe.statRoot().dumpJson(jw, /*as_member=*/true);
        jw.endObject();
    }
    return os.str();
}

namespace
{

/** First differing line of two texts, rendered "line N: a | b". */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    for (std::size_t line = 1;; ++line) {
        bool ga = (bool)std::getline(sa, la);
        bool gb = (bool)std::getline(sb, lb);
        if (!ga && !gb)
            return "";
        if (la != lb || ga != gb) {
            return "line " + std::to_string(line) +
                   ": reference '" + (ga ? la : "<eof>") +
                   "' vs restored '" + (gb ? lb : "<eof>") + "'";
        }
    }
}

} // anonymous namespace

Expected<DivergenceReport>
runDivergenceOracle(const SimConfig &config, const RunSpec &spec,
                    const Trace &trace, uint64_t checkpoint_cycle)
{
    DivergenceReport rep;
    rep.requestedCycle = checkpoint_cycle;

    // Reference: full cold run, cutting the checkpoint in memory.
    std::string bytes;
    std::unique_ptr<Frontend> ref = makeFrontend(config);
    ref->armCheckpoint(
        checkpoint_cycle, [&](Frontend &fe) -> Status {
            bytes = encodeCheckpoint(
                fe,
                makeCkptMeta(spec, trace,
                             fe.metrics().cycles.value()));
            rep.cutCycle = fe.metrics().cycles.value();
            return Status::ok();
        });
    ref->run(trace);
    if (!ref->checkpointTaken()) {
        return Status::error(
            "divergence oracle: run finished after " +
            std::to_string(ref->metrics().cycles.value()) +
            " cycles without reaching checkpoint cycle " +
            std::to_string(checkpoint_cycle));
    }
    if (!ref->checkpointStatus().isOk())
        return ref->checkpointStatus();
    rep.checkpointBytes = bytes.size();

    // Restored: fresh frontend through the full verification path.
    Expected<CheckpointFile> file = parseCheckpoint(bytes);
    if (!file.ok())
        return file.status();
    std::unique_ptr<Frontend> warm = makeFrontend(config);
    Status restored =
        restoreCheckpoint(*warm, file.value(), spec, trace);
    if (!restored.isOk())
        return restored;

    // Mandatory post-restore structural audit: the restored
    // structures must satisfy every paper invariant before a single
    // cycle is simulated on them.
    InvariantAuditor auditor;
    auditor.auditRestore(*warm, trace, rep.cutCycle);
    rep.auditViolations = auditor.violations().size();

    warm->run(trace);

    const std::string a = canonicalMetricsJson(*ref);
    const std::string b = canonicalMetricsJson(*warm);
    rep.identical = (a == b) && rep.auditViolations == 0;
    if (a != b)
        rep.detail = firstDiff(a, b);
    else if (rep.auditViolations) {
        std::ostringstream os;
        auditor.report(os);
        rep.detail = os.str();
    }
    return rep;
}

} // namespace xbs
