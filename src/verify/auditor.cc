#include "verify/auditor.hh"

#include <string>

#include "bbtc/bbtc_frontend.hh"
#include "core/xbc_frontend.hh"
#include "dc/dc_frontend.hh"
#include "tc/tc_frontend.hh"

namespace xbs
{

void
InvariantAuditor::attach(Frontend &fe, const Trace &trace)
{
    trace_ = &trace;
    violations_.clear();
    mergedOracle_ = 0;
    lastWalk_ = 0;
    watchdogFired_ = false;
    oracle_.begin(&trace);
    fe.attachOracle(&oracle_);
    fe.attachCycleObserver(this);
}

void
InvariantAuditor::onCycle(Frontend &fe, uint64_t cycle)
{
    if (opts_.interval && cycle - lastWalk_ >= opts_.interval) {
        lastWalk_ = cycle;
        structuralWalk(fe, cycle);
    }
    // Bounded-slowdown watchdog: a fault injection must degrade into
    // the IC path, not a livelock. Report once.
    if (trace_ && !watchdogFired_ && trace_->numRecords() &&
        cycle > opts_.maxCyclesPerRecord * trace_->numRecords() +
                    10000) {
        AuditViolation v;
        v.kind = AuditViolation::Kind::Accounting;
        v.where = "auditor";
        v.what = "run exceeded the bounded-slowdown ceiling (" +
                 std::to_string(cycle) + " cycles for " +
                 std::to_string(trace_->numRecords()) + " records)";
        v.cycle = cycle;
        add(std::move(v));
        watchdogFired_ = true;
    }
}

void
InvariantAuditor::auditNow(Frontend &fe, uint64_t cycle)
{
    structuralWalk(fe, cycle);
}

void
InvariantAuditor::auditRestore(Frontend &fe, const Trace &trace,
                               uint64_t cycle)
{
    const Trace *saved = trace_;
    trace_ = &trace;
    structuralWalk(fe, cycle);
    trace_ = saved;
}

void
InvariantAuditor::structuralWalk(Frontend &fe, uint64_t cycle)
{
    auto sink = [&](AuditViolation v) {
        v.cycle = cycle;
        add(std::move(v));
    };

    if (auto *xbc = dynamic_cast<XbcFrontend *>(&fe)) {
        xbc->dataArray().auditStorage(sink);
    } else if (auto *tc = dynamic_cast<TcFrontend *>(&fe)) {
        if (trace_)
            tc->cache().auditStorage(trace_->code(), sink);
    } else if (auto *dc = dynamic_cast<DcFrontend *>(&fe)) {
        dc->cache().auditStorage(sink);
    } else if (auto *bbtc = dynamic_cast<BbtcFrontend *>(&fe)) {
        if (trace_)
            bbtc->blockCache().auditStorage(trace_->code(), sink);
    }
    // IcFrontend has no decoded-cache structure; the delivery oracle
    // is the whole audit there.
}

void
InvariantAuditor::finishRun(Frontend &fe)
{
    uint64_t cycle = fe.metrics().cycles.value();
    structuralWalk(fe, cycle);
    oracle_.finish(cycle);

    // Metrics crosscheck: every uop reaches the frontend through
    // exactly one of the two supply paths, so their sum must equal
    // the trace total whenever the stream itself checked out.
    if (trace_ && oracle_.violations().empty()) {
        uint64_t supplied = fe.metrics().deliveryUops.value() +
                            fe.metrics().buildUops.value();
        if (supplied != trace_->totalUops()) {
            AuditViolation v;
            v.kind = AuditViolation::Kind::Accounting;
            v.where = "auditor";
            v.what = "deliveryUops + buildUops = " +
                     std::to_string(supplied) + ", trace has " +
                     std::to_string(trace_->totalUops());
            v.cycle = cycle;
            add(std::move(v));
        }
    }

    // Merge the oracle's findings into the unified report.
    for (; mergedOracle_ < oracle_.violations().size();
         ++mergedOracle_) {
        if (violations_.size() < opts_.maxViolations)
            violations_.push_back(oracle_.violations()[mergedOracle_]);
    }

    fe.attachOracle(nullptr);
    fe.detachCycleObserver(this);
}

void
InvariantAuditor::add(AuditViolation v)
{
    if (violations_.size() < opts_.maxViolations)
        violations_.push_back(std::move(v));
}

std::size_t
InvariantAuditor::countOf(AuditViolation::Kind kind) const
{
    std::size_t n = 0;
    for (const auto &v : violations_)
        n += v.kind == kind;
    // Oracle findings not yet merged (before finishRun).
    if (kind == AuditViolation::Kind::Oracle)
        n += oracle_.violations().size() - mergedOracle_;
    return n;
}

void
InvariantAuditor::report(std::ostream &os) const
{
    if (ok()) {
        os << "audit: clean (" << oracle_.recordsConsumed()
           << " records, " << oracle_.uopsConsumed()
           << " uops checked)\n";
        return;
    }
    os << "audit: " << violations_.size() << " violation(s)"
       << " [oracle " << countOf(AuditViolation::Kind::Oracle)
       << ", structural " << countOf(AuditViolation::Kind::Structural)
       << ", accounting " << countOf(AuditViolation::Kind::Accounting)
       << "]\n";
    for (const auto &v : violations_) {
        os << "  [" << auditKindName(v.kind) << "] " << v.where
           << " @cycle " << v.cycle << ": " << v.what << "\n";
    }
}

} // namespace xbs
