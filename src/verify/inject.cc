#include "verify/inject.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/xbc_frontend.hh"
#include "isa/types.hh"

namespace xbs
{

const char *
injectKindName(InjectKind kind)
{
    switch (kind) {
      case InjectKind::XbtbFlip: return "xbtb-flip";
      case InjectKind::XfuDrop: return "xfu-drop";
      case InjectKind::LineKill: return "line-kill";
      case InjectKind::SlotCorrupt: return "slot-corrupt";
      case InjectKind::TraceFlip: return "trace-flip";
      case InjectKind::TraceTrunc: return "trace-trunc";
      case InjectKind::Hang: return "hang";
      case InjectKind::CkptFlip: return "ckpt-flip";
    }
    return "?";
}

Expected<InjectPlan>
parseInjectSpec(const std::string &spec)
{
    InjectPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty()) {
            return Status::error(
                "empty action in inject spec '" + spec + "'");
        }

        InjectAction action;
        std::string kind = tok;
        std::size_t at = tok.find('@');
        if (at != std::string::npos) {
            kind = tok.substr(0, at);
            std::string num = tok.substr(at + 1);
            if (num.empty() ||
                num.find_first_not_of("0123456789") !=
                    std::string::npos) {
                return Status::error("bad period in inject action '" +
                                     tok + "'");
            }
            action.period = std::stoull(num);
            if (action.period == 0) {
                return Status::error(
                    "inject action '" + tok +
                    "' needs a non-zero period");
            }
        }

        if (kind == "xbtb-flip") {
            action.kind = InjectKind::XbtbFlip;
        } else if (kind == "xfu-drop") {
            action.kind = InjectKind::XfuDrop;
        } else if (kind == "line-kill") {
            action.kind = InjectKind::LineKill;
        } else if (kind == "slot-corrupt") {
            action.kind = InjectKind::SlotCorrupt;
        } else if (kind == "trace-flip") {
            action.kind = InjectKind::TraceFlip;
        } else if (kind == "trace-trunc") {
            action.kind = InjectKind::TraceTrunc;
        } else if (kind == "hang") {
            action.kind = InjectKind::Hang;
        } else if (kind == "ckpt-flip") {
            action.kind = InjectKind::CkptFlip;
        } else {
            return Status::error("unknown inject kind '" + kind +
                                 "' (see --help for the grammar)");
        }
        if (action.period == 0) {
            bool trace_domain =
                action.kind == InjectKind::TraceFlip ||
                action.kind == InjectKind::TraceTrunc;
            bool ckpt_domain = action.kind == InjectKind::CkptFlip;
            action.period =
                ckpt_domain ? 1 : (trace_domain ? 8 : 10000);
        }
        plan.actions.push_back(action);

        if (comma == spec.size())
            break;
    }
    if (plan.actions.empty())
        return Status::error("empty inject spec");
    return plan;
}

Trace
FaultInjector::prepareTrace(const Trace &in)
{
    std::vector<TraceRecord> records;
    records.reserve(in.numRecords());
    for (std::size_t i = 0; i < in.numRecords(); ++i)
        records.push_back(in.record(i));

    for (const auto &a : plan_.actions) {
        if (a.kind == InjectKind::TraceFlip) {
            // Flip the direction of random conditional-branch
            // records. The record *stream* stays the authority on
            // the executed path, so the trace remains digestible;
            // predictors and embedded directions now disagree with
            // it, exercising the divergence paths.
            for (uint64_t n = 0; n < a.period && !records.empty();
                 ++n) {
                std::size_t i =
                    (std::size_t)rng_.below(records.size());
                const StaticInst &si =
                    in.code().inst(records[i].staticIdx);
                if (si.cls == InstClass::CondBranch) {
                    records[i].taken ^= 1;
                    ++injections_;
                    ++counts_[(int)InjectKind::TraceFlip];
                }
            }
        } else if (a.kind == InjectKind::TraceTrunc) {
            // Cut the stream at a random point in its back half,
            // modeling a trace producer dying mid-capture.
            if (records.size() > 2) {
                std::size_t keep =
                    records.size() / 2 +
                    (std::size_t)rng_.below(records.size() / 2);
                records.resize(std::max<std::size_t>(keep, 1));
                ++injections_;
                ++counts_[(int)InjectKind::TraceTrunc];
            }
        }
    }
    return Trace(in.codePtr(), std::move(records),
                 in.name() + "+injected");
}

std::string
FaultInjector::prepareCheckpointBytes(const std::string &bytes)
{
    std::string out = bytes;
    for (const auto &a : plan_.actions) {
        if (a.kind != InjectKind::CkptFlip)
            continue;
        for (uint64_t n = 0; n < a.period && !out.empty(); ++n) {
            std::size_t bit = (std::size_t)rng_.below(out.size() * 8);
            out[bit / 8] ^= (char)(1 << (bit % 8));
            ++injections_;
            ++counts_[(int)InjectKind::CkptFlip];
        }
    }
    return out;
}

void
FaultInjector::onCycle(Frontend &fe, uint64_t cycle)
{
    for (const auto &a : plan_.actions) {
        if (a.kind == InjectKind::TraceFlip ||
            a.kind == InjectKind::TraceTrunc ||
            a.kind == InjectKind::CkptFlip) {
            continue;  // not cycle domain
        }
        if (cycle % a.period != 0)
            continue;
        if (apply(a.kind, fe)) {
            ++injections_;
            ++counts_[(int)a.kind];
        }
    }
}

bool
FaultInjector::apply(InjectKind kind, Frontend &fe)
{
    if (kind == InjectKind::Hang) {
        // Wedge here, mid-cycle: alive (signal handlers still set
        // their flags) but retiring nothing, exactly the failure
        // mode the progress-aware watchdog exists to catch. Sleep
        // rather than spin so a CI negative check doesn't burn a
        // core while waiting to be SIGKILLed.
        for (;;) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }

    auto *xbc = dynamic_cast<XbcFrontend *>(&fe);
    if (!xbc)
        return false;  // cycle-domain kinds target the XBC units

    switch (kind) {
      case InjectKind::XbtbFlip: {
        // Flip a bit in a valid prediction pointer: either an XBTB
        // successor/promotion pointer or an XiBTB slot. A corrupted
        // pointer must be rejected by the entryIdx check or miss the
        // array, never change the delivered stream.
        Xbtb &xbtb = xbc->mutableXbtb();
        XiBtb &xibtb = xbc->mutableXibtb();
        bool use_xibtb = rng_.chance(0.25) && xibtb.slotCount() > 0;
        for (unsigned attempt = 0; attempt < 32; ++attempt) {
            if (use_xibtb) {
                auto &slot = xibtb.slotAt(
                    (std::size_t)rng_.below(xibtb.slotCount()));
                if (!slot.valid || !slot.ptr.valid)
                    continue;
                slot.ptr.entryIdx ^=
                    (int32_t)(1 << rng_.below(8));
                return true;
            }
            auto &e = xbtb.entryAt(
                (std::size_t)rng_.below(xbtb.entryCount()));
            if (!e.valid)
                continue;
            XbPointer *ptrs[3] = {&e.taken, &e.fallthrough,
                                  &e.promotedPtr};
            XbPointer *p = ptrs[rng_.below(3)];
            if (!p->valid)
                continue;
            if (rng_.chance(0.5))
                p->xbIp ^= 1ull << rng_.below(16);
            else
                p->entryIdx ^= (int32_t)(1 << rng_.below(8));
            return true;
        }
        return false;
      }
      case InjectKind::XfuDrop:
        xbc->mutableFillUnit().restart();
        return true;
      case InjectKind::LineKill: {
        XbcDataArray &arr = xbc->mutableDataArray();
        for (unsigned attempt = 0; attempt < 32; ++attempt) {
            if (arr.faultInvalidateLine(
                    (std::size_t)rng_.below(arr.lineCount()))) {
                return true;
            }
        }
        return false;
      }
      case InjectKind::SlotCorrupt:
        return xbc->mutableDataArray().faultCorruptSlot(rng_);
      default:
        return false;
    }
}

std::string
FaultInjector::summary() const
{
    std::string out;
    for (int k = 0; k < kInjectKindCount; ++k) {
        if (!counts_[k])
            continue;
        if (!out.empty())
            out += ", ";
        out += std::string(injectKindName((InjectKind)k)) + " x" +
               std::to_string(counts_[k]);
    }
    return out.empty() ? "none applied" : out;
}

} // namespace xbs
