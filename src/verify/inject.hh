/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The frontends' decoded-cache structures (XBTB, XiBTB, data array,
 * XFU, trace tables) are performance hints: no corruption in them may
 * ever change the delivered uop stream, only degrade bandwidth
 * (gracefully, through the IC path). The injector damages exactly
 * those structures mid-run, deterministically from a seed, so the
 * delivery oracle can verify the claim.
 *
 * Injection spec grammar (the --inject=<spec> CLI flag):
 *
 *   spec    := action ("," action)*
 *   action  := kind ("@" period)?
 *   kind    := "xbtb-flip" | "xfu-drop" | "line-kill"
 *            | "slot-corrupt" | "trace-flip" | "trace-trunc"
 *            | "hang" | "ckpt-flip"
 *
 * Cycle-domain kinds fire every `period` cycles (default 10000):
 *   xbtb-flip     flip a bit in a valid XBTB/XiBTB pointer
 *   xfu-drop      restart the fill unit, dropping the XB in flight
 *   line-kill     invalidate a random data-array line (bookkept)
 *   slot-corrupt  corrupt a resident uop slot's content consistently
 *   hang          wedge the process at the firing cycle: sleep
 *                 forever without retiring another uop (SIGTERM only
 *                 sets the drain flag, which the loop ignores, so
 *                 only SIGKILL ends it). Works on every frontend;
 *                 exists to exercise supervisor stall detection.
 *
 * Trace-domain kinds perturb the input before the run; `period` is
 * the number of records affected (default 8):
 *   trace-flip    flip the taken bit of random cond-branch records
 *   trace-trunc   truncate the record stream at a random point
 * The run and the oracle both ground on the *injected* trace: the
 * simulator must digest it without aborting or losing instructions.
 *
 * Checkpoint-domain kind; `period` is the number of bits flipped
 * (default 1):
 *   ckpt-flip     flip seeded random bits of the checkpoint container
 *                 bytes in memory, after read and before parse (the
 *                 user's file on disk is never touched). The format
 *                 guarantees every flip is caught by the magic check,
 *                 a section CRC, or the guard hash, so the restore
 *                 must fail with a typed Corrupt status — never
 *                 crash, and never restore silently wrong state.
 */

#ifndef XBS_VERIFY_INJECT_HH
#define XBS_VERIFY_INJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/status.hh"
#include "frontend/frontend.hh"
#include "trace/trace.hh"

namespace xbs
{

enum class InjectKind
{
    XbtbFlip,
    XfuDrop,
    LineKill,
    SlotCorrupt,
    TraceFlip,
    TraceTrunc,
    Hang,
    CkptFlip,
};

/** Number of InjectKind values (per-kind count arrays). */
constexpr int kInjectKindCount = 8;

const char *injectKindName(InjectKind kind);

struct InjectAction
{
    InjectKind kind = InjectKind::XbtbFlip;
    /** Cycle-domain kinds: cycles between firings. Trace-domain
     *  kinds: number of records affected. */
    uint64_t period = 0;
};

struct InjectPlan
{
    std::vector<InjectAction> actions;

    bool
    hasTraceActions() const
    {
        for (const auto &a : actions) {
            if (a.kind == InjectKind::TraceFlip ||
                a.kind == InjectKind::TraceTrunc) {
                return true;
            }
        }
        return false;
    }

    bool
    hasCkptActions() const
    {
        for (const auto &a : actions) {
            if (a.kind == InjectKind::CkptFlip)
                return true;
        }
        return false;
    }
};

/** Parse an --inject spec; errors name the offending token. */
Expected<InjectPlan> parseInjectSpec(const std::string &spec);

class FaultInjector : public CycleObserver
{
  public:
    FaultInjector(const InjectPlan &plan, uint64_t seed)
        : plan_(plan), rng_(seed ? seed : 1)
    {
    }

    /**
     * Apply the plan's trace-domain actions to @p in and return the
     * injected trace (a copy of @p in when none apply). Run the
     * frontend — and ground the oracle — on the returned trace.
     */
    Trace prepareTrace(const Trace &in);

    /**
     * Apply the plan's ckpt-flip actions to checkpoint container
     * bytes in memory (a copy of @p bytes when none apply): each
     * action flips `period` seeded random bits. The source file is
     * never modified.
     */
    std::string prepareCheckpointBytes(const std::string &bytes);

    /** CycleObserver: applies due cycle-domain actions to @p fe
     *  (XBC-specific kinds are no-ops on other frontends). */
    void onCycle(Frontend &fe, uint64_t cycle) override;

    /** Total faults actually applied (including trace records). */
    uint64_t injections() const { return injections_; }

    /** One-line per-kind summary for reports. */
    std::string summary() const;

    const InjectPlan &plan() const { return plan_; }

  private:
    bool apply(InjectKind kind, Frontend &fe);

    InjectPlan plan_;
    Rng rng_;
    uint64_t injections_ = 0;
    uint64_t counts_[kInjectKindCount] = {};
};

} // namespace xbs

#endif // XBS_VERIFY_INJECT_HH
