/**
 * @file
 * The checkpoint divergence oracle: proves that restore is
 * bit-exact, not merely plausible.
 *
 * A warm-state checkpoint is only trustworthy if a restored run is
 * *indistinguishable* from the run it was cut from. The oracle runs
 * the same simulation twice in one process:
 *
 *   reference:  cold start, full trace, cutting a checkpoint in
 *               flight at the requested cycle (in memory — the hook
 *               captures the encoded container bytes);
 *   restored:   a fresh frontend restored from those bytes (full
 *               verification path: parse, CRCs, guard hash, meta
 *               identity, build gate), then run to completion.
 *
 * Both ends are reduced to a canonical metrics JSON (headline
 * metrics at full %.17g precision, the miss-attribution report, and
 * the complete stat tree) and compared byte for byte. Any
 * difference means restore lost or invented state — a correctness
 * bug, reported with the first differing line. The restored
 * frontend also gets the mandatory post-restore structural audit.
 */

#ifndef XBS_VERIFY_DIVERGENCE_HH
#define XBS_VERIFY_DIVERGENCE_HH

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace xbs
{

/**
 * The canonical deterministic metrics document of a finished run:
 * everything xbsim's --json output derives from simulation state
 * (and nothing host-dependent — no wall clock, no rusage). Two runs
 * of the same cell must produce byte-identical canonical JSON.
 */
std::string canonicalMetricsJson(const Frontend &fe);

struct DivergenceReport
{
    uint64_t requestedCycle = 0;  ///< --verify-ckpt argument
    uint64_t cutCycle = 0;        ///< cycle the cut actually fired at
    uint64_t checkpointBytes = 0; ///< encoded container size
    bool identical = false;       ///< the oracle's verdict
    std::size_t auditViolations = 0; ///< post-restore structural walk
    std::string detail;           ///< first difference, empty if none
};

/**
 * Run the divergence oracle for one simulation cell.
 *
 * @p config and @p spec must describe the same cell (the caller
 * already built @p config from @p spec's flags); @p checkpoint_cycle
 * is where to cut. Fails with a Status when the experiment cannot
 * run at all (checkpoint never fired because the run was shorter,
 * or the in-memory container failed verification — both bugs or
 * usage errors, not divergence). A completed experiment returns a
 * report; report.identical == false is the divergence verdict.
 */
Expected<DivergenceReport> runDivergenceOracle(
    const SimConfig &config, const RunSpec &spec, const Trace &trace,
    uint64_t checkpoint_cycle);

} // namespace xbs

#endif // XBS_VERIFY_DIVERGENCE_HH
