#include "verify/crash_matrix.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "batch/journal.hh"
#include "batch/result_cache.hh"
#include "batch/subprocess.hh"
#include "common/crashpoint.hh"
#include "common/fs.hh"
#include "common/sha256.hh"

namespace xbs
{

namespace
{

/**
 * The cache key the victim stores and the verifier re-derives.
 * Fabricated (not via makeCacheKey) so the harness does not depend
 * on the workload catalog; the store/lookup path treats it exactly
 * like a real key.
 */
CacheKey
victimKey()
{
    CacheKey key;
    key.spec = "--workload=crash-victim\n--frontend=xbc\n"
               "--capacity=1024\n";
    key.workloadHash = sha256Hex("crash-victim-workload");
    key.buildHash = buildInfoHash();
    Sha256 h;
    h.update(key.spec);
    h.update("\0", 1);
    h.update(key.workloadHash);
    h.update("\0", 1);
    h.update(key.buildHash);
    key.hex = h.hexDigest();
    return key;
}

JobMetrics
victimMetrics(int job)
{
    JobMetrics m;
    m.bandwidth = 10.0 + job;
    m.missRate = 0.01 * (job + 1);
    m.overallIpc = 2.0;
    m.cycles = 1000u * (unsigned)(job + 1);
    m.totalUops = 4000u * (unsigned)(job + 1);
    return m;
}

/** write(2) so the ack reaches the pipe before any planted _exit. */
void
ackLine(const std::string &line)
{
    std::string out = line + "\n";
    (void)!::write(STDOUT_FILENO, out.data(), out.size());
}

} // anonymous namespace

int
crashVictimMain(const std::string &dir)
{
    if (Status st = ensureDir(dir); !st.isOk())
        return 1;

    // Journal leg: five jobs through the full event sequence. The
    // first three are per-record durable; the last two exercise the
    // group-commit path (unsynced appends + one sync). An id is
    // acked only after the barrier that makes its Final durable.
    SweepJournal journal;
    if (Status st = journal.open(dir); !st.isOk())
        return 1;
    for (int job = 0; job < 5; ++job) {
        const bool durable = job < 3;
        JournalEvent submit;
        submit.kind = JournalEvent::Kind::Submit;
        submit.job = job;
        submit.spec = {"--workload=crash-victim", "--frontend=xbc",
                       "--capacity=1024"};
        if (Status st = journal.append(submit, durable); !st.isOk())
            return 1;
        JournalEvent launch;
        launch.kind = JournalEvent::Kind::Launch;
        launch.job = job;
        launch.attempt = 1;
        if (Status st = journal.append(launch, durable); !st.isOk())
            return 1;
        JournalEvent result;
        result.kind = JournalEvent::Kind::Result;
        result.job = job;
        result.attempt = 1;
        result.cls = JobClass::Ok;
        result.exitCode = 0;
        result.seconds = 0.25;
        result.hasMetrics = true;
        result.metrics = victimMetrics(job);
        if (Status st = journal.append(result, durable); !st.isOk())
            return 1;
        JournalEvent fin;
        fin.kind = JournalEvent::Kind::Final;
        fin.job = job;
        fin.attempt = 1;
        fin.cls = JobClass::Ok;
        fin.exitCode = 0;
        fin.seconds = 0.25;
        fin.hasMetrics = true;
        fin.metrics = victimMetrics(job);
        if (Status st = journal.append(fin, durable); !st.isOk())
            return 1;
        if (durable)
            ackLine("acked " + std::to_string(job));
    }
    if (Status st = journal.sync(); !st.isOk())
        return 1;
    ackLine("acked 3");
    ackLine("acked 4");

    // Cache leg: one store (tmp+fsync+rename+dirsync inside) and a
    // read-back.
    ResultCache cache;
    if (Status st = cache.open(dir + "/cache"); !st.isOk())
        return 1;
    CacheEntry entry;
    entry.label = "crash-victim";
    entry.seconds = 0.25;
    entry.metrics = victimMetrics(0);
    if (Status st = cache.store(victimKey(), entry); !st.isOk())
        return 1;
    ackLine("stored");
    if (!cache.lookup(victimKey()).ok())
        return 1;
    ackLine("read-back");
    return 0;
}

CrashSiteResult
runCrashSite(const std::string &site,
             const std::vector<std::string> &victim_argv,
             const std::string &dir)
{
    CrashSiteResult res;
    res.site = site;
    auto fail = [&](const std::string &why) {
        res.detail = why;
        return res;
    };

    if (Status st = ensureDir(dir); !st.isOk())
        return fail("scratch dir: " + st.toString());

    // env(1) plants the crash point in the child only; this process
    // keeps running unarmed. "{DIR}" in the victim argv becomes the
    // per-site scratch dir so victim and verifier agree on it.
    std::vector<std::string> argv;
    argv.push_back("env");
    argv.push_back("XBATCH_CRASH_AT=" + site + ":1");
    for (std::string arg : victim_argv) {
        for (std::size_t at; (at = arg.find("{DIR}")) !=
                             std::string::npos;) {
            arg.replace(at, 5, dir);
        }
        argv.push_back(std::move(arg));
    }
    Expected<Child> spawned = spawnChild(argv);
    if (!spawned.ok())
        return fail("spawn: " + spawned.status().toString());
    Child child = spawned.take();

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    int raw = 0;
    for (;;) {
        pumpChild(child);
        if (reapChild(child, &raw))
            break;
        if (std::chrono::steady_clock::now() > deadline) {
            signalChild(child, SIGKILL);
            while (!reapChild(child, &raw)) {
            }
            return fail("victim timed out");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!WIFEXITED(raw) || WEXITSTATUS(raw) != kCrashPointExit) {
        std::ostringstream os;
        os << "victim did not die at the plant (raw status " << raw
           << "; stderr: " << child.err << ")";
        return fail(os.str());
    }
    res.crashed = true;

    // Acks the victim got out before dying: results that MUST have
    // survived.
    std::vector<int> acked;
    {
        std::istringstream is(child.out);
        std::string word;
        while (is >> word) {
            if (word == "acked") {
                int id;
                if (is >> id)
                    acked.push_back(id);
            }
        }
    }

    // --- Recovery, exactly as a restarted daemon would do it. ---

    // 1. Replay accepts the journal (at most a torn tail).
    std::vector<JournalEvent> events;
    if (pathExists(SweepJournal::journalPath(dir))) {
        Expected<std::vector<JournalEvent>> replayed =
            SweepJournal::replay(dir);
        if (!replayed.ok())
            return fail("replay rejected: " +
                        replayed.status().toString());
        events = replayed.take();
    }

    // 2. No job finalized twice; no acked final lost.
    std::vector<int> final_jobs;
    for (const JournalEvent &ev : events) {
        if (ev.kind != JournalEvent::Kind::Final)
            continue;
        for (int seen : final_jobs) {
            if (seen == ev.job)
                return fail("job " + std::to_string(ev.job) +
                            " finalized twice");
        }
        final_jobs.push_back(ev.job);
    }
    for (int id : acked) {
        bool found = false;
        for (int seen : final_jobs)
            found = found || seen == id;
        if (!found)
            return fail("acked final for job " + std::to_string(id) +
                        " lost");
    }

    // 3. The journal takes appends again (not wedged by the crash).
    {
        SweepJournal journal;
        if (Status st = journal.open(dir); !st.isOk())
            return fail("re-open: " + st.toString());
        uint64_t last_seq = 0;
        for (const JournalEvent &ev : events)
            last_seq = std::max(last_seq, ev.seq);
        journal.seedSeq(last_seq);
        JournalEvent probe;
        probe.kind = JournalEvent::Kind::Launch;
        probe.job = 999;
        probe.attempt = 1;
        if (Status st = journal.append(probe); !st.isOk())
            return fail("post-crash append: " + st.toString());
    }

    // 4. The cache entry is a hit or a (possibly corruption-demoted)
    //    miss — never a wedged store — and a fresh store round-trips.
    {
        ResultCache cache;
        if (Status st = cache.open(dir + "/cache"); !st.isOk())
            return fail("cache re-open: " + st.toString());
        Expected<CacheEntry> hit = cache.lookup(victimKey());
        if (!hit.ok() && hit.status().code() != StatusCode::NotFound &&
            hit.status().code() != StatusCode::Corrupt) {
            return fail("cache lookup: " + hit.status().toString());
        }
        CacheEntry entry;
        entry.label = "probe";
        entry.seconds = 1.0;
        entry.metrics = victimMetrics(1);
        if (Status st = cache.store(victimKey(), entry); !st.isOk())
            return fail("post-crash store: " + st.toString());
        Expected<CacheEntry> back = cache.lookup(victimKey());
        if (!back.ok())
            return fail("post-crash read-back: " +
                        back.status().toString());
        if (back.value().label != "probe")
            return fail("post-crash read-back returned stale data");
    }

    res.recovered = true;
    return res;
}

std::vector<CrashSiteResult>
runCrashMatrix(const std::vector<std::string> &victim_argv,
               const std::string &scratch)
{
    std::vector<CrashSiteResult> results;
    for (const std::string &site : crashPointSites()) {
        std::string dir = scratch + "/" + site;
        for (char &c : dir) {
            if (c == '.')
                c = '_';
        }
        results.push_back(runCrashSite(site, victim_argv, dir));
    }
    return results;
}

bool
crashMatrixPassed(const std::vector<CrashSiteResult> &results)
{
    if (results.empty())
        return false;
    for (const CrashSiteResult &res : results) {
        if (!res.crashed || !res.recovered)
            return false;
    }
    return true;
}

} // namespace xbs
