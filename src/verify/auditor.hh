/**
 * @file
 * The invariant auditor: an attachable oracle that checks a frontend
 * run end to end.
 *
 * Two layers:
 *  - the delivery oracle (frontend/oracle.hh) replays the trace
 *    architecturally and checks the frontends' supplied stream
 *    against it (in order, exactly once, content matching the static
 *    code);
 *  - periodic structural walks audit the decoded-cache structures
 *    against the paper's invariants (XBC: single exit, 16-uop quota,
 *    reverse-order banking, head-first aging, suffix-sharing
 *    consistency, redundancy accounting; TC/DC/BBTC: build limits and
 *    accounting).
 *
 * Violations are collected into a structured report — the auditor
 * never aborts the run, so it stays usable under fault injection.
 */

#ifndef XBS_VERIFY_AUDITOR_HH
#define XBS_VERIFY_AUDITOR_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "frontend/frontend.hh"
#include "frontend/oracle.hh"
#include "trace/trace.hh"

namespace xbs
{

struct AuditorOptions
{
    /** Cycles between structural walks (0 = end-of-run only). */
    uint64_t interval = 100000;

    /** Cap on collected violations (a corrupted structure would
     *  otherwise flood the report with repeats). */
    std::size_t maxViolations = 256;

    /** Bounded-slowdown ceiling: cycles per trace record the run may
     *  spend before the auditor flags a livelock. Generous — a clean
     *  run spends low single digits. */
    uint64_t maxCyclesPerRecord = 200;
};

class InvariantAuditor : public CycleObserver
{
  public:
    explicit InvariantAuditor(const AuditorOptions &opts = {})
        : opts_(opts)
    {
    }

    /**
     * Arm the auditor for one run of @p fe over @p trace: attaches
     * the delivery oracle and the per-cycle observer and resets all
     * collected state. Call before fe.run(trace); pair with
     * finishRun(fe) afterwards.
     */
    void attach(Frontend &fe, const Trace &trace);

    /** End-of-run checks (final structural walk, oracle coverage,
     *  metrics crosscheck) and detach from @p fe. */
    void finishRun(Frontend &fe);

    /** CycleObserver: periodic structural walks. */
    void onCycle(Frontend &fe, uint64_t cycle) override;

    /** Run a structural walk immediately (test hook). */
    void auditNow(Frontend &fe, uint64_t cycle = 0);

    /**
     * One-shot structural walk grounded on @p trace, for the
     * mandatory post-restore audit: checks every decoded-cache
     * structure (including storage content against the static code)
     * without attaching the delivery oracle — a restored run only
     * delivers the trace's tail, so full-stream oracle grounding
     * would report spurious violations.
     */
    void auditRestore(Frontend &fe, const Trace &trace,
                      uint64_t cycle = 0);

    bool ok() const { return violations_.empty() && oracleClean(); }

    /** All collected violations (oracle ones merged by finishRun). */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

    /** Number of collected violations of @p kind. */
    std::size_t countOf(AuditViolation::Kind kind) const;

    /** Human-readable report ("audit: clean" or the violation list
     *  with per-kind totals). */
    void report(std::ostream &os) const;

    const DeliveryOracle &oracle() const { return oracle_; }

  private:
    bool oracleClean() const
    {
        return oracle_.violations().size() == mergedOracle_;
    }

    void structuralWalk(Frontend &fe, uint64_t cycle);
    void add(AuditViolation v);

    AuditorOptions opts_;
    DeliveryOracle oracle_;
    const Trace *trace_ = nullptr;
    std::vector<AuditViolation> violations_;
    std::size_t mergedOracle_ = 0;  ///< oracle violations merged in
    uint64_t lastWalk_ = 0;
    bool watchdogFired_ = false;
};

} // namespace xbs

#endif // XBS_VERIFY_AUDITOR_HH
