/**
 * @file
 * The instruction-cache baseline frontend (paper section 2.1): all
 * uops come from the legacy fetch/decode path, one sequential run per
 * cycle. It demonstrates the bandwidth ceiling the XBC and TC are
 * built to break.
 */

#ifndef XBS_IC_IC_FRONTEND_HH
#define XBS_IC_IC_FRONTEND_HH

#include "frontend/frontend.hh"
#include "frontend/predictors.hh"
#include "ic/legacy_pipe.hh"

namespace xbs
{

class IcFrontend : public Frontend
{
  public:
    explicit IcFrontend(const FrontendParams &params);

    void run(const Trace &trace) override;

    /// @{ Warm-state checkpoint/restore (src/ckpt).
    void saveState(CheckpointWriter &w) const override;
    Status restoreState(const CheckpointFile &f) override;
    /// @}

    const PredictorBank &predictors() const { return preds_; }
    const InstCache &icache() const { return pipe_.icache(); }

  protected:
    void
    registerPhases(PhaseProfiler *prof) override
    {
        pipe_.attachProfiler(prof, phFetch_);
    }

  private:
    PredictorBank preds_;
    LegacyPipe pipe_;
};

} // namespace xbs

#endif // XBS_IC_IC_FRONTEND_HH
