/**
 * @file
 * The legacy fetch/decode pipeline: BTB-directed instruction-cache
 * fetch followed by variable-length decode.
 *
 * This engine is both the IC baseline frontend's supply path and the
 * build-mode path of the TC and XBC frontends. One call to cycle()
 * models one fetch cycle: a single sequential run of instructions
 * from the IC (single-ported: fetch ends at the first taken
 * transfer), bounded by the decode width and uop emission caps, with
 * penalty cycles reported for IC misses and mispredictions.
 */

#ifndef XBS_IC_LEGACY_PIPE_HH
#define XBS_IC_LEGACY_PIPE_HH

#include <cstddef>

#include "attrib/recorder.hh"
#include "common/probe.hh"
#include "frontend/metrics.hh"
#include "frontend/params.hh"
#include "frontend/predictors.hh"
#include "ic/inst_cache.hh"
#include "isa/decoder.hh"
#include "prof/phase_profiler.hh"
#include "trace/trace.hh"

namespace xbs
{

class LegacyPipe
{
  public:
    /**
     * @param probes probe registry of the owning frontend for the
     *        "icpipe" track (nullptr: probes permanently disabled)
     */
    LegacyPipe(const FrontendParams &params, FrontendMetrics &metrics,
               PredictorBank &preds, ProbeManager *probes = nullptr);

    /** Outcome of one fetch cycle. */
    struct Result
    {
        unsigned uops = 0;    ///< uops decoded and supplied
        unsigned insts = 0;   ///< instructions consumed
        unsigned stall = 0;   ///< penalty cycles to charge afterwards
    };

    /**
     * Run one fetch/decode cycle along the actual path.
     *
     * @param trace the driving trace
     * @param rec   cursor into the trace; advanced past consumed
     *              instructions
     */
    Result cycle(const Trace &trace, std::size_t &rec);

    InstCache &icache() { return icache_; }
    const InstCache &icache() const { return icache_; }
    const InstCache &l2() const { return l2_; }

    void
    reset()
    {
        icache_.reset();
        l2_.reset();
    }

    /// @{ Warm-state checkpointing (src/ckpt): both cache levels.
    ///    The decoder is stateless and the predictor bank is owned
    ///    by the frontend.
    void
    ckptSave(CkptSink &sink) const
    {
        icache_.ckptSave(sink);
        l2_.ckptSave(sink);
    }

    void
    ckptLoad(CkptSource &src)
    {
        icache_.ckptLoad(src);
        l2_.ckptLoad(src);
    }
    /// @}

    /** Register the "predict" sub-phase under @p parent and time the
     *  branch-prediction work inside cycle(). nullptr detaches. */
    void
    attachProfiler(PhaseProfiler *prof, unsigned parent)
    {
        prof_ = prof;
        phPredict_ = prof ? prof->definePhase("predict", parent)
                          : PhaseProfiler::kNoPhase;
    }

    /** Attach (or detach, with nullptr) the owning frontend's
     *  attribution recorder: IC/L2 fill stalls and predictor
     *  penalties are noted with their root cause (src/attrib). */
    void attachAttrib(AttribRecorder *attrib) { attrib_ = attrib; }

  private:
    /**
     * Predict and train on the control instruction at record @p rec;
     * returns the penalty (0 when everything was predicted right).
     */
    unsigned handleControl(const Trace &trace, std::size_t rec);

    const FrontendParams &params_;
    FrontendMetrics &metrics_;
    PredictorBank &preds_;
    InstCache icache_;
    InstCache l2_;   ///< unified L2 backing the IC's code fetches
    Decoder decoder_;

    /// @{ "icpipe" track: miss stalls and resteer bubbles, with the
    ///    charged penalty as the event value.
    ProbePoint icMissProbe_;
    ProbePoint resteerProbe_;
    /// @}

    PhaseProfiler *prof_ = nullptr;
    unsigned phPredict_ = PhaseProfiler::kNoPhase;

    AttribRecorder *attrib_ = nullptr;
};

} // namespace xbs

#endif // XBS_IC_LEGACY_PIPE_HH
