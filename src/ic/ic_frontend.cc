#include "ic/ic_frontend.hh"

namespace xbs
{

IcFrontend::IcFrontend(const FrontendParams &params)
    : Frontend("ic", params), preds_(params),
      pipe_(params_, metrics_, preds_, &probes_)
{
    pipe_.attachAttrib(&attrib_);
}

void
IcFrontend::saveState(CheckpointWriter &w) const
{
    Frontend::saveState(w);
    CkptSink sink;
    preds_.ckptSave(sink);
    pipe_.ckptSave(sink);
    w.addSection("ic", sink.take());
}

Status
IcFrontend::restoreState(const CheckpointFile &f)
{
    Status st = Frontend::restoreState(f);
    if (!st.isOk())
        return st;
    const std::string *sec = f.section("ic");
    if (!sec) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks an 'ic' section");
    }
    CkptSource src(*sec);
    preds_.ckptLoad(src);
    pipe_.ckptLoad(src);
    if (!src.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint 'ic' section");
    }
    return Status::ok();
}

void
IcFrontend::run(const Trace &trace)
{
    std::size_t rec = 0;
    if (auto resume = takeResume())
        rec = (std::size_t)resume->rec;
    while (rec < trace.numRecords() && !stopRequested()) {
        maybeCheckpoint(rec, 0, 0, 0);
        std::size_t prev = rec;
        LegacyPipe::Result r;
        {
            ScopedPhase timer(prof_, phFetch_);
            r = pipe_.cycle(trace, rec);
        }
        for (std::size_t i = prev; i < rec; ++i)
            oracleConsume(i, kNoTarget, 0);
        metrics_.traceRecords.set(rec);
        ++metrics_.cycles;
        // The IC baseline has no decoded-cache structure; count its
        // supply as "delivery" so bandwidth() reports its uops/cycle.
        ++metrics_.deliveryCycles;
        metrics_.deliveryUops += r.uops;
        metrics_.renamedUops += r.uops;
        metrics_.cycles += r.stall;
        metrics_.stallCycles += r.stall;
        attrib_.chargeSilentCycles(r.stall);
        observeCycle();
        traceMode("delivery");
    }
    traceModeDone();
}

} // namespace xbs
