#include "ic/ic_frontend.hh"

namespace xbs
{

IcFrontend::IcFrontend(const FrontendParams &params)
    : Frontend("ic", params), preds_(params),
      pipe_(params_, metrics_, preds_, &probes_)
{
    pipe_.attachAttrib(&attrib_);
}

void
IcFrontend::run(const Trace &trace)
{
    std::size_t rec = 0;
    while (rec < trace.numRecords() && !stopRequested()) {
        std::size_t prev = rec;
        LegacyPipe::Result r;
        {
            ScopedPhase timer(prof_, phFetch_);
            r = pipe_.cycle(trace, rec);
        }
        for (std::size_t i = prev; i < rec; ++i)
            oracleConsume(i, kNoTarget, 0);
        metrics_.traceRecords.set(rec);
        ++metrics_.cycles;
        // The IC baseline has no decoded-cache structure; count its
        // supply as "delivery" so bandwidth() reports its uops/cycle.
        ++metrics_.deliveryCycles;
        metrics_.deliveryUops += r.uops;
        metrics_.renamedUops += r.uops;
        metrics_.cycles += r.stall;
        metrics_.stallCycles += r.stall;
        attrib_.chargeSilentCycles(r.stall);
        observeCycle();
        traceMode("delivery");
    }
    traceModeDone();
}

} // namespace xbs
