/**
 * @file
 * Byte-addressed instruction cache model (the legacy path of every
 * frontend, and the IC baseline of section 2.1). Set-associative
 * with true LRU; contents are tracked at line granularity only,
 * since the simulator never needs the actual bytes.
 */

#ifndef XBS_IC_INST_CACHE_HH
#define XBS_IC_INST_CACHE_HH

#include <cstdint>
#include <vector>

namespace xbs
{

class CkptSink;
class CkptSource;

class InstCache
{
  public:
    /**
     * @param capacity_bytes total capacity (power-of-two)
     * @param line_bytes     line size (power-of-two)
     * @param ways           associativity
     */
    InstCache(unsigned capacity_bytes, unsigned line_bytes,
              unsigned ways);

    /**
     * Access the line containing @p ip; fills on miss (the fill
     * latency is charged by the caller).
     *
     * @return true on hit
     */
    bool access(uint64_t ip);

    /** Probe without fill or LRU update. */
    bool contains(uint64_t ip) const;

    unsigned lineBytes() const { return lineBytes_; }
    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    /** Line-aligned address of @p ip. */
    uint64_t lineOf(uint64_t ip) const { return ip & ~lineMask_; }

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lru = 0;
    };

    std::size_t setOf(uint64_t line_addr) const;

    unsigned lineBytes_;
    unsigned numSets_;
    unsigned ways_;
    uint64_t lineMask_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
};

} // namespace xbs

#endif // XBS_IC_INST_CACHE_HH
