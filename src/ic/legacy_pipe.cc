#include "ic/legacy_pipe.hh"

#include "frontend/control.hh"

#include "common/logging.hh"

namespace xbs
{

LegacyPipe::LegacyPipe(const FrontendParams &params,
                       FrontendMetrics &metrics, PredictorBank &preds,
                       ProbeManager *probes)
    : params_(params), metrics_(metrics), preds_(preds),
      icache_(params.icCapacityBytes, params.icLineBytes,
              params.icWays),
      l2_(params.l2CapacityBytes, params.icLineBytes, params.l2Ways),
      decoder_(params.decode),
      icMissProbe_(probes, "icpipe", "icMiss"),
      resteerProbe_(probes, "icpipe", "resteer")
{
}

unsigned
LegacyPipe::handleControl(const Trace &trace, std::size_t rec)
{
    ScopedPhase timer(prof_, phPredict_);
    unsigned penalty = predictControl(params_, metrics_, preds_,
                                      trace, rec,
                                      /*legacy_path=*/true, attrib_);
    if (penalty > 0)
        resteerProbe_.fire((int64_t)penalty);
    return penalty;
}

LegacyPipe::Result
LegacyPipe::cycle(const Trace &trace, std::size_t &rec)
{
    Result res;
    unsigned bytes_used = 0;
    unsigned insts_used = 0;
    unsigned uops_used = 0;

    // The fetch block reads from a single IC line region; track which
    // lines were touched this cycle so straddles charge a second
    // access but repeated hits to the same line do not.
    uint64_t lines_touched[2] = {~0ULL, ~0ULL};
    unsigned num_lines = 0;

    while (rec < trace.numRecords()) {
        const StaticInst &si = trace.inst(rec);

        // Instruction cache access(es) for this instruction.
        uint64_t first_line = icache_.lineOf(si.ip);
        uint64_t last_line = icache_.lineOf(si.ip + si.length - 1);
        bool missed = false;
        for (uint64_t line = first_line; line <= last_line;
             line += icache_.lineBytes()) {
            if (line == lines_touched[0] || line == lines_touched[1])
                continue;
            ++metrics_.icAccesses;
            if (!icache_.access(line)) {
                ++metrics_.icMisses;
                // Fill from the unified L2; a second miss goes all
                // the way to memory.
                unsigned latency;
                Cause cause;
                if (l2_.access(line)) {
                    latency = params_.icMissLatency;
                    cause = Cause::IcMiss;
                } else {
                    ++metrics_.l2Misses;
                    latency = params_.l2MissLatency;
                    cause = Cause::L2Miss;
                }
                res.stall += latency;
                if (attrib_)
                    attrib_->noteStall(cause, latency);
                icMissProbe_.fire((int64_t)latency);
                missed = true;
            }
            if (num_lines < 2)
                lines_touched[num_lines++] = line;
        }
        if (missed) {
            // The line arrives after the stall; fetch resumes next
            // cycle with the line resident.
            break;
        }

        if (!decoder_.admit(si, bytes_used, insts_used, uops_used))
            break;

        res.uops += si.numUops;
        res.insts += 1;
        bool is_control = si.isControl();
        bool redirects = is_control &&
                         !(si.cls == InstClass::CondBranch &&
                           trace.record(rec).taken == 0);
        if (is_control)
            res.stall += handleControl(trace, rec);
        ++rec;

        // A taken transfer ends the sequential fetch block; a
        // mispredict ends the cycle outright.
        if (redirects || res.stall > 0)
            break;
    }

    return res;
}

} // namespace xbs
