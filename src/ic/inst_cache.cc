#include "ic/inst_cache.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

InstCache::InstCache(unsigned capacity_bytes, unsigned line_bytes,
                     unsigned ways)
    : lineBytes_(line_bytes), ways_(ways),
      lineMask_((uint64_t)line_bytes - 1)
{
    xbs_assert(isPowerOf2(capacity_bytes) && isPowerOf2(line_bytes),
               "IC geometry must be powers of two");
    xbs_assert(ways >= 1, "IC needs at least one way");
    unsigned lines = capacity_bytes / line_bytes;
    xbs_assert(lines >= ways, "IC smaller than one set");
    numSets_ = lines / ways;
    xbs_assert(isPowerOf2(numSets_), "IC set count must be 2^n");
    entries_.resize((std::size_t)numSets_ * ways_);
}

std::size_t
InstCache::setOf(uint64_t line_addr) const
{
    return (std::size_t)((line_addr / lineBytes_) & (numSets_ - 1));
}

bool
InstCache::access(uint64_t ip)
{
    uint64_t line = lineOf(ip);
    std::size_t base = setOf(line) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == line) {
            e.lru = ++clock_;
            return true;
        }
    }
    // Miss: fill into the LRU way.
    Entry *victim = &entries_[base];
    for (unsigned w = 1; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru && victim->valid)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = line;
    victim->lru = ++clock_;
    return false;
}

bool
InstCache::contains(uint64_t ip) const
{
    uint64_t line = lineOf(ip);
    std::size_t base = setOf(line) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.valid && e.tag == line)
            return true;
    }
    return false;
}

void
InstCache::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    clock_ = 0;
}

void
InstCache::ckptSave(CkptSink &sink) const
{
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.b(e.valid);
        sink.u64(e.tag);
        sink.u64(e.lru);
    }
    sink.u64(clock_);
}

void
InstCache::ckptLoad(CkptSource &src)
{
    uint64_t n = src.count(1);
    src.require(n == entries_.size());
    for (std::size_t i = 0; src.ok() && i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        e.valid = src.b();
        e.tag = src.u64();
        e.lru = src.u64();
    }
    clock_ = src.u64();
}

} // namespace xbs
