#include "dc/decoded_cache.hh"

#include "ckpt/serial.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace xbs
{

DecodedCache::DecodedCache(const DecodedCacheParams &params,
                           StatGroup *parent)
    : StatGroup("dc", parent), params_(params)
{
    xbs_assert(isPowerOf2(params_.windowBytes),
               "window bytes must be a power of two");
    xbs_assert(params_.lineUops >= 4, "line too small to be useful");
    unsigned lines = params_.capacityUops / params_.lineUops;
    xbs_assert(lines >= params_.ways, "capacity below one set");
    numSets_ = 1u << floorLog2(lines / params_.ways);
    lines_.resize((std::size_t)numSets_ * params_.ways);
}

uint64_t
DecodedCache::windowOf(uint64_t ip) const
{
    return ip & ~(uint64_t)(params_.windowBytes - 1);
}

std::size_t
DecodedCache::setOf(uint64_t window_ip) const
{
    return (std::size_t)foldedIndex(window_ip / params_.windowBytes,
                                    numSets_, 0);
}

DecodedCache::Line *
DecodedCache::findLine(uint64_t window_ip)
{
    std::size_t base = setOf(window_ip) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.windowIp == window_ip)
            return &l;
    }
    return nullptr;
}

std::pair<const DecodedCache::Line *, std::size_t>
DecodedCache::lookup(uint64_t ip, int32_t entry_idx)
{
    ++lookups;
    Line *l = findLine(windowOf(ip));
    if (!l)
        return {nullptr, 0};
    for (std::size_t i = 0; i < l->insts.size(); ++i) {
        if (l->insts[i].staticIdx == entry_idx) {
            l->lru = ++clock_;
            ++hits;
            return {l, i};
        }
    }
    return {nullptr, 0};
}

void
DecodedCache::fill(const StaticInst &inst, int32_t static_idx)
{
    uint64_t window = windowOf(inst.ip);
    Line *l = findLine(window);
    if (!l) {
        std::size_t base = setOf(window) * params_.ways;
        Line *victim = &lines_[base];
        for (unsigned w = 0; w < params_.ways; ++w) {
            Line &cand = lines_[base + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (cand.lru < victim->lru)
                victim = &cand;
        }
        if (victim->valid)
            ++evictions;
        victim->clear();
        victim->valid = true;
        victim->windowIp = window;
        l = victim;
    }
    l->lru = ++clock_;

    for (const auto &di : l->insts) {
        if (di.staticIdx == static_idx)
            return;  // already cached
    }
    if (l->usedUops + inst.numUops > params_.lineUops) {
        ++fragDrops;  // fragmentation: no room in the fixed line
        return;
    }
    l->insts.push_back(DecodedInst{static_idx, inst.numUops});
    l->usedUops += inst.numUops;
    ++fills;
}

double
DecodedCache::fillFactor() const
{
    uint64_t used = 0, reserved = 0;
    for (const auto &l : lines_) {
        if (l.valid) {
            used += l.usedUops;
            reserved += params_.lineUops;
        }
    }
    return reserved ? (double)used / (double)reserved : 0.0;
}

void
DecodedCache::auditStorage(
    const std::function<void(AuditViolation)> &sink) const
{
    auto structural = [&](std::string what) {
        AuditViolation v;
        v.kind = AuditViolation::Kind::Structural;
        v.where = "dc.array";
        v.what = std::move(what);
        sink(std::move(v));
    };

    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &l = lines_[i];
        if (!l.valid)
            continue;
        std::string where = "line " + std::to_string(i) + ": ";
        if (l.windowIp != windowOf(l.windowIp)) {
            structural(where + "unaligned window tag");
            continue;
        }
        unsigned used = 0;
        for (const auto &di : l.insts) {
            if (di.staticIdx < 0 || di.numUops == 0) {
                structural(where + "bad cached instruction");
                break;
            }
            used += di.numUops;
        }
        if (used != l.usedUops)
            structural(where + "stored usedUops is stale");
        if (used > params_.lineUops) {
            structural(where + "line uses " + std::to_string(used) +
                       " of " + std::to_string(params_.lineUops) +
                       " reserved uop slots");
        }
    }
}

void
DecodedCache::ckptSave(CkptSink &sink) const
{
    sink.u64(lines_.size());
    for (const Line &l : lines_) {
        sink.b(l.valid);
        sink.u64(l.windowIp);
        sink.u64(l.lru);
        sink.u64(l.insts.size());
        for (const DecodedInst &di : l.insts) {
            sink.i32(di.staticIdx);
            sink.u8(di.numUops);
        }
        sink.u32(l.usedUops);
    }
    sink.u64(clock_);
}

void
DecodedCache::ckptLoad(CkptSource &src)
{
    // Min line size: valid(1) + windowIp(8) + lru(8) + inst count(8)
    // + usedUops(4) = 29 bytes.
    uint64_t n = src.count(29);
    src.require(n == lines_.size());
    for (uint64_t i = 0; src.ok() && i < n; ++i) {
        Line &l = lines_[i];
        l.clear();
        l.valid = src.b();
        l.windowIp = src.u64();
        l.lru = src.u64();
        uint64_t ni = src.count(5);
        src.require(ni <= params_.lineUops);
        l.insts.reserve(src.ok() ? ni : 0);
        for (uint64_t j = 0; src.ok() && j < ni; ++j) {
            DecodedInst di;
            di.staticIdx = src.i32();
            di.numUops = src.u8();
            if (src.ok())
                l.insts.push_back(di);
        }
        l.usedUops = src.u32();
        src.require(l.usedUops <= params_.lineUops);
    }
    clock_ = src.u64();
}

void
DecodedCache::reset()
{
    for (auto &l : lines_)
        l.clear();
    clock_ = 0;
    resetStats();
}

} // namespace xbs
