#include "dc/dc_frontend.hh"

#include <algorithm>

#include "frontend/control.hh"

namespace xbs
{

DcFrontend::DcFrontend(const FrontendParams &params,
                       const DecodedCacheParams &dc_params)
    : Frontend("dcfe", params), dcParams_(dc_params), preds_(params_),
      pipe_(params_, metrics_, preds_, &probes_), dc_(dcParams_, &root_)
{
    pipe_.attachAttrib(&attrib_);
}

unsigned
DcFrontend::supplyRun(const Trace &trace, std::size_t &rec,
                      unsigned &stall, bool &miss)
{
    miss = false;
    unsigned supplied = 0;
    const DecodedCache::Line *line = nullptr;
    uint64_t cur_window = ~0ULL;

    while (rec < trace.numRecords() &&
           supplied < params_.renamerWidth) {
        const StaticInst &si = trace.inst(rec);
        uint64_t window = dc_.windowOf(si.ip);
        if (window != cur_window) {
            if (cur_window != ~0ULL) {
                // A sequential run may cross into the next window
                // only once per cycle (single-ported array).
                break;
            }
            auto [l, pos] = dc_.lookup(si.ip,
                                       trace.record(rec).staticIdx);
            (void)pos;
            if (!l) {
                miss = supplied == 0;
                break;
            }
            attrib_.clearDisruption();
            line = l;
            cur_window = window;
        } else {
            // Same window: the instruction must be present in the
            // line (fragmentation drops punch holes).
            bool present = false;
            for (const auto &di : line->insts) {
                if (di.staticIdx == trace.record(rec).staticIdx) {
                    present = true;
                    break;
                }
            }
            if (!present) {
                miss = supplied == 0;
                break;
            }
        }

        if (supplied + si.numUops > params_.renamerWidth)
            break;

        oracleConsume(rec, trace.record(rec).staticIdx, si.numUops);
        supplied += si.numUops;
        bool redirects = si.isControl() &&
                         !(si.cls == InstClass::CondBranch &&
                           trace.record(rec).taken == 0);
        if (si.isControl()) {
            stall += predictControl(params_, metrics_, preds_, trace,
                                    rec, /*legacy_path=*/true,
                                    &attrib_);
        }
        ++rec;
        if (redirects || stall > 0)
            break;
    }
    return supplied;
}

void
DcFrontend::saveState(CheckpointWriter &w) const
{
    Frontend::saveState(w);
    CkptSink sink;
    preds_.ckptSave(sink);
    pipe_.ckptSave(sink);
    dc_.ckptSave(sink);
    w.addSection("dc", sink.take());
}

Status
DcFrontend::restoreState(const CheckpointFile &f)
{
    Status st = Frontend::restoreState(f);
    if (!st.isOk())
        return st;
    const std::string *sec = f.section("dc");
    if (!sec) {
        return Status::error(StatusCode::Corrupt,
                             "checkpoint lacks a 'dc' section");
    }
    CkptSource src(*sec);
    preds_.ckptLoad(src);
    pipe_.ckptLoad(src);
    dc_.ckptLoad(src);
    if (!src.consumed()) {
        return Status::error(StatusCode::Corrupt,
                             "malformed checkpoint 'dc' section");
    }
    return Status::ok();
}

void
DcFrontend::run(const Trace &trace)
{
    const std::size_t num_records = trace.numRecords();
    std::size_t rec = 0;
    Mode mode = Mode::Build;
    unsigned stall = 0;
    if (auto resume = takeResume()) {
        rec = (std::size_t)resume->rec;
        mode = resume->mode ? Mode::Delivery : Mode::Build;
        stall = resume->stall;
    } else {
        attrib_.enterBuild(Cause::ColdStart);
    }

    while (rec < num_records && !stopRequested()) {
        maybeCheckpoint(rec, mode == Mode::Delivery ? 1 : 0, 0, stall);
        ++metrics_.cycles;
        observeCycle();
        traceMode(mode == Mode::Build ? "build" : "delivery");
        if (stall > 0) {
            --stall;
            ++metrics_.stallCycles;
            attrib_.chargeSilentCycle();
            continue;
        }

        if (mode == Mode::Delivery) {
            bool miss = false;
            unsigned got;
            {
                ScopedPhase timer(prof_, phArray_);
                got = supplyRun(trace, rec, stall, miss);
            }
            metrics_.traceRecords.set(rec);
            if (miss) {
                mode = Mode::Build;
                ++metrics_.modeSwitches;
                attrib_.enterBuild(Cause::StructMiss);
                --metrics_.cycles;  // re-issue this cycle as build
                continue;
            }
            ++metrics_.deliveryCycles;
            metrics_.deliveryUops += got;
            metrics_.renamedUops += got;
        } else {
            ++metrics_.buildCycles;
            attrib_.chargeBuildCycle();
            std::size_t prev = rec;
            ScopedPhase timer(prof_, phBuild_);
            LegacyPipe::Result r = pipe_.cycle(trace, rec);
            metrics_.buildUops += r.uops;
            attrib_.chargeBuildUops(r.uops);
            stall += r.stall;
            for (std::size_t i = prev; i < rec; ++i) {
                oracleConsume(i, kNoTarget, 0);
                dc_.fill(trace.inst(i), trace.record(i).staticIdx);
            }
            metrics_.traceRecords.set(rec);
            // Return to delivery as soon as the next instruction's
            // window is cached (no trace/XB build boundary here).
            if (rec < num_records &&
                dc_.lookup(trace.inst(rec).ip,
                           trace.record(rec).staticIdx)
                    .first) {
                mode = Mode::Delivery;
            }
        }
    }
    traceModeDone();
}

} // namespace xbs
