/**
 * @file
 * Decoded-cache frontend (paper section 2.2): uops are supplied
 * without decode latency, but the structure is still indexed by
 * instruction address, so bandwidth stays IC-like (one sequential
 * run per cycle, ending at every taken transfer) and fragmentation
 * costs hit rate.
 */

#ifndef XBS_DC_DC_FRONTEND_HH
#define XBS_DC_DC_FRONTEND_HH

#include "dc/decoded_cache.hh"
#include "frontend/frontend.hh"
#include "frontend/predictors.hh"
#include "ic/legacy_pipe.hh"

namespace xbs
{

class DcFrontend : public Frontend
{
  public:
    DcFrontend(const FrontendParams &params,
               const DecodedCacheParams &dc_params);

    void run(const Trace &trace) override;

    /// @{ Warm-state checkpoint/restore (src/ckpt).
    void saveState(CheckpointWriter &w) const override;
    Status restoreState(const CheckpointFile &f) override;
    /// @}

    const DecodedCache &cache() const { return dc_; }

  protected:
    void
    registerPhases(PhaseProfiler *prof) override
    {
        // The legacy pipe runs as this frontend's build path.
        pipe_.attachProfiler(prof, phBuild_);
    }

  private:
    enum class Mode { Build, Delivery };

    /**
     * Supply one sequential run from the decoded cache.
     * @return uops supplied; 0 with @p miss set on a lookup miss
     */
    unsigned supplyRun(const Trace &trace, std::size_t &rec,
                       unsigned &stall, bool &miss);

    DecodedCacheParams dcParams_;
    PredictorBank preds_;
    LegacyPipe pipe_;
    DecodedCache dc_;
};

} // namespace xbs

#endif // XBS_DC_DC_FRONTEND_HH
