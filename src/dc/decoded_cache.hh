/**
 * @file
 * Decoded (uop) cache, the paper's section 2.2 alternative.
 *
 * The decoded cache removes decode latency by caching uops, but it is
 * still indexed by instruction address, so it inherits the IC's
 * bandwidth ceiling (one sequential run per cycle) and adds
 * fragmentation: because x86 instructions expand to a variable number
 * of uops, each line reserves a fixed number of uop slots for the
 * instructions that *start* in an aligned code window, and short or
 * sparse windows waste slots ("its hit rate is slightly reduced due
 * to fragmentation").
 */

#ifndef XBS_DC_DECODED_CACHE_HH
#define XBS_DC_DECODED_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "frontend/oracle.hh"
#include "isa/static_inst.hh"
#include "isa/uop.hh"

namespace xbs
{

class CkptSink;
class CkptSource;

/** Geometry of the decoded cache. */
struct DecodedCacheParams
{
    /** Total capacity in uop slots (for like-for-like comparisons
     *  with the TC and XBC). */
    unsigned capacityUops = 32768;

    /** Aligned code-window bytes covered by one line. */
    unsigned windowBytes = 16;

    /** Uop slots reserved per line. */
    unsigned lineUops = 8;

    unsigned ways = 4;
};

class DecodedCache : public StatGroup
{
  public:
    DecodedCache(const DecodedCacheParams &params, StatGroup *parent);

    /** One cached decoded instruction. */
    struct DecodedInst
    {
        int32_t staticIdx = kNoTarget;
        uint8_t numUops = 0;
    };

    struct Line
    {
        bool valid = false;
        uint64_t windowIp = 0;   ///< aligned window base (tag)
        uint64_t lru = 0;
        std::vector<DecodedInst> insts;  ///< in address order
        unsigned usedUops = 0;

        void
        clear()
        {
            valid = false;
            windowIp = 0;
            insts.clear();
            usedUops = 0;
        }
    };

    /** Aligned window base of @p ip. */
    uint64_t windowOf(uint64_t ip) const;

    /**
     * Lookup the line for @p ip and the position of the instruction
     * with static index @p entry_idx inside it.
     *
     * @return {line, index into line->insts} or {nullptr, 0}
     */
    std::pair<const Line *, std::size_t>
    lookup(uint64_t ip, int32_t entry_idx);

    /**
     * Record a decoded instruction (fills lines in build mode). A
     * new window allocates a line; an instruction that does not fit
     * the line's uop budget is dropped (fragmentation loss).
     */
    void fill(const StaticInst &inst, int32_t static_idx);

    double fillFactor() const;
    unsigned numSets() const { return numSets_; }
    const DecodedCacheParams &params() const { return params_; }

    /** Non-aborting structural audit: window alignment, per-line uop
     *  budget, and stored usedUops consistency. Violations go to
     *  @p sink; the walk always completes. */
    void auditStorage(
        const std::function<void(AuditViolation)> &sink) const;

    void reset();

    /// @{ Warm-state checkpointing (src/ckpt).
    void ckptSave(CkptSink &sink) const;
    void ckptLoad(CkptSource &src);
    /// @}

    ScalarStat lookups{this, "lookups", "decoded cache lookups"};
    ScalarStat hits{this, "hits", "decoded cache hits"};
    ScalarStat fills{this, "fills", "instructions filled"};
    ScalarStat fragDrops{this, "fragDrops",
        "instructions dropped for lack of line uop slots"};
    ScalarStat evictions{this, "evictions", "lines evicted"};

  private:
    std::size_t setOf(uint64_t window_ip) const;
    Line *findLine(uint64_t window_ip);

    DecodedCacheParams params_;
    unsigned numSets_;
    std::vector<Line> lines_;
    uint64_t clock_ = 0;
};

} // namespace xbs

#endif // XBS_DC_DECODED_CACHE_HH
