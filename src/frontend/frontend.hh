/**
 * @file
 * Abstract frontend interface: a structure that consumes a dynamic
 * trace and reports cycle/uop metrics. Concrete implementations are
 * IcFrontend, TcFrontend, and XbcFrontend.
 *
 * The simulator is trace-driven with oracle resteer: the frontend
 * always follows the actual dynamic path, consults its predictors
 * along it, and charges penalty bubbles whenever a prediction
 * disagrees with the actual outcome. This matches the methodology of
 * standalone frontend studies (hit rates and bandwidth are exact;
 * wrong-path fetch effects are out of scope, as in the paper).
 */

#ifndef XBS_FRONTEND_FRONTEND_HH
#define XBS_FRONTEND_FRONTEND_HH

#include <string>

#include "common/stats.hh"
#include "frontend/metrics.hh"
#include "frontend/params.hh"
#include "trace/trace.hh"

namespace xbs
{

class Frontend
{
  public:
    Frontend(std::string name, const FrontendParams &params)
        : root_(std::move(name)), metrics_(&root_), params_(params)
    {
    }

    virtual ~Frontend() = default;

    Frontend(const Frontend &) = delete;
    Frontend &operator=(const Frontend &) = delete;

    /** Simulate the whole trace, accumulating metrics. */
    virtual void run(const Trace &trace) = 0;

    /** Human-readable structure name ("ic", "tc", "xbc"). */
    const std::string &name() const { return root_.statName(); }

    const FrontendMetrics &metrics() const { return metrics_; }
    FrontendMetrics &metrics() { return metrics_; }

    /** Root stat group (frontends hang structure stats below it). */
    StatGroup &statRoot() { return root_; }
    const StatGroup &statRoot() const { return root_; }

    const FrontendParams &params() const { return params_; }

  protected:
    StatGroup root_;
    FrontendMetrics metrics_;
    FrontendParams params_;
};

} // namespace xbs

#endif // XBS_FRONTEND_FRONTEND_HH
