/**
 * @file
 * Abstract frontend interface: a structure that consumes a dynamic
 * trace and reports cycle/uop metrics. Concrete implementations are
 * IcFrontend, TcFrontend, and XbcFrontend.
 *
 * The simulator is trace-driven with oracle resteer: the frontend
 * always follows the actual dynamic path, consults its predictors
 * along it, and charges penalty bubbles whenever a prediction
 * disagrees with the actual outcome. This matches the methodology of
 * standalone frontend studies (hit rates and bandwidth are exact;
 * wrong-path fetch effects are out of scope, as in the paper).
 *
 * Observability: every frontend owns a ProbeManager that its
 * components register named probe points with (attach an
 * EventTraceSink to capture a timeline) and accepts an
 * IntervalSampler for windowed statistics. Both are pay-for-use:
 * with nothing attached, the per-cycle cost is one branch each.
 */

#ifndef XBS_FRONTEND_FRONTEND_HH
#define XBS_FRONTEND_FRONTEND_HH

#include <cstring>
#include <string>

#include "common/interval_stats.hh"
#include "common/probe.hh"
#include "common/stats.hh"
#include "frontend/metrics.hh"
#include "frontend/params.hh"
#include "trace/trace.hh"

namespace xbs
{

class Frontend
{
  public:
    Frontend(std::string name, const FrontendParams &params)
        : root_(std::move(name)), metrics_(&root_), params_(params)
    {
        probes_.setCycleSource(&metrics_.cycles);
    }

    virtual ~Frontend() = default;

    Frontend(const Frontend &) = delete;
    Frontend &operator=(const Frontend &) = delete;

    /** Simulate the whole trace, accumulating metrics. */
    virtual void run(const Trace &trace) = 0;

    /** Human-readable structure name ("ic", "tc", "xbc"). */
    const std::string &name() const { return root_.statName(); }

    const FrontendMetrics &metrics() const { return metrics_; }
    FrontendMetrics &metrics() { return metrics_; }

    /** Root stat group (frontends hang structure stats below it). */
    StatGroup &statRoot() { return root_; }
    const StatGroup &statRoot() const { return root_; }

    const FrontendParams &params() const { return params_; }

    /** Probe registry; attach a sink here to capture event traces. */
    ProbeManager &probes() { return probes_; }
    const ProbeManager &probes() const { return probes_; }

    /** Attach (or detach, with nullptr) an interval sampler ticked
     *  once per simulated cycle during run(). */
    void attachSampler(IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /**
     * Flush observation state after run(): emits the sampler's final
     * partial window. Drivers that attached a sampler call this once
     * per run before reading the outputs.
     */
    void
    finishObservation()
    {
        if (sampler_)
            sampler_->finish(metrics_.cycles.value());
    }

  protected:
    /** Per-cycle observation hook; run loops call this right after
     *  advancing metrics_.cycles. One branch when nothing attached. */
    void
    observeCycle()
    {
        if (sampler_)
            sampler_->tick(metrics_.cycles.value());
    }

    /**
     * Mode-FSM timeline: open a slice named @p label (a string
     * literal: "build" / "delivery"), closing the previous one.
     * Call once per cycle with the current mode; consecutive
     * same-label calls are free.
     */
    void
    traceMode(const char *label)
    {
        if (!modeProbe_.enabled())
            return;
        if (modeLabel_ && std::strcmp(modeLabel_, label) == 0)
            return;
        if (modeLabel_)
            modeProbe_.end();
        modeProbe_.begin(label);
        modeLabel_ = label;
    }

    /** Close the open mode slice (end of run). */
    void
    traceModeDone()
    {
        if (modeProbe_.enabled() && modeLabel_)
            modeProbe_.end();
        modeLabel_ = nullptr;
    }

    StatGroup root_;
    FrontendMetrics metrics_;
    FrontendParams params_;
    ProbeManager probes_;
    ProbePoint modeProbe_{&probes_, "mode", "mode"};

  private:
    IntervalSampler *sampler_ = nullptr;
    const char *modeLabel_ = nullptr;
};

} // namespace xbs

#endif // XBS_FRONTEND_FRONTEND_HH
