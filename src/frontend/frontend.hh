/**
 * @file
 * Abstract frontend interface: a structure that consumes a dynamic
 * trace and reports cycle/uop metrics. Concrete implementations are
 * IcFrontend, TcFrontend, and XbcFrontend.
 *
 * The simulator is trace-driven with oracle resteer: the frontend
 * always follows the actual dynamic path, consults its predictors
 * along it, and charges penalty bubbles whenever a prediction
 * disagrees with the actual outcome. This matches the methodology of
 * standalone frontend studies (hit rates and bandwidth are exact;
 * wrong-path fetch effects are out of scope, as in the paper).
 *
 * Observability: every frontend owns a ProbeManager that its
 * components register named probe points with (attach an
 * EventTraceSink to capture a timeline) and accepts an
 * IntervalSampler for windowed statistics. Both are pay-for-use:
 * with nothing attached, the per-cycle cost is one branch each.
 */

#ifndef XBS_FRONTEND_FRONTEND_HH
#define XBS_FRONTEND_FRONTEND_HH

#include <algorithm>
#include <csignal>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "attrib/recorder.hh"
#include "ckpt/checkpoint.hh"
#include "common/interval_stats.hh"
#include "common/probe.hh"
#include "common/stats.hh"
#include "frontend/metrics.hh"
#include "frontend/oracle.hh"
#include "frontend/params.hh"
#include "prof/phase_profiler.hh"
#include "trace/trace.hh"

namespace xbs
{

class Frontend;

/**
 * Per-cycle observer ticked from every frontend's run loop right
 * after the cycle counter advances. The invariant auditor and the
 * fault injectors (src/verify) hang off this; with none attached the
 * cost is one branch per cycle.
 */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;
    virtual void onCycle(Frontend &fe, uint64_t cycle) = 0;
};

/**
 * Snapshot of a frontend run loop's scalar state at a checkpoint
 * cycle boundary. The field meanings are frontend-specific (each
 * run() documents its encoding); the base class only stores and
 * round-trips them.
 */
struct RunLoopState
{
    uint64_t rec = 0;     ///< next trace record to process
    uint32_t mode = 0;    ///< mode-FSM state (frontend encoding)
    uint32_t buffer = 0;  ///< buffered uops / auxiliary counter
    uint32_t stall = 0;   ///< pending stall cycles
};

class Frontend
{
  public:
    Frontend(std::string name, const FrontendParams &params)
        : root_(std::move(name)), metrics_(&root_), params_(params)
    {
        probes_.setCycleSource(&metrics_.cycles);
    }

    virtual ~Frontend() = default;

    Frontend(const Frontend &) = delete;
    Frontend &operator=(const Frontend &) = delete;

    /** Simulate the whole trace, accumulating metrics. */
    virtual void run(const Trace &trace) = 0;

    /** Human-readable structure name ("ic", "tc", "xbc"). */
    const std::string &name() const { return root_.statName(); }

    const FrontendMetrics &metrics() const { return metrics_; }
    FrontendMetrics &metrics() { return metrics_; }

    /** Root stat group (frontends hang structure stats below it). */
    StatGroup &statRoot() { return root_; }
    const StatGroup &statRoot() const { return root_; }

    const FrontendParams &params() const { return params_; }

    /** Probe registry; attach a sink here to capture event traces. */
    ProbeManager &probes() { return probes_; }
    const ProbeManager &probes() const { return probes_; }

    /** Root-cause attribution recorder (src/attrib). */
    AttribRecorder &attrib() { return attrib_; }
    const AttribRecorder &attrib() const { return attrib_; }

    /** XBC structure accounting, when this frontend has one. */
    virtual const ArrayAccounting *arrayAccounting() const
    {
        return nullptr;
    }

    /** Attach (or detach, with nullptr) an interval sampler ticked
     *  once per simulated cycle during run(). */
    void attachSampler(IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /**
     * Attach an external stop request (typically a sig_atomic_t set
     * by a SIGINT/SIGTERM handler; see common/signals.hh). Every run
     * loop polls it at the cycle boundary and returns early when it
     * goes nonzero, leaving metrics and observation state consistent
     * so a supervisor-terminated job still flushes usable partial
     * output. nullptr detaches.
     */
    void attachStopFlag(const volatile std::sig_atomic_t *flag)
    {
        stopFlag_ = flag;
    }

    /** True once the attached stop flag has been raised. */
    bool stopRequested() const
    {
        return stopFlag_ && *stopFlag_ != 0;
    }

    /// @{ Verification hooks (src/verify): per-cycle observers and
    ///    the delivery oracle the supply paths report records to.
    void
    attachCycleObserver(CycleObserver *obs)
    {
        if (obs && std::find(observers_.begin(), observers_.end(),
                             obs) == observers_.end()) {
            observers_.push_back(obs);
        }
    }

    void
    detachCycleObserver(CycleObserver *obs)
    {
        observers_.erase(std::remove(observers_.begin(),
                                     observers_.end(), obs),
                         observers_.end());
    }

    /** Attach (or detach, with nullptr) the delivery oracle. The
     *  caller owns it and calls begin()/finish() around run(). */
    void attachOracle(DeliveryOracle *oracle) { oracle_ = oracle; }
    DeliveryOracle *oracle() { return oracle_; }
    /// @}

    /**
     * Attach (or detach, with nullptr) a host-time phase profiler
     * (src/prof). Registers this frontend's standard phase tree —
     * fetch (legacy IC pipe), build (structure construction), array
     * (decoded-structure delivery) — and lets the concrete frontend
     * hook component sub-phases ("predict") via registerPhases().
     * Detached, every instrumented scope costs one branch.
     */
    void
    attachProfiler(PhaseProfiler *prof)
    {
        prof_ = prof;
        phFetch_ = phBuild_ = phArray_ = PhaseProfiler::kNoPhase;
        if (prof) {
            phFetch_ = prof->definePhase("fetch");
            phBuild_ = prof->definePhase("build");
            phArray_ = prof->definePhase("array");
        }
        registerPhases(prof);
    }

    PhaseProfiler *profiler() { return prof_; }

    /**
     * Flush observation state after run(): emits the sampler's final
     * partial window. Drivers that attached a sampler call this once
     * per run before reading the outputs.
     */
    void
    finishObservation()
    {
        if (sampler_)
            sampler_->finish(metrics_.cycles.value());
    }

    /// @{ Warm-state checkpoint/restore (src/ckpt).

    /** Callback fired at the checkpoint cycle, with the run loop
     *  parked at a cycle boundary; typically serializes the frontend
     *  via saveState() and writes the container to disk. */
    using CkptHook = std::function<Status(Frontend &)>;

    /**
     * Arm a one-shot checkpoint: the first cycle boundary at or
     * after @p cycle fires @p hook (">=", not "==": run loops may
     * advance the cycle counter by more than one). The run then
     * continues normally — cutting a live-point does not perturb
     * the simulated outcome.
     */
    void
    armCheckpoint(uint64_t cycle, CkptHook hook)
    {
        ckptAt_ = cycle;
        ckptHook_ = std::move(hook);
        ckptArmed_ = true;
        ckptTaken_ = false;
        ckptStatus_ = Status::ok();
    }

    bool checkpointArmed() const { return ckptArmed_; }

    /** True once an armed checkpoint has fired during run(). */
    bool checkpointTaken() const { return ckptTaken_; }

    /** Outcome of the checkpoint hook (ok until fired). */
    const Status &checkpointStatus() const { return ckptStatus_; }

    /**
     * Serialize the complete warm state into @p w. The base class
     * contributes the sections every frontend shares — "stats" (the
     * whole stat tree, including cycle/uop metrics), "attrib" (the
     * attribution recorder) and "loop" (the parked run-loop scalars);
     * overrides call this first and then append one frontend-specific
     * section holding predictors, pipes, and storage structures.
     *
     * Only valid while the run loop is parked at a cycle boundary
     * (inside a checkpoint hook) or before/after run().
     */
    virtual void
    saveState(CheckpointWriter &w) const
    {
        {
            CkptSink sink;
            saveStatTree(root_, sink);
            w.addSection("stats", sink.take());
        }
        {
            CkptSink sink;
            attrib_.ckptSave(sink);
            w.addSection("attrib", sink.take());
        }
        {
            CkptSink sink;
            sink.u64(loopState_.rec);
            sink.u32(loopState_.mode);
            sink.u32(loopState_.buffer);
            sink.u32(loopState_.stall);
            w.addSection("loop", sink.take());
        }
    }

    /**
     * Restore warm state from a parsed checkpoint and queue the
     * run-loop resume point consumed by the next run() call. All-or-
     * nothing per the class contract: any missing or malformed
     * section returns Corrupt and the frontend must then be treated
     * as unusable (callers fall back to a cold start with a fresh
     * frontend, never this one).
     */
    virtual Status
    restoreState(const CheckpointFile &f)
    {
        const std::string *stats = f.section("stats");
        if (!stats) {
            return Status::error(StatusCode::Corrupt,
                                 "checkpoint lacks a 'stats' section");
        }
        {
            CkptSource src(*stats);
            Status st = loadStatTree(root_, src);
            if (!st.isOk())
                return st;
            if (!src.consumed()) {
                return Status::error(
                    StatusCode::Corrupt,
                    "malformed checkpoint 'stats' section");
            }
        }
        const std::string *attrib = f.section("attrib");
        if (!attrib) {
            return Status::error(
                StatusCode::Corrupt,
                "checkpoint lacks an 'attrib' section");
        }
        {
            CkptSource src(*attrib);
            attrib_.ckptLoad(src);
            if (!src.consumed()) {
                return Status::error(
                    StatusCode::Corrupt,
                    "malformed checkpoint 'attrib' section");
            }
        }
        const std::string *loop = f.section("loop");
        if (!loop) {
            return Status::error(StatusCode::Corrupt,
                                 "checkpoint lacks a 'loop' section");
        }
        {
            CkptSource src(*loop);
            RunLoopState st;
            st.rec = src.u64();
            st.mode = src.u32();
            st.buffer = src.u32();
            st.stall = src.u32();
            if (!src.consumed()) {
                return Status::error(
                    StatusCode::Corrupt,
                    "malformed checkpoint 'loop' section");
            }
            resume_ = st;
        }
        return Status::ok();
    }

    /** True when a restore is queued and the next run() will resume
     *  mid-trace instead of cold-starting. */
    bool hasResume() const { return resume_.has_value(); }
    /// @}

  protected:
    /** Derived frontends register component sub-phases here (e.g.
     *  LegacyPipe's "predict" under fetch); called with nullptr on
     *  detach so components drop their phase handles too. */
    virtual void registerPhases(PhaseProfiler *prof) { (void)prof; }

    /** Per-cycle observation hook; run loops call this right after
     *  advancing metrics_.cycles. One branch when nothing attached. */
    void
    observeCycle()
    {
        if (sampler_)
            sampler_->tick(metrics_.cycles.value());
        if (!observers_.empty()) {
            for (CycleObserver *obs : observers_)
                obs->onCycle(*this, metrics_.cycles.value());
        }
    }

    /**
     * Checkpoint trigger, called by every run loop at the top of the
     * cycle loop (before the cycle counter advances) with the loop's
     * live scalars. When the armed cycle has been reached the scalars
     * are parked in loopState_, the hook runs, and the trigger
     * disarms; the run loop then continues unchanged.
     */
    void
    maybeCheckpoint(uint64_t rec, uint32_t mode, uint32_t buffer,
                    uint32_t stall)
    {
        if (!ckptArmed_ || metrics_.cycles.value() < ckptAt_)
            return;
        ckptArmed_ = false;
        loopState_.rec = rec;
        loopState_.mode = mode;
        loopState_.buffer = buffer;
        loopState_.stall = stall;
        ckptTaken_ = true;
        if (ckptHook_)
            ckptStatus_ = ckptHook_(*this);
    }

    /** Consume the queued resume point (run() entry: present after a
     *  successful restoreState, in place of cold-start init). */
    std::optional<RunLoopState>
    takeResume()
    {
        std::optional<RunLoopState> r = std::move(resume_);
        resume_.reset();
        return r;
    }

    /** Report a delivered record to the oracle, if attached. See
     *  DeliveryOracle::consume for the cached_idx convention. */
    void
    oracleConsume(std::size_t rec, int32_t cached_idx,
                  unsigned cached_uops)
    {
        if (oracle_) {
            oracle_->consume(rec, cached_idx, cached_uops,
                             metrics_.cycles.value());
        }
    }

    /**
     * Mode-FSM timeline: open a slice named @p label (a string
     * literal: "build" / "delivery"), closing the previous one.
     * Call once per cycle with the current mode; consecutive
     * same-label calls are free.
     */
    void
    traceMode(const char *label)
    {
        if (modeLabel_ && std::strcmp(modeLabel_, label) == 0)
            return;
        if (modeProbe_.enabled()) {
            if (modeLabel_)
                modeProbe_.end();
            modeProbe_.begin(label);
        }
        modeLabel_ = label;
    }

    /** Close the open mode slice (end of run). */
    void
    traceModeDone()
    {
        if (modeProbe_.enabled() && modeLabel_)
            modeProbe_.end();
        modeLabel_ = nullptr;
    }

  public:
    /** Current mode-FSM label ("build"/"delivery"), or nullptr
     *  outside run(). Tracked whether or not a trace sink is
     *  attached, so live telemetry can report the phase. */
    const char *modeLabel() const { return modeLabel_; }

  protected:

    StatGroup root_;
    FrontendMetrics metrics_;
    FrontendParams params_;
    ProbeManager probes_;
    ProbePoint modeProbe_{&probes_, "mode", "mode"};
    AttribRecorder attrib_{&root_, &probes_};

    /// @{ Host-time profiling (null/kNoPhase when detached).
    PhaseProfiler *prof_ = nullptr;
    unsigned phFetch_ = PhaseProfiler::kNoPhase;
    unsigned phBuild_ = PhaseProfiler::kNoPhase;
    unsigned phArray_ = PhaseProfiler::kNoPhase;
    /// @}

    /// @{ Checkpoint plumbing (see armCheckpoint/maybeCheckpoint).
    RunLoopState loopState_;
    std::optional<RunLoopState> resume_;
    /// @}

  private:
    uint64_t ckptAt_ = 0;
    CkptHook ckptHook_;
    bool ckptArmed_ = false;
    bool ckptTaken_ = false;
    Status ckptStatus_;

    IntervalSampler *sampler_ = nullptr;
    std::vector<CycleObserver *> observers_;
    DeliveryOracle *oracle_ = nullptr;
    const volatile std::sig_atomic_t *stopFlag_ = nullptr;
    const char *modeLabel_ = nullptr;
};

} // namespace xbs

#endif // XBS_FRONTEND_FRONTEND_HH
