/**
 * @file
 * Abstract frontend interface: a structure that consumes a dynamic
 * trace and reports cycle/uop metrics. Concrete implementations are
 * IcFrontend, TcFrontend, and XbcFrontend.
 *
 * The simulator is trace-driven with oracle resteer: the frontend
 * always follows the actual dynamic path, consults its predictors
 * along it, and charges penalty bubbles whenever a prediction
 * disagrees with the actual outcome. This matches the methodology of
 * standalone frontend studies (hit rates and bandwidth are exact;
 * wrong-path fetch effects are out of scope, as in the paper).
 *
 * Observability: every frontend owns a ProbeManager that its
 * components register named probe points with (attach an
 * EventTraceSink to capture a timeline) and accepts an
 * IntervalSampler for windowed statistics. Both are pay-for-use:
 * with nothing attached, the per-cycle cost is one branch each.
 */

#ifndef XBS_FRONTEND_FRONTEND_HH
#define XBS_FRONTEND_FRONTEND_HH

#include <algorithm>
#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "attrib/recorder.hh"
#include "common/interval_stats.hh"
#include "common/probe.hh"
#include "common/stats.hh"
#include "frontend/metrics.hh"
#include "frontend/oracle.hh"
#include "frontend/params.hh"
#include "prof/phase_profiler.hh"
#include "trace/trace.hh"

namespace xbs
{

class Frontend;

/**
 * Per-cycle observer ticked from every frontend's run loop right
 * after the cycle counter advances. The invariant auditor and the
 * fault injectors (src/verify) hang off this; with none attached the
 * cost is one branch per cycle.
 */
class CycleObserver
{
  public:
    virtual ~CycleObserver() = default;
    virtual void onCycle(Frontend &fe, uint64_t cycle) = 0;
};

class Frontend
{
  public:
    Frontend(std::string name, const FrontendParams &params)
        : root_(std::move(name)), metrics_(&root_), params_(params)
    {
        probes_.setCycleSource(&metrics_.cycles);
    }

    virtual ~Frontend() = default;

    Frontend(const Frontend &) = delete;
    Frontend &operator=(const Frontend &) = delete;

    /** Simulate the whole trace, accumulating metrics. */
    virtual void run(const Trace &trace) = 0;

    /** Human-readable structure name ("ic", "tc", "xbc"). */
    const std::string &name() const { return root_.statName(); }

    const FrontendMetrics &metrics() const { return metrics_; }
    FrontendMetrics &metrics() { return metrics_; }

    /** Root stat group (frontends hang structure stats below it). */
    StatGroup &statRoot() { return root_; }
    const StatGroup &statRoot() const { return root_; }

    const FrontendParams &params() const { return params_; }

    /** Probe registry; attach a sink here to capture event traces. */
    ProbeManager &probes() { return probes_; }
    const ProbeManager &probes() const { return probes_; }

    /** Root-cause attribution recorder (src/attrib). */
    AttribRecorder &attrib() { return attrib_; }
    const AttribRecorder &attrib() const { return attrib_; }

    /** XBC structure accounting, when this frontend has one. */
    virtual const ArrayAccounting *arrayAccounting() const
    {
        return nullptr;
    }

    /** Attach (or detach, with nullptr) an interval sampler ticked
     *  once per simulated cycle during run(). */
    void attachSampler(IntervalSampler *sampler)
    {
        sampler_ = sampler;
    }

    /**
     * Attach an external stop request (typically a sig_atomic_t set
     * by a SIGINT/SIGTERM handler; see common/signals.hh). Every run
     * loop polls it at the cycle boundary and returns early when it
     * goes nonzero, leaving metrics and observation state consistent
     * so a supervisor-terminated job still flushes usable partial
     * output. nullptr detaches.
     */
    void attachStopFlag(const volatile std::sig_atomic_t *flag)
    {
        stopFlag_ = flag;
    }

    /** True once the attached stop flag has been raised. */
    bool stopRequested() const
    {
        return stopFlag_ && *stopFlag_ != 0;
    }

    /// @{ Verification hooks (src/verify): per-cycle observers and
    ///    the delivery oracle the supply paths report records to.
    void
    attachCycleObserver(CycleObserver *obs)
    {
        if (obs && std::find(observers_.begin(), observers_.end(),
                             obs) == observers_.end()) {
            observers_.push_back(obs);
        }
    }

    void
    detachCycleObserver(CycleObserver *obs)
    {
        observers_.erase(std::remove(observers_.begin(),
                                     observers_.end(), obs),
                         observers_.end());
    }

    /** Attach (or detach, with nullptr) the delivery oracle. The
     *  caller owns it and calls begin()/finish() around run(). */
    void attachOracle(DeliveryOracle *oracle) { oracle_ = oracle; }
    DeliveryOracle *oracle() { return oracle_; }
    /// @}

    /**
     * Attach (or detach, with nullptr) a host-time phase profiler
     * (src/prof). Registers this frontend's standard phase tree —
     * fetch (legacy IC pipe), build (structure construction), array
     * (decoded-structure delivery) — and lets the concrete frontend
     * hook component sub-phases ("predict") via registerPhases().
     * Detached, every instrumented scope costs one branch.
     */
    void
    attachProfiler(PhaseProfiler *prof)
    {
        prof_ = prof;
        phFetch_ = phBuild_ = phArray_ = PhaseProfiler::kNoPhase;
        if (prof) {
            phFetch_ = prof->definePhase("fetch");
            phBuild_ = prof->definePhase("build");
            phArray_ = prof->definePhase("array");
        }
        registerPhases(prof);
    }

    PhaseProfiler *profiler() { return prof_; }

    /**
     * Flush observation state after run(): emits the sampler's final
     * partial window. Drivers that attached a sampler call this once
     * per run before reading the outputs.
     */
    void
    finishObservation()
    {
        if (sampler_)
            sampler_->finish(metrics_.cycles.value());
    }

  protected:
    /** Derived frontends register component sub-phases here (e.g.
     *  LegacyPipe's "predict" under fetch); called with nullptr on
     *  detach so components drop their phase handles too. */
    virtual void registerPhases(PhaseProfiler *prof) { (void)prof; }

    /** Per-cycle observation hook; run loops call this right after
     *  advancing metrics_.cycles. One branch when nothing attached. */
    void
    observeCycle()
    {
        if (sampler_)
            sampler_->tick(metrics_.cycles.value());
        if (!observers_.empty()) {
            for (CycleObserver *obs : observers_)
                obs->onCycle(*this, metrics_.cycles.value());
        }
    }

    /** Report a delivered record to the oracle, if attached. See
     *  DeliveryOracle::consume for the cached_idx convention. */
    void
    oracleConsume(std::size_t rec, int32_t cached_idx,
                  unsigned cached_uops)
    {
        if (oracle_) {
            oracle_->consume(rec, cached_idx, cached_uops,
                             metrics_.cycles.value());
        }
    }

    /**
     * Mode-FSM timeline: open a slice named @p label (a string
     * literal: "build" / "delivery"), closing the previous one.
     * Call once per cycle with the current mode; consecutive
     * same-label calls are free.
     */
    void
    traceMode(const char *label)
    {
        if (modeLabel_ && std::strcmp(modeLabel_, label) == 0)
            return;
        if (modeProbe_.enabled()) {
            if (modeLabel_)
                modeProbe_.end();
            modeProbe_.begin(label);
        }
        modeLabel_ = label;
    }

    /** Close the open mode slice (end of run). */
    void
    traceModeDone()
    {
        if (modeProbe_.enabled() && modeLabel_)
            modeProbe_.end();
        modeLabel_ = nullptr;
    }

  public:
    /** Current mode-FSM label ("build"/"delivery"), or nullptr
     *  outside run(). Tracked whether or not a trace sink is
     *  attached, so live telemetry can report the phase. */
    const char *modeLabel() const { return modeLabel_; }

  protected:

    StatGroup root_;
    FrontendMetrics metrics_;
    FrontendParams params_;
    ProbeManager probes_;
    ProbePoint modeProbe_{&probes_, "mode", "mode"};
    AttribRecorder attrib_{&root_, &probes_};

    /// @{ Host-time profiling (null/kNoPhase when detached).
    PhaseProfiler *prof_ = nullptr;
    unsigned phFetch_ = PhaseProfiler::kNoPhase;
    unsigned phBuild_ = PhaseProfiler::kNoPhase;
    unsigned phArray_ = PhaseProfiler::kNoPhase;
    /// @}

  private:
    IntervalSampler *sampler_ = nullptr;
    std::vector<CycleObserver *> observers_;
    DeliveryOracle *oracle_ = nullptr;
    const volatile std::sig_atomic_t *stopFlag_ = nullptr;
    const char *modeLabel_ = nullptr;
};

} // namespace xbs

#endif // XBS_FRONTEND_FRONTEND_HH
