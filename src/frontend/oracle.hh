/**
 * @file
 * The delivery oracle: an architectural replay of the trace that the
 * frontends report their supplied stream against.
 *
 * Every structure in a decoupled frontend (XBTB, data array, trace
 * table, ...) is only a performance hint — no corruption may ever
 * change the committed uop stream. The oracle enforces exactly that:
 * each frontend calls consume() for every trace record it delivers
 * (from a cached structure or from the build/IC path), and the
 * oracle checks that records are consumed in order, exactly once,
 * and that cached content matches the static code the trace refers
 * to. finish() checks that the whole trace was covered and that the
 * uop totals add up.
 *
 * Violations are collected into a structured report, never an abort:
 * the oracle must stay usable under fault injection, where the whole
 * point is to observe graceful degradation.
 */

#ifndef XBS_FRONTEND_ORACLE_HH
#define XBS_FRONTEND_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace xbs
{

/** One collected audit finding (shared with the structural walks). */
struct AuditViolation
{
    enum class Kind
    {
        Oracle,      ///< delivered stream diverged from the trace
        Structural,  ///< a paper invariant does not hold
        Accounting,  ///< stats/residency counters drifted
    };

    Kind kind = Kind::Oracle;
    std::string where;  ///< component ("oracle", "xbc.array", ...)
    std::string what;   ///< human-readable description
    uint64_t cycle = 0; ///< frontend cycle when detected (0 = n/a)
};

inline const char *
auditKindName(AuditViolation::Kind k)
{
    switch (k) {
      case AuditViolation::Kind::Oracle: return "oracle";
      case AuditViolation::Kind::Structural: return "structural";
      case AuditViolation::Kind::Accounting: return "accounting";
    }
    return "?";
}

class DeliveryOracle
{
  public:
    /** Start checking a run over @p trace (resets all state). */
    void
    begin(const Trace *trace)
    {
        trace_ = trace;
        next_ = 0;
        uops_ = 0;
        violations_.clear();
    }

    bool attached() const { return trace_ != nullptr; }

    /**
     * The frontend delivered record @p rec.
     *
     * @param cached_idx the static index the supplying structure
     *        believes it delivered, or kNoTarget when the uops were
     *        decoded straight from the instruction image (the
     *        build/IC path, correct by construction)
     * @param cached_uops uops the structure supplied for the record
     *        (ignored when cached_idx is kNoTarget)
     * @param cycle frontend cycle, for the report
     */
    void
    consume(std::size_t rec, int32_t cached_idx, unsigned cached_uops,
            uint64_t cycle)
    {
        if (!trace_)
            return;
        if (rec != next_) {
            violate(cycle, "record " + std::to_string(rec) +
                               " consumed out of order (expected " +
                               std::to_string(next_) + ")");
            next_ = rec;  // resync so one slip reports once
        }
        if (rec >= trace_->numRecords()) {
            violate(cycle, "record " + std::to_string(rec) +
                               " past the end of the trace");
            return;
        }
        const StaticInst &si = trace_->inst(rec);
        if (cached_idx != kNoTarget) {
            if (cached_idx != trace_->record(rec).staticIdx) {
                violate(cycle,
                        "record " + std::to_string(rec) +
                            ": cached static index " +
                            std::to_string(cached_idx) +
                            " != architectural " +
                            std::to_string(trace_->record(rec)
                                               .staticIdx));
            }
            if (cached_uops != si.numUops) {
                violate(cycle,
                        "record " + std::to_string(rec) + ": " +
                            std::to_string(cached_uops) +
                            " cached uops supplied, instruction has " +
                            std::to_string(si.numUops));
            }
        }
        uops_ += si.numUops;
        next_ = rec + 1;
    }

    /** End-of-run checks: full coverage and uop-total agreement. */
    void
    finish(uint64_t cycle)
    {
        if (!trace_)
            return;
        if (next_ != trace_->numRecords()) {
            violate(cycle,
                    "run ended after record " + std::to_string(next_) +
                        " of " + std::to_string(trace_->numRecords()) +
                        " (lost instructions)");
        } else if (uops_ != trace_->totalUops()) {
            violate(cycle,
                    "delivered " + std::to_string(uops_) +
                        " uops, trace has " +
                        std::to_string(trace_->totalUops()));
        }
    }

    uint64_t recordsConsumed() const { return next_; }
    uint64_t uopsConsumed() const { return uops_; }

    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }

  private:
    void
    violate(uint64_t cycle, std::string what)
    {
        if (violations_.size() >= kMaxViolations)
            return;  // a diverged stream would otherwise flood
        AuditViolation v;
        v.kind = AuditViolation::Kind::Oracle;
        v.where = "oracle";
        v.what = std::move(what);
        v.cycle = cycle;
        violations_.push_back(std::move(v));
    }

    static constexpr std::size_t kMaxViolations = 64;

    const Trace *trace_ = nullptr;
    std::size_t next_ = 0;
    uint64_t uops_ = 0;
    std::vector<AuditViolation> violations_;
};

} // namespace xbs

#endif // XBS_FRONTEND_ORACLE_HH
