/**
 * @file
 * Shared configuration of the standalone frontend simulator.
 *
 * The paper's setup (section 4): renamer bandwidth of 8 uops/cycle, a
 * 16-bit-history GSHARE for direction prediction, an 8K-entry XBTB,
 * and cache capacities measured in uops.
 */

#ifndef XBS_FRONTEND_PARAMS_HH
#define XBS_FRONTEND_PARAMS_HH

#include <cstdint>

#include "isa/decoder.hh"

namespace xbs
{

struct FrontendParams
{
    /** Renamer bandwidth: hard cap on uops leaving the frontend per
     *  cycle (paper: 8). */
    unsigned renamerWidth = 8;

    /** Resteer bubble after a mispredicted conditional / indirect /
     *  return (cycles of fetch silence). */
    unsigned mispredictPenalty = 10;

    /** Decode-stage redirect penalty when a taken direct transfer
     *  misses the BTB (the target is known at decode). */
    unsigned btbMissPenalty = 3;

    /** Legacy decode path configuration. */
    DecodeParams decode;

    /// @{ Instruction cache (legacy path) geometry.
    unsigned icCapacityBytes = 64 * 1024;
    unsigned icLineBytes = 64;
    unsigned icWays = 4;
    unsigned icMissLatency = 12;   ///< IC miss, L2 hit
    /// @}

    /// @{ Unified L2 behind the IC (code side only is modeled).
    unsigned l2CapacityBytes = 512 * 1024;
    unsigned l2Ways = 8;
    unsigned l2MissLatency = 40;   ///< IC miss, L2 miss (memory)
    /// @}

    /// @{ Predictors.
    unsigned gshareHistoryBits = 16;
    unsigned btbSets = 1024;
    unsigned btbWays = 4;
    unsigned rsbDepth = 32;
    unsigned indirectSets = 512;
    unsigned indirectWays = 4;
    /// @}

    /** Size of the decoupling fetch buffer between the decoded-cache
     *  structure and the renamer, in uops. */
    unsigned fetchBufferUops = 32;
};

} // namespace xbs

#endif // XBS_FRONTEND_PARAMS_HH
