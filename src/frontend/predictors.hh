/**
 * @file
 * The predictor complement every frontend carries: a direction
 * predictor (GSHARE), a BTB for taken direct transfers, a return
 * stack, and an indirect-target predictor. The XBC wires these same
 * primitives at XB granularity (XBP / XBTB pointers / XRSB / XiBTB).
 */

#ifndef XBS_FRONTEND_PREDICTORS_HH
#define XBS_FRONTEND_PREDICTORS_HH

#include "bpred/btb.hh"
#include "bpred/direction.hh"
#include "ckpt/serial.hh"
#include "frontend/params.hh"

namespace xbs
{

struct PredictorBank
{
    explicit PredictorBank(const FrontendParams &p)
        : gshare(p.gshareHistoryBits),
          btb(p.btbSets, p.btbWays),
          rsb(p.rsbDepth),
          indirect(p.indirectSets, p.indirectWays)
    {
    }

    GsharePredictor gshare;
    Btb btb;
    ReturnStack rsb;
    IndirectPredictor indirect;

    void
    reset()
    {
        gshare.reset();
        btb.reset();
        rsb.reset();
        indirect.reset();
    }

    /// @{ Warm-state checkpointing (src/ckpt).
    void
    ckptSave(CkptSink &sink) const
    {
        gshare.ckptSave(sink);
        btb.ckptSave(sink);
        rsb.ckptSave(sink);
        indirect.ckptSave(sink);
    }

    void
    ckptLoad(CkptSource &src)
    {
        gshare.ckptLoad(src);
        btb.ckptLoad(src);
        rsb.ckptLoad(src);
        indirect.ckptLoad(src);
    }
    /// @}
};

} // namespace xbs

#endif // XBS_FRONTEND_PREDICTORS_HH
