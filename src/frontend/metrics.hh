/**
 * @file
 * Frontend metrics, shared across the IC, TC, and XBC frontends so
 * the bench harnesses can compare them uniformly.
 *
 * The two headline metrics of the paper:
 *  - uop bandwidth: deliveryUops / deliveryCycles (delivery mode
 *    only, "defined only for hits");
 *  - uop miss rate: buildUops / (buildUops + deliveryUops), i.e. the
 *    percentage of uops that had to be brought from the IC path.
 */

#ifndef XBS_FRONTEND_METRICS_HH
#define XBS_FRONTEND_METRICS_HH

#include "common/stats.hh"

namespace xbs
{

class FrontendMetrics : public StatGroup
{
  public:
    explicit FrontendMetrics(StatGroup *parent = nullptr)
        : StatGroup("frontend", parent)
    {
    }

    ScalarStat cycles{this, "cycles", "total simulated cycles"};
    ScalarStat deliveryCycles{this, "deliveryCycles",
        "cycles spent in delivery mode (incl. buffer drain)"};
    ScalarStat buildCycles{this, "buildCycles",
        "cycles spent in build mode"};
    ScalarStat stallCycles{this, "stallCycles",
        "fetch-silent cycles (mispredict bubbles, IC misses)"};

    ScalarStat deliveryUops{this, "deliveryUops",
        "uops supplied by the decoded-cache structure"};
    ScalarStat renamedUops{this, "renamedUops",
        "uops passed to the renamer during counted delivery cycles"};
    ScalarStat buildUops{this, "buildUops",
        "uops supplied by the legacy IC path"};

    ScalarStat condBranches{this, "condBranches",
        "dynamic conditional branches"};
    ScalarStat condMispredicts{this, "condMispredicts",
        "mispredicted conditional branches"};
    ScalarStat indirectBranches{this, "indirectBranches",
        "dynamic indirect jumps/calls"};
    ScalarStat indirectMispredicts{this, "indirectMispredicts",
        "mispredicted indirect targets"};
    ScalarStat returns{this, "returns", "dynamic returns"};
    ScalarStat returnMispredicts{this, "returnMispredicts",
        "mispredicted return targets"};

    ScalarStat btbMisses{this, "btbMisses",
        "taken direct transfers missing in the BTB"};
    ScalarStat icAccesses{this, "icAccesses",
        "instruction cache line accesses"};
    ScalarStat icMisses{this, "icMisses",
        "instruction cache line misses"};
    ScalarStat l2Misses{this, "l2Misses",
        "code fetches missing the L2 as well"};

    ScalarStat modeSwitches{this, "modeSwitches",
        "delivery->build transitions"};

    /// Trace position (records consumed so far); monotone like every
    /// other counter here so interval deltas stay exact. Feeds the
    /// records/sec throughput rate (src/prof).
    ScalarStat traceRecords{this, "traceRecords",
        "dynamic trace records consumed"};

    /// @{ Derived statistics: the same quantities as the accessor
    ///    functions below, registered so dump()/dumpJson() output and
    ///    StatGroup::find include the headline metrics directly.
    FormulaStat bandwidthStat{this, "bandwidth",
        "delivery-mode uop bandwidth (renamedUops/deliveryCycles)",
        [this] { return bandwidth(); }};
    FormulaStat missRateStat{this, "missRate",
        "fraction of uops supplied by the legacy IC path",
        [this] { return missRate(); }};
    FormulaStat overallIpcStat{this, "overallIpc",
        "uops per cycle over all simulated cycles",
        [this] { return overallIpc(); }};
    FormulaStat condMispredictRateStat{this, "condMispredictRate",
        "conditional branch misprediction rate",
        [this] { return condMispredictRate(); }};
    /// @}

    /**
     * Delivery-mode uop bandwidth (the paper's Figure 8 metric):
     * uops crossing into the renamer per delivery-mode cycle,
     * excluding disruptive-event bubbles (which belong to the
     * transition phases, per [Mich99]).
     */
    double
    bandwidth() const
    {
        return deliveryCycles.value()
                   ? (double)renamedUops.value() /
                         (double)deliveryCycles.value()
                   : 0.0;
    }

    /** Fraction of uops brought from the IC (Figure 9/10 metric). */
    double
    missRate() const
    {
        uint64_t total = deliveryUops.value() + buildUops.value();
        return total ? (double)buildUops.value() / (double)total : 0.0;
    }

    /** Overall uops per cycle, counting every simulated cycle. */
    double
    overallIpc() const
    {
        uint64_t total = deliveryUops.value() + buildUops.value();
        return cycles.value()
                   ? (double)total / (double)cycles.value()
                   : 0.0;
    }

    /** Conditional branch misprediction rate. */
    double
    condMispredictRate() const
    {
        return condBranches.value()
                   ? (double)condMispredicts.value() /
                         (double)condBranches.value()
                   : 0.0;
    }
};

} // namespace xbs

#endif // XBS_FRONTEND_METRICS_HH
