/**
 * @file
 * Shared control-flow prediction/training step.
 *
 * All three frontends walk the actual path and consult the same
 * predictor complement; only the target-delivery mechanism differs
 * (BTB redirects on the legacy path, XBTB/trace pointers in the
 * decoded-cache structures). predictControl() centralizes the
 * predict-compare-train sequence and returns the penalty to charge.
 */

#ifndef XBS_FRONTEND_CONTROL_HH
#define XBS_FRONTEND_CONTROL_HH

#include "attrib/recorder.hh"
#include "frontend/metrics.hh"
#include "frontend/params.hh"
#include "frontend/predictors.hh"
#include "trace/trace.hh"

namespace xbs
{

/**
 * Predict and train on the control instruction at record @p rec.
 *
 * @param legacy_path when true, model the decode-stage redirect cost
 *        of taken direct transfers that miss the BTB (the decoded
 *        cache structures carry their own pointers, so they skip it)
 * @param attrib when attached, each penalty is also noted as pending
 *        stall units and a build-entry disruption cause, keyed by
 *        its predictor source (see src/attrib)
 * @return penalty cycles (0 when everything was predicted right)
 */
inline unsigned
predictControl(const FrontendParams &params, FrontendMetrics &metrics,
               PredictorBank &preds, const Trace &trace,
               std::size_t rec, bool legacy_path,
               AttribRecorder *attrib = nullptr)
{
    const StaticInst &si = trace.inst(rec);
    const bool taken = trace.record(rec).taken != 0;
    const uint64_t actual_target = trace.nextIp(rec);
    unsigned penalty = 0;

    auto charge = [&](Cause cause, unsigned p) {
        penalty += p;
        if (attrib) {
            attrib->noteStall(cause, p);
            attrib->noteDisruption(cause);
        }
    };

    switch (si.cls) {
      case InstClass::CondBranch: {
        ++metrics.condBranches;
        bool pred = preds.gshare.predict(si.ip);
        preds.gshare.update(si.ip, taken);
        if (pred != taken) {
            ++metrics.condMispredicts;
            charge(Cause::CondMispredict, params.mispredictPenalty);
        } else if (taken && legacy_path) {
            if (!preds.btb.lookup(si.ip)) {
                ++metrics.btbMisses;
                charge(Cause::BtbMiss, params.btbMissPenalty);
            }
        }
        if (taken && actual_target)
            preds.btb.update(si.ip, actual_target);
        break;
      }
      case InstClass::DirectJump:
      case InstClass::DirectCall: {
        if (legacy_path) {
            if (!preds.btb.lookup(si.ip)) {
                ++metrics.btbMisses;
                charge(Cause::BtbMiss, params.btbMissPenalty);
            }
        }
        if (actual_target)
            preds.btb.update(si.ip, actual_target);
        if (si.cls == InstClass::DirectCall)
            preds.rsb.push(si.fallThroughIp());
        break;
      }
      case InstClass::IndirectJump:
      case InstClass::IndirectCall: {
        ++metrics.indirectBranches;
        auto pred = preds.indirect.predict(si.ip);
        if (!pred || (actual_target && *pred != actual_target)) {
            ++metrics.indirectMispredicts;
            charge(Cause::IndirectMispredict,
                   params.mispredictPenalty);
        }
        if (actual_target)
            preds.indirect.update(si.ip, actual_target);
        if (si.cls == InstClass::IndirectCall)
            preds.rsb.push(si.fallThroughIp());
        break;
      }
      case InstClass::Return: {
        ++metrics.returns;
        bool underflow = preds.rsb.size() == 0;
        uint64_t pred = preds.rsb.pop();
        if (actual_target && pred != actual_target) {
            ++metrics.returnMispredicts;
            charge(Cause::ReturnMispredict, params.mispredictPenalty);
            if (attrib && underflow)
                attrib->noteRsbUnderflow();
        }
        break;
      }
      default:
        break;  // non-control: nothing to predict
    }
    return penalty;
}

} // namespace xbs

#endif // XBS_FRONTEND_CONTROL_HH
