/**
 * @file
 * Root-cause taxonomy for frontend losses (docs/MODEL.md "Miss
 * attribution").
 *
 * Two parallel accountings share one cause vocabulary:
 *  - every build-mode uop is charged to the cause that pushed the
 *    frontend out of delivery (sum over causes == buildUops), and
 *  - every fetch-silent cycle is charged to the event that injected
 *    the bubble (sum over causes == stallCycles).
 *
 * The XBC frontend uses the fine-grained causes (XBTB miss,
 * compulsory/capacity/conflict array misses via the evicted-tag
 * shadow directory, set-search and promotion-recovery bubbles); the
 * TC/DC/BBTC frontends use the coarser structural causes; the IC
 * baseline only ever charges cycles (it has no build mode).
 */

#ifndef XBS_ATTRIB_TAXONOMY_HH
#define XBS_ATTRIB_TAXONOMY_HH

#include <cstdint>
#include <string>

namespace xbs
{

enum class Cause : uint8_t
{
    ColdStart,          ///< initial build before the first delivery
    XbtbMiss,           ///< no (or stale) XBTB successor pointer
    XbcCompulsory,      ///< array miss, tag never built before
    XbcCapacity,        ///< array miss, tag evicted long ago
    XbcConflict,        ///< array miss, tag in the evicted-tag shadow
    StructMiss,         ///< TC/DC/BBTC structure lookup miss
    PartialHit,         ///< resident trace diverged from the path
    CondMispredict,     ///< XBP / gshare direction mispredict
    BtbMiss,            ///< taken direct transfer missing in the BTB
    IndirectMispredict, ///< XiBTB / indirect-target mispredict
    ReturnMispredict,   ///< XRSB / return-stack mispredict
    IcMiss,             ///< instruction-cache fill bubble
    L2Miss,             ///< fill that also missed the L2
    SetSearch,          ///< XBC set-search repair cycle
    BankConflict,       ///< XBC bank-conflict deferral
    PromotionRecovery,  ///< promoted branch took the infrequent path
    Unattributed,       ///< charged with no recorded cause
    kCount
};

constexpr std::size_t kNumCauses = (std::size_t)Cause::kCount;

/** Stable lowerCamel identifier ("xbcConflict"), used for stat names
 *  and every JSON surface. */
const char *causeName(Cause cause);

/**
 * True when @p path is a per-cause attribution counter in a sampled
 * stat tree ("<fe>.attrib.uops.<cause>" or
 * "<fe>.attrib.cycles.<cause>"). The per-window deltas of exactly
 * these paths form the attribution vector that the phase detector
 * (src/obs/stats) segments on.
 */
bool isAttribDeltaPath(const std::string &path);

/** The "attrib.uops.<cause>" tail of an attrib stat path (the part
 *  after the frontend prefix), or @p path itself when it is not an
 *  attrib path. */
std::string attribDeltaKey(const std::string &path);

} // namespace xbs

#endif // XBS_ATTRIB_TAXONOMY_HH
